(** Workload generators for experiments and tests.

    All generators schedule broadcasts on a {!Cluster} through the engine's
    action queue, drawing randomness from an explicit RNG so runs stay
    reproducible. Broadcasts landing on a down process are silently
    skipped (the injection models clients co-located with the process). *)

val payload : Abcast_util.Rng.t -> size:int -> string
(** A random printable payload of the given size. *)

val open_loop :
  Cluster.t ->
  rng:Abcast_util.Rng.t ->
  senders:int list ->
  start:int ->
  stop:int ->
  mean_gap:int ->
  ?size:int ->
  ?groups:int ->
  unit ->
  int
(** Poisson arrivals: between [start] and [stop] simulated µs, schedule
    broadcasts whose inter-arrival times are exponential with mean
    [mean_gap]; each sender is drawn uniformly from [senders]. [size]
    (default 32) is the payload size; [groups] (default 1) spreads each
    broadcast uniformly over that many groups of a sharded stack.
    Returns the number of broadcasts scheduled. *)

val burst :
  Cluster.t ->
  rng:Abcast_util.Rng.t ->
  senders:int list ->
  at:int ->
  count:int ->
  ?size:int ->
  ?groups:int ->
  unit ->
  unit
(** Inject [count] broadcasts in the same simulated instant at [at],
    spread uniformly over [senders] (and over [groups] groups, default
    1) — the worst case for a sequencer, the best case for batching
    (E5b). *)

val closed_loop :
  Cluster.t ->
  rng:Abcast_util.Rng.t ->
  node:int ->
  total:int ->
  ?pipeline:int ->
  ?think:int ->
  ?size:int ->
  unit ->
  unit
(** A closed-loop client at [node]: keeps [pipeline] (default 1) request
    chains alive until [total] broadcasts have been issued, waiting
    [think] µs (default 200) between a completed request and the next.
    The completion point models the paper's §5.4 distinction and follows
    {!Cluster.broadcast_blocks}: local agreement for the basic protocol,
    immediate return for the early-return alternative. Only meaningful on
    processes that stay up (E5). *)
