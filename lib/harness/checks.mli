(** Executable forms of the paper's correctness properties (§2.2).

    Each check returns [Ok ()] or [Error reason]. They are meant to be run
    at the end of (or during) a simulation, quantified over {e good}
    processes as the specification requires — bad processes may be down or
    arbitrarily behind.

    The checks compare explicit delivery sequences, so correctness
    scenarios must avoid application-level compaction (checkpointing
    without an [app] hook keeps the full tail and is fine). *)

val integrity : Abcast_core.Payload.t list -> (unit, string) result
(** No message identity appears twice in one delivery sequence. *)

val total_order : Abcast_core.Payload.t list list -> (unit, string) result
(** Every pair of delivery sequences is prefix-related. *)

val validity :
  known:(Abcast_core.Payload.id -> bool) ->
  Abcast_core.Payload.t list ->
  (unit, string) result
(** Every delivered message was actually broadcast ([known]). *)

val termination :
  completed:Abcast_core.Payload.id list ->
  good_sequences:Abcast_core.Payload.t list list ->
  (unit, string) result
(** Every completed A-broadcast (the sender is obligated once the
    primitive returned) appears in every good process's sequence; and any
    message delivered by {e some} good process appears in {e every} good
    process's sequence (at quiescence the two sets coincide). *)

val all :
  ?group:int -> cluster:Cluster.t -> good:int list -> unit ->
  (unit, string) result
(** Run the four checks over a finished cluster run: integrity and
    validity per good process, total order and termination across them.
    Termination is checked against broadcasts injected via
    {!Cluster.broadcast} whose completion fired.

    Each property is quantified {e per broadcast group} (ids collide
    across groups and total order only holds within one): by default
    every group of a sharded stack is checked in turn (failures are
    prefixed ["group g:"]); [?group] restricts to one. Single-group
    stacks have exactly group 0 — unchanged behaviour. *)

val all_compacted :
  cluster:Cluster.t -> good:int list -> unit -> (unit, string) result
(** The check variant for runs with application-level checkpointing,
    where delivered prefixes are folded into opaque checkpoints and the
    explicit tails cannot be compared. It checks the same properties
    through the delivery vector clocks instead:

    - termination — every obligation id is {!Abcast_core.Vclock.contains}ed
      in every good process's clock;
    - validity — every stream in a good clock corresponds to injected
      broadcasts (per-stream max seq never exceeds what was sent);
    - agreement — at quiescence, all good processes have the same
      delivered count and identical clocks (same message {e set}; the
      identical {e order} follows from in-order instance application with
      the deterministic batch rule, which the non-compacted scenarios and
      the storage-level lemma monitors verify directly);
    - integrity — guaranteed internally ({!Abcast_core.Vclock.add} refuses
      duplicates); nothing further to check here.

    Like {!all}, quantified per broadcast group over every group of a
    sharded stack. *)
