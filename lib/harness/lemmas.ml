module Keys = Abcast_consensus.Consensus_intf.Keys

type t = {
  cluster : Cluster.t;
  period : int;
  (* last seen immutable values: (node, instance) -> value *)
  proposals : (int * int, string) Hashtbl.t;
  decisions : (int * int, string) Hashtbl.t;
  (* per-instance agreed decision across nodes *)
  agreed_decisions : (int, string) Hashtbl.t;
  (* highest checkpoint k logged per node *)
  logged_k : (int, int) Hashtbl.t;
  mutable violations : string list; (* newest first *)
}

let violation t fmt =
  Format.kasprintf (fun s -> t.violations <- s :: t.violations) fmt

(* The checkpoint slot stores a wire-encoded (k, Agreed.repr); decode
   just the round. *)
let checkpoint_k cluster node =
  match Cluster.read_storage cluster node "ab/checkpoint" with
  | None -> None
  | Some blob -> (
    match Abcast_core.Protocol.decode_checkpoint blob with
    | Some (k, _) -> Some k
    | None -> None)

let audit_immutable t ~what table ~node ~instance value =
  match Hashtbl.find_opt table (node, instance) with
  | None -> Hashtbl.add table (node, instance) value
  | Some old when String.equal old value -> ()
  | Some _ ->
    violation t "%s of instance %d changed at p%d after being logged" what
      instance node

let sample_now t =
  let n = Cluster.n t.cluster in
  for node = 0 to n - 1 do
    (* P1/P2: logged checkpoint round is non-decreasing. *)
    (match checkpoint_k t.cluster node with
    | None -> ()
    | Some k -> (
      match Hashtbl.find_opt t.logged_k node with
      | Some prev when k < prev ->
        violation t "logged round went backwards at p%d: %d after %d" node k
          prev
      | _ -> Hashtbl.replace t.logged_k node k));
    (* P4/P5 and uniform agreement, from the consensus log. *)
    List.iter
      (fun key ->
        match (Keys.instance_of_key key, Keys.field_of_key key) with
        | Some instance, Some "proposal" -> (
          match Cluster.read_storage t.cluster node key with
          | Some v ->
            audit_immutable t ~what:"proposal" t.proposals ~node ~instance v
          | None -> ())
        | Some instance, Some "decision" -> (
          match Cluster.read_storage t.cluster node key with
          | Some v -> (
            audit_immutable t ~what:"decision" t.decisions ~node ~instance v;
            match Hashtbl.find_opt t.agreed_decisions instance with
            | None -> Hashtbl.add t.agreed_decisions instance v
            | Some other when String.equal other v -> ()
            | Some _ ->
              violation t
                "uniform agreement broken: instance %d decided differently \
                 at p%d"
                instance node)
          | None -> ())
        | _ -> ())
      (Cluster.storage_keys t.cluster node Keys.prefix)
  done

let attach cluster ?(period = 5_000) () =
  let t =
    {
      cluster;
      period;
      proposals = Hashtbl.create 64;
      decisions = Hashtbl.create 64;
      agreed_decisions = Hashtbl.create 64;
      logged_k = Hashtbl.create 8;
      violations = [];
    }
  in
  let rec loop () =
    sample_now t;
    Cluster.after cluster t.period loop
  in
  Cluster.after cluster t.period loop;
  t

let violations t = List.rev t.violations

let report t =
  match violations t with [] -> Ok () | v :: _ -> Error v

let check_converged t ~good =
  sample_now t;
  match report t with
  | Error _ as e -> e
  | Ok () -> (
    match good with
    | [] -> Ok ()
    | first :: rest ->
      let k0 = Cluster.round t.cluster first in
      let rec go = function
        | [] -> Ok ()
        | i :: tl ->
          let k = Cluster.round t.cluster i in
          if k <> k0 then
            Error
              (Printf.sprintf
                 "P3: good processes in different rounds at quiescence (p%d \
                  at %d, p%d at %d)"
                 first k0 i k)
          else go tl
      in
      go rest)
