module Payload = Abcast_core.Payload

let ( let* ) = Result.bind

let integrity seq =
  let tbl = Hashtbl.create 64 in
  let rec go = function
    | [] -> Ok ()
    | (p : Payload.t) :: rest ->
      if Hashtbl.mem tbl p.id then
        Error (Format.asprintf "integrity: %a delivered twice" Payload.pp_id p.id)
      else begin
        Hashtbl.add tbl p.id ();
        go rest
      end
  in
  go seq

let is_prefix a b =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | (x : Payload.t) :: xs, (y : Payload.t) :: ys ->
      Payload.equal_id x.id y.id && go (xs, ys)
  in
  go (a, b)

let total_order seqs =
  let arr = Array.of_list seqs in
  let n = Array.length arr in
  let rec pairs i j =
    if i >= n then Ok ()
    else if j >= n then pairs (i + 1) (i + 2)
    else
      let a = arr.(i) and b = arr.(j) in
      if is_prefix a b || is_prefix b a then pairs i (j + 1)
      else
        Error
          (Printf.sprintf
             "total order: sequences %d and %d are not prefix-related" i j)
  in
  pairs 0 1

let validity ~known seq =
  let rec go = function
    | [] -> Ok ()
    | (p : Payload.t) :: rest ->
      if known p.id then go rest
      else
        Error
          (Format.asprintf "validity: %a was never broadcast" Payload.pp_id
             p.id)
  in
  go seq

let termination ~completed ~good_sequences =
  let delivered_sets =
    List.map
      (fun seq ->
        let tbl = Hashtbl.create 64 in
        List.iter (fun (p : Payload.t) -> Hashtbl.replace tbl p.id ()) seq;
        tbl)
      good_sequences
  in
  (* (1) completed broadcasts reach every good process *)
  let rec check_completed = function
    | [] -> Ok ()
    | id :: rest ->
      if List.for_all (fun tbl -> Hashtbl.mem tbl id) delivered_sets then
        check_completed rest
      else
        Error
          (Format.asprintf
             "termination: completed broadcast %a missing at a good process"
             Payload.pp_id id)
  in
  let* () = check_completed completed in
  (* (2) anything delivered at one good process is delivered at all *)
  let union = Hashtbl.create 64 in
  List.iter
    (fun tbl -> Hashtbl.iter (fun id () -> Hashtbl.replace union id ()) tbl)
    delivered_sets;
  let missing =
    Hashtbl.fold
      (fun id () acc ->
        if List.for_all (fun tbl -> Hashtbl.mem tbl id) delivered_sets then acc
        else id :: acc)
      union []
  in
  match missing with
  | [] -> Ok ()
  | id :: _ ->
    Error
      (Format.asprintf
         "termination: %a delivered at some good process but not all"
         Payload.pp_id id)

(* Per-group framing: every property below quantifies over ONE broadcast
   group's ids and sequences — ids are per-stream counters and collide
   across groups, and total order only holds within a group. [all] and
   [all_compacted] iterate the groups; single-group stacks have exactly
   group 0 and behave as before. *)

let obligations cluster ~good ~group =
  let sent = Cluster.sent_in cluster ~group in
  List.filter_map
    (fun ((id : Payload.id), c) ->
      if c && List.mem id.origin good then Some id else None)
    sent
  @ Cluster.ever_delivered_in cluster ~group

let each_group ~cluster check =
  let shards = Cluster.shards cluster in
  let rec go g =
    if g >= shards then Ok ()
    else
      let r =
        if shards = 1 then check g
        else
          Result.map_error
            (fun e -> Printf.sprintf "group %d: %s" g e)
            (check g)
      in
      let* () = r in
      go (g + 1)
  in
  go 0

let compacted_group ~cluster ~good ~group () =
  let module Vclock = Abcast_core.Vclock in
  let clocks =
    List.map (fun i -> (i, Cluster.delivery_vc ~group cluster i)) good
  in
  (* termination: every obligation is contained in every good clock *)
  let rec check_terminated = function
    | [] -> Ok ()
    | id :: rest ->
      if List.for_all (fun (_, vc) -> Vclock.contains vc id) clocks then
        check_terminated rest
      else
        Error
          (Format.asprintf "termination: %a missing at a good process"
             Payload.pp_id id)
  in
  let* () = check_terminated (obligations cluster ~good ~group) in
  (* validity: clocks never exceed what was actually broadcast *)
  let sent_max = Hashtbl.create 64 in
  List.iter
    (fun ((id : Payload.id), _) ->
      let key = (id.origin, id.boot) in
      match Hashtbl.find_opt sent_max key with
      | Some s when s >= id.seq -> ()
      | _ -> Hashtbl.replace sent_max key id.seq)
    (Cluster.sent_in cluster ~group);
  let rec check_valid = function
    | [] -> Ok ()
    | (i, vc) :: rest ->
      let bad =
        List.find_opt
          (fun ((origin, boot), seq) ->
            match Hashtbl.find_opt sent_max (origin, boot) with
            | Some max_seq -> seq > max_seq
            | None -> ignore origin; ignore boot; true)
          (Vclock.streams vc)
      in
      (match bad with
      | Some ((o, b), s) ->
        Error
          (Printf.sprintf
             "validity: p%d delivered p%d.%d.%d which was never broadcast" i o
             b s)
      | None -> check_valid rest)
  in
  let* () = check_valid clocks in
  (* agreement at quiescence: same count, same clock *)
  match clocks with
  | [] -> Ok ()
  | (first, vc0) :: rest ->
    let c0 = Cluster.delivered_count ~group cluster first in
    let rec check_agree = function
      | [] -> Ok ()
      | (i, vc) :: tl ->
        if Cluster.delivered_count ~group cluster i <> c0 then
          Error
            (Printf.sprintf "agreement: p%d and p%d quiesced at different counts"
               first i)
        else if Vclock.streams vc <> Vclock.streams vc0 then
          Error
            (Printf.sprintf "agreement: p%d and p%d delivered different sets"
               first i)
        else check_agree tl
    in
    check_agree rest

let all_compacted ~cluster ~good () =
  each_group ~cluster (fun group -> compacted_group ~cluster ~good ~group ())

let group_checks ~cluster ~good ~group () =
  let seqs = List.map (fun i -> Cluster.delivered_tail ~group cluster i) good in
  let sent = Cluster.sent_in cluster ~group in
  let known id = List.exists (fun (i, _) -> Payload.equal_id i id) sent in
  (* Obligations: clause (1) — completed broadcasts of good senders;
     clause (2) — anything any process ever delivered (uniformity). *)
  let completed =
    List.filter_map
      (fun ((id : Payload.id), c) ->
        if c && List.mem id.origin good then Some id else None)
      sent
    @ Cluster.ever_delivered_in cluster ~group
  in
  let rec per_seq = function
    | [] -> Ok ()
    | s :: rest ->
      let* () = integrity s in
      let* () = validity ~known s in
      per_seq rest
  in
  let* () = per_seq seqs in
  let* () = total_order seqs in
  termination ~completed ~good_sequences:seqs

let all ?group ~cluster ~good () =
  match group with
  | Some group -> group_checks ~cluster ~good ~group ()
  | None ->
    each_group ~cluster (fun group -> group_checks ~cluster ~good ~group ())
