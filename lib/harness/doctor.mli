(** Offline causal trace analyzer ([abcast-sim doctor]).

    Merges the per-node flight-recorder dumps of a live run directory
    ([node<i>/flight.bin], see {!Abcast_sim.Flight}) with any JSONL
    metrics snapshots next to them, reconstructs the cross-node causal
    timeline of every sampled broadcast (submit → broadcast →
    dissemination hops → propose/decide → apply → ack), breaks the
    latency into per-stage components, and cross-checks the merged
    history for protocol anomalies:

    - [stuck-instance] — a consensus instance proposed but never decided
      anywhere while later instances of its group did decide;
    - [delivery-gap] — a node whose apply positions bracket a sampled
      payload's position without ever applying it (state-transfer jumps
      excuse the hole);
    - [dedup-violation] — one sampled payload applied twice by the same
      incarnation of a node;
    - [lease-overlap] — a read-index lease renewed for a node that is
      not the current claim holder.

    All rules compare facts the total order makes deterministic, so a
    ring buffer that overwrote old events can hide an anomaly but never
    fabricate one. *)

type trace_info = {
  tid : int;  (** packed {!Abcast_core.Trace_ctx} id *)
  origin : int;  (** originating node (from the id) *)
  submit_time : int option;
  bcast_time : int option;
  first_rx : (int * int) list;  (** (node, µs) first sight per node *)
  proposes : (int * int) list;  (** (instance, µs) *)
  decide_time : int option;
  applies : (int * int * int) list;  (** (node, µs, apply position) *)
  ack_time : int option;
  complete : bool;  (** full causal path present in the dumps *)
}

type stage_stat = {
  stage : string;
  count : int;
  mean_us : float;
  max_us : float;
}

type anomaly = { code : string; detail : string }

type report = {
  dir : string;
  nodes : int list;
  events : int;
  dropped : int;
  boots : (int * int) list;
  traces : trace_info list;
  stages : stage_stat list;
  anomalies : anomaly list;
  snapshots : int;
  notes : string list;
}

val analyze : ?max_traces:int -> dir:string -> unit -> (report, string) result
(** Load and analyze a run directory. [max_traces] (default 64) bounds
    how many sampled traces are fully reconstructed. [Error] only when
    no readable dump exists at all; individual unreadable dumps become
    report notes. *)

val has_anomalies : report -> bool

val reconstructed : report -> int
(** Number of analyzed traces whose full causal path was recovered. *)

val render : ?verbose:bool -> report -> string
(** Human-readable report. [verbose] prints every trace's timeline;
    otherwise only incomplete traces are expanded. *)
