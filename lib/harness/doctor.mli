(** Offline causal trace analyzer ([abcast-sim doctor]).

    Merges the per-node flight-recorder dumps of a live run directory
    ([node<i>/flight.bin], see {!Abcast_sim.Flight}) with any JSONL
    metrics snapshots next to them, reconstructs the cross-node causal
    timeline of every sampled broadcast (submit → broadcast →
    dissemination hops → propose/decide → apply → ack), breaks the
    latency into per-stage components, and cross-checks the merged
    history for protocol anomalies:

    - [stuck-instance] — a consensus instance proposed but never decided
      anywhere while later instances of its group did decide;
    - [delivery-gap] — a node whose apply positions bracket a sampled
      payload's position without ever applying it (state-transfer jumps
      excuse the hole);
    - [dedup-violation] — one sampled payload applied twice by the same
      incarnation of a node;
    - [lease-overlap] — a read-index lease renewed for a node that is
      not the current claim holder;
    - [audit-diverged] — the online order audit tripped live: a peer's
      order certificate mismatched a node's own delivery chain;
    - [order-divergence] — two nodes' delivery chain hashes disagree at
      the same grid-aligned position of one group (the minority side is
      named: it delivered a different prefix);
    - [stale-lin-read] (with [~audit:true]) — a client history records a
      linearizable read that missed a write acked before the read was
      invoked.

    It also extracts a per-(node, boot) recovery timeline — storage
    replay size and duration, protocol replay rounds, state-transfer
    jump, and the boot-to-first-delivery catch-up time.

    All rules compare facts the total order makes deterministic, so a
    ring buffer that overwrote old events can hide an anomaly but never
    fabricate one. *)

type trace_info = {
  tid : int;  (** packed {!Abcast_core.Trace_ctx} id *)
  origin : int;  (** originating node (from the id) *)
  submit_time : int option;
  bcast_time : int option;
  first_rx : (int * int) list;  (** (node, µs) first sight per node *)
  proposes : (int * int) list;  (** (instance, µs) *)
  decide_time : int option;
  applies : (int * int * int) list;  (** (node, µs, apply position) *)
  ack_time : int option;
  complete : bool;  (** full causal path present in the dumps *)
}

type stage_stat = {
  stage : string;
  count : int;
  mean_us : float;
  max_us : float;
}

type anomaly = { code : string; detail : string }

type recovery = {
  rv_node : int;
  rv_boot : int;
  rv_replay_records : int;  (** stable-storage records replayed at boot *)
  rv_replay_us : int;
  rv_rounds : int;  (** consensus rounds re-run by protocol recovery *)
  rv_protocol_us : int;
  rv_stjump : (int * int) option;  (** state transfer jumped from → to *)
  rv_caught_len : int;
      (** delivery length at the first post-recovery delivery; [-1] if
          the node never caught up within the dump *)
  rv_caught_us : int;  (** µs from boot to that first delivery *)
}

type audit_summary = {
  au_histories : int;  (** client history files merged *)
  au_events : int;  (** completed client ops across them *)
  au_lin_reads : int;  (** linearizable reads checked for real-time order *)
  au_chain_points : int;  (** (group, position) chain grid points compared *)
}

type report = {
  dir : string;
  nodes : int list;
  events : int;
  dropped : int;
  dropped_by_node : (int * int) list;
  boots : (int * int) list;
  traces : trace_info list;
  stages : stage_stat list;
  recoveries : recovery list;
  audit : audit_summary option;
  anomalies : anomaly list;
  snapshots : int;
  notes : string list;
}

val analyze :
  ?max_traces:int -> ?audit:bool -> dir:string -> unit -> (report, string) result
(** Load and analyze a run directory. [max_traces] (default 64) bounds
    how many sampled traces are fully reconstructed. [audit] (default
    false) additionally merges any [*.history] client capture files at
    the top level of [dir] and checks real-time order against them.
    [Error] only when no readable dump exists at all; individual
    unreadable dumps become report notes. *)

val has_anomalies : report -> bool

val reconstructed : report -> int
(** Number of analyzed traces whose full causal path was recovered. *)

val render : ?verbose:bool -> report -> string
(** Human-readable report. [verbose] prints every trace's timeline;
    otherwise only incomplete traces are expanded. *)
