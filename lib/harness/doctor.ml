(* Offline trace analyzer behind [abcast-sim doctor].

   Input is a live run directory: per-node flight-recorder dumps
   ([node<i>/flight.bin], written by the runtime next to each WAL) plus
   any JSONL metrics snapshot files the run left at the top level. The
   analyzer merges every node's events into one timeline (the live
   runtime stamps all flight events against one shared epoch, so
   cross-node times are directly comparable), reconstructs the causal
   path of every sampled broadcast, breaks the end-to-end latency into
   stages, and cross-checks the merged history for protocol anomalies.

   The anomaly rules only ever compare facts the total order makes
   deterministic (apply positions, instance numbers, lease floors), so
   they are robust to the ring buffer having dropped old events: a
   missing event can hide an anomaly but never invent one. *)

module Flight = Abcast_sim.Flight
module History = Abcast_sim.History
module Trace_ctx = Abcast_core.Trace_ctx

type trace_info = {
  tid : int;
  origin : int;  (* node packed into the trace id *)
  submit_time : int option;  (* linked via the ack's (session, seq) *)
  bcast_time : int option;
  first_rx : (int * int) list;  (* (node, time), one per remote node *)
  proposes : (int * int) list;  (* (instance, time) *)
  decide_time : int option;
  applies : (int * int * int) list;  (* (node, time, apply position) *)
  ack_time : int option;
  complete : bool;
      (* bcast + propose + decide + >= 1 apply all present: the causal
         path can be walked end to end from the dumps *)
}

type stage_stat = {
  stage : string;
  count : int;
  mean_us : float;
  max_us : float;
}

type anomaly = { code : string; detail : string }

type recovery = {
  rv_node : int;
  rv_boot : int;
  rv_replay_records : int;  (* stable-storage records replayed at boot *)
  rv_replay_us : int;
  rv_rounds : int;  (* consensus rounds re-run by protocol recovery *)
  rv_protocol_us : int;
  rv_stjump : (int * int) option;  (* state transfer jumped from -> to *)
  rv_caught_len : int;  (* delivery length at first post-recovery
                           delivery; -1 = never caught up in the dump *)
  rv_caught_us : int;  (* µs from boot to that first delivery *)
}

type audit_summary = {
  au_histories : int;  (* client history files merged *)
  au_events : int;  (* completed ops across them *)
  au_lin_reads : int;  (* linearizable reads checked *)
  au_chain_points : int;  (* (group, position) chain grid points compared *)
}

type report = {
  dir : string;
  nodes : int list;  (* node ids a dump was loaded for *)
  events : int;
  dropped : int;  (* summed ring overwrites across nodes *)
  dropped_by_node : (int * int) list;  (* node -> its ring overwrites *)
  boots : (int * int) list;  (* node -> boots seen in its dump *)
  traces : trace_info list;
  stages : stage_stat list;
  recoveries : recovery list;
  audit : audit_summary option;  (* Some when [analyze ~audit:true] ran *)
  anomalies : anomaly list;
  snapshots : int;  (* JSONL metrics lines merged *)
  notes : string list;
}

(* ---- loading -------------------------------------------------------- *)

let list_node_dumps dir =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.filter_map (fun e ->
           if String.length e > 4 && String.sub e 0 4 = "node" then
             match int_of_string_opt (String.sub e 4 (String.length e - 4)) with
             | Some i ->
               let path = Filename.concat (Filename.concat dir e) "flight.bin" in
               if Sys.file_exists path then Some (i, path) else None
             | None -> None
           else None)
    |> List.sort compare
  | exception Sys_error _ -> []

(* Snapshot streams rotate by size: [m.jsonl.3] is older than
   [m.jsonl.1] is older than the live [m.jsonl]. Parse the generation so
   the merged listing reads oldest-first. *)
let jsonl_generation e =
  if Filename.check_suffix e ".jsonl" then Some (e, 0)
  else
    match String.rindex_opt e '.' with
    | Some i -> (
      let base = String.sub e 0 i in
      match int_of_string_opt (String.sub e (i + 1) (String.length e - i - 1)) with
      | Some g when g > 0 && Filename.check_suffix base ".jsonl" ->
        Some (base, g)
      | _ -> None)
    | None -> None

let list_jsonl dir =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.filter_map (fun e ->
           Option.map (fun (base, gen) -> ((base, -gen), e)) (jsonl_generation e))
    |> List.sort compare
    |> List.map (fun (_, e) -> Filename.concat dir e)
  | exception Sys_error _ -> []

let list_histories dir =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.filter (fun e -> Filename.check_suffix e ".history")
    |> List.map (Filename.concat dir)
    |> List.sort compare
  | exception Sys_error _ -> []

let count_lines path =
  try
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  with Sys_error _ -> 0

(* ---- analysis ------------------------------------------------------- *)

let us f = float_of_int f

let mk_stage name samples =
  match samples with
  | [] -> None
  | _ ->
    let n = List.length samples in
    let sum = List.fold_left ( +. ) 0. samples in
    let mx = List.fold_left Float.max neg_infinity samples in
    Some { stage = name; count = n; mean_us = sum /. float_of_int n; max_us = mx }

let analyze ?(max_traces = 64) ?(audit = false) ~dir () =
  let dumps = list_node_dumps dir in
  if dumps = [] then Error (Printf.sprintf "%s: no node*/flight.bin dumps" dir)
  else begin
    let notes = ref [] in
    let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
    let loaded =
      List.filter_map
        (fun (i, path) ->
          match Flight.load_file path with
          | Ok d -> Some (i, d)
          | Error e ->
            note "node %d: unreadable flight dump (%s)" i e;
            None)
        dumps
    in
    if loaded = [] then Error (Printf.sprintf "%s: no readable flight dumps" dir)
    else begin
      let all =
        List.concat_map (fun (_, d) -> d.Flight.d_events) loaded
        |> List.sort (fun (a : Flight.event) b ->
               compare (a.e_time, a.e_node, a.e_stage) (b.e_time, b.e_node, b.e_stage))
      in
      let dropped_by_node =
        List.map (fun (i, d) -> (i, d.Flight.d_dropped)) loaded
      in
      let dropped = List.fold_left (fun acc (_, d) -> acc + d) 0 dropped_by_node in
      (* a wrapped ring means the timeline has a hole: every check below
         stays sound (a missing event never invents an anomaly) but may
         miss one, so the gap itself is worth a loud note *)
      List.iter
        (fun (i, d) ->
          if d > 0 then
            note
              "node %d: flight ring overwrote %d events — the timeline has a \
               hole (raise the flight capacity for longer memory)"
              i d)
        dropped_by_node;
      let boots =
        List.map
          (fun (i, d) ->
            let bs =
              List.filter (fun (e : Flight.event) -> e.e_stage = Flight.boot)
                d.Flight.d_events
            in
            (i, List.length bs))
          loaded
      in
      (* index events by kind once *)
      let by_stage st =
        List.filter (fun (e : Flight.event) -> e.e_stage = st) all
      in
      let rx =
        List.filter
          (fun (e : Flight.event) ->
            e.e_stage = Flight.rx_ring || e.e_stage = Flight.rx_gossip)
          all
      in
      let decides = by_stage Flight.decide in
      let proposes_all = by_stage Flight.propose in
      let applies_all = by_stage Flight.apply in
      let acks = by_stage Flight.ack in
      let submits = by_stage Flight.submit in
      let stjumps = by_stage Flight.stjump in
      let leases = by_stage Flight.lease in
      (* every distinct sampled trace id, in first-seen order *)
      let tids = Hashtbl.create 64 in
      let tid_order = ref [] in
      List.iter
        (fun (e : Flight.event) ->
          if e.e_trace <> 0 && not (Hashtbl.mem tids e.e_trace) then begin
            Hashtbl.add tids e.e_trace ();
            tid_order := e.e_trace :: !tid_order
          end)
        all;
      let tid_order = List.rev !tid_order in
      if List.length tid_order > max_traces then
        note "showing first %d of %d sampled traces" max_traces
          (List.length tid_order);
      let decide_time_of ~group j t_p =
        List.fold_left
          (fun acc (e : Flight.event) ->
            if e.e_a = j && e.e_group = group && e.e_time >= t_p then
              match acc with
              | Some t when t <= e.e_time -> acc
              | _ -> Some e.e_time
            else acc)
          None decides
      in
      let trace_of tid =
        let ev = List.filter (fun (e : Flight.event) -> e.e_trace = tid) all in
        let find st =
          List.find_opt (fun (e : Flight.event) -> e.e_stage = st) ev
        in
        let bcast = find Flight.bcast in
        let group =
          match ev with e :: _ -> e.e_group | [] -> 0
        in
        let origin = Trace_ctx.node tid in
        (* first sight per remote node *)
        let first_rx =
          List.fold_left
            (fun acc (e : Flight.event) ->
              if e.e_trace = tid && not (List.mem_assoc e.e_node acc) then
                (e.e_node, e.e_time) :: acc
              else acc)
            [] rx
          |> List.rev
        in
        let proposes =
          List.filter_map
            (fun (e : Flight.event) ->
              if e.e_trace = tid then Some (e.e_a, e.e_time) else None)
            proposes_all
        in
        let decide_time =
          List.fold_left
            (fun acc (j, t_p) ->
              match (acc, decide_time_of ~group j t_p) with
              | None, d -> d
              | d, None -> d
              | Some a, Some b -> Some (min a b))
            None proposes
        in
        let applies =
          List.filter_map
            (fun (e : Flight.event) ->
              if e.e_trace = tid then Some (e.e_node, e.e_time, e.e_a) else None)
            applies_all
        in
        let ack = List.find_opt (fun (e : Flight.event) -> e.e_trace = tid) acks in
        (* the ack carries (session, seq); the matching submit is the
           untraced event with the same operands at the ack's node *)
        let submit_time =
          match ack with
          | None -> None
          | Some a ->
            List.find_opt
              (fun (e : Flight.event) ->
                e.e_node = a.e_node && e.e_a = a.e_a && e.e_b = a.e_b)
              submits
            |> Option.map (fun (e : Flight.event) -> e.e_time)
        in
        {
          tid;
          origin;
          submit_time;
          bcast_time = Option.map (fun (e : Flight.event) -> e.e_time) bcast;
          first_rx;
          proposes;
          decide_time;
          applies;
          ack_time = Option.map (fun (e : Flight.event) -> e.e_time) ack;
          complete =
            bcast <> None && proposes <> [] && decide_time <> None
            && applies <> [];
        }
      in
      let traces =
        List.filteri (fun i _ -> i < max_traces) tid_order |> List.map trace_of
      in
      (* ---- per-stage latency breakdown ---- *)
      let collect f = List.concat_map f traces in
      let stages =
        List.filter_map Fun.id
          [
            mk_stage "submit->bcast"
              (collect (fun t ->
                   match (t.submit_time, t.bcast_time) with
                   | Some s, Some b when b >= s -> [ us (b - s) ]
                   | _ -> []));
            mk_stage "bcast->rx (dissemination)"
              (collect (fun t ->
                   match t.bcast_time with
                   | Some b ->
                     List.filter_map
                       (fun (n, r) ->
                         if n <> t.origin && r >= b then Some (us (r - b))
                         else None)
                       t.first_rx
                   | None -> []));
            mk_stage "propose->decide (consensus)"
              (collect (fun t ->
                   match (t.proposes, t.decide_time) with
                   | (_, p) :: _, Some d when d >= p -> [ us (d - p) ]
                   | _ -> []));
            mk_stage "decide->apply"
              (collect (fun t ->
                   match t.decide_time with
                   | Some d ->
                     List.filter_map
                       (fun (_, ta, _) ->
                         if ta >= d then Some (us (ta - d)) else None)
                       t.applies
                   | None -> []));
            mk_stage "apply->ack"
              (collect (fun t ->
                   match (t.ack_time, t.applies) with
                   | Some a, (_ :: _ as aps) ->
                     let first =
                       List.fold_left (fun m (_, ta, _) -> min m ta) max_int aps
                     in
                     if a >= first then [ us (a - first) ] else []
                   | _ -> []));
            mk_stage "wal append (dur)"
              (List.filter_map
                 (fun (e : Flight.event) ->
                   if e.e_stage = Flight.wal_append then Some (us e.e_a)
                   else None)
                 all);
            mk_stage "wal fsync (dur)"
              (List.filter_map
                 (fun (e : Flight.event) ->
                   if e.e_stage = Flight.wal_fsync then Some (us e.e_a) else None)
                 all);
          ]
      in
      (* ---- anomalies ---- *)
      let anomalies = ref [] in
      let flag code fmt =
        Printf.ksprintf (fun detail -> anomalies := { code; detail } :: !anomalies) fmt
      in
      (* stuck consensus instance: proposed at some node, never decided
         anywhere in its group, while a later instance of that group did
         decide (so it is not just in flight at the end of the run) *)
      let groups =
        List.sort_uniq compare
          (List.map (fun (e : Flight.event) -> e.e_group) all)
      in
      List.iter
        (fun g ->
          let decided =
            List.filter_map
              (fun (e : Flight.event) ->
                if e.e_group = g then Some e.e_a else None)
              decides
          in
          let max_decided = List.fold_left max (-1) decided in
          let proposed =
            List.filter_map
              (fun (e : Flight.event) ->
                if e.e_group = g && e.e_trace = 0 then Some e.e_a else None)
              proposes_all
            |> List.sort_uniq compare
          in
          List.iter
            (fun j ->
              if j < max_decided && not (List.mem j decided) then
                flag "stuck-instance"
                  "group %d: instance %d proposed but never decided (max \
                   decided %d)"
                  g j max_decided)
            proposed)
        groups;
      (* dedup violation: one sampled payload applied twice by the same
         incarnation of the same node (recovery replay legitimately
         re-applies under a higher boot, so the boot scopes the check) *)
      let seen_apply = Hashtbl.create 64 in
      List.iter
        (fun (e : Flight.event) ->
          if e.e_trace <> 0 then begin
            let k = (e.e_trace, e.e_node, e.e_group, e.e_boot) in
            if Hashtbl.mem seen_apply k then
              flag "dedup-violation"
                "node %d (boot %d): trace %s applied twice" e.e_node e.e_boot
                (Trace_ctx.to_string e.e_trace)
            else Hashtbl.add seen_apply k ()
          end)
        applies_all;
      (* delivery gap: the total order fixes what sits at each apply
         position of a group, so a node whose dump brackets position p
         (applies below and above) without applying p itself skipped a
         delivery — unless a state-transfer jump on that node explains
         the hole *)
      let jump_nodes =
        List.sort_uniq compare
          (List.map (fun (e : Flight.event) -> (e.e_node, e.e_group)) stjumps)
      in
      List.iter
        (fun t ->
          match t.applies with
          | [] -> ()
          | (_, _, pos) :: _ ->
            let g =
              match
                List.find_opt (fun (e : Flight.event) -> e.e_trace = t.tid) all
              with
              | Some e -> e.e_group
              | None -> 0
            in
            List.iter
              (fun (i, _) ->
                let mine =
                  List.filter_map
                    (fun (e : Flight.event) ->
                      if
                        e.e_stage = Flight.apply && e.e_node = i && e.e_group = g
                        && e.e_trace <> 0
                      then Some (e.e_trace, e.e_a)
                      else None)
                    all
                in
                let has_tid = List.exists (fun (tid, _) -> tid = t.tid) mine in
                let below = List.exists (fun (_, p) -> p < pos) mine in
                let above = List.exists (fun (_, p) -> p > pos) mine in
                if
                  (not has_tid) && below && above
                  && not (List.mem (i, g) jump_nodes)
                then
                  flag "delivery-gap"
                    "node %d: applied positions around %d of group %d but \
                     never trace %s"
                    i pos g (Trace_ctx.to_string t.tid))
              boots)
        traces;
      (* ---- recovery timeline: per (node, boot) episode ---- *)
      let recoveries =
        List.concat_map
          (fun (i, d) ->
            (* walk the node's own dump in order, splitting episodes at
               boot events; replay events from the storage layer carry
               boot 0, so attribution is positional, not by e_boot.
               Storage replay runs BEFORE the protocol records its boot
               event, so replay seen after the current episode already
               caught up belongs to the NEXT incarnation — buffer it. *)
            let eps = ref [] in
            let cur = ref None in
            let pending_records = ref 0 and pending_us = ref 0 in
            let fresh boot =
              {
                rv_node = i;
                rv_boot = boot;
                rv_replay_records = 0;
                rv_replay_us = 0;
                rv_rounds = 0;
                rv_protocol_us = 0;
                rv_stjump = None;
                rv_caught_len = -1;
                rv_caught_us = 0;
              }
            in
            let flush () =
              match !cur with
              | Some r -> eps := r :: !eps
              | None -> ()
            in
            let get boot =
              match !cur with
              | Some r -> r
              | None ->
                let r = fresh boot in
                cur := Some r;
                r
            in
            List.iter
              (fun (e : Flight.event) ->
                if e.e_stage = Flight.boot then begin
                  flush ();
                  let r = fresh e.e_a in
                  cur :=
                    Some
                      {
                        r with
                        rv_replay_records = !pending_records;
                        rv_replay_us = !pending_us;
                      };
                  pending_records := 0;
                  pending_us := 0
                end
                else if e.e_stage = Flight.replay then begin
                  let caught =
                    match !cur with
                    | Some r -> r.rv_caught_len >= 0
                    | None -> false
                  in
                  if caught then begin
                    pending_records := !pending_records + e.e_a;
                    pending_us := !pending_us + e.e_b
                  end
                  else
                    let r = get e.e_boot in
                    cur :=
                      Some
                        {
                          r with
                          rv_replay_records = r.rv_replay_records + e.e_a;
                          rv_replay_us = r.rv_replay_us + e.e_b;
                        }
                end
                else if e.e_stage = Flight.replay_done then begin
                  let r = get e.e_boot in
                  cur :=
                    Some
                      { r with rv_rounds = e.e_a; rv_protocol_us = e.e_b }
                end
                else if e.e_stage = Flight.stjump then begin
                  let r = get e.e_boot in
                  cur := Some { r with rv_stjump = Some (e.e_a, e.e_b) }
                end
                else if e.e_stage = Flight.caught_up then begin
                  let r = get e.e_boot in
                  cur :=
                    Some { r with rv_caught_len = e.e_a; rv_caught_us = e.e_b }
                end)
              d.Flight.d_events;
            flush ();
            (* keep the episodes that tell a recovery story: an actual
               re-boot, a non-empty replay, or a state-transfer jump *)
            List.rev !eps
            |> List.filter (fun r ->
                   r.rv_boot > 0 || r.rv_replay_records > 0
                   || r.rv_stjump <> None))
          loaded
      in
      (* ---- online order audit evidence ---- *)
      (* sentinel trips recorded live: a certificate that mismatched the
         receiver's own delivery chain is a total-order violation caught
         in flight — surface every one *)
      List.iter
        (fun (e : Flight.event) ->
          flag "audit-diverged"
            "node %d (boot %d): order certificate from node %d mismatched \
             its delivery chain at length %d (group %d)"
            e.e_node e.e_boot e.e_b e.e_a e.e_group)
        (by_stage Flight.audit);
      (* chain grid cross-check: every node notes its chain hash at
         grid-aligned delivery positions; the total order makes the hash
         at a position a pure function of the prefix, so two nodes
         disagreeing at one (group, position) delivered different
         prefixes. Flag the minority side. *)
      let chain_tbl = Hashtbl.create 64 in
      List.iter
        (fun (e : Flight.event) ->
          let k = (e.e_group, e.e_a) in
          let cur =
            match Hashtbl.find_opt chain_tbl k with Some l -> l | None -> []
          in
          Hashtbl.replace chain_tbl k ((e.e_node, e.e_b) :: cur))
        (by_stage Flight.chain);
      let chain_points = Hashtbl.length chain_tbl in
      Hashtbl.fold (fun k l acc -> (k, List.sort_uniq compare l) :: acc)
        chain_tbl []
      |> List.sort compare
      |> List.iter (fun ((g, pos), l) ->
             let hashes = List.sort_uniq compare (List.map snd l) in
             if List.length hashes > 1 then begin
               let count h = List.length (List.filter (fun (_, x) -> x = h) l) in
               let majority =
                 List.fold_left
                   (fun best h -> if count h > count best then h else best)
                   (List.hd hashes) (List.tl hashes)
               in
               List.sort_uniq compare l
               |> List.iter (fun (n, h) ->
                      if h <> majority then
                        flag "order-divergence"
                          "node %d: delivery chain at position %d of group %d \
                           is %x, majority agrees on %x — this node delivered \
                           a different prefix"
                          n pos g h majority)
             end);
      (* ---- client history audit (--audit) ---- *)
      let audit_summary =
        if not audit then None
        else begin
          let files = list_histories dir in
          let events =
            List.concat_map
              (fun p ->
                match History.load_file p with
                | Ok l -> l
                | Error e ->
                  note "%s: unreadable history (%s)" (Filename.basename p) e;
                  [])
              files
          in
          (* real-time order: the keys are per-client counters, so a
             linearizable read invoked after a write's ack must observe a
             counter at least as big as the number of writes acked on
             that key before the invocation *)
          let wtbl = Hashtbl.create 64 in
          List.iter
            (fun (e : History.event) ->
              if e.History.kind = History.kind_write && e.ok then
                Hashtbl.replace wtbl e.key
                  (e.t_resp
                  ::
                  (match Hashtbl.find_opt wtbl e.key with
                  | Some l -> l
                  | None -> [])))
            events;
          let wsorted = Hashtbl.create 64 in
          Hashtbl.iter
            (fun k l ->
              let a = Array.of_list l in
              Array.sort compare a;
              Hashtbl.replace wsorted k a)
            wtbl;
          let acked_before key t =
            match Hashtbl.find_opt wsorted key with
            | None -> 0
            | Some a ->
              (* count of acks with t_resp <= t *)
              let lo = ref 0 and hi = ref (Array.length a) in
              while !lo < !hi do
                let mid = (!lo + !hi) / 2 in
                if a.(mid) <= t then lo := mid + 1 else hi := mid
              done;
              !lo
          in
          let lin_reads = ref 0 in
          List.iter
            (fun (e : History.event) ->
              if e.History.kind = History.kind_lin && e.ok then begin
                incr lin_reads;
                let visible = max e.value 0 in
                let expected = acked_before e.key e.t_inv in
                if visible < expected then
                  flag "stale-lin-read"
                    "client %d: linearizable read of key c%d returned %d, but \
                     %d writes were acked before its invocation (t_inv %d µs)"
                    e.client e.key visible expected e.t_inv
              end)
            events;
          if files = [] then
            note "--audit: no *.history files in %s (run the service with \
                  --history-out)" dir;
          Some
            {
              au_histories = List.length files;
              au_events = List.length events;
              au_lin_reads = !lin_reads;
              au_chain_points = chain_points;
            }
        end
      in
      (* overlapping lease: a Lease renewal granted to a node that is not
         the last Claim holder on that observer's timeline means two
         nodes could serve lease reads at once *)
      let last_claim = Hashtbl.create 8 in
      List.iter
        (fun (e : Flight.event) ->
          let k = (e.e_node, e.e_group) in
          if e.e_b land 2 <> 0 then Hashtbl.replace last_claim k e.e_a
          else
            match Hashtbl.find_opt last_claim k with
            | Some holder when holder <> e.e_a ->
              flag "lease-overlap"
                "node %d group %d: lease renewed for node %d while floor is \
                 held by node %d"
                e.e_node e.e_group e.e_a holder
            | _ -> ())
        leases;
      let snapshots =
        List.fold_left (fun acc p -> acc + count_lines p) 0 (list_jsonl dir)
      in
      Ok
        {
          dir;
          nodes = List.map fst loaded;
          events = List.length all;
          dropped;
          dropped_by_node;
          boots;
          traces;
          stages;
          recoveries;
          audit = audit_summary;
          anomalies = List.rev !anomalies;
          snapshots;
          notes = List.rev !notes;
        }
    end
  end

let has_anomalies r = r.anomalies <> []

let reconstructed r =
  List.filter (fun t -> t.complete) r.traces |> List.length

(* ---- rendering ------------------------------------------------------ *)

let render ?(verbose = false) r =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "doctor: %s\n" r.dir;
  pf "  dumps: nodes [%s], %d events (%d overwritten in rings), %d metrics \
      snapshot lines\n"
    (String.concat ";" (List.map string_of_int r.nodes))
    r.events r.dropped r.snapshots;
  List.iter (fun (i, n) -> if n > 1 then pf "  node %d: %d boots\n" i n) r.boots;
  List.iter (fun n -> pf "  note: %s\n" n) r.notes;
  pf "  traces: %d sampled, %d fully reconstructed\n" (List.length r.traces)
    (reconstructed r);
  List.iter
    (fun t ->
      if verbose || not t.complete then begin
        pf "    %s (origin node %d)%s\n" (Trace_ctx.to_string t.tid) t.origin
          (if t.complete then "" else "  [incomplete]");
        let ev name = function
          | Some ti -> pf "      %-10s @%d us\n" name ti
          | None -> pf "      %-10s (missing)\n" name
        in
        ev "submit" t.submit_time;
        ev "bcast" t.bcast_time;
        List.iter (fun (n, ti) -> pf "      rx @ node %d @%d us\n" n ti) t.first_rx;
        List.iter (fun (j, ti) -> pf "      propose[%d] @%d us\n" j ti) t.proposes;
        ev "decide" t.decide_time;
        List.iter
          (fun (n, ti, pos) -> pf "      apply @ node %d pos %d @%d us\n" n pos ti)
          t.applies;
        ev "ack" t.ack_time
      end)
    r.traces;
  if r.stages <> [] then begin
    pf "  stage latency (us):\n";
    List.iter
      (fun s ->
        pf "    %-28s n=%-5d mean=%-10.1f max=%.1f\n" s.stage s.count s.mean_us
          s.max_us)
      r.stages
  end;
  if r.recoveries <> [] then begin
    pf "  recovery timeline:\n";
    List.iter
      (fun rv ->
        pf "    node %d boot %d: replayed %d records in %d us" rv.rv_node
          rv.rv_boot rv.rv_replay_records rv.rv_replay_us;
        if rv.rv_rounds > 0 || rv.rv_protocol_us > 0 then
          pf ", %d consensus rounds in %d us" rv.rv_rounds rv.rv_protocol_us;
        (match rv.rv_stjump with
        | Some (from_, to_) -> pf ", state transfer %d -> %d" from_ to_
        | None -> ());
        if rv.rv_caught_len >= 0 then
          pf ", caught up at length %d (%d us after boot)" rv.rv_caught_len
            rv.rv_caught_us
        else pf ", never caught up in this dump";
        pf "\n")
      r.recoveries
  end;
  (match r.audit with
  | Some a ->
    pf "  audit: %d chain grid points compared; %d client histories (%d \
        ops, %d lin reads checked)\n"
      a.au_chain_points a.au_histories a.au_events a.au_lin_reads
  | None -> ());
  if r.anomalies = [] then pf "  anomalies: none\n"
  else begin
    pf "  anomalies: %d\n" (List.length r.anomalies);
    List.iter (fun a -> pf "    [%s] %s\n" a.code a.detail) r.anomalies
  end;
  Buffer.contents b
