(* Offline trace analyzer behind [abcast-sim doctor].

   Input is a live run directory: per-node flight-recorder dumps
   ([node<i>/flight.bin], written by the runtime next to each WAL) plus
   any JSONL metrics snapshot files the run left at the top level. The
   analyzer merges every node's events into one timeline (the live
   runtime stamps all flight events against one shared epoch, so
   cross-node times are directly comparable), reconstructs the causal
   path of every sampled broadcast, breaks the end-to-end latency into
   stages, and cross-checks the merged history for protocol anomalies.

   The anomaly rules only ever compare facts the total order makes
   deterministic (apply positions, instance numbers, lease floors), so
   they are robust to the ring buffer having dropped old events: a
   missing event can hide an anomaly but never invent one. *)

module Flight = Abcast_sim.Flight
module Trace_ctx = Abcast_core.Trace_ctx

type trace_info = {
  tid : int;
  origin : int;  (* node packed into the trace id *)
  submit_time : int option;  (* linked via the ack's (session, seq) *)
  bcast_time : int option;
  first_rx : (int * int) list;  (* (node, time), one per remote node *)
  proposes : (int * int) list;  (* (instance, time) *)
  decide_time : int option;
  applies : (int * int * int) list;  (* (node, time, apply position) *)
  ack_time : int option;
  complete : bool;
      (* bcast + propose + decide + >= 1 apply all present: the causal
         path can be walked end to end from the dumps *)
}

type stage_stat = {
  stage : string;
  count : int;
  mean_us : float;
  max_us : float;
}

type anomaly = { code : string; detail : string }

type report = {
  dir : string;
  nodes : int list;  (* node ids a dump was loaded for *)
  events : int;
  dropped : int;  (* summed ring overwrites across nodes *)
  boots : (int * int) list;  (* node -> boots seen in its dump *)
  traces : trace_info list;
  stages : stage_stat list;
  anomalies : anomaly list;
  snapshots : int;  (* JSONL metrics lines merged *)
  notes : string list;
}

(* ---- loading -------------------------------------------------------- *)

let list_node_dumps dir =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.filter_map (fun e ->
           if String.length e > 4 && String.sub e 0 4 = "node" then
             match int_of_string_opt (String.sub e 4 (String.length e - 4)) with
             | Some i ->
               let path = Filename.concat (Filename.concat dir e) "flight.bin" in
               if Sys.file_exists path then Some (i, path) else None
             | None -> None
           else None)
    |> List.sort compare
  | exception Sys_error _ -> []

let list_jsonl dir =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.filter (fun e -> Filename.check_suffix e ".jsonl")
    |> List.map (Filename.concat dir)
    |> List.sort compare
  | exception Sys_error _ -> []

let count_lines path =
  try
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  with Sys_error _ -> 0

(* ---- analysis ------------------------------------------------------- *)

let us f = float_of_int f

let mk_stage name samples =
  match samples with
  | [] -> None
  | _ ->
    let n = List.length samples in
    let sum = List.fold_left ( +. ) 0. samples in
    let mx = List.fold_left Float.max neg_infinity samples in
    Some { stage = name; count = n; mean_us = sum /. float_of_int n; max_us = mx }

let analyze ?(max_traces = 64) ~dir () =
  let dumps = list_node_dumps dir in
  if dumps = [] then Error (Printf.sprintf "%s: no node*/flight.bin dumps" dir)
  else begin
    let notes = ref [] in
    let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
    let loaded =
      List.filter_map
        (fun (i, path) ->
          match Flight.load_file path with
          | Ok d -> Some (i, d)
          | Error e ->
            note "node %d: unreadable flight dump (%s)" i e;
            None)
        dumps
    in
    if loaded = [] then Error (Printf.sprintf "%s: no readable flight dumps" dir)
    else begin
      let all =
        List.concat_map (fun (_, d) -> d.Flight.d_events) loaded
        |> List.sort (fun (a : Flight.event) b ->
               compare (a.e_time, a.e_node, a.e_stage) (b.e_time, b.e_node, b.e_stage))
      in
      let dropped =
        List.fold_left (fun acc (_, d) -> acc + d.Flight.d_dropped) 0 loaded
      in
      let boots =
        List.map
          (fun (i, d) ->
            let bs =
              List.filter (fun (e : Flight.event) -> e.e_stage = Flight.boot)
                d.Flight.d_events
            in
            (i, List.length bs))
          loaded
      in
      (* index events by kind once *)
      let by_stage st =
        List.filter (fun (e : Flight.event) -> e.e_stage = st) all
      in
      let rx =
        List.filter
          (fun (e : Flight.event) ->
            e.e_stage = Flight.rx_ring || e.e_stage = Flight.rx_gossip)
          all
      in
      let decides = by_stage Flight.decide in
      let proposes_all = by_stage Flight.propose in
      let applies_all = by_stage Flight.apply in
      let acks = by_stage Flight.ack in
      let submits = by_stage Flight.submit in
      let stjumps = by_stage Flight.stjump in
      let leases = by_stage Flight.lease in
      (* every distinct sampled trace id, in first-seen order *)
      let tids = Hashtbl.create 64 in
      let tid_order = ref [] in
      List.iter
        (fun (e : Flight.event) ->
          if e.e_trace <> 0 && not (Hashtbl.mem tids e.e_trace) then begin
            Hashtbl.add tids e.e_trace ();
            tid_order := e.e_trace :: !tid_order
          end)
        all;
      let tid_order = List.rev !tid_order in
      if List.length tid_order > max_traces then
        note "showing first %d of %d sampled traces" max_traces
          (List.length tid_order);
      let decide_time_of ~group j t_p =
        List.fold_left
          (fun acc (e : Flight.event) ->
            if e.e_a = j && e.e_group = group && e.e_time >= t_p then
              match acc with
              | Some t when t <= e.e_time -> acc
              | _ -> Some e.e_time
            else acc)
          None decides
      in
      let trace_of tid =
        let ev = List.filter (fun (e : Flight.event) -> e.e_trace = tid) all in
        let find st =
          List.find_opt (fun (e : Flight.event) -> e.e_stage = st) ev
        in
        let bcast = find Flight.bcast in
        let group =
          match ev with e :: _ -> e.e_group | [] -> 0
        in
        let origin = Trace_ctx.node tid in
        (* first sight per remote node *)
        let first_rx =
          List.fold_left
            (fun acc (e : Flight.event) ->
              if e.e_trace = tid && not (List.mem_assoc e.e_node acc) then
                (e.e_node, e.e_time) :: acc
              else acc)
            [] rx
          |> List.rev
        in
        let proposes =
          List.filter_map
            (fun (e : Flight.event) ->
              if e.e_trace = tid then Some (e.e_a, e.e_time) else None)
            proposes_all
        in
        let decide_time =
          List.fold_left
            (fun acc (j, t_p) ->
              match (acc, decide_time_of ~group j t_p) with
              | None, d -> d
              | d, None -> d
              | Some a, Some b -> Some (min a b))
            None proposes
        in
        let applies =
          List.filter_map
            (fun (e : Flight.event) ->
              if e.e_trace = tid then Some (e.e_node, e.e_time, e.e_a) else None)
            applies_all
        in
        let ack = List.find_opt (fun (e : Flight.event) -> e.e_trace = tid) acks in
        (* the ack carries (session, seq); the matching submit is the
           untraced event with the same operands at the ack's node *)
        let submit_time =
          match ack with
          | None -> None
          | Some a ->
            List.find_opt
              (fun (e : Flight.event) ->
                e.e_node = a.e_node && e.e_a = a.e_a && e.e_b = a.e_b)
              submits
            |> Option.map (fun (e : Flight.event) -> e.e_time)
        in
        {
          tid;
          origin;
          submit_time;
          bcast_time = Option.map (fun (e : Flight.event) -> e.e_time) bcast;
          first_rx;
          proposes;
          decide_time;
          applies;
          ack_time = Option.map (fun (e : Flight.event) -> e.e_time) ack;
          complete =
            bcast <> None && proposes <> [] && decide_time <> None
            && applies <> [];
        }
      in
      let traces =
        List.filteri (fun i _ -> i < max_traces) tid_order |> List.map trace_of
      in
      (* ---- per-stage latency breakdown ---- *)
      let collect f = List.concat_map f traces in
      let stages =
        List.filter_map Fun.id
          [
            mk_stage "submit->bcast"
              (collect (fun t ->
                   match (t.submit_time, t.bcast_time) with
                   | Some s, Some b when b >= s -> [ us (b - s) ]
                   | _ -> []));
            mk_stage "bcast->rx (dissemination)"
              (collect (fun t ->
                   match t.bcast_time with
                   | Some b ->
                     List.filter_map
                       (fun (n, r) ->
                         if n <> t.origin && r >= b then Some (us (r - b))
                         else None)
                       t.first_rx
                   | None -> []));
            mk_stage "propose->decide (consensus)"
              (collect (fun t ->
                   match (t.proposes, t.decide_time) with
                   | (_, p) :: _, Some d when d >= p -> [ us (d - p) ]
                   | _ -> []));
            mk_stage "decide->apply"
              (collect (fun t ->
                   match t.decide_time with
                   | Some d ->
                     List.filter_map
                       (fun (_, ta, _) ->
                         if ta >= d then Some (us (ta - d)) else None)
                       t.applies
                   | None -> []));
            mk_stage "apply->ack"
              (collect (fun t ->
                   match (t.ack_time, t.applies) with
                   | Some a, (_ :: _ as aps) ->
                     let first =
                       List.fold_left (fun m (_, ta, _) -> min m ta) max_int aps
                     in
                     if a >= first then [ us (a - first) ] else []
                   | _ -> []));
            mk_stage "wal append (dur)"
              (List.filter_map
                 (fun (e : Flight.event) ->
                   if e.e_stage = Flight.wal_append then Some (us e.e_a)
                   else None)
                 all);
            mk_stage "wal fsync (dur)"
              (List.filter_map
                 (fun (e : Flight.event) ->
                   if e.e_stage = Flight.wal_fsync then Some (us e.e_a) else None)
                 all);
          ]
      in
      (* ---- anomalies ---- *)
      let anomalies = ref [] in
      let flag code fmt =
        Printf.ksprintf (fun detail -> anomalies := { code; detail } :: !anomalies) fmt
      in
      (* stuck consensus instance: proposed at some node, never decided
         anywhere in its group, while a later instance of that group did
         decide (so it is not just in flight at the end of the run) *)
      let groups =
        List.sort_uniq compare
          (List.map (fun (e : Flight.event) -> e.e_group) all)
      in
      List.iter
        (fun g ->
          let decided =
            List.filter_map
              (fun (e : Flight.event) ->
                if e.e_group = g then Some e.e_a else None)
              decides
          in
          let max_decided = List.fold_left max (-1) decided in
          let proposed =
            List.filter_map
              (fun (e : Flight.event) ->
                if e.e_group = g && e.e_trace = 0 then Some e.e_a else None)
              proposes_all
            |> List.sort_uniq compare
          in
          List.iter
            (fun j ->
              if j < max_decided && not (List.mem j decided) then
                flag "stuck-instance"
                  "group %d: instance %d proposed but never decided (max \
                   decided %d)"
                  g j max_decided)
            proposed)
        groups;
      (* dedup violation: one sampled payload applied twice by the same
         incarnation of the same node (recovery replay legitimately
         re-applies under a higher boot, so the boot scopes the check) *)
      let seen_apply = Hashtbl.create 64 in
      List.iter
        (fun (e : Flight.event) ->
          if e.e_trace <> 0 then begin
            let k = (e.e_trace, e.e_node, e.e_group, e.e_boot) in
            if Hashtbl.mem seen_apply k then
              flag "dedup-violation"
                "node %d (boot %d): trace %s applied twice" e.e_node e.e_boot
                (Trace_ctx.to_string e.e_trace)
            else Hashtbl.add seen_apply k ()
          end)
        applies_all;
      (* delivery gap: the total order fixes what sits at each apply
         position of a group, so a node whose dump brackets position p
         (applies below and above) without applying p itself skipped a
         delivery — unless a state-transfer jump on that node explains
         the hole *)
      let jump_nodes =
        List.sort_uniq compare
          (List.map (fun (e : Flight.event) -> (e.e_node, e.e_group)) stjumps)
      in
      List.iter
        (fun t ->
          match t.applies with
          | [] -> ()
          | (_, _, pos) :: _ ->
            let g =
              match
                List.find_opt (fun (e : Flight.event) -> e.e_trace = t.tid) all
              with
              | Some e -> e.e_group
              | None -> 0
            in
            List.iter
              (fun (i, _) ->
                let mine =
                  List.filter_map
                    (fun (e : Flight.event) ->
                      if
                        e.e_stage = Flight.apply && e.e_node = i && e.e_group = g
                        && e.e_trace <> 0
                      then Some (e.e_trace, e.e_a)
                      else None)
                    all
                in
                let has_tid = List.exists (fun (tid, _) -> tid = t.tid) mine in
                let below = List.exists (fun (_, p) -> p < pos) mine in
                let above = List.exists (fun (_, p) -> p > pos) mine in
                if
                  (not has_tid) && below && above
                  && not (List.mem (i, g) jump_nodes)
                then
                  flag "delivery-gap"
                    "node %d: applied positions around %d of group %d but \
                     never trace %s"
                    i pos g (Trace_ctx.to_string t.tid))
              boots)
        traces;
      (* overlapping lease: a Lease renewal granted to a node that is not
         the last Claim holder on that observer's timeline means two
         nodes could serve lease reads at once *)
      let last_claim = Hashtbl.create 8 in
      List.iter
        (fun (e : Flight.event) ->
          let k = (e.e_node, e.e_group) in
          if e.e_b land 2 <> 0 then Hashtbl.replace last_claim k e.e_a
          else
            match Hashtbl.find_opt last_claim k with
            | Some holder when holder <> e.e_a ->
              flag "lease-overlap"
                "node %d group %d: lease renewed for node %d while floor is \
                 held by node %d"
                e.e_node e.e_group e.e_a holder
            | _ -> ())
        leases;
      let snapshots =
        List.fold_left (fun acc p -> acc + count_lines p) 0 (list_jsonl dir)
      in
      Ok
        {
          dir;
          nodes = List.map fst loaded;
          events = List.length all;
          dropped;
          boots;
          traces;
          stages;
          anomalies = List.rev !anomalies;
          snapshots;
          notes = List.rev !notes;
        }
    end
  end

let has_anomalies r = r.anomalies <> []

let reconstructed r =
  List.filter (fun t -> t.complete) r.traces |> List.length

(* ---- rendering ------------------------------------------------------ *)

let render ?(verbose = false) r =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "doctor: %s\n" r.dir;
  pf "  dumps: nodes [%s], %d events (%d overwritten in rings), %d metrics \
      snapshot lines\n"
    (String.concat ";" (List.map string_of_int r.nodes))
    r.events r.dropped r.snapshots;
  List.iter (fun (i, n) -> if n > 1 then pf "  node %d: %d boots\n" i n) r.boots;
  List.iter (fun n -> pf "  note: %s\n" n) r.notes;
  pf "  traces: %d sampled, %d fully reconstructed\n" (List.length r.traces)
    (reconstructed r);
  List.iter
    (fun t ->
      if verbose || not t.complete then begin
        pf "    %s (origin node %d)%s\n" (Trace_ctx.to_string t.tid) t.origin
          (if t.complete then "" else "  [incomplete]");
        let ev name = function
          | Some ti -> pf "      %-10s @%d us\n" name ti
          | None -> pf "      %-10s (missing)\n" name
        in
        ev "submit" t.submit_time;
        ev "bcast" t.bcast_time;
        List.iter (fun (n, ti) -> pf "      rx @ node %d @%d us\n" n ti) t.first_rx;
        List.iter (fun (j, ti) -> pf "      propose[%d] @%d us\n" j ti) t.proposes;
        ev "decide" t.decide_time;
        List.iter
          (fun (n, ti, pos) -> pf "      apply @ node %d pos %d @%d us\n" n pos ti)
          t.applies;
        ev "ack" t.ack_time
      end)
    r.traces;
  if r.stages <> [] then begin
    pf "  stage latency (us):\n";
    List.iter
      (fun s ->
        pf "    %-28s n=%-5d mean=%-10.1f max=%.1f\n" s.stage s.count s.mean_us
          s.max_us)
      r.stages
  end;
  if r.anomalies = [] then pf "  anomalies: none\n"
  else begin
    pf "  anomalies: %d\n" (List.length r.anomalies);
    List.iter (fun a -> pf "    [%s] %s\n" a.code a.detail) r.anomalies
  end;
  Buffer.contents b
