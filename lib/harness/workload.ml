module Rng = Abcast_util.Rng

let payload rng ~size =
  String.init size (fun _ -> Char.chr (32 + Rng.int rng 95))

(* Sharded clusters spread load uniformly over the stack's groups; the
   default [groups = 1] pins everything to group 0, which on a
   single-group stack is the old behaviour exactly. *)
let pick_group rng groups = if groups <= 1 then 0 else Rng.int rng groups

let open_loop cluster ~rng ~senders ~start ~stop ~mean_gap ?(size = 32)
    ?(groups = 1) () =
  let senders = Array.of_list senders in
  let count = ref 0 in
  let t = ref start in
  let gap () = 1 + int_of_float (Rng.exponential rng ~mean:(float_of_int mean_gap)) in
  t := !t + gap ();
  while !t < stop do
    let node = Rng.pick rng senders in
    let group = pick_group rng groups in
    let data = payload rng ~size in
    Cluster.at cluster !t (fun () ->
        ignore (Cluster.broadcast cluster ~group ~node data));
    incr count;
    t := !t + gap ()
  done;
  !count

let burst cluster ~rng ~senders ~at ~count ?(size = 32) ?(groups = 1) () =
  let senders = Array.of_list senders in
  Cluster.at cluster at (fun () ->
      for _ = 1 to count do
        let node = Rng.pick rng senders in
        let group = pick_group rng groups in
        ignore (Cluster.broadcast cluster ~group ~node (payload rng ~size))
      done)

let closed_loop cluster ~rng ~node ~total ?(pipeline = 1) ?(think = 200)
    ?(size = 32) () =
  let issued = ref 0 in
  let blocking = Cluster.broadcast_blocks cluster in
  let rec issue () =
    if !issued < total then begin
      incr issued;
      let data = payload rng ~size in
      if blocking then
        (* The basic A-broadcast returns only once the message is in the
           Agreed queue: the client's next request waits for delivery. *)
        ignore
          (Cluster.broadcast cluster ~node
             ~on_agreed:(fun _ -> Cluster.after cluster think issue)
             data)
      else begin
        (* Early-return A-broadcast (§5.4): the call returns as soon as
           the Unordered set is logged; the client continues after its
           think time, regardless of ordering progress. *)
        ignore (Cluster.broadcast cluster ~node data);
        Cluster.after cluster think issue
      end
    end
  in
  (* Stagger the initial pipeline slightly so clients do not synchronize. *)
  for _ = 1 to pipeline do
    Cluster.after cluster (Rng.int rng 100) issue
  done
