(** A simulated cluster running one protocol stack on every process.

    [create] wires a {!Abcast_core.Proto.t} into an engine: it installs a
    behaviour per process that (re)creates the protocol at each
    incarnation and records deliveries and broadcast completions. The wire
    message type stays hidden; scenarios drive the run through the
    monomorphic operations below. *)

type t

val create :
  Abcast_core.Proto.t ->
  seed:int ->
  n:int ->
  ?net:Abcast_sim.Net.t ->
  ?trace:Abcast_sim.Trace.t ->
  ?count_bytes:bool ->
  ?storage:(metrics:Abcast_sim.Metrics.t -> node:int -> Abcast_sim.Storage.t) ->
  ?flight:(node:int -> Abcast_sim.Flight.t) ->
  unit ->
  t
(** Build the cluster and start every process. [count_bytes] (default
    false) enables per-message byte accounting (slower: serializes every
    message). [storage] selects the stable-storage backend per process
    (default memory-only; see {!Abcast_sim.Engine.create}). [flight]
    gives each process a real flight recorder — tests dump them to a
    run directory and feed {!Abcast_harness.Doctor}. *)

val n : t -> int
val metrics : t -> Abcast_sim.Metrics.t

val flight : t -> int -> Abcast_sim.Flight.t
(** A process's flight recorder ([Flight.disabled] no-op unless [create]
    got a [flight] factory). *)

val trace : t -> Abcast_sim.Trace.t

val histogram : t -> string -> Abcast_util.Histogram.t option
(** Latency/size histogram of an observed series, merged across all
    processes ([None] if the series was never observed). *)

val hist_summary : t -> string -> Abcast_util.Histogram.summary option
(** Percentile summary of {!histogram} — the one-call way for a test or
    experiment to read e.g. [stage.propose_to_adeliver_us]. *)


val net : t -> Abcast_sim.Net.t
val now : t -> int
val events_processed : t -> int

val run : ?until:int -> ?max_events:int -> t -> unit
val run_until :
  ?until:int -> ?max_events:int -> t -> pred:(unit -> bool) -> unit -> bool

val at : t -> int -> (unit -> unit) -> unit
val after : t -> int -> (unit -> unit) -> unit

val crash : t -> int -> unit
val recover : t -> int -> unit
val is_up : t -> int -> bool

val broadcast :
  t -> ?on_agreed:(Abcast_core.Payload.id -> unit) -> ?group:int ->
  node:int -> string -> Abcast_core.Payload.id option
(** Inject an [A-broadcast] at a process; [None] if it is down. The id
    and its completion are recorded — tagged with [group] (default 0) —
    for the property checks. On a sharded stack the caller picks the
    group (e.g. via {!Partitioned_kv} routing); the harness never hash
    routes, so the checks always know which group owns each id. *)

(** The accessors below read one broadcast group when [?group] is given
    and the whole stack otherwise (identical on single-group stacks —
    all existing call sites read group 0's aggregate). *)

val round : ?group:int -> t -> int -> int
val delivered_count : ?group:int -> t -> int -> int
val delivered_tail : ?group:int -> t -> int -> Abcast_core.Payload.t list
val delivery_vc : ?group:int -> t -> int -> Abcast_core.Vclock.t
val unordered_count : ?group:int -> t -> int -> int
val retained_bytes : t -> int -> int
(** Live stable-storage footprint of a process (experiment E3). *)

val retained_keys : t -> int -> int

val disk_bytes : t -> int -> int
(** On-disk footprint of a process's storage backend (0 for memory) —
    what WAL compaction keeps bounded. *)

val wal_stats : t -> int -> Abcast_store.Wal.stats option
(** WAL backend counters of a process ([None] unless the cluster was
    created with a [`Wal] storage factory). *)

val read_storage : t -> int -> string -> string option
(** Peek at a key of a process's stable storage (works whether the
    process is up or down — the lemma monitors use it to audit logs). *)

val storage_keys : t -> int -> string -> string list
(** All stored keys of a process with the given prefix, sorted. *)

val corrupt_storage : t -> int -> key:string -> string -> unit
(** Fault injection outside the model: overwrite a stable-storage key
    behind the protocol's back (disk corruption). The protocols do NOT
    promise to survive this — it exists so tests can prove the lemma
    monitors detect log tampering. *)

val sent : t -> (Abcast_core.Payload.id * bool) list
(** Every id injected through {!broadcast}, with whether its completion
    callback has fired at the origin ("the A-broadcast returned"). *)

val sent_in : t -> group:int -> (Abcast_core.Payload.id * bool) list
(** {!sent} restricted to the ids injected into one broadcast group. *)

val broadcast_blocks : t -> bool
(** Whether this stack's [A-broadcast] blocks until local agreement
    (basic protocol) or returns at log time (early-return alternative) —
    drives the pacing of closed-loop clients. *)

val ever_delivered : t -> Abcast_core.Payload.id list
(** Every id that was A-delivered by any process at any point of the run
    (including by processes that later crashed) — the obligation set of
    the uniform termination property's clause (2). Spans all groups; ids
    of distinct groups may collide. *)

val ever_delivered_in : t -> group:int -> Abcast_core.Payload.id list
(** {!ever_delivered} restricted to one broadcast group. *)

val shards : t -> int
(** Number of broadcast groups of the running stack (1 unless built by
    {!Abcast_core.Factory.sharded}). *)

val all_caught_up : t -> ?group:int -> ?among:int list -> count:int -> unit -> bool
(** Whether every listed (default: all) process has delivered at least
    [count] messages (in one group when [?group] is given, in total
    otherwise). *)
