module Engine = Abcast_sim.Engine
module Payload = Abcast_core.Payload

(* Monomorphic view over one process of the (existential) protocol. The
   [group_*] fields index one broadcast group of a sharded stack (only
   group 0 exists otherwise); the plain fields aggregate. *)
type node_ops = {
  broadcast_to :
    ?on_agreed:(Payload.id -> unit) -> group:int -> string -> Payload.id;
  round : unit -> int;
  delivered_count : unit -> int;
  delivered_tail : unit -> Payload.t list;
  delivery_vc : unit -> Abcast_core.Vclock.t;
  unordered_count : unit -> int;
  group_round : int -> int;
  group_delivered_count : int -> int;
  group_delivered_tail : int -> Payload.t list;
  group_delivery_vc : int -> Abcast_core.Vclock.t;
  group_unordered_count : int -> int;
}

type t = {
  n : int;
  metrics : Abcast_sim.Metrics.t;
  trace : Abcast_sim.Trace.t;
  net : Abcast_sim.Net.t;
  nodes : node_ops option array;
  now : unit -> int;
  events_processed : unit -> int;
  run : ?until:int -> ?max_events:int -> unit -> unit;
  run_until :
    ?until:int -> ?max_events:int -> pred:(unit -> bool) -> unit -> bool;
  at : int -> (unit -> unit) -> unit;
  after : int -> (unit -> unit) -> unit;
  crash : int -> unit;
  recover : int -> unit;
  is_up : int -> bool;
  retained_bytes : int -> int;
  retained_keys : int -> int;
  disk_bytes : int -> int;
  flight_of : int -> Abcast_sim.Flight.t;
  wal_stats : int -> Abcast_store.Wal.stats option;
  read_storage : int -> string -> string option;
  corrupt_storage : int -> key:string -> string -> unit;
  storage_keys : int -> string -> string list;
  ever_delivered : (int * Payload.id, unit) Hashtbl.t;
      (* keyed (group, id): payload ids are per-stream counters and
         collide across groups of a sharded stack *)
  broadcast_blocks : bool;
  shards : int;
  mutable sent : (int * Payload.id * bool ref) list;
}

let create (module P : Abcast_core.Proto.S) ~seed ~n ?net ?trace
    ?(count_bytes = false) ?storage ?flight () =
  let msg_size = if count_bytes then Some P.msg_size else None in
  let eng = Engine.create ~seed ~n ?net ?msg_size ?trace ?storage ?flight () in
  let nodes = Array.make n None in
  let ever_delivered = Hashtbl.create 256 in
  for i = 0 to n - 1 do
    Engine.set_behavior eng i (fun io ->
        let p =
          P.create io ~deliver:(fun ~group pl ->
              Hashtbl.replace ever_delivered (group, pl.Payload.id) ())
        in
        nodes.(i) <-
          Some
            {
              broadcast_to =
                (fun ?on_agreed ~group data ->
                  P.broadcast_to p ?on_agreed ~group data);
              round = (fun () -> P.round p);
              delivered_count = (fun () -> P.delivered_count p);
              delivered_tail = (fun () -> P.delivered_tail p);
              delivery_vc = (fun () -> P.delivery_vc p);
              unordered_count = (fun () -> P.unordered_count p);
              group_round = (fun g -> P.group_round p g);
              group_delivered_count = (fun g -> P.group_delivered_count p g);
              group_delivered_tail = (fun g -> P.group_delivered_tail p g);
              group_delivery_vc = (fun g -> P.group_delivery_vc p g);
              group_unordered_count = (fun g -> P.group_unordered_count p g);
            };
        P.handler p)
  done;
  Engine.start_all eng;
  {
    n;
    metrics = Engine.metrics eng;
    trace = Engine.trace eng;
    net = Engine.network eng;
    nodes;
    now = (fun () -> Engine.now eng);
    events_processed = (fun () -> Engine.events_processed eng);
    run = (fun ?until ?max_events () -> Engine.run ?until ?max_events eng);
    run_until =
      (fun ?until ?max_events ~pred () ->
        Engine.run_until eng ?until ?max_events ~pred ());
    at = (fun time fn -> Engine.at eng time fn);
    after = (fun delay fn -> Engine.after eng delay fn);
    crash = (fun i -> Engine.crash eng i);
    recover = (fun i -> Engine.recover eng i);
    is_up = (fun i -> Engine.is_up eng i);
    retained_bytes =
      (fun i -> Abcast_sim.Storage.retained_bytes (Engine.storage eng i));
    retained_keys =
      (fun i -> Abcast_sim.Storage.retained_keys (Engine.storage eng i));
    disk_bytes = (fun i -> Abcast_sim.Storage.disk_bytes (Engine.storage eng i));
    flight_of = (fun i -> Engine.flight eng i);
    wal_stats = (fun i -> Abcast_sim.Storage.wal_stats (Engine.storage eng i));
    read_storage = (fun i key -> Abcast_sim.Storage.read (Engine.storage eng i) key);
    corrupt_storage =
      (fun i ~key v ->
        Abcast_sim.Storage.write (Engine.storage eng i) ~layer:"corruption"
          ~key v);
    storage_keys =
      (fun i prefix ->
        Abcast_sim.Storage.keys_with_prefix (Engine.storage eng i) prefix);
    ever_delivered;
    broadcast_blocks = P.broadcast_blocks;
    shards = P.shards;
    sent = [];
  }

let n t = t.n
let metrics t = t.metrics
let flight t i = t.flight_of i
let trace t = t.trace
let histogram t name = Abcast_sim.Metrics.histogram t.metrics name
let hist_summary t name = Abcast_sim.Metrics.hist_summary t.metrics name
let net t = t.net
let now t = t.now ()
let events_processed t = t.events_processed ()
let run ?until ?max_events t = t.run ?until ?max_events ()

let run_until ?until ?max_events t ~pred () =
  t.run_until ?until ?max_events ~pred ()

let at t time fn = t.at time fn
let after t delay fn = t.after delay fn
let crash t i = t.crash i
let recover t i = t.recover i
let is_up t i = t.is_up i

let ops t i =
  match t.nodes.(i) with
  | Some ops -> ops
  | None -> invalid_arg "Cluster: process was never started"

let broadcast t ?on_agreed ?(group = 0) ~node data =
  if not (t.is_up node) then None
  else begin
    let agreed = ref false in
    let cb id =
      agreed := true;
      match on_agreed with Some f -> f id | None -> ()
    in
    let id = (ops t node).broadcast_to ~on_agreed:cb ~group data in
    t.sent <- (group, id, agreed) :: t.sent;
    Some id
  end

let round ?group t i =
  match group with None -> (ops t i).round () | Some g -> (ops t i).group_round g

let delivered_count ?group t i =
  match group with
  | None -> (ops t i).delivered_count ()
  | Some g -> (ops t i).group_delivered_count g

let delivered_tail ?group t i =
  match group with
  | None -> (ops t i).delivered_tail ()
  | Some g -> (ops t i).group_delivered_tail g

let delivery_vc ?group t i =
  match group with
  | None -> (ops t i).delivery_vc ()
  | Some g -> (ops t i).group_delivery_vc g

let unordered_count ?group t i =
  match group with
  | None -> (ops t i).unordered_count ()
  | Some g -> (ops t i).group_unordered_count g
let retained_bytes t i = t.retained_bytes i
let retained_keys t i = t.retained_keys i
let disk_bytes t i = t.disk_bytes i
let wal_stats t i = t.wal_stats i
let read_storage t i key = t.read_storage i key
let corrupt_storage t i ~key v = t.corrupt_storage i ~key v
let storage_keys t i prefix = t.storage_keys i prefix

let sent t = List.rev_map (fun (_, id, flag) -> (id, !flag)) t.sent

let sent_in t ~group =
  List.rev
    (List.filter_map
       (fun (g, id, flag) -> if g = group then Some (id, !flag) else None)
       t.sent)

let ever_delivered t =
  Hashtbl.fold (fun (_, id) () acc -> id :: acc) t.ever_delivered []

let ever_delivered_in t ~group =
  Hashtbl.fold
    (fun (g, id) () acc -> if g = group then id :: acc else acc)
    t.ever_delivered []

let broadcast_blocks t = t.broadcast_blocks
let shards t = t.shards

let all_caught_up t ?group ?among ~count () =
  let ids = match among with Some l -> l | None -> List.init t.n Fun.id in
  List.for_all (fun i -> delivered_count ?group t i >= count) ids
