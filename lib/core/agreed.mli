(** The [Agreed] queue — the protocol's representation of the delivery
    sequence (paper §4.1, redefined in §5.2).

    A delivery sequence is an optional {e base} (an application checkpoint
    that logically contains a prefix of the sequence, with its vector
    clock) followed by an explicit {e tail} of messages. The basic
    protocol only ever grows the tail; the alternative protocol
    periodically {!compact}s the tail into the base and can {!adopt} a
    more advanced replica's queue wholesale (state transfer, §5.3).

    All operations are idempotent in the paper's sense: appending a
    message that is already contained is a no-op. *)

type t
(** Mutable queue state of one process. *)

(** Immutable snapshot — what gets checkpointed to stable storage and
    shipped in [state] messages. *)
type repr = {
  base_app : string option;
      (** serialized application state covering the base, if compacted *)
  base_len : int;  (** number of messages logically inside the base *)
  base_chain : int;  (** {!Audit} chain value after [base_len] deliveries *)
  vc : Vclock.t;  (** every message contained (base and tail) *)
  tail : Payload.t list;  (** explicit suffix, in delivery order *)
}

val create : unit -> t
(** Empty queue: no base, empty tail. *)

val contains : t -> Payload.id -> bool
(** Whether a message is already in the delivery sequence. *)

val append : t -> Payload.t -> bool
(** Append one message; returns [false] (and does nothing) if already
    contained. Raises if the per-stream FIFO invariant would break. *)

val try_append : t -> Payload.t -> [ `Appended | `Dup | `Gap ]
(** Like {!append} but never raises: [`Gap] when the message's stream
    predecessor has not been delivered yet (the message must stay in
    [Unordered] and be re-proposed later). Pipelined decision batches
    can legitimately contain gaps — a competing proposal may win an
    earlier instance without carrying a stream prefix the loser counted
    on — so appliers skip deterministically instead of asserting. *)

val total_len : t -> int
(** Length of the whole logical sequence (base + tail). *)

val chain : t -> int
(** {!Audit} delivery hash chain after the whole sequence — maintained
    incrementally (allocation-free) at every append, carried across
    {!compact}/{!snapshot}/{!restore}/{!adopt}. *)

val chain_at : t -> int -> int option
(** Chain value after the first [pos] deliveries, if still remembered:
    the frontier and the base are always known; intermediate positions
    come from a fixed window of the last 1024 (O(1) lookup). *)

val chain_window : t -> Audit.window
(** The underlying window, for certificate checks. *)

val tail : t -> Payload.t list
(** The explicit tail, in delivery order. *)

val vc : t -> Vclock.t

val compact : t -> app_blob:string -> unit
(** Fold the entire current sequence into a base checkpoint whose
    application state is [app_blob]; the tail becomes empty. *)

val snapshot : t -> repr

val suffix_snapshot : t -> from_len:int -> repr option
(** A snapshot containing only the messages beyond the first [from_len] —
    the §5.3 optimization of shipping a late process only what it is
    missing (after Wuu–Bernstein / lazy replication). [None] when the
    requested prefix reaches into the compacted base (the full snapshot
    with its application checkpoint must be sent instead) or exceeds the
    queue. The receiver adopts it exactly like a full snapshot: its own
    sequence already covers the synthetic base. *)

val restore : repr -> t
(** Rebuild a queue from a snapshot (recovery). *)

val adopt :
  t -> repr -> [ `Deliver of Payload.t list | `Install of string option * Payload.t list ]
(** State transfer: advance this queue to the (at least as long) donor
    snapshot. Returns what the upper layer must do to catch up:
    [`Deliver msgs] if our current sequence already covers the donor's
    base — the missing suffix is appended to our own state (a trimmed
    donor repr carries no prefix, so it must not replace ours) — or
    [`Install (app, msgs)] if it does not (reset the application to the
    donor's base checkpoint, then deliver the donor tail).
    If the donor is not ahead, returns [`Deliver []] and changes
    nothing. *)

(** {2 Wire codec for {!repr}} — what [state] messages and checkpoint
    slots ship. *)

val write_repr : Abcast_util.Wire.writer -> repr -> unit

val read_repr : Abcast_util.Wire.reader -> repr

val pp : Format.formatter -> t -> unit
