(* Sampled per-payload trace context, packed into one immediate int.

   A sampled broadcast mints a context from its originating node and a
   per-node stamp (the broadcast sequence number); every hop, consensus
   round, WAL write and apply it causes — on any node — records flight
   events tagged with this id, so the doctor can stitch one cross-node
   causal timeline per sampled message.

   Packing: [(((stamp lsl 7) lor node) lsl 1) lor 1]. The low bit is
   always set for a sampled context, so [0] unambiguously means
   "unsampled" and the hot paths test a single int against zero. Node
   ids get 7 bits (clusters here are small); the stamp gets the rest.

   Wire form: a (node, stamp) uvarint pair, written only for sampled
   payloads — the unsampled path pays zero bytes and zero branches
   beyond the flag bit already carried by the payload length varint. *)

module Wire = Abcast_util.Wire

type t = int

let none = 0
let[@inline] is_sampled t = t <> 0

let max_node = 0x7f
let max_stamp = max_int lsr 8

let make ~node ~stamp =
  if node < 0 || node > max_node then
    invalid_arg "Trace_ctx.make: node out of range";
  if stamp < 0 || stamp > max_stamp then
    invalid_arg "Trace_ctx.make: stamp out of range";
  (((stamp lsl 7) lor node) lsl 1) lor 1

let[@inline] node t = (t lsr 1) land 0x7f
let[@inline] stamp t = t lsr 8

let write w t =
  Wire.write_uvarint w (node t);
  Wire.write_uvarint w (stamp t)

let read r =
  let node = Wire.read_uvarint r in
  if node > max_node then Wire.error "trace node %d out of range" node;
  let stamp = Wire.read_uvarint r in
  if stamp < 0 || stamp > max_stamp then
    Wire.error "trace stamp out of range";
  (((stamp lsl 7) lor node) lsl 1) lor 1

let to_string t =
  if t = 0 then "-" else Printf.sprintf "t%d.%d" (node t) (stamp t)

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal = Int.equal
let compare = Int.compare
