type consensus = [ `Paxos | `Coord ]

type app_factory = int -> Protocol.app * (Payload.t -> unit)

type group_app_factory =
  node:int -> group:int -> Protocol.app * (Payload.t -> unit)

(* Stack names carry the topology so that benches and metrics comparing
   gossip vs ring dissemination stay distinguishable. *)
let topology_suffix = function Some `Ring -> "+ring" | Some `Gossip | None -> ""

let basic ?(consensus = `Paxos) ?gossip_period ?delta_gossip
    ?gossip_full_every ?dissemination ?max_batch_bytes ?ring_flush_us
    ?need_cap ?trace_sample ?audit_every () : Proto.t =
  let make (module C : Abcast_consensus.Consensus_intf.S) =
    let module P = Protocol.Make (C) in
    (module struct
      let name = "basic" ^ topology_suffix dissemination ^ "/" ^ C.name

      type msg = P.msg

      let msg_size = P.msg_size

      let write_msg = P.write_msg

      let read_msg = P.read_msg

      let encode_msg = P.encode_msg

      let decode_msg = P.decode_msg

      let msg_group _ = 0

      type t = P.Basic.t

      let create io ~deliver =
        P.Basic.create ?gossip_period ?delta_gossip ?gossip_full_every
          ?dissemination ?max_batch_bytes ?ring_flush_us ?need_cap
          ?trace_sample ?audit_every io
          ~on_deliver:(fun p -> deliver ~group:0 p)

      let broadcast_blocks = true

      let handler = P.Basic.handler

      let broadcast = P.Basic.broadcast

      let round = P.Basic.round

      let delivered_count = P.Basic.delivered_count

      let delivered_tail = P.Basic.delivered_tail

      let delivery_vc = P.Basic.delivery_vc

      let unordered_count = P.Basic.unordered_count

      include Proto.Single_group (struct
        type nonrec t = t

        let broadcast = broadcast
        let round = round
        let delivered_count = delivered_count
        let delivered_tail = delivered_tail
        let delivery_vc = delivery_vc
        let unordered_count = unordered_count
      end)
    end : Proto.S)
  in
  match consensus with
  | `Paxos -> make (module Abcast_consensus.Paxos)
  | `Coord -> make (module Abcast_consensus.Coord)

let alternative_named label ?(consensus = `Paxos) ?gossip_period
    ?checkpoint_period ?delta ?early_return ?incremental ?paranoid_log
    ?window ?trim_state ?delta_gossip ?gossip_full_every ?dissemination
    ?max_batch_bytes ?ring_flush_us ?need_cap ?trace_sample ?audit_every
    ?fault_reorder_node ?app_factory ?group_app_factory () : Proto.t =
  let make (module C : Abcast_consensus.Consensus_intf.S) =
    let module P = Protocol.Make (C) in
    (module struct
      let name = label ^ topology_suffix dissemination ^ "/" ^ C.name

      type msg = P.msg

      let msg_size = P.msg_size

      let write_msg = P.write_msg

      let read_msg = P.read_msg

      let encode_msg = P.encode_msg

      let decode_msg = P.decode_msg

      let msg_group _ = 0

      type t = P.Alternative.t

      let create io ~deliver =
        let deliver p = deliver ~group:0 p in
        let app, deliver =
          match app_factory with
          | None -> (None, deliver)
          | Some f ->
            let app, app_deliver = f io.Abcast_sim.Engine.self in
            ( Some app,
              fun p ->
                app_deliver p;
                deliver p )
        in
        (* The group-aware hook sees the io the shard mux rebinds per
           group, so one factory serves every group of a sharded stack
           and its checkpoints land under that group's scoped keys. *)
        let app, deliver =
          match group_app_factory with
          | None -> (app, deliver)
          | Some f ->
            let gapp, app_deliver =
              f ~node:io.Abcast_sim.Engine.self ~group:io.Abcast_sim.Engine.group
            in
            let app =
              match app with
              | None -> Some gapp
              | Some a ->
                Some
                  Protocol.
                    {
                      checkpoint =
                        (fun () ->
                          let wr = Abcast_util.Wire.writer () in
                          Abcast_util.Wire.write_string wr (a.checkpoint ());
                          Abcast_util.Wire.write_string wr (gapp.checkpoint ());
                          Abcast_util.Wire.contents wr);
                      install =
                        (fun blob ->
                          let rd = Abcast_util.Wire.reader blob in
                          a.install (Abcast_util.Wire.read_string rd);
                          gapp.install (Abcast_util.Wire.read_string rd));
                    }
            in
            ( app,
              fun p ->
                app_deliver p;
                deliver p )
        in
        (* The fault hook is addressed by node id so a sim run can arm
           exactly one process; every other node keeps a healthy stack
           and the audit sentinel has honest peers to disagree with. *)
        let fault_reorder_once =
          match fault_reorder_node with
          | Some i when i = io.Abcast_sim.Engine.self -> true
          | _ -> false
        in
        P.Alternative.create ?gossip_period ?checkpoint_period ?delta
          ?early_return ?incremental ?paranoid_log ?window ?trim_state
          ?delta_gossip ?gossip_full_every ?dissemination ?max_batch_bytes
          ?ring_flush_us ?need_cap ?trace_sample ?audit_every
          ~fault_reorder_once ?app io ~on_deliver:deliver

      let broadcast_blocks = not (Option.value early_return ~default:true)

      let handler = P.Alternative.handler

      let broadcast = P.Alternative.broadcast

      let round = P.Alternative.round

      let delivered_count = P.Alternative.delivered_count

      let delivered_tail = P.Alternative.delivered_tail

      let delivery_vc = P.Alternative.delivery_vc

      let unordered_count = P.Alternative.unordered_count

      include Proto.Single_group (struct
        type nonrec t = t

        let broadcast = broadcast
        let round = round
        let delivered_count = delivered_count
        let delivered_tail = delivered_tail
        let delivery_vc = delivery_vc
        let unordered_count = unordered_count
      end)
    end : Proto.S)
  in
  match consensus with
  | `Paxos -> make (module Abcast_consensus.Paxos)
  | `Coord -> make (module Abcast_consensus.Coord)

let alternative ?consensus ?gossip_period ?checkpoint_period ?delta
    ?early_return ?incremental ?paranoid_log ?window ?trim_state ?delta_gossip
    ?gossip_full_every ?dissemination ?max_batch_bytes ?ring_flush_us
    ?need_cap ?trace_sample ?audit_every ?fault_reorder_node ?app_factory
    ?group_app_factory () =
  alternative_named "alt" ?consensus ?gossip_period ?checkpoint_period ?delta
    ?early_return ?incremental ?paranoid_log ?window ?trim_state ?delta_gossip
    ?gossip_full_every ?dissemination ?max_batch_bytes ?ring_flush_us
    ?need_cap ?trace_sample ?audit_every ?fault_reorder_node ?app_factory
    ?group_app_factory ()

(* With ring dissemination the payloads never wait on a gossip tick —
   digests only repair a torn ring — so the preset slows the gossip task
   down (10ms instead of the 3ms default): under a heavy backlog every
   digest exchange costs per-stream scans at each receiver, and at 3ms
   that bookkeeping was a measurable slice of the per-payload budget.
   [repair_period] / [repair_full_every] / [need_cap] expose that repair
   cadence and the Need-pull flow-control cap for per-shard tuning. *)
let throughput ?consensus ?(window = 4) ?(max_batch_bytes = 24_000)
    ?(repair_period = 10_000) ?(repair_full_every = 32) ?need_cap
    ?trace_sample ?audit_every ?fault_reorder_node ?group_app_factory () =
  alternative_named "alt" ?consensus ~window ~dissemination:`Ring
    ~max_batch_bytes ~gossip_full_every:repair_full_every
    ~gossip_period:repair_period ?need_cap ?trace_sample ?audit_every
    ?fault_reorder_node ?group_app_factory ()

let naive ?(consensus = `Paxos) () =
  alternative_named "naive" ~consensus ~paranoid_log:true ~early_return:true
    ~incremental:false ()

let sharded ?route ~shards stack = Shard.mux ?route ~shards stack
