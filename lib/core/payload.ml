type id = { origin : int; boot : int; seq : int }

(* Plain int branches instead of [compare]: this is the comparator the
   batch sort runs ~n log n times per consensus proposal, and the
   specialised [caml_int_compare] calls dominate it otherwise. *)
let[@inline] compare_id a b =
  if a.origin <> b.origin then if a.origin < b.origin then -1 else 1
  else if a.boot <> b.boot then if a.boot < b.boot then -1 else 1
  else if a.seq < b.seq then -1
  else if a.seq > b.seq then 1
  else 0

let equal_id a b = compare_id a b = 0

(* Id-keyed hash tables: every per-message table (Unordered, pending,
   logged keys, proposal coverage) keys on an identity, and the generic
   [Hashtbl] pays a [caml_hash] structure walk plus a polymorphic
   comparison per probe. Three-int mixing and int-only equality keep the
   probe entirely in straight-line code. *)
module Id_tbl = Hashtbl.Make (struct
  type t = id

  let equal a b = a.origin = b.origin && a.boot = b.boot && a.seq = b.seq

  let hash { origin; boot; seq } = ((((seq * 31) + boot) * 31) + origin) land max_int
end)

let pp_id ppf { origin; boot; seq } =
  Format.fprintf ppf "p%d.%d.%d" origin boot seq

type t = { id : id; data : string; trace : Trace_ctx.t }

let make ?(trace = Trace_ctx.none) id data = { id; data; trace }

let compare a b = compare_id a.id b.id

let pp ppf t = Format.fprintf ppf "%a(%d bytes)" pp_id t.id (String.length t.data)

(* The protocol's own batches are built from the identity-ordered
   Unordered map, so they arrive here already sorted and duplicate-free:
   detect that in one O(n) pass and skip the sort + rebuild. *)
let rec sorted_distinct = function
  | a :: (b :: _ as rest) -> compare_id a.id b.id < 0 && sorted_distinct rest
  | _ -> true

(* Stable merge sort specialised to payload arrays: insertion-sorted
   chunks, then bottom-up merge passes. The stdlib sorts pay an indirect
   call per comparison (and [List.sort] additionally allocates ~n log n
   cons cells); here the id comparison inlines to straight int branches,
   and the chunk pass replaces the three narrowest (most call-heavy)
   merge widths. Insertion uses strict [>] and merges take the left run
   on ties, so equal ids keep their input order. Returns whichever array
   holds the final pass. *)
let chunk = 8

let merge_passes arr n =
  let src = ref arr and dst = ref (Array.make n (Array.unsafe_get arr 0)) in
  let width = ref chunk in
  while !width < n do
    let s = !src and d = !dst in
    let i = ref 0 in
    while !i < n do
      let lo = !i in
      let mid = lo + !width in
      let mid = if mid > n then n else mid in
      let hi = mid + !width in
      let hi = if hi > n then n else hi in
      let a = ref lo and b = ref mid and k = ref lo in
      while !a < mid && !b < hi do
        let pa = Array.unsafe_get s !a and pb = Array.unsafe_get s !b in
        if compare_id pa.id pb.id <= 0 then begin
          Array.unsafe_set d !k pa;
          incr a
        end
        else begin
          Array.unsafe_set d !k pb;
          incr b
        end;
        incr k
      done;
      while !a < mid do
        Array.unsafe_set d !k (Array.unsafe_get s !a);
        incr a;
        incr k
      done;
      while !b < hi do
        Array.unsafe_set d !k (Array.unsafe_get s !b);
        incr b;
        incr k
      done;
      i := hi
    done;
    src := d;
    dst := s;
    width := 2 * !width
  done;
  !src

let sort_arr arr =
  let n = Array.length arr in
  let i = ref 0 in
  while !i < n do
    let lo = !i in
    let hi = lo + chunk in
    let hi = if hi > n then n else hi in
    for j = lo + 1 to hi - 1 do
      let p = Array.unsafe_get arr j in
      let k = ref j in
      while
        !k > lo && compare_id (Array.unsafe_get arr (!k - 1)).id p.id > 0
      do
        Array.unsafe_set arr !k (Array.unsafe_get arr (!k - 1));
        decr k
      done;
      Array.unsafe_set arr !k p
    done;
    i := hi
  done;
  if n <= chunk then arr
  else merge_passes arr n

(* Sorted, duplicate-free array view of a non-empty batch: sort, then
   compact runs of equal ids in place keeping the first of each run (the
   sort is stable, so that is the first duplicate of the input). Only
   the first [m] slots of the returned array are meaningful. *)
let sorted_array batch =
  let arr = sort_arr (Array.of_list batch) in
  let n = Array.length arr in
  let m = ref 1 in
  for i = 1 to n - 1 do
    let p = Array.unsafe_get arr i in
    if compare_id p.id (Array.unsafe_get arr (!m - 1)).id <> 0 then begin
      Array.unsafe_set arr !m p;
      incr m
    end
  done;
  (arr, !m)

let sort_batch batch =
  if sorted_distinct batch then batch
  else begin
    (* [sorted_distinct] returned false, so the batch is non-empty. *)
    let arr, m = sorted_array batch in
    let rec build i acc =
      if i < 0 then acc else build (i - 1) (Array.unsafe_get arr i :: acc)
    in
    build (m - 1) []
  end

module Wire = Abcast_util.Wire

let[@inline] write_id w { origin; boot; seq } =
  Wire.write_varint w origin;
  Wire.write_varint w boot;
  Wire.write_varint w seq

let[@inline] read_id r =
  let origin = Wire.read_varint r in
  let boot = Wire.read_varint r in
  let seq = Wire.read_varint r in
  { origin; boot; seq }

(* Wire layout (v2): three zigzag id varints, then [len2] — the data
   length shifted left one with the trace-presence flag in the low bit —
   then the raw data bytes, then (iff flagged) the (node, stamp) trace
   uvarint pair. The flag rides a bit that was free in the length
   varint, so unsampled payloads (the overwhelming majority) cost zero
   extra bytes over v1 for data under 64 bytes. *)
let write_general w t =
  write_id w t.id;
  let len = String.length t.data in
  let traced = if t.trace = 0 then 0 else 1 in
  Wire.write_uvarint w ((len lsl 1) lor traced);
  let b = Wire.unsafe_reserve w len in
  Bytes.blit_string t.data 0 b (Wire.length w) len;
  Wire.unsafe_advance w len;
  if traced = 1 then Trace_ctx.write w t.trace

(* Fused fast path for the overwhelmingly common shape — an unsampled
   payload whose three id zigzags and shifted data length fit in one
   varint byte each (ids are small non-negative ints, payloads under 64
   bytes): one capacity reservation, four raw byte stores, one blit.
   Byte-identical to [write_general]; anything larger, or any sampled
   payload, falls back to it. *)
let write w t =
  let { origin; boot; seq } = t.id in
  let z1 = (origin lsl 1) lxor (origin asr (Sys.int_size - 1)) in
  let z2 = (boot lsl 1) lxor (boot asr (Sys.int_size - 1)) in
  let z3 = (seq lsl 1) lxor (seq asr (Sys.int_size - 1)) in
  let len = String.length t.data in
  if ((z1 lor z2 lor z3 lor (len lsl 1)) land lnot 0x7f) lor t.trace = 0
  then begin
    let b = Wire.unsafe_reserve w (4 + len) in
    let i = Wire.length w in
    Bytes.unsafe_set b i (Char.unsafe_chr z1);
    Bytes.unsafe_set b (i + 1) (Char.unsafe_chr z2);
    Bytes.unsafe_set b (i + 2) (Char.unsafe_chr z3);
    Bytes.unsafe_set b (i + 3) (Char.unsafe_chr (len lsl 1));
    Bytes.unsafe_blit_string t.data 0 b (i + 4) len;
    Wire.unsafe_advance w (4 + len)
  end
  else write_general w t

let read_general r =
  let id = read_id r in
  let len2 = Wire.read_uvarint r in
  let len = len2 lsr 1 in
  if len > Wire.remaining r then
    Wire.error "payload data length %d exceeds remaining %d bytes" len
      (Wire.remaining r);
  let p = Wire.unsafe_pos r in
  let data = String.sub (Wire.unsafe_buf r) p len in
  Wire.unsafe_seek r (p + len);
  let trace = if len2 land 1 = 1 then Trace_ctx.read r else Trace_ctx.none in
  { id; data; trace }

(* Mirror of [write]'s fast path: four single varint bytes (the fourth
   with a clear trace flag) then the data. The guards keep it total — if
   any of the four bytes has the continuation bit, the payload is
   sampled, or the data would run past the window, the general
   (bounds-checked, multi-byte-aware) decoder takes over. *)
let read r =
  let rem = Wire.remaining r in
  if rem >= 4 then begin
    let s = Wire.unsafe_buf r in
    let p = Wire.unsafe_pos r in
    let z1 = Char.code (String.unsafe_get s p) in
    let z2 = Char.code (String.unsafe_get s (p + 1)) in
    let z3 = Char.code (String.unsafe_get s (p + 2)) in
    let len2 = Char.code (String.unsafe_get s (p + 3)) in
    let len = len2 lsr 1 in
    if
      (z1 lor z2 lor z3 lor len2) < 0x80
      && len2 land 1 = 0
      && len <= rem - 4
    then begin
      let data = String.sub s (p + 4) len in
      Wire.unsafe_seek r (p + 4 + len);
      {
        id =
          {
            origin = (z1 lsr 1) lxor (-(z1 land 1));
            boot = (z2 lsr 1) lxor (-(z2 land 1));
            seq = (z3 lsr 1) lxor (-(z3 land 1));
          };
        data;
        trace = Trace_ctx.none;
      }
    end
    else read_general r
  end
  else read_general r

(* [Wire.read_list read] pays an indirect call per element; batches and
   gossip bodies decode often enough that the direct-call loop is worth
   having. Same hostile-count guard as [Wire.read_list]. *)
let read_list r =
  let n = Wire.read_uvarint r in
  if n > Wire.remaining r then
    Wire.error "payload count %d exceeds remaining %d bytes" n
      (Wire.remaining r);
  let[@tail_mod_cons] rec go i =
    if i = 0 then []
    else
      let x = read r in
      x :: go (i - 1)
  in
  go n
