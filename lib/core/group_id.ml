(* Identity of one independent broadcast group (shard). Groups are dense
   small integers [0 .. shards-1]; everything group-scoped — wire frames,
   storage keys, metrics series — derives its tag from this module so the
   conventions stay in one place. *)

type t = int

let compare = Int.compare
let equal = Int.equal
let pp = Format.pp_print_int
let to_string = string_of_int

let prefix = Abcast_sim.Metrics.group_prefix
(* ["g<g>/"] — shared with the metrics/storage scoping convention. *)

(* Wire form: one LEB128 uvarint prefixed to the inner message, so group
   0 of a sharded stack costs a single extra byte per frame. *)

let write = Abcast_util.Wire.write_uvarint
let read = Abcast_util.Wire.read_uvarint

let size g =
  let rec go n v = if v < 0x80 then n else go (n + 1) (v lsr 7) in
  go 1 g
