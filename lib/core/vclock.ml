module Stream_map = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type t = int Stream_map.t

let empty = Stream_map.empty

let contains t (id : Payload.id) =
  match Stream_map.find_opt (id.origin, id.boot) t with
  | Some s -> id.seq <= s
  | None -> false

let add t (id : Payload.id) =
  let key = (id.origin, id.boot) in
  let expected =
    match Stream_map.find_opt key t with Some s -> s + 1 | None -> 0
  in
  if id.seq <> expected then
    invalid_arg
      (Format.asprintf "Vclock.add: %a breaks FIFO (expected seq %d)"
         Payload.pp_id id expected);
  Stream_map.add key id.seq t

let next_seq t ~origin ~boot =
  match Stream_map.find_opt (origin, boot) t with
  | Some s -> s + 1
  | None -> 0

let streams t = Stream_map.bindings t

let pp ppf t =
  Format.fprintf ppf "{";
  List.iter
    (fun ((o, b), s) -> Format.fprintf ppf " p%d.%d<=%d" o b s)
    (streams t);
  Format.fprintf ppf " }"
