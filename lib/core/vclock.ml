module Stream_map = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type t = int Stream_map.t

let empty = Stream_map.empty

let contains t (id : Payload.id) =
  match Stream_map.find_opt (id.origin, id.boot) t with
  | Some s -> id.seq <= s
  | None -> false

let fits t (id : Payload.id) =
  id.seq = Stream_map.(
    match find_opt (id.origin, id.boot) t with Some s -> s + 1 | None -> 0)

let add t (id : Payload.id) =
  let key = (id.origin, id.boot) in
  let expected =
    match Stream_map.find_opt key t with Some s -> s + 1 | None -> 0
  in
  if id.seq <> expected then
    invalid_arg
      (Format.asprintf "Vclock.add: %a breaks FIFO (expected seq %d)"
         Payload.pp_id id expected);
  Stream_map.add key id.seq t

let next_seq t ~origin ~boot =
  match Stream_map.find_opt (origin, boot) t with
  | Some s -> s + 1
  | None -> 0

let streams t = Stream_map.bindings t

let of_streams l =
  List.fold_left (fun m ((o, b), s) -> Stream_map.add (o, b) s m) empty l

module Wire = Abcast_util.Wire

let write w t =
  Wire.write_list
    (fun w ((o, b), s) ->
      Wire.write_varint w o;
      Wire.write_varint w b;
      Wire.write_varint w s)
    w (streams t)

let read r =
  Wire.read_list
    (fun r ->
      let o = Wire.read_varint r in
      let b = Wire.read_varint r in
      let s = Wire.read_varint r in
      ((o, b), s))
    r
  |> of_streams

let pp ppf t =
  Format.fprintf ppf "{";
  List.iter
    (fun ((o, b), s) -> Format.fprintf ppf " p%d.%d<=%d" o b s)
    (streams t);
  Format.fprintf ppf " }"
