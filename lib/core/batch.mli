(** Encoding of message batches as consensus values.

    Each round of the protocol proposes its [Unordered] set to consensus
    as one opaque value (paper §4.1); this module fixes the bijection.
    Encoding sorts and deduplicates by identity, so equal sets encode to
    equal byte strings regardless of insertion order — which matters for
    the idempotent re-propose after recovery (property P4). *)

val encode : Payload.t list -> Abcast_consensus.Consensus_intf.value

val encode_sorted : Payload.t list -> Abcast_consensus.Consensus_intf.value
(** Like {!encode} but the caller guarantees the list is already sorted
    by identity and duplicate-free (e.g. it came out of the protocol's
    incrementally sorted [Unordered] structure) — skips the O(n log n)
    re-sort on the proposal hot path. Encodings are interchangeable with
    {!encode}'s for such inputs. *)

val encode_sorted_bounded :
  max_bytes:int ->
  Payload.t list ->
  Abcast_consensus.Consensus_intf.value * Payload.t list * Payload.t list
(** [encode_sorted_bounded ~max_bytes payloads] encodes the longest
    prefix of the (sorted, duplicate-free) list whose payload bodies fit
    in [max_bytes] — always at least one payload. Returns
    [(value, included, excluded)]; [excluded] stays in [Unordered] for a
    later instance. Because the cut respects identity order, [included]
    carries a contiguous per-stream prefix of the backlog, which is what
    keeps pipelined decisions appendable in FIFO order. The encoding of
    a fully-included list is byte-identical to {!encode_sorted}'s. *)

val decode : Abcast_consensus.Consensus_intf.value -> Payload.t list
(** Inverse of {!encode}; the result is sorted by identity. Only for
    values produced by {!encode} (our own proposals and decisions read
    back from stable storage or carried inside already-validated
    consensus messages). @raise Abcast_util.Wire.Error on malformation. *)

val decode_opt : Abcast_consensus.Consensus_intf.value -> Payload.t list option
(** Total variant of {!decode} for values of uncertain provenance. *)

val size : Abcast_consensus.Consensus_intf.value -> int
(** Encoded size in bytes (for logging/throughput accounting). *)
