(** Builders of packaged protocol stacks.

    Each function closes a full configuration into a {!Proto.t} that the
    harness can instantiate per process. The [consensus] argument selects
    the black box ([`Paxos] default, [`Coord] for E8). *)

type consensus = [ `Paxos | `Coord ]

type app_factory = int -> Protocol.app * (Payload.t -> unit)
(** Per-process application hook builder, called at every (re)start of
    process [i] with a fresh application replica: returns the
    [A-checkpoint]/install hooks and the application's own deliver
    upcall (composed with the harness's instrumentation). *)

val basic :
  ?consensus:consensus ->
  ?gossip_period:int ->
  ?delta_gossip:bool ->
  ?gossip_full_every:int ->
  unit ->
  Proto.t
(** The basic protocol (Fig. 2). [delta_gossip] (default true) gossips
    digests and pulls missing entries; [false] multisends the full
    [Unordered] set every period, as the paper's pseudocode reads. *)

val alternative :
  ?consensus:consensus ->
  ?gossip_period:int ->
  ?checkpoint_period:int ->
  ?delta:int ->
  ?early_return:bool ->
  ?incremental:bool ->
  ?paranoid_log:bool ->
  ?window:int ->
  ?trim_state:bool ->
  ?delta_gossip:bool ->
  ?gossip_full_every:int ->
  ?app_factory:app_factory ->
  unit ->
  Proto.t
(** The alternative protocol (Figs. 3–5); defaults as in
    {!Protocol.Make.Alternative.create}. *)

val naive : ?consensus:consensus -> unit -> Proto.t
(** The naive-logging strawman for ablations E1/E6: alternative protocol
    with a checkpoint after {e every} round and full (non-incremental)
    [Unordered] re-logging on every broadcast. *)
