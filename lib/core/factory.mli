(** Builders of packaged protocol stacks.

    Each function closes a full configuration into a {!Proto.t} that the
    harness can instantiate per process. The [consensus] argument selects
    the black box ([`Paxos] default, [`Coord] for E8). *)

type consensus = [ `Paxos | `Coord ]

type app_factory = int -> Protocol.app * (Payload.t -> unit)
(** Per-process application hook builder, called at every (re)start of
    process [i] with a fresh application replica: returns the
    [A-checkpoint]/install hooks and the application's own deliver
    upcall (composed with the harness's instrumentation). *)

type group_app_factory =
  node:int -> group:int -> Protocol.app * (Payload.t -> unit)
(** Group-aware variant of {!app_factory}: under {!sharded} the factory
    runs once per (process, group) — the shard mux rebinds the engine io
    per inner group before stack creation, so each group's hooks
    checkpoint into that group's scoped storage keys and survive
    compaction independently. When both factories are given, the plain
    one's checkpoint rides first in a composite blob. *)

val basic :
  ?consensus:consensus ->
  ?gossip_period:int ->
  ?delta_gossip:bool ->
  ?gossip_full_every:int ->
  ?dissemination:[ `Gossip | `Ring ] ->
  ?max_batch_bytes:int ->
  ?ring_flush_us:int ->
  ?need_cap:int ->
  ?trace_sample:int ->
  ?audit_every:int ->
  unit ->
  Proto.t
(** The basic protocol (Fig. 2). [delta_gossip] (default true) gossips
    digests and pulls missing entries; [false] multisends the full
    [Unordered] set every period, as the paper's pseudocode reads.
    [dissemination:`Ring] forwards payload batches around the successor
    ring instead of relying on gossip pulls (the stack name gains a
    ["+ring"] suffix); [max_batch_bytes] bounds one proposal's payload
    bytes. [trace_sample] (default 0 = off) samples every k-th broadcast
    with a causal {!Trace_ctx} id carried on the wire. [audit_every]
    (default 1; 0 = off) piggybacks an {!Audit.cert} order certificate
    on every k-th gossip/digest — the online order audit. *)

val alternative :
  ?consensus:consensus ->
  ?gossip_period:int ->
  ?checkpoint_period:int ->
  ?delta:int ->
  ?early_return:bool ->
  ?incremental:bool ->
  ?paranoid_log:bool ->
  ?window:int ->
  ?trim_state:bool ->
  ?delta_gossip:bool ->
  ?gossip_full_every:int ->
  ?dissemination:[ `Gossip | `Ring ] ->
  ?max_batch_bytes:int ->
  ?ring_flush_us:int ->
  ?need_cap:int ->
  ?trace_sample:int ->
  ?audit_every:int ->
  ?fault_reorder_node:int ->
  ?app_factory:app_factory ->
  ?group_app_factory:group_app_factory ->
  unit ->
  Proto.t
(** The alternative protocol (Figs. 3–5); defaults as in
    {!Protocol.Make.Alternative.create}. [window > 1] pipelines that many
    consensus instances; [dissemination:`Ring] adds successor-ring
    payload forwarding. [need_cap] (default 128) bounds how many missing
    payload ids one digest exchange will pull. [trace_sample] (default 0
    = off) samples every k-th broadcast with a causal {!Trace_ctx} id
    carried on the wire and stamped into the flight recorder at every
    hop. [audit_every] (default 1; 0 = off) controls the order-certificate
    cadence as in {!basic}. [fault_reorder_node] (tests only) arms the
    one-shot apply-reorder fault injection on exactly that process id, so
    a run can break total order on one node and watch the audit sentinel
    catch it. *)

val throughput :
  ?consensus:consensus ->
  ?window:int ->
  ?max_batch_bytes:int ->
  ?repair_period:int ->
  ?repair_full_every:int ->
  ?need_cap:int ->
  ?trace_sample:int ->
  ?audit_every:int ->
  ?fault_reorder_node:int ->
  ?group_app_factory:group_app_factory ->
  unit ->
  Proto.t
(** The throughput-tuned preset behind E18 and the live smoke: the
    alternative protocol with ring dissemination, a pipelined window
    (default 4), adaptive batching at [max_batch_bytes] (default 24_000)
    and a rarer full-gossip belt — the ring carries the payloads, the
    digests only repair. The repair path is tunable per shard:
    [repair_period] (default 10_000 µs) is the digest gossip cadence,
    [repair_full_every] (default 32) sends a full digest every that many
    ticks, and [need_cap] (default 128) caps ids pulled per exchange.
    [trace_sample]/[audit_every]/[fault_reorder_node] as in
    {!alternative}. *)

val naive : ?consensus:consensus -> unit -> Proto.t
(** The naive-logging strawman for ablations E1/E6: alternative protocol
    with a checkpoint after {e every} round and full (non-incremental)
    [Unordered] re-logging on every broadcast. *)

val sharded : ?route:(string -> int) -> shards:int -> Proto.t -> Proto.t
(** [sharded ~shards stack] multiplexes [shards] independent instances
    of a single-group [stack] on every process — one consensus pipeline,
    gossip/ring task and [Unordered]/[Agreed] state per group, behind
    one wire type tagged with a uvarint group id (see {!Shard.mux}).
    Storage is scoped to group-tagged keys in the shared store/WAL and
    every metrics series gains a ["g<g>/"] label. [route] maps payload
    data to a group for plain {!Proto.S.broadcast} (default: data hash);
    [Proto.S.broadcast_to] pins the group explicitly. [shards = 1]
    returns [stack] unchanged — names, keys and series stay exactly as
    before. *)
