(** Sampled per-payload trace context.

    A context identifies one sampled broadcast cluster-wide: the
    originating node and a per-node stamp, packed into a single
    immediate int whose low bit is always set — so {!none} ([0]) means
    "unsampled" and hot paths pay one compare-against-zero. Carried
    inside {!Payload.t} across every wire hop (ring, gossip, consensus
    values, WAL records, state transfer), it lets each node stamp its
    flight-recorder events with the {e originating} broadcast's id.

    On the wire a sampled context is a (node, stamp) uvarint pair;
    unsampled payloads carry zero extra bytes (the presence flag rides
    the payload length varint — see {!Payload}). *)

type t = int

val none : t
(** [0]: not sampled. *)

val is_sampled : t -> bool

val make : node:int -> stamp:int -> t
(** Mint a sampled context. [node] must fit in 7 bits, [stamp] in the
    remaining width ({!max_stamp}); raises [Invalid_argument]
    otherwise. Always nonzero. *)

val max_node : int
val max_stamp : int

val node : t -> int
(** Originating node of a sampled context. *)

val stamp : t -> int
(** Originating per-node stamp of a sampled context. *)

val write : Abcast_util.Wire.writer -> t -> unit
(** Uvarint pair. Only call for sampled contexts — the caller's framing
    encodes presence. *)

val read : Abcast_util.Wire.reader -> t
(** Inverse of {!write}; rejects out-of-range fields via [Wire.error]. *)

val to_string : t -> string
(** ["t<node>.<stamp>"], or ["-"] for {!none}. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
