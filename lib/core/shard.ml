(* Shard multiplexer: runs S independent instances of a single-group
   stack on every process and packages them as one {!Proto.S}.

   Composition over threading: instead of teaching the protocol state
   machines about groups, each group gets its own fully isolated inner
   instance — own consensus pipeline, own gossip/ring tasks, own
   [Unordered]/[Agreed] state — behind a per-group {!Engine.io} view:

   - sends wrap the inner message as [(group, msg)], so one socket (or
     one simulated link) carries every group and the receiving mux
     dispatches on the uvarint group tag without touching the payload;
   - stable storage is a {!Storage.scoped} view keyed ["g<g>/"] — one
     WAL holds group-tagged records for all groups and a recovering
     process replays them in a single pass;
   - metrics are a {!Metrics.scoped} view with the same prefix, so every
     interned counter/series carries its group label and per-shard tail
     latency stays visible;
   - the rng is split per group so no group perturbs another's random
     stream.

   Faults therefore isolate by construction: nothing except the shared
   transport is common to two groups, which the cross-shard isolation
   suite checks by dropping all of one group's frames and watching the
   others deliver. *)

module Engine = Abcast_sim.Engine
module Metrics = Abcast_sim.Metrics
module Storage = Abcast_sim.Storage
module Rng = Abcast_util.Rng
module Wire = Abcast_util.Wire

let default_route data = Hashtbl.hash data land max_int

let mux ?route ~shards (inner : Proto.t) : Proto.t =
  if shards <= 0 then invalid_arg "Shard.mux: shards must be positive";
  if shards = 1 then inner
  else begin
    let module I = (val inner : Proto.S) in
    let route = Option.value route ~default:default_route in
    (module struct
      let name = Printf.sprintf "%s/x%d" I.name shards
      let shards = shards

      type msg = int * I.msg

      let msg_group (g, _) = g
      let msg_size (g, m) = Group_id.size g + I.msg_size m

      let write_msg w (g, m) =
        Group_id.write w g;
        I.write_msg w m

      let read_msg r =
        let g = Group_id.read r in
        if g >= shards then Wire.error "group %d out of range (S=%d)" g shards;
        (g, I.read_msg r)

      let encode_msg m = Wire.to_string write_msg m
      let decode_msg s = Wire.of_string_opt read_msg s

      type t = I.t array

      let check g =
        if g < 0 || g >= shards then
          invalid_arg (Printf.sprintf "group %d out of range (S=%d)" g shards)

      let group_io (io : msg Engine.io) g : I.msg Engine.io =
        let p = Group_id.prefix g in
        let narrowed = Engine.map_io (fun m -> (g, m)) io in
        {
          narrowed with
          group = g;
          store = Storage.scoped io.store ~prefix:p;
          metrics = Metrics.scoped io.metrics p;
          rng = Rng.split io.rng;
        }

      let create io ~deliver =
        Array.init shards (fun g ->
            I.create (group_io io g) ~deliver:(fun ~group:_ p ->
                deliver ~group:g p))

      let handler t ~src (g, m) = I.handler t.(g) ~src m

      let broadcast_blocks = I.broadcast_blocks

      let broadcast_to t ?on_agreed ~group data =
        check group;
        I.broadcast t.(group) ?on_agreed data

      let broadcast t ?on_agreed data =
        broadcast_to t ?on_agreed ~group:(route data mod shards) data

      let sum f t =
        let acc = ref 0 in
        Array.iter (fun i -> acc := !acc + f i) t;
        !acc

      let round = sum I.round
      let delivered_count = sum I.delivered_count
      let unordered_count = sum I.unordered_count

      let delivered_tail t =
        List.concat (Array.to_list (Array.map I.delivered_tail t))

      (* Streams are keyed (origin, boot) and collide across groups, so
         there is no meaningful merged clock; the aggregate accessor
         reports group 0 and per-group readers use [group_delivery_vc]. *)
      let delivery_vc t = I.delivery_vc t.(0)

      let group_round t g =
        check g;
        I.round t.(g)

      let group_delivered_count t g =
        check g;
        I.delivered_count t.(g)

      let group_delivered_tail t g =
        check g;
        I.delivered_tail t.(g)

      let group_delivery_vc t g =
        check g;
        I.delivery_vc t.(g)

      let group_unordered_count t g =
        check g;
        I.unordered_count t.(g)
    end : Proto.S)
  end
