(** Service command envelope.

    Client-facing front-ends wrap application commands in this envelope
    before A-broadcasting them, carrying the (session, seq) exactly-once
    key and the lease/claim markers used by the read-index protocol. The
    codec is total: [decode] returns [None] on any malformed input, and
    payloads that do not start with the service magic byte are foreign
    (bare app commands, experiment strings) and must bypass the session
    layer. *)

type req = { session : int; seq : int; cmd : string }

type t =
  | Request of req
      (** A client command: [cmd] is the opaque inner app command,
          deduplicated by [(session, seq)]. *)
  | Claim of { node : int; stamp : int }
      (** Leadership claim by [node]; applied in total order it makes
          [node] the leader for subsequent read-index grants. *)
  | Lease of { node : int; stamp : int }
      (** Lease renewal: grants [node] a read lease only if [node] is
          already the leader at the marker's position in the order. *)

(** Outcome of a request at the replicated session table. *)
type status =
  | Applied  (** first time seen: inner command was applied *)
  | Cached  (** duplicate: reply served from the cache, no re-apply *)
  | Gap
      (** seq is below the session floor and its reply was truncated —
          the client must not retry it *)

type reply = { r_session : int; r_seq : int; status : status; data : string }

val encode : t -> string
val decode : string -> t option

val is_service : string -> bool
(** One-byte test: does this payload carry a service envelope? *)

val encode_reply : reply -> string
val decode_reply : string -> reply option
