(** Application messages and their identities.

    The paper (§2.2) makes messages unique by tagging them with
    [(local sequence number, sender identity)]. In the crash-recovery
    model a sender's volatile sequence counter restarts after a crash, so
    the identity also carries the sender's boot (incarnation) number — the
    counter a real system keeps in stable storage and our engine provides
    as [io.incarnation]. Identities order lexicographically by
    [(origin, boot, seq)]; this is also the protocol's "predetermined
    deterministic rule" for placing the messages of one decided batch. *)

type id = { origin : int; boot : int; seq : int }

val compare_id : id -> id -> int

val equal_id : id -> id -> bool

module Id_tbl : Hashtbl.S with type key = id
(** Hash tables keyed by identity, with int-only hashing and equality —
    the per-message tables probe these on every add/deliver/pull. *)

val pp_id : Format.formatter -> id -> unit
(** Rendered as ["p<origin>.<boot>.<seq>"]. *)

type t = { id : id; data : string; trace : Trace_ctx.t }
(** A message offered to [A-broadcast]. [trace] is the sampled trace
    context minted at broadcast time ({!Trace_ctx.none} for the
    unsampled majority); it rides every hop so downstream nodes stamp
    flight events with the originating broadcast's id. It never
    influences identity, ordering, or delivery. *)

val make : ?trace:Trace_ctx.t -> id -> string -> t

val compare : t -> t -> int
(** Orders by {!compare_id} (payload bytes never influence order). *)

val pp : Format.formatter -> t -> unit

val sort_batch : t list -> t list
(** Sort a decided batch by identity and drop duplicate identities — the
    deterministic insertion rule of Fig. 2. *)

val sorted_distinct : t list -> bool
(** True iff already strictly ascending by identity — the
    {!sort_batch} fast path, exposed so encoders can skip the array
    round-trip for protocol-built (incrementally sorted) batches. *)

val sorted_array : t list -> t array * int
(** [sorted_array batch] is {!sort_batch} as a compacted array: sorted
    by identity with duplicates dropped, valid in the first [m] slots of
    the returned array. The batch must be non-empty. Lets the batch
    encoder walk the sorted result without rebuilding a list. *)

(** {2 Wire codec} — three zigzag varints for the identity, then the
    data length shifted left one with the trace-presence flag in the low
    bit, the raw payload bytes, and (iff flagged) the trace context's
    (node, stamp) uvarint pair. Unsampled payloads cost zero extra bytes
    over the flag bit. *)

val write_id : Abcast_util.Wire.writer -> id -> unit

val read_id : Abcast_util.Wire.reader -> id

val write : Abcast_util.Wire.writer -> t -> unit

val read : Abcast_util.Wire.reader -> t

val read_list : Abcast_util.Wire.reader -> t list
(** Count-prefixed payloads — [Wire.read_list read] specialised to a
    direct-call loop (batches and gossip bodies are the decode hot
    path), with the same hostile-count guard. *)
