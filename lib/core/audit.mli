(** Online order audit: per-group incremental delivery hash chains and
    the compact certificates that carry them on gossip frames.

    The chain is an order-sensitive polynomial fold of each delivered
    payload identity: two processes that A-delivered the same sequence
    hold equal chain values at every position, and any transposition of
    two distinct deliveries changes every value from that point on. A
    node periodically piggybacks [(boot, len, chain)] on gossip; a
    receiver whose {!window} still covers [len] compares hashes, and a
    mismatch is a live total-order violation (the sentinel). Folding is
    allocation-free, so it is safe on the zero-alloc live path. *)

val empty : int
(** Chain value of the empty sequence. *)

val mix : int -> Payload.id -> int
(** [mix h id] folds one delivered payload identity into chain [h].
    Order-sensitive; result is non-negative. Allocation-free. *)

(** {2 Chain window} — last [cap] chain values, indexed by position. *)

type window

val window : cap:int -> unit -> window
(** Remember the chain value at the last [cap] delivery positions.
    [cap = 0] disables the window ({!hash_at} always [None]). *)

val note : window -> pos:int -> hash:int -> unit
(** Record chain value [hash] after delivery position [pos] (1-based
    total length). Positions are expected consecutive; a discontinuity
    (recovery, state transfer) restarts the window at [pos].
    Allocation-free. *)

val hash_at : window -> pos:int -> int option
(** Chain value after position [pos], if still covered. O(1). *)

val reset : window -> unit

(** {2 Certificates} *)

type cert = {
  c_boot : int;  (** sender's boot epoch, for post-mortem attribution *)
  c_len : int;  (** delivery position the hash covers *)
  c_hash : int;  (** chain value after [c_len] deliveries *)
}

val write_cert : Abcast_util.Wire.writer -> cert -> unit
val read_cert : Abcast_util.Wire.reader -> cert

type verdict = [ `Match | `Mismatch | `Unknown ]

val check : window -> cert -> verdict
(** Compare a received certificate against our own window. [`Unknown]
    when the certificate's position is outside the window — no evidence
    either way. [`Mismatch] is a total-order violation. *)

val pp_cert : Format.formatter -> cert -> unit
