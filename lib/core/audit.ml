(* Online order audit: incremental delivery hash chains and the compact
   certificates that carry them between nodes.

   Every A-deliver folds the payload identity into a per-group chain
   hash — an order-sensitive polynomial accumulate, a handful of int
   multiplies and adds with no allocation — so two nodes that delivered
   the same prefix in the same order hold the same chain value at every
   position. A certificate is just (boot, len, chain-after-len); a
   receiver holding a chain value at the same position compares, and any
   difference is a total-order violation (the paper's agreement/total
   order pair) caught while the system is still running.

   The window remembers the chain value at the last [cap] positions so a
   receiver can compare against a certificate that lags its own frontier
   (gossip is asynchronous; senders are rarely at the same len). It is a
   pair of int arrays indexed by position modulo capacity — positions
   are consecutive, so lookup is O(1) and recording is two stores. *)

module Wire = Abcast_util.Wire

(* FNV-1a-style prime; the fold is a polynomial in the prime over the
   (origin, boot, seq) triples, so transposing any two distinct
   deliveries changes the value. Masked positive so certificates encode
   as plain uvarints. *)
let prime = 0x100000001b3

let[@inline] mix h (id : Payload.id) =
  let h = (h * prime) + (id.origin + 1) in
  let h = (h * prime) + id.boot in
  let h = (h * prime) + id.seq in
  h land max_int

let empty = 0

type window = {
  w_cap : int;
  w_hash : int array;
  mutable w_last : int;  (* highest position noted; 0 = nothing yet *)
  mutable w_count : int;  (* contiguous positions ending at [w_last] *)
}

let window ~cap () =
  if cap < 0 then invalid_arg "Audit.window: negative cap";
  { w_cap = cap; w_hash = Array.make (max cap 1) 0; w_last = 0; w_count = 0 }

let note w ~pos ~hash =
  if w.w_cap > 0 && pos > 0 then
    if pos = w.w_last + 1 && w.w_count > 0 then begin
      Array.unsafe_set w.w_hash (pos mod w.w_cap) hash;
      w.w_last <- pos;
      if w.w_count < w.w_cap then w.w_count <- w.w_count + 1
    end
    else begin
      (* discontinuity (restore / state transfer): restart the window *)
      Array.unsafe_set w.w_hash (pos mod w.w_cap) hash;
      w.w_last <- pos;
      w.w_count <- 1
    end

let hash_at w ~pos =
  if w.w_count > 0 && pos <= w.w_last && pos > w.w_last - w.w_count then
    Some w.w_hash.(pos mod w.w_cap)
  else None

let reset w =
  w.w_last <- 0;
  w.w_count <- 0

(* ---- certificates ---- *)

type cert = { c_boot : int; c_len : int; c_hash : int }

let write_cert w (c : cert) =
  Wire.write_uvarint w c.c_boot;
  Wire.write_uvarint w c.c_len;
  Wire.write_uvarint w c.c_hash

let read_cert r =
  let c_boot = Wire.read_uvarint r in
  let c_len = Wire.read_uvarint r in
  let c_hash = Wire.read_uvarint r in
  if c_len < 0 || c_hash < 0 then Wire.error "audit: negative cert field";
  { c_boot; c_len; c_hash }

type verdict = [ `Match | `Mismatch | `Unknown ]

(* Compare a received certificate against our own chain window. [`Unknown]
   when the cert's position has already slid out of (or not yet entered)
   our window — not evidence either way. *)
let check w (c : cert) : verdict =
  match hash_at w ~pos:c.c_len with
  | None -> `Unknown
  | Some h -> if h = c.c_hash then `Match else `Mismatch

let pp_cert ppf (c : cert) =
  Format.fprintf ppf "cert<boot:%d len:%d hash:%x>" c.c_boot c.c_len c.c_hash
