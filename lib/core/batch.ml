let encode payloads =
  Abcast_sim.Storage.encode (Payload.sort_batch payloads)

let encode_sorted payloads : Abcast_consensus.Consensus_intf.value =
  Abcast_sim.Storage.encode payloads

let decode value : Payload.t list = Abcast_sim.Storage.decode value

let size = String.length
