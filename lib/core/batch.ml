module Wire = Abcast_util.Wire

let rec write_payloads w = function
  | [] -> ()
  | (p : Payload.t) :: rest ->
    Payload.write w p;
    write_payloads w rest

(* Encode through one module-level scratch writer: it keeps its
   high-water-mark allocation across calls, so a proposal costs one
   output-string allocation and zero growth copies once warm. Safe
   because encoding is atomic (payload codecs never call back into
   [encode]) and the stack is single-domain. *)
let scratch = Wire.writer ~cap:4096 ()

let encode_into payloads : Abcast_consensus.Consensus_intf.value =
  Wire.clear scratch;
  Wire.write_uvarint scratch (List.length payloads);
  write_payloads scratch payloads;
  Wire.contents scratch

(* For unsorted input, walk the compacted sorted array straight into the
   writer — no list rebuild between sort and encode. *)
let encode payloads : Abcast_consensus.Consensus_intf.value =
  if Payload.sorted_distinct payloads then encode_into payloads
  else begin
    let arr, m = Payload.sorted_array payloads in
    Wire.clear scratch;
    Wire.write_uvarint scratch m;
    for i = 0 to m - 1 do
      Payload.write scratch (Array.unsafe_get arr i)
    done;
    Wire.contents scratch
  end

let encode_sorted = encode_into

(* Bounded variant for adaptive batching: the batch is the whole sorted
   backlog, cut at a payload boundary once the encoded bodies exceed
   [max_bytes]. Bodies go through a second scratch writer so the count
   prefix (whose varint width depends on how many payloads survive the
   cut) can be written first in the final assembly. The cut keeps the
   identity-sorted prefix, so every stream's messages below the cut form
   a contiguous prefix — exactly the shape [Agreed] can append without
   gaps when proposer and applier share the same delivered state. At
   least one payload is always included (a single oversized payload must
   still be deliverable). *)
let body_scratch = Wire.writer ~cap:4096 ()

let encode_sorted_bounded ~max_bytes payloads =
  Wire.clear body_scratch;
  let rec go n acc = function
    | [] -> (n, List.rev acc, [])
    | (p : Payload.t) :: rest ->
      let mark = Wire.length body_scratch in
      Payload.write body_scratch p;
      if n > 0 && Wire.length body_scratch > max_bytes then begin
        Wire.truncate body_scratch mark;
        (n, List.rev acc, p :: rest)
      end
      else go (n + 1) (p :: acc) rest
  in
  let n, included, excluded = go 0 [] payloads in
  Wire.clear scratch;
  Wire.write_uvarint scratch n;
  Wire.append_writer scratch ~src:body_scratch;
  (Wire.contents scratch, included, excluded)

let decode value : Payload.t list =
  Wire.of_string_exn Payload.read_list value

let decode_opt value : Payload.t list option =
  Wire.of_string_opt Payload.read_list value

let size = String.length
