module Wire = Abcast_util.Wire

let rec write_payloads w = function
  | [] -> ()
  | (p : Payload.t) :: rest ->
    Payload.write w p;
    write_payloads w rest

(* Encode through one module-level scratch writer: it keeps its
   high-water-mark allocation across calls, so a proposal costs one
   output-string allocation and zero growth copies once warm. Safe
   because encoding is atomic (payload codecs never call back into
   [encode]) and the stack is single-domain. *)
let scratch = Wire.writer ~cap:4096 ()

let encode_into payloads : Abcast_consensus.Consensus_intf.value =
  Wire.clear scratch;
  Wire.write_uvarint scratch (List.length payloads);
  write_payloads scratch payloads;
  Wire.contents scratch

(* For unsorted input, walk the compacted sorted array straight into the
   writer — no list rebuild between sort and encode. *)
let encode payloads : Abcast_consensus.Consensus_intf.value =
  if Payload.sorted_distinct payloads then encode_into payloads
  else begin
    let arr, m = Payload.sorted_array payloads in
    Wire.clear scratch;
    Wire.write_uvarint scratch m;
    for i = 0 to m - 1 do
      Payload.write scratch (Array.unsafe_get arr i)
    done;
    Wire.contents scratch
  end

let encode_sorted = encode_into

let decode value : Payload.t list =
  Wire.of_string_exn Payload.read_list value

let decode_opt value : Payload.t list option =
  Wire.of_string_opt Payload.read_list value

let size = String.length
