(* Service command envelope: the bytes a client-facing front-end wraps
   around application commands before handing them to [A-broadcast].

   Every variant is Wire-encoded behind a one-byte magic ('S') so that a
   replica's apply loop can tell service traffic from foreign payloads
   (raw experiment strings, bare Kv commands) with one byte compare —
   foreign bytes simply decode to [None] and bypass the session layer.

   The envelope is deliberately tiny: requests carry the client's session
   id and per-session sequence number (the exactly-once key) plus the
   opaque inner command; lease/claim markers carry the asserting node and
   a stamp the origin uses to match the marker's delivery back to the
   wall-clock time it recorded at broadcast. Replies never travel over
   the broadcast channel — they are returned to the locally attached
   client — but they are persisted inside the replicated session table's
   checkpoint, so they get a total, bounds-checked codec too. *)

module Wire = Abcast_util.Wire

let magic = 'S'

type req = { session : int; seq : int; cmd : string }

type t =
  | Request of req
  | Claim of { node : int; stamp : int }
  | Lease of { node : int; stamp : int }

(* Outcome of a request at the replicated session table, as cached in the
   reply slot and handed back to clients. *)
type status = Applied | Cached | Gap

type reply = { r_session : int; r_seq : int; status : status; data : string }

(* --- request/marker codec ------------------------------------------- *)

let tag_request = 0
let tag_claim = 1
let tag_lease = 2

let write w = function
  | Request { session; seq; cmd } ->
    Wire.write_u8 w (Char.code magic);
    Wire.write_u8 w tag_request;
    Wire.write_varint w session;
    Wire.write_varint w seq;
    Wire.write_string w cmd
  | Claim { node; stamp } ->
    Wire.write_u8 w (Char.code magic);
    Wire.write_u8 w tag_claim;
    Wire.write_varint w node;
    Wire.write_varint w stamp
  | Lease { node; stamp } ->
    Wire.write_u8 w (Char.code magic);
    Wire.write_u8 w tag_lease;
    Wire.write_varint w node;
    Wire.write_varint w stamp

let read r =
  let m = Wire.read_u8 r in
  if m <> Char.code magic then Wire.error "envelope: bad magic byte %d" m;
  match Wire.read_u8 r with
  | 0 ->
    let session = Wire.read_varint r in
    let seq = Wire.read_varint r in
    let cmd = Wire.read_string r in
    Request { session; seq; cmd }
  | 1 ->
    let node = Wire.read_varint r in
    let stamp = Wire.read_varint r in
    Claim { node; stamp }
  | 2 ->
    let node = Wire.read_varint r in
    let stamp = Wire.read_varint r in
    Lease { node; stamp }
  | t -> Wire.error "envelope: bad tag %d" t

let encode v = Wire.to_string write v

let decode s = Wire.of_string_opt read s

let is_service s = String.length s > 0 && s.[0] = magic

(* --- reply codec ----------------------------------------------------- *)

let status_tag = function Applied -> 0 | Cached -> 1 | Gap -> 2

let write_reply w { r_session; r_seq; status; data } =
  Wire.write_varint w r_session;
  Wire.write_varint w r_seq;
  Wire.write_u8 w (status_tag status);
  Wire.write_string w data

let read_reply r =
  let r_session = Wire.read_varint r in
  let r_seq = Wire.read_varint r in
  let status =
    match Wire.read_u8 r with
    | 0 -> Applied
    | 1 -> Cached
    | 2 -> Gap
    | t -> Wire.error "reply: bad status tag %d" t
  in
  let data = Wire.read_string r in
  { r_session; r_seq; status; data }

let encode_reply v = Wire.to_string write_reply v

let decode_reply s = Wire.of_string_opt read_reply s
