(** First-class protocol stacks.

    Everything above the broadcast layer (harness, experiments, baselines,
    example applications) manipulates a protocol through this uniform
    signature, with the wire message type held abstract. A value of type
    {!t} packages one fully configured stack — protocol variant, consensus
    implementation, tuning parameters — ready to be instantiated on each
    process of a simulation; see {!Factory} for ready-made builders. *)

module type S = sig
  val name : string
  (** Identifier used in traces and experiment tables,
      e.g. ["basic/paxos"]. *)

  type msg
  (** Wire message type of the whole stack. *)

  val msg_size : msg -> int
  (** Exact serialized size, for byte accounting. *)

  val write_msg : Abcast_util.Wire.writer -> msg -> unit
  (** Append the wire encoding — composable with caller framing (the
      live runtime prepends a type byte and the sender id). *)

  val read_msg : Abcast_util.Wire.reader -> msg
  (** @raise Abcast_util.Wire.Error on malformed input. Callers reading
      untrusted bytes must catch it (or use {!decode_msg}). *)

  val encode_msg : msg -> string
  (** Whole-value encode. *)

  val decode_msg : string -> msg option
  (** Total whole-value decode: [None] on any malformation. *)

  type t
  (** Per-process protocol state (one value per incarnation). *)

  val create :
    msg Abcast_sim.Engine.io -> deliver:(Payload.t -> unit) -> t
  (** Boot or recover the process; [deliver] is the A-deliver upcall. *)

  val handler : t -> src:int -> msg -> unit
  (** Incoming-message dispatcher (the engine behaviour). *)

  val broadcast : t -> ?on_agreed:(Payload.id -> unit) -> string -> Payload.id
  (** [A-broadcast]. *)

  val broadcast_blocks : bool
  (** Whether [A-broadcast] conceptually blocks its caller until the
      message reaches the [Agreed] queue (basic protocol, §4.2) rather
      than returning as soon as the [Unordered] set is logged
      (alternative protocol with early return, §5.4). Workload generators
      use this to model when a closed-loop client may continue. *)

  val round : t -> int

  val delivered_count : t -> int

  val delivered_tail : t -> Payload.t list

  val delivery_vc : t -> Vclock.t

  val unordered_count : t -> int
end

type t = (module S)

let name (module P : S) = P.name
