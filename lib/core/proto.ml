(** First-class protocol stacks.

    Everything above the broadcast layer (harness, experiments, baselines,
    example applications) manipulates a protocol through this uniform
    signature, with the wire message type held abstract. A value of type
    {!t} packages one fully configured stack — protocol variant, consensus
    implementation, tuning parameters — ready to be instantiated on each
    process of a simulation; see {!Factory} for ready-made builders. *)

module type S = sig
  val name : string
  (** Identifier used in traces and experiment tables,
      e.g. ["basic/paxos"]. *)

  type msg
  (** Wire message type of the whole stack. *)

  val msg_size : msg -> int
  (** Exact serialized size, for byte accounting. *)

  val write_msg : Abcast_util.Wire.writer -> msg -> unit
  (** Append the wire encoding — composable with caller framing (the
      live runtime prepends a type byte and the sender id). *)

  val read_msg : Abcast_util.Wire.reader -> msg
  (** @raise Abcast_util.Wire.Error on malformed input. Callers reading
      untrusted bytes must catch it (or use {!decode_msg}). *)

  val encode_msg : msg -> string
  (** Whole-value encode. *)

  val decode_msg : string -> msg option
  (** Total whole-value decode: [None] on any malformation. *)

  val shards : int
  (** Number of independent broadcast groups this stack multiplexes.
      [1] for every plain stack; [> 1] only for {!Factory.sharded}
      stacks, whose per-group surface is the [group_*] family below. *)

  val msg_group : msg -> int
  (** Which group a wire message belongs to ([0] on single-group
      stacks). Lets harnesses inject group-targeted faults — drop every
      frame of one group and watch the others keep delivering. *)

  type t
  (** Per-process protocol state (one value per incarnation). *)

  val create :
    msg Abcast_sim.Engine.io -> deliver:(group:int -> Payload.t -> unit) -> t
  (** Boot or recover the process; [deliver] is the A-deliver upcall,
      tagged with the delivering group ([~group:0] always on
      single-group stacks). *)

  val handler : t -> src:int -> msg -> unit
  (** Incoming-message dispatcher (the engine behaviour). *)

  val broadcast : t -> ?on_agreed:(Payload.id -> unit) -> string -> Payload.id
  (** [A-broadcast]. On sharded stacks the payload is routed to a group
      by the stack's route function (hash of the data by default);
      {!broadcast_to} pins the group explicitly. *)

  val broadcast_to :
    t -> ?on_agreed:(Payload.id -> unit) -> group:int -> string -> Payload.id
  (** [A-broadcast] into one specific group.
      @raise Invalid_argument if [group] is out of range. *)

  val broadcast_blocks : bool
  (** Whether [A-broadcast] conceptually blocks its caller until the
      message reaches the [Agreed] queue (basic protocol, §4.2) rather
      than returning as soon as the [Unordered] set is logged
      (alternative protocol with early return, §5.4). Workload generators
      use this to model when a closed-loop client may continue. *)

  val round : t -> int
  (** Consensus rounds executed (summed over groups when [shards > 1]). *)

  val delivered_count : t -> int
  (** Payloads A-delivered (summed over groups when [shards > 1]). *)

  val delivered_tail : t -> Payload.t list
  (** Uncompacted delivered suffix; for sharded stacks, the per-group
      tails concatenated in group order (use {!group_delivered_tail} for
      one group's sequence — ids collide across groups). *)

  val delivery_vc : t -> Vclock.t
  (** Compaction-proof delivery summary. Streams are keyed by
      [(origin, boot)], which collides across groups — on sharded stacks
      this is group 0's clock and {!group_delivery_vc} is the meaningful
      per-group reading. *)

  val unordered_count : t -> int

  (** {2 Per-group accessors}

      The [group_*] family indexes one broadcast group; on single-group
      stacks only group [0] exists and each is the plain accessor.
      All raise [Invalid_argument] on an out-of-range group. *)

  val group_round : t -> int -> int
  val group_delivered_count : t -> int -> int
  val group_delivered_tail : t -> int -> Payload.t list
  val group_delivery_vc : t -> int -> Vclock.t
  val group_unordered_count : t -> int -> int
end

type t = (module S)

let name (module P : S) = P.name

(** Derive the group-indexed surface of {!S} for a single-group stack:
    [shards = 1], [broadcast_to ~group:0] is [broadcast], and each
    [group_*] accessor bounds-checks and delegates. Implementors
    [include] this after defining the plain accessors. *)
module Single_group (P : sig
  type t

  val broadcast : t -> ?on_agreed:(Payload.id -> unit) -> string -> Payload.id
  val round : t -> int
  val delivered_count : t -> int
  val delivered_tail : t -> Payload.t list
  val delivery_vc : t -> Vclock.t
  val unordered_count : t -> int
end) =
struct
  let shards = 1

  let check g =
    if g <> 0 then
      invalid_arg
        (Printf.sprintf "group %d out of range on a single-group stack" g)

  let broadcast_to t ?on_agreed ~group data =
    check group;
    P.broadcast t ?on_agreed data

  let group_round t g =
    check g;
    P.round t

  let group_delivered_count t g =
    check g;
    P.delivered_count t

  let group_delivered_tail t g =
    check g;
    P.delivered_tail t

  let group_delivery_vc t g =
    check g;
    P.delivery_vc t

  let group_unordered_count t g =
    check g;
    P.unordered_count t
end
