module Engine = Abcast_sim.Engine
module Storage = Abcast_sim.Storage
module Flight = Abcast_sim.Flight
module Metrics = Abcast_sim.Metrics
module Heartbeat = Abcast_fd.Heartbeat
module Omega = Abcast_fd.Omega

module Wire = Abcast_util.Wire
module Ptbl = Payload.Id_tbl

let layer = "abcast"

let checkpoint_key = "ab/checkpoint"

let unordered_slot_key = "ab/unordered"

(* Built by concatenation, not [sprintf]: one of these is materialized
   per logged payload, and the format interpreter showed up in profiles. *)
let unordered_item_key (id : Payload.id) =
  String.concat ""
    [
      "ab/u/"; string_of_int id.origin; "."; string_of_int id.boot; ".";
      string_of_int id.seq;
    ]

(* Application-level checkpoint hooks (§5.2, Fig. 5). Shared by every
   functor instantiation so that generic harness code can build them. *)
type app = { checkpoint : unit -> string; install : string -> unit }

(* The Unordered set. Most operations on it are point lookups, adds and
   removes — one of each per payload per process — so it lives in a
   Hashtbl; the identity-sorted list view the batching and full-gossip
   paths want is materialized on demand and memoized between mutations.
   (An always-sorted functional map made every add/remove pay a
   log-rebalance plus allocation; the profile showed that tax dwarfing
   the occasional sort.) *)

(* --- Stable-storage codecs ------------------------------------------- *)
(* Shared across every functor instantiation (none of these types depend
   on the consensus implementation), and by harness code that inspects
   checkpoints from outside the stack (Lemmas). *)

let write_checkpoint w ((k, repr) : int * Agreed.repr) =
  Wire.write_varint w k;
  Agreed.write_repr w repr

let read_checkpoint r =
  let k = Wire.read_varint r in
  let repr = Agreed.read_repr r in
  (k, repr)

let encode_checkpoint ck = Wire.to_string write_checkpoint ck

let decode_checkpoint s = Wire.of_string_opt read_checkpoint s

let checkpoint_codec = (encode_checkpoint, decode_checkpoint)

let unordered_codec =
  ( Wire.to_string (Wire.write_list Payload.write),
    Wire.of_string_opt Payload.read_list )

module Make (C : Abcast_consensus.Consensus_intf.S) = struct
  module M = Abcast_consensus.Multi.Make (C)

  type msg =
    | Gossip of {
        k : int;
        len : int;
        unordered : Payload.t list;
        cert : Audit.cert option;
      }
    | Digest of {
        k : int;
        len : int;
        summary : (int * int * int) list;
        cert : Audit.cert option;
      }
    | Need of { ids : Payload.id list }
    | State of { k : int; floor : int; agreed : Agreed.repr }
    | Cons of M.msg
    | Fd of Heartbeat.msg
    | Ring of { k : int; len : int; entries : (int * Payload.t) list }
        (** payload batch travelling around the ring; each entry carries
            its remaining hop count *)

  let pp_msg ppf = function
    | Gossip { k; len; unordered; cert = _ } ->
      Format.fprintf ppf "gossip(k%d,len%d,|U|=%d)" k len (List.length unordered)
    | Digest { k; len; summary; cert = _ } ->
      Format.fprintf ppf "digest(k%d,len%d,|S|=%d)" k len (List.length summary)
    | Need { ids } -> Format.fprintf ppf "need(|ids|=%d)" (List.length ids)
    | State { k; _ } -> Format.fprintf ppf "state(k%d)" k
    | Cons m -> M.pp_msg ppf m
    | Fd m -> Heartbeat.pp_msg ppf m
    | Ring { k; len; entries } ->
      Format.fprintf ppf "ring(k%d,len%d,|E|=%d)" k len (List.length entries)

  (* --- Wire codec --------------------------------------------------- *)

  let write_summary_entry w (origin, boot, smax) =
    Wire.write_varint w origin;
    Wire.write_varint w boot;
    Wire.write_varint w smax

  let read_summary_entry r =
    let origin = Wire.read_varint r in
    let boot = Wire.read_varint r in
    let smax = Wire.read_varint r in
    (origin, boot, smax)

  let write_msg w = function
    | Gossip { k; len; unordered; cert } ->
      Wire.write_u8 w 0;
      Wire.write_varint w k;
      Wire.write_varint w len;
      Wire.write_list Payload.write w unordered;
      Wire.write_option Audit.write_cert w cert
    | Digest { k; len; summary; cert } ->
      Wire.write_u8 w 1;
      Wire.write_varint w k;
      Wire.write_varint w len;
      Wire.write_list write_summary_entry w summary;
      Wire.write_option Audit.write_cert w cert
    | Need { ids } ->
      Wire.write_u8 w 2;
      Wire.write_list Payload.write_id w ids
    | State { k; floor; agreed } ->
      Wire.write_u8 w 3;
      Wire.write_varint w k;
      Wire.write_varint w floor;
      Agreed.write_repr w agreed
    | Cons m ->
      Wire.write_u8 w 4;
      M.write_msg w m
    | Fd m ->
      Wire.write_u8 w 5;
      Heartbeat.write_msg w m
    | Ring { k; len; entries } ->
      Wire.write_u8 w 6;
      Wire.write_varint w k;
      Wire.write_varint w len;
      Wire.write_list
        (fun w (hops, p) ->
          Wire.write_uvarint w hops;
          Payload.write w p)
        w entries

  let read_msg r =
    match Wire.read_u8 r with
    | 0 ->
      let k = Wire.read_varint r in
      let len = Wire.read_varint r in
      let unordered = Payload.read_list r in
      let cert = Wire.read_option Audit.read_cert r in
      Gossip { k; len; unordered; cert }
    | 1 ->
      let k = Wire.read_varint r in
      let len = Wire.read_varint r in
      let summary = Wire.read_list read_summary_entry r in
      let cert = Wire.read_option Audit.read_cert r in
      Digest { k; len; summary; cert }
    | 2 -> Need { ids = Wire.read_list Payload.read_id r }
    | 3 ->
      let k = Wire.read_varint r in
      let floor = Wire.read_varint r in
      let agreed = Agreed.read_repr r in
      State { k; floor; agreed }
    | 4 -> Cons (M.read_msg r)
    | 5 -> Fd (Heartbeat.read_msg r)
    | 6 ->
      let k = Wire.read_varint r in
      let len = Wire.read_varint r in
      let entries =
        Wire.read_list
          (fun r ->
            let hops = Wire.read_uvarint r in
            let p = Payload.read r in
            (hops, p))
          r
      in
      Ring { k; len; entries }
    | t -> Wire.error "protocol: bad message tag %d" t

  let encode_msg m = Wire.to_string write_msg m

  let decode_msg s = Wire.of_string_opt read_msg s

  (* One-slot memo keyed by physical equality: a multisend hands the same
     message value to [Engine.transmit] once per destination, and byte
     accounting used to re-serialize it every time. Protocol-level byte
     accounting (gossip) warms the slot, the engine then hits it n times.
     Each call to [make_msg_size] builds an independent memo (own slot,
     own scratch buffer): nodes of one simulation must not evict each
     other's entry between a warm-up and its reuse. *)
  let make_msg_size () =
    let memo : (msg * int) option ref = ref None in
    let scratch = Wire.writer ~cap:256 () in
    fun (m : msg) ->
      match !memo with
      | Some (m', s) when m' == m -> s
      | _ ->
        Wire.clear scratch;
        write_msg scratch m;
        let s = Wire.length scratch in
        memo := Some (m, s);
        s

  (* The engine-facing instance (one per stack value, fed to
     [Engine.create]); each node additionally carries its own in
     [t.size]. *)
  let msg_size = make_msg_size ()

  (* ----------------------------------------------------------------- *)
  (* The parameterized node: both the basic protocol (Fig. 2) and the
     alternative protocol (Figs. 3-4) are configurations of it. *)

  type mode = {
    gossip_period : int;
    checkpoint_period : int option; (* None = basic: never checkpoint *)
    delta : int option; (* None = basic: no state transfer *)
    early_return : bool;
    incremental : bool;
    paranoid_log : bool; (* naive strawman: checkpoint every round *)
    window : int; (* max consensus instances proposed ahead (>= 1) *)
    trim_state : bool; (* ship only the suffix the recipient lacks (§5.3) *)
    delta_gossip : bool; (* gossip digests, pull missing entries (vs Fig. 3 full sets) *)
    gossip_full_every : int; (* every Nth tick still ships the full set (liveness belt) *)
    dissemination : [ `Gossip | `Ring ];
        (* how payloads spread before consensus: all-to-all gossip (the
           paper's §4.2) or successor-ring forwarding with the digest/pull
           path as repair fallback *)
    max_batch_bytes : int;
        (* bytes budget for one proposal's payload bodies: the adaptive
           batch is the whole backlog, cut at this bound *)
    ring_flush_us : int; (* coalescing delay before forwarding ring entries *)
    need_cap : int; (* max missing ids pulled per digest exchange *)
    trace_sample : int;
        (* 0 = no causal tracing; k > 0 samples every k-th local
           broadcast: mint a [Trace_ctx] carried on the payload across
           every hop, so all nodes stamp flight events with it *)
    audit_every : int;
        (* 0 = no order audit; k > 0 piggybacks an [Audit.cert] on every
           k-th gossip/digest tick, and receivers compare it against
           their own chain window (the online safety sentinel) *)
    fault_reorder_once : bool;
        (* test-only fault injection: deliberately apply the first
           multi-stream decided batch in reversed order, breaking total
           order on this node exactly once — the sentinel must catch it *)
    app : app option;
  }

  let basic_mode =
    {
      gossip_period = 3_000;
      checkpoint_period = None;
      delta = None;
      early_return = false;
      incremental = false;
      paranoid_log = false;
      window = 1;
      trim_state = false;
      delta_gossip = true;
      gossip_full_every = 8;
      dissemination = `Gossip;
      max_batch_bytes = 24_000;
      ring_flush_us = 400;
      need_cap = 128;
      trace_sample = 0;
      audit_every = 1;
      fault_reorder_once = false;
      app = None;
    }

  (* Lifecycle record of one locally-broadcast message, from A-broadcast
     to local A-delivery (volatile — lost on crash like [pending] always
     was). [p_proposed] is -1 until the id first enters one of our
     proposals; the two stage latencies it splits the lifetime into are
     observed as [stage.broadcast_to_propose_us] (queueing/batching
     delay) and [stage.propose_to_adeliver_us] (consensus + delivery). *)
  type pend = {
    p_t0 : int;
    mutable p_proposed : int;
    p_cb : (Payload.id -> unit) option;
  }

  (* Interned per-node counters for the per-message paths. *)
  type handles = {
    h_delivered : Metrics.handle;
    h_broadcasts : Metrics.handle;
    h_rx_gossip : Metrics.handle;
    h_rx_digest : Metrics.handle;
    h_rx_need : Metrics.handle;
    h_rx_state : Metrics.handle;
    h_rx_cons : Metrics.handle;
    h_rx_fd : Metrics.handle;
    h_rx_ring : Metrics.handle;
    h_gossip_msgs : Metrics.handle;
    h_gossip_bytes : Metrics.handle;
    s_lat_deliver : Metrics.series;
    s_stage_b2p : Metrics.series;
    s_stage_p2d : Metrics.series;
  }

  type node = {
    io : msg Engine.io;
    mode : mode;
    on_deliver : Payload.t -> unit;
    hb : Heartbeat.t;
    multi : M.t;
    mh : handles;
    size : msg -> int; (* this node's own one-slot msg_size memo *)
    pipe : M.Pipeline.t; (* in-order commit cursor over the instance window *)
    mutable agreed : Agreed.t;
    unordered : Payload.t Ptbl.t;
    mutable unordered_cache : Payload.t list option;
        (* memoized sorted view; exact when [unordered_cache_len] still
           equals the table size, a superset after removals (deliveries),
           stale only after an add *)
    mutable unordered_cache_len : int;
    logged_unordered : unit Ptbl.t; (* keys on stable storage *)
    mutable gossip_k : int;
    mutable gossip_tick : int;
    mutable seq : int; (* local broadcast counter, volatile *)
    pending : pend Ptbl.t;
    own_props : (int, Payload.id list) Hashtbl.t;
    covered_ids : unit Ptbl.t;
        (* union of [own_props]' id lists, maintained incrementally so
           the window walk never rebuilds it per proposal opportunity *)
        (* ids inside our own not-yet-decided proposals (window > 1) *)
    mutable ring_pending : (int * Payload.t) list;
        (* entries awaiting the next coalesced forward to our successor,
           in reverse arrival order *)
    mutable ring_armed : bool; (* a flush timer is outstanding *)
    stream_contig : (int * int, int) Hashtbl.t;
        (* per (origin, boot): highest seq s such that every seq <= s is
           covered — delivered (in Agreed) or held in Unordered. Coverage
           is monotone within an incarnation (removal from Unordered only
           happens for ids already in Agreed), so the watermark never has
           to move backwards. It lets the digest receiver skip the
           already-covered prefix instead of probing every seq. *)
    stream_maxseen : (int * int, int) Hashtbl.t;
        (* per (origin, boot): highest seq ever admitted to Unordered this
           incarnation — the digest we advertise, maintained in O(1) per
           add instead of folding the whole set on every gossip tick. *)
    ck_slot : (int * Agreed.repr) Storage.Slot.slot;
    unordered_full_slot : Payload.t list Storage.Slot.slot;
    boot_t0 : int; (* io.now at node construction (recovery timing) *)
    mutable recovery_done : bool; (* [recover] finished for this boot *)
    mutable caught_up : bool; (* first post-recovery delivery observed *)
    mutable audit_tripped : bool; (* order-divergence sentinel, one-shot *)
    mutable fault_armed : bool; (* [mode.fault_reorder_once] not yet fired *)
  }

  (* The round counter [k] of the paper is the pipeline's commit cursor:
     the next instance whose decision we will apply. *)
  let committed t = M.Pipeline.committed t.pipe

  let unordered_mem t id = Ptbl.mem t.unordered id

  (* Advance the covered watermark of a stream as far as its contiguous
     delivered-or-held prefix reaches, and return it. The walk resumes
     where the last one stopped (or at the delivery frontier, whichever
     is higher), so each seq of a stream is stepped over at most once per
     incarnation: O(1) amortized per payload. *)
  let contig_advance t ~origin ~boot =
    let key = (origin, boot) in
    let ns = Vclock.next_seq (Agreed.vc t.agreed) ~origin ~boot in
    let start =
      match Hashtbl.find_opt t.stream_contig key with
      | Some c -> max c (ns - 1)
      | None -> ns - 1
    in
    let covered s =
      s < ns || unordered_mem t { Payload.origin; boot; seq = s }
    in
    let rec adv c = if covered (c + 1) then adv (c + 1) else c in
    let c = adv start in
    if c <> start || not (Hashtbl.mem t.stream_contig key) then
      Hashtbl.replace t.stream_contig key c;
    c

  let unordered_add t (p : Payload.t) =
    if not (Ptbl.mem t.unordered p.id) then begin
      Ptbl.replace t.unordered p.id p;
      t.unordered_cache <- None;
      let key = (p.id.origin, p.id.boot) in
      (match Hashtbl.find_opt t.stream_maxseen key with
      | Some m when m >= p.id.seq -> ()
      | _ -> Hashtbl.replace t.stream_maxseen key p.id.seq);
      ignore (contig_advance t ~origin:p.id.origin ~boot:p.id.boot)
    end

  let unordered_remove t id =
    if Ptbl.mem t.unordered id then begin
      Ptbl.remove t.unordered id
      (* the memoized list view survives removals: consumers re-filter
         it against the table (no re-sort), see [unordered_list] *)
    end

  let unordered_count t = Ptbl.length t.unordered

  (* The identity-sorted view. A full rebuild (fold + sort) happens only
     after an add invalidated the memo; removals — the per-delivery case —
     degrade the memo to a superset that one membership-filter pass
     restores, with no re-sort. *)
  let unordered_list t =
    let live = Ptbl.length t.unordered in
    match t.unordered_cache with
    | Some l when t.unordered_cache_len = live -> l
    | Some l ->
      let l = List.filter (fun (p : Payload.t) -> Ptbl.mem t.unordered p.id) l in
      t.unordered_cache <- Some l;
      t.unordered_cache_len <- live;
      l
    | None ->
      let l =
        Payload.sort_batch (Ptbl.fold (fun _ p acc -> p :: acc) t.unordered [])
      in
      t.unordered_cache <- Some l;
      t.unordered_cache_len <- live;
      l

  (* Per-(origin, boot) maximum sequence number admitted to Unordered —
     the digest advertised instead of the payloads. This deliberately
     over-approximates the live set (a seq delivered since it was added
     stays advertised): a receiver that pulls such a seq gets no reply —
     [on_need] serves only what is still held — and obtains it through
     its own commits or a state transfer instead, exactly as it would
     have before the digest named it. The payoff is an O(streams) digest
     instead of an O(|Unordered|) fold on every gossip tick. *)
  let unordered_summary t =
    Hashtbl.fold
      (fun (origin, boot) smax acc -> (origin, boot, smax) :: acc)
      t.stream_maxseen []

  (* --- Unordered-set durability (alternative protocol, §5.4/§5.5) --- *)

  let log_unordered_add t (p : Payload.t) =
    if t.mode.early_return then
      if t.mode.incremental then begin
        (* §5.5: log only the new part — one small write per message. *)
        Storage.write t.io.store ~layer ~key:(unordered_item_key p.id)
          (Wire.to_string Payload.write p);
        Ptbl.replace t.logged_unordered p.id ()
      end
      else begin
        (* Full re-log of the whole set on every change. *)
        Storage.Slot.set t.unordered_full_slot (unordered_list t);
        Ptbl.replace t.logged_unordered p.id ()
      end

  let cleanup_unordered_log t =
    if t.mode.early_return then
      if t.mode.incremental then begin
        let stale =
          Ptbl.fold
            (fun id () acc ->
              if not (unordered_mem t id) then id :: acc else acc)
            t.logged_unordered []
        in
        List.iter
          (fun id ->
            Storage.delete t.io.store ~layer (unordered_item_key id);
            Ptbl.remove t.logged_unordered id)
          stale
      end
      else if Ptbl.length t.logged_unordered > unordered_count t
      then begin
        Storage.Slot.set t.unordered_full_slot (unordered_list t);
        Ptbl.reset t.logged_unordered;
        Ptbl.iter (fun id _ -> Ptbl.replace t.logged_unordered id ())
          t.unordered
      end

  let restore_unordered t =
    if t.mode.early_return then
      if t.mode.incremental then
        Storage.keys_with_prefix t.io.store "ab/u/"
        |> List.iter (fun key ->
               match Storage.read t.io.store key with
               | None -> ()
               | Some blob -> (
                 match Wire.of_string_opt Payload.read blob with
                 | None -> () (* corrupt log entry: skip, don't crash *)
                 | Some p ->
                   Ptbl.replace t.logged_unordered p.id ();
                   if not (Agreed.contains t.agreed p.id) then
                     unordered_add t p))
      else
        match Storage.Slot.get t.unordered_full_slot with
        | None -> ()
        | Some ps ->
          List.iter
            (fun (p : Payload.t) ->
              Ptbl.replace t.logged_unordered p.id ();
              if not (Agreed.contains t.agreed p.id) then unordered_add t p)
            ps

  (* --- Delivery ----------------------------------------------------- *)

  let span_key (id : Payload.id) =
    Printf.sprintf "%d.%d.%d" id.origin id.boot id.seq

  (* One flight event on this node's recorder (a no-op unless the run
     wired a real recorder into the engine io — the live runtime does). *)
  let[@inline] flight t ~stage ~trace ~a ~b =
    Flight.record t.io.flight ~time:(t.io.now ()) ~node:t.io.self
      ~group:t.io.group ~boot:t.io.incarnation ~stage ~trace ~a ~b

  (* Chain grid: note the audit chain in the flight recorder whenever the
     delivery position crosses a multiple of this (power of two), so
     every node records hashes at the *same* positions and the doctor can
     compare them offline without any node-to-node coordination. *)
  let chain_grid_mask = 256 - 1

  let deliver_one t (p : Payload.t) =
    Metrics.hincr t.mh.h_delivered;
    if not t.caught_up && t.recovery_done then begin
      (* First frontier delivery after recovery: the node is caught up. *)
      t.caught_up <- true;
      let dt = t.io.now () - t.boot_t0 in
      flight t ~stage:Flight.caught_up ~trace:0
        ~a:(Agreed.total_len t.agreed) ~b:dt;
      Metrics.add t.io.metrics ~node:t.io.self "recovery_catchup_us" dt
    end;
    if
      t.mode.audit_every > 0
      && Agreed.total_len t.agreed land chain_grid_mask = 0
    then
      flight t ~stage:Flight.chain ~trace:0 ~a:(Agreed.total_len t.agreed)
        ~b:(Agreed.chain t.agreed);
    if p.trace <> 0 then
      flight t ~stage:Flight.apply ~trace:p.trace
        ~a:(Agreed.total_len t.agreed) ~b:0;
    (match Ptbl.find_opt t.pending p.id with
    | Some pe ->
      Ptbl.remove t.pending p.id;
      let now = t.io.now () in
      Metrics.sobserve t.mh.s_lat_deliver (float_of_int (now - pe.p_t0));
      if pe.p_proposed >= 0 then
        Metrics.sobserve t.mh.s_stage_p2d
          (float_of_int (now - pe.p_proposed));
      if t.io.trace_on () then t.io.span_end ~stage:"abcast" (span_key p.id);
      (match pe.p_cb with Some f -> f p.id | None -> ())
    | None -> ());
    unordered_remove t p.id;
    t.on_deliver p

  (* --- Checkpointing (§5.1/§5.2) ------------------------------------ *)

  let do_checkpoint t =
    (match t.mode.app with
    | Some app -> Agreed.compact t.agreed ~app_blob:(app.checkpoint ())
    | None -> ());
    Storage.Slot.set t.ck_slot (committed t, Agreed.snapshot t.agreed);
    M.truncate_below t.multi (committed t);
    cleanup_unordered_log t;
    t.io.emit
      (Printf.sprintf "checkpoint at k=%d (len %d)" (committed t)
         (Agreed.total_len t.agreed))

  (* --- Sequencer (Fig. 2; windowed extension) ------------------------ *)

  (* [own_props] and its id-set mirror [covered_ids] change together:
     every mutation goes through this pair. Removing an instance's entry
     re-exposes its ids to [uncovered_list] — exactly what a losing or
     committed proposal needs. *)
  let own_props_set t j ids =
    Hashtbl.replace t.own_props j ids;
    List.iter (fun id -> Ptbl.replace t.covered_ids id ()) ids

  let own_props_del t j =
    match Hashtbl.find_opt t.own_props j with
    | None -> ()
    | Some ids ->
      Hashtbl.remove t.own_props j;
      List.iter (Ptbl.remove t.covered_ids) ids

  (* The part of the Unordered backlog not already covered by one of our
     outstanding (uncommitted) proposals. Pipelined instances each
     propose a disjoint slice of the backlog: re-proposing a covered
     entry at a later instance would only decide a duplicate batch and
     waste a round's worth of bytes — the deduplication at delivery makes
     it harmless, so this is purely the throughput-side of the window. *)
  let uncovered_list t =
    if Ptbl.length t.covered_ids = 0 then unordered_list t
    else
      List.filter
        (fun (p : Payload.t) -> not (Ptbl.mem t.covered_ids p.id))
        (unordered_list t)

  let propose_at t j backlog =
    (* Propose [backlog] as one batch, cut at the bytes budget. The cut
       keeps the identity-sorted prefix, so every proposal carries
       contiguous per-stream prefixes of the backlog — which keeps
       delivery FIFO per stream even when a later instance decides while
       an earlier one chose a competing (possibly empty) proposal; the
       deterministic gap-skip at delivery covers the losing-proposal
       case. Duplicates across instances are removed at delivery, as the
       paper's idempotence requires; the excluded suffix stays in
       [Unordered] for the next instance of the window. *)
    let value, batch, _excluded =
      Batch.encode_sorted_bounded ~max_bytes:t.mode.max_batch_bytes backlog
    in
    (* First time one of our own messages enters a proposal: close the
       batching-delay stage. The [p_proposed < 0] guard keeps re-proposals
       into later instances from double-counting. *)
    let now = t.io.now () in
    List.iter
      (fun (p : Payload.t) ->
        match Ptbl.find_opt t.pending p.id with
        | Some pe when pe.p_proposed < 0 ->
          pe.p_proposed <- now;
          Metrics.sobserve t.mh.s_stage_b2p (float_of_int (now - pe.p_t0))
        | _ -> ())
      batch;
    if Flight.enabled t.io.flight then begin
      (* One untraced event per opened instance (the doctor's
         stuck-instance scan keys on these), plus one per sampled
         payload linking its trace to the instance that carries it. *)
      flight t ~stage:Flight.propose ~trace:0 ~a:j ~b:(List.length batch);
      List.iter
        (fun (p : Payload.t) ->
          if p.trace <> 0 then
            flight t ~stage:Flight.propose ~trace:p.trace ~a:j ~b:0)
        batch
    end;
    own_props_set t j (List.map (fun (p : Payload.t) -> p.id) batch);
    M.propose t.multi j value

  let maybe_propose t =
    (* Walk the window: instances are opened strictly in order (the first
       locally unproposed, undecided instance), so no instance is ever
       skipped and every one eventually runs a consensus. A backlog wider
       than the bytes budget keeps the walk going: each further instance
       gets the still-uncovered suffix (pipelining). *)
    let k = committed t in
    let rec walk j =
      if j < M.Pipeline.limit t.pipe then
        match (M.decision t.multi j, M.proposal t.multi j) with
        | Some _, _ | None, Some _ -> walk (j + 1)
        | None, None ->
          (* Each instance proposes the still-uncovered slice of the
             backlog (recomputed after the previous [propose_at] extended
             the coverage), so pipelined proposals are disjoint. *)
          let backlog = uncovered_list t in
          let trigger = backlog <> [] || (j = k && t.gossip_k > k) in
          if trigger then begin
            propose_at t j backlog;
            walk (j + 1)
          end
    in
    walk k

  (* Two payloads of different streams in one batch: reversing such a
     batch genuinely transposes cross-stream deliveries (same-stream
     pairs would just gap-skip back into the original order). *)
  let multi_stream (batch : Payload.t list) =
    match batch with
    | [] | [ _ ] -> false
    | p :: rest ->
      List.exists
        (fun (q : Payload.t) ->
          q.id.origin <> p.id.origin || q.id.boot <> p.id.boot)
        rest

  let apply_decision t v =
    let batch = Batch.decode v in
    let batch =
      if t.fault_armed && multi_stream batch then begin
        t.fault_armed <- false;
        Metrics.incr t.io.metrics ~node:t.io.self "fault_reorder_injected";
        t.io.emit "FAULT: applying decided batch in reversed order";
        List.rev batch
      end
      else batch
    in
    List.iter
      (fun (p : Payload.t) ->
        (* A decided batch can carry a payload whose stream predecessor
           we have not delivered yet only in degenerate schedules (e.g. a
           re-proposal surviving a crash that also lost Unordered items);
           every applier of this instance shares our Agreed state, so the
           skip is deterministic and the payload — still in [Unordered]
           somewhere — gets re-proposed and delivered later. *)
        match Agreed.try_append t.agreed p with
        | `Appended -> deliver_one t p
        | `Dup -> unordered_remove t p.id
        | `Gap -> Metrics.incr t.io.metrics ~node:t.io.self "ab_gap_skips")
      batch;
    own_props_del t (committed t);
    M.Pipeline.commit t.pipe;
    if t.mode.paranoid_log then do_checkpoint t

  let rec drain_decisions t =
    match M.Pipeline.ready t.pipe with
    | Some v ->
      apply_decision t v;
      drain_decisions t
    | None -> maybe_propose t

  (* --- State transfer (§5.3) ---------------------------------------- *)

  let send_state ?for_len t dst =
    let agreed =
      match for_len with
      | Some len when t.mode.trim_state -> (
        match Agreed.suffix_snapshot t.agreed ~from_len:len with
        | Some trimmed -> trimmed
        | None -> Agreed.snapshot t.agreed)
      | _ -> Agreed.snapshot t.agreed
    in
    Metrics.add t.io.metrics ~node:t.io.self "state_bytes_sent"
      (String.length (Wire.to_string Agreed.write_repr agreed));
    Metrics.incr t.io.metrics ~node:t.io.self "state_sent";
    t.io.send dst (State { k = committed t; floor = M.floor t.multi; agreed })

  let on_state t ~src:_ ks ~floor (repr : Agreed.repr) =
    (* Adopt when the de-synchronization exceeds the tuning knob, or
       unconditionally when we sit below the donor's truncation floor —
       the consensus instances we would need to replay no longer exist
       there, so state transfer is the only way forward (§5.3). *)
    match t.mode.delta with
    | Some delta
      when committed t < ks
           && (committed t < ks - delta || committed t < floor)
           (* A trimmed repr (no app blob, synthetic base) is only usable
              if our sequence still covers its base — it carries no
              prefix. A crash after we advertised [len] can put us below;
              skip, the donor re-sends against our fresher len. *)
           && (repr.base_app <> None
              || Agreed.total_len t.agreed >= repr.base_len) ->
      t.io.emit (Printf.sprintf "state transfer: k %d -> %d" (committed t) ks);
      (* The jump event excuses the skipped instances in the doctor's
         delivery-gap scan: adopted prefixes never saw local decides. *)
      flight t ~stage:Flight.stjump ~trace:0 ~a:(committed t) ~b:ks;
      (* "Terminate task sequencer": in-flight decisions below [ks] are
         ignored from now on because the commit cursor jumps past them. *)
      (match Agreed.adopt t.agreed repr with
      | `Deliver ps -> List.iter (deliver_one t) ps
      | `Install (blob, ps) ->
        (match (t.mode.app, blob) with
        | Some app, Some b -> app.install b
        | _, None -> assert (repr.base_len = 0)
        | None, Some _ ->
          invalid_arg "state transfer: checkpointed donor but no app hook");
        List.iter (deliver_one t) ps);
      M.Pipeline.seek t.pipe ks;
      let stale_props =
        Hashtbl.fold
          (fun j _ acc -> if j < ks then j :: acc else acc)
          t.own_props []
      in
      List.iter (own_props_del t) stale_props;
      (* Drop everything the adopted prefix already ordered. Collect
         before removing: mutating a Hashtbl mid-iteration is
         unspecified. *)
      let ordered =
        Ptbl.fold
          (fun id _ acc ->
            if Agreed.contains t.agreed id then id :: acc else acc)
          t.unordered []
      in
      List.iter (Ptbl.remove t.unordered) ordered;
      (* Persist the jump: replay must not restart below the donor's
         floor, whose consensus state may be truncated. *)
      Storage.Slot.set t.ck_slot (committed t, Agreed.snapshot t.agreed);
      Metrics.incr t.io.metrics ~node:t.io.self "state_transfers_applied";
      drain_decisions t
    | _ ->
      (* Small de-synchronization: treat like a gossip round hint. *)
      if ks > committed t then t.gossip_k <- max t.gossip_k ks

  (* --- Gossip task (§4.2; digest/pull optimization) ------------------ *)

  (* Byte accounting of the gossip layer proper — kept whether or not the
     engine counts wire bytes, so experiments can compare dissemination
     strategies directly. *)
  let count_gossip t ~copies m =
    Metrics.hadd t.mh.h_gossip_msgs copies;
    Metrics.hadd t.mh.h_gossip_bytes (copies * t.size m)

  (* --- Ring dissemination -------------------------------------------- *)

  (* Payloads travel around the ring once: the origin enqueues n-1 hops,
     every receiver forwards with one hop less. Entries are coalesced for
     [ring_flush_us] before the (single) send to our successor, and split
     into messages that respect the bytes budget. Crashed successors tear
     the ring — the digest/pull gossip keeps running underneath as the
     repair path, so liveness never depends on an intact ring. *)
  let ring_entry_cost (p : Payload.t) = String.length p.data + 16

  let rec ring_flush t =
    t.ring_armed <- false;
    let entries = List.rev t.ring_pending in
    t.ring_pending <- [];
    if entries <> [] then begin
      let succ = (t.io.self + 1) mod t.io.n in
      let k = committed t and len = Agreed.total_len t.agreed in
      let send chunk =
        let m = Ring { k; len; entries = List.rev chunk } in
        count_gossip t ~copies:1 m;
        t.io.send succ m
      in
      let rec chunked cost acc = function
        | [] -> if acc <> [] then send acc
        | ((_, p) as e) :: rest ->
          let c = ring_entry_cost p in
          if acc <> [] && cost + c > t.mode.max_batch_bytes then begin
            send acc;
            chunked c [ e ] rest
          end
          else chunked (cost + c) (e :: acc) rest
      in
      chunked 0 [] entries
    end

  and ring_enqueue t hops (p : Payload.t) =
    if t.mode.dissemination = `Ring && hops > 0 && t.io.n > 1 then begin
      t.ring_pending <- (hops, p) :: t.ring_pending;
      if not t.ring_armed then begin
        t.ring_armed <- true;
        t.io.after t.mode.ring_flush_us (fun () -> ring_flush t)
      end
    end

  (* The order certificate riding this gossip tick, if the cadence says
     so. One small option allocation per periodic tick — never on the
     per-payload path — and ~1 byte on the wire when absent. *)
  let cert_now t =
    if t.mode.audit_every > 0 && t.gossip_tick mod t.mode.audit_every = 0
    then
      Some
        {
          Audit.c_boot = t.io.incarnation;
          c_len = Agreed.total_len t.agreed;
          c_hash = Agreed.chain t.agreed;
        }
    else None

  let rec gossip_loop t =
    t.gossip_tick <- t.gossip_tick + 1;
    let full =
      (not t.mode.delta_gossip)
      || t.gossip_tick mod t.mode.gossip_full_every = 0
    in
    let cert = cert_now t in
    let m =
      if full then
        Gossip
          {
            k = committed t;
            len = Agreed.total_len t.agreed;
            unordered = unordered_list t;
            cert;
          }
      else
        Digest
          {
            k = committed t;
            len = Agreed.total_len t.agreed;
            summary = unordered_summary t;
            cert;
          }
    in
    count_gossip t ~copies:t.io.n m;
    t.io.multisend m;
    t.io.after t.mode.gossip_period (fun () -> gossip_loop t)

  (* The sentinel: compare a peer's order certificate against our own
     chain at the same delivery position. Positions outside our window
     (too far ahead, or already slid past) prove nothing and are skipped;
     an overlap with a different hash is a total-order violation — the
     one thing the paper's protocol must never allow — so it trips the
     alarm (live: immediate flight dump) exactly once per boot. *)
  let audit_check t ~src cert =
    match cert with
    | None -> ()
    | Some (c : Audit.cert) -> (
      if t.mode.audit_every > 0 then
        match Agreed.chain_at t.agreed c.c_len with
        | None -> ()
        | Some h ->
          if h <> c.c_hash then begin
            Metrics.incr t.io.metrics ~node:t.io.self "audit_diverged";
            if not t.audit_tripped then begin
              t.audit_tripped <- true;
              flight t ~stage:Flight.audit ~trace:0 ~a:c.c_len ~b:src;
              t.io.alarm
                (Printf.sprintf
                   "audit: delivery order diverged from node %d (boot %d) \
                    at len %d in group %d: local chain %x, remote %x"
                   src c.c_boot c.c_len t.io.group h c.c_hash)
            end
          end)

  let on_gossip t ~src kq ~len_q uq =
    List.iter
      (fun (p : Payload.t) ->
        if not (Agreed.contains t.agreed p.id) then begin
          if p.trace <> 0 && not (unordered_mem t p.id) then
            flight t ~stage:Flight.rx_gossip ~trace:p.trace ~a:src ~b:0;
          unordered_add t p
        end)
      uq;
    if kq > committed t then t.gossip_k <- max t.gossip_k kq;
    (match t.mode.delta with
    | Some delta when committed t > kq + delta -> send_state ~for_len:len_q t src
    | _ -> ());
    drain_decisions t

  let on_ring t ~src kq ~len_q entries =
    List.iter
      (fun (hops, (p : Payload.t)) ->
        if not (Agreed.contains t.agreed p.id) then begin
          if p.trace <> 0 && not (unordered_mem t p.id) then
            flight t ~stage:Flight.rx_ring ~trace:p.trace ~a:src ~b:0;
          unordered_add t p;
          ring_enqueue t (hops - 1) p
        end)
      entries;
    if kq > committed t then t.gossip_k <- max t.gossip_k kq;
    (match t.mode.delta with
    | Some delta when committed t > kq + delta -> send_state ~for_len:len_q t src
    | _ -> ());
    drain_decisions t

  (* A digest names, per stream, the highest seq the sender has held
     unordered. Everything below it that we neither delivered nor hold is
     a candidate gap: pull exactly those. The sender replies with the
     subset it actually has, as a regular payload gossip.

     The pull is flow-controlled: at most [mode.need_cap] ids per digest
     (default 128, a {!Factory} knob). An uncapped pull turns the first
     digest of a large burst into a storm — every receiver asks every
     peer for the whole backlog that the primary dissemination path
     (ring or full gossip) is already carrying, and each peer answers
     with a duplicate copy. Anything past the cap is simply pulled on a
     later tick, so repair throughput stays bounded but positive. *)

  let on_digest t ~src kq ~len_q summary =
    let budget = ref t.mode.need_cap in
    let missing =
      List.fold_left
        (fun acc (origin, boot, smax) ->
          (* Probing every seq from the delivery frontier is O(backlog)
             per digest; the covered watermark jumps the scan past the
             contiguous delivered-or-held prefix, leaving only genuine
             holes to probe. *)
          let rec collect s acc =
            if s > smax || !budget = 0 then acc
            else
              let id = { Payload.origin; boot; seq = s } in
              if unordered_mem t id then collect (s + 1) acc
              else begin
                decr budget;
                collect (s + 1) (id :: acc)
              end
          in
          collect (contig_advance t ~origin ~boot + 1) acc)
        [] summary
    in
    if missing <> [] then begin
      let m = Need { ids = missing } in
      count_gossip t ~copies:1 m;
      t.io.send src m
    end;
    if kq > committed t then t.gossip_k <- max t.gossip_k kq;
    (match t.mode.delta with
    | Some delta when committed t > kq + delta -> send_state ~for_len:len_q t src
    | _ -> ());
    drain_decisions t

  let on_need t ~src ids =
    let ps = List.filter_map (Ptbl.find_opt t.unordered) ids in
    if ps <> [] then begin
      let m =
        Gossip
          {
            k = committed t;
            len = Agreed.total_len t.agreed;
            unordered = List.sort Payload.compare ps;
            cert = None;
          }
      in
      count_gossip t ~copies:1 m;
      t.io.send src m
    end

  (* --- A-broadcast --------------------------------------------------- *)

  let broadcast t ?on_agreed data =
    let seq = t.seq in
    let id = { Payload.origin = t.io.self; boot = t.io.incarnation; seq } in
    t.seq <- t.seq + 1;
    (* Sampling is deterministic (every [trace_sample]-th local seq), so
       a fixed fraction of broadcasts is traced without an RNG draw on
       the hot path. The stamp packs (seq, group, boot) so it stays
       unique across shard groups and reboots of the same node. *)
    let trace =
      let s = t.mode.trace_sample in
      if
        s > 0
        && seq mod s = 0
        && t.io.self <= Trace_ctx.max_node
        && seq <= Trace_ctx.max_stamp lsr 10
      then
        Trace_ctx.make ~node:t.io.self
          ~stamp:
            ((((seq lsl 4) lor (t.io.group land 0xf)) lsl 6)
            lor (t.io.incarnation land 0x3f))
      else Trace_ctx.none
    in
    let p = { Payload.id; data; trace } in
    if trace <> 0 then
      flight t ~stage:Flight.bcast ~trace ~a:seq ~b:(String.length data);
    unordered_add t p;
    Ptbl.replace t.pending id
      { p_t0 = t.io.now (); p_proposed = -1; p_cb = on_agreed };
    if t.io.trace_on () then t.io.span_begin ~stage:"abcast" (span_key id);
    Metrics.hincr t.mh.h_broadcasts;
    log_unordered_add t p;
    ring_enqueue t (t.io.n - 1) p;
    maybe_propose t;
    id

  (* --- Recovery (§4.2 "Recovery", §5.1) ------------------------------ *)

  let recover t =
    let t0 = t.io.now () in
    (match Storage.Slot.get t.ck_slot with
    | Some (k, repr) ->
      M.Pipeline.seek t.pipe k;
      t.agreed <- Agreed.restore repr;
      (match (t.mode.app, repr.base_app) with
      | Some app, Some blob -> app.install blob
      | _ -> ());
      (* The upper layer is volatile: re-deliver the explicit tail so it
         rebuilds its state on top of the installed checkpoint. *)
      List.iter (deliver_one t) (Agreed.tail t.agreed)
    | None -> ());
    restore_unordered t;
    (* Replay: walk the consensus log upward from the checkpoint.
       [Pipeline.ready] falls back to the stable decision log exactly for
       this — the volatile decide buffer died with the crash. *)
    let rounds = ref 0 in
    let rec replay () =
      match M.Pipeline.ready t.pipe with
      | Some v ->
        apply_decision t v;
        incr rounds;
        Metrics.incr t.io.metrics ~node:t.io.self "replay_rounds";
        replay ()
      | None -> ()
    in
    replay ();
    let dt = t.io.now () - t0 in
    Metrics.add t.io.metrics ~node:t.io.self "recovery_protocol_us" dt;
    flight t ~stage:Flight.replay_done ~trace:0 ~a:!rounds ~b:dt;
    (* Re-propose every logged, still-undecided proposal — with a window
       there can be several in flight (idempotent, P4) — and rebuild the
       volatile record of what they contain. *)
    List.iter
      (fun j ->
        if j >= committed t && M.decision t.multi j = None then
          match M.proposal t.multi j with
          | Some v ->
            own_props_set t j
              (List.map (fun (p : Payload.t) -> p.id) (Batch.decode v));
            M.propose t.multi j v
          | None -> ())
      (M.logged_proposal_instances t.multi)

  let create_node io mode ~on_deliver =
    let tref = ref None in
    let with_t f = match !tref with Some t -> f t | None -> () in
    let hb = Heartbeat.create (Engine.map_io (fun m -> Fd m) io) in
    let multi =
      M.create
        (Engine.map_io (fun m -> Cons m) io)
        ~leader:(Omega.of_heartbeat hb)
        ~on_decide:(fun k v ->
          with_t (fun t ->
              flight t ~stage:Flight.decide ~trace:0 ~a:k
                ~b:(String.length v);
              (* Buffer out-of-order decisions; only a decision at the
                 cursor lets the drain loop make progress. *)
              M.Pipeline.note_decided t.pipe k v;
              if k = committed t then drain_decisions t))
        ~on_lag:(fun floor ->
          with_t (fun t ->
              if floor > committed t then t.gossip_k <- max t.gossip_k floor))
        ~on_behind:(fun ~src -> with_t (fun t -> send_state t src))
    in
    let store = io.Engine.store in
    let metrics = io.Engine.metrics in
    let self = io.Engine.self in
    let h name = Metrics.handle metrics ~node:self name in
    let mh =
      {
        h_delivered = h "ab_delivered";
        h_broadcasts = h "ab_broadcasts";
        h_rx_gossip = h "rx.gossip";
        h_rx_digest = h "rx.digest";
        h_rx_need = h "rx.need";
        h_rx_state = h "rx.state";
        h_rx_cons = h "rx.consensus";
        h_rx_fd = h "rx.fd";
        h_rx_ring = h "rx.ring";
        h_gossip_msgs = h "gossip_msgs_sent";
        h_gossip_bytes = h "gossip_bytes_sent";
        s_lat_deliver = Metrics.series_handle metrics ~node:self "lat_deliver";
        s_stage_b2p =
          Metrics.series_handle metrics ~node:self
            "stage.broadcast_to_propose_us";
        s_stage_p2d =
          Metrics.series_handle metrics ~node:self
            "stage.propose_to_adeliver_us";
      }
    in
    let t =
      {
        io;
        mode;
        on_deliver;
        hb;
        multi;
        mh;
        size = make_msg_size ();
        pipe = M.Pipeline.attach multi ~width:mode.window;
        agreed = Agreed.create ();
        unordered = Ptbl.create 64;
        unordered_cache = None;
        unordered_cache_len = 0;
        logged_unordered = Ptbl.create 32;
        gossip_k = 0;
        gossip_tick = 0;
        seq = 0;
        pending = Ptbl.create 32;
        own_props = Hashtbl.create 8;
        covered_ids = Ptbl.create 64;
        ring_pending = [];
        ring_armed = false;
        stream_contig = Hashtbl.create 16;
        stream_maxseen = Hashtbl.create 16;
        ck_slot =
          Storage.Slot.make ~codec:checkpoint_codec store ~layer
            ~key:checkpoint_key;
        unordered_full_slot =
          Storage.Slot.make ~codec:unordered_codec store ~layer
            ~key:unordered_slot_key;
        boot_t0 = io.Engine.now ();
        recovery_done = false;
        caught_up = false;
        audit_tripped = false;
        fault_armed = mode.fault_reorder_once;
      }
    in
    tref := Some t;
    recover t;
    t.recovery_done <- true;
    gossip_loop t;
    (match mode.checkpoint_period with
    | Some period ->
      let rec checkpoint_loop () =
        t.io.after period (fun () ->
            do_checkpoint t;
            checkpoint_loop ())
      in
      checkpoint_loop ()
    | None -> ());
    t

  let node_handler t ~src msg =
    match msg with
    | Gossip { k; len; unordered; cert } ->
      Metrics.hincr t.mh.h_rx_gossip;
      audit_check t ~src cert;
      on_gossip t ~src k ~len_q:len unordered
    | Digest { k; len; summary; cert } ->
      Metrics.hincr t.mh.h_rx_digest;
      audit_check t ~src cert;
      on_digest t ~src k ~len_q:len summary
    | Need { ids } ->
      Metrics.hincr t.mh.h_rx_need;
      on_need t ~src ids
    | State { k; floor; agreed } ->
      Metrics.hincr t.mh.h_rx_state;
      on_state t ~src k ~floor agreed
    | Cons m ->
      Metrics.hincr t.mh.h_rx_cons;
      M.handle t.multi ~src m
    | Fd m ->
      Metrics.hincr t.mh.h_rx_fd;
      Heartbeat.handle t.hb ~src m
    | Ring { k; len; entries } ->
      Metrics.hincr t.mh.h_rx_ring;
      on_ring t ~src k ~len_q:len entries

  module type NODE = sig
    type t

    val handler : t -> src:int -> msg -> unit

    val broadcast : t -> ?on_agreed:(Payload.id -> unit) -> string -> Payload.id

    val round : t -> int

    val unordered_count : t -> int

    val delivered_count : t -> int

    val delivered_tail : t -> Payload.t list

    val delivery_vc : t -> Vclock.t

    val agreed_snapshot : t -> Agreed.repr
  end

  module Node_ops = struct
    type t = node

    let handler = node_handler

    let broadcast = broadcast

    let round t = committed t

    let unordered_count t = unordered_count t

    let delivered_count t = Agreed.total_len t.agreed

    let delivered_tail t = Agreed.tail t.agreed

    let delivery_vc t = Agreed.vc t.agreed

    let agreed_snapshot t = Agreed.snapshot t.agreed
  end

  module Basic = struct
    include Node_ops

    let create ?(gossip_period = 3_000) ?(delta_gossip = true)
        ?(gossip_full_every = 8) ?(dissemination = `Gossip)
        ?(max_batch_bytes = 24_000) ?(ring_flush_us = 400) ?(need_cap = 128)
        ?(trace_sample = 0) ?(audit_every = 1) io ~on_deliver =
      if gossip_full_every < 1 then
        invalid_arg "Basic.create: gossip_full_every must be >= 1";
      if max_batch_bytes < 1 then
        invalid_arg "Basic.create: max_batch_bytes must be >= 1";
      if need_cap < 0 then invalid_arg "Basic.create: need_cap must be >= 0";
      if trace_sample < 0 then
        invalid_arg "Basic.create: trace_sample must be >= 0";
      if audit_every < 0 then
        invalid_arg "Basic.create: audit_every must be >= 0";
      create_node io
        {
          basic_mode with
          gossip_period;
          delta_gossip;
          gossip_full_every;
          dissemination;
          max_batch_bytes;
          ring_flush_us;
          need_cap;
          trace_sample;
          audit_every;
        }
        ~on_deliver
  end

  module Alternative = struct
    include Node_ops

    type nonrec app = app = {
      checkpoint : unit -> string;
      install : string -> unit;
    }

    let create ?(gossip_period = 3_000) ?(checkpoint_period = 50_000)
        ?(delta = 4) ?(early_return = true) ?(incremental = true)
        ?(paranoid_log = false) ?(window = 1) ?(trim_state = true)
        ?(delta_gossip = true) ?(gossip_full_every = 8)
        ?(dissemination = `Gossip) ?(max_batch_bytes = 24_000)
        ?(ring_flush_us = 400) ?(need_cap = 128) ?(trace_sample = 0)
        ?(audit_every = 1) ?(fault_reorder_once = false) ?app io ~on_deliver =
      if window < 1 then invalid_arg "Alternative.create: window must be >= 1";
      if gossip_full_every < 1 then
        invalid_arg "Alternative.create: gossip_full_every must be >= 1";
      if max_batch_bytes < 1 then
        invalid_arg "Alternative.create: max_batch_bytes must be >= 1";
      if need_cap < 0 then
        invalid_arg "Alternative.create: need_cap must be >= 0";
      if trace_sample < 0 then
        invalid_arg "Alternative.create: trace_sample must be >= 0";
      if audit_every < 0 then
        invalid_arg "Alternative.create: audit_every must be >= 0";
      create_node io
        {
          gossip_period;
          checkpoint_period = Some checkpoint_period;
          delta = Some delta;
          early_return;
          incremental;
          paranoid_log;
          window;
          trim_state;
          delta_gossip;
          gossip_full_every;
          dissemination;
          max_batch_bytes;
          ring_flush_us;
          need_cap;
          trace_sample;
          audit_every;
          fault_reorder_once;
          app;
        }
        ~on_deliver

    let checkpoint_now = do_checkpoint

    let floor t = M.floor t.multi
  end
end
