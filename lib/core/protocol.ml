module Engine = Abcast_sim.Engine
module Storage = Abcast_sim.Storage
module Metrics = Abcast_sim.Metrics
module Heartbeat = Abcast_fd.Heartbeat
module Omega = Abcast_fd.Omega

module Wire = Abcast_util.Wire

let layer = "abcast"

let checkpoint_key = "ab/checkpoint"

let unordered_slot_key = "ab/unordered"

let unordered_item_key (id : Payload.id) =
  Printf.sprintf "ab/u/%d.%d.%d" id.origin id.boot id.seq

(* Application-level checkpoint hooks (§5.2, Fig. 5). Shared by every
   functor instantiation so that generic harness code can build them. *)
type app = { checkpoint : unit -> string; install : string -> unit }

(* The Unordered set, kept sorted by identity at all times so the hot
   paths (proposing, gossiping, full re-logs) never fold-and-sort. *)
module Umap = Map.Make (struct
  type t = Payload.id

  let compare = Payload.compare_id
end)

(* --- Stable-storage codecs ------------------------------------------- *)
(* Shared across every functor instantiation (none of these types depend
   on the consensus implementation), and by harness code that inspects
   checkpoints from outside the stack (Lemmas). *)

let write_checkpoint w ((k, repr) : int * Agreed.repr) =
  Wire.write_varint w k;
  Agreed.write_repr w repr

let read_checkpoint r =
  let k = Wire.read_varint r in
  let repr = Agreed.read_repr r in
  (k, repr)

let encode_checkpoint ck = Wire.to_string write_checkpoint ck

let decode_checkpoint s = Wire.of_string_opt read_checkpoint s

let checkpoint_codec = (encode_checkpoint, decode_checkpoint)

let unordered_codec =
  ( Wire.to_string (Wire.write_list Payload.write),
    Wire.of_string_opt Payload.read_list )

module Make (C : Abcast_consensus.Consensus_intf.S) = struct
  module M = Abcast_consensus.Multi.Make (C)

  type msg =
    | Gossip of { k : int; len : int; unordered : Payload.t list }
    | Digest of { k : int; len : int; summary : (int * int * int) list }
    | Need of { ids : Payload.id list }
    | State of { k : int; floor : int; agreed : Agreed.repr }
    | Cons of M.msg
    | Fd of Heartbeat.msg

  let pp_msg ppf = function
    | Gossip { k; len; unordered } ->
      Format.fprintf ppf "gossip(k%d,len%d,|U|=%d)" k len (List.length unordered)
    | Digest { k; len; summary } ->
      Format.fprintf ppf "digest(k%d,len%d,|S|=%d)" k len (List.length summary)
    | Need { ids } -> Format.fprintf ppf "need(|ids|=%d)" (List.length ids)
    | State { k; _ } -> Format.fprintf ppf "state(k%d)" k
    | Cons m -> M.pp_msg ppf m
    | Fd m -> Heartbeat.pp_msg ppf m

  (* --- Wire codec --------------------------------------------------- *)

  let write_summary_entry w (origin, boot, smax) =
    Wire.write_varint w origin;
    Wire.write_varint w boot;
    Wire.write_varint w smax

  let read_summary_entry r =
    let origin = Wire.read_varint r in
    let boot = Wire.read_varint r in
    let smax = Wire.read_varint r in
    (origin, boot, smax)

  let write_msg w = function
    | Gossip { k; len; unordered } ->
      Wire.write_u8 w 0;
      Wire.write_varint w k;
      Wire.write_varint w len;
      Wire.write_list Payload.write w unordered
    | Digest { k; len; summary } ->
      Wire.write_u8 w 1;
      Wire.write_varint w k;
      Wire.write_varint w len;
      Wire.write_list write_summary_entry w summary
    | Need { ids } ->
      Wire.write_u8 w 2;
      Wire.write_list Payload.write_id w ids
    | State { k; floor; agreed } ->
      Wire.write_u8 w 3;
      Wire.write_varint w k;
      Wire.write_varint w floor;
      Agreed.write_repr w agreed
    | Cons m ->
      Wire.write_u8 w 4;
      M.write_msg w m
    | Fd m ->
      Wire.write_u8 w 5;
      Heartbeat.write_msg w m

  let read_msg r =
    match Wire.read_u8 r with
    | 0 ->
      let k = Wire.read_varint r in
      let len = Wire.read_varint r in
      let unordered = Payload.read_list r in
      Gossip { k; len; unordered }
    | 1 ->
      let k = Wire.read_varint r in
      let len = Wire.read_varint r in
      let summary = Wire.read_list read_summary_entry r in
      Digest { k; len; summary }
    | 2 -> Need { ids = Wire.read_list Payload.read_id r }
    | 3 ->
      let k = Wire.read_varint r in
      let floor = Wire.read_varint r in
      let agreed = Agreed.read_repr r in
      State { k; floor; agreed }
    | 4 -> Cons (M.read_msg r)
    | 5 -> Fd (Heartbeat.read_msg r)
    | t -> Wire.error "protocol: bad message tag %d" t

  let encode_msg m = Wire.to_string write_msg m

  let decode_msg s = Wire.of_string_opt read_msg s

  (* One-slot memo keyed by physical equality: a multisend hands the same
     message value to [Engine.transmit] once per destination, and byte
     accounting used to re-serialize it every time. Protocol-level byte
     accounting (gossip) warms the slot, the engine then hits it n times.
     Each call to [make_msg_size] builds an independent memo (own slot,
     own scratch buffer): nodes of one simulation must not evict each
     other's entry between a warm-up and its reuse. *)
  let make_msg_size () =
    let memo : (msg * int) option ref = ref None in
    let scratch = Wire.writer ~cap:256 () in
    fun (m : msg) ->
      match !memo with
      | Some (m', s) when m' == m -> s
      | _ ->
        Wire.clear scratch;
        write_msg scratch m;
        let s = Wire.length scratch in
        memo := Some (m, s);
        s

  (* The engine-facing instance (one per stack value, fed to
     [Engine.create]); each node additionally carries its own in
     [t.size]. *)
  let msg_size = make_msg_size ()

  (* ----------------------------------------------------------------- *)
  (* The parameterized node: both the basic protocol (Fig. 2) and the
     alternative protocol (Figs. 3-4) are configurations of it. *)

  type mode = {
    gossip_period : int;
    checkpoint_period : int option; (* None = basic: never checkpoint *)
    delta : int option; (* None = basic: no state transfer *)
    early_return : bool;
    incremental : bool;
    paranoid_log : bool; (* naive strawman: checkpoint every round *)
    window : int; (* max consensus instances proposed ahead (>= 1) *)
    trim_state : bool; (* ship only the suffix the recipient lacks (§5.3) *)
    delta_gossip : bool; (* gossip digests, pull missing entries (vs Fig. 3 full sets) *)
    gossip_full_every : int; (* every Nth tick still ships the full set (liveness belt) *)
    app : app option;
  }

  let basic_mode =
    {
      gossip_period = 3_000;
      checkpoint_period = None;
      delta = None;
      early_return = false;
      incremental = false;
      paranoid_log = false;
      window = 1;
      trim_state = false;
      delta_gossip = true;
      gossip_full_every = 8;
      app = None;
    }

  (* Lifecycle record of one locally-broadcast message, from A-broadcast
     to local A-delivery (volatile — lost on crash like [pending] always
     was). [p_proposed] is -1 until the id first enters one of our
     proposals; the two stage latencies it splits the lifetime into are
     observed as [stage.broadcast_to_propose_us] (queueing/batching
     delay) and [stage.propose_to_adeliver_us] (consensus + delivery). *)
  type pend = {
    p_t0 : int;
    mutable p_proposed : int;
    p_cb : (Payload.id -> unit) option;
  }

  (* Interned per-node counters for the per-message paths. *)
  type handles = {
    h_delivered : Metrics.handle;
    h_broadcasts : Metrics.handle;
    h_rx_gossip : Metrics.handle;
    h_rx_digest : Metrics.handle;
    h_rx_need : Metrics.handle;
    h_rx_state : Metrics.handle;
    h_rx_cons : Metrics.handle;
    h_rx_fd : Metrics.handle;
    h_gossip_msgs : Metrics.handle;
    h_gossip_bytes : Metrics.handle;
  }

  type node = {
    io : msg Engine.io;
    mode : mode;
    on_deliver : Payload.t -> unit;
    hb : Heartbeat.t;
    multi : M.t;
    mh : handles;
    size : msg -> int; (* this node's own one-slot msg_size memo *)
    mutable agreed : Agreed.t;
    mutable k : int;
    mutable unordered : Payload.t Umap.t;
    mutable unordered_cache : Payload.t list option;
        (* the sorted list view, memoized between mutations *)
    logged_unordered : (Payload.id, unit) Hashtbl.t; (* keys on stable storage *)
    mutable gossip_k : int;
    mutable gossip_tick : int;
    mutable seq : int; (* local broadcast counter, volatile *)
    pending : (Payload.id, pend) Hashtbl.t;
    own_props : (int, Payload.id list) Hashtbl.t;
        (* ids inside our own not-yet-decided proposals (window > 1) *)
    ck_slot : (int * Agreed.repr) Storage.Slot.slot;
    unordered_full_slot : Payload.t list Storage.Slot.slot;
  }

  let unordered_mem t id = Umap.mem id t.unordered

  let unordered_add t (p : Payload.t) =
    if not (Umap.mem p.id t.unordered) then begin
      t.unordered <- Umap.add p.id p t.unordered;
      t.unordered_cache <- None
    end

  let unordered_remove t id =
    if Umap.mem id t.unordered then begin
      t.unordered <- Umap.remove id t.unordered;
      t.unordered_cache <- None
    end

  let unordered_count t = Umap.cardinal t.unordered

  let unordered_list t =
    match t.unordered_cache with
    | Some l -> l
    | None ->
      let l = List.rev (Umap.fold (fun _ p acc -> p :: acc) t.unordered []) in
      t.unordered_cache <- Some l;
      l

  (* Per-(origin, boot) maximum sequence number present in Unordered —
     the digest advertised instead of the payloads. The map iterates in
     identity order, so within a stream the last seq seen is the max. *)
  let unordered_summary t =
    Umap.fold
      (fun (id : Payload.id) _ acc ->
        match acc with
        | (o, b, _) :: rest when o = id.origin && b = id.boot ->
          (o, b, id.seq) :: rest
        | _ -> (id.origin, id.boot, id.seq) :: acc)
      t.unordered []

  (* --- Unordered-set durability (alternative protocol, §5.4/§5.5) --- *)

  let log_unordered_add t (p : Payload.t) =
    if t.mode.early_return then
      if t.mode.incremental then begin
        (* §5.5: log only the new part — one small write per message. *)
        Storage.write t.io.store ~layer ~key:(unordered_item_key p.id)
          (Wire.to_string Payload.write p);
        Hashtbl.replace t.logged_unordered p.id ()
      end
      else begin
        (* Full re-log of the whole set on every change. *)
        Storage.Slot.set t.unordered_full_slot (unordered_list t);
        Hashtbl.replace t.logged_unordered p.id ()
      end

  let cleanup_unordered_log t =
    if t.mode.early_return then
      if t.mode.incremental then begin
        let stale =
          Hashtbl.fold
            (fun id () acc ->
              if not (unordered_mem t id) then id :: acc else acc)
            t.logged_unordered []
        in
        List.iter
          (fun id ->
            Storage.delete t.io.store ~layer (unordered_item_key id);
            Hashtbl.remove t.logged_unordered id)
          stale
      end
      else if Hashtbl.length t.logged_unordered > unordered_count t
      then begin
        Storage.Slot.set t.unordered_full_slot (unordered_list t);
        Hashtbl.reset t.logged_unordered;
        Umap.iter (fun id _ -> Hashtbl.replace t.logged_unordered id ())
          t.unordered
      end

  let restore_unordered t =
    if t.mode.early_return then
      if t.mode.incremental then
        Storage.keys_with_prefix t.io.store "ab/u/"
        |> List.iter (fun key ->
               match Storage.read t.io.store key with
               | None -> ()
               | Some blob -> (
                 match Wire.of_string_opt Payload.read blob with
                 | None -> () (* corrupt log entry: skip, don't crash *)
                 | Some p ->
                   Hashtbl.replace t.logged_unordered p.id ();
                   if not (Agreed.contains t.agreed p.id) then
                     unordered_add t p))
      else
        match Storage.Slot.get t.unordered_full_slot with
        | None -> ()
        | Some ps ->
          List.iter
            (fun (p : Payload.t) ->
              Hashtbl.replace t.logged_unordered p.id ();
              if not (Agreed.contains t.agreed p.id) then unordered_add t p)
            ps

  (* --- Delivery ----------------------------------------------------- *)

  let span_key (id : Payload.id) =
    Printf.sprintf "%d.%d.%d" id.origin id.boot id.seq

  let deliver_one t (p : Payload.t) =
    Metrics.hincr t.mh.h_delivered;
    (match Hashtbl.find_opt t.pending p.id with
    | Some pe ->
      Hashtbl.remove t.pending p.id;
      let now = t.io.now () in
      Metrics.observe t.io.metrics ~node:t.io.self "lat_deliver"
        (float_of_int (now - pe.p_t0));
      if pe.p_proposed >= 0 then
        Metrics.observe t.io.metrics ~node:t.io.self
          "stage.propose_to_adeliver_us"
          (float_of_int (now - pe.p_proposed));
      if t.io.trace_on () then t.io.span_end ~stage:"abcast" (span_key p.id);
      (match pe.p_cb with Some f -> f p.id | None -> ())
    | None -> ());
    unordered_remove t p.id;
    t.on_deliver p

  (* --- Checkpointing (§5.1/§5.2) ------------------------------------ *)

  let do_checkpoint t =
    (match t.mode.app with
    | Some app -> Agreed.compact t.agreed ~app_blob:(app.checkpoint ())
    | None -> ());
    Storage.Slot.set t.ck_slot (t.k, Agreed.snapshot t.agreed);
    M.truncate_below t.multi t.k;
    cleanup_unordered_log t;
    t.io.emit
      (Printf.sprintf "checkpoint at k=%d (len %d)" t.k
         (Agreed.total_len t.agreed))

  (* --- Sequencer (Fig. 2; windowed extension) ------------------------ *)

  (* Is some unordered message absent from every outstanding proposal of
     ours?  Opening a further instance is only useful then. *)
  let has_uncovered t =
    let covered = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ ids -> List.iter (fun id -> Hashtbl.replace covered id ()) ids)
      t.own_props;
    Umap.fold
      (fun id _ acc -> acc || not (Hashtbl.mem covered id))
      t.unordered false

  let propose_at t j =
    (* Always propose the FULL Unordered set: every proposal then carries
       complete per-stream prefixes, which keeps delivery FIFO per stream
       even when a later instance decides while an earlier one chose a
       competing (possibly empty) proposal. Duplicates across instances
       are removed at delivery, as the paper's idempotence requires. *)
    let batch = unordered_list t in
    (* First time one of our own messages enters a proposal: close the
       batching-delay stage. The [p_proposed < 0] guard keeps re-proposals
       into later instances from double-counting. *)
    let now = t.io.now () in
    List.iter
      (fun (p : Payload.t) ->
        match Hashtbl.find_opt t.pending p.id with
        | Some pe when pe.p_proposed < 0 ->
          pe.p_proposed <- now;
          Metrics.observe t.io.metrics ~node:t.io.self
            "stage.broadcast_to_propose_us"
            (float_of_int (now - pe.p_t0))
        | _ -> ())
      batch;
    Hashtbl.replace t.own_props j (List.map (fun (p : Payload.t) -> p.id) batch);
    M.propose t.multi j (Batch.encode_sorted batch)

  let maybe_propose t =
    (* Walk the window: instances are opened strictly in order (the first
       locally unproposed, undecided instance), so no instance is ever
       skipped and every one eventually runs a consensus. *)
    let rec walk j =
      if j < t.k + t.mode.window then
        match (M.decision t.multi j, M.proposal t.multi j) with
        | Some _, _ | None, Some _ -> walk (j + 1)
        | None, None ->
          let trigger =
            if j = t.k then
              not (Umap.is_empty t.unordered) || t.gossip_k > t.k
            else (not (Umap.is_empty t.unordered)) && has_uncovered t
          in
          if trigger then propose_at t j
    in
    walk t.k

  let apply_decision t v =
    let batch = Batch.decode v in
    List.iter
      (fun (p : Payload.t) ->
        if Agreed.append t.agreed p then deliver_one t p
        else unordered_remove t p.id)
      batch;
    Hashtbl.remove t.own_props t.k;
    t.k <- t.k + 1;
    if t.mode.paranoid_log then do_checkpoint t

  let rec drain_decisions t =
    match M.decision t.multi t.k with
    | Some v ->
      apply_decision t v;
      drain_decisions t
    | None -> maybe_propose t

  (* --- State transfer (§5.3) ---------------------------------------- *)

  let send_state ?for_len t dst =
    let agreed =
      match for_len with
      | Some len when t.mode.trim_state -> (
        match Agreed.suffix_snapshot t.agreed ~from_len:len with
        | Some trimmed -> trimmed
        | None -> Agreed.snapshot t.agreed)
      | _ -> Agreed.snapshot t.agreed
    in
    Metrics.add t.io.metrics ~node:t.io.self "state_bytes_sent"
      (String.length (Wire.to_string Agreed.write_repr agreed));
    Metrics.incr t.io.metrics ~node:t.io.self "state_sent";
    t.io.send dst (State { k = t.k; floor = M.floor t.multi; agreed })

  let on_state t ~src:_ ks ~floor (repr : Agreed.repr) =
    (* Adopt when the de-synchronization exceeds the tuning knob, or
       unconditionally when we sit below the donor's truncation floor —
       the consensus instances we would need to replay no longer exist
       there, so state transfer is the only way forward (§5.3). *)
    match t.mode.delta with
    | Some delta
      when t.k < ks
           && (t.k < ks - delta || t.k < floor)
           (* A trimmed repr (no app blob, synthetic base) is only usable
              if our sequence still covers its base — it carries no
              prefix. A crash after we advertised [len] can put us below;
              skip, the donor re-sends against our fresher len. *)
           && (repr.base_app <> None
              || Agreed.total_len t.agreed >= repr.base_len) ->
      t.io.emit (Printf.sprintf "state transfer: k %d -> %d" t.k ks);
      (* "Terminate task sequencer": in-flight decisions below [ks] are
         ignored from now on because [t.k] jumps past them. *)
      (match Agreed.adopt t.agreed repr with
      | `Deliver ps -> List.iter (deliver_one t) ps
      | `Install (blob, ps) ->
        (match (t.mode.app, blob) with
        | Some app, Some b -> app.install b
        | _, None -> assert (repr.base_len = 0)
        | None, Some _ ->
          invalid_arg "state transfer: checkpointed donor but no app hook");
        List.iter (deliver_one t) ps);
      t.k <- ks;
      let stale_props =
        Hashtbl.fold
          (fun j _ acc -> if j < ks then j :: acc else acc)
          t.own_props []
      in
      List.iter (Hashtbl.remove t.own_props) stale_props;
      (* [t.unordered] is immutable underneath — filter in place without
         the defensive whole-table copy a Hashtbl needed. *)
      t.unordered <-
        Umap.filter (fun id _ -> not (Agreed.contains t.agreed id)) t.unordered;
      t.unordered_cache <- None;
      (* Persist the jump: replay must not restart below the donor's
         floor, whose consensus state may be truncated. *)
      Storage.Slot.set t.ck_slot (t.k, Agreed.snapshot t.agreed);
      Metrics.incr t.io.metrics ~node:t.io.self "state_transfers_applied";
      drain_decisions t
    | _ ->
      (* Small de-synchronization: treat like a gossip round hint. *)
      if ks > t.k then t.gossip_k <- max t.gossip_k ks

  (* --- Gossip task (§4.2; digest/pull optimization) ------------------ *)

  (* Byte accounting of the gossip layer proper — kept whether or not the
     engine counts wire bytes, so experiments can compare dissemination
     strategies directly. *)
  let count_gossip t ~copies m =
    Metrics.hadd t.mh.h_gossip_msgs copies;
    Metrics.hadd t.mh.h_gossip_bytes (copies * t.size m)

  let rec gossip_loop t =
    t.gossip_tick <- t.gossip_tick + 1;
    let full =
      (not t.mode.delta_gossip)
      || t.gossip_tick mod t.mode.gossip_full_every = 0
    in
    let m =
      if full then
        Gossip
          { k = t.k; len = Agreed.total_len t.agreed; unordered = unordered_list t }
      else
        Digest
          {
            k = t.k;
            len = Agreed.total_len t.agreed;
            summary = unordered_summary t;
          }
    in
    count_gossip t ~copies:t.io.n m;
    t.io.multisend m;
    t.io.after t.mode.gossip_period (fun () -> gossip_loop t)

  let on_gossip t ~src kq ~len_q uq =
    List.iter
      (fun (p : Payload.t) ->
        if not (Agreed.contains t.agreed p.id) then unordered_add t p)
      uq;
    if kq > t.k then t.gossip_k <- max t.gossip_k kq;
    (match t.mode.delta with
    | Some delta when t.k > kq + delta -> send_state ~for_len:len_q t src
    | _ -> ());
    drain_decisions t

  (* A digest names, per stream, the highest seq the sender holds
     unordered. Everything below it that we neither delivered nor hold is
     a candidate gap: pull exactly those. The sender replies with the
     subset it actually has, as a regular payload gossip. *)
  let on_digest t ~src kq ~len_q summary =
    let missing =
      List.fold_left
        (fun acc (origin, boot, smax) ->
          let vc = Agreed.vc t.agreed in
          let rec collect s acc =
            if s > smax then acc
            else
              let id = { Payload.origin; boot; seq = s } in
              collect (s + 1)
                (if unordered_mem t id then acc else id :: acc)
          in
          collect (Vclock.next_seq vc ~origin ~boot) acc)
        [] summary
    in
    if missing <> [] then begin
      let m = Need { ids = missing } in
      count_gossip t ~copies:1 m;
      t.io.send src m
    end;
    if kq > t.k then t.gossip_k <- max t.gossip_k kq;
    (match t.mode.delta with
    | Some delta when t.k > kq + delta -> send_state ~for_len:len_q t src
    | _ -> ());
    drain_decisions t

  let on_need t ~src ids =
    let ps = List.filter_map (fun id -> Umap.find_opt id t.unordered) ids in
    if ps <> [] then begin
      let m =
        Gossip
          {
            k = t.k;
            len = Agreed.total_len t.agreed;
            unordered = List.sort Payload.compare ps;
          }
      in
      count_gossip t ~copies:1 m;
      t.io.send src m
    end

  (* --- A-broadcast --------------------------------------------------- *)

  let broadcast t ?on_agreed data =
    let id = { Payload.origin = t.io.self; boot = t.io.incarnation; seq = t.seq } in
    t.seq <- t.seq + 1;
    let p = { Payload.id; data } in
    unordered_add t p;
    Hashtbl.replace t.pending id
      { p_t0 = t.io.now (); p_proposed = -1; p_cb = on_agreed };
    if t.io.trace_on () then t.io.span_begin ~stage:"abcast" (span_key id);
    Metrics.hincr t.mh.h_broadcasts;
    log_unordered_add t p;
    maybe_propose t;
    id

  (* --- Recovery (§4.2 "Recovery", §5.1) ------------------------------ *)

  let recover t =
    (match Storage.Slot.get t.ck_slot with
    | Some (k, repr) ->
      t.k <- k;
      t.agreed <- Agreed.restore repr;
      (match (t.mode.app, repr.base_app) with
      | Some app, Some blob -> app.install blob
      | _ -> ());
      (* The upper layer is volatile: re-deliver the explicit tail so it
         rebuilds its state on top of the installed checkpoint. *)
      List.iter (deliver_one t) (Agreed.tail t.agreed)
    | None -> ());
    restore_unordered t;
    (* Replay: walk the consensus log upward from the checkpoint. *)
    let rec replay () =
      match M.decision t.multi t.k with
      | Some v ->
        apply_decision t v;
        Metrics.incr t.io.metrics ~node:t.io.self "replay_rounds";
        replay ()
      | None -> ()
    in
    replay ();
    (* Re-propose every logged, still-undecided proposal — with a window
       there can be several in flight (idempotent, P4) — and rebuild the
       volatile record of what they contain. *)
    List.iter
      (fun j ->
        if j >= t.k && M.decision t.multi j = None then
          match M.proposal t.multi j with
          | Some v ->
            Hashtbl.replace t.own_props j
              (List.map (fun (p : Payload.t) -> p.id) (Batch.decode v));
            M.propose t.multi j v
          | None -> ())
      (M.logged_proposal_instances t.multi)

  let create_node io mode ~on_deliver =
    let tref = ref None in
    let with_t f = match !tref with Some t -> f t | None -> () in
    let hb = Heartbeat.create (Engine.map_io (fun m -> Fd m) io) in
    let multi =
      M.create
        (Engine.map_io (fun m -> Cons m) io)
        ~leader:(Omega.of_heartbeat hb)
        ~on_decide:(fun k _v -> with_t (fun t -> if k = t.k then drain_decisions t))
        ~on_lag:(fun floor ->
          with_t (fun t -> if floor > t.k then t.gossip_k <- max t.gossip_k floor))
        ~on_behind:(fun ~src -> with_t (fun t -> send_state t src))
    in
    let store = io.Engine.store in
    let metrics = io.Engine.metrics in
    let self = io.Engine.self in
    let h name = Metrics.handle metrics ~node:self name in
    let mh =
      {
        h_delivered = h "ab_delivered";
        h_broadcasts = h "ab_broadcasts";
        h_rx_gossip = h "rx.gossip";
        h_rx_digest = h "rx.digest";
        h_rx_need = h "rx.need";
        h_rx_state = h "rx.state";
        h_rx_cons = h "rx.consensus";
        h_rx_fd = h "rx.fd";
        h_gossip_msgs = h "gossip_msgs_sent";
        h_gossip_bytes = h "gossip_bytes_sent";
      }
    in
    let t =
      {
        io;
        mode;
        on_deliver;
        hb;
        multi;
        mh;
        size = make_msg_size ();
        agreed = Agreed.create ();
        k = 0;
        unordered = Umap.empty;
        unordered_cache = None;
        logged_unordered = Hashtbl.create 32;
        gossip_k = 0;
        gossip_tick = 0;
        seq = 0;
        pending = Hashtbl.create 32;
        own_props = Hashtbl.create 8;
        ck_slot =
          Storage.Slot.make ~codec:checkpoint_codec store ~layer
            ~key:checkpoint_key;
        unordered_full_slot =
          Storage.Slot.make ~codec:unordered_codec store ~layer
            ~key:unordered_slot_key;
      }
    in
    tref := Some t;
    recover t;
    gossip_loop t;
    (match mode.checkpoint_period with
    | Some period ->
      let rec checkpoint_loop () =
        t.io.after period (fun () ->
            do_checkpoint t;
            checkpoint_loop ())
      in
      checkpoint_loop ()
    | None -> ());
    t

  let node_handler t ~src msg =
    match msg with
    | Gossip { k; len; unordered } ->
      Metrics.hincr t.mh.h_rx_gossip;
      on_gossip t ~src k ~len_q:len unordered
    | Digest { k; len; summary } ->
      Metrics.hincr t.mh.h_rx_digest;
      on_digest t ~src k ~len_q:len summary
    | Need { ids } ->
      Metrics.hincr t.mh.h_rx_need;
      on_need t ~src ids
    | State { k; floor; agreed } ->
      Metrics.hincr t.mh.h_rx_state;
      on_state t ~src k ~floor agreed
    | Cons m ->
      Metrics.hincr t.mh.h_rx_cons;
      M.handle t.multi ~src m
    | Fd m ->
      Metrics.hincr t.mh.h_rx_fd;
      Heartbeat.handle t.hb ~src m

  module type NODE = sig
    type t

    val handler : t -> src:int -> msg -> unit

    val broadcast : t -> ?on_agreed:(Payload.id -> unit) -> string -> Payload.id

    val round : t -> int

    val unordered_count : t -> int

    val delivered_count : t -> int

    val delivered_tail : t -> Payload.t list

    val delivery_vc : t -> Vclock.t

    val agreed_snapshot : t -> Agreed.repr
  end

  module Node_ops = struct
    type t = node

    let handler = node_handler

    let broadcast = broadcast

    let round t = t.k

    let unordered_count t = unordered_count t

    let delivered_count t = Agreed.total_len t.agreed

    let delivered_tail t = Agreed.tail t.agreed

    let delivery_vc t = Agreed.vc t.agreed

    let agreed_snapshot t = Agreed.snapshot t.agreed
  end

  module Basic = struct
    include Node_ops

    let create ?(gossip_period = 3_000) ?(delta_gossip = true)
        ?(gossip_full_every = 8) io ~on_deliver =
      if gossip_full_every < 1 then
        invalid_arg "Basic.create: gossip_full_every must be >= 1";
      create_node io
        { basic_mode with gossip_period; delta_gossip; gossip_full_every }
        ~on_deliver
  end

  module Alternative = struct
    include Node_ops

    type nonrec app = app = {
      checkpoint : unit -> string;
      install : string -> unit;
    }

    let create ?(gossip_period = 3_000) ?(checkpoint_period = 50_000)
        ?(delta = 4) ?(early_return = true) ?(incremental = true)
        ?(paranoid_log = false) ?(window = 1) ?(trim_state = true)
        ?(delta_gossip = true) ?(gossip_full_every = 8) ?app io ~on_deliver =
      if window < 1 then invalid_arg "Alternative.create: window must be >= 1";
      if gossip_full_every < 1 then
        invalid_arg "Alternative.create: gossip_full_every must be >= 1";
      create_node io
        {
          gossip_period;
          checkpoint_period = Some checkpoint_period;
          delta = Some delta;
          early_return;
          incremental;
          paranoid_log;
          window;
          trim_state;
          delta_gossip;
          gossip_full_every;
          app;
        }
        ~on_deliver

    let checkpoint_now = do_checkpoint

    let floor t = M.floor t.multi
  end
end
