(* How many trailing chain positions each queue remembers for audit
   certificate comparison (see [Audit.window]); gossip round-trips lag
   the frontier by far less than this. *)
let chain_window_cap = 1024

type t = {
  mutable base_app : string option;
  mutable base_len : int;
  mutable vc : Vclock.t;
  mutable tail_rev : Payload.t list;
  mutable tail_len : int;
  mutable chain_ : int;  (* Audit chain after [total_len] deliveries *)
  mutable base_chain : int;  (* Audit chain after [base_len] deliveries *)
  window : Audit.window;
}

type repr = {
  base_app : string option;
  base_len : int;
  base_chain : int;
  vc : Vclock.t;
  tail : Payload.t list;
}

let create () =
  {
    base_app = None;
    base_len = 0;
    vc = Vclock.empty;
    tail_rev = [];
    tail_len = 0;
    chain_ = Audit.empty;
    base_chain = Audit.empty;
    window = Audit.window ~cap:chain_window_cap ();
  }

let contains (t : t) id = Vclock.contains t.vc id

let[@inline] chain_in (t : t) (p : Payload.t) =
  t.chain_ <- Audit.mix t.chain_ p.id;
  Audit.note t.window ~pos:(t.base_len + t.tail_len) ~hash:t.chain_

let append (t : t) (p : Payload.t) =
  if contains t p.id then false
  else begin
    t.vc <- Vclock.add t.vc p.id;
    t.tail_rev <- p :: t.tail_rev;
    t.tail_len <- t.tail_len + 1;
    chain_in t p;
    true
  end

let try_append (t : t) (p : Payload.t) =
  if contains t p.id then `Dup
  else if not (Vclock.fits t.vc p.id) then `Gap
  else begin
    t.vc <- Vclock.add t.vc p.id;
    t.tail_rev <- p :: t.tail_rev;
    t.tail_len <- t.tail_len + 1;
    chain_in t p;
    `Appended
  end

let total_len (t : t) = t.base_len + t.tail_len

let chain (t : t) = t.chain_

let chain_at (t : t) pos =
  if pos = total_len t then Some t.chain_
  else if pos = t.base_len then Some t.base_chain
  else Audit.hash_at t.window ~pos

let chain_window (t : t) = t.window

let tail (t : t) = List.rev t.tail_rev

let vc (t : t) = t.vc

let compact (t : t) ~app_blob =
  t.base_app <- Some app_blob;
  t.base_len <- total_len t;
  t.base_chain <- t.chain_;
  t.tail_rev <- [];
  t.tail_len <- 0

let snapshot (t : t) =
  {
    base_app = t.base_app;
    base_len = t.base_len;
    base_chain = t.base_chain;
    vc = t.vc;
    tail = tail t;
  }

(* Last [n] elements of the tail, in delivery order: the first [n]
   elements of [tail_rev] consed back over — one pass, no full [tail]
   materialization followed by an indexed filter. *)
let take_rev n l =
  let rec go n l acc =
    if n <= 0 then acc
    else match l with [] -> acc | x :: rest -> go (n - 1) rest (x :: acc)
  in
  go n l []

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: rest -> drop (n - 1) rest

let suffix_snapshot (t : t) ~from_len =
  if from_len < t.base_len || from_len > total_len t then None
  else
    Some
      {
        base_app = None;
        base_len = from_len;
        (* a receiver on the [`Deliver] path keeps its own chain, so a
           stale window miss (0) here is harmless — only the [`Install]
           path consumes [base_chain], and that path is gated on a full
           (untrimmed) snapshot by the protocol's [on_state] guard *)
        base_chain = (match chain_at t from_len with Some h -> h | None -> 0);
        vc = t.vc;
        tail = take_rev (total_len t - from_len) t.tail_rev;
      }

(* [set_to]/[restore]/[adopt] all need the length of [r.tail]; compute it
   once and thread it through instead of re-walking the list. *)
let set_to_len (t : t) (r : repr) len =
  t.base_app <- r.base_app;
  t.base_len <- r.base_len;
  t.vc <- r.vc;
  t.tail_rev <- List.rev r.tail;
  t.tail_len <- len;
  t.base_chain <- r.base_chain;
  (* rebuild the chain and window from the adopted prefix: fold the tail
     over the donor's base chain, re-noting each position *)
  Audit.reset t.window;
  t.chain_ <- r.base_chain;
  let pos = ref r.base_len in
  List.iter
    (fun (p : Payload.t) ->
      incr pos;
      t.chain_ <- Audit.mix t.chain_ p.id;
      Audit.note t.window ~pos:!pos ~hash:t.chain_)
    r.tail

let restore (r : repr) =
  let t = create () in
  set_to_len t r (List.length r.tail);
  t

let adopt (t : t) (r : repr) =
  let donor_tail_len = List.length r.tail in
  let donor_total = r.base_len + donor_tail_len in
  let mine = total_len t in
  if donor_total <= mine then `Deliver []
  else if mine >= r.base_len then begin
    (* Our sequence covers the donor's base: the missing messages are a
       suffix of the donor's tail (total order makes ours a prefix).
       Append them to OUR state rather than adopting the donor's repr —
       a trimmed repr (suffix snapshot, [base_app = None]) does not carry
       the prefix, and wholesale replacement would silently drop our
       already-delivered prefix from [tail]. *)
    let missing = drop (mine - r.base_len) r.tail in
    List.iter (fun p -> ignore (append t p)) missing;
    `Deliver missing
  end
  else begin
    set_to_len t r donor_tail_len;
    `Install (r.base_app, r.tail)
  end

module Wire = Abcast_util.Wire

let write_repr w (r : repr) =
  Wire.write_option Wire.write_string w r.base_app;
  Wire.write_varint w r.base_len;
  Wire.write_varint w r.base_chain;
  Vclock.write w r.vc;
  Wire.write_list Payload.write w r.tail

let read_repr rd =
  let base_app = Wire.read_option Wire.read_string rd in
  let base_len = Wire.read_varint rd in
  let base_chain = Wire.read_varint rd in
  let vc = Vclock.read rd in
  let tail = Wire.read_list Payload.read rd in
  { base_app; base_len; base_chain; vc; tail }

let pp ppf (t : t) =
  Format.fprintf ppf "agreed<base:%d%s tail:%d>" t.base_len
    (match t.base_app with Some _ -> "(app)" | None -> "")
    t.tail_len
