(** Checkpoint vector clocks (paper §5.2).

    A vector clock summarizes which messages are logically contained in an
    application checkpoint: for each [(origin, boot)] stream it records the
    highest delivered sequence number. The summary is exact because the
    protocol delivers each stream's messages in sequence order — an
    invariant that follows from gossip carrying whole [Unordered] sets (a
    gossip that carries seq [s] of a stream also carries every smaller
    not-yet-agreed seq), and that {!Agreed} asserts at every append. *)

type t

val empty : t

val contains : t -> Payload.id -> bool
(** Whether the identified message is covered by the clock. *)

val fits : t -> Payload.id -> bool
(** Whether [add] would succeed: the id is exactly the next sequence
    number of its stream. [false] both for already-covered ids and for
    ids that would leave a gap — callers that need to tell the two apart
    combine with {!contains}. *)

val add : t -> Payload.id -> t
(** Record a delivery. Raises [Invalid_argument] if it would run a stream
    backwards or leave a gap (protocol-invariant violation). *)

val next_seq : t -> origin:int -> boot:int -> int
(** First sequence number of the [(origin, boot)] stream {e not} covered
    by the clock (0 for an unknown stream). Digest-based gossip uses this
    to enumerate exactly the candidate gaps below a peer's advertised
    per-stream maximum. *)

val streams : t -> ((int * int) * int) list
(** [((origin, boot), max_seq)] entries, sorted (for tests/inspection). *)

val of_streams : ((int * int) * int) list -> t
(** Inverse of {!streams} (wire decoding, test fixtures). Performs no
    FIFO validation — the entries are trusted to describe per-stream
    maxima, exactly what {!streams} produced on the encoding side. *)

(** {2 Wire codec} — the {!streams} entries as a list of varint
    triples. *)

val write : Abcast_util.Wire.writer -> t -> unit

val read : Abcast_util.Wire.reader -> t

val pp : Format.formatter -> t -> unit
