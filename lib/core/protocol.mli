(** The paper's Atomic Broadcast protocols, as a functor over the
    Consensus building block.

    [Make (C)] instantiates the whole stack over one consensus
    implementation — the paper's central design point is that [C] is a
    black box ({!Abcast_consensus.Consensus_intf.S}); swapping
    {!Abcast_consensus.Paxos} for {!Abcast_consensus.Coord} changes
    nothing above this line (experiment E8).

    Two protocol variants are exposed:

    - {!Make.Basic} — Fig. 2: minimal logging. The only stable-storage
      write above consensus is… none: the proposal log is the consensus's
      own initial-value write (§4.3). Recovery replays every logged round.
    - {!Make.Alternative} — Figs. 3–5: periodic [(k, Agreed)] checkpoints
      (§5.1), application-level checkpoints with vector clocks bounding
      log size (§5.2), state transfer with tunable Δ (§5.3), early-return
      [A-broadcast] that logs the [Unordered] set for batching (§5.4), and
      incremental logging (§5.5).

    Both satisfy Validity, Integrity, Termination and Total Order (§2.2);
    the test suite checks these over adversarial crash/recovery
    schedules. *)

type app = { checkpoint : unit -> string; install : string -> unit }
(** Application hooks for application-level checkpointing (§5.2, Fig. 5).
    [checkpoint] is the [A-checkpoint] upcall returning the serialized
    application state; [install] resets the application to a received
    checkpoint (recovery and state transfer). Shared across all functor
    instantiations. *)

val encode_checkpoint : int * Agreed.repr -> string
(** Wire encoding of the stable [(k, Agreed)] checkpoint cell — the
    format every stack instance logs under ["ab/checkpoint"],
    independent of the consensus implementation. Exposed for harness
    code that inspects or fabricates checkpoints (Lemmas, tests). *)

val decode_checkpoint : string -> (int * Agreed.repr) option
(** Inverse of {!encode_checkpoint}; [None] on malformed bytes. *)

module Make (C : Abcast_consensus.Consensus_intf.S) : sig
  module M : module type of Abcast_consensus.Multi.Make (C)

  (** Wire messages of the whole stack: protocol gossip and state
      transfer, plus encapsulated consensus and failure-detector
      traffic. *)
  type msg =
    | Gossip of {
        k : int;
        len : int;
        unordered : Payload.t list;
        cert : Audit.cert option;
      }
        (** full-payload [gossip(k_p, Unordered_p)] multisend (§4.2); [len]
            is the sender's delivered-sequence length, letting a state-
            transfer donor ship only the missing suffix (§5.3). With
            digest gossip enabled this is the periodic full-set fallback
            and the reply to a {!Need} pull. [cert] optionally piggybacks
            the sender's order certificate (the online audit). *)
    | Digest of {
        k : int;
        len : int;
        summary : (int * int * int) list;
        cert : Audit.cert option;
      }
        (** compact gossip: [summary] lists, per [(origin, boot)] stream,
            the highest sequence number present in the sender's
            [Unordered] set. A receiver derives exactly the candidate
            entries it is missing and pulls them with {!Need} — see
            DESIGN.md for why the §4.2 liveness argument is preserved.
            [cert]: as in {!Gossip}. *)
    | Need of { ids : Payload.id list }
        (** pull request for specific unordered entries, answered with a
            payload {!Gossip} restricted to the ids the sender holds *)
    | State of { k : int; floor : int; agreed : Agreed.repr }
        (** state transfer for late processes (§5.3); [floor] is the
            sender's consensus truncation floor — a receiver below it must
            adopt the state regardless of Δ, because the consensus
            instances it is missing can no longer be re-run *)
    | Cons of M.msg  (** consensus instance traffic *)
    | Fd of Abcast_fd.Heartbeat.msg  (** failure-detector heartbeats *)
    | Ring of { k : int; len : int; entries : (int * Payload.t) list }
        (** ring dissemination: payload batch forwarded to the successor
            process; each entry carries its remaining hop count (the
            origin starts at [n-1], so a payload circles the ring at most
            once). [k]/[len] piggyback the same round/length hints as
            {!Gossip}. A torn ring (crashed successor) degrades to the
            digest/pull gossip underneath — see DESIGN.md "Dissemination
            topologies". *)

  val pp_msg : Format.formatter -> msg -> unit

  val write_msg : Abcast_util.Wire.writer -> msg -> unit
  (** Wire encoding of the whole stack's messages (one leading tag byte,
      then the constructor's fields — see DESIGN.md "Wire format"). *)

  val read_msg : Abcast_util.Wire.reader -> msg
  (** @raise Abcast_util.Wire.Error on malformed input. *)

  val encode_msg : msg -> string
  (** [Wire.to_string write_msg]. *)

  val decode_msg : string -> msg option
  (** Total decoder for untrusted input (network datagrams): [None] on
      any malformation, including trailing bytes. *)

  val make_msg_size : unit -> msg -> int
  (** A fresh size function with its own one-slot memo (keyed by physical
      equality) and scratch buffer: a multisend re-accounting the same
      message for every destination serializes it once. Per-consumer so
      that interleaved nodes of one simulation don't evict each other's
      slot. *)

  val msg_size : msg -> int
  (** Exact wire size in bytes, for network accounting — a shared
      [make_msg_size ()] instance for engine-level accounting (one
      consumer per simulation). *)

  (** Operations common to both protocol variants. *)
  module type NODE = sig
    type t

    val handler : t -> src:int -> msg -> unit
    (** The incoming-message dispatcher to register as the engine
        behaviour of this process. *)

    val broadcast : t -> ?on_agreed:(Payload.id -> unit) -> string -> Payload.id
    (** [A-broadcast]: hand a message to the protocol. Returns its
        identity immediately; [on_agreed] fires when the message enters
        the [Agreed] queue locally (the basic protocol's completion
        point, §4.2). *)

    val round : t -> int
    (** Current consensus round [k_p]. *)

    val unordered_count : t -> int
    (** Size of the [Unordered] set. *)

    val delivered_count : t -> int
    (** Length of the whole delivery sequence (including any checkpointed
        prefix). *)

    val delivered_tail : t -> Payload.t list
    (** Explicit (non-checkpointed) suffix of the delivery sequence —
      [A-deliver-sequence()] (§2.2). *)

    val delivery_vc : t -> Vclock.t
    (** Vector clock covering every delivered message. *)

    val agreed_snapshot : t -> Agreed.repr
    (** Snapshot of the [Agreed] queue (tests, state inspection). *)
  end

  (** The basic protocol (Fig. 2): minimal logging, full replay on
      recovery. *)
  module Basic : sig
    include NODE

    val create :
      ?gossip_period:int ->
      ?delta_gossip:bool ->
      ?gossip_full_every:int ->
      ?dissemination:[ `Gossip | `Ring ] ->
      ?max_batch_bytes:int ->
      ?ring_flush_us:int ->
      ?need_cap:int ->
      ?trace_sample:int ->
      ?audit_every:int ->
      msg Abcast_sim.Engine.io ->
      on_deliver:(Payload.t -> unit) ->
      t
    (** Boot or recover this process. Recovery runs the replay procedure:
        it parses the consensus proposal/decision log, rebuilds [Agreed],
        re-delivers (calling [on_deliver] from the start — the upper layer
        is volatile too) and re-proposes the in-flight round (§4.2).
        [gossip_period] defaults to 3_000 simulated µs.

        [delta_gossip] (default [true]) gossips {!Digest} summaries and
        pulls missing entries instead of multisending the full [Unordered]
        set every period; every [gossip_full_every]'th tick (default 8)
        still ships the full set, so the paper's literal §4.2 liveness
        argument applies unchanged to that subsequence of gossips.
        [delta_gossip = false] restores Fig. 2/3 verbatim.

        [dissemination] (default [`Gossip]) selects the payload
        dissemination topology: [`Ring] forwards payload batches to the
        successor process only (coalesced for [ring_flush_us], default
        400 µs), with the digest/pull gossip retained as the repair path
        after crashes. [max_batch_bytes] (default 24_000) bounds one
        consensus proposal's payload bytes — the adaptive batch is the
        whole backlog, cut at this budget. [need_cap] (default 128)
        bounds how many missing ids one digest exchange will pull — the
        repair path's flow control.

        [trace_sample] (default 0 = off) samples every [trace_sample]-th
        local broadcast for causal tracing: the payload carries a
        {!Trace_ctx} across every hop and each node records
        flight-recorder events stamped with it (see
        {!Abcast_sim.Flight}).

        [audit_every] (default 1 = every tick; 0 = off) piggybacks an
        {!Audit.cert} order certificate on every [audit_every]-th gossip
        or digest; receivers compare it against their own delivery hash
        chain and a mismatch trips the ["audit_diverged"] sentinel (an
        [io.alarm], a flight event, and a metric). *)
  end

  (** The alternative protocol (Figs. 3–5). *)
  module Alternative : sig
    include NODE

    type nonrec app = app = {
      checkpoint : unit -> string;
      install : string -> unit;
    }

    val create :
      ?gossip_period:int ->
      ?checkpoint_period:int ->
      ?delta:int ->
      ?early_return:bool ->
      ?incremental:bool ->
      ?paranoid_log:bool ->
      ?window:int ->
      ?trim_state:bool ->
      ?delta_gossip:bool ->
      ?gossip_full_every:int ->
      ?dissemination:[ `Gossip | `Ring ] ->
      ?max_batch_bytes:int ->
      ?ring_flush_us:int ->
      ?need_cap:int ->
      ?trace_sample:int ->
      ?audit_every:int ->
      ?fault_reorder_once:bool ->
      ?app:app ->
      msg Abcast_sim.Engine.io ->
      on_deliver:(Payload.t -> unit) ->
      t
    (** Boot or recover. Defaults: [checkpoint_period = 50_000] µs,
        [delta = 4] rounds (the paper's Δ), [early_return = true] (log
        [Unordered] on broadcast and complete immediately, §5.4),
        [incremental = true] (log only the new part, §5.5),
        [paranoid_log = false] ([true] turns the node into the
        naive-logging strawman used by experiments E1/E6: it checkpoints
        after every round). Without [app], checkpoints store the full
        message sequence; with it, the prefix is replaced by the
        application state and the consensus log is truncated (§5.2).

        [trim_state] (default true) applies the §5.3 optimization: a
        state transfer triggered by a gossip carries only the suffix the
        recipient is missing (falling back to the full snapshot when the
        missing prefix reaches into a compacted checkpoint).

        [delta_gossip]/[gossip_full_every]: as in {!Basic.create} —
        digest-based gossip with pull of missing entries and a periodic
        full-set fallback.

        [window] (default 1 — the paper's strictly sequential sequencer)
        is an extension: up to [window] consensus instances may run
        concurrently as a pipeline. Instances are opened in order; each
        proposal carries a disjoint identity-sorted slice of the
        [Unordered] backlog — only payloads not already covered by an
        earlier in-flight proposal — cut at [max_batch_bytes], so
        concurrent instances decide mostly-distinct batches instead of
        re-deciding the same prefix [window] times. Decisions may arrive
        out of order (they are buffered); deliveries still happen
        strictly in instance order, and a batch entry whose stream
        predecessor is missing is skipped deterministically and
        re-proposed rather than breaking the FIFO invariant.

        [dissemination]/[max_batch_bytes]/[ring_flush_us]/[need_cap]/
        [trace_sample]/[audit_every]: as in {!Basic.create}.

        [fault_reorder_once] (default false; tests only) arms a one-shot
        fault injection: the first decided batch carrying payloads of at
        least two streams is applied in reversed order, deliberately
        breaking total order on this node so the audit sentinel can be
        exercised end to end. *)

    val checkpoint_now : t -> unit
    (** Force a checkpoint immediately (tests and examples). *)

    val floor : t -> int
    (** Consensus truncation floor (0 until a checkpoint truncates). *)
  end
end
