(* CRC-32 (IEEE), reflected form, one 256-entry table computed at first
   use. The checksum lives in an int masked to 32 bits. *)

let poly = 0xEDB88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := (!c lsr 1) lxor poly else c := !c lsr 1
         done;
         !c))

let update_byte table crc b =
  let idx = (crc lxor b) land 0xff in
  Array.unsafe_get table idx lxor (crc lsr 8)

let run get len off =
  let table = Lazy.force table in
  let crc = ref 0xFFFF_FFFF in
  for i = off to off + len - 1 do
    crc := update_byte table !crc (get i)
  done;
  !crc lxor 0xFFFF_FFFF

let string ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Crc32.string: window outside string";
  run (fun i -> Char.code (String.unsafe_get s i)) len off

let bytes ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc32.bytes: window outside buffer";
  run (fun i -> Char.code (Bytes.unsafe_get b i)) len off
