type policy = Always | Every of { ops : int; ms : int } | Never

let policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Every { ops; ms } -> Printf.sprintf "every:%d:%d" ops ms

let policy_of_string s =
  match String.lowercase_ascii s with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | s -> (
    match String.split_on_char ':' s with
    | [ "every"; ops; ms ] -> (
      match (int_of_string_opt ops, int_of_string_opt ms) with
      | Some ops, Some ms when ops > 0 && ms > 0 -> Ok (Every { ops; ms })
      | _ -> Error "fsync policy: every:<ops>:<ms> needs positive integers")
    | _ ->
      Error
        (Printf.sprintf
           "fsync policy %S: expected always | never | every:<ops>:<ms>" s))

let fsync_fd fd = try Unix.fsync fd with Unix.Unix_error _ -> ()

let fsync_path path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | fd ->
    fsync_fd fd;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let fsync_dir = fsync_path

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write_all fd buf off len =
  let pos = ref off in
  let stop = off + len in
  while !pos < stop do
    let n = Unix.write fd buf !pos (stop - !pos) in
    if n <= 0 then raise (Sys_error "Durable.write_all: short write");
    pos := !pos + n
  done

let write_file ?(fsync = false) path contents =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  write_all fd (Bytes.unsafe_of_string contents) 0 (String.length contents);
  if fsync then fsync_fd fd;
  Unix.close fd;
  Sys.rename tmp path;
  if fsync then fsync_dir (Filename.dirname path)

type pacer = {
  pol : policy;
  mutable unsynced : int;
  mutable last_sync : float;
}

let pacer pol = { pol; unsynced = 0; last_sync = Unix.gettimeofday () }

let policy p = p.pol

let note_op p =
  match p.pol with
  | Always ->
    p.unsynced <- p.unsynced + 1;
    true
  | Never -> false
  | Every { ops; ms } ->
    p.unsynced <- p.unsynced + 1;
    p.unsynced >= ops
    || (Unix.gettimeofday () -. p.last_sync) *. 1000.0 >= float_of_int ms

let note_sync p =
  p.unsynced <- 0;
  p.last_sync <- Unix.gettimeofday ()

let pending p = p.unsynced > 0
