(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]), table-driven.

    Guards every {!Wal} record against torn writes and bit rot: a record
    whose stored checksum does not match is treated as the end of the
    log, not as data. The value is kept in an [int] in
    [\[0, 0xFFFF_FFFF\]] (OCaml ints are 63-bit, so no boxing). *)

val string : ?off:int -> ?len:int -> string -> int
(** Checksum of [s.[off .. off+len-1]] (defaults: the whole string). *)

val bytes : ?off:int -> ?len:int -> Bytes.t -> int
(** Same over a byte buffer (used on the write path's scratch buffer). *)
