(** Shared durability primitives: fsync policies and crash-safe file
    writes.

    Both stable-storage backends ({!Wal} and the file-per-key store in
    [Abcast_sim.Storage]) honor the same {!policy}; the helpers here are
    the single place where the tmp+write+fsync+rename+dirsync dance is
    spelled out, so the two backends cannot drift apart on what
    "durable" means. All fsync failures are swallowed (best effort on
    filesystems that reject fsync, e.g. some tmpfs/CI mounts): the
    policies trade durability for throughput, they never trade
    availability. *)

(** When appends are forced to disk. *)
type policy =
  | Always  (** fsync after every log operation: no completed op is lost *)
  | Every of { ops : int; ms : int }
      (** fsync once at least [ops] operations or [ms] milliseconds have
          accumulated since the last sync, whichever comes first — a
          crash loses at most that window *)
  | Never  (** never fsync: the OS page cache decides (crash-unsafe) *)

val policy_to_string : policy -> string
(** ["always"], ["every:<ops>:<ms>"], or ["never"] — inverse of
    {!policy_of_string}, used by the CLI and bench labels. *)

val policy_of_string : string -> (policy, string) result
(** Parse ["always"] / ["never"] / ["every:<ops>:<ms>"]. *)

val fsync_fd : Unix.file_descr -> unit
(** [Unix.fsync], errors swallowed. *)

val fsync_path : string -> unit
(** Open read-only, fsync, close — used for directory entries whose fd
    is no longer at hand. Errors swallowed. *)

val fsync_dir : string -> unit
(** Persist directory metadata (created/renamed/unlinked entries). On
    platforms where directories cannot be fsynced this is a no-op. *)

val mkdir_p : string -> unit
(** Create a directory and its missing parents (0o755). *)

val write_file : ?fsync:bool -> string -> string -> unit
(** [write_file path contents] writes atomically via
    [path ^ ".tmp"] + rename. With [~fsync:true] (default false) the
    data is fsynced before the rename and the parent directory after
    it, which is what makes the rename itself crash-safe: without both
    syncs a crash can leave an empty or missing file even though the
    write "succeeded". *)

val write_all : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** Loop [Unix.write] until all [len] bytes from [off] are written. *)

type pacer
(** Mutable decision state for one backend instance applying a
    {!policy}: counts unsynced operations and remembers the last sync
    time. *)

val pacer : policy -> pacer

val policy : pacer -> policy

val note_op : pacer -> bool
(** Record one completed (unsynced) log operation; [true] when the
    policy demands a sync now ([Always] every time, [Every] when either
    threshold is crossed, [Never] never). *)

val note_sync : pacer -> unit
(** Record that a sync happened: resets the op count and the clock. *)

val pending : pacer -> bool
(** Whether any operation since the last sync is still unsynced. *)
