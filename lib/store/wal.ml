module Wire = Abcast_util.Wire

exception Injected_crash of string

let failpoint : string option ref = ref None

let check_failpoint name =
  match !failpoint with
  | Some n when String.equal n name -> raise (Injected_crash name)
  | _ -> ()

type stats = {
  appends : int;
  fsyncs : int;
  segments : int;
  compactions : int;
  recovered_records : int;
  torn_records : int;
}

type io_op = [ `Append | `Fsync | `Recover ]

type t = {
  dir : string;
  segment_bytes : int;
  compact_min_bytes : int;
  compact_ratio : float;
  auto_compact : bool;
  pacer : Durable.pacer;
  (* optional wall-clock timing tap: called with each operation's
     duration in µs. The store layer feeds these into latency
     histograms; [None] (the default) costs nothing — not even a
     gettimeofday. Wal cannot depend on the sim Metrics module (the
     dependency points the other way), hence a callback. *)
  on_io : (io_op -> float -> unit) option;
  (* live map: key -> (value, framed record size on disk). The record
     size is what compaction would pay to rewrite the binding; summed it
     gives [live_bytes], the live fraction of the on-disk log. *)
  live : (string, string * int) Hashtbl.t;
  body : Wire.writer; (* scratch: record body *)
  frame : Wire.writer; (* scratch: length prefix + body + crc *)
  mutable fd : Unix.file_descr;
  mutable seg_seq : int; (* sequence number of the current segment *)
  mutable seg_size : int; (* bytes in the current segment *)
  mutable sealed : (int * string) list; (* older segments, ascending seq *)
  mutable total_bytes : int; (* bytes across all segments *)
  mutable live_bytes : int;
  mutable closed : bool;
  mutable appends : int;
  mutable fsyncs : int;
  mutable compactions : int;
  mutable recovered : int;
  mutable torn : int;
}

(* ---- segment naming ---- *)

let seg_name seq = Printf.sprintf "wal-%010d.log" seq

let seg_path t seq = Filename.concat t.dir (seg_name seq)

let seq_of_name name =
  if
    String.length name = 18
    && String.sub name 0 4 = "wal-"
    && Filename.check_suffix name ".log"
  then int_of_string_opt (String.sub name 4 10)
  else None

(* ---- record framing ---- *)

let tag_put = 0
let tag_delete = 1
let tag_reset = 2

let encode_body t tag key value =
  Wire.clear t.body;
  Wire.write_u8 t.body tag;
  if tag <> tag_reset then Wire.write_string t.body key;
  if tag = tag_put then Wire.write_string t.body value

(* Build the frame for the current body and return its length. *)
let encode_frame t =
  let blen = Wire.length t.body in
  Wire.clear t.frame;
  Wire.write_uvarint t.frame blen;
  let src = Wire.unsafe_bytes t.body in
  let dst = Wire.unsafe_reserve t.frame blen in
  Bytes.blit src 0 dst (Wire.length t.frame) blen;
  Wire.unsafe_advance t.frame blen;
  let crc = Crc32.bytes src ~off:0 ~len:blen in
  Wire.write_u8 t.frame crc;
  Wire.write_u8 t.frame (crc lsr 8);
  Wire.write_u8 t.frame (crc lsr 16);
  Wire.write_u8 t.frame (crc lsr 24);
  Wire.length t.frame

let do_fsync t =
  (match t.on_io with
  | None -> Durable.fsync_fd t.fd
  | Some f ->
    let t0 = Unix.gettimeofday () in
    Durable.fsync_fd t.fd;
    f `Fsync ((Unix.gettimeofday () -. t0) *. 1e6));
  t.fsyncs <- t.fsyncs + 1;
  Durable.note_sync t.pacer

let open_segment t seq =
  let fd =
    Unix.openfile (seg_path t seq)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  t.fd <- fd;
  t.seg_seq <- seq

let roll t =
  (* Seal the full segment: sync it (unless the policy forbids spending
     fsyncs at all) so sealed segments are settled history, then start
     the next one. *)
  if Durable.policy t.pacer <> Durable.Never then do_fsync t;
  Unix.close t.fd;
  t.sealed <- t.sealed @ [ (t.seg_seq, seg_path t t.seg_seq) ];
  open_segment t (t.seg_seq + 1);
  t.seg_size <- 0

let check_open t op = if t.closed then invalid_arg ("Wal." ^ op ^ ": closed")

(* Append the already-encoded body as one record; returns the framed
   size. One write syscall per record: the OS can tear it, the CRC
   catches the tear. *)
let append_record t =
  let flen = encode_frame t in
  Durable.write_all t.fd (Wire.unsafe_bytes t.frame) 0 flen;
  t.seg_size <- t.seg_size + flen;
  t.total_bytes <- t.total_bytes + flen;
  t.appends <- t.appends + 1;
  if Durable.note_op t.pacer then do_fsync t;
  if t.seg_size >= t.segment_bytes then roll t;
  flen

(* The reported `Append duration covers the whole operation, including
   any fsync or segment roll it triggers — that is the latency a caller
   actually pays per record. *)
let append t =
  match t.on_io with
  | None -> append_record t
  | Some f ->
    let t0 = Unix.gettimeofday () in
    let flen = append_record t in
    f `Append ((Unix.gettimeofday () -. t0) *. 1e6);
    flen

(* ---- compaction ---- *)

let dead_bytes t = t.total_bytes - t.live_bytes

let compact t =
  check_open t "compact";
  let snap_seq = t.seg_seq + 1 in
  let snap_path = seg_path t snap_seq in
  let tmp = snap_path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let snap_size = ref 0 in
  let live_size = ref 0 in
  let emit tag key value =
    encode_body t tag key value;
    let flen = encode_frame t in
    Durable.write_all fd (Wire.unsafe_bytes t.frame) 0 flen;
    snap_size := !snap_size + flen;
    flen
  in
  ignore (emit tag_reset "" "");
  Hashtbl.iter
    (fun key (value, _) -> live_size := !live_size + emit tag_put key value)
    t.live;
  Durable.fsync_fd fd;
  t.fsyncs <- t.fsyncs + 1;
  Unix.close fd;
  check_failpoint "compact-before-rename";
  Sys.rename tmp snap_path;
  Durable.fsync_dir t.dir;
  check_failpoint "compact-after-rename";
  (* The snapshot is durable and, thanks to its leading Reset record,
     replay-dominant over everything older: stale segments can now go,
     in any order, crash or no crash. *)
  Unix.close t.fd;
  List.iter
    (fun (_, path) -> try Sys.remove path with Sys_error _ -> ())
    t.sealed;
  (try Sys.remove (seg_path t t.seg_seq) with Sys_error _ -> ());
  Durable.fsync_dir t.dir;
  t.sealed <- [];
  t.seg_size <- !snap_size;
  t.total_bytes <- !snap_size;
  t.live_bytes <- !live_size;
  (* per-binding framed sizes are unchanged (same encoder), so the live
     table needs no touch-up *)
  open_segment t snap_seq;
  t.compactions <- t.compactions + 1;
  Durable.note_sync t.pacer

let maybe_compact t =
  if
    t.auto_compact
    && dead_bytes t >= t.compact_min_bytes
    && float_of_int (dead_bytes t)
       >= t.compact_ratio *. float_of_int (max 1 t.total_bytes)
  then compact t

(* ---- public mutators ---- *)

let put t key value =
  check_open t "put";
  encode_body t tag_put key value;
  let flen = append t in
  (match Hashtbl.find_opt t.live key with
  | Some (_, old) -> t.live_bytes <- t.live_bytes - old
  | None -> ());
  Hashtbl.replace t.live key (value, flen);
  t.live_bytes <- t.live_bytes + flen;
  maybe_compact t

let delete t key =
  check_open t "delete";
  match Hashtbl.find_opt t.live key with
  | None -> ()
  | Some (_, old) ->
    encode_body t tag_delete key "";
    ignore (append t);
    Hashtbl.remove t.live key;
    t.live_bytes <- t.live_bytes - old;
    maybe_compact t

let find t key =
  match Hashtbl.find_opt t.live key with
  | Some (v, _) -> Some v
  | None -> None

let mem t key = Hashtbl.mem t.live key

let length t = Hashtbl.length t.live

let iter t f = Hashtbl.iter (fun key (value, _) -> f key value) t.live

let sync t =
  check_open t "sync";
  do_fsync t

let close t =
  if not t.closed then begin
    Durable.fsync_fd t.fd;
    t.fsyncs <- t.fsyncs + 1;
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    t.closed <- true
  end

let stats t =
  {
    appends = t.appends;
    fsyncs = t.fsyncs;
    segments = List.length t.sealed + 1;
    compactions = t.compactions;
    recovered_records = t.recovered;
    torn_records = t.torn;
  }

let dir t = t.dir

let current_segment t = seg_path t t.seg_seq

let disk_bytes t = t.total_bytes

(* ---- recovery ---- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* Replay one segment's bytes into the live map. Returns the offset of
   the first byte past the last whole, checksum-valid, decodable record
   — [String.length data] iff the segment is clean. *)
let replay_segment t data =
  let len = String.length data in
  let pos = ref 0 in
  let good = ref 0 in
  (try
     while !pos < len do
       let r = Wire.reader ~pos:!pos ~len:(len - !pos) data in
       let blen = Wire.read_uvarint r in
       if Wire.remaining r < blen + 4 then Wire.error "wal: truncated record";
       let bpos = Wire.unsafe_pos r in
       let stored =
         let b i = Char.code data.[bpos + blen + i] in
         b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
       in
       if Crc32.string data ~off:bpos ~len:blen <> stored then
         Wire.error "wal: checksum mismatch";
       let br = Wire.reader ~pos:bpos ~len:blen data in
       let tag = Wire.read_u8 br in
       let next = bpos + blen + 4 in
       let flen = next - !pos in
       (if tag = tag_put then begin
          let key = Wire.read_string br in
          let value = Wire.read_string br in
          Wire.expect_end br;
          (match Hashtbl.find_opt t.live key with
          | Some (_, old) -> t.live_bytes <- t.live_bytes - old
          | None -> ());
          Hashtbl.replace t.live key (value, flen);
          t.live_bytes <- t.live_bytes + flen
        end
        else if tag = tag_delete then begin
          let key = Wire.read_string br in
          Wire.expect_end br;
          match Hashtbl.find_opt t.live key with
          | Some (_, old) ->
            t.live_bytes <- t.live_bytes - old;
            Hashtbl.remove t.live key
          | None -> ()
        end
        else if tag = tag_reset then begin
          Wire.expect_end br;
          Hashtbl.reset t.live;
          t.live_bytes <- 0
        end
        else Wire.error "wal: unknown record tag %d" tag);
       pos := next;
       good := next;
       t.recovered <- t.recovered + 1
     done
   with Wire.Error _ -> ());
  !good

let truncate_file path size =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd size;
  Durable.fsync_fd fd;
  Unix.close fd

let open_ ?(segment_bytes = 1 lsl 20)
    ?(fsync = Durable.Every { ops = 64; ms = 20 }) ?(compact_min_bytes = 64_000)
    ?(compact_ratio = 0.5) ?(auto_compact = true) ?on_io ~dir () =
  if segment_bytes <= 0 then invalid_arg "Wal.open_: segment_bytes";
  Durable.mkdir_p dir;
  let t_recover0 =
    match on_io with None -> 0.0 | Some _ -> Unix.gettimeofday ()
  in
  let t =
    {
      dir;
      segment_bytes;
      compact_min_bytes;
      compact_ratio;
      auto_compact;
      pacer = Durable.pacer fsync;
      on_io;
      live = Hashtbl.create 64;
      body = Wire.writer ~cap:256 ();
      frame = Wire.writer ~cap:256 ();
      fd = Unix.stdin (* replaced below *);
      seg_seq = 0;
      seg_size = 0;
      sealed = [];
      total_bytes = 0;
      live_bytes = 0;
      closed = false;
      appends = 0;
      fsyncs = 0;
      compactions = 0;
      recovered = 0;
      torn = 0;
    }
  in
  let entries = Sys.readdir dir in
  (* in-flight compaction output from a crashed incarnation: invisible
     to the log (never renamed), so just clean it up *)
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".tmp" then
        try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
    entries;
  let segs =
    Array.to_list entries
    |> List.filter_map (fun name ->
           match seq_of_name name with
           | Some seq -> Some (seq, Filename.concat dir name)
           | None -> None)
    |> List.sort compare
  in
  let torn = ref false in
  let surviving =
    List.filter_map
      (fun (seq, path) ->
        if !torn then begin
          (* everything after a torn record is no longer a prefix of the
             appended operations: drop it *)
          (try Sys.remove path with Sys_error _ -> ());
          None
        end
        else begin
          let data = read_file path in
          let good = replay_segment t data in
          if good < String.length data then begin
            truncate_file path good;
            t.torn <- t.torn + 1;
            torn := true
          end;
          t.total_bytes <- t.total_bytes + good;
          Some (seq, path, good)
        end)
      segs
  in
  if !torn then Durable.fsync_dir dir;
  (match List.rev surviving with
  | [] ->
    open_segment t 1;
    t.seg_size <- 0
  | (seq, _, size) :: older ->
    open_segment t seq;
    t.seg_size <- size;
    t.sealed <- List.rev_map (fun (s, p, _) -> (s, p)) older);
  (match on_io with
  | None -> ()
  | Some f -> f `Recover ((Unix.gettimeofday () -. t_recover0) *. 1e6));
  t

let wipe t =
  check_open t "wipe";
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  Array.iter
    (fun name ->
      try Sys.remove (Filename.concat t.dir name) with Sys_error _ -> ())
    (Sys.readdir t.dir);
  Durable.fsync_dir t.dir;
  Hashtbl.reset t.live;
  t.sealed <- [];
  t.total_bytes <- 0;
  t.live_bytes <- 0;
  t.seg_size <- 0;
  open_segment t 1
