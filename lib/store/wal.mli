(** Durable, segmented, append-only write-ahead log.

    The paper's crash-recovery model (§2.1) makes stable storage the
    only state a process can trust after a crash. This module is the
    real implementation of that promise: every [put]/[delete] is
    appended as one CRC-guarded record to the current segment file, and
    {!open_} rebuilds the live key→value map by replaying all segments
    in order.

    {2 On-disk format}

    A directory holds segment files [wal-<seq>.log] (ten-digit,
    zero-padded, strictly increasing). A segment is a plain
    concatenation of records, each framed with the
    {!Abcast_util.Wire} codec:

    {v uvarint(len body) | body | crc32(body) as 4 bytes LE v}

    where [body] is one tag byte — [0] Put, [1] Delete, [2] Reset —
    followed by the length-prefixed key (and value, for Put). [Reset]
    marks the start of a compaction snapshot: on replay it clears all
    state accumulated from earlier records, which is what makes
    crash-interrupted compaction safe (see below). Files ending in
    [.tmp] are in-flight compaction output; they are ignored and
    removed on open.

    {2 Torn-tail recovery}

    Replay is total: a record whose length field is truncated, whose
    body is short, whose checksum mismatches, or whose body fails to
    decode marks the {e end of the log}. The damaged segment is
    truncated back to the last whole record and every later segment is
    deleted, so the recovered state is always the effect of a {e prefix}
    of the appended operations — never a mangled record, never a gap.
    (A tail of operations may be lost, bounded by the {!Durable.policy};
    that is the crash-recovery contract, not a failure.)

    {2 Compaction}

    Deleting keys (the paper's §5 checkpoint/trim rule) leaves dead
    records behind. When the dead fraction crosses a threshold (or on
    an explicit {!compact}), the live bindings are rewritten into a
    fresh segment: [Reset] + one [Put] per live key, written to a
    [.tmp] file, fsynced, renamed into place as the next segment, and
    only then are the old segments unlinked. A crash at any point
    leaves a replayable log: before the rename the snapshot is
    invisible; after it, the [Reset] record makes surviving stale
    segments irrelevant regardless of how many of them the unlink loop
    reached. *)

type t

(** Monotonic counters, kept by every instance since {!open_} (mirrored
    into [Metrics] as [wal_*] by [Abcast_sim.Storage]). *)
type stats = {
  appends : int;  (** records appended (puts + deletes + snapshot writes) *)
  fsyncs : int;  (** fsync system calls issued *)
  segments : int;  (** segment files currently on disk *)
  compactions : int;  (** completed compactions *)
  recovered_records : int;  (** records replayed by {!open_} *)
  torn_records : int;
      (** torn/corrupt tails hit by {!open_} (each truncated the log) *)
}

type io_op = [ `Append | `Fsync | `Recover ]
(** Operations reported through the [on_io] timing tap of {!open_}. *)

val open_ :
  ?segment_bytes:int ->
  ?fsync:Durable.policy ->
  ?compact_min_bytes:int ->
  ?compact_ratio:float ->
  ?auto_compact:bool ->
  ?on_io:(io_op -> float -> unit) ->
  dir:string ->
  unit ->
  t
(** Open (creating if needed) the log in [dir] and replay it.

    [segment_bytes] (default 1 MiB) is the roll threshold: a segment
    that reaches it is sealed and a new one started. [fsync] (default
    [Every {ops = 64; ms = 20}]) is the durability policy. Compaction
    triggers automatically (unless [auto_compact] is [false]) when dead
    bytes exceed [compact_min_bytes] (default 64 KiB) {e and} the dead
    fraction of the on-disk log exceeds [compact_ratio] (default 0.5).

    [on_io], when given, is called with each operation's wall-clock
    duration in µs: once per record append ([`Append], covering any
    fsync or segment roll the append triggers), once per fsync
    ([`Fsync]), and once at the end of [open_] itself ([`Recover], the
    full replay cost). Omitted (the default), no clock is read —
    instrumentation costs nothing. [Abcast_sim.Storage] uses it to feed
    the [wal_append_us]/[wal_fsync_us]/[wal_recover_us] histograms. *)

val put : t -> string -> string -> unit
(** Append a Put record and update the live map. *)

val delete : t -> string -> unit
(** Append a Delete record (no-op if the key is absent). *)

val find : t -> string -> string option

val mem : t -> string -> bool

val length : t -> int
(** Number of live keys. *)

val iter : t -> (string -> string -> unit) -> unit
(** Visit every live binding (undefined order). *)

val sync : t -> unit
(** Force an fsync of the current segment now, whatever the policy. *)

val compact : t -> unit
(** Rewrite live bindings into a fresh segment and unlink the old
    ones, unconditionally (automatic compaction applies the dead-bytes
    thresholds; an explicit call does not). *)

val disk_bytes : t -> int
(** Total bytes across all segment files — the footprint a recovering
    process must replay. Falls back towards the live-record size after
    compaction. *)

val close : t -> unit
(** fsync and close the segment fd. Idempotent; the instance is
    unusable for writes afterwards. *)

val wipe : t -> unit
(** Delete every segment and restart empty (test helper). *)

val stats : t -> stats

val dir : t -> string

val current_segment : t -> string
(** Path of the segment currently being appended to (tests use it to
    truncate/corrupt precise byte ranges). *)

(** {2 Test-only crash injection} *)

exception Injected_crash of string

val failpoint : string option ref
(** When set to [Some "compact-before-rename"] or
    [Some "compact-after-rename"], {!compact} raises {!Injected_crash}
    at that point, simulating a process killed mid-compaction. The
    instance must then be discarded and the directory re-opened — which
    is exactly what the crash-fidelity tests assert recovers cleanly.
    Never set outside tests. *)
