(** Heartbeat failure detector for the crash-recovery model.

    The paper's transformation is failure-detector-agnostic, but the
    consensus building block needs one (§3.5). This module provides the
    unbounded-output style of Aguilera–Chen–Toueg: alongside a trust list
    it exports an {e epoch} per process (its incarnation count, carried in
    every heartbeat), so observers can distinguish a stable process from
    one that oscillates — without predicting the future behaviour of bad
    processes.

    Each process multicasts [Beat { epoch }] every [period]; a process is
    {e trusted} if a beat from it arrived within [timeout]. The {!leader}
    oracle (Ω) returns the trusted process with the lexicographically
    smallest [(epoch, id)]: once the system stabilizes, every good process
    converges to the same good leader, because good processes' epochs stop
    growing while oscillating bad processes' epochs grow without bound. *)

type msg = Beat of { epoch : int }
(** Wire messages (heartbeats) — exposed for white-box tests (codec
    round-trips) and tracing. *)

val pp_msg : Format.formatter -> msg -> unit

val write_msg : Abcast_util.Wire.writer -> msg -> unit
(** Wire encoding (one varint: the sender's epoch). *)

val read_msg : Abcast_util.Wire.reader -> msg
(** @raise Abcast_util.Wire.Error on malformed input. *)

type t
(** Volatile detector state of one incarnation. *)

val create : ?period:int -> ?timeout:int -> msg Abcast_sim.Engine.io -> t
(** Start the detector: begins beating immediately. [period] defaults to
    2_000 simulated µs, [timeout] to 5 × [period]. A fresh incarnation
    initially trusts everyone (it has no evidence of failure yet). *)

val handle : t -> src:int -> msg -> unit
(** Feed an incoming heartbeat. *)

val trusted : t -> int -> bool
(** Whether a process is currently trusted. *)

val suspects : t -> int list
(** Currently suspected process ids, ascending. *)

val epoch : t -> int -> int
(** Highest epoch observed from a process (own incarnation for self,
    -1 if never heard). *)

val leader : t -> int
(** The Ω oracle output: trusted process minimizing [(epoch, id)]. *)
