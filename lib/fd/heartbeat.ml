module Engine = Abcast_sim.Engine

type msg = Beat of { epoch : int }

let pp_msg ppf (Beat { epoch }) = Format.fprintf ppf "beat(e%d)" epoch

module Wire = Abcast_util.Wire

let write_msg w (Beat { epoch }) = Wire.write_varint w epoch

let read_msg r = Beat { epoch = Wire.read_varint r }

type t = {
  io : msg Engine.io;
  period : int;
  timeout : int;
  last_heard : int array; (* -1 = never *)
  epochs : int array; (* -1 = never *)
}

let rec beat_loop t =
  t.io.multisend (Beat { epoch = t.io.incarnation });
  t.io.after t.period (fun () -> beat_loop t)

let create ?(period = 2_000) ?timeout io =
  let timeout = match timeout with Some x -> x | None -> 5 * period in
  let t =
    {
      io;
      period;
      timeout;
      (* A fresh incarnation trusts everyone: last_heard = now. *)
      last_heard = Array.make io.n (io.now ());
      epochs = Array.make io.n (-1);
    }
  in
  t.epochs.(io.self) <- io.incarnation;
  beat_loop t;
  t

let handle t ~src (Beat { epoch }) =
  t.last_heard.(src) <- t.io.now ();
  if epoch > t.epochs.(src) then t.epochs.(src) <- epoch

let trusted t i =
  i = t.io.self
  || (t.last_heard.(i) >= 0 && t.io.now () - t.last_heard.(i) <= t.timeout)

let suspects t =
  let out = ref [] in
  for i = t.io.n - 1 downto 0 do
    if not (trusted t i) then out := i :: !out
  done;
  !out

let epoch t i = if i = t.io.self then t.io.incarnation else t.epochs.(i)

let leader t =
  let best = ref t.io.self in
  let key i = (epoch t i, i) in
  for i = 0 to t.io.n - 1 do
    if trusted t i && compare (key i) (key !best) < 0 then best := i
  done;
  !best
