module Engine = Abcast_sim.Engine
module Storage = Abcast_sim.Storage
module Metrics = Abcast_sim.Metrics
module Histogram = Abcast_util.Histogram
module Rng = Abcast_util.Rng
module Heap = Abcast_util.Heap
module Wire = Abcast_util.Wire
module Payload = Abcast_core.Payload
module Flight = Abcast_sim.Flight

type net_stats = { tx_oversize : int; rx_undecodable : int }

(* Monomorphic operations on one process, only ever executed inside that
   process's thread (reached via the mailbox). *)
type node_ops = {
  op_broadcast : string -> unit;
  op_broadcast_to : int -> string -> unit;
  op_delivered_count : unit -> int;
  op_delivered_data : unit -> string list;
  op_group_delivered_count : int -> int;
  op_group_delivered_data : int -> string list;
  op_round : unit -> int;
  op_net_stats : unit -> net_stats;
  op_metrics :
    unit -> ((int * string) * int) list * ((int * string) * Histogram.t) list;
      (* counter and histogram snapshots. Runs inside the node thread
         like everything else — each node has a private Metrics table
         and Hashtbl is not safe to read concurrently with writes, so
         exporters pay one mailbox round-trip per node per scrape
         instead of racing. The histograms are copies. *)
}

type node = {
  id : int;
  sock : Unix.file_descr;
  port : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mailbox : (unit -> unit) Queue.t;
  mutable running : bool; (* guarded by mutex *)
  mutable thread : Thread.t option;
  mutable ops : node_ops option; (* written by the node thread at boot *)
  mutable boots : int;
  flight : Flight.t;
      (* the node's crash flight recorder. Created once per node (not per
         incarnation) so a recovery appends after the crash's last events
         instead of erasing them; persisted to [dir/node<i>/flight.bin]
         periodically, at loop exit and on {!request_dump}. *)
}

type t = {
  n : int;
  shards : int;
  base_port : int;
  dir : string option;
  backend : [ `Files | `Wal ];
  fsync : Abcast_store.Durable.policy;
  nodes : node array;
  wake_sock : Unix.file_descr; (* unbound socket used to poke loops *)
  start_node : int -> unit; (* closes over the protocol's message type *)
  epoch : float;
  mutable dump_epoch : int;
      (* bumped by [request_dump] (e.g. from a SIGUSR1 handler); each
         node loop compares it against its last-seen value and dumps its
         flight recorder when behind *)
  mutable prom_extra : (Buffer.t -> unit) list;
      (* extra render hooks appended to the Prometheus dump — the
         service layer exports its per-class latency histograms here *)
  (* metrics exporter machinery (threads started by [create] on demand,
     torn down by [shutdown]) *)
  mutable metrics_stop : bool;
  mutable metrics_listen : Unix.file_descr option;
  mutable metrics_threads : Thread.t list;
}

let localhost = Unix.inet_addr_loopback

let addr_of t i = Unix.ADDR_INET (localhost, t.base_port + i)

(* Datagram formats: 'W' = wake (mailbox poke),
   'M' ^ uvarint(src) ^ wire(msg) — one message per datagram (legacy,
   still decoded), and
   'B' ^ uvarint(src) ^ (uvarint(len) ^ wire(msg))* — a batch of frames
   coalesced into one datagram (what the send path emits) — see
   DESIGN.md "Wire format". The receive path treats the bytes as
   untrusted: anything that fails the bounds-checked decode is counted
   and dropped, never raised into the event loop. *)

(* Stay under the conventional safe UDP payload ceiling; the receive
   buffer is sized to match, so an accepted send is never truncated. *)
let max_datagram = 65_000

(* Batched-datagram framing over pooled writers. Exposed (see the mli)
   so the allocation-regression test and benches can drive the exact
   send-path encoding without sockets. *)
module Frame = struct
  let start w ~src =
    Wire.clear w;
    Wire.write_u8 w (Char.code 'B');
    Wire.write_uvarint w src

  let add w ~msg =
    Wire.write_uvarint w (Wire.length msg);
    Wire.append_writer w ~src:msg
end

(* The wake byte is a shared constant: [Unix.sendto] only reads it, and
   every waker sends the same single 'W'. *)
let wake_byte = Bytes.make 1 'W'

let wake t i =
  try ignore (Unix.sendto t.wake_sock wake_byte 0 1 [] (addr_of t i))
  with Unix.Unix_error _ -> ()

let enqueue t i fn =
  let nd = t.nodes.(i) in
  Mutex.lock nd.mutex;
  Queue.push fn nd.mailbox;
  Mutex.unlock nd.mutex;
  wake t i

(* Synchronous query into the node thread. Returns None if the node is
   down (or dies before answering). *)
let call t i (fn : node_ops -> 'a) : 'a option =
  let nd = t.nodes.(i) in
  Mutex.lock nd.mutex;
  if not nd.running then begin
    Mutex.unlock nd.mutex;
    None
  end
  else begin
    let result = ref None in
    let done_ = ref false in
    Queue.push
      (fun () ->
        (match nd.ops with
        | Some ops -> result := Some (fn ops)
        | None -> ());
        Mutex.lock nd.mutex;
        done_ := true;
        Condition.broadcast nd.cond;
        Mutex.unlock nd.mutex)
      nd.mailbox;
    Mutex.unlock nd.mutex;
    wake t i;
    Mutex.lock nd.mutex;
    let deadline = Unix.gettimeofday () +. 5.0 in
    while (not !done_) && nd.running && Unix.gettimeofday () < deadline do
      Mutex.unlock nd.mutex;
      Thread.yield ();
      Mutex.lock nd.mutex
    done;
    Mutex.unlock nd.mutex;
    !result
  end

let drain_socket sock =
  let buf = Bytes.create 65536 in
  let rec go () =
    match Unix.select [ sock ] [] [] 0.0 with
    | [ _ ], _, _ ->
      ignore (Unix.recvfrom sock buf 0 (Bytes.length buf) []);
      go ()
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let make (module P : Abcast_core.Proto.S) ~n ~base_port ~dir ~backend ~fsync
    ~flight_cap ~on_deliver () =
  let nodes =
    Array.init n (fun id ->
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
        Unix.setsockopt sock Unix.SO_REUSEADDR true;
        Unix.bind sock (Unix.ADDR_INET (localhost, base_port + id));
        {
          id;
          sock;
          port = base_port + id;
          mutex = Mutex.create ();
          cond = Condition.create ();
          mailbox = Queue.create ();
          running = false;
          thread = None;
          ops = None;
          boots = 0;
          flight =
            (if flight_cap > 0 then Flight.create ~cap:flight_cap ()
             else Flight.disabled);
        })
  in
  let wake_sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  let epoch = Unix.gettimeofday () in
  let rec t =
    {
      n;
      shards = P.shards;
      base_port;
      dir;
      backend;
      fsync;
      nodes;
      wake_sock;
      start_node;
      epoch;
      metrics_stop = false;
      metrics_listen = None;
      metrics_threads = [];
      dump_epoch = 0;
      prom_extra = [];
    }
  (* The node event loop. Everything protocol-related happens here. *)
  and node_loop nd () =
    let metrics = Metrics.create () in
    let now_us () = int_of_float ((Unix.gettimeofday () -. epoch) *. 1e6) in
    let node_dir =
      Option.map (fun d -> Filename.concat d (Printf.sprintf "node%d" nd.id)) dir
    in
    let store =
      match node_dir with
      | Some d ->
        Storage.create ~dir:d
          ~backend:(backend :> [ `Memory | `Files | `Wal ])
          ~fsync ~flight:nd.flight ~flight_now:now_us ~metrics ~node:nd.id ()
      | None -> Storage.create ~metrics ~node:nd.id ()
    in
    (* Real boot counter: persisted, so identities survive restarts. *)
    let incarnation =
      match Storage.read store "sys/boot" with
      | Some s -> int_of_string s
      | None -> 0
    in
    Storage.write store ~layer:"sys" ~key:"sys/boot"
      (string_of_int (incarnation + 1));
    Flight.record nd.flight ~time:(now_us ()) ~node:nd.id ~group:0
      ~boot:incarnation ~stage:Flight.boot ~trace:0 ~a:incarnation ~b:0;
    (* Persist the black box next to the WAL: periodically (so a SIGKILL
       loses at most the last second of events), on demand via
       [request_dump], and at loop exit. *)
    let flight_file = Option.map (fun d -> Filename.concat d "flight.bin") node_dir in
    let dump_flight () =
      match flight_file with
      | Some path when Flight.enabled nd.flight ->
        (try Flight.dump_to_file nd.flight path
         with Sys_error _ | Unix.Unix_error _ -> ())
      | _ -> ()
    in
    let last_flight_dump = ref (now_us ()) in
    let seen_dump_epoch = ref t.dump_epoch in
    let timers : (int * int * (unit -> unit)) Heap.t =
      Heap.create ~cmp:(fun (a, sa, _) (b, sb, _) -> compare (a, sa) (b, sb)) ()
    in
    let timer_seq = ref 0 in
    let h_tx_oversize = Metrics.handle metrics ~node:nd.id "udp_tx_oversize" in
    let h_rx_undecodable =
      Metrics.handle metrics ~node:nd.id "udp_rx_undecodable"
    in
    let h_tx_datagrams = Metrics.handle metrics ~node:nd.id "udp_tx_datagrams" in
    let h_tx_frames = Metrics.handle metrics ~node:nd.id "udp_tx_frames" in
    (* The allocation-free send path: one scratch writer holds the
       current message's encoding (produced exactly once, even for a
       multisend), per-destination pooled writers accumulate frames, and
       the sockaddrs are precomputed. A steady-state send touches the
       minor heap not at all: every buffer is reused at its
       high-water-mark capacity and [sendto] reads the writer's bytes in
       place. Buffers are flushed once per event-loop pass (or earlier
       when the next frame would overflow the datagram), which also
       coalesces several protocol messages into a single syscall. *)
    let addrs = Array.init n (fun i -> Unix.ADDR_INET (localhost, base_port + i)) in
    let msg_buf = Wire.writer ~cap:512 () in
    let dest_bufs = Array.init n (fun _ -> Wire.writer ~cap:4096 ()) in
    let hdr_len =
      Frame.start dest_bufs.(0) ~src:nd.id;
      Wire.length dest_bufs.(0)
    in
    Array.iter (fun w -> Frame.start w ~src:nd.id) dest_bufs;
    let flush_dst dst =
      let w = dest_bufs.(dst) in
      let len = Wire.length w in
      if len > hdr_len then begin
        (try ignore (Unix.sendto nd.sock (Wire.unsafe_bytes w) 0 len [] addrs.(dst))
         with Unix.Unix_error _ -> () (* lossy channel *));
        Metrics.hincr h_tx_datagrams;
        Frame.start w ~src:nd.id
      end
    in
    let flush_all () =
      for dst = 0 to n - 1 do
        flush_dst dst
      done
    in
    (* Worst-case frame overhead: the length prefix (uvarint of a value
       <= 65_000 takes at most 3 bytes). *)
    let frame_overhead = 3 in
    let push dst =
      let w = dest_bufs.(dst) in
      if Wire.length w + Wire.length msg_buf + frame_overhead > max_datagram
      then flush_dst dst;
      Frame.add dest_bufs.(dst) ~msg:msg_buf;
      Metrics.hincr h_tx_frames
    in
    (* Encode once into [msg_buf]; false (and a loud drop) if the message
       can never fit a datagram even alone. The protocol treats the drop
       as loss; the counter and stderr line make the cause diagnosable. *)
    let encode_current (msg : P.msg) =
      Wire.clear msg_buf;
      P.write_msg msg_buf msg;
      if Wire.length msg_buf + hdr_len + frame_overhead > max_datagram then begin
        Metrics.hincr h_tx_oversize;
        Printf.eprintf
          "abcast-live node %d: dropping oversize message (%d bytes > %d \
           limit)\n\
           %!"
          nd.id (Wire.length msg_buf) max_datagram;
        false
      end
      else true
    in
    let send dst (msg : P.msg) = if encode_current msg then push dst in
    let io : P.msg Engine.io =
      {
        self = nd.id;
        n;
        group = 0;
        incarnation;
        now = now_us;
        send;
        multisend =
          (fun m ->
            if encode_current m then
              for dst = 0 to n - 1 do
                push dst
              done);
        after =
          (fun delay fn ->
            incr timer_seq;
            Heap.push timers (now_us () + delay, !timer_seq, fn));
        store;
        rng = Rng.create ((nd.id * 7919) + incarnation);
        metrics;
        emit = (fun _ -> ());
        trace_on = (fun () -> false);
        span_begin = (fun ~stage:_ _ -> ());
        span_end = (fun ~stage:_ _ -> ());
        flight = nd.flight;
        alarm =
          (* Safety sentinel: scream on stderr, bump the counter and dump
             the flight ring immediately — the evidence must hit disk
             before any operator reaction (or a panicked SIGKILL). *)
          (fun reason ->
            Metrics.incr metrics ~node:nd.id "alarms";
            Printf.eprintf "abcast-live node %d: ALARM: %s\n%!" nd.id reason;
            dump_flight ());
      }
    in
    let p =
      P.create io ~deliver:(fun ~group pl -> on_deliver ~node:nd.id ~group pl)
    in
    let handler = P.handler p in
    Mutex.lock nd.mutex;
    nd.ops <-
      Some
        {
          op_broadcast = (fun data -> ignore (P.broadcast p data));
          op_broadcast_to =
            (fun group data -> ignore (P.broadcast_to p ~group data));
          op_delivered_count = (fun () -> P.delivered_count p);
          op_delivered_data =
            (fun () ->
              List.map (fun (x : Payload.t) -> x.data) (P.delivered_tail p));
          op_group_delivered_count = (fun g -> P.group_delivered_count p g);
          op_group_delivered_data =
            (fun g ->
              List.map
                (fun (x : Payload.t) -> x.data)
                (P.group_delivered_tail p g));
          op_round = (fun () -> P.round p);
          op_net_stats =
            (fun () ->
              {
                tx_oversize = Metrics.hget h_tx_oversize;
                rx_undecodable = Metrics.hget h_rx_undecodable;
              });
          op_metrics =
            (fun () -> (Metrics.counters metrics, Metrics.histograms metrics));
        };
    Mutex.unlock nd.mutex;
    (* The allocation-free receive path: the socket is non-blocking so a
       single wakeup drains a bounded burst of datagrams; each datagram
       is decoded in place through a pooled reader over the (unsafely
       string-viewed) receive buffer. The view is sound because the
       buffer is only mutated by the next [recvfrom], after decoding is
       done. *)
    let buf = Bytes.create (max_datagram + 1) in
    let buf_view = Bytes.unsafe_to_string buf in
    Unix.set_nonblock nd.sock;
    let rd = Wire.reader "" in
    let frame_rd = Wire.reader "" in
    let decode_single len =
      (* legacy 'M' framing: one message per datagram *)
      Wire.reader_reset rd ~pos:1 ~len:(len - 1) buf_view;
      match
        let src = Wire.read_uvarint rd in
        if src >= n then Wire.error "datagram: bad source %d" src;
        let msg = P.read_msg rd in
        Wire.expect_end rd;
        (src, msg)
      with
      | src, msg -> handler ~src msg
      | exception Wire.Error _ -> Metrics.hincr h_rx_undecodable
    in
    let decode_batch len =
      (* 'B' framing: uvarint source, then length-prefixed frames *)
      Wire.reader_reset rd ~pos:1 ~len:(len - 1) buf_view;
      (* Decoded messages copy their strings out of the buffer, so each
         frame's handler can run before the next frame is parsed — no
         per-datagram message list. A malformed tail loses only the
         remaining frames (counted once), exactly like datagram loss. *)
      match
        let src = Wire.read_uvarint rd in
        if src >= n then Wire.error "datagram: bad source %d" src;
        while not (Wire.at_end rd) do
          let flen = Wire.read_uvarint rd in
          let pos = Wire.unsafe_pos rd in
          if flen > Wire.remaining rd then
            Wire.error "datagram: frame overruns (%d bytes)" flen;
          Wire.reader_reset frame_rd ~pos ~len:flen buf_view;
          let msg = P.read_msg frame_rd in
          Wire.expect_end frame_rd;
          Wire.unsafe_seek rd (pos + flen);
          handler ~src msg
        done
      with
      | () -> ()
      | exception Wire.Error _ -> Metrics.hincr h_rx_undecodable
    in
    let recv_budget = 128 in
    let rec drain_ready budget =
      if budget > 0 then
        match Unix.recvfrom nd.sock buf 0 (Bytes.length buf) [] with
        | len, _ when len > 1 && Bytes.get buf 0 = 'B' ->
          decode_batch len;
          drain_ready (budget - 1)
        | len, _ when len > 1 && Bytes.get buf 0 = 'M' ->
          decode_single len;
          drain_ready (budget - 1)
        | len, _ when len > 0 && Bytes.get buf 0 = 'W' ->
          drain_ready (budget - 1) (* wake byte *)
        | len, _ when len > 0 ->
          Metrics.hincr h_rx_undecodable;
          drain_ready (budget - 1)
        | _ -> drain_ready (budget - 1)
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
        | exception Unix.Unix_error _ -> ()
    in
    let keep_going () =
      Mutex.lock nd.mutex;
      let r = nd.running in
      Mutex.unlock nd.mutex;
      r
    in
    while keep_going () do
      (* fire due timers *)
      let rec fire () =
        match Heap.peek timers with
        | Some (at, _, fn) when at <= now_us () ->
          ignore (Heap.pop timers);
          fn ();
          fire ()
        | _ -> ()
      in
      fire ();
      (* drain the mailbox *)
      let jobs = ref [] in
      Mutex.lock nd.mutex;
      while not (Queue.is_empty nd.mailbox) do
        jobs := Queue.pop nd.mailbox :: !jobs
      done;
      Mutex.unlock nd.mutex;
      List.iter (fun job -> job ()) (List.rev !jobs);
      (* Ship everything the timers/mailbox/handlers produced this pass:
         one coalesced datagram per destination with pending frames. *)
      flush_all ();
      (* wait for traffic or the next timer *)
      let timeout =
        match Heap.peek timers with
        | Some (at, _, _) ->
          Float.max 0.0 (Float.min 0.05 (float_of_int (at - now_us ()) /. 1e6))
        | None -> 0.05
      in
      (* flight persistence: on demand (request_dump) or once a second *)
      if
        t.dump_epoch <> !seen_dump_epoch
        || now_us () - !last_flight_dump >= 1_000_000
      then begin
        seen_dump_epoch := t.dump_epoch;
        last_flight_dump := now_us ();
        dump_flight ()
      end;
      (match Unix.select [ nd.sock ] [] [] timeout with
      | [ _ ], _, _ ->
        drain_ready recv_budget;
        (* replies produced by the handlers must not wait out the next
           select timeout *)
        flush_all ()
      | _ -> ()
      | exception Unix.Unix_error _ -> ())
    done;
    flush_all ();
    dump_flight ();
    Mutex.lock nd.mutex;
    nd.ops <- None;
    Mutex.unlock nd.mutex;
    (* Flush and release the durable backend: a clean shutdown must not
       lose the tail the fsync policy was still holding back. *)
    Storage.close store
  and start_node i =
    let nd = nodes.(i) in
    Mutex.lock nd.mutex;
    if not nd.running then begin
      nd.running <- true;
      nd.boots <- nd.boots + 1;
      Mutex.unlock nd.mutex;
      (* A recovering process has lost its input buffer: discard whatever
         piled up in the socket while it was down. *)
      drain_socket nd.sock;
      nd.thread <- Some (Thread.create (node_loop nd) ())
    end
    else Mutex.unlock nd.mutex
  in
  t

(* ---- metrics export ---- *)

let node_counters t i =
  match call t i (fun ops -> ops.op_metrics ()) with
  | Some (ctrs, _) -> List.map (fun ((_, name), v) -> (name, v)) ctrs
  | None -> []

let hist_summaries t i =
  match call t i (fun ops -> ops.op_metrics ()) with
  | Some (_, hists) ->
    List.filter_map
      (fun ((_, name), h) ->
        if Histogram.count h > 0 then Some (name, Histogram.summary h)
        else None)
      hists
  | None -> []

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; the dotted series
   names map dots (and anything else exotic) to underscores under an
   [abcast_] prefix. *)
let prom_name name =
  "abcast_"
  ^ String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name

(* Snapshot every up node once and render the Prometheus text format:
   counters as gauges (recovery can rewind e.g. wal_segments), observed
   series as cumulative histograms. *)
let prometheus t =
  let snaps =
    List.filter_map
      (fun i ->
        Option.map (fun s -> (i, s)) (call t i (fun ops -> ops.op_metrics ())))
      (List.init t.n Fun.id)
  in
  let buf = Buffer.create 8192 in
  (* Sharded stacks intern their series under a "g<g>/" name prefix; the
     export strips the prefix back out of the metric name and carries the
     group as a label instead, so one # HELP/# TYPE covers all groups.
     Single-group stacks have bare names — no group label, byte-identical
     output to the unsharded exporter. *)
  let labels node g =
    if t.shards > 1 then Printf.sprintf "node=\"%d\",group=\"%d\"" node g
    else Printf.sprintf "node=\"%d\"" node
  in
  (* group by base metric name so # HELP/# TYPE appear once each; cells
     are (group, node, value) *)
  let group extract =
    let by_name = Hashtbl.create 64 in
    let names = ref [] in
    List.iter
      (fun (i, snap) ->
        List.iter
          (fun ((_, name), v) ->
            let g, base = Metrics.split_group name in
            if not (Hashtbl.mem by_name base) then names := base :: !names;
            Hashtbl.replace by_name base
              ((g, i, v)
              :: (try Hashtbl.find by_name base with Not_found -> [])))
          (extract snap))
      snaps;
    List.rev_map (fun n -> (n, List.rev (Hashtbl.find by_name n))) !names
    |> List.sort compare
  in
  List.iter
    (fun (name, cells) ->
      let pn = prom_name name in
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s counter %s\n# TYPE %s gauge\n" pn name pn);
      List.iter
        (fun (g, node, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s{%s} %d\n" pn (labels node g) v))
        cells)
    (group fst);
  List.iter
    (fun (name, cells) ->
      let pn = prom_name name in
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s histogram of series %s\n# TYPE %s histogram\n"
           pn name pn);
      List.iter
        (fun (g, node, h) ->
          let lbl = labels node g in
          let cum = ref 0 in
          List.iter
            (fun (bound, count) ->
              if Float.is_finite bound then begin
                cum := !cum + count;
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket{%s,le=\"%.6g\"} %d\n" pn lbl bound
                     !cum)
              end)
            (Histogram.buckets h);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{%s,le=\"+Inf\"} %d\n" pn lbl
               (Histogram.count h));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum{%s} %.6f\n" pn lbl (Histogram.sum h));
          Buffer.add_string buf
            (Printf.sprintf "%s_count{%s} %d\n" pn lbl (Histogram.count h)))
        cells)
    (group snd);
  List.iter (fun f -> f buf) (List.rev t.prom_extra);
  Buffer.contents buf

(* One JSONL snapshot line: counters and histogram summaries per node. *)
let json_snapshot t =
  let node_json i =
    match call t i (fun ops -> ops.op_metrics ()) with
    | None -> Printf.sprintf {|{"node":%d,"up":false}|} i
    | Some (ctrs, hists) ->
      let cjson =
        ctrs
        |> List.sort compare
        |> List.map (fun ((_, name), v) -> Printf.sprintf {|"%s":%d|} name v)
        |> String.concat ","
      in
      let hjson =
        hists
        |> List.filter (fun (_, h) -> Histogram.count h > 0)
        |> List.sort compare
        |> List.map (fun ((_, name), h) ->
               let s = Histogram.summary h in
               Printf.sprintf
                 {|"%s":{"count":%d,"mean":%.3f,"min":%.3f,"p50":%.3f,"p95":%.3f,"p99":%.3f,"max":%.3f}|}
                 name s.Histogram.count s.mean s.min s.p50 s.p95 s.p99 s.max)
        |> String.concat ","
      in
      Printf.sprintf
        {|{"node":%d,"up":true,"counters":{%s},"histograms":{%s}}|} i cjson
        hjson
  in
  Printf.sprintf {|{"ts":%.3f,"nodes":[%s]}|}
    (Unix.gettimeofday () -. t.epoch)
    (String.concat "," (List.map node_json (List.init t.n Fun.id)))

(* Blocking single-threaded HTTP/1.0 responder: accept, best-effort read
   of the request, answer with the full dump, close. Plenty for a
   scraper on localhost. The loop never parks in accept(2) — closing an
   fd does not wake a thread already blocked in it on Linux — but in a
   short select, so it notices [metrics_stop] within a poll period and
   [shutdown]'s join cannot hang. *)
let serve_metrics t port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (localhost, port));
  Unix.listen sock 8;
  t.metrics_listen <- Some sock;
  let th =
    Thread.create
      (fun () ->
        let rec loop () =
          if t.metrics_stop then ()
          else
            match Unix.select [ sock ] [] [] 0.1 with
            | exception Unix.Unix_error _ -> () (* listener closed *)
            | [], _, _ -> loop ()
            | _ -> (
              match Unix.accept sock with
              | exception Unix.Unix_error _ -> () (* listener closed *)
              | conn, _ -> serve conn)
        and serve conn =
            (try
               let buf = Bytes.create 1024 in
               (match Unix.select [ conn ] [] [] 1.0 with
               | [ _ ], _, _ -> (
                 try ignore (Unix.recv conn buf 0 1024 [])
                 with Unix.Unix_error _ -> ())
               | _ -> ());
               let body = prometheus t in
               let resp =
                 Printf.sprintf
                   "HTTP/1.0 200 OK\r\n\
                    Content-Type: text/plain; version=0.0.4\r\n\
                    Content-Length: %d\r\n\
                    Connection: close\r\n\
                    \r\n\
                    %s"
                   (String.length body) body
               in
               let b = Bytes.of_string resp in
               let rec wr off =
                 if off < Bytes.length b then
                   match Unix.write conn b off (Bytes.length b - off) with
                   | w when w > 0 -> wr (off + w)
                   | _ -> ()
               in
               (try wr 0 with Unix.Unix_error _ -> ())
             with _ -> ());
            (try Unix.close conn with Unix.Unix_error _ -> ());
            if not t.metrics_stop then loop ()
        in
        loop ())
      ()
  in
  t.metrics_threads <- th :: t.metrics_threads

(* Size-based rotation for the JSONL snapshot stream: when the live file
   crosses [rotate_bytes], it becomes [path.1] (shifting path.k to
   path.k+1 and dropping path.keep), so a long-lived service bounds its
   snapshot footprint at ~(keep+1) x rotate_bytes. The doctor reads the
   rotated files oldest-first. *)
let rotate_snapshots path ~keep =
  let numbered k = path ^ "." ^ string_of_int k in
  (try Sys.remove (numbered keep) with Sys_error _ -> ());
  for k = keep - 1 downto 1 do
    if Sys.file_exists (numbered k) then (
      try Sys.rename (numbered k) (numbered (k + 1)) with Sys_error _ -> ())
  done;
  try Sys.rename path (numbered 1) with Sys_error _ -> ()

let snapshot_loop t interval path ~rotate_bytes ~keep =
  let th =
    Thread.create
      (fun () ->
        let open_file () = open_out_gen [ Open_append; Open_creat ] 0o644 path in
        let oc = ref (open_file ()) in
        let emit () =
          try
            output_string !oc (json_snapshot t);
            output_char !oc '\n';
            flush !oc;
            if rotate_bytes > 0 && keep > 0 && pos_out !oc > rotate_bytes
            then begin
              close_out_noerr !oc;
              rotate_snapshots path ~keep;
              oc := open_file ()
            end
          with Sys_error _ -> ()
        in
        let rec loop () =
          if not t.metrics_stop then begin
            let target = Unix.gettimeofday () +. interval in
            while (not t.metrics_stop) && Unix.gettimeofday () < target do
              Thread.delay 0.02
            done;
            if not t.metrics_stop then begin
              emit ();
              loop ()
            end
          end
        in
        loop ();
        (* final snapshot at shutdown: [shutdown] joins this thread
           before crashing the nodes, so the tables are still live and
           even a run shorter than one interval leaves one line *)
        emit ();
        close_out_noerr !oc)
      ()
  in
  t.metrics_threads <- th :: t.metrics_threads

let create proto ~n ?(base_port = 7400) ?dir ?(backend = `Wal)
    ?(fsync = Abcast_store.Durable.Every { ops = 64; ms = 20 })
    ?(flight_cap = 8192) ?(on_deliver = fun ~node:_ ~group:_ _ -> ())
    ?metrics_port ?(metrics_interval = 1.0) ?metrics_out
    ?(metrics_rotate_bytes = 4 * 1024 * 1024) ?(metrics_keep = 4) () =
  let t =
    make proto ~n ~base_port ~dir ~backend ~fsync ~flight_cap ~on_deliver ()
  in
  for i = 0 to n - 1 do
    t.start_node i
  done;
  (* wait for every loop to publish its operations *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  Array.iter
    (fun nd ->
      while nd.ops = None && Unix.gettimeofday () < deadline do
        Thread.yield ()
      done)
    t.nodes;
  (match metrics_port with Some port -> serve_metrics t port | None -> ());
  (match metrics_out with
  | Some path ->
    snapshot_loop t metrics_interval path ~rotate_bytes:metrics_rotate_bytes
      ~keep:metrics_keep
  | None -> ());
  t

let n t = t.n
let shards t = t.shards
let now_us t = int_of_float ((Unix.gettimeofday () -. t.epoch) *. 1e6)
let flight t i = t.nodes.(i).flight

let request_dump t =
  t.dump_epoch <- t.dump_epoch + 1;
  for i = 0 to t.n - 1 do
    wake t i
  done

let set_prom_extra t f = t.prom_extra <- f :: t.prom_extra

let is_up t i =
  let nd = t.nodes.(i) in
  Mutex.lock nd.mutex;
  let r = nd.running in
  Mutex.unlock nd.mutex;
  r

let crash t i =
  let nd = t.nodes.(i) in
  Mutex.lock nd.mutex;
  let was_running = nd.running in
  nd.running <- false;
  Mutex.unlock nd.mutex;
  if was_running then begin
    wake t i;
    (match nd.thread with Some th -> Thread.join th | None -> ());
    nd.thread <- None
  end

let recover t i =
  if not (is_up t i) then begin
    t.start_node i;
    let nd = t.nodes.(i) in
    let deadline = Unix.gettimeofday () +. 5.0 in
    while nd.ops = None && Unix.gettimeofday () < deadline do
      Thread.yield ()
    done
  end

let broadcast ?group t ~node data =
  if is_up t node then
    enqueue t node (fun () ->
        match t.nodes.(node).ops with
        | Some ops -> (
          match group with
          | None -> ops.op_broadcast data
          | Some g -> ops.op_broadcast_to g data)
        | None -> ())

let delivered_count ?group t i =
  let get ops =
    match group with
    | None -> ops.op_delivered_count ()
    | Some g -> ops.op_group_delivered_count g
  in
  match call t i get with Some c -> c | None -> 0

let delivered_data ?group t i =
  let get ops =
    match group with
    | None -> ops.op_delivered_data ()
    | Some g -> ops.op_group_delivered_data g
  in
  match call t i get with Some l -> l | None -> []

let round t i =
  match call t i (fun ops -> ops.op_round ()) with Some r -> r | None -> 0

let net_stats t i =
  match call t i (fun ops -> ops.op_net_stats ()) with
  | Some s -> s
  | None -> { tx_oversize = 0; rx_undecodable = 0 }

let shutdown t =
  t.metrics_stop <- true;
  (match t.metrics_listen with
  | Some sock ->
    t.metrics_listen <- None;
    (try Unix.close sock with Unix.Unix_error _ -> ())
  | None -> ());
  List.iter Thread.join t.metrics_threads;
  t.metrics_threads <- [];
  for i = 0 to t.n - 1 do
    crash t i
  done;
  Array.iter (fun nd -> try Unix.close nd.sock with Unix.Unix_error _ -> ()) t.nodes;
  try Unix.close t.wake_sock with Unix.Unix_error _ -> ()
