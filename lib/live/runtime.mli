(** Live runtime: the same protocol stacks on real OS primitives.

    Where {!Abcast_sim.Engine} interprets a protocol against simulated
    time, this runtime interprets the {e same unmodified code} — anything
    packaged as a {!Abcast_core.Proto.t} — against the real world:

    - each process runs as one OS thread with a single-threaded event
      loop (the protocol code never sees concurrency);
    - channels are UDP datagrams on localhost — genuinely unreliable,
      unordered and size-limited, exactly the fair-lossy channel of §3.1.
      Messages are framed with the {!Abcast_util.Wire} binary codec, and
      both failure directions are counted per process ({!net_stats}):
      oversized encodings (e.g. huge state transfers) are refused at the
      send site rather than silently truncated in flight, and received
      bytes that fail the bounds-checked decode are dropped, never raised
      into the event loop;
    - stable storage is file-backed ({!Abcast_sim.Storage} with a
      directory): process state genuinely survives {!crash}/{!recover},
      including the boot counter that makes message identities unique
      across incarnations;
    - crashing a process kills its thread and discards its socket buffer
      (the input buffer of a down process is lost, §2.1).

    All interaction with a process's protocol state is marshalled into
    its event loop, so the single-threaded discipline the protocol
    assumes is preserved; the functions below are safe to call from the
    controlling thread. Runs are {e not} deterministic — that is the
    point; the simulator is the instrument for reproducibility, this
    runtime is the proof that nothing in the stack depends on it. *)

type t

val max_datagram : int
(** Largest datagram the runtime will send or accept (safe UDP payload
    bound on loopback). *)

(** The batched datagram format of the send path: one ['B'] datagram
    carries the source id followed by any number of length-prefixed
    protocol frames, so the event loop can coalesce several messages per
    [sendto]. Exposed for tests that exercise the encoder's pooled,
    allocation-free steady state. *)
module Frame : sig
  val start : Abcast_util.Wire.writer -> src:int -> unit
  (** Reset [w] and write the ['B'] header for source [src]. *)

  val add : Abcast_util.Wire.writer -> msg:Abcast_util.Wire.writer -> unit
  (** Append one already-encoded frame (length prefix + bytes of
      [msg]). *)
end

val create :
  Abcast_core.Proto.t ->
  n:int ->
  ?base_port:int ->
  ?dir:string ->
  ?backend:[ `Files | `Wal ] ->
  ?fsync:Abcast_store.Durable.policy ->
  ?flight_cap:int ->
  ?on_deliver:(node:int -> group:int -> Abcast_core.Payload.t -> unit) ->
  ?metrics_port:int ->
  ?metrics_interval:float ->
  ?metrics_out:string ->
  ?metrics_rotate_bytes:int ->
  ?metrics_keep:int ->
  unit ->
  t
(** Bind one UDP socket per process on [127.0.0.1:base_port+i] (default
    base port 7400) and start every process. With [dir], process [i]
    persists its stable storage under [dir/node<i>/] through [backend]
    (default [`Wal], the segmented write-ahead log; [`Files] keeps the
    file-per-key layout) with durability [fsync] (default
    [Every {ops = 64; ms = 20}]) — required for {!recover} to actually
    recover. Without [dir] both are ignored and storage is memory-only.
    [on_deliver] runs in the delivering process's thread with the
    delivering node, the broadcast group ([0] on a single-group stack)
    and the payload; keep it short and synchronize your own data.

    [flight_cap] (default 8192, [0] disables) sizes each process's crash
    flight recorder ({!Abcast_sim.Flight}): a fixed, allocation-free ring
    of lifecycle events that survives incarnations in memory and, with
    [dir], is persisted to [dir/node<i>/flight.bin] about once a second,
    at clean loop exit and on {!request_dump} — so even a SIGKILL'd
    process leaves a black box next to its WAL for [abcast-sim doctor].

    With [metrics_port], a background thread serves the {!prometheus}
    dump over HTTP on [127.0.0.1:metrics_port] (one blocking request at
    a time — built for a scraper, not a crowd). With [metrics_out], a
    second thread appends one JSON snapshot line to that file every
    [metrics_interval] seconds (default 1.0); when the file crosses
    [metrics_rotate_bytes] (default 4 MiB; 0 disables) it is rotated to
    [<file>.1] (shifting older rotations up, keeping at most
    [metrics_keep] of them, default 4), so a long-lived service bounds
    its snapshot footprint. Both threads are joined by {!shutdown}.

    @raise Unix.Unix_error if sockets cannot be created (callers may want
    to skip live tests in restricted environments). *)

val n : t -> int

val shards : t -> int
(** Number of broadcast groups the stack multiplexes
    ({!Abcast_core.Proto.S.shards}); [1] for any unsharded stack. *)

val now_us : t -> int
(** Microseconds since the runtime was created — the clock flight events
    and JSONL snapshot timestamps are stamped with. *)

val flight : t -> int -> Abcast_sim.Flight.t
(** Process [i]'s flight recorder ({!Abcast_sim.Flight.disabled} when
    [flight_cap = 0]). Layers above the runtime (the service) record
    their own lifecycle events into it; recording is wait-free and a
    concurrent record from another thread is at worst one garbled
    advisory event, never a crash. *)

val request_dump : t -> unit
(** Ask every up process to persist its flight recorder now (each node
    loop notices on its next pass). The [abcast-sim] binary maps SIGUSR1
    to this. No-op without [dir]. *)

val set_prom_extra : t -> (Buffer.t -> unit) -> unit
(** Register an extra render hook appended to every {!prometheus} dump
    (text format lines, newline-terminated). The service layer exports
    its per-class request-latency histograms through this. *)

val is_up : t -> int -> bool

val crash : t -> int -> unit
(** Kill the process's thread; volatile state and queued datagrams are
    lost, files remain. Blocks until the thread has exited. *)

val recover : t -> int -> unit
(** Restart a crashed process: a fresh incarnation re-reads its files and
    runs the protocol's recovery procedure, for real. *)

val broadcast : ?group:int -> t -> node:int -> string -> unit
(** Inject an [A-broadcast] at an up process (no-op if down). Without
    [group] the stack routes by payload hash (group [0] on a
    single-group stack); with it, the broadcast is pinned to that group
    of a sharded stack. *)

val delivered_count : ?group:int -> t -> int -> int
(** Length of the process's delivery sequence (synchronous query into its
    thread; 0 if the process is down). Without [group], the sum across
    all groups; with it, one group's count. *)

val delivered_data : ?group:int -> t -> int -> string list
(** Payload bytes of the process's explicit delivery tail, in order
    (per group with [group]; otherwise concatenated group by group). *)

val round : t -> int -> int

type net_stats = {
  tx_oversize : int;
      (** datagrams refused at the send site because their encoding
          exceeded the safe UDP payload size — the protocol sees loss, the
          counter (plus a stderr line) says why *)
  rx_undecodable : int;
      (** received datagrams dropped because they failed the
          bounds-checked wire decode (truncation, garbage, bad source) *)
}

val net_stats : t -> int -> net_stats
(** Datagram drop counters of one process's current incarnation (zeros if
    the process is down). *)

val node_counters : t -> int -> (string * int) list
(** Counter snapshot of one process's metrics table ([] if down). Like
    every query, this is answered inside the process's event loop. *)

val hist_summaries : t -> int -> (string * Abcast_util.Histogram.summary) list
(** Summaries of the process's non-empty latency/size histograms
    ([] if down): stage latencies, consensus timings, WAL I/O
    durations — whatever the stack observed. *)

val prometheus : t -> string
(** Render a Prometheus text-format ([version 0.0.4]) dump of every up
    process: counters as gauges and observed series as cumulative
    histograms, all under an [abcast_] prefix with a [node] label (dots
    in series names become underscores, e.g.
    [abcast_stage_propose_to_adeliver_us_bucket{node="0",le="..."}]).
    On a sharded stack the per-group ["g<g>/"] name prefixes are lifted
    into a [group] label ([{node="0",group="2"}]) so each base series
    keeps one [# HELP]/[# TYPE]; single-group output is unchanged.
    This is the payload the [metrics_port] endpoint serves. *)

val json_snapshot : t -> string
(** One snapshot line of the [metrics_out] JSONL stream: a JSON object
    with the run-relative timestamp and, per node, counters and
    histogram summaries. *)

val shutdown : t -> unit
(** Crash everything and close all sockets. The runtime is unusable
    afterwards. *)
