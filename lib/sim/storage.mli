(** Simulated stable storage (paper §2.1: [log] / [retrieve]).

    One instance per process. Its contents survive simulated crashes (the
    engine resets only volatile state); it is the *only* state a recovering
    process can rely on. Every write and delete is accounted against the
    issuing layer so experiments can check the paper's minimal-logging
    claim: counters ["log_ops.<layer>"] and ["log_bytes.<layer>"] in
    {!Metrics}, plus the currently retained footprint via {!retained_bytes}
    (used for the log-growth experiment E3). *)

type t
(** Stable storage of one process. *)

val create : ?dir:string -> metrics:Metrics.t -> node:int -> unit -> t
(** Storage for process [node], accounting into [metrics].

    Without [dir] the store is memory-only and "stability" is the
    simulator's promise (contents survive {e simulated} crashes). With
    [dir] every key is additionally persisted as one file (hex-encoded
    name, atomic tmp+rename write) and existing files are loaded at
    creation — this is what the live runtime uses so that state survives
    {e real} process restarts. *)

val write : t -> layer:string -> key:string -> string -> unit
(** [write t ~layer ~key v] durably stores [v] under [key]. Counts one
    log operation and [String.length v] bytes for [layer].
    Overwrites silently. *)

val write_if_changed : t -> layer:string -> key:string -> string -> bool
(** Like {!write} but skips the physical write (and its accounting) when
    the stored value is already equal — the paper's §5.5 incremental
    logging rule "a log operation can be saved each time the current value
    does not differ from its previously logged value". Returns whether a
    write happened. *)

val read : t -> string -> string option
(** Retrieve the value stored under a key, if any. Reads are free. *)

val mem : t -> string -> bool
(** Whether a key is present. *)

val delete : t -> layer:string -> string -> unit
(** Remove a key (log truncation). Counts one log operation. *)

val keys_with_prefix : t -> string -> string list
(** All present keys starting with the given prefix, sorted. *)

val retained_bytes : t -> int
(** Total size of currently stored values — the live log footprint. *)

val retained_keys : t -> int
(** Number of currently stored keys. *)

val wipe : t -> unit
(** Clear everything (test helper; never called by protocols). *)

val hex_of_key : string -> string
(** Lowercase hex of a key, used for backing-file names. Exposed for
    benchmarking ({!Bench} compares it against the naive
    [Printf.sprintf]-per-byte formulation it replaced). *)

(** Typed single-value cell on top of {!t}. Serialization defaults to
    [Marshal] (only instantiate at plain data types, no closures) but a
    slot can carry an explicit codec — protocols use {!Abcast_util.Wire}
    codecs for their hot cells. *)
module Slot : sig
  type 'a slot

  val make :
    ?codec:(('a -> string) * (string -> 'a option)) ->
    t ->
    layer:string ->
    key:string ->
    'a slot
  (** A typed view of one key. [codec] is [(encode, decode)]; the decoder
      returns [None] on malformed bytes. Defaults to [Marshal] with a
      decoder that maps deserialization failures to [None]. *)

  val set : 'a slot -> 'a -> unit
  (** Durably store a value (one log operation). *)

  val set_if_changed : 'a slot -> 'a -> bool
  (** Store only if the serialized form differs from what is on disk. *)

  val get : 'a slot -> 'a option
  (** Read back the stored value, if present. *)

  val clear : 'a slot -> unit
  (** Delete the key (one log operation). *)
end

val encode : 'a -> string
(** [Marshal] serialization used by {!Slot} — exposed so protocols can
    measure the size of values they are about to log. *)

val decode : string -> 'a
(** Inverse of {!encode}. Unsafe in general; callers fix ['a] by
    annotation at a data type. *)
