(** Simulated stable storage (paper §2.1: [log] / [retrieve]).

    One instance per process. Its contents survive simulated crashes (the
    engine resets only volatile state); it is the *only* state a recovering
    process can rely on. Every write and delete is accounted against the
    issuing layer so experiments can check the paper's minimal-logging
    claim: counters ["log_ops.<layer>"] and ["log_bytes.<layer>"] in
    {!Metrics}, plus the currently retained footprint via {!retained_bytes}
    (used for the log-growth experiment E3).

    Reads always hit an in-memory table; what differs per {e backend} is
    how (and whether) that table is made durable:

    - [`Memory] — nothing on disk; "stability" is the simulator's promise.
    - [`Files] — one file per key (hex-encoded name, atomic tmp+rename
      write, fsync per the policy). Simple, but every write costs a file
      create+rename and recovery costs one open per key.
    - [`Wal] — the segmented write-ahead log of {!Abcast_store.Wal}: every
      write/delete is one CRC-guarded append, recovery is a sequential
      replay with torn-tail truncation, and key deletion (the paper's §5
      checkpoint/trim rule) triggers compaction that keeps the on-disk
      footprint proportional to the live state. This is what the live
      runtime uses by default.

    Durable backends mirror their sync activity into {!Metrics}:
    [`Files] counts ["file_fsyncs"] (sync events, each covering the
    pending batch), [`Wal] mirrors ["wal_appends"], ["wal_fsyncs"],
    ["wal_segments"], ["wal_compactions"], ["wal_recovered_records"] and
    ["wal_torn_records"]. Both also feed wall-clock latency histograms
    (series observed via {!Metrics.hist}): [`Wal] records
    ["wal_append_us"], ["wal_fsync_us"] and ["wal_recover_us"] (replay
    cost at open), [`Files] records ["file_fsync_us"] per flush. *)

type t
(** Stable storage of one process. *)

val create :
  ?dir:string ->
  ?backend:[ `Memory | `Files | `Wal ] ->
  ?fsync:Abcast_store.Durable.policy ->
  ?wal_segment_bytes:int ->
  ?wal_compact_min_bytes:int ->
  ?flight:Flight.t ->
  ?flight_now:(unit -> int) ->
  metrics:Metrics.t ->
  node:int ->
  unit ->
  t
(** Storage for process [node], accounting into [metrics].

    [flight] (default {!Flight.disabled}) additionally records each WAL
    append/fsync as a flight event with its duration, stamped with
    [flight_now ()] µs (default: wall clock) so the live runtime can
    keep flight timestamps on its own run-relative clock.

    [backend] defaults to [`Files] when [dir] is given (compatibility
    with the original file-per-key store) and [`Memory] otherwise;
    [`Files] and [`Wal] require [dir] (@raise Invalid_argument without
    it). [fsync] (default [Every {ops = 64; ms = 20}]) applies to either
    durable backend. [wal_segment_bytes] / [wal_compact_min_bytes] tune
    the [`Wal] backend (see {!Abcast_store.Wal.open_}).

    With a durable backend, existing state is loaded/replayed at
    creation — this is what lets state survive {e real} process
    restarts in the live runtime. *)

val scoped : t -> prefix:string -> t
(** [scoped t ~prefix] is a view of the same physical store that stamps
    [prefix] onto every key it reads or writes ({!keys_with_prefix}
    returns keys with the prefix stripped, so a scoped reader round-trips
    cleanly). Views share the backend: one WAL/file-set holds the
    group-tagged records of every view and recovers them all in one
    replay. Whole-store operations ({!sync}, {!close}, {!wipe},
    {!retained_bytes}, {!wal_stats}, the byte accounting) act on the
    physical store regardless of which view they are called through.
    Scopes nest. Sharded stacks scope each broadcast group to
    ["g<id>/"]. *)

val scope : t -> string
(** The accumulated key prefix of this view ([""] for the root). *)

val write : t -> layer:string -> key:string -> string -> unit
(** [write t ~layer ~key v] durably stores [v] under [key]. Counts one
    log operation and [String.length v] bytes for [layer].
    Overwrites silently. *)

val write_if_changed : t -> layer:string -> key:string -> string -> bool
(** Like {!write} but skips the physical write (and its accounting) when
    the stored value is already equal — the paper's §5.5 incremental
    logging rule "a log operation can be saved each time the current value
    does not differ from its previously logged value". Returns whether a
    write happened. *)

val read : t -> string -> string option
(** Retrieve the value stored under a key, if any. Reads are free. *)

val mem : t -> string -> bool
(** Whether a key is present. *)

val delete : t -> layer:string -> string -> unit
(** Remove a key (log truncation). Counts one log operation. *)

val keys_with_prefix : t -> string -> string list
(** All present keys starting with the given prefix, sorted. *)

val retained_bytes : t -> int
(** Total size of currently stored values — the live log footprint. *)

val retained_keys : t -> int
(** Number of currently stored keys. *)

val sync : t -> unit
(** Flush outstanding durability work now (pending batched fsyncs),
    whatever the policy. No-op for [`Memory]. *)

val close : t -> unit
(** Release the backend's file descriptors after a final {!sync}. The
    instance must not be written afterwards (the live runtime closes a
    node's storage when its event loop exits). *)

val wal_stats : t -> Abcast_store.Wal.stats option
(** The [`Wal] backend's counters ([None] for other backends). *)

val disk_bytes : t -> int
(** On-disk footprint of the backend: WAL segment bytes, or the summed
    file sizes for [`Files]; 0 for [`Memory]. The quantity a recovering
    process must read back, and the thing WAL compaction bounds. *)

val wipe : t -> unit
(** Clear everything (test helper; never called by protocols). *)

val hex_of_key : string -> string
(** Lowercase hex of a key, used for backing-file names. Exposed for
    benchmarking ({!Bench} compares it against the naive
    [Printf.sprintf]-per-byte formulation it replaced). *)

(** Typed single-value cell on top of {!t}. Serialization defaults to
    [Marshal] (only instantiate at plain data types, no closures) but a
    slot can carry an explicit codec — protocols use {!Abcast_util.Wire}
    codecs for their hot cells. *)
module Slot : sig
  type 'a slot

  val make :
    ?codec:(('a -> string) * (string -> 'a option)) ->
    t ->
    layer:string ->
    key:string ->
    'a slot
  (** A typed view of one key. [codec] is [(encode, decode)]; the decoder
      returns [None] on malformed bytes. Defaults to [Marshal] with a
      decoder that maps deserialization failures to [None]. *)

  val set : 'a slot -> 'a -> unit
  (** Durably store a value (one log operation). *)

  val set_if_changed : 'a slot -> 'a -> bool
  (** Store only if the serialized form differs from what is on disk. *)

  val get : 'a slot -> 'a option
  (** Read back the stored value, if present. *)

  val clear : 'a slot -> unit
  (** Delete the key (one log operation). *)
end

val encode : 'a -> string
(** [Marshal] serialization used by {!Slot} — exposed so protocols can
    measure the size of values they are about to log. *)

val decode : string -> 'a
(** Inverse of {!encode}. Unsafe in general; callers fix ['a] by
    annotation at a data type. *)
