(** Per-run measurement registry.

    Counters are keyed by [(node, name)]; [node = -1] holds run-global
    counters. Protocol layers use hierarchical dotted names
    (e.g. ["log_ops.abcast"], ["log_ops.consensus"], ["msgs_sent"]) so
    experiments can aggregate by prefix. Observations ([observe]) collect
    scalar samples, e.g. per-message delivery latencies; every observed
    series also feeds a log-bucketed {!Abcast_util.Histogram} (~2%
    relative error on percentiles) that exporters and summaries read
    without touching the raw sample lists. *)

type t
(** A mutable registry. One per simulation run. *)

val create : unit -> t
(** Fresh, empty registry (root scope). *)

val scoped : t -> string -> t
(** [scoped t prefix] is a view of the same registry that stamps [prefix]
    onto every counter and series name it registers or reads. Views share
    storage with [t]: a counter bumped through a scoped view is visible
    to the root registry under its full (prefixed) name. Scopes nest —
    [scoped (scoped t a) b] prefixes [a ^ b]. *)

val scope : t -> string
(** The accumulated name prefix of this view ([""] for the root). *)

val group_prefix : int -> string
(** ["g<g>/"] — the conventional scope prefix for broadcast group [g].
    Aggregating readers ({!sum}, {!samples}, {!histogram}, ...) treat
    this prefix as a label: querying a bare name from the root registry
    sums every group's series, while querying the full ["g<g>/name"]
    reads exactly one group. *)

val split_group : string -> int * string
(** Parse a (possibly group-prefixed) series name into
    [(group, base_name)]; names without a ["g<digits>/"] prefix are
    group [0]. *)

val incr : t -> node:int -> string -> unit
(** Add 1 to a counter. *)

val add : t -> node:int -> string -> int -> unit
(** Add an arbitrary amount to a counter. *)

type handle
(** A pre-resolved counter: the hot paths look a counter up once (paying
    the [(node, name)] hashing) and afterwards bump it through the handle
    for free. Handles share storage with the named counter — [get]/[sum]
    observe updates made through a handle and vice versa. {!reset} zeroes
    counters in place, so outstanding handles stay attached: increments
    made after a reset remain visible through [get]/[sum]. *)

val handle : t -> node:int -> string -> handle
(** Resolve (creating if needed) the counter [(node, name)]. *)

val hincr : handle -> unit
(** Add 1 through a handle. *)

val hadd : handle -> int -> unit
(** Add an arbitrary amount through a handle. *)

val hget : handle -> int
(** Current value seen through a handle. *)

val get : t -> node:int -> string -> int
(** Current value of a counter (0 if never touched). *)

val sum : t -> string -> int
(** Sum of a counter over all nodes (including the global node). *)

val sum_prefix : t -> string -> int
(** Sum over all nodes of every counter whose name starts with the given
    dotted prefix (["log_ops"] matches ["log_ops.abcast"] etc.). *)

val observe : t -> node:int -> string -> float -> unit
(** Record one sample in a named series (raw list + histogram). *)

type series
(** A pre-resolved series: like {!handle} but for {!observe}. Hot paths
    resolve the [(node, name)] cell once and record samples through it
    without per-sample hashing. Samples recorded this way are fully
    visible to {!samples}, {!mean}, {!percentile} and the histogram
    readers, and the cell stays attached across {!reset}. *)

val series_handle : t -> node:int -> string -> series
(** Resolve (creating if needed) the series [(node, name)]. *)

val sobserve : series -> float -> unit
(** Record one sample through a handle. *)

val hist : t -> node:int -> string -> Abcast_util.Histogram.t
(** The live histogram backing the series [(node, name)], creating the
    series if needed. Like {!handle} for counters: resolve once, then
    [Histogram.add] directly on hot paths — samples added this way are
    visible to {!histogram}/{!histograms} but not to {!samples}. Stays
    attached across {!reset}. *)

val samples : t -> string -> float list
(** All samples of a series across nodes, in recording order per node. *)

val mean : t -> string -> float
(** Mean of a series across nodes ([nan] if empty). *)

val percentile : t -> string -> float -> float
(** [percentile t name p] with [p] in [\[0,100\]] ([nan] if empty). *)

val count_samples : t -> string -> int
(** Number of recorded samples of a series across nodes. *)

val histogram : t -> string -> Abcast_util.Histogram.t option
(** Fresh histogram merging a series across all nodes; [None] if the
    series was never observed on any node. *)

val hist_summary : t -> string -> Abcast_util.Histogram.summary option
(** Summary (count/mean/min/max/p50/p95/p99) of {!histogram}. *)

val histograms : t -> ((int * string) * Abcast_util.Histogram.t) list
(** Snapshot (copies) of every per-node histogram, sorted by key, for
    exporters. *)

val series_names : t -> string list
(** Sorted distinct names of all observed series. *)

val counters : t -> ((int * string) * int) list
(** Snapshot of all counters, sorted, for debugging and table dumps. *)

val reset : t -> unit
(** Zero every counter and clear every series {e in place}. Interned
    {!handle}s and {!hist} references resolved before the reset remain
    attached — counting through them after a reset is visible to
    [get]/[sum] (it used to vanish into detached storage). *)
