(** Per-run measurement registry.

    Counters are keyed by [(node, name)]; [node = -1] holds run-global
    counters. Protocol layers use hierarchical dotted names
    (e.g. ["log_ops.abcast"], ["log_ops.consensus"], ["msgs_sent"]) so
    experiments can aggregate by prefix. Observations ([observe]) collect
    scalar samples, e.g. per-message delivery latencies. *)

type t
(** A mutable registry. One per simulation run. *)

val create : unit -> t
(** Fresh, empty registry. *)

val incr : t -> node:int -> string -> unit
(** Add 1 to a counter. *)

val add : t -> node:int -> string -> int -> unit
(** Add an arbitrary amount to a counter. *)

type handle
(** A pre-resolved counter: the hot paths look a counter up once (paying
    the [(node, name)] hashing) and afterwards bump it through the handle
    for free. Handles share storage with the named counter — [get]/[sum]
    observe updates made through a handle and vice versa. A {!reset}
    detaches all outstanding handles (they keep counting into dead
    storage); re-resolve after resetting. *)

val handle : t -> node:int -> string -> handle
(** Resolve (creating if needed) the counter [(node, name)]. *)

val hincr : handle -> unit
(** Add 1 through a handle. *)

val hadd : handle -> int -> unit
(** Add an arbitrary amount through a handle. *)

val hget : handle -> int
(** Current value seen through a handle. *)

val get : t -> node:int -> string -> int
(** Current value of a counter (0 if never touched). *)

val sum : t -> string -> int
(** Sum of a counter over all nodes (including the global node). *)

val sum_prefix : t -> string -> int
(** Sum over all nodes of every counter whose name starts with the given
    dotted prefix (["log_ops"] matches ["log_ops.abcast"] etc.). *)

val observe : t -> node:int -> string -> float -> unit
(** Record one sample in a named series. *)

val samples : t -> string -> float list
(** All samples of a series across nodes, in recording order per node. *)

val mean : t -> string -> float
(** Mean of a series across nodes ([nan] if empty). *)

val percentile : t -> string -> float -> float
(** [percentile t name p] with [p] in [\[0,100\]] ([nan] if empty). *)

val count_samples : t -> string -> int
(** Number of recorded samples of a series across nodes. *)

val counters : t -> ((int * string) * int) list
(** Snapshot of all counters, sorted, for debugging and table dumps. *)

val reset : t -> unit
(** Drop all counters and series. *)
