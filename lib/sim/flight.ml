(* Crash flight recorder: a fixed-capacity ring of structured events.

   Eight parallel int arrays hold the last [cap] lifecycle events of one
   node; recording is a handful of array stores with no allocation, so
   the recorder is safe on the zero-alloc live frame path. When the ring
   wraps, the oldest event is overwritten and [dropped] grows — a crash
   leaves the newest [cap] events, which is what a post-mortem wants.

   The dump format ("ABFL" v1) is a Wire-encoded snapshot written
   atomically (tmp + rename + fsync) next to the WAL, so a SIGKILL'd
   node's black box survives alongside its log and `abcast-sim doctor`
   can merge it with the other nodes' dumps offline. *)

module Wire = Abcast_util.Wire
module Durable = Abcast_store.Durable

(* Stage codes. Dense small ints so they varint-encode in one byte and
   index straight into [names]. Append-only: dumps persist these. *)
let submit = 0
let bcast = 1
let rx_ring = 2
let rx_gossip = 3
let propose = 4
let decide = 5
let apply = 6
let wal_append = 7
let wal_fsync = 8
let ack = 9
let lease = 10
let stjump = 11
let boot = 12
let chain = 13
let audit = 14
let replay = 15
let replay_done = 16
let caught_up = 17

let names =
  [|
    "submit"; "bcast"; "rx_ring"; "rx_gossip"; "propose"; "decide"; "apply";
    "wal_append"; "wal_fsync"; "ack"; "lease"; "stjump"; "boot"; "chain";
    "audit"; "replay"; "replay_done"; "caught_up";
  |]

let stage_name s =
  if s >= 0 && s < Array.length names then names.(s)
  else Printf.sprintf "stage%d" s

type t = {
  cap : int;
  time : int array;
  node : int array;
  group : int array;
  boot_ : int array;
  stage : int array;
  trace : int array;
  a : int array;
  b : int array;
  mutable next : int; (* write cursor *)
  mutable total : int; (* events ever recorded *)
}

let create ~cap () =
  if cap < 0 then invalid_arg "Flight.create: negative cap";
  let arr () = Array.make (max cap 1) 0 in
  {
    cap;
    time = arr ();
    node = arr ();
    group = arr ();
    boot_ = arr ();
    stage = arr ();
    trace = arr ();
    a = arr ();
    b = arr ();
    next = 0;
    total = 0;
  }

(* Shared no-op instance: [record] never touches the arrays when
   [cap = 0], so one disabled recorder can be safely shared. *)
let disabled = create ~cap:0 ()

let enabled t = t.cap > 0
let capacity t = t.cap
let total t = t.total
let stored t = if t.total < t.cap then t.total else t.cap
let dropped t = if t.total > t.cap then t.total - t.cap else 0

let clear t =
  t.next <- 0;
  t.total <- 0

let record t ~time ~node ~group ~boot ~stage ~trace ~a ~b =
  if t.cap > 0 then begin
    let i = t.next in
    Array.unsafe_set t.time i time;
    Array.unsafe_set t.node i node;
    Array.unsafe_set t.group i group;
    Array.unsafe_set t.boot_ i boot;
    Array.unsafe_set t.stage i stage;
    Array.unsafe_set t.trace i trace;
    Array.unsafe_set t.a i a;
    Array.unsafe_set t.b i b;
    t.next <- (if i + 1 = t.cap then 0 else i + 1);
    t.total <- t.total + 1
  end

type event = {
  e_time : int;
  e_node : int;
  e_group : int;
  e_boot : int;
  e_stage : int;
  e_trace : int;
  e_a : int;
  e_b : int;
}

let event_at t i =
  (* [i]-th stored event in chronological order *)
  let base = if t.total <= t.cap then 0 else t.next in
  let j = (base + i) mod t.cap in
  {
    e_time = t.time.(j);
    e_node = t.node.(j);
    e_group = t.group.(j);
    e_boot = t.boot_.(j);
    e_stage = t.stage.(j);
    e_trace = t.trace.(j);
    e_a = t.a.(j);
    e_b = t.b.(j);
  }

let events t = List.init (stored t) (event_at t)

(* ---- dump / load ---- *)

type dump = { d_dropped : int; d_events : event list }

let magic = "ABFL"
let version = 1

let write_event w (e : event) =
  Wire.write_varint w e.e_time;
  Wire.write_varint w e.e_node;
  Wire.write_varint w e.e_group;
  Wire.write_varint w e.e_boot;
  Wire.write_varint w e.e_stage;
  Wire.write_varint w e.e_trace;
  Wire.write_varint w e.e_a;
  Wire.write_varint w e.e_b

let read_event r =
  let e_time = Wire.read_varint r in
  let e_node = Wire.read_varint r in
  let e_group = Wire.read_varint r in
  let e_boot = Wire.read_varint r in
  let e_stage = Wire.read_varint r in
  let e_trace = Wire.read_varint r in
  let e_a = Wire.read_varint r in
  let e_b = Wire.read_varint r in
  { e_time; e_node; e_group; e_boot; e_stage; e_trace; e_a; e_b }

let dump_string t =
  let m = stored t in
  let w = Wire.writer ~cap:(32 + (m * 16)) () in
  let buf = Wire.unsafe_reserve w 4 in
  Bytes.blit_string magic 0 buf (Wire.length w) 4;
  Wire.unsafe_advance w 4;
  Wire.write_uvarint w version;
  Wire.write_uvarint w (dropped t);
  Wire.write_uvarint w m;
  for i = 0 to m - 1 do
    write_event w (event_at t i)
  done;
  Wire.contents w

let read_dump r =
  if Wire.remaining r < 4 then Wire.error "flight: short magic";
  let pos = Wire.unsafe_pos r in
  let got = String.sub (Wire.unsafe_buf r) pos 4 in
  if got <> magic then Wire.error "flight: bad magic %S" got;
  Wire.unsafe_seek r (pos + 4);
  let v = Wire.read_uvarint r in
  if v <> version then Wire.error "flight: unsupported version %d" v;
  let d_dropped = Wire.read_uvarint r in
  let m = Wire.read_uvarint r in
  (* hostile-count guard: each event is at least 8 bytes *)
  if m < 0 || m > Wire.remaining r then
    Wire.error "flight: event count %d exceeds buffer" m;
  let acc = ref [] in
  for _ = 1 to m do
    acc := read_event r :: !acc
  done;
  { d_dropped; d_events = List.rev !acc }

let load_string s = Wire.of_string_result read_dump s

let dump_to_file t path = Durable.write_file ~fsync:true path (dump_string t)

let load_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | s -> load_string s
