type entry = { time : int; node : int; text : string }

type phase = B | E

type span = {
  time : int;
  node : int;
  phase : phase;
  stage : string;
  key : string;
}

(* Ring-buffer mode: with [cap > 0] each stream keeps two blocks of at
   most [cap] records — when the current block fills, the previous one
   is discarded (counted in [dropped]) and the current becomes the
   previous. Memory is bounded by 2*cap records per stream and the most
   recent [cap] are always retained; with [cap = 0] (the default, used
   by the simulator) growth is unbounded as before. *)
type t = {
  mutable enabled : bool;
  echo : bool;
  cap : int; (* 0 = unbounded *)
  mutable entries : entry list; (* reversed, current block *)
  mutable entries_old : entry list; (* reversed, previous block *)
  mutable n_entries : int;
  mutable spans : span list; (* reversed, current block *)
  mutable spans_old : span list; (* reversed, previous block *)
  mutable n_spans : int;
  mutable dropped : int;
}

let create ?(enabled = false) ?(echo = false) ?(cap = 0) () =
  if cap < 0 then invalid_arg "Trace.create: negative cap";
  {
    enabled;
    echo;
    cap;
    entries = [];
    entries_old = [];
    n_entries = 0;
    spans = [];
    spans_old = [];
    n_spans = 0;
    dropped = 0;
  }

let enable t b = t.enabled <- b
let enabled t = t.enabled
let dropped_events t = t.dropped

let emit t ~time ~node text =
  if t.enabled then begin
    let e = { time; node; text } in
    t.entries <- e :: t.entries;
    t.n_entries <- t.n_entries + 1;
    if t.cap > 0 && t.n_entries >= t.cap then begin
      t.dropped <- t.dropped + List.length t.entries_old;
      t.entries_old <- t.entries;
      t.entries <- [];
      t.n_entries <- 0
    end;
    if t.echo then Printf.printf "[%8d] p%d %s\n%!" time node text
  end

let emitf t ~time ~node fmt =
  if t.enabled then
    Format.kasprintf (fun s -> emit t ~time ~node s) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let span t ~time ~node ~phase ~stage key =
  if t.enabled then begin
    t.spans <- { time; node; phase; stage; key } :: t.spans;
    t.n_spans <- t.n_spans + 1;
    if t.cap > 0 && t.n_spans >= t.cap then begin
      t.dropped <- t.dropped + List.length t.spans_old;
      t.spans_old <- t.spans;
      t.spans <- [];
      t.n_spans <- 0
    end
  end

let span_begin t ~time ~node ~stage key =
  span t ~time ~node ~phase:B ~stage key

let span_end t ~time ~node ~stage key = span t ~time ~node ~phase:E ~stage key

let entries t = List.rev (t.entries @ t.entries_old)
let spans t = List.rev (t.spans @ t.spans_old)

let find t pred = List.find_opt pred (entries t)

let dump t ppf =
  List.iter
    (fun (e : entry) ->
      Format.fprintf ppf "[%8d] p%d %s@." e.time e.node e.text)
    (entries t)

let clear t =
  t.entries <- [];
  t.entries_old <- [];
  t.n_entries <- 0;
  t.spans <- [];
  t.spans_old <- [];
  t.n_spans <- 0;
  t.dropped <- 0

(* ---- Chrome trace_event export ----

   One JSON array of events, loadable in chrome://tracing and Perfetto.
   Spans become *async* events (ph "b"/"e") keyed by id: many messages
   are in flight per node at once, and chrome's synchronous B/E events
   require strict stack nesting per thread, which overlapping message
   lifetimes violate. Plain entries become instant events (ph "i").
   pid/tid are both the node id, ts is the simulated time in µs (the
   trace_event unit). *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let first = ref true in
  let event s =
    if not !first then Buffer.add_string buf ",\n" else Buffer.add_string buf "\n";
    first := false;
    Buffer.add_string buf s
  in
  (* Both lists are time-ordered (reversed-on-record, reversed back
     here); merge so ts is monotone over the whole array. *)
  let rec go (entries : entry list) (spans : span list) =
    match (entries, spans) with
    | [], [] -> ()
    | e :: es, [] ->
      event
        (Printf.sprintf
           {|  {"name":"%s","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t"}|}
           (json_escape e.text) e.time e.node e.node);
      go es []
    | [], s :: ss ->
      event
        (Printf.sprintf
           {|  {"name":"%s","cat":"%s","ph":"%s","id":"%s","ts":%d,"pid":%d,"tid":%d}|}
           (json_escape s.stage) (json_escape s.stage)
           (match s.phase with B -> "b" | E -> "e")
           (json_escape s.key) s.time s.node s.node);
      go [] ss
    | e :: es, s :: ss ->
      if e.time <= s.time then begin
        event
          (Printf.sprintf
             {|  {"name":"%s","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t"}|}
             (json_escape e.text) e.time e.node e.node);
        go es (s :: ss)
      end
      else begin
        event
          (Printf.sprintf
             {|  {"name":"%s","cat":"%s","ph":"%s","id":"%s","ts":%d,"pid":%d,"tid":%d}|}
             (json_escape s.stage) (json_escape s.stage)
             (match s.phase with B -> "b" | E -> "e")
             (json_escape s.key) s.time s.node s.node);
        go (e :: es) ss
      end
  in
  go (entries t) (spans t);
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
