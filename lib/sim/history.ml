(* Client-visible history capture: a compact binary log of completed
   operations (who, what, when invoked, when responded, what came back),
   one file per client process. The doctor's [--audit] pass merges these
   with the servers' flight dumps and checks client-observable sanity —
   chiefly real-time order: a write acked before a linearizable read was
   invoked must be visible in that read's result.

   Format (ABHI v1): magic "ABHI", version uvarint, then one record per
   completed op — client, kind, key, seq as uvarints, t_inv/t_resp in
   microseconds as uvarints, result value as a signed varint (-1 when
   the op returned no parseable value), ok as one byte. Records are
   appended as they complete; a crashed client leaves a truncated final
   record, which [load_file] tolerates by stopping at the first partial
   record (mirroring the WAL's torn-tail rule). *)

module Wire = Abcast_util.Wire

let magic = "ABHI"

let version = 1

(* Op kinds; [key] below is the integer key index (the client id owning
   the counter key), not the string key. *)
let kind_write = 0

let kind_lin = 1

let kind_stale = 2

type event = {
  client : int;
  kind : int;
  key : int;
  seq : int;  (* session seq for writes/broadcast reads; 0 otherwise *)
  t_inv : int;  (* invocation wall-clock, µs *)
  t_resp : int;  (* response wall-clock, µs *)
  value : int;  (* result value; -1 = none *)
  ok : bool;
}

type t = {
  oc : out_channel;
  scratch : Wire.writer;
  mutable events : int;
  mutable closed : bool;
}

let create ~path =
  let oc = open_out_bin path in
  let w = Wire.writer ~cap:64 () in
  output_string oc magic;
  Wire.write_uvarint w version;
  output_string oc (Wire.contents w);
  flush oc;
  { oc; scratch = w; events = 0; closed = false }

let write_event w (e : event) =
  Wire.write_uvarint w e.client;
  Wire.write_uvarint w e.kind;
  Wire.write_uvarint w e.key;
  Wire.write_uvarint w e.seq;
  Wire.write_uvarint w e.t_inv;
  Wire.write_uvarint w e.t_resp;
  Wire.write_varint w e.value;
  Wire.write_u8 w (if e.ok then 1 else 0)

(* Not thread-safe: callers serialize (the load generator records under
   its own lock). Each record is flushed as one write so a SIGKILL loses
   at most the op in progress. *)
let record t e =
  if not t.closed then begin
    Wire.clear t.scratch;
    write_event t.scratch e;
    output_string t.oc (Wire.contents t.scratch);
    t.events <- t.events + 1
  end

let events t = t.events

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out t.oc
  end

let read_event r =
  let client = Wire.read_uvarint r in
  let kind = Wire.read_uvarint r in
  let key = Wire.read_uvarint r in
  let seq = Wire.read_uvarint r in
  let t_inv = Wire.read_uvarint r in
  let t_resp = Wire.read_uvarint r in
  let value = Wire.read_varint r in
  let ok = Wire.read_u8 r <> 0 in
  { client; kind; key; seq; t_inv; t_resp; value; ok }

let load_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let mlen = String.length magic in
  if len < mlen || String.sub s 0 mlen <> magic then
    Error "not a history file (bad magic)"
  else begin
    let r = Wire.reader ~pos:mlen s in
    match Wire.read_uvarint r with
    | exception Wire.Error _ -> Error "not a history file (truncated header)"
    | v when v <> version ->
      Error (Printf.sprintf "unsupported history version %d" v)
    | _ ->
      let out = ref [] in
      let rec go () =
        if Wire.remaining r > 0 then begin
          match read_event r with
          | e ->
            out := e :: !out;
            go ()
          | exception Wire.Error _ -> () (* torn tail: keep the prefix *)
        end
      in
      go ();
      Ok (List.rev !out)
  end
