module Rng = Abcast_util.Rng
module Heap = Abcast_util.Heap

type time = int

type 'm io = {
  self : int;
  n : int;
  group : int;
      (* broadcast group (shard) this io serves; 0 outside sharded
         stacks. The shard mux rebinds it — with scoped store/metrics
         views — for each inner group instance. *)
  incarnation : int;
  now : unit -> time;
  send : int -> 'm -> unit;
  multisend : 'm -> unit;
  after : time -> (unit -> unit) -> unit;
  store : Storage.t;
  rng : Rng.t;
  metrics : Metrics.t;
  emit : string -> unit;
  trace_on : unit -> bool;
  span_begin : stage:string -> string -> unit;
  span_end : stage:string -> string -> unit;
  flight : Flight.t;
      (* this node's crash flight recorder; [Flight.disabled] (a no-op)
         in the simulator unless a run opts in *)
  alarm : string -> unit;
      (* safety sentinel tripped (audit divergence): the live runtime
         dumps the flight recorder immediately so the evidence survives *)
}

let map_io wrap io =
  {
    self = io.self;
    n = io.n;
    group = io.group;
    incarnation = io.incarnation;
    now = io.now;
    send = (fun dst m -> io.send dst (wrap m));
    multisend = (fun m -> io.multisend (wrap m));
    after = io.after;
    store = io.store;
    rng = io.rng;
    metrics = io.metrics;
    emit = io.emit;
    trace_on = io.trace_on;
    span_begin = io.span_begin;
    span_end = io.span_end;
    flight = io.flight;
    alarm = io.alarm;
  }

type 'm behavior = 'm io -> src:int -> 'm -> unit

type 'm ev =
  | Deliver of { dst : int; src : int; msg : 'm }
  | Guarded of { node : int; inc : int; thunk : unit -> unit }
  | Action of (unit -> unit)

type 'm item = { at : time; seq : int; ev : 'm ev }

type 'm node = {
  id : int;
  mutable up : bool;
  mutable inc : int;
  mutable handler : (src:int -> 'm -> unit) option;
  store : Storage.t;
  rng : Rng.t;
  flight : Flight.t;
}

type 'm t = {
  n : int;
  net : Net.t;
  metrics : Metrics.t;
  trace : Trace.t;
  rng : Rng.t; (* network stream *)
  nodes : 'm node array;
  behaviors : 'm behavior option array;
  heap : 'm item Heap.t;
  msg_size : ('m -> int) option;
  (* interned per-node counters for the per-message hot paths *)
  h_sent : Metrics.handle array;
  h_bytes : Metrics.handle array;
  h_dropped : Metrics.handle array;
  h_delivered : Metrics.handle array;
  h_lost_down : Metrics.handle array;
  mutable time : time;
  mutable seq : int;
  mutable processed : int;
}

let item_cmp a b =
  let c = compare a.at b.at in
  if c <> 0 then c else compare a.seq b.seq

let create ~seed ~n ?net ?msg_size ?trace ?storage ?flight () =
  if n <= 0 then invalid_arg "Engine.create: n must be positive";
  let root = Rng.create seed in
  let metrics = Metrics.create () in
  let net = match net with Some x -> x | None -> Net.create () in
  let trace = match trace with Some x -> x | None -> Trace.create () in
  let mk_store =
    match storage with
    | Some f -> f
    | None -> fun ~metrics ~node -> Storage.create ~metrics ~node ()
  in
  let mk_flight =
    match flight with
    | Some f -> f
    | None -> fun ~node:_ -> Flight.disabled
  in
  let nodes =
    Array.init n (fun id ->
        {
          id;
          up = false;
          inc = -1;
          handler = None;
          store = mk_store ~metrics ~node:id;
          rng = Rng.split root;
          flight = mk_flight ~node:id;
        })
  in
  let handles name = Array.init n (fun i -> Metrics.handle metrics ~node:i name) in
  {
    n;
    net;
    metrics;
    trace;
    rng = Rng.split root;
    nodes;
    behaviors = Array.make n None;
    heap = Heap.create ~cmp:item_cmp ();
    msg_size;
    h_sent = handles "msgs_sent";
    h_bytes = handles "net_bytes";
    h_dropped = handles "msgs_dropped";
    h_delivered = handles "msgs_delivered";
    h_lost_down = handles "msgs_lost_down";
    time = 0;
    seq = 0;
    processed = 0;
  }

let n t = t.n
let now t = t.time
let metrics t = t.metrics
let network t = t.net
let trace t = t.trace
let storage t i = t.nodes.(i).store
let flight t i = t.nodes.(i).flight

let push t ~at ev =
  let at = max at t.time in
  t.seq <- t.seq + 1;
  Heap.push t.heap { at; seq = t.seq; ev }

let transmit t ~src ~dst msg =
  Metrics.hincr t.h_sent.(src);
  (match t.msg_size with
  | Some size -> Metrics.hadd t.h_bytes.(src) (size msg)
  | None -> ());
  match Net.transmit t.net ~rng:t.rng ~src ~dst with
  | Net.Drop -> Metrics.hincr t.h_dropped.(src)
  | Net.Deliver delays ->
    List.iter
      (fun d -> push t ~at:(t.time + d) (Deliver { dst; src; msg }))
      delays

let io_of t node =
  let id = node.id in
  let inc = node.inc in
  {
    self = id;
    n = t.n;
    group = 0;
    incarnation = inc;
    now = (fun () -> t.time);
    send = (fun dst m -> if node.up && node.inc = inc then transmit t ~src:id ~dst m);
    multisend =
      (fun m ->
        if node.up && node.inc = inc then
          for dst = 0 to t.n - 1 do
            transmit t ~src:id ~dst m
          done);
    after =
      (fun delay thunk ->
        if delay < 0 then invalid_arg "io.after: negative delay";
        push t ~at:(t.time + delay) (Guarded { node = id; inc; thunk }));
    store = node.store;
    rng = node.rng;
    metrics = t.metrics;
    emit = (fun s -> Trace.emit t.trace ~time:t.time ~node:id s);
    trace_on = (fun () -> Trace.enabled t.trace);
    span_begin =
      (fun ~stage key ->
        Trace.span_begin t.trace ~time:t.time ~node:id ~stage key);
    span_end =
      (fun ~stage key ->
        Trace.span_end t.trace ~time:t.time ~node:id ~stage key);
    flight = node.flight;
    alarm =
      (fun reason ->
        Metrics.incr t.metrics ~node:id "alarms";
        Trace.emit t.trace ~time:t.time ~node:id ("ALARM: " ^ reason));
  }

let set_behavior t i f = t.behaviors.(i) <- Some f

let start t i =
  let node = t.nodes.(i) in
  if not node.up then begin
    let behavior =
      match t.behaviors.(i) with
      | Some b -> b
      | None -> invalid_arg "Engine.start: no behavior installed"
    in
    node.inc <- node.inc + 1;
    node.up <- true;
    Trace.emit t.trace ~time:t.time ~node:i
      (if node.inc = 0 then "start" else Printf.sprintf "recover (inc %d)" node.inc);
    let io = io_of t node in
    node.handler <- Some (behavior io)
  end

let start_all t =
  for i = 0 to t.n - 1 do
    start t i
  done

let crash t i =
  let node = t.nodes.(i) in
  if node.up then begin
    node.up <- false;
    node.handler <- None;
    Metrics.incr t.metrics ~node:i "crashes";
    Trace.emit t.trace ~time:t.time ~node:i "crash"
  end

let recover = start

let is_up t i = t.nodes.(i).up
let incarnation t i = t.nodes.(i).inc

let at t time fn = push t ~at:time (Action fn)
let after t delay fn = push t ~at:(t.time + delay) (Action fn)
let events_processed t = t.processed

let dispatch t item =
  t.time <- item.at;
  t.processed <- t.processed + 1;
  match item.ev with
  | Action fn -> fn ()
  | Guarded { node; inc; thunk } ->
    let nd = t.nodes.(node) in
    if nd.up && nd.inc = inc then thunk ()
  | Deliver { dst; src; msg } -> (
    let nd = t.nodes.(dst) in
    if nd.up then
      match nd.handler with
      | Some h ->
        Metrics.hincr t.h_delivered.(dst);
        h ~src msg
      | None -> ()
    else Metrics.hincr t.h_lost_down.(dst))

let default_max_events = 100_000_000

let run ?until ?(max_events = default_max_events) t =
  let budget = ref max_events in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    match Heap.peek t.heap with
    | None -> continue_ := false
    | Some item -> (
      match until with
      | Some limit when item.at > limit -> continue_ := false
      | _ ->
        ignore (Heap.pop t.heap);
        decr budget;
        dispatch t item)
  done;
  match until with Some limit when t.time < limit -> t.time <- limit | _ -> ()

let run_until t ?until ?(max_events = default_max_events) ~pred () =
  let budget = ref max_events in
  let continue_ = ref true in
  let satisfied = ref (pred ()) in
  while (not !satisfied) && !continue_ && !budget > 0 do
    match Heap.peek t.heap with
    | None -> continue_ := false
    | Some item -> (
      match until with
      | Some limit when item.at > limit -> continue_ := false
      | _ ->
        ignore (Heap.pop t.heap);
        decr budget;
        dispatch t item;
        if pred () then satisfied := true)
  done;
  !satisfied
