module Durable = Abcast_store.Durable
module Wal = Abcast_store.Wal
module Histogram = Abcast_util.Histogram

type files_state = {
  fdir : string;
  fpacer : Durable.pacer;
  (* paths written since the last sync under a batched policy; flushed
     together so the batched policy means "at most this window is lost",
     not "whichever file happened to be written last is durable" *)
  pending : (string, unit) Hashtbl.t;
  h_file_fsyncs : Metrics.handle;
  h_fsync_us : Histogram.t;
}

type wal_state = {
  wal : Wal.t;
  mutable last : Wal.stats;
  h_appends : Metrics.handle;
  h_fsyncs : Metrics.handle;
  h_segments : Metrics.handle;
  h_compactions : Metrics.handle;
  h_recovered : Metrics.handle;
  h_torn : Metrics.handle;
}

type persist = P_none | P_files of files_state | P_wal of wal_state

type t = {
  tbl : (string, string) Hashtbl.t;
  metrics : Metrics.t;
  node : int;
  prefix : string;
      (* key prefix stamped on every access through this view; [""] for
         the root store. Sharded stacks give each broadcast group a view
         prefixed ["g<id>/"], so one WAL holds group-tagged records for
         every group and recovers them all in one pass. *)
  persist : persist;
  layer_handles : (string, Metrics.handle * Metrics.handle) Hashtbl.t;
      (* layer -> (log_ops.<layer>, log_bytes.<layer>) — interned so the
         per-write accounting stops concatenating and hashing full names *)
}

let hex_digits = "0123456789abcdef"

(* One Bytes of the exact final size, two table lookups per input byte —
   the Printf.sprintf-per-character version this replaces allocated a
   format interpreter run and an intermediate string per byte and showed
   up in the file-backed write path (one filename per log write). *)
let hex_of_key key =
  let n = String.length key in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code (String.unsafe_get key i) in
    Bytes.unsafe_set out (2 * i) (String.unsafe_get hex_digits (c lsr 4));
    Bytes.unsafe_set out ((2 * i) + 1)
      (String.unsafe_get hex_digits (c land 0xf))
  done;
  Bytes.unsafe_to_string out

let key_of_hex hex =
  let len = String.length hex / 2 in
  String.init len (fun i -> Char.chr (int_of_string ("0x" ^ String.sub hex (2 * i) 2)))

let read_file file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* ---- wal_* counter mirror ----

   [Wal] cannot depend on [Metrics] (the dependency runs the other way),
   so it keeps plain counters and the storage layer forwards the deltas
   after every operation that can move them. [segments] is a gauge, but
   adding signed deltas keeps the metric equal to its current value. *)

let sync_wal_metrics w =
  let s = Wal.stats w.wal in
  let last = w.last in
  if s.appends <> last.appends then
    Metrics.hadd w.h_appends (s.appends - last.appends);
  if s.fsyncs <> last.fsyncs then Metrics.hadd w.h_fsyncs (s.fsyncs - last.fsyncs);
  if s.segments <> last.segments then
    Metrics.hadd w.h_segments (s.segments - last.segments);
  if s.compactions <> last.compactions then
    Metrics.hadd w.h_compactions (s.compactions - last.compactions);
  if s.recovered_records <> last.recovered_records then
    Metrics.hadd w.h_recovered (s.recovered_records - last.recovered_records);
  if s.torn_records <> last.torn_records then
    Metrics.hadd w.h_torn (s.torn_records - last.torn_records);
  w.last <- s

let wal_state ~metrics ~node wal =
  let h name = Metrics.handle metrics ~node name in
  let zero =
    {
      Wal.appends = 0;
      fsyncs = 0;
      segments = 0;
      compactions = 0;
      recovered_records = 0;
      torn_records = 0;
    }
  in
  let w =
    {
      wal;
      last = zero;
      h_appends = h "wal_appends";
      h_fsyncs = h "wal_fsyncs";
      h_segments = h "wal_segments";
      h_compactions = h "wal_compactions";
      h_recovered = h "wal_recovered_records";
      h_torn = h "wal_torn_records";
    }
  in
  sync_wal_metrics w;
  w

(* ---- file-per-key durability ---- *)

let files_flush fs =
  let t0 = Unix.gettimeofday () in
  Hashtbl.iter (fun path () -> Durable.fsync_path path) fs.pending;
  Durable.fsync_dir fs.fdir;
  Histogram.add fs.h_fsync_us ((Unix.gettimeofday () -. t0) *. 1e6);
  Metrics.hincr fs.h_file_fsyncs;
  Hashtbl.reset fs.pending;
  Durable.note_sync fs.fpacer

let files_after_op fs path =
  match Durable.policy fs.fpacer with
  | Durable.Always ->
    (* write_file already synced file + directory *)
    Metrics.hincr fs.h_file_fsyncs;
    ignore (Durable.note_op fs.fpacer);
    Durable.note_sync fs.fpacer
  | Durable.Never -> ()
  | Durable.Every _ ->
    (match path with
    | Some p -> Hashtbl.replace fs.pending p ()
    | None -> ());
    if Durable.note_op fs.fpacer then files_flush fs

let create ?dir ?backend ?(fsync = Durable.Every { ops = 64; ms = 20 })
    ?wal_segment_bytes ?wal_compact_min_bytes ?(flight = Flight.disabled)
    ?(flight_now = fun () -> int_of_float (Unix.gettimeofday () *. 1e6))
    ~metrics ~node () =
  let backend =
    match (backend, dir) with
    | Some b, _ -> b
    | None, Some _ -> `Files
    | None, None -> `Memory
  in
  let tbl = Hashtbl.create 32 in
  (* Recovery-timeline instrumentation: how much the boot replayed from
     stable storage and how long it took. The flight event puts the
     replay on the same clock as the protocol's own recovery stages, so
     the doctor can render a boot-to-caught-up timeline per node. *)
  let note_replay ~t0 ~records ~bytes =
    let us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
    Metrics.add metrics ~node "recovery_replay_records" records;
    Metrics.add metrics ~node "recovery_replay_bytes" bytes;
    Metrics.add metrics ~node "recovery_replay_us" us;
    if Flight.enabled flight then
      Flight.record flight ~time:(flight_now ()) ~node ~group:0 ~boot:0
        ~stage:Flight.replay ~trace:0 ~a:records ~b:us
  in
  let persist =
    match (backend, dir) with
    | `Memory, _ -> P_none
    | (`Files | `Wal), None ->
      invalid_arg "Storage.create: file and wal backends need ~dir"
    | `Files, Some d ->
      Durable.mkdir_p d;
      let t0 = Unix.gettimeofday () in
      let records = ref 0 and bytes = ref 0 in
      Array.iter
        (fun name ->
          if not (Filename.check_suffix name ".tmp") then
            match key_of_hex name with
            | key ->
              let v = read_file (Filename.concat d name) in
              incr records;
              bytes := !bytes + String.length v;
              Hashtbl.replace tbl key v
            | exception _ -> ())
        (Sys.readdir d);
      note_replay ~t0 ~records:!records ~bytes:!bytes;
      P_files
        {
          fdir = d;
          fpacer = Durable.pacer fsync;
          pending = Hashtbl.create 8;
          h_file_fsyncs = Metrics.handle metrics ~node "file_fsyncs";
          h_fsync_us = Metrics.hist metrics ~node "file_fsync_us";
        }
    | `Wal, Some d ->
      (* Route the WAL's timing tap into the latency histograms before
         the wal exists — [open_] itself reports the `Recover sample. *)
      let h_append = Metrics.hist metrics ~node "wal_append_us"
      and h_fsync = Metrics.hist metrics ~node "wal_fsync_us"
      and h_recover = Metrics.hist metrics ~node "wal_recover_us" in
      (* The flight tap mirrors the histogram one: WAL appends/fsyncs
         land in the node's black box with their duration, so the doctor
         can attribute fsync stalls to the broadcasts they delayed. *)
      let fl stage us =
        if Flight.enabled flight then
          Flight.record flight ~time:(flight_now ()) ~node ~group:0 ~boot:0
            ~stage ~trace:0 ~a:(int_of_float us) ~b:0
      in
      let on_io op us =
        match op with
        | `Append ->
          Histogram.add h_append us;
          fl Flight.wal_append us
        | `Fsync ->
          Histogram.add h_fsync us;
          fl Flight.wal_fsync us
        | `Recover -> Histogram.add h_recover us
      in
      let wal =
        Wal.open_ ?segment_bytes:wal_segment_bytes
          ?compact_min_bytes:wal_compact_min_bytes ~fsync ~on_io ~dir:d ()
      in
      let t0 = Unix.gettimeofday () in
      let records = ref 0 and bytes = ref 0 in
      Wal.iter wal (fun key value ->
          incr records;
          bytes := !bytes + String.length key + String.length value;
          Hashtbl.replace tbl key value);
      note_replay ~t0 ~records:!records ~bytes:!bytes;
      P_wal (wal_state ~metrics ~node wal)
  in
  { tbl; metrics; node; prefix = ""; persist; layer_handles = Hashtbl.create 4 }

(* A scoped view shares everything — table, backend, pacer, metric
   handles — and only rewrites keys. [sync]/[close]/[wipe]/[wal_stats]
   and the byte accounting remain whole-store operations: one physical
   log backs every view. *)
let scoped t ~prefix = { t with prefix = t.prefix ^ prefix }

let scope t = t.prefix
let full_key t key = if t.prefix = "" then key else t.prefix ^ key

let account t ~layer bytes =
  let ops, byt =
    match Hashtbl.find_opt t.layer_handles layer with
    | Some h -> h
    | None ->
      let h =
        ( Metrics.handle t.metrics ~node:t.node ("log_ops." ^ layer),
          Metrics.handle t.metrics ~node:t.node ("log_bytes." ^ layer) )
      in
      Hashtbl.add t.layer_handles layer h;
      h
  in
  Metrics.hincr ops;
  Metrics.hadd byt bytes

let write t ~layer ~key v =
  let key = full_key t key in
  account t ~layer (String.length v);
  Hashtbl.replace t.tbl key v;
  match t.persist with
  | P_none -> ()
  | P_files fs ->
    let path = Filename.concat fs.fdir (hex_of_key key) in
    Durable.write_file ~fsync:(Durable.policy fs.fpacer = Durable.Always) path v;
    files_after_op fs (Some path)
  | P_wal w ->
    Wal.put w.wal key v;
    sync_wal_metrics w

let read t key = Hashtbl.find_opt t.tbl (full_key t key)

let write_if_changed t ~layer ~key v =
  match read t key with
  | Some old when String.equal old v -> false
  | _ ->
    write t ~layer ~key v;
    true

let mem t key = Hashtbl.mem t.tbl (full_key t key)

let delete t ~layer key =
  let key = full_key t key in
  if Hashtbl.mem t.tbl key then begin
    account t ~layer 0;
    Hashtbl.remove t.tbl key;
    match t.persist with
    | P_none -> ()
    | P_files fs ->
      let path = Filename.concat fs.fdir (hex_of_key key) in
      (try Sys.remove path with Sys_error _ -> ());
      Hashtbl.remove fs.pending path;
      if Durable.policy fs.fpacer = Durable.Always then
        Durable.fsync_dir fs.fdir;
      files_after_op fs None
    | P_wal w ->
      Wal.delete w.wal key;
      sync_wal_metrics w
  end

let keys_with_prefix t prefix =
  let prefix = full_key t prefix in
  let plen = String.length prefix in
  let skip = String.length t.prefix in
  Hashtbl.fold
    (fun k _ acc ->
      if String.length k >= plen && String.sub k 0 plen = prefix then
        (* return keys in the view's namespace, so a scoped reader can
           feed them straight back into [read]/[delete] *)
        String.sub k skip (String.length k - skip) :: acc
      else acc)
    t.tbl []
  |> List.sort compare

let retained_bytes t =
  Hashtbl.fold (fun _ v acc -> acc + String.length v) t.tbl 0

let retained_keys t = Hashtbl.length t.tbl

let sync t =
  match t.persist with
  | P_none -> ()
  | P_files fs -> files_flush fs
  | P_wal w ->
    Wal.sync w.wal;
    sync_wal_metrics w

let close t =
  match t.persist with
  | P_none -> ()
  | P_files fs -> if Hashtbl.length fs.pending > 0 then files_flush fs
  | P_wal w ->
    Wal.close w.wal;
    sync_wal_metrics w

let wal_stats t =
  match t.persist with
  | P_wal w -> Some (Wal.stats w.wal)
  | P_none | P_files _ -> None

let disk_bytes t =
  match t.persist with
  | P_none -> 0
  | P_wal w -> Wal.disk_bytes w.wal
  | P_files fs ->
    Array.fold_left
      (fun acc name ->
        match (Unix.stat (Filename.concat fs.fdir name)).Unix.st_size with
        | size -> acc + size
        | exception Unix.Unix_error _ -> acc)
      0 (Sys.readdir fs.fdir)

let wipe t =
  (match t.persist with
  | P_none -> ()
  | P_files fs ->
    Array.iter
      (fun name ->
        try Sys.remove (Filename.concat fs.fdir name) with Sys_error _ -> ())
      (Sys.readdir fs.fdir);
    Hashtbl.reset fs.pending
  | P_wal w ->
    Wal.wipe w.wal;
    sync_wal_metrics w);
  Hashtbl.reset t.tbl

let encode v = Marshal.to_string v []

let decode s = Marshal.from_string s 0

module Slot = struct
  type 'a slot = {
    store : t;
    layer : string;
    key : string;
    enc : 'a -> string;
    dec : string -> 'a option;
  }

  let marshal_dec s =
    match Marshal.from_string s 0 with
    | v -> Some v
    | exception (Failure _ | Invalid_argument _) -> None

  let make ?codec store ~layer ~key =
    let enc, dec =
      match codec with Some c -> c | None -> (encode, marshal_dec)
    in
    { store; layer; key; enc; dec }

  let set slot v = write slot.store ~layer:slot.layer ~key:slot.key (slot.enc v)

  let set_if_changed slot v =
    write_if_changed slot.store ~layer:slot.layer ~key:slot.key (slot.enc v)

  let get slot =
    match read slot.store slot.key with
    | None -> None
    | Some s -> slot.dec s

  let clear slot = delete slot.store ~layer:slot.layer slot.key
end
