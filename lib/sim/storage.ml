type t = {
  tbl : (string, string) Hashtbl.t;
  metrics : Metrics.t;
  node : int;
  dir : string option; (* file backing: one file per key, hex-named *)
  layer_handles : (string, Metrics.handle * Metrics.handle) Hashtbl.t;
      (* layer -> (log_ops.<layer>, log_bytes.<layer>) — interned so the
         per-write accounting stops concatenating and hashing full names *)
}

let hex_digits = "0123456789abcdef"

(* One Bytes of the exact final size, two table lookups per input byte —
   the Printf.sprintf-per-character version this replaces allocated a
   format interpreter run and an intermediate string per byte and showed
   up in the file-backed write path (one filename per log write). *)
let hex_of_key key =
  let n = String.length key in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code (String.unsafe_get key i) in
    Bytes.unsafe_set out (2 * i) (String.unsafe_get hex_digits (c lsr 4));
    Bytes.unsafe_set out ((2 * i) + 1)
      (String.unsafe_get hex_digits (c land 0xf))
  done;
  Bytes.unsafe_to_string out

let key_of_hex hex =
  let len = String.length hex / 2 in
  String.init len (fun i -> Char.chr (int_of_string ("0x" ^ String.sub hex (2 * i) 2)))

let path t key =
  match t.dir with
  | Some dir -> Some (Filename.concat dir (hex_of_key key))
  | None -> None

let read_file file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let write_file file contents =
  let tmp = file ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp file

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let create ?dir ~metrics ~node () =
  let t =
    {
      tbl = Hashtbl.create 32;
      metrics;
      node;
      dir;
      layer_handles = Hashtbl.create 4;
    }
  in
  (match dir with
  | None -> ()
  | Some d ->
    mkdir_p d;
    Array.iter
      (fun name ->
        if not (Filename.check_suffix name ".tmp") then
          match key_of_hex name with
          | key -> Hashtbl.replace t.tbl key (read_file (Filename.concat d name))
          | exception _ -> ())
      (Sys.readdir d));
  t

let account t ~layer bytes =
  let ops, byt =
    match Hashtbl.find_opt t.layer_handles layer with
    | Some h -> h
    | None ->
      let h =
        ( Metrics.handle t.metrics ~node:t.node ("log_ops." ^ layer),
          Metrics.handle t.metrics ~node:t.node ("log_bytes." ^ layer) )
      in
      Hashtbl.add t.layer_handles layer h;
      h
  in
  Metrics.hincr ops;
  Metrics.hadd byt bytes

let write t ~layer ~key v =
  account t ~layer (String.length v);
  Hashtbl.replace t.tbl key v;
  match path t key with Some file -> write_file file v | None -> ()

let read t key = Hashtbl.find_opt t.tbl key

let write_if_changed t ~layer ~key v =
  match read t key with
  | Some old when String.equal old v -> false
  | _ ->
    write t ~layer ~key v;
    true

let mem t key = Hashtbl.mem t.tbl key

let delete t ~layer key =
  if Hashtbl.mem t.tbl key then begin
    account t ~layer 0;
    Hashtbl.remove t.tbl key;
    match path t key with
    | Some file -> ( try Sys.remove file with Sys_error _ -> ())
    | None -> ()
  end

let keys_with_prefix t prefix =
  let plen = String.length prefix in
  Hashtbl.fold
    (fun k _ acc ->
      if String.length k >= plen && String.sub k 0 plen = prefix then k :: acc
      else acc)
    t.tbl []
  |> List.sort compare

let retained_bytes t =
  Hashtbl.fold (fun _ v acc -> acc + String.length v) t.tbl 0

let retained_keys t = Hashtbl.length t.tbl

let wipe t =
  (match t.dir with
  | Some d when Sys.file_exists d ->
    Array.iter
      (fun name -> try Sys.remove (Filename.concat d name) with Sys_error _ -> ())
      (Sys.readdir d)
  | _ -> ());
  Hashtbl.reset t.tbl

let encode v = Marshal.to_string v []

let decode s = Marshal.from_string s 0

module Slot = struct
  type 'a slot = {
    store : t;
    layer : string;
    key : string;
    enc : 'a -> string;
    dec : string -> 'a option;
  }

  let marshal_dec s =
    match Marshal.from_string s 0 with
    | v -> Some v
    | exception (Failure _ | Invalid_argument _) -> None

  let make ?codec store ~layer ~key =
    let enc, dec =
      match codec with Some c -> c | None -> (encode, marshal_dec)
    in
    { store; layer; key; enc; dec }

  let set slot v = write slot.store ~layer:slot.layer ~key:slot.key (slot.enc v)

  let set_if_changed slot v =
    write_if_changed slot.store ~layer:slot.layer ~key:slot.key (slot.enc v)

  let get slot =
    match read slot.store slot.key with
    | None -> None
    | Some s -> slot.dec s

  let clear slot = delete slot.store ~layer:slot.layer slot.key
end
