(** Client-visible history capture.

    A compact binary log (ABHI v1) of completed client operations, one
    file per client process: who invoked what, when it was invoked and
    when it responded, and what came back. The load generator appends a
    record per completion; [abcast-sim doctor --audit] merges these
    files with the servers' flight dumps and checks client-observable
    sanity — chiefly real-time order (a write acked before a
    linearizable read was invoked must be visible in its result).

    Records are appended one buffered write per op; a client killed
    mid-write leaves a truncated final record, which {!load_file}
    tolerates by keeping the intact prefix (the WAL's torn-tail rule). *)

val kind_write : int
(** Counter increment on the client's own key. *)

val kind_lin : int
(** Linearizable read (broadcast round or read-index lease). *)

val kind_stale : int
(** Local stale read (no ordering guarantee — excluded from the
    real-time-order check). *)

type event = {
  client : int;  (** issuing client id *)
  kind : int;  (** {!kind_write} / {!kind_lin} / {!kind_stale} *)
  key : int;  (** integer key index: the id of the client owning the key *)
  seq : int;  (** session seq for session-bound ops; 0 otherwise *)
  t_inv : int;  (** invocation wall-clock, µs since the epoch *)
  t_resp : int;  (** response wall-clock, µs *)
  value : int;  (** result value; -1 when the op returned none *)
  ok : bool;
}

type t
(** An open history file being recorded. Not thread-safe: callers
    serialize (the load generator records under its own lock). *)

val create : path:string -> t
(** Create/truncate [path] and write the header.
    @raise Sys_error on I/O failure. *)

val record : t -> event -> unit
(** Append one completed op. No-op after {!close}. *)

val events : t -> int
(** Number of records written so far. *)

val close : t -> unit
(** Flush and close. Idempotent. *)

val load_file : string -> (event list, string) result
(** Parse a history file; [Error] on bad magic/version, [Ok] with the
    intact prefix when the tail is torn. *)
