(** Crash flight recorder: fixed-capacity ring buffer of structured
    lifecycle events, dumped next to the WAL as a post-mortem black box.

    Each node owns one recorder. {!record} costs eight array stores and
    allocates nothing, so it is safe on the allocation-free live frame
    path; when the ring wraps the oldest events are overwritten and
    {!dropped} counts them. Dumps are atomic (tmp + rename + fsync) in
    the Wire-framed ["ABFL"] v1 format, merged offline by
    [abcast-sim doctor]. A recorder with [cap = 0] (see {!disabled})
    never records and never allocates. *)

type t

val create : cap:int -> unit -> t
(** Ring of [cap] events. [cap = 0] disables recording entirely. *)

val disabled : t
(** A shared always-off recorder ([cap = 0]); {!record} on it is a
    no-op, so it is safe to share between nodes. *)

val enabled : t -> bool
val capacity : t -> int

val record :
  t ->
  time:int ->
  node:int ->
  group:int ->
  boot:int ->
  stage:int ->
  trace:int ->
  a:int ->
  b:int ->
  unit
(** Append one event, overwriting the oldest when full. Allocation-free;
    no-op when [cap = 0]. [time] is µs; [trace] is the packed
    originating trace context (0 = unsampled); [a]/[b] are
    stage-specific operands (consensus instance, duration µs, ...). *)

(** {2 Stage codes} — dense ints, stable across versions (dumps persist
    them). *)

val submit : int  (** service accepted a client request *)

val bcast : int  (** protocol A-broadcast of a payload *)

val rx_ring : int  (** first sight of a payload via ring forwarding *)

val rx_gossip : int  (** first sight of a payload via gossip/pull *)

val propose : int  (** payload included in consensus proposal [a] *)

val decide : int  (** consensus instance [a] decided *)

val apply : int  (** payload A-delivered to the application *)

val wal_append : int  (** WAL record appended ([a] = µs) *)

val wal_fsync : int  (** WAL fsync completed ([a] = µs) *)

val ack : int  (** session layer acked a request to its waiter *)

val lease : int  (** read-index lease marker applied *)

val stjump : int  (** state transfer jumped [a] → [b] instances *)

val boot : int  (** node (re)started with boot counter [a] *)

val chain : int
(** audit chain grid point: delivery position [a] has chain hash [b] —
    positions are grid-aligned so doctor can compare across nodes *)

val audit : int
(** audit sentinel tripped: certificate from node [b] mismatched our
    chain at position [a] — a live total-order violation *)

val replay : int  (** storage replay done: [a] records in [b] µs *)

val replay_done : int
(** protocol recovery replay done: [a] consensus rounds in [b] µs *)

val caught_up : int
(** first post-recovery delivery: length [a], [b] µs after boot *)

val stage_name : int -> string

(** {2 Reading} *)

type event = {
  e_time : int;
  e_node : int;
  e_group : int;
  e_boot : int;
  e_stage : int;
  e_trace : int;
  e_a : int;
  e_b : int;
}

val total : t -> int
(** Events ever recorded (including overwritten ones). *)

val stored : t -> int
val dropped : t -> int

val events : t -> event list
(** Stored events, oldest first. Allocates; not for hot paths. *)

val clear : t -> unit

(** {2 Dump / load} *)

type dump = { d_dropped : int; d_events : event list }

val dump_string : t -> string
val load_string : string -> (dump, string) result

val dump_to_file : t -> string -> unit
(** Atomic (tmp + rename) durable write of {!dump_string}. *)

val load_file : string -> (dump, string) result
