type t = {
  counters : (int * string, int ref) Hashtbl.t;
  series : (int * string, float list ref) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 64; series = Hashtbl.create 16 }

let counter t node name =
  match Hashtbl.find_opt t.counters (node, name) with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters (node, name) r;
    r

let incr t ~node name = Stdlib.incr (counter t node name)

let add t ~node name v =
  let r = counter t node name in
  r := !r + v

(* Interned counter handles: the per-event hot paths (engine transmit,
   protocol dispatch, storage accounting) resolve their counters once and
   then bump a bare ref — no (node, name) tuple allocation, no string
   hashing per event. *)

type handle = int ref

let handle t ~node name = counter t node name

let hincr (h : handle) = Stdlib.incr h

let hadd (h : handle) v = h := !h + v

let hget (h : handle) = !h

let get t ~node name =
  match Hashtbl.find_opt t.counters (node, name) with
  | Some r -> !r
  | None -> 0

let sum t name =
  Hashtbl.fold
    (fun (_, n) r acc -> if String.equal n name then acc + !r else acc)
    t.counters 0

let has_prefix ~prefix s =
  String.equal prefix s
  || (String.length s > String.length prefix
      && String.sub s 0 (String.length prefix) = prefix
      && s.[String.length prefix] = '.')

let sum_prefix t prefix =
  Hashtbl.fold
    (fun (_, n) r acc -> if has_prefix ~prefix n then acc + !r else acc)
    t.counters 0

let observe t ~node name v =
  match Hashtbl.find_opt t.series (node, name) with
  | Some r -> r := v :: !r
  | None -> Hashtbl.add t.series (node, name) (ref [ v ])

let samples t name =
  Hashtbl.fold
    (fun (_, n) r acc -> if String.equal n name then List.rev_append !r acc else acc)
    t.series []

let count_samples t name = List.length (samples t name)

let mean t name =
  match samples t name with
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile t name p =
  match samples t name with
  | [] -> nan
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let lo = max 0 (min lo (n - 1)) and hi = max 0 (min hi (n - 1)) in
    let frac = rank -. floor rank in
    (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort compare

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.series
