module Histogram = Abcast_util.Histogram

(* Each series cell fuses the exact sample list (kept for tests and the
   exact-percentile API) with a log-bucketed histogram fed on every
   [observe]. Exporters read the histogram; property tests can compare
   it against the raw samples. *)
type cell = { mutable samples : float list; hist : Histogram.t }

type t = {
  scope : string;
      (* name prefix stamped on every counter/series registered through
         this view; [""] for the root registry. Sharded stacks hand each
         group a view scoped to ["g<id>/"] so one registry holds all
         groups' series side by side. *)
  counters : (int * string, int ref) Hashtbl.t;
  series : (int * string, cell) Hashtbl.t;
}

let create () =
  { scope = ""; counters = Hashtbl.create 64; series = Hashtbl.create 16 }

let scoped t prefix = { t with scope = t.scope ^ prefix }
let scope t = t.scope

(* Group scoping convention: a series registered through a view scoped
   with {!scoped} [(group_prefix g)] is stored under ["g<g>/<name>"].
   Readers below treat the group prefix as a label, not part of the
   identity: querying ["lat_deliver"] aggregates every group's series,
   querying ["g2/lat_deliver"] reads exactly one. *)

let group_prefix g = "g" ^ string_of_int g ^ "/"

let split_group n =
  let len = String.length n in
  if len > 2 && n.[0] = 'g' then begin
    let i = ref 1 in
    while !i < len && n.[!i] >= '0' && n.[!i] <= '9' do
      incr i
    done;
    if !i > 1 && !i < len && n.[!i] = '/' then
      (int_of_string (String.sub n 1 (!i - 1)),
       String.sub n (!i + 1) (len - !i - 1))
    else (0, n)
  end
  else (0, n)

let base_name n = snd (split_group n)
let matches ~query n = String.equal n query || String.equal (base_name n) query
let full t name = if t.scope = "" then name else t.scope ^ name

let counter t node name =
  let name = full t name in
  match Hashtbl.find_opt t.counters (node, name) with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters (node, name) r;
    r

let incr t ~node name = Stdlib.incr (counter t node name)

let add t ~node name v =
  let r = counter t node name in
  r := !r + v

(* Interned counter handles: the per-event hot paths (engine transmit,
   protocol dispatch, storage accounting) resolve their counters once and
   then bump a bare ref — no (node, name) tuple allocation, no string
   hashing per event. *)

type handle = int ref

let handle t ~node name = counter t node name

let hincr (h : handle) = Stdlib.incr h

let hadd (h : handle) v = h := !h + v

let hget (h : handle) = !h

let get t ~node name =
  match Hashtbl.find_opt t.counters (node, full t name) with
  | Some r -> !r
  | None -> 0

let sum t name =
  let query = full t name in
  Hashtbl.fold
    (fun (_, n) r acc -> if matches ~query n then acc + !r else acc)
    t.counters 0

let has_prefix ~prefix s =
  String.equal prefix s
  || (String.length s > String.length prefix
      && String.sub s 0 (String.length prefix) = prefix
      && s.[String.length prefix] = '.')

let sum_prefix t prefix =
  let prefix = full t prefix in
  Hashtbl.fold
    (fun (_, n) r acc ->
      if has_prefix ~prefix n || has_prefix ~prefix (base_name n) then
        acc + !r
      else acc)
    t.counters 0

let cell t node name =
  let name = full t name in
  match Hashtbl.find_opt t.series (node, name) with
  | Some c -> c
  | None ->
    let c = { samples = []; hist = Histogram.create () } in
    Hashtbl.add t.series (node, name) c;
    c

let observe t ~node name v =
  let c = cell t node name in
  c.samples <- v :: c.samples;
  Histogram.add c.hist v

(* Interned series handles, the [observe] analogue of counter [handle]s:
   per-message paths resolve the cell once and then record samples
   without the (node, name) tuple allocation and string hashing. Samples
   recorded through a handle are indistinguishable from [observe]d ones
   ([samples], [mean], [percentile] and the histogram all see them). *)

type series = cell

let series_handle t ~node name = cell t node name

let sobserve (c : series) v =
  c.samples <- v :: c.samples;
  Histogram.add c.hist v

let hist t ~node name = (cell t node name).hist

let samples t name =
  let query = full t name in
  Hashtbl.fold
    (fun (_, n) c acc ->
      if matches ~query n then List.rev_append c.samples acc else acc)
    t.series []

let count_samples t name = List.length (samples t name)

let mean t name =
  match samples t name with
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile t name p =
  match samples t name with
  | [] -> nan
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let lo = max 0 (min lo (n - 1)) and hi = max 0 (min hi (n - 1)) in
    let frac = rank -. floor rank in
    (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)

let histogram t name =
  let query = full t name in
  let acc = Histogram.create () in
  let found = ref false in
  Hashtbl.iter
    (fun (_, n) c ->
      if matches ~query n then begin
        found := true;
        Histogram.merge_into ~dst:acc c.hist
      end)
    t.series;
  if !found then Some acc else None

let hist_summary t name = Option.map Histogram.summary (histogram t name)

let histograms t =
  Hashtbl.fold
    (fun k c acc -> (k, Histogram.copy c.hist) :: acc)
    t.series []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let series_names t =
  Hashtbl.fold (fun (_, n) _ acc -> n :: acc) t.series []
  |> List.sort_uniq compare

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort compare

(* Reset zeroes every cell *in place* rather than dropping the tables:
   interned handles and histogram references resolved before the reset
   stay attached to live storage, so post-reset increments remain
   visible through [get]/[sum] (this used to silently count into dead
   refs). *)
let reset t =
  Hashtbl.iter (fun _ r -> r := 0) t.counters;
  Hashtbl.iter
    (fun _ c ->
      c.samples <- [];
      Histogram.clear c.hist)
    t.series
