(** Timestamped event trace.

    Cheap structured logging for simulations: protocols emit one-line
    events and stage spans; tests assert over them; examples print them
    as a timeline; {!to_chrome_json} exports the whole run for
    chrome://tracing / Perfetto. Disabled traces drop events without
    formatting or recording cost. *)

type t

type entry = { time : int; node : int; text : string }

type phase = B | E

type span = {
  time : int;
  node : int;
  phase : phase;
  stage : string;  (** e.g. ["abcast"], ["consensus"] *)
  key : string;  (** message/instance key, pairs a [B] with its [E] *)
}

val create : ?enabled:bool -> ?echo:bool -> ?cap:int -> unit -> t
(** [echo] additionally prints each entry to stdout as it is emitted.
    [cap > 0] bounds memory (ring-buffer mode): each stream (entries,
    spans) retains at least its most recent [cap] records and at most
    [2*cap]; older records are discarded and counted in
    {!dropped_events}. The default [cap = 0] keeps everything, as
    simulation tests expect. Long-lived live runs should set a cap. *)

val enable : t -> bool -> unit

val enabled : t -> bool
(** Instrumentation sites test this before building span keys, so a
    disabled trace costs one load + branch per site. *)

val emit : t -> time:int -> node:int -> string -> unit
(** Record an entry (no-op when disabled). *)

val emitf :
  t -> time:int -> node:int -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant. When the trace is disabled no formatting is
    performed and nothing is allocated beyond the closed-over
    arguments; note OCaml still evaluates the arguments themselves
    (that is the language's applicative order, not something a library
    can suppress), so guard any expensive argument computation with
    {!enabled}. *)

val span_begin : t -> time:int -> node:int -> stage:string -> string -> unit
(** [span_begin t ~time ~node ~stage key] opens the [stage] span for
    [key] (no-op when disabled). Every begin should be matched by an
    {!span_end} with the same stage and key. *)

val span_end : t -> time:int -> node:int -> stage:string -> string -> unit

val dropped_events : t -> int
(** Records discarded by ring-buffer mode since creation (or the last
    {!clear}); always [0] when [cap = 0]. *)

val entries : t -> entry list
(** All retained entries in emission order. *)

val spans : t -> span list
(** All retained span events in emission order. *)

val find : t -> (entry -> bool) -> entry option
(** First entry satisfying the predicate. *)

val dump : t -> Format.formatter -> unit
(** Print the whole timeline, one entry per line. *)

val to_chrome_json : t -> string
(** The run as a Chrome [trace_event] JSON array (open in
    chrome://tracing or Perfetto). Spans export as async begin/end
    events ([ph] "b"/"e") identified by their key — async because many
    messages are in flight per node and synchronous B/E events require
    stack nesting; entries export as instant events ([ph] "i"). [ts] is
    simulated µs; [pid] and [tid] are the node id. *)

val clear : t -> unit
