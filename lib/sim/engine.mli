(** Deterministic discrete-event simulation engine.

    The engine owns simulated time, an event heap, [n] processes and the
    network. A run is a pure function of the root seed: every stochastic
    choice flows from it, ties are broken by insertion order, and all
    execution is single-threaded.

    Processes follow the paper's crash-recovery lifecycle (§2.1): a process
    is {e up} or {e down}; crashing erases all volatile state (the handler
    closure and every pending timer) and loses messages that arrive while
    down; recovery re-runs the process behaviour, which must rebuild its
    state from {!Storage}. Incarnation numbers guard against stale timers
    and model the boot counter a real system keeps.

    The engine is polymorphic in the wire message type ['m]; protocol
    layers are composed by wrapping messages with {!map_io}. *)

type time = int
(** Simulated microseconds since the start of the run. *)

(** The environment handed to a process behaviour — the only way a protocol
    can affect the world. One fresh ['m io] per incarnation. *)
type 'm io = {
  self : int;  (** this process's identity, [0 .. n-1] *)
  n : int;  (** number of processes in the system *)
  group : int;
      (** broadcast group (shard) this environment serves; the engine
          always hands out group 0, and the shard mux rebinds it (with
          {!Storage.scoped} / {!Metrics.scoped} views) per inner group *)
  incarnation : int;  (** 0 on first boot, +1 per recovery *)
  now : unit -> time;  (** current simulated time *)
  send : int -> 'm -> unit;  (** unreliable point-to-point send (§3.1) *)
  multisend : 'm -> unit;  (** unreliable send to all, including self *)
  after : time -> (unit -> unit) -> unit;
      (** volatile timer: run the thunk after the given delay unless this
          incarnation has crashed by then *)
  store : Storage.t;  (** stable storage, survives crashes *)
  rng : Abcast_util.Rng.t;  (** this process's private random stream *)
  metrics : Metrics.t;  (** shared measurement registry *)
  emit : string -> unit;  (** trace an event at the current time *)
  trace_on : unit -> bool;
      (** whether the trace records; test before building span keys so a
          disabled trace costs one branch per instrumentation site *)
  span_begin : stage:string -> string -> unit;
      (** open a lifecycle span (stage tag + message key) at the current
          time; no-op when the trace is disabled *)
  span_end : stage:string -> string -> unit;
      (** close the matching span at the current time *)
  flight : Flight.t;
      (** this node's crash flight recorder. The engine hands out
          {!Flight.disabled} (recording is a no-op) unless [create] got a
          [flight] factory; the live runtime substitutes a real per-node
          ring so lifecycle events survive a SIGKILL next to the WAL. *)
  alarm : string -> unit;
      (** safety sentinel: the protocol calls this when an online audit
          detects a violated invariant (order divergence). The engine
          bumps an ["alarms"] counter and traces; the live runtime also
          dumps the flight recorder immediately so evidence survives. *)
}

val map_io : ('a -> 'b) -> 'b io -> 'a io
(** [map_io wrap io] narrows an environment to a sub-protocol whose
    messages embed into the parent's via [wrap]. Sends are wrapped; all
    other capabilities are shared. *)

type 'm behavior = 'm io -> src:int -> 'm -> unit
(** A process behaviour: run at every (re)start with a fresh [io], it
    initializes state (reading stable storage on recovery), may set timers,
    and returns the incoming-message handler for this incarnation. *)

type 'm t
(** A simulation instance. *)

val create :
  seed:int ->
  n:int ->
  ?net:Net.t ->
  ?msg_size:('m -> int) ->
  ?trace:Trace.t ->
  ?storage:(metrics:Metrics.t -> node:int -> Storage.t) ->
  ?flight:(node:int -> Flight.t) ->
  unit ->
  'm t
(** [create ~seed ~n ()] builds a simulation of [n] processes over a
    default {!Net} model. [msg_size] enables per-message byte accounting
    (counter ["net_bytes"]). [storage] overrides how each process's
    stable storage is built (default: memory-only) — pass a factory
    closing over a directory to run a simulation against the real
    file-per-key or WAL backends (the backend-equivalence sweep does).
    [flight] gives each process a real flight recorder (default:
    {!Flight.disabled}); recorders survive crash/recover like storage. *)

val n : 'm t -> int
val now : 'm t -> time
val metrics : 'm t -> Metrics.t
val network : 'm t -> Net.t
val trace : 'm t -> Trace.t
val storage : 'm t -> int -> Storage.t
(** Direct access to a process's stable storage (inspection/tests). *)

val flight : 'm t -> int -> Flight.t
(** A process's flight recorder ({!Flight.disabled} unless [create] got
    a [flight] factory). *)

val set_behavior : 'm t -> int -> 'm behavior -> unit
(** Install the program text of a process. Must be set before [start]. *)

val start : 'm t -> int -> unit
(** Boot a process (first start or recovery): bumps its incarnation,
    marks it up, runs its behaviour. No-op if already up. *)

val start_all : 'm t -> unit
(** [start] every process, in id order. *)

val crash : 'm t -> int -> unit
(** Crash a process now: volatile state and pending timers are lost;
    messages arriving while it is down are dropped. No-op if down. *)

val recover : 'm t -> int -> unit
(** Alias for {!start}, for readability at call sites. *)

val is_up : 'm t -> int -> bool
val incarnation : 'm t -> int -> int
(** Current incarnation (-1 if never started). *)

val at : 'm t -> time -> (unit -> unit) -> unit
(** Schedule an arbitrary action at an absolute time (fault injection,
    workload arrival, assertions mid-run). *)

val after : 'm t -> time -> (unit -> unit) -> unit
(** Schedule an action relative to now. *)

val events_processed : 'm t -> int
(** Number of events dispatched so far (work measure for recovery cost). *)

val run : ?until:time -> ?max_events:int -> 'm t -> unit
(** Process events in time order until the heap is empty, the time limit
    is passed, or [max_events] (default 100 million) events have been
    dispatched. When [until] is given, time is advanced to exactly [until]
    on return. *)

val run_until :
  'm t -> ?until:time -> ?max_events:int -> pred:(unit -> bool) -> unit -> bool
(** Like {!run} but also stops as soon as [pred ()] holds (checked after
    each event). Returns whether the predicate held at stop time. *)
