(** Compact binary wire codec.

    Every value that crosses a process boundary (UDP datagrams in the
    live runtime, simulated messages whose size the engine accounts,
    stable-storage slots whose bytes experiments count) is serialized by
    hand through this module instead of [Marshal]: the encoding is
    3-10x smaller, several times faster to produce, and — critically for
    the live runtime, which reads datagrams from the network — the
    decoder is bounds-checked and total: malformed input yields [None]
    at the {!of_string_opt} boundary, never a segfault or an unbounded
    allocation.

    Format conventions (see DESIGN.md "Wire format"):

    - signed integers: zigzag + LEB128 varint (1 byte for small
      non-negative values, at most 9 bytes for the full 63-bit range);
    - lengths and counts: plain LEB128 varint, rejected if negative;
    - strings: length-prefixed bytes;
    - lists: count-prefixed elements, order-preserving;
    - options: one tag byte (0 = [None], 1 = [Some]);
    - variants: one leading tag byte per constructor.

    Writers are growable byte buffers (cheaper than {!Buffer.t}: the
    varint writer reserves its worst case once and stores bytes without
    per-byte bounds checks); callers can prepend their own framing bytes
    with {!write_u8} and compose codecs without intermediate strings. *)

exception Error of string
(** Raised by readers on malformed input: truncation, overlong varints,
    bad tags, counts exceeding the remaining bytes, trailing garbage.
    Never escapes {!of_string_opt}/{!of_string_result}. *)

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Error} with a formatted message — for codecs built on top of
    this module that detect domain-level malformation (bad variant tag,
    out-of-range field) mid-decode. *)

(** {1 Writing} *)

type writer
(** Growable byte buffer with a write cursor. *)

val writer : ?cap:int -> unit -> writer
(** Fresh buffer ([cap] defaults to 128). *)

val clear : writer -> unit
(** Reset the cursor to 0, keeping the allocation — for reusable
    per-connection scratch writers. *)

val length : writer -> int
(** Bytes written so far. *)

val contents : writer -> string
(** Copy of the bytes written so far. *)

val unsafe_bytes : writer -> Bytes.t
(** The writer's underlying scratch buffer; only indices
    [0 .. length w - 1] are meaningful, and any later write may
    reallocate or overwrite it. For zero-copy handoff to [Unix.sendto]
    and friends — do not retain across writes. *)

val truncate : writer -> int -> unit
(** Roll the cursor back to an earlier {!length} mark, discarding the
    bytes written since — how the bounded batch encoder un-writes the
    payload that overflowed its byte budget.
    @raise Invalid_argument if the mark is negative or past the cursor. *)

val append_writer : writer -> src:writer -> unit
(** Append [src]'s written bytes to the destination in one blit.
    Encode-once-send-many paths (live multisend, ring forwarding) encode
    into a scratch writer and blit it into each per-destination buffer
    instead of re-running the codec per recipient. *)

(** {2 Expert writer primitives}

    For fused codec fast paths (see [Payload.write]): reserve the worst
    case once, store raw bytes at [length w ..], then advance. Any
    encoding produced this way must be byte-identical to the
    combinator-based encoding of the same value. *)

val unsafe_reserve : writer -> int -> Bytes.t
(** [unsafe_reserve w n] guarantees capacity for [n] more bytes and
    returns the (possibly reallocated) underlying buffer. Write to
    indices [length w .. length w + n - 1] only, then call
    {!unsafe_advance}. The result is invalidated by any other write. *)

val unsafe_advance : writer -> int -> unit
(** Bump the cursor over bytes stored after {!unsafe_reserve}. *)

val write_u8 : writer -> int -> unit
(** Low byte of the argument, as-is. Variant tags use this. *)

val write_varint : writer -> int -> unit
(** Signed integer, zigzag + LEB128: covers the whole [int] range
    including [min_int]/[max_int]. *)

val write_uvarint : writer -> int -> unit
(** Non-negative integer (lengths, counts), plain LEB128.
    @raise Invalid_argument on a negative argument (writer bug). *)

val write_bool : writer -> bool -> unit

val write_string : writer -> string -> unit
(** Length-prefixed bytes. *)

val write_option : (writer -> 'a -> unit) -> writer -> 'a option -> unit

val write_list : (writer -> 'a -> unit) -> writer -> 'a list -> unit
(** Count-prefixed, preserves order. *)

(** {1 Reading} *)

type reader
(** Cursor over an immutable byte range; every read is bounds-checked
    against the range's limit. *)

val reader : ?pos:int -> ?len:int -> string -> reader
(** Read window over [s.[pos .. pos+len-1]] (defaults: whole string).
    @raise Invalid_argument if the window lies outside the string. *)

val reader_reset : reader -> ?pos:int -> ?len:int -> string -> unit
(** Re-aim an existing reader at a new window, allocating nothing — for
    pooled per-socket readers on the live receive path.
    @raise Invalid_argument if the window lies outside the string. *)

val remaining : reader -> int

val at_end : reader -> bool

(** {2 Expert reader primitives}

    For fused codec fast paths: inspect the raw bytes at the cursor
    (after checking {!remaining}), then seek past them. A fast path
    built on these must accept exactly the inputs the combinator-based
    decoder accepts, with the same result — fall back to the
    combinators for anything else. *)

val unsafe_buf : reader -> string
(** The underlying string. Valid indices are
    [unsafe_pos r .. unsafe_pos r + remaining r - 1]; the caller must
    bounds-check against {!remaining} before reading. *)

val unsafe_pos : reader -> int

val unsafe_seek : reader -> int -> unit
(** Set the absolute cursor position; never seek past
    [unsafe_pos r + remaining r]. *)

val expect_end : reader -> unit
(** @raise Error if bytes remain — top-level decoders call this so that
    trailing garbage is rejected rather than silently ignored. *)

val read_u8 : reader -> int

val read_varint : reader -> int

val read_uvarint : reader -> int

val read_bool : reader -> bool

val read_string : reader -> string

val read_option : (reader -> 'a) -> reader -> 'a option

val read_list : (reader -> 'a) -> reader -> 'a list
(** Rejects counts larger than the remaining byte count before
    allocating anything (each element costs at least one byte), so a
    hostile count cannot force a huge allocation. *)

(** {1 Whole-value helpers} *)

val to_string : ?cap:int -> (writer -> 'a -> unit) -> 'a -> string
(** Encode one value into a fresh string. [cap] pre-sizes the buffer
    (default 128) — pass an estimate on hot paths to skip the growth
    copies. *)

val of_string_opt : (reader -> 'a) -> string -> 'a option
(** Decode one value spanning the whole string; [None] on any
    malformation (including trailing bytes). *)

val of_string_result : (reader -> 'a) -> string -> ('a, string) result
(** Like {!of_string_opt} but carries the error message. *)

val of_string_exn : (reader -> 'a) -> string -> 'a
(** Like {!of_string_opt} for trusted input (our own stable storage,
    values we just encoded). @raise Error on malformation. *)
