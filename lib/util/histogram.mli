(** Log-bucketed histograms for latency and size distributions.

    A histogram is a fixed-size array of integer bucket counts whose
    bucket boundaries grow geometrically (growth factor {e γ} = 1.04).
    Any non-negative sample in (1, ~4.8e8] lands in a bucket whose
    geometric midpoint is within ~2% relative error of the sample
    ((√γ − 1) ≈ 1.98%); values ≤ 1 share bucket 0 and values beyond the
    range share the overflow bucket. Exact [count], [sum], [min] and
    [max] are tracked alongside, so means are exact and p0/p100 are the
    true extremes — only interior percentiles carry the bucket error.

    Because bucketing is deterministic, merging two histograms is exact:
    [merge a b] has identical bucket counts to the histogram of the
    concatenated sample streams. Adding a sample allocates nothing, so
    histograms are safe on hot paths. Not thread-safe: confine each
    instance to one thread (the simulator is single-threaded; the live
    runtime keeps one Metrics table per node thread). *)

type t

(** Summary statistics of a histogram, as reported in tables, JSON and
    the Prometheus dump. [p50]/[p95]/[p99] are bucket-midpoint
    estimates (~2% relative error); the rest are exact. *)
type summary = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val create : unit -> t

val add : t -> float -> unit
(** [add t v] records one sample. Allocation-free. *)

val count : t -> int
val sum : t -> float

val mean : t -> float
(** Exact mean; [0.] when empty. *)

val min_value : t -> float
(** Exact smallest sample; [0.] when empty. *)

val max_value : t -> float
(** Exact largest sample; [0.] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0., 100.]: nearest-rank percentile
    estimated from bucket midpoints, clamped to [[min_value, max_value]].
    [p <= 0.] returns the exact minimum, [p >= 100.] the exact maximum;
    [0.] when empty. *)

val merge : t -> t -> t
(** [merge a b] is a fresh histogram equivalent to having added both
    sample streams; bucket counts are exactly the sums. *)

val merge_into : dst:t -> t -> unit
(** In-place variant of [merge]. *)

val copy : t -> t

val clear : t -> unit
(** Reset to empty in place (the backing array is reused). *)

val summary : t -> summary

val buckets : t -> (float * int) list
(** Non-empty buckets as [(upper_bound, count)] pairs in increasing
    bound order, for exporters. The overflow bucket reports
    [infinity] as its bound. *)

val bucket_error : float
(** The documented relative error bound of bucket-midpoint estimates:
    √γ − 1 ≈ 0.0198. *)

val pp_summary : Format.formatter -> summary -> unit
