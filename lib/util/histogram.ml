(* Log-bucketed histogram. See the .mli for the contract.

   Layout: 512 integer buckets with geometric bounds γ^b (γ = 1.04).
   Bucket 0 holds everything ≤ 1 (including zero and any negative
   samples); bucket b in [1, 510] holds (γ^(b-1), γ^b]; bucket 511 is
   the overflow for anything above γ^510 ≈ 4.85e8 — comfortably past
   any latency in µs or message size in bytes that this repo produces.

   Bucketing is a pure function of the sample value (one log + ceil),
   so two histograms fed the same multiset of samples have identical
   bucket arrays and merging is exact integer addition. The scalar
   float stats live in a float array rather than mutable record fields:
   float-array elements are unboxed, which keeps [add] allocation-free
   (a mutable float field in a mixed record would re-box on every
   store). *)

let gamma = 1.04
let log_gamma = log gamma
let n_buckets = 512
let last = n_buckets - 1 (* overflow bucket *)

let bucket_error = sqrt gamma -. 1.0

type t = {
  counts : int array;
  stats : float array; (* [| sum; min; max |], min/max valid iff count > 0 *)
  mutable count : int;
}

type summary = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let create () =
  { counts = Array.make n_buckets 0; stats = [| 0.0; 0.0; 0.0 |]; count = 0 }

let index v =
  if v <= 1.0 then 0
  else
    let b = int_of_float (ceil (log v /. log_gamma)) in
    if b < 1 then 1 else if b > last - 1 then last else b

(* Geometric midpoint of bucket [b]: γ^b / √γ, the point whose relative
   distance to both bucket edges is √γ − 1. Queries clamp it to the
   exact observed [min, max], which also gives bucket 0 and the
   overflow bucket sensible representatives. *)
let representative b =
  if b = 0 then 1.0 else gamma ** (float_of_int b -. 0.5)

let add (t : t) v =
  t.counts.(index v) <- t.counts.(index v) + 1;
  t.stats.(0) <- t.stats.(0) +. v;
  if t.count = 0 then begin
    t.stats.(1) <- v;
    t.stats.(2) <- v
  end
  else begin
    if v < t.stats.(1) then t.stats.(1) <- v;
    if v > t.stats.(2) then t.stats.(2) <- v
  end;
  t.count <- t.count + 1

let count (t : t) = t.count
let sum (t : t) = t.stats.(0)
let mean (t : t) = if t.count = 0 then 0.0 else t.stats.(0) /. float_of_int t.count
let min_value (t : t) = if t.count = 0 then 0.0 else t.stats.(1)
let max_value (t : t) = if t.count = 0 then 0.0 else t.stats.(2)

let clamp (t : t) v =
  let v = if v < t.stats.(1) then t.stats.(1) else v in
  if v > t.stats.(2) then t.stats.(2) else v

let percentile (t : t) p =
  if t.count = 0 then 0.0
  else if p <= 0.0 then t.stats.(1)
  else if p >= 100.0 then t.stats.(2)
  else begin
    (* Nearest-rank: the smallest bucket whose cumulative count reaches
       ⌈p/100 · n⌉. *)
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let cum = ref 0 and b = ref 0 in
    (try
       for i = 0 to last do
         cum := !cum + t.counts.(i);
         if !cum >= rank then begin
           b := i;
           raise Exit
         end
       done
     with Exit -> ());
    clamp t (representative !b)
  end

let merge_into ~dst src =
  for i = 0 to last do
    dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
  done;
  dst.stats.(0) <- dst.stats.(0) +. src.stats.(0);
  if src.count > 0 then
    if dst.count = 0 then begin
      dst.stats.(1) <- src.stats.(1);
      dst.stats.(2) <- src.stats.(2)
    end
    else begin
      if src.stats.(1) < dst.stats.(1) then dst.stats.(1) <- src.stats.(1);
      if src.stats.(2) > dst.stats.(2) then dst.stats.(2) <- src.stats.(2)
    end;
  dst.count <- dst.count + src.count

let merge a b =
  let t = create () in
  merge_into ~dst:t a;
  merge_into ~dst:t b;
  t

let copy (t : t) =
  {
    counts = Array.copy t.counts;
    stats = Array.copy t.stats;
    count = t.count;
  }

let clear (t : t) =
  Array.fill t.counts 0 n_buckets 0;
  t.stats.(0) <- 0.0;
  t.stats.(1) <- 0.0;
  t.stats.(2) <- 0.0;
  t.count <- 0

let summary (t : t) =
  {
    count = t.count;
    sum = sum t;
    mean = mean t;
    min = min_value t;
    max = max_value t;
    p50 = percentile t 50.0;
    p95 = percentile t 95.0;
    p99 = percentile t 99.0;
  }

let buckets (t : t) =
  let acc = ref [] in
  for i = last downto 0 do
    if t.counts.(i) > 0 then begin
      let bound =
        if i = last then infinity else gamma ** float_of_int i
      in
      acc := (bound, t.counts.(i)) :: !acc
    end
  done;
  !acc

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.1f min=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f" s.count
    s.mean s.min s.p50 s.p95 s.p99 s.max
