exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* --- Writing ------------------------------------------------------- *)

(* Not a [Buffer.t]: a bare bytes + cursor pair lets the varint writer
   reserve its worst case once and then store bytes with no per-byte
   bounds checks, which matters on the batch-encode hot path. *)
type writer = { mutable bytes : Bytes.t; mutable pos : int }

let writer ?(cap = 128) () =
  { bytes = Bytes.create (if cap < 16 then 16 else cap); pos = 0 }

let grow w need =
  let cap = ref (2 * Bytes.length w.bytes) in
  while w.pos + need > !cap do
    cap := 2 * !cap
  done;
  let bytes = Bytes.create !cap in
  Bytes.blit w.bytes 0 bytes 0 w.pos;
  w.bytes <- bytes

let[@inline] reserve w need =
  if w.pos + need > Bytes.length w.bytes then grow w need

let clear w = w.pos <- 0
let length w = w.pos
let contents w = Bytes.sub_string w.bytes 0 w.pos
let unsafe_bytes w = w.bytes

let truncate w pos =
  if pos < 0 || pos > w.pos then invalid_arg "Wire.truncate: bad position";
  w.pos <- pos

let append_writer dst ~src =
  reserve dst src.pos;
  Bytes.blit src.bytes 0 dst.bytes dst.pos src.pos;
  dst.pos <- dst.pos + src.pos

let[@inline] unsafe_reserve w n =
  reserve w n;
  w.bytes

let[@inline] unsafe_advance w n = w.pos <- w.pos + n

let[@inline] write_u8 w n =
  reserve w 1;
  Bytes.unsafe_set w.bytes w.pos (Char.unsafe_chr (n land 0xff));
  w.pos <- w.pos + 1

(* LEB128 over the int's 63-bit two's-complement pattern. [lsr] makes the
   loop terminate for negative inputs too (at most 9 bytes, reserved up
   front so the loop body is check-free). *)
let write_raw_varint w n =
  reserve w 9;
  let bytes = w.bytes in
  let pos = ref w.pos in
  let n = ref n in
  while !n land lnot 0x7f <> 0 do
    Bytes.unsafe_set bytes !pos (Char.unsafe_chr (0x80 lor (!n land 0x7f)));
    incr pos;
    n := !n lsr 7
  done;
  Bytes.unsafe_set bytes !pos (Char.unsafe_chr !n);
  w.pos <- !pos + 1

(* Zigzag folds the sign into the low bit so small magnitudes of either
   sign stay short; the [lsl] overflow on huge ints is part of the
   bijection (the top bit is recovered by the decoder's [lsr 1]).
   Single-byte zigzags (|n| <= 63) skip the write loop entirely. *)
let[@inline] write_varint w n =
  let z = (n lsl 1) lxor (n asr (Sys.int_size - 1)) in
  if z land lnot 0x7f = 0 then write_u8 w z else write_raw_varint w z

let[@inline] write_uvarint_fast w n =
  if n land lnot 0x7f = 0 then write_u8 w n else write_raw_varint w n

let write_uvarint w n =
  if n < 0 then invalid_arg "Wire.write_uvarint: negative";
  write_uvarint_fast w n

let write_bool w b = write_u8 w (if b then 1 else 0)

let write_string w s =
  let len = String.length s in
  write_uvarint_fast w len;
  reserve w len;
  (* bounds established by [reserve]; [len] is the source's length *)
  Bytes.unsafe_blit_string s 0 w.bytes w.pos len;
  w.pos <- w.pos + len

let write_option f w = function
  | None -> write_u8 w 0
  | Some x ->
    write_u8 w 1;
    f w x

(* Fully-applied top-level recursion instead of [List.iter (f w)]: the
   partial application would allocate a closure on every call, and this
   runs on the live runtime's zero-allocation send path. *)
let rec iter_write f w = function
  | [] -> ()
  | x :: tl ->
    f w x;
    iter_write f w tl

let write_list f w l =
  write_uvarint w (List.length l);
  iter_write f w l

(* --- Reading ------------------------------------------------------- *)

type reader = { mutable buf : string; mutable pos : int; mutable limit : int }

let[@inline] check_window buf pos limit =
  if pos < 0 || limit > String.length buf || pos > limit then
    invalid_arg "Wire.reader: window outside the string"

let reader ?(pos = 0) ?len buf =
  let limit =
    match len with Some l -> pos + l | None -> String.length buf
  in
  check_window buf pos limit;
  { buf; pos; limit }

(* Re-aim a pooled reader at a new window without allocating. The live
   runtime's recv loop keeps one reader per socket and resets it over
   [Bytes.unsafe_to_string] of the (reused) datagram buffer — decoding a
   frame then touches the minor heap only for the decoded value itself. *)
let reader_reset r ?(pos = 0) ?len buf =
  let limit =
    match len with Some l -> pos + l | None -> String.length buf
  in
  check_window buf pos limit;
  r.buf <- buf;
  r.pos <- pos;
  r.limit <- limit

let remaining r = r.limit - r.pos

let at_end r = r.pos >= r.limit

let[@inline] unsafe_buf r = r.buf
let[@inline] unsafe_pos r = r.pos
let[@inline] unsafe_seek r pos = r.pos <- pos

let expect_end r =
  if not (at_end r) then error "trailing garbage (%d bytes)" (remaining r)

let read_u8 r =
  if r.pos >= r.limit then error "truncated input";
  let c = Char.code (String.unsafe_get r.buf r.pos) in
  r.pos <- r.pos + 1;
  c

(* Continuation bytes past the first, moved out of line so the one-byte
   fast path below stays small enough for the inliner. *)
let read_raw_varint_slow r first =
  let rec go shift acc =
    (* 63-bit ints fit in 9 LEB128 groups (shifts 0..56). *)
    if shift > Sys.int_size - 7 then error "varint too long";
    let b = read_u8 r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 7 (first land 0x7f)

let[@inline] read_raw_varint r =
  (* Single-byte values dominate (tags, counts, small seqs): one bounds
     check, one load, done. *)
  let pos = r.pos in
  if pos >= r.limit then error "truncated input";
  let b = Char.code (String.unsafe_get r.buf pos) in
  r.pos <- pos + 1;
  if b < 0x80 then b else read_raw_varint_slow r b

let[@inline] read_varint r =
  let z = read_raw_varint r in
  (z lsr 1) lxor (- (z land 1))

let[@inline] read_uvarint r =
  let n = read_raw_varint r in
  if n < 0 then error "negative length";
  n

let read_bool r =
  match read_u8 r with
  | 0 -> false
  | 1 -> true
  | t -> error "bad bool tag %d" t

let read_string r =
  let len = read_uvarint r in
  if len > remaining r then
    error "string length %d exceeds remaining %d bytes" len (remaining r);
  let s = String.sub r.buf r.pos len in
  r.pos <- r.pos + len;
  s

let read_option f r =
  match read_u8 r with
  | 0 -> None
  | 1 -> Some (f r)
  | t -> error "bad option tag %d" t

let read_list f r =
  let n = read_uvarint r in
  if n > remaining r then
    error "list count %d exceeds remaining %d bytes" n (remaining r);
  (* Tail-modulo-cons: builds the list in order with no List.rev pass
     and constant stack. The element must be bound before the recursive
     call — OCaml would otherwise evaluate the cons right-to-left. *)
  let[@tail_mod_cons] rec go i =
    if i = 0 then []
    else
      let x = f r in
      x :: go (i - 1)
  in
  go n

(* --- Whole-value helpers ------------------------------------------- *)

let to_string ?cap write v =
  let w = writer ?cap () in
  write w v;
  contents w

let decode_all read s =
  let r = reader s in
  let v = read r in
  expect_end r;
  v

let of_string_opt read s =
  match decode_all read s with v -> Some v | exception Error _ -> None

let of_string_result read s =
  match decode_all read s with
  | v -> Ok v
  | exception Error msg -> Result.Error msg

let of_string_exn = decode_all
