(** Numbered consensus instances with idempotent [propose]/[decided].

    The paper's broadcast layer runs one consensus per round [k]
    (§4.1–§4.2). This functor wraps any {!Consensus_intf.S} implementation
    into an instance manager that:

    - routes wire messages [(k, m)] to instance [k], creating instances on
      demand (a recovering or late process may receive traffic for
      instances it never started — the primitives must be idempotent);
    - answers [proposal]/[decision] queries straight from stable storage,
      which is exactly the "log of proposed and agreed values kept
      internally by Consensus" that the paper's replay procedure parses
      (§4.2 Recovery);
    - supports {e truncation} of instances below a floor once the
      broadcast layer has checkpointed them (§5.1 line (c) / §5.2). A peer
      asking about a truncated instance is told [Truncated { floor }],
      which the broadcast layer treats as a lag signal and resolves via
      state transfer (§5.3). *)

module Make (C : Consensus_intf.S) : sig
  type msg =
    | Inst of int * C.msg  (** message of instance [k] *)
    | Truncated of { floor : int }
        (** "instances below [floor] are gone here; catch up by state" *)

  val pp_msg : Format.formatter -> msg -> unit

  val write_msg : Abcast_util.Wire.writer -> msg -> unit
  (** Wire encoding: instance number + the wrapped implementation's
      {!Consensus_intf.S.write_msg}. *)

  val read_msg : Abcast_util.Wire.reader -> msg
  (** @raise Abcast_util.Wire.Error on malformed input. *)

  type t

  val create :
    msg Abcast_sim.Engine.io ->
    leader:Abcast_fd.Omega.t ->
    on_decide:(int -> Consensus_intf.value -> unit) ->
    on_lag:(int -> unit) ->
    on_behind:(src:int -> unit) ->
    t
  (** [on_decide k v] fires when instance [k] decides at this incarnation;
      [on_lag floor] fires when a peer reports truncation below [floor];
      [on_behind ~src] fires when {e this} process detects that peer [src]
      is asking about an instance we truncated — the broadcast layer must
      then push it a state transfer, or the peer could block forever
      waiting for a consensus that no quorum can still run (§5.3). *)

  val propose : t -> int -> Consensus_intf.value -> unit
  (** Idempotent propose to instance [k] (logs the initial value on first
      call — paper §3.2). Ignored below the truncation floor. *)

  val proposal : t -> int -> Consensus_intf.value option
  (** Logged initial value of instance [k], read from stable storage. *)

  val decision : t -> int -> Consensus_intf.value option
  (** Decided value of instance [k], read from stable storage. *)

  val handle : t -> src:int -> msg -> unit

  val logged_proposal_instances : t -> int list
  (** All instance numbers with a logged proposal, ascending — the replay
      procedure's iteration domain. *)

  val floor : t -> int
  (** Lowest instance whose consensus state is still retained (0 if no
      truncation ever happened). *)

  val truncate_below : t -> int -> unit
  (** Discard all stable consensus state of instances [< k] and raise the
      floor. Only call once the corresponding prefix is covered by a
      durable checkpoint. *)
end
