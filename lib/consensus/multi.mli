(** Numbered consensus instances with idempotent [propose]/[decided].

    The paper's broadcast layer runs one consensus per round [k]
    (§4.1–§4.2). This functor wraps any {!Consensus_intf.S} implementation
    into an instance manager that:

    - routes wire messages [(k, m)] to instance [k], creating instances on
      demand (a recovering or late process may receive traffic for
      instances it never started — the primitives must be idempotent);
    - answers [proposal]/[decision] queries straight from stable storage,
      which is exactly the "log of proposed and agreed values kept
      internally by Consensus" that the paper's replay procedure parses
      (§4.2 Recovery);
    - supports {e truncation} of instances below a floor once the
      broadcast layer has checkpointed them (§5.1 line (c) / §5.2). A peer
      asking about a truncated instance is told [Truncated { floor }],
      which the broadcast layer treats as a lag signal and resolves via
      state transfer (§5.3). *)

module Make (C : Consensus_intf.S) : sig
  type msg =
    | Inst of int * C.msg  (** message of instance [k] *)
    | Truncated of { floor : int }
        (** "instances below [floor] are gone here; catch up by state" *)

  val pp_msg : Format.formatter -> msg -> unit

  val write_msg : Abcast_util.Wire.writer -> msg -> unit
  (** Wire encoding: instance number + the wrapped implementation's
      {!Consensus_intf.S.write_msg}. *)

  val read_msg : Abcast_util.Wire.reader -> msg
  (** @raise Abcast_util.Wire.Error on malformed input. *)

  type t

  val create :
    msg Abcast_sim.Engine.io ->
    leader:Abcast_fd.Omega.t ->
    on_decide:(int -> Consensus_intf.value -> unit) ->
    on_lag:(int -> unit) ->
    on_behind:(src:int -> unit) ->
    t
  (** [on_decide k v] fires when instance [k] decides at this incarnation;
      [on_lag floor] fires when a peer reports truncation below [floor];
      [on_behind ~src] fires when {e this} process detects that peer [src]
      is asking about an instance we truncated — the broadcast layer must
      then push it a state transfer, or the peer could block forever
      waiting for a consensus that no quorum can still run (§5.3). *)

  val propose : t -> int -> Consensus_intf.value -> unit
  (** Idempotent propose to instance [k] (logs the initial value on first
      call — paper §3.2). Ignored below the truncation floor. *)

  val proposal : t -> int -> Consensus_intf.value option
  (** Logged initial value of instance [k], read from stable storage
      (memoized: present values are served from a volatile cache). *)

  val decision : t -> int -> Consensus_intf.value option
  (** Decided value of instance [k], read from stable storage
      (memoized: present values are served from a volatile cache). *)

  val handle : t -> src:int -> msg -> unit

  val logged_proposal_instances : t -> int list
  (** All instance numbers with a logged proposal, ascending — the replay
      procedure's iteration domain. *)

  val floor : t -> int
  (** Lowest instance whose consensus state is still retained (0 if no
      truncation ever happened). *)

  val truncate_below : t -> int -> unit
  (** Discard all stable consensus state of instances [< k] and raise the
      floor. Only call once the corresponding prefix is covered by a
      durable checkpoint. *)

  (** The pipelined sequencer over this instance manager: up to [width]
      instances in flight at once, decisions buffered out of order and
      committed strictly in instance order. The broadcast layer owns the
      apply side — it calls {!Pipeline.ready}/{!Pipeline.commit} in a
      drain loop and feeds {!Pipeline.note_decided} from its
      [on_decide]. The cursor is volatile: recovery re-derives it from
      the durable checkpoint via {!Pipeline.seek}, and {!Pipeline.ready}
      falls back to the stable decision log for instances decided before
      the crash. *)
  module Pipeline : sig
    type multi := t

    type t

    val attach : multi -> width:int -> t
    (** Cursor at instance 0; [width] is clamped to at least 1
        ([width = 1] is exactly the paper's one-instance-at-a-time
        sequencer). *)

    val committed : t -> int
    (** The next instance to commit — the broadcast layer's round
        counter [k]. Instances below it are applied. *)

    val width : t -> int

    val limit : t -> int
    (** [committed + width], exclusive upper bound on the instances that
        may be proposed to right now. *)

    val note_decided : t -> int -> Consensus_intf.value -> unit
    (** Buffer a decision that arrived (possibly out of order) so the
        drain loop can commit it without a storage read. Ignored below
        the cursor. *)

    val ready : t -> Consensus_intf.value option
    (** The decision of instance [committed], if known — from the
        volatile buffer or, failing that, the stable decision log. *)

    val commit : t -> unit
    (** Advance the cursor past [committed] (whose decision the caller
        just applied). *)

    val seek : t -> int -> unit
    (** Jump the cursor forward to [k] (state transfer / recovery
        adopting a checkpoint at round [k]); buffered decisions below
        [k] are dropped. Never moves backwards. *)
  end
end
