module Engine = Abcast_sim.Engine
module Storage = Abcast_sim.Storage
module Metrics = Abcast_sim.Metrics
module Rng = Abcast_util.Rng
open Consensus_intf

let name = "paxos"

let retry_period = ref 8_000

type msg =
  | Prepare of { b : int }
  | Promise of { b : int; accepted : (int * value) option }
  | Reject of { b : int } (* nack carrying the promise that blocked us *)
  | Accept of { b : int; v : value }
  | Accepted of { b : int }
  | Query
  | Decide of { v : value }

let pp_msg ppf = function
  | Prepare { b } -> Format.fprintf ppf "prepare(%d)" b
  | Promise { b; accepted = None } -> Format.fprintf ppf "promise(%d,-)" b
  | Promise { b; accepted = Some (ab, _) } ->
    Format.fprintf ppf "promise(%d,acc@%d)" b ab
  | Reject { b } -> Format.fprintf ppf "reject(%d)" b
  | Accept { b; _ } -> Format.fprintf ppf "accept(%d)" b
  | Accepted { b } -> Format.fprintf ppf "accepted(%d)" b
  | Query -> Format.fprintf ppf "query"
  | Decide _ -> Format.fprintf ppf "decide"

module Wire = Abcast_util.Wire

let write_accepted w (b, v) =
  Wire.write_varint w b;
  Wire.write_string w v

let read_accepted r =
  let b = Wire.read_varint r in
  let v = Wire.read_string r in
  (b, v)

let write_msg w = function
  | Prepare { b } ->
    Wire.write_u8 w 0;
    Wire.write_varint w b
  | Promise { b; accepted } ->
    Wire.write_u8 w 1;
    Wire.write_varint w b;
    Wire.write_option write_accepted w accepted
  | Reject { b } ->
    Wire.write_u8 w 2;
    Wire.write_varint w b
  | Accept { b; v } ->
    Wire.write_u8 w 3;
    Wire.write_varint w b;
    Wire.write_string w v
  | Accepted { b } ->
    Wire.write_u8 w 4;
    Wire.write_varint w b
  | Query -> Wire.write_u8 w 5
  | Decide { v } ->
    Wire.write_u8 w 6;
    Wire.write_string w v

let read_msg r =
  match Wire.read_u8 r with
  | 0 -> Prepare { b = Wire.read_varint r }
  | 1 ->
    let b = Wire.read_varint r in
    let accepted = Wire.read_option read_accepted r in
    Promise { b; accepted }
  | 2 -> Reject { b = Wire.read_varint r }
  | 3 ->
    let b = Wire.read_varint r in
    let v = Wire.read_string r in
    Accept { b; v }
  | 4 -> Accepted { b = Wire.read_varint r }
  | 5 -> Query
  | 6 -> Decide { v = Wire.read_string r }
  | t -> Wire.error "paxos: bad message tag %d" t

type acc_state = { promised : int; accepted : (int * value) option }

(* The per-instance acceptor log: written before every promise/accept
   answer, so its encode is a consensus hot path. *)
let acc_codec =
  ( Wire.to_string (fun w a ->
        Wire.write_varint w a.promised;
        Wire.write_option write_accepted w a.accepted),
    Wire.of_string_opt (fun r ->
        let promised = Wire.read_varint r in
        let accepted = Wire.read_option read_accepted r in
        { promised; accepted }) )

type phase = Idle | Phase1 | Phase2

type t = {
  io : msg Engine.io;
  k : int;
  leader : Abcast_fd.Omega.t;
  on_decide : value -> unit;
  acc_slot : acc_state Storage.Slot.slot;
  mutable acc : acc_state;
  mutable proposal : value option;
  mutable decided : value option;
  mutable round : int; (* our ballot = round * n + self *)
  mutable phase : phase;
  mutable promises : (int * (int * value) option) list;
  mutable accepts : int list;
  mutable pushing : value option; (* value of our ongoing phase 2 *)
  mutable ticking : bool;
  mutable proposed_at : int; (* sim time of our first propose, -1 if none *)
}

let majority t = (t.io.n / 2) + 1

let ballot t = (t.round * t.io.n) + t.io.self

let set_acc t acc =
  t.acc <- acc;
  Storage.Slot.set t.acc_slot acc

let decide t v =
  match t.decided with
  | Some _ -> ()
  | None ->
    t.decided <- Some v;
    Storage.write t.io.store ~layer:Keys.layer ~key:(Keys.decision t.k) v;
    t.phase <- Idle;
    if t.proposed_at >= 0 then begin
      Metrics.observe t.io.metrics ~node:t.io.self "cons.propose_to_decide_us"
        (float_of_int (t.io.now () - t.proposed_at));
      Metrics.observe t.io.metrics ~node:t.io.self "cons.ballots"
        (float_of_int (max 1 t.round))
    end;
    t.io.emit (Printf.sprintf "paxos[%d]: decide" t.k);
    t.io.multisend (Decide { v });
    t.on_decide v

let start_ballot t =
  t.round <- t.round + 1;
  t.phase <- Phase1;
  t.promises <- [];
  t.accepts <- [];
  t.pushing <- None;
  t.io.multisend (Prepare { b = ballot t })

let rec tick t =
  if t.decided = None then begin
    (match t.proposal with
    | Some _ when t.leader () = t.io.self -> start_ballot t
    | _ -> t.io.multisend Query);
    let jitter = Rng.int t.io.rng (!retry_period / 2 + 1) in
    t.io.after (!retry_period + jitter) (fun () -> tick t)
  end
  else t.ticking <- false

let ensure_ticking t =
  if (not t.ticking) && t.decided = None then begin
    t.ticking <- true;
    (* Small random offset desynchronizes competing proposers. *)
    t.io.after (1 + Rng.int t.io.rng (!retry_period / 4 + 1)) (fun () -> tick t)
  end

let create io ~instance ~leader ~on_decide =
  let acc_slot =
    Storage.Slot.make ~codec:acc_codec io.Engine.store ~layer:Keys.layer
      ~key:(Keys.inst instance "paxos.acc")
  in
  let acc =
    match Storage.Slot.get acc_slot with
    | Some a -> a
    | None -> { promised = 0; accepted = None }
  in
  let t =
    {
      io;
      k = instance;
      leader;
      on_decide;
      acc_slot;
      acc;
      proposal = Storage.read io.store (Keys.proposal instance);
      decided = Storage.read io.store (Keys.decision instance);
      round = (match Storage.Slot.get acc_slot with
              | Some a -> (a.promised / io.n) + 1
              | None -> 0);
      phase = Idle;
      promises = [];
      accepts = [];
      pushing = None;
      ticking = false;
      proposed_at = -1;
    }
  in
  (* A proposal restored from the log counts as proposed "now": the
     propose→decide clock then measures this incarnation's completion
     cost, not time spent crashed. *)
  if t.proposal <> None && t.decided = None then begin
    t.proposed_at <- t.io.now ();
    ensure_ticking t
  end;
  t

let propose t v =
  (match t.proposal with
  | Some _ -> () (* P4: the first logged proposal is the one that counts *)
  | None ->
    t.proposal <- Some v;
    if t.proposed_at < 0 then t.proposed_at <- t.io.now ();
    Storage.write t.io.store ~layer:Keys.layer ~key:(Keys.proposal t.k) v);
  if t.decided = None then ensure_ticking t

let proposal t = t.proposal

let decision t = t.decided

let add_promise t src acc =
  if not (List.mem_assoc src t.promises) then
    t.promises <- (src, acc) :: t.promises

let best_accepted promises =
  List.fold_left
    (fun best (_, acc) ->
      match (best, acc) with
      | None, x -> x
      | Some _, None -> best
      | Some (bb, _), Some (ab, _) when ab <= bb -> best
      | Some _, Some x -> Some x)
    None promises

let handle t ~src msg =
  match t.decided with
  | Some v -> ( match msg with Decide _ -> () | _ -> t.io.send src (Decide { v }))
  | None -> (
    match msg with
    | Prepare { b } ->
      if b > t.acc.promised then begin
        set_acc t { t.acc with promised = b };
        t.io.send src (Promise { b; accepted = t.acc.accepted })
      end
      else t.io.send src (Reject { b = t.acc.promised })
    | Promise { b; accepted } ->
      if t.phase = Phase1 && b = ballot t then begin
        add_promise t src accepted;
        if List.length t.promises >= majority t then begin
          let v =
            match best_accepted t.promises with
            | Some (_, v) -> v
            | None -> (
              match t.proposal with
              | Some v -> v
              | None -> assert false (* phase 1 only runs after propose *))
          in
          t.phase <- Phase2;
          t.accepts <- [];
          t.pushing <- Some v;
          t.io.multisend (Accept { b; v })
        end
      end
    | Reject { b } ->
      if b > ballot t then begin
        t.round <- b / t.io.n;
        t.phase <- Idle
      end
    | Accept { b; v } ->
      if b >= t.acc.promised then begin
        set_acc t { promised = b; accepted = Some (b, v) };
        t.io.send src (Accepted { b })
      end
      else t.io.send src (Reject { b = t.acc.promised })
    | Accepted { b } ->
      if t.phase = Phase2 && b = ballot t then begin
        if not (List.mem src t.accepts) then t.accepts <- src :: t.accepts;
        if List.length t.accepts >= majority t then
          match t.pushing with Some v -> decide t v | None -> assert false
      end
    | Query -> () (* nothing to offer: not decided *)
    | Decide { v } -> decide t v)
