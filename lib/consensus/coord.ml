module Engine = Abcast_sim.Engine
module Storage = Abcast_sim.Storage
module Metrics = Abcast_sim.Metrics
module Rng = Abcast_util.Rng
open Consensus_intf

let name = "coord"

let round_timeout = ref 12_000

type msg =
  | Estimate of { r : int; v : value; ts : int }
  | Proposal of { r : int; v : value }
  | Ack of { r : int }
  | Query
  | Decide of { v : value }

let pp_msg ppf = function
  | Estimate { r; ts; _ } -> Format.fprintf ppf "estimate(r%d,ts%d)" r ts
  | Proposal { r; _ } -> Format.fprintf ppf "proposal(r%d)" r
  | Ack { r } -> Format.fprintf ppf "ack(r%d)" r
  | Query -> Format.fprintf ppf "query"
  | Decide _ -> Format.fprintf ppf "decide"

module Wire = Abcast_util.Wire

let write_msg w = function
  | Estimate { r; v; ts } ->
    Wire.write_u8 w 0;
    Wire.write_varint w r;
    Wire.write_string w v;
    (* ts is -1 for a never-locked estimate: zigzag keeps it one byte *)
    Wire.write_varint w ts
  | Proposal { r; v } ->
    Wire.write_u8 w 1;
    Wire.write_varint w r;
    Wire.write_string w v
  | Ack { r } ->
    Wire.write_u8 w 2;
    Wire.write_varint w r
  | Query -> Wire.write_u8 w 3
  | Decide { v } ->
    Wire.write_u8 w 4;
    Wire.write_string w v

let read_msg r =
  match Wire.read_u8 r with
  | 0 ->
    let rr = Wire.read_varint r in
    let v = Wire.read_string r in
    let ts = Wire.read_varint r in
    Estimate { r = rr; v; ts }
  | 1 ->
    let rr = Wire.read_varint r in
    let v = Wire.read_string r in
    Proposal { r = rr; v }
  | 2 -> Ack { r = Wire.read_varint r }
  | 3 -> Query
  | 4 -> Decide { v = Wire.read_string r }
  | t -> Wire.error "coord: bad message tag %d" t

(* Durable: adopted estimate and the round in which it was adopted. Logged
   before acking so a decision quorum survives crashes. *)
type locked = { est : value; ts : int }

let locked_codec =
  ( Wire.to_string (fun w l ->
        Wire.write_string w l.est;
        Wire.write_varint w l.ts),
    Wire.of_string_opt (fun r ->
        let est = Wire.read_string r in
        let ts = Wire.read_varint r in
        { est; ts }) )

type t = {
  io : msg Engine.io;
  k : int;
  on_decide : value -> unit;
  locked_slot : locked Storage.Slot.slot;
  mutable locked : locked option;
  mutable proposal : value option;
  mutable decided : value option;
  mutable round : int;
  mutable estimates : (int * (value * int)) list; (* as coordinator *)
  mutable acks : int list; (* as coordinator *)
  mutable proposed_round : value option; (* our round-r proposal, as coord *)
  mutable timer_round : int; (* detects stale round timers *)
  mutable ticking : bool;
  mutable proposed_at : int; (* sim time of our first propose, -1 if none *)
}

let majority t = (t.io.n / 2) + 1

let coord_of t r = r mod t.io.n

(* The estimate we would send: the locked one if any, else our proposal. *)
let current_estimate t =
  match t.locked with
  | Some { est; ts } -> Some (est, ts)
  | None -> ( match t.proposal with Some v -> Some (v, -1) | None -> None)

let decide t v =
  match t.decided with
  | Some _ -> ()
  | None ->
    t.decided <- Some v;
    Storage.write t.io.store ~layer:Keys.layer ~key:(Keys.decision t.k) v;
    if t.proposed_at >= 0 then begin
      Metrics.observe t.io.metrics ~node:t.io.self "cons.propose_to_decide_us"
        (float_of_int (t.io.now () - t.proposed_at));
      Metrics.observe t.io.metrics ~node:t.io.self "cons.rounds"
        (float_of_int (t.round + 1))
    end;
    t.io.emit (Printf.sprintf "coord[%d]: decide" t.k);
    t.io.multisend (Decide { v });
    t.on_decide v

let timeout_for t r =
  let scale = min 10 (1 + (r / t.io.n)) in
  (!round_timeout * scale) + Rng.int t.io.rng (!round_timeout / 4 + 1)

let rec enter_round t r =
  if t.decided = None then begin
    t.round <- r;
    t.estimates <- [];
    t.acks <- [];
    t.proposed_round <- None;
    (match current_estimate t with
    | Some (v, ts) -> t.io.send (coord_of t r) (Estimate { r; v; ts })
    | None -> t.io.multisend Query);
    arm_timer t r
  end

and arm_timer t r =
  t.timer_round <- r;
  t.io.after (timeout_for t r) (fun () ->
      if t.decided = None && t.timer_round = r && t.round = r then
        enter_round t (r + 1))

let create io ~instance ~leader:_ ~on_decide =
  let locked_slot =
    Storage.Slot.make ~codec:locked_codec io.Engine.store ~layer:Keys.layer
      ~key:(Keys.inst instance "coord.locked")
  in
  let locked = Storage.Slot.get locked_slot in
  let t =
    {
      io;
      k = instance;
      on_decide;
      locked_slot;
      locked;
      proposal = Storage.read io.store (Keys.proposal instance);
      decided = Storage.read io.store (Keys.decision instance);
      round = (match locked with Some { ts; _ } -> max 0 ts | None -> 0);
      estimates = [];
      acks = [];
      proposed_round = None;
      timer_round = -1;
      ticking = false;
      proposed_at = -1;
    }
  in
  (* A restored proposal counts as proposed "now": the propose→decide
     clock measures this incarnation's completion cost. *)
  if t.proposal <> None && t.decided = None then begin
    t.proposed_at <- t.io.now ();
    t.ticking <- true;
    enter_round t t.round
  end;
  t

let propose t v =
  (match t.proposal with
  | Some _ -> ()
  | None ->
    t.proposal <- Some v;
    if t.proposed_at < 0 then t.proposed_at <- t.io.now ();
    Storage.write t.io.store ~layer:Keys.layer ~key:(Keys.proposal t.k) v);
  if t.decided = None && not t.ticking then begin
    t.ticking <- true;
    enter_round t t.round
  end

let proposal t = t.proposal

let decision t = t.decided

(* Joining a higher round when evidence shows others are ahead. *)
let maybe_fast_forward t r = if r > t.round && t.decided = None then enter_round t r

let coordinator_maybe_propose t =
  if
    t.proposed_round = None
    && coord_of t t.round = t.io.self
    && List.length t.estimates >= majority t
  then begin
    let _, (v, _) =
      List.fold_left
        (fun ((_, (_, best_ts)) as best) ((_, (_, ts)) as cand) ->
          if ts > best_ts then cand else best)
        (List.hd t.estimates) (List.tl t.estimates)
    in
    t.proposed_round <- Some v;
    t.io.multisend (Proposal { r = t.round; v })
  end

let handle t ~src msg =
  match t.decided with
  | Some v -> ( match msg with Decide _ -> () | _ -> t.io.send src (Decide { v }))
  | None -> (
    match msg with
    | Estimate { r; v; ts } ->
      maybe_fast_forward t r;
      if r = t.round && coord_of t r = t.io.self then begin
        if not (List.mem_assoc src t.estimates) then
          t.estimates <- (src, (v, ts)) :: t.estimates;
        coordinator_maybe_propose t
      end
    | Proposal { r; v } ->
      maybe_fast_forward t r;
      if r = t.round then begin
        (* Lock before acking: the crash-recovery-critical step. *)
        let l = { est = v; ts = r } in
        t.locked <- Some l;
        Storage.Slot.set t.locked_slot l;
        t.io.send (coord_of t r) (Ack { r })
      end
    | Ack { r } ->
      if r = t.round && coord_of t r = t.io.self then begin
        if not (List.mem src t.acks) then t.acks <- src :: t.acks;
        if List.length t.acks >= majority t then
          match t.proposed_round with
          | Some v -> decide t v
          | None -> () (* acks for a proposal of a previous incarnation *)
      end
    | Query -> ()
    | Decide { v } -> decide t v)
