(** Interface of the Consensus building block (paper §3.2, §3.4).

    The atomic broadcast layer uses consensus strictly as a black box
    through [propose]/[decision]/[on_decide] — the paper's [propose] and
    [decided] primitives. Implementations must solve Uniform Consensus in
    the crash-recovery model:

    - {e Termination}: every good process eventually decides;
    - {e Uniform Validity}: a decided value was proposed by some process;
    - {e Uniform Agreement}: no two processes (good or bad) decide
      differently.

    Idempotence contract (paper §4.1): [propose] may be re-invoked after a
    crash for an instance that already started or finished; the first
    logged proposal wins (property P4), and [decision] keeps answering the
    same value once decided (property P5).

    A process proposes by logging its initial value on stable storage
    (§3.2) — that write is the one the basic atomic broadcast protocol
    counts on as its only log operation. *)

type value = string
(** Proposed/decided values are opaque byte strings; the broadcast layer
    serializes message batches into them. *)

(** Stable-storage key schema shared by all implementations, so that the
    multi-instance manager and the replay procedure can enumerate logged
    proposals and decisions without knowing the implementation. *)
module Keys = struct
  let layer = "consensus"

  let prefix = "cons/"

  let inst k field = Printf.sprintf "cons/%09d/%s" k field

  let proposal k = inst k "proposal"

  let decision k = inst k "decision"

  (* Instance number embedded in a key produced by [inst], if any. *)
  let instance_of_key key =
    if String.length key >= 16 && String.sub key 0 5 = "cons/" then
      int_of_string_opt (String.sub key 5 9)
    else None

  let field_of_key key =
    if String.length key >= 16 && String.sub key 0 5 = "cons/" then
      Some (String.sub key 15 (String.length key - 15))
    else None
end

(** What one consensus implementation must provide. Instances are
    single-shot; numbering and routing is the job of {!Multi}. *)
module type S = sig
  val name : string
  (** Short identifier used in traces and experiment tables. *)

  type msg
  (** Wire messages of this implementation. *)

  val pp_msg : Format.formatter -> msg -> unit

  val write_msg : Abcast_util.Wire.writer -> msg -> unit
  (** Binary wire encoding, composed into the enclosing stack's message
      codec (the whole datagram is framed by the outermost layer). *)

  val read_msg : Abcast_util.Wire.reader -> msg
  (** Inverse of {!write_msg}.
      @raise Abcast_util.Wire.Error on malformed input — the outermost
      decoder catches it and drops the datagram. *)

  type t
  (** One instance at one process (volatile part; the durable part lives
      in the process's stable storage under {!Keys.inst} [instance]). *)

  val create :
    msg Abcast_sim.Engine.io ->
    instance:int ->
    leader:Abcast_fd.Omega.t ->
    on_decide:(value -> unit) ->
    t
  (** (Re)build the instance, reading any durable state left by previous
      incarnations. [on_decide] fires at most once per incarnation, when
      the decision first becomes known to this incarnation {e after}
      creation; an already-logged decision is reported through
      {!decision} instead. *)

  val propose : t -> value -> unit
  (** Idempotent propose. The first call logs the value (the paper's
      proposal log); re-proposals after recovery reuse the logged value
      regardless of the argument. *)

  val proposal : t -> value option
  (** The logged initial value, if this process ever proposed. *)

  val decision : t -> value option
  (** The decided value, if known here. *)

  val handle : t -> src:int -> msg -> unit
  (** Feed an incoming message. *)
end
