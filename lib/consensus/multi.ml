module Engine = Abcast_sim.Engine
module Storage = Abcast_sim.Storage
module Metrics = Abcast_sim.Metrics
open Consensus_intf

let floor_key = "cons.floor"

let truncate_layer = "truncate"

module Make (C : Consensus_intf.S) = struct
  type msg = Inst of int * C.msg | Truncated of { floor : int }

  let pp_msg ppf = function
    | Inst (k, m) -> Format.fprintf ppf "[%d]%a" k C.pp_msg m
    | Truncated { floor } -> Format.fprintf ppf "truncated(<%d)" floor

  module Wire = Abcast_util.Wire

  let write_msg w = function
    | Inst (k, m) ->
      Wire.write_u8 w 0;
      Wire.write_varint w k;
      C.write_msg w m
    | Truncated { floor } ->
      Wire.write_u8 w 1;
      Wire.write_varint w floor

  let read_msg r =
    match Wire.read_u8 r with
    | 0 ->
      let k = Wire.read_varint r in
      let m = C.read_msg r in
      Inst (k, m)
    | 1 -> Truncated { floor = Wire.read_varint r }
    | t -> Wire.error "multi: bad message tag %d" t

  type t = {
    io : msg Engine.io;
    leader : Abcast_fd.Omega.t;
    on_decide : int -> value -> unit;
    on_lag : int -> unit;
    on_behind : src:int -> unit;
    instances : (int, C.t) Hashtbl.t;
    (* instances whose "consensus" span we opened and must close on
       decide — volatile, like the instances themselves *)
    spanned : (int, unit) Hashtbl.t;
    (* Volatile mirrors of the stable proposal/decision log. [proposal]
       and [decision] sit on the broadcast layer's commit loop, which
       under pipelining polls them once per in-flight instance per
       event; going to [Storage] each time costs a key format + backend
       lookup. Only [Some] results are cached (a [None] can turn into
       [Some] at any time), so a hit is always authoritative. *)
    proposals_cache : (int, value) Hashtbl.t;
    decisions_cache : (int, value) Hashtbl.t;
    mutable floor : int;
  }

  let create io ~leader ~on_decide ~on_lag ~on_behind =
    let floor =
      match Storage.read io.Engine.store floor_key with
      | Some s -> int_of_string s
      | None -> 0
    in
    {
      io;
      leader;
      on_decide;
      on_lag;
      on_behind;
      instances = Hashtbl.create 16;
      spanned = Hashtbl.create 8;
      proposals_cache = Hashtbl.create 16;
      decisions_cache = Hashtbl.create 16;
      floor;
    }

  let span_key t k = Printf.sprintf "p%d.k%d" t.io.Engine.self k

  let instance t k =
    match Hashtbl.find_opt t.instances k with
    | Some c -> c
    | None ->
      let io' = Engine.map_io (fun m -> Inst (k, m)) t.io in
      let created_at = t.io.now () in
      let c =
        C.create io' ~instance:k ~leader:t.leader
          ~on_decide:(fun v ->
            (* instance lifetime on this node: from first local contact
               with instance [k] to its decision *)
            Metrics.observe t.io.metrics ~node:t.io.self "cons.instance_us"
              (float_of_int (t.io.now () - created_at));
            if Hashtbl.mem t.spanned k then begin
              Hashtbl.remove t.spanned k;
              t.io.span_end ~stage:"consensus" (span_key t k)
            end;
            Hashtbl.replace t.decisions_cache k v;
            t.on_decide k v)
      in
      Hashtbl.add t.instances k c;
      c

  let propose t k v =
    if k >= t.floor then begin
      let c = instance t k in
      if t.io.trace_on () && C.decision c = None && not (Hashtbl.mem t.spanned k)
      then begin
        Hashtbl.add t.spanned k ();
        t.io.span_begin ~stage:"consensus" (span_key t k)
      end;
      C.propose c v
    end

  let cached_read cache store key k =
    match Hashtbl.find_opt cache k with
    | Some _ as r -> r
    | None -> (
      match Storage.read store key with
      | Some v as r ->
        Hashtbl.replace cache k v;
        r
      | None -> None)

  let proposal t k = cached_read t.proposals_cache t.io.store (Keys.proposal k) k

  let decision t k = cached_read t.decisions_cache t.io.store (Keys.decision k) k

  let handle t ~src = function
    | Truncated { floor } -> t.on_lag floor
    | Inst (k, m) ->
      if k < t.floor && decision t k = None then begin
        t.io.send src (Truncated { floor = t.floor });
        t.on_behind ~src
      end
      else C.handle (instance t k) ~src m

  let logged_proposal_instances t =
    Storage.keys_with_prefix t.io.store Keys.prefix
    |> List.filter_map (fun key ->
           match (Keys.field_of_key key, Keys.instance_of_key key) with
           | Some "proposal", Some k -> Some k
           | _ -> None)
    |> List.sort compare

  let floor t = t.floor

  let truncate_below t k =
    if k > t.floor then begin
      Storage.keys_with_prefix t.io.store Keys.prefix
      |> List.iter (fun key ->
             match Keys.instance_of_key key with
             | Some i when i < k ->
               Storage.delete t.io.store ~layer:truncate_layer key
             | _ -> ());
      let prune tbl =
        Hashtbl.iter (fun i _ -> if i < k then Hashtbl.remove tbl i) (Hashtbl.copy tbl)
      in
      prune t.instances;
      prune t.proposals_cache;
      prune t.decisions_cache;
      t.floor <- k;
      Storage.write t.io.store ~layer:truncate_layer ~key:floor_key
        (string_of_int k)
    end

  (* The pipelined sequencer: instances [committed .. committed+width)
     may run concurrently; decisions are buffered as they arrive (in any
     order) and handed to the broadcast layer strictly in instance order
     through [ready]/[commit]. The cursor is volatile — on recovery the
     broadcast layer re-derives it from its checkpoint and replays
     decisions from the stable log, which [ready] falls back to when the
     volatile buffer has no entry (e.g. right after recovery). *)
  module Pipeline = struct
    type multi = t

    type t = {
      m : multi;
      width : int;
      mutable committed : int;
      decided : (int, value) Hashtbl.t;
    }

    let attach m ~width =
      { m; width = max 1 width; committed = 0; decided = Hashtbl.create 16 }

    let committed p = p.committed

    let width p = p.width

    let limit p = p.committed + p.width

    let note_decided p k v =
      if k >= p.committed then Hashtbl.replace p.decided k v

    let ready p =
      match Hashtbl.find_opt p.decided p.committed with
      | Some _ as r -> r
      | None -> decision p.m p.committed

    let commit p =
      Hashtbl.remove p.decided p.committed;
      p.committed <- p.committed + 1

    let seek p k =
      if k > p.committed then begin
        Hashtbl.iter
          (fun i _ -> if i < k then Hashtbl.remove p.decided i)
          (Hashtbl.copy p.decided);
        p.committed <- k
      end
  end
end
