(** Replicated key-value store.

    A string-keyed store replicated with state-machine replication over
    atomic broadcast — the "replicated data" application of the paper's
    §5.2 (the checkpoint of the store substitutes the log of past
    updates). Commands are built with {!set_cmd}/{!del_cmd} and handed to
    [A-broadcast]; every replica applies them in delivery order. *)

type state
(** Immutable store contents. *)

module Machine : Smr.MACHINE with type state = state
(** The deterministic state machine (for plugging into {!Smr.Make}). *)

module Replica : module type of Smr.Make (Machine)
(** Ready-made SMR replica of the store. *)

type cmd =
  | Set of string * string
  | Del of string
  | Get of string
  | Incr of string
      (** Commands of the store, exposed so routers (e.g.
          {!Partitioned_kv}) can inspect a command's key without applying
          it. [Get] reads without mutating; [Incr] bumps a decimal
          counter cell — deliberately non-idempotent, so a duplicate
          apply is observable (the exactly-once tests rely on it). *)

val set_cmd : key:string -> value:string -> string
(** Command writing [value] under [key]. *)

val del_cmd : key:string -> string
(** Command removing [key]. *)

val get_cmd : key:string -> string
(** Command reading [key] (state unchanged; the value is the reply). *)

val incr_cmd : key:string -> string
(** Command incrementing the counter cell at [key]; reply is the new
    value. A non-numeric existing value restarts the count at 1. *)

val decode_cmd : string -> cmd option
(** Decode an encoded command; [None] for foreign bytes (which
    {!Machine.apply} would ignore). *)

val cmd_key : cmd -> string
(** The key a command touches. *)

val eval : state -> string -> state * string
(** Apply one encoded command and produce its reply string ([""] for
    [Set]/[Del]/foreign bytes, the read value for [Get], the new count
    for [Incr]). [Machine.apply] is [fst] of this. *)

val write_state : Abcast_util.Wire.writer -> state -> unit
(** Wire codec of the contents (sorted bindings — equal states encode
    identically on every replica), for service-layer checkpoints. *)

val read_state : Abcast_util.Wire.reader -> state

val get : state -> string -> string option

val bindings : state -> (string * string) list
(** Sorted contents (for convergence assertions). *)

val size : state -> int

val digest : state -> string
(** Fingerprint of the contents; equal digests across replicas witness
    convergence. *)
