(** Hash-partitioned replicated key-value store for sharded stacks.

    The keyspace is split over the [shards] broadcast groups of a
    {!Abcast_core.Factory.sharded} stack by key hash; each partition is
    an independent {!Kv.Replica} applied in its own group's delivery
    order. Cross-partition total order is deliberately given up — that
    is where the aggregate throughput comes from — but per-key
    operations stay totally ordered because one key always maps to one
    group.

    Protocol for users: encode commands with {!Kv.set_cmd}/{!Kv.del_cmd},
    broadcast each to the group {!route} picks, and wire {!deliver} to
    the group-aware A-deliver upcall of every replica. Replicas
    converge partition-wise: equal {!digest}s witness convergence of the
    whole store. *)

type t
(** One process's partitioned replica set (volatile, like
    {!Smr.Make.t}). *)

val create : shards:int -> t
(** [shards] independent partitions — use the stack's
    {!Abcast_core.Proto.S.shards}. @raise Invalid_argument if
    [shards < 1]. *)

val shards : t -> int

val shard_of_key : shards:int -> string -> int
(** The partition (= broadcast group) owning a key: a deterministic,
    process-independent hash in [\[0, shards)]. *)

val route : t -> string -> int
(** The group an encoded command must be broadcast to ([shard_of_key] of
    its key; group [0] for bytes that do not decode as a command). *)

val deliver : t -> group:int -> Abcast_core.Payload.t -> unit
(** Apply one delivered command to partition [group]. Wire this as the
    group-aware A-deliver upcall. @raise Invalid_argument on a group
    outside [\[0, shards)]. *)

val partition : t -> int -> Kv.state
(** One partition's store contents. *)

val get : t -> string -> string option
(** Read a key from its owning partition. *)

val size : t -> int
(** Total bindings across partitions. *)

val applied : t -> int
(** Total commands applied across partitions. *)

val digest : t -> string
(** Concatenated per-partition digests; equal digests across replicas
    witness convergence of every partition. *)
