(* Hash-partitioned replicated KV over a sharded broadcast stack: the
   keyspace is split across the stack's groups, each partition is an
   independent Kv.Replica applied in its own group's delivery order.
   Correctness rests on two invariants the caller wires together:
   - every command for key k is broadcast to [route t cmd] — so all of
     k's updates share one totally ordered group;
   - [deliver] is called from the group-aware A-deliver upcall, so each
     partition sees exactly its group's sequence, exactly once. *)

type t = { shards : int; replicas : Kv.Replica.t array }

let create ~shards =
  if shards < 1 then invalid_arg "Partitioned_kv.create: shards must be >= 1";
  { shards; replicas = Array.init shards (fun _ -> Kv.Replica.create ()) }

let shards t = t.shards

(* Hashtbl.hash is non-negative, deterministic across processes for
   strings, and independent of Rng state — every replica and every
   client computes the same partition for a key. *)
let shard_of_key ~shards key = Hashtbl.hash key mod shards

let route t data =
  match Kv.decode_cmd data with
  | Some c -> shard_of_key ~shards:t.shards (Kv.cmd_key c)
  | None -> 0

let check_group t group what =
  if group < 0 || group >= t.shards then
    invalid_arg
      (Printf.sprintf "Partitioned_kv.%s: group %d out of [0,%d)" what group
         t.shards)

let deliver t ~group pl =
  check_group t group "deliver";
  Kv.Replica.deliver t.replicas.(group) pl

let partition t group =
  check_group t group "partition";
  Kv.Replica.state t.replicas.(group)

let get t key =
  Kv.get
    (Kv.Replica.state t.replicas.(shard_of_key ~shards:t.shards key))
    key

let size t =
  Array.fold_left (fun acc r -> acc + Kv.size (Kv.Replica.state r)) 0 t.replicas

let applied t =
  Array.fold_left (fun acc r -> acc + Kv.Replica.applied r) 0 t.replicas

let digest t =
  String.concat "|"
    (Array.to_list
       (Array.map (fun r -> Kv.digest (Kv.Replica.state r)) t.replicas))
