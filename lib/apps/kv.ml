module Smap = Map.Make (String)

type state = string Smap.t

type cmd =
  | Set of string * string
  | Del of string
  | Get of string
  | Incr of string

let encode_cmd (c : cmd) = Abcast_sim.Storage.encode c

let set_cmd ~key ~value = encode_cmd (Set (key, value))

let del_cmd ~key = encode_cmd (Del key)

let get_cmd ~key = encode_cmd (Get key)

let incr_cmd ~key = encode_cmd (Incr key)

let decode_cmd data =
  match (Abcast_sim.Storage.decode data : cmd) with
  | c -> Some c
  | exception _ -> None

let cmd_key = function Set (k, _) -> k | Del k -> k | Get k -> k | Incr k -> k

(* Counter cells created by [Incr] store decimal strings; a non-numeric
   value under the key restarts the count deterministically at 0. *)
let int_of_cell = function
  | None -> 0
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0)

let eval state data =
  match (Abcast_sim.Storage.decode data : cmd) with
  | Set (k, v) -> (Smap.add k v state, "")
  | Del k -> (Smap.remove k state, "")
  | Get k -> (state, Option.value (Smap.find_opt k state) ~default:"")
  | Incr k ->
    let n = int_of_cell (Smap.find_opt k state) + 1 in
    (Smap.add k (string_of_int n) state, string_of_int n)
  | exception _ -> (state, "") (* foreign command: ignore deterministically *)

module Machine = struct
  type nonrec state = state

  let name = "kv"

  let initial = Smap.empty

  let apply state data = fst (eval state data)
end

(* Wire codec of the store contents for service-layer checkpoints:
   sorted bindings, so equal states encode to equal bytes on every
   replica. *)
let write_state w (s : state) =
  Abcast_util.Wire.write_list
    (fun w (k, v) ->
      Abcast_util.Wire.write_string w k;
      Abcast_util.Wire.write_string w v)
    w (Smap.bindings s)

let read_state r =
  Abcast_util.Wire.read_list
    (fun r ->
      let k = Abcast_util.Wire.read_string r in
      let v = Abcast_util.Wire.read_string r in
      (k, v))
    r
  |> List.fold_left (fun acc (k, v) -> Smap.add k v acc) Smap.empty

module Replica = Smr.Make (Machine)

let get state k = Smap.find_opt k state

let bindings state = Smap.bindings state

let size state = Smap.cardinal state

let digest state =
  Smap.fold (fun k v acc -> Hashtbl.hash (acc, k, v)) state 0 |> string_of_int
