module Smap = Map.Make (String)

type state = string Smap.t

type cmd = Set of string * string | Del of string

let encode_cmd (c : cmd) = Abcast_sim.Storage.encode c

let set_cmd ~key ~value = encode_cmd (Set (key, value))

let del_cmd ~key = encode_cmd (Del key)

let decode_cmd data =
  match (Abcast_sim.Storage.decode data : cmd) with
  | c -> Some c
  | exception _ -> None

let cmd_key = function Set (k, _) -> k | Del k -> k

module Machine = struct
  type nonrec state = state

  let name = "kv"

  let initial = Smap.empty

  let apply state data =
    match (Abcast_sim.Storage.decode data : cmd) with
    | Set (k, v) -> Smap.add k v state
    | Del k -> Smap.remove k state
    | exception _ -> state (* foreign command: ignore deterministically *)
end

module Replica = Smr.Make (Machine)

let get state k = Smap.find_opt k state

let bindings state = Smap.bindings state

let size state = Smap.cardinal state

let digest state =
  Smap.fold (fun k v acc -> Hashtbl.hash (acc, k, v)) state 0 |> string_of_int
