module Engine = Abcast_sim.Engine
module Payload = Abcast_core.Payload

type msg = Data of Payload.t

let pp_msg ppf (Data p) = Format.fprintf ppf "rb(%a)" Payload.pp_id p.id

type t = {
  io : msg Engine.io;
  deliver : Payload.t -> unit;
  seen : (Payload.id, unit) Hashtbl.t;
  mutable seq : int;
  mutable count : int;
}

let create io ~deliver = { io; deliver; seen = Hashtbl.create 64; seq = 0; count = 0 }

let accept t (p : Payload.t) =
  if not (Hashtbl.mem t.seen p.id) then begin
    Hashtbl.add t.seen p.id ();
    (* Relay before delivering: first reception forwards to all. *)
    t.io.multisend (Data p);
    t.count <- t.count + 1;
    t.deliver p
  end

let broadcast t data =
  let id =
    { Payload.origin = t.io.self; boot = t.io.incarnation; seq = t.seq }
  in
  t.seq <- t.seq + 1;
  let p = Payload.make id data in
  accept t p;
  id

let handle t ~src:_ (Data p) = accept t p

let delivered_count t = t.count
