module Engine = Abcast_sim.Engine
module Storage = Abcast_sim.Storage
module Metrics = Abcast_sim.Metrics

let volatile_io (io : 'm Engine.io) =
  (* A fresh store per incarnation, accounted against a metrics registry
     nobody reads: writes become volatile and invisible — the crash-stop
     protocol semantically performs no logging. *)
  let store = Storage.create ~metrics:(Metrics.create ()) ~node:io.self () in
  { io with store }

let stack ?(consensus = `Paxos) ?gossip_period () : Abcast_core.Proto.t =
  let make (module C : Abcast_consensus.Consensus_intf.S) =
    let module P = Abcast_core.Protocol.Make (C) in
    (module struct
      let name = "ct-stop/" ^ C.name

      type msg = P.msg

      let msg_size = P.msg_size

      let write_msg = P.write_msg

      let read_msg = P.read_msg

      let encode_msg = P.encode_msg

      let decode_msg = P.decode_msg

      let msg_group _ = 0

      type t = P.Basic.t

      let create io ~deliver =
        P.Basic.create ?gossip_period (volatile_io io)
          ~on_deliver:(fun p -> deliver ~group:0 p)

      let broadcast_blocks = true

      let handler = P.Basic.handler

      let broadcast = P.Basic.broadcast

      let round = P.Basic.round

      let delivered_count = P.Basic.delivered_count

      let delivered_tail = P.Basic.delivered_tail

      let delivery_vc = P.Basic.delivery_vc

      let unordered_count = P.Basic.unordered_count

      include Abcast_core.Proto.Single_group (struct
        type nonrec t = t

        let broadcast = broadcast
        let round = round
        let delivered_count = delivered_count
        let delivered_tail = delivered_tail
        let delivery_vc = delivery_vc
        let unordered_count = unordered_count
      end)
    end : Abcast_core.Proto.S)
  in
  match consensus with
  | `Paxos -> make (module Abcast_consensus.Paxos)
  | `Coord -> make (module Abcast_consensus.Coord)
