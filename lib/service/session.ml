(* Replicated session/reply table: the deterministic state machine the
   service layer applies in total order, wrapping the Kv store.

   Every replica of a group applies the same payload sequence to an
   instance of this machine, so dedup decisions, reply caching, session
   eviction and leader-view transitions are identical everywhere —
   including a replica that recovers from its WAL checkpoint and replays
   only the Agreed tail. Nothing here reads a clock or an RNG. *)

module Envelope = Abcast_core.Envelope
module Kv = Abcast_apps.Kv
module Wire = Abcast_util.Wire

type entry = {
  mutable floor : int;  (* highest applied seq of the session *)
  mutable reply : string;  (* cached reply of [floor] *)
  mutable touched : int;  (* apply index of the last touch, for LRU *)
}

type t = {
  mutable kv : Kv.state;
  sessions : (int, entry) Hashtbl.t;
  mutable applied : int;  (* payloads applied, the service apply index *)
  mutable leader : int;  (* leader view; -1 = none yet *)
  max_sessions : int;
}

type event =
  | Request_done of {
      session : int;
      seq : int;
      status : Envelope.status;
      reply : string;
      index : int;
    }
  | Marker of {
      kind : [ `Claim | `Lease ];
      node : int;
      stamp : int;
      granted : bool;
      index : int;
    }
  | Foreign of { index : int }

let create ?(max_sessions = 4096) () =
  if max_sessions < 1 then invalid_arg "Session.create: max_sessions >= 1";
  {
    kv = Kv.Machine.initial;
    sessions = Hashtbl.create 64;
    applied = 0;
    leader = -1;
    max_sessions;
  }

(* LRU by apply index — deterministic because the index is a function of
   the (identical) delivery sequence; ties broken by the smaller id. *)
let evict_excess t =
  while Hashtbl.length t.sessions > t.max_sessions do
    let victim =
      Hashtbl.fold
        (fun id e acc ->
          match acc with
          | Some (bid, be)
            when be.touched < e.touched
                 || (be.touched = e.touched && bid < id) ->
            acc
          | _ -> Some (id, e))
        t.sessions None
    in
    match victim with
    | Some (id, _) -> Hashtbl.remove t.sessions id
    | None -> ()
  done

let apply t data =
  t.applied <- t.applied + 1;
  let index = t.applied in
  match Envelope.decode data with
  | Some (Request { session; seq; cmd }) -> (
    match Hashtbl.find_opt t.sessions session with
    | Some e when seq < e.floor ->
      (* below the floor: the reply was truncated with the floor move —
         a correct sequential client never retries this seq *)
      e.touched <- index;
      Request_done { session; seq; status = Gap; reply = ""; index }
    | Some e when seq = e.floor ->
      e.touched <- index;
      Request_done { session; seq; status = Cached; reply = e.reply; index }
    | e ->
      let kv, reply = Kv.eval t.kv cmd in
      t.kv <- kv;
      (match e with
      | Some e ->
        e.floor <- seq;
        e.reply <- reply;
        e.touched <- index
      | None ->
        Hashtbl.replace t.sessions session { floor = seq; reply; touched = index };
        evict_excess t);
      Request_done { session; seq; status = Applied; reply; index })
  | Some (Claim { node; stamp }) ->
    t.leader <- node;
    Marker { kind = `Claim; node; stamp; granted = true; index }
  | Some (Lease { node; stamp }) ->
    (* renewal extends an existing reign only: it is granted iff [node]
       is already the leader at this point of the total order *)
    Marker { kind = `Lease; node; stamp; granted = t.leader = node; index }
  | None ->
    (* foreign payload (bare Kv command, experiment bytes): apply it to
       the store the way an unsessioned replica would *)
    t.kv <- Kv.Machine.apply t.kv data;
    Foreign { index }

let kv t = t.kv

let get t key = Kv.get t.kv key

let leader t = t.leader

let applied t = t.applied

let floor t session =
  Option.map (fun e -> e.floor) (Hashtbl.find_opt t.sessions session)

let cached_reply t session =
  Option.map (fun e -> e.reply) (Hashtbl.find_opt t.sessions session)

let session_count t = Hashtbl.length t.sessions

let sessions t =
  Hashtbl.fold (fun id e acc -> (id, e.floor) :: acc) t.sessions []
  |> List.sort compare

(* --- checkpoint codec ------------------------------------------------ *)

let version = 1

let write w t =
  Wire.write_u8 w version;
  Wire.write_varint w t.applied;
  Wire.write_varint w t.leader;
  let ss =
    Hashtbl.fold (fun id e acc -> (id, e) :: acc) t.sessions []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Wire.write_list
    (fun w (id, e) ->
      Wire.write_varint w id;
      Wire.write_varint w e.floor;
      Wire.write_string w e.reply;
      Wire.write_varint w e.touched)
    w ss;
  Kv.write_state w t.kv

let read_into t r =
  let v = Wire.read_u8 r in
  if v <> version then Wire.error "session checkpoint: bad version %d" v;
  t.applied <- Wire.read_varint r;
  t.leader <- Wire.read_varint r;
  Hashtbl.reset t.sessions;
  let ss =
    Wire.read_list
      (fun r ->
        let id = Wire.read_varint r in
        let floor = Wire.read_varint r in
        let reply = Wire.read_string r in
        let touched = Wire.read_varint r in
        (id, { floor; reply; touched }))
      r
  in
  List.iter (fun (id, e) -> Hashtbl.replace t.sessions id e) ss;
  t.kv <- Kv.read_state r

let encode t = Wire.to_string ~cap:256 (fun w () -> write w t) ()

let install t blob = ignore (Wire.of_string_exn (fun r -> read_into t r) blob)

let hooks t =
  {
    Abcast_core.Protocol.checkpoint = (fun () -> encode t);
    install = (fun blob -> install t blob);
  }

let digest t = string_of_int (Hashtbl.hash (encode t))
