(** Open-loop load generator for the service layer.

    Poisson arrivals at a target aggregate rate over thousands of client
    sessions (each session strictly sequential, so the exactly-once
    [(session, seq)] discipline holds), three op classes — writes
    ([Incr] on the client's own key), linearizable reads and stale
    reads — with per-class latency histograms, retry-on-deadline with
    the {e same} (session, seq), and a final exactly-once audit built on
    the non-idempotence of [Incr]. *)

type config = {
  clients : int;
  rate : float;  (** target aggregate arrivals per second *)
  duration : float;  (** seconds of open-loop issue *)
  write_pct : int;  (** % of ops that are writes *)
  lin_pct : int;  (** % that are linearizable reads; rest stale *)
  timeout : float;  (** per-attempt retry deadline, seconds *)
  seed : int;
}

val default_config : config
(** 200 clients, 500 ops/s for 5 s, 50% writes / 30% lin / 20% stale,
    0.5 s retry deadline. *)

type report = {
  wall : float;
  issued : int;
  completed : int;
  retries : int;
  shed : int;  (** arrivals dropped because every client was busy *)
  not_ready : int;  (** read-index attempts bounced for lack of a lease *)
  failed : int;  (** ops still incomplete when the drain grace expired *)
  write : Abcast_util.Histogram.summary;  (** latencies, µs *)
  lin : Abcast_util.Histogram.summary;
  stale : Abcast_util.Histogram.summary;
  writes_issued : int array;  (** per client *)
  writes_acked : int array;
}

val client_key : int -> string
(** The key client [i] increments — [c<i>]. *)

val run : ?history:Abcast_sim.History.t -> Service.t -> config -> report
(** Drive the service from the calling thread for [duration] seconds,
    then drain in-flight ops (retrying) for up to [3 * timeout + 1]
    more. The service must be {!Service.start}ed. Safe to run while the
    harness crashes/recovers nodes.

    With [history], every completed op is appended to the recorder
    (session, kind, key, invocation/response wall-clock, result value) —
    the client-side half of the [doctor --audit] evidence. The caller
    owns the recorder ({!Abcast_sim.History.close} it after the run). *)

val check_exactly_once : Service.t -> report -> node:int -> string list
(** Audit a (quiesced) replica at [node] against the run: for every
    client, the counter cell must satisfy
    [acked <= value <= issued] — returns one violation string per
    breach, [[]] when exactly-once held. *)
