(** Client-facing service front on the live runtime.

    Wraps a {!Abcast_live.Runtime} cluster with the session layer: every
    node runs one {!Session} machine per broadcast group (registered as
    protocol app state, so it is checkpointed into the WAL, survives
    Agreed-prefix compaction and rides state transfer), and this module
    adds the volatile per-node front: waiters keyed by [(session, seq)],
    and the read-lease state of the read-index protocol. Group routing is
    {!Abcast_apps.Partitioned_kv.shard_of_key} of the command's key, so a
    sharded service partitions the keyspace exactly like the PR-7
    partitioned store. *)

type t

type read_mode = Broadcast | Read_index | Stale

val read_mode_of_string : string -> read_mode option
val read_mode_to_string : read_mode -> string

type config = {
  n : int;  (** processes *)
  shards : int;  (** broadcast groups (1 = unsharded) *)
  read_mode : read_mode;  (** how linearizable reads are served *)
  lease_ms : float;  (** read-index lease window *)
  max_sessions : int;  (** session-table cap per group replica *)
  window : int;  (** consensus pipeline window of the stack *)
}

val default_config : config
(** [n = 3], [shards = 1], [Broadcast] reads, 200 ms lease, 4096
    sessions, window 4. *)

type read_result = Value of string | Not_ready

val create :
  ?base_port:int ->
  ?dir:string ->
  ?backend:[ `Files | `Wal ] ->
  ?fsync:Abcast_store.Durable.policy ->
  ?trace_sample:int ->
  ?flight_cap:int ->
  ?metrics_port:int ->
  ?metrics_interval:float ->
  ?metrics_out:string ->
  config ->
  t
(** Build the throughput stack (sharded when [shards > 1]) with the
    session machines wired in as group app state, and start the live
    cluster. [dir]/[backend]/[fsync]/[flight_cap]/[metrics_port]/
    [metrics_interval]/[metrics_out] (JSONL snapshots with size-based
    rotation) as in
    {!Abcast_live.Runtime.create} (the Prometheus dump additionally
    carries this layer's [abcast_service_request_us] per-class
    histograms, labelled [class="write"|"lin"|"stale"] and by shard
    [group]); [trace_sample] as in
    {!Abcast_core.Factory.throughput} (every k-th broadcast carries a
    causal trace id, stamped into each node's flight recorder at every
    stage — including this layer's submit/ack/lease events).
    Call {!start} afterwards to begin lease maintenance (read-index
    mode only). *)

val start : t -> unit
(** In read-index mode: claim leadership for the current claimant
    (default node 0) on every group and start the renewal thread
    (a Lease — or Claim, when leadership was lost — per group every
    quarter lease window). No-op otherwise. *)

val submit :
  t ->
  node:int ->
  session:int ->
  seq:int ->
  cmd:string ->
  (Abcast_core.Envelope.status -> string -> unit) ->
  unit
(** Asynchronously submit one encoded {!Abcast_apps.Kv} command through
    the session layer at [node] (no-op if down — the caller's retry
    deadline covers it). The callback fires in the delivering node's
    thread when the request is applied {e and} ackable (in read-index
    mode only the leader in view acks); keep it short and non-blocking.
    Re-submitting the same [(session, seq)] replaces the waiter — the
    table dedups, so a retry of an applied request acks with the cached
    reply and is never applied twice. *)

val abandon : t -> node:int -> session:int -> seq:int -> key:string -> unit
(** Drop the waiter of a request being retried elsewhere. *)

val read_stale : t -> node:int -> key:string -> read_result
(** Local read of [node]'s replica — no ordering guarantee. Always
    [Value] (missing keys read as [""]). *)

val read_index : t -> node:int -> key:string -> read_result
(** Linearizable read without a broadcast: [Value] iff [node] holds a
    live, quarantine-cleared lease for the key's group and its applied
    index has reached the lease's confirmation point; [Not_ready]
    otherwise (caller redirects to the claimant or retries). *)

val holds_lease : t -> node:int -> group:int -> bool

val claim : t -> node:int -> unit
(** Make [node] the claimant and broadcast a Claim on every group —
    call on failover after crashing the previous claimant. The new
    leaseholder serves reads only after a full lease window has passed
    from the claim's apply (the quarantine gate). *)

val claimant : t -> int

val stop_maintenance : t -> unit
(** Stop the lease renewal thread (markers stop flowing — required
    before comparing replica digests, which include the apply index).
    {!start} restarts it. *)

val runtime : t -> Abcast_live.Runtime.t
(** The underlying cluster, for crash/recover/metrics. *)

val config : t -> config

val key_group : t -> string -> int
(** Broadcast group serving a key (0 when unsharded) — the routing
    {!submit} applies to the command's key. *)

val observe_latency : t -> cls:string -> group:int -> float -> unit
(** Record one request latency sample (µs) under op class [cls]
    (["write"] / ["lin"] / ["stale"]) and [group]. The per-(class, group)
    histograms are appended to the runtime's Prometheus dump as
    [abcast_service_request_us{class=...,group=...}] — the load
    generator feeds this; embedders can too. Thread-safe. *)

(** {2 Verification accessors} — meaningful on a quiesced cluster. *)

val value : t -> node:int -> key:string -> string
val floor : t -> node:int -> session:int -> key:string -> int option
val applied : t -> node:int -> int
val digest : t -> node:int -> string

val shutdown : t -> unit
(** Stop lease maintenance and the whole cluster. *)
