(* Open-loop load generator for the service layer.

   Arrivals are a Poisson process at the target aggregate rate: the
   driver draws exponential inter-arrival gaps and issues every op whose
   arrival time has passed, regardless of how many are still in flight —
   unlike a closed loop, a slow server does not slow the offered load,
   it grows the latency tail (the coordinated-omission point Ring Paxos
   makes against closed-loop echo tests). Each op is bound to one client
   session; sessions are strictly sequential (seq n+1 is issued only
   after n completed or was abandoned), so an arrival landing on a busy
   client picks the next idle one, and sheds only when all are busy.

   Completions fire in node threads; everything mutable here is guarded
   by one generator lock, taken briefly on both sides. Latencies are
   recorded in microseconds into one histogram per op class. *)

module Histogram = Abcast_util.Histogram
module Envelope = Abcast_core.Envelope
module Kv = Abcast_apps.Kv
module History = Abcast_sim.History

type config = {
  clients : int;
  rate : float;  (* target aggregate arrivals per second *)
  duration : float;  (* seconds of open-loop issue *)
  write_pct : int;  (* % of ops that are writes (Incr on own key) *)
  lin_pct : int;  (* % that are linearizable reads; rest are stale *)
  timeout : float;  (* per-attempt retry deadline, seconds *)
  seed : int;
}

let default_config =
  {
    clients = 200;
    rate = 500.;
    duration = 5.;
    write_pct = 50;
    lin_pct = 30;
    timeout = 0.5;
    seed = 7;
  }

type report = {
  wall : float;
  issued : int;
  completed : int;
  retries : int;
  shed : int;
  not_ready : int;
  failed : int;
  write : Histogram.summary;
  lin : Histogram.summary;
  stale : Histogram.summary;
  writes_issued : int array;  (* per client *)
  writes_acked : int array;
}

let client_key i = "c" ^ string_of_int i

type op_kind =
  | Write
  | Lin_submit  (* linearizable read via broadcast (Get through session) *)
  | Lin_local  (* linearizable read via read-index, may retry locally *)

type client = {
  id : int;
  mutable seq : int;  (* last issued session seq *)
  mutable busy : bool;
  mutable op : int;  (* issue counter: stale completions are ignored *)
  mutable kind : op_kind;
  mutable rkey : string;  (* key of the in-flight read *)
  mutable rkey_idx : int;  (* integer index of [rkey] (history capture) *)
  mutable issue_t : float;
  mutable deadline : float;
  mutable target : int;
}

type gen = {
  svc : Service.t;
  cfg : config;
  hist : History.t option;  (* per-op completion capture (g.lm held) *)
  lm : Mutex.t;
  rng : Random.State.t;
  clients : client array;
  hw : Histogram.t;
  hl : Histogram.t;
  hs : Histogram.t;
  mutable issued : int;
  mutable completed : int;
  mutable retries : int;
  mutable shed : int;
  mutable not_ready : int;
  mutable failed : int;
  writes_issued : int array;
  writes_acked : int array;
}

let up_node g =
  let rt = Service.runtime g.svc in
  let n = Abcast_live.Runtime.n rt in
  let start = Random.State.int g.rng n in
  let rec go i =
    if i = n then start (* all down: broadcast will no-op, retry covers *)
    else
      let cand = (start + i) mod n in
      if Abcast_live.Runtime.is_up rt cand then cand else go (i + 1)
  in
  go 0

(* Writes and broadcast reads go through sessions; in read-index mode
   only the leaseholder acks them, so they must target the claimant. *)
let pick_target g =
  match (Service.config g.svc).read_mode with
  | Service.Read_index -> Service.claimant g.svc
  | Service.Broadcast | Service.Stale -> up_node g

(* Result value of a completed op for the history log: the Kv counter
   replies are decimal strings, anything else (missing key, non-counter
   reply) records as -1 = "no value". *)
let int_value s = match int_of_string_opt s with Some v -> v | None -> -1

let record g c status ~value =
  let now = Unix.gettimeofday () in
  let lat_us = (now -. c.issue_t) *. 1e6 in
  let h, cls =
    match c.kind with
    | Write -> (g.hw, "write")
    | Lin_submit | Lin_local -> (g.hl, "lin")
  in
  Histogram.add h lat_us;
  let key = match c.kind with Write -> client_key c.id | _ -> c.rkey in
  Service.observe_latency g.svc ~cls ~group:(Service.key_group g.svc key)
    lat_us;
  g.completed <- g.completed + 1;
  if c.kind = Write then g.writes_acked.(c.id) <- g.writes_acked.(c.id) + 1;
  (match g.hist with
  | Some hist ->
    let kind =
      match c.kind with
      | Write -> History.kind_write
      | Lin_submit | Lin_local ->
        (* whole-service stale mode serves "lin"-class reads with no
           ordering guarantee: exclude them from the real-time check *)
        if (Service.config g.svc).read_mode = Service.Stale then
          History.kind_stale
        else History.kind_lin
    in
    History.record hist
      {
        History.client = c.id;
        kind;
        key = (match c.kind with Write -> c.id | _ -> c.rkey_idx);
        seq = c.seq;
        t_inv = int_of_float (c.issue_t *. 1e6);
        t_resp = int_of_float (now *. 1e6);
        value;
        ok = (match status with
             | Envelope.Applied | Envelope.Cached -> true
             | Envelope.Gap -> false);
      }
  | None -> ());
  c.busy <- false

let completion g c op status reply =
  Mutex.lock g.lm;
  if c.busy && c.op = op then record g c status ~value:(int_value reply);
  Mutex.unlock g.lm

(* g.lm held *)
let submit_current g c =
  let cmd =
    match c.kind with
    | Write -> Kv.incr_cmd ~key:(client_key c.id)
    | Lin_submit -> Kv.get_cmd ~key:c.rkey
    | Lin_local -> assert false
  in
  let op = c.op in
  Service.submit g.svc ~node:c.target ~session:c.id ~seq:c.seq ~cmd
    (completion g c op)

(* g.lm held. Returns [true] if the read completed. *)
let try_lin_local g c =
  match Service.read_index g.svc ~node:(Service.claimant g.svc) ~key:c.rkey with
  | Service.Value v ->
    record g c Envelope.Applied ~value:(int_value v);
    true
  | Service.Not_ready ->
    g.not_ready <- g.not_ready + 1;
    false

let issue g now =
  (* find an idle client, scanning from a random start *)
  let nclients = Array.length g.clients in
  let start = Random.State.int g.rng nclients in
  let rec find i =
    if i = nclients then None
    else
      let c = g.clients.((start + i) mod nclients) in
      if c.busy then find (i + 1) else Some c
  in
  match find 0 with
  | None -> g.shed <- g.shed + 1
  | Some c ->
    g.issued <- g.issued + 1;
    c.busy <- true;
    c.op <- c.op + 1;
    c.issue_t <- now;
    c.deadline <- now +. g.cfg.timeout;
    c.target <- pick_target g;
    let r = Random.State.int g.rng 100 in
    if r < g.cfg.write_pct then begin
      c.kind <- Write;
      c.seq <- c.seq + 1;
      g.writes_issued.(c.id) <- g.writes_issued.(c.id) + 1;
      submit_current g c
    end
    else begin
      c.rkey_idx <- Random.State.int g.rng (Array.length g.clients);
      c.rkey <- client_key c.rkey_idx;
      if r < g.cfg.write_pct + g.cfg.lin_pct then begin
        match (Service.config g.svc).read_mode with
        | Service.Broadcast ->
          c.kind <- Lin_submit;
          c.seq <- c.seq + 1;
          submit_current g c
        | Service.Read_index ->
          c.kind <- Lin_local;
          ignore (try_lin_local g c : bool)
        | Service.Stale ->
          (* the whole service runs stale reads: serve locally but
             still account the op as a linearizable-class read *)
          c.kind <- Lin_local;
          (match Service.read_stale g.svc ~node:(up_node g) ~key:c.rkey with
          | Service.Value v -> record g c Envelope.Applied ~value:(int_value v)
          | Service.Not_ready -> assert false)
      end
      else begin
        (* stale read: local, completes immediately *)
        c.kind <- Lin_local;
        (match Service.read_stale g.svc ~node:(up_node g) ~key:c.rkey with
        | Service.Value v ->
          let done_t = Unix.gettimeofday () in
          let lat_us = (done_t -. now) *. 1e6 in
          Histogram.add g.hs lat_us;
          Service.observe_latency g.svc ~cls:"stale"
            ~group:(Service.key_group g.svc c.rkey) lat_us;
          g.completed <- g.completed + 1;
          (match g.hist with
          | Some hist ->
            History.record hist
              {
                History.client = c.id;
                kind = History.kind_stale;
                key = c.rkey_idx;
                seq = c.seq;
                t_inv = int_of_float (now *. 1e6);
                t_resp = int_of_float (done_t *. 1e6);
                value = int_value v;
                ok = true;
              }
          | None -> ());
          c.busy <- false
        | Service.Not_ready -> assert false)
      end
    end

(* g.lm held: retry every in-flight op past its deadline, and poll
   pending read-index reads. *)
let reap g now =
  Array.iter
    (fun c ->
      if c.busy then
        match c.kind with
        | Lin_local ->
          if try_lin_local g c then ()
          else if now > c.deadline then begin
            g.retries <- g.retries + 1;
            c.deadline <- now +. g.cfg.timeout
          end
        | Write | Lin_submit ->
          if now > c.deadline then begin
            g.retries <- g.retries + 1;
            Service.abandon g.svc ~node:c.target ~session:c.id ~seq:c.seq
              ~key:
                (match c.kind with Write -> client_key c.id | _ -> c.rkey);
            c.target <- pick_target g;
            c.deadline <- now +. g.cfg.timeout;
            submit_current g c
          end)
    g.clients

let run ?history svc (cfg : config) =
  if cfg.clients < 1 then invalid_arg "Loadgen.run: clients >= 1";
  if cfg.rate <= 0. then invalid_arg "Loadgen.run: rate > 0";
  let g =
    {
      svc;
      cfg;
      hist = history;
      lm = Mutex.create ();
      rng = Random.State.make [| cfg.seed |];
      clients =
        Array.init cfg.clients (fun id ->
            {
              id;
              seq = 0;
              busy = false;
              op = 0;
              kind = Write;
              rkey = "";
              rkey_idx = 0;
              issue_t = 0.;
              deadline = 0.;
              target = 0;
            });
      hw = Histogram.create ();
      hl = Histogram.create ();
      hs = Histogram.create ();
      issued = 0;
      completed = 0;
      retries = 0;
      shed = 0;
      not_ready = 0;
      failed = 0;
      writes_issued = Array.make cfg.clients 0;
      writes_acked = Array.make cfg.clients 0;
    }
  in
  let t0 = Unix.gettimeofday () in
  let stop_at = t0 +. cfg.duration in
  let next = ref t0 in
  let gap () = -.log (1. -. Random.State.float g.rng 1.) /. cfg.rate in
  let last_reap = ref t0 in
  while Unix.gettimeofday () < stop_at do
    let now = Unix.gettimeofday () in
    Mutex.lock g.lm;
    (* issue every arrival whose time has come (open loop: no waiting
       on completions) *)
    while !next <= now do
      issue g now;
      next := !next +. gap ()
    done;
    if now -. !last_reap > 0.002 then begin
      last_reap := now;
      reap g now
    end;
    Mutex.unlock g.lm;
    let sleep = min (!next -. Unix.gettimeofday ()) 0.001 in
    if sleep > 0. then Thread.delay sleep
  done;
  (* drain: no new arrivals, keep retrying until idle or grace expires *)
  let grace = stop_at +. (3. *. cfg.timeout) +. 1. in
  let busy () =
    Mutex.lock g.lm;
    let b = Array.exists (fun c -> c.busy) g.clients in
    Mutex.unlock g.lm;
    b
  in
  while busy () && Unix.gettimeofday () < grace do
    Mutex.lock g.lm;
    reap g (Unix.gettimeofday ());
    Mutex.unlock g.lm;
    Thread.delay 0.005
  done;
  Mutex.lock g.lm;
  Array.iter
    (fun c ->
      if c.busy then begin
        g.failed <- g.failed + 1;
        c.busy <- false
      end)
    g.clients;
  let report =
    {
      wall = Unix.gettimeofday () -. t0;
      issued = g.issued;
      completed = g.completed;
      retries = g.retries;
      shed = g.shed;
      not_ready = g.not_ready;
      failed = g.failed;
      write = Histogram.summary g.hw;
      lin = Histogram.summary g.hl;
      stale = Histogram.summary g.hs;
      writes_issued = g.writes_issued;
      writes_acked = g.writes_acked;
    }
  in
  Mutex.unlock g.lm;
  report

(* Exactly-once audit against a quiesced replica: client i only ever
   increments its own key, so the counter cell must sit between the acks
   it received and the requests it issued — below the acks means a lost
   acked write, above the issues means a duplicate apply. *)
let check_exactly_once svc (report : report) ~node =
  let violations = ref [] in
  Array.iteri
    (fun i issued ->
      let acked = report.writes_acked.(i) in
      let v =
        match
          int_of_string_opt (Service.value svc ~node ~key:(client_key i))
        with
        | Some n -> n
        | None -> 0
      in
      if v < acked then
        violations :=
          Printf.sprintf
            "client %d: %d acked writes but counter=%d (lost acked write)" i
            acked v
          :: !violations;
      if v > issued then
        violations :=
          Printf.sprintf
            "client %d: counter=%d exceeds %d issued writes (duplicate apply)"
            i v issued
          :: !violations)
    report.writes_issued;
  List.rev !violations
