(** Replicated session/reply table.

    The deterministic state machine behind the service layer: applied to
    the totally ordered payload sequence of one broadcast group, it
    deduplicates client requests by [(session, seq)], caches the latest
    reply per session, applies inner {!Abcast_apps.Kv} commands, and
    tracks the leader view the read-index protocol consults. Determinism
    is the contract — no clocks, no randomness — so every replica of a
    group (including one recovering from a WAL checkpoint plus Agreed
    tail replay) makes identical dedup and eviction decisions. *)

type t

(** What one {!apply} did, for the live front-end to act on (complete a
    waiter, grant a lease). Purely informational: the machine state
    transition is already done. *)
type event =
  | Request_done of {
      session : int;
      seq : int;
      status : Abcast_core.Envelope.status;
      reply : string;
      index : int;
    }
  | Marker of {
      kind : [ `Claim | `Lease ];
      node : int;
      stamp : int;
      granted : bool;  (** [Lease] only renews if [node] already leads *)
      index : int;  (** apply index — the read-index confirmation point *)
    }
  | Foreign of { index : int }
      (** non-service payload, applied straight to the store *)

val create : ?max_sessions:int -> unit -> t
(** Fresh machine. [max_sessions] (default 4096) caps the session table:
    beyond it the least-recently-touched session (LRU by apply index —
    deterministic across replicas) is evicted, truncating its cached
    reply. *)

val apply : t -> string -> event
(** Apply one delivered payload's bytes. A [Request] at [seq <=] the
    session's floor is {e not} re-applied: equal to the floor returns
    the cached reply ([Cached]), below it returns [Gap]. *)

val kv : t -> Abcast_apps.Kv.state
val get : t -> string -> string option

val leader : t -> int
(** Current leader view ([-1] before any [Claim]). *)

val applied : t -> int
(** Apply index: payloads applied so far (checkpoint-carried). *)

val floor : t -> int -> int option
(** Highest applied seq of a session, if the session is still resident. *)

val cached_reply : t -> int -> string option

val session_count : t -> int

val sessions : t -> (int * int) list
(** Resident [(session, floor)] pairs, sorted. *)

val hooks : t -> Abcast_core.Protocol.app
(** Checkpoint/install hooks (Wire codec, sorted sessions — equal states
    encode identically) for registering the machine as protocol app
    state, so it survives Agreed-prefix compaction and rides state
    transfer. *)

val encode : t -> string
val install : t -> string -> unit

val digest : t -> string
(** Fingerprint of the full machine state (store, sessions, leader,
    index); equal digests across replicas witness convergence. *)
