(* Client-facing service front on the live runtime.

   One [front] per (node, group) pair owns that replica's session
   machine, the waiters of locally submitted requests, and the node's
   read-lease state for the group. Session machines are (re)created by
   the group-aware app factory at every incarnation, so a recovered node
   reinstalls its table from the WAL checkpoint and replays only the
   Agreed tail — while its volatile lease state is deliberately dropped:
   a fresh incarnation can never serve a read-index read before a new
   claim runs the full quarantine gate.

   Locking: each front has one mutex; completion callbacks fire outside
   it. The only cross-front state (the marker stamp counter, the
   claimant id) sits behind the service-wide lock. Lock order:
   service lock, then front lock — never the reverse. *)

module Runtime = Abcast_live.Runtime
module Envelope = Abcast_core.Envelope
module Flight = Abcast_sim.Flight
module Histogram = Abcast_util.Histogram
module Kv = Abcast_apps.Kv
module Pkv = Abcast_apps.Partitioned_kv

type read_mode = Broadcast | Read_index | Stale

let read_mode_of_string = function
  | "broadcast" -> Some Broadcast
  | "read-index" -> Some Read_index
  | "stale" -> Some Stale
  | _ -> None

let read_mode_to_string = function
  | Broadcast -> "broadcast"
  | Read_index -> "read-index"
  | Stale -> "stale"

type config = {
  n : int;
  shards : int;
  read_mode : read_mode;
  lease_ms : float;
  max_sessions : int;
  window : int;
}

let default_config =
  {
    n = 3;
    shards = 1;
    read_mode = Broadcast;
    lease_ms = 200.;
    max_sessions = 4096;
    window = 4;
  }

type read_result = Value of string | Not_ready

type front = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable machine : Session.t;
  waiters : (int * int, Envelope.status -> string -> unit) Hashtbl.t;
  pending : (int, float) Hashtbl.t;  (* our stamp -> wall time pre-send *)
  mutable lease_until : float;  (* wall clock; 0. = no lease *)
  mutable gate_until : float;  (* claim quarantine: serve only after *)
  mutable confirmed : int;  (* apply index at our last granted marker *)
}

type t = {
  cfg : config;
  rt : Runtime.t;
  fronts : front array array;  (* node -> group *)
  lease_s : float;
  sm : Mutex.t;
  mutable claimant : int;
  mutable stamp_ctr : int;
  mutable stopping : bool;
  mutable maint : Thread.t option;
  lat_mu : Mutex.t;
  lat : (string * int, Histogram.t) Hashtbl.t;
      (* request latency per (class, group), exported through the
         runtime's Prometheus endpoint with class/group labels *)
}

(* Slack added to the claim quarantine: covers the (shared-clock harness:
   zero) inter-node clock skew plus the gettimeofday granularity. *)
let gate_epsilon = 0.005

let mk_front () =
  {
    fm = Mutex.create ();
    fc = Condition.create ();
    machine = Session.create ();
    waiters = Hashtbl.create 64;
    pending = Hashtbl.create 8;
    lease_until = 0.;
    gate_until = 0.;
    confirmed = 0;
  }

let group_of_key ~shards key =
  if shards <= 1 then 0 else Pkv.shard_of_key ~shards key

(* ---- per-class request latency (write / lin / stale) ----------------- *)

let observe_latency t ~cls ~group us =
  Mutex.lock t.lat_mu;
  let h =
    match Hashtbl.find_opt t.lat (cls, group) with
    | Some h -> h
    | None ->
      let h = Histogram.create () in
      Hashtbl.add t.lat (cls, group) h;
      h
  in
  Histogram.add h us;
  Mutex.unlock t.lat_mu

(* Prometheus rendering of the latency table, appended to the runtime's
   dump via [set_prom_extra]. Histograms are copied under the lock so
   rendering never races an [observe_latency] from a client thread. *)
let render_latency t buf =
  Mutex.lock t.lat_mu;
  let cells =
    Hashtbl.fold (fun k h acc -> (k, Histogram.copy h) :: acc) t.lat []
    |> List.sort compare
  in
  Mutex.unlock t.lat_mu;
  if cells <> [] then begin
    let pn = "abcast_service_request_us" in
    Buffer.add_string buf
      (Printf.sprintf
         "# HELP %s service request latency by op class
# TYPE %s histogram
"
         pn pn);
    List.iter
      (fun ((cls, group), h) ->
        let lbl = Printf.sprintf "class=\"%s\",group=\"%d\"" cls group in
        let cum = ref 0 in
        List.iter
          (fun (bound, count) ->
            if Float.is_finite bound then begin
              cum := !cum + count;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{%s,le=\"%.6g\"} %d\n" pn lbl bound
                   !cum)
            end)
          (Histogram.buckets h);
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{%s,le=\"+Inf\"} %d\n" pn lbl
             (Histogram.count h));
        Buffer.add_string buf
          (Printf.sprintf "%s_sum{%s} %.6f\n" pn lbl (Histogram.sum h));
        Buffer.add_string buf
          (Printf.sprintf "%s_count{%s} %d\n" pn lbl (Histogram.count h)))
      cells
  end

let group_of_cmd ~shards cmd =
  match Kv.decode_cmd cmd with
  | Some c -> group_of_key ~shards (Kv.cmd_key c)
  | None -> 0

(* Runs in the delivering node's thread for every A-delivered payload of
   (node, group): advance the machine, then act on the event. *)
let on_payload cfg fronts ~flight ~now ~node ~group (pl : Abcast_core.Payload.t)
    =
  let fr = fronts.(node).(group) in
  Mutex.lock fr.fm;
  let ev = Session.apply fr.machine pl.data in
  let fire =
    match ev with
    | Session.Request_done { session; seq; status; reply; _ } ->
      (* Read-index mode acks a request only while this node is the
         leader in view at the request's apply point: a non-leader's ack
         could race a leader's lease read that has not yet applied the
         request (see DESIGN.md, "Service layer"). *)
      let ack =
        match cfg.read_mode with
        | Read_index -> Session.leader fr.machine = node
        | Broadcast | Stale -> true
      in
      if ack then (
        match Hashtbl.find_opt fr.waiters (session, seq) with
        | Some k ->
          Hashtbl.remove fr.waiters (session, seq);
          Some (k, status, reply)
        | None -> None)
      else None
    | Session.Marker { kind; node = mn; stamp; granted; index } ->
      if granted then
        (* one event per observing node: the doctor cross-checks that a
           Lease renewal is only ever granted to the current floor
           holder ([b] packs kind and grant: claim = bit 1) *)
        Flight.record (flight node) ~time:(now ()) ~node ~group ~boot:0
          ~stage:Flight.lease ~trace:0 ~a:mn
          ~b:((if kind = `Claim then 2 else 0) lor 1);
      (if mn = node then (
         (match Hashtbl.find_opt fr.pending stamp with
         | Some t0 when granted ->
           (* t0 was stamped before the broadcast left, so
              t0 + lease underestimates the true window *)
           fr.lease_until <- t0 +. cfg.lease_ms /. 1000.;
           fr.confirmed <- index;
           if kind = `Claim then
             (* quarantine: an earlier leader's lease expires at most
                lease after the wall time it broadcast its last granted
                marker, which precedes this apply on every clock *)
             fr.gate_until <-
               Unix.gettimeofday () +. (cfg.lease_ms /. 1000.) +. gate_epsilon
         | _ -> ());
         Hashtbl.remove fr.pending stamp)
       else if kind = `Claim then
         (* someone else claimed: our lease (if any) is void *)
         fr.lease_until <- 0.);
      Condition.broadcast fr.fc;
      None
    | Session.Foreign _ -> None
  in
  Mutex.unlock fr.fm;
  match fire with
  | Some (k, status, reply) ->
    (match ev with
    | Session.Request_done { session; seq; _ } ->
      Flight.record (flight node) ~time:(now ()) ~node ~group ~boot:0
        ~stage:Flight.ack ~trace:pl.trace ~a:session ~b:seq
    | _ -> ());
    k status reply
  | None -> ()

let create ?base_port ?dir ?backend ?fsync ?trace_sample ?flight_cap
    ?metrics_port ?metrics_interval ?metrics_out (cfg : config) =
  if cfg.n < 1 then invalid_arg "Service.create: n >= 1";
  if cfg.shards < 1 then invalid_arg "Service.create: shards >= 1";
  let fronts =
    Array.init cfg.n (fun _ -> Array.init cfg.shards (fun _ -> mk_front ()))
  in
  let group_app_factory ~node ~group =
    let fr = fronts.(node).(group) in
    let machine = Session.create ~max_sessions:cfg.max_sessions () in
    Mutex.lock fr.fm;
    fr.machine <- machine;
    (* fresh incarnation: waiters of the previous incarnation can never
       complete here, and volatile lease state must not survive *)
    Hashtbl.reset fr.waiters;
    Hashtbl.reset fr.pending;
    fr.lease_until <- 0.;
    fr.gate_until <- 0.;
    fr.confirmed <- 0;
    Mutex.unlock fr.fm;
    let hooks = Session.hooks machine in
    let hooks =
      {
        Abcast_core.Protocol.checkpoint =
          (fun () ->
            Mutex.lock fr.fm;
            let s = hooks.checkpoint () in
            Mutex.unlock fr.fm;
            s);
        install =
          (fun blob ->
            Mutex.lock fr.fm;
            hooks.install blob;
            Mutex.unlock fr.fm);
      }
    in
    (hooks, fun _pl -> ())
  in
  let stack =
    let inner =
      Abcast_core.Factory.throughput ~window:cfg.window ?trace_sample
        ~group_app_factory ()
    in
    if cfg.shards = 1 then inner
    else Abcast_core.Factory.sharded ~shards:cfg.shards inner
  in
  (* on_deliver needs the runtime's flight recorders, which exist only
     after [Runtime.create] returns; bridge the cycle with refs the
     first delivery can only ever see initialized (node threads publish
     ops after create). *)
  let flight_ref = ref (fun (_ : int) -> Flight.disabled) in
  let now_ref = ref (fun () -> 0) in
  let rt =
    Runtime.create stack ~n:cfg.n ?base_port ?dir ?backend ?fsync ?flight_cap
      ?metrics_port ?metrics_interval ?metrics_out
      ~on_deliver:(fun ~node ~group pl ->
        on_payload cfg fronts ~flight:!flight_ref ~now:!now_ref ~node ~group pl)
      ()
  in
  (flight_ref := fun i -> Runtime.flight rt i);
  (now_ref := fun () -> Runtime.now_us rt);
  let t =
    {
      cfg;
      rt;
      fronts;
      lease_s = cfg.lease_ms /. 1000.;
      sm = Mutex.create ();
      claimant = 0;
      stamp_ctr = 0;
      stopping = false;
      maint = None;
      lat_mu = Mutex.create ();
      lat = Hashtbl.create 8;
    }
  in
  Runtime.set_prom_extra rt (fun buf -> render_latency t buf);
  t

let runtime t = t.rt
let config t = t.cfg
let key_group t key = group_of_key ~shards:t.cfg.shards key

let claimant t =
  Mutex.lock t.sm;
  let c = t.claimant in
  Mutex.unlock t.sm;
  c

let next_stamp t =
  Mutex.lock t.sm;
  t.stamp_ctr <- t.stamp_ctr + 1;
  let s = t.stamp_ctr in
  Mutex.unlock t.sm;
  s

(* Drop pending stamps whose marker evidently got lost — bounds the
   table; a grant arriving after this is simply ignored (conservative:
   we only ever fail to take a lease we could have taken). *)
let prune_pending t fr now =
  Hashtbl.iter
    (fun stamp t0 ->
      if now -. t0 > 10. *. t.lease_s then Hashtbl.remove fr.pending stamp)
    (Hashtbl.copy fr.pending)

let send_marker t ~node ~group kind =
  let stamp = next_stamp t in
  let fr = t.fronts.(node).(group) in
  let now = Unix.gettimeofday () in
  Mutex.lock fr.fm;
  prune_pending t fr now;
  Hashtbl.replace fr.pending stamp now;
  Mutex.unlock fr.fm;
  let env =
    match kind with
    | `Claim -> Envelope.Claim { node; stamp }
    | `Lease -> Envelope.Lease { node; stamp }
  in
  Runtime.broadcast ~group t.rt ~node (Envelope.encode env)

let claim t ~node =
  Mutex.lock t.sm;
  t.claimant <- node;
  Mutex.unlock t.sm;
  for g = 0 to t.cfg.shards - 1 do
    send_marker t ~node ~group:g `Claim
  done

(* Lease maintenance: the claimant renews each group's lease every
   quarter window — Lease while it leads, Claim to (re)take the floor. *)
let maintenance_loop t =
  while not t.stopping do
    Thread.delay (t.lease_s /. 4.);
    if not t.stopping then begin
      let c = claimant t in
      if Runtime.is_up t.rt c then
        for g = 0 to t.cfg.shards - 1 do
          let fr = t.fronts.(c).(g) in
          Mutex.lock fr.fm;
          let leads = Session.leader fr.machine = c in
          Mutex.unlock fr.fm;
          send_marker t ~node:c ~group:g (if leads then `Lease else `Claim)
        done
    end
  done

let start t =
  if t.cfg.read_mode = Read_index && t.maint = None then begin
    t.stopping <- false;
    claim t ~node:(claimant t);
    t.maint <- Some (Thread.create maintenance_loop t)
  end

let stop_maintenance t =
  t.stopping <- true;
  (match t.maint with Some th -> Thread.join th | None -> ());
  t.maint <- None

let submit t ~node ~session ~seq ~cmd k =
  let group = group_of_cmd ~shards:t.cfg.shards cmd in
  let fr = t.fronts.(node).(group) in
  Mutex.lock fr.fm;
  Hashtbl.replace fr.waiters (session, seq) k;
  Mutex.unlock fr.fm;
  Flight.record (Runtime.flight t.rt node) ~time:(Runtime.now_us t.rt) ~node
    ~group ~boot:0 ~stage:Flight.submit ~trace:0 ~a:session ~b:seq;
  Runtime.broadcast ~group t.rt ~node
    (Envelope.encode (Envelope.Request { session; seq; cmd }))

let abandon t ~node ~session ~seq ~key =
  let group = group_of_key ~shards:t.cfg.shards key in
  let fr = t.fronts.(node).(group) in
  Mutex.lock fr.fm;
  Hashtbl.remove fr.waiters (session, seq);
  Mutex.unlock fr.fm

let read_stale t ~node ~key =
  let fr = t.fronts.(node).(group_of_key ~shards:t.cfg.shards key) in
  Mutex.lock fr.fm;
  let v = Session.get fr.machine key in
  Mutex.unlock fr.fm;
  Value (Option.value v ~default:"")

(* Linearizable read without a broadcast: serve locally iff this node
   holds a live lease for the key's group, is past the claim quarantine,
   and has applied at least up to the lease's confirmation index. *)
let read_index t ~node ~key =
  let fr = t.fronts.(node).(group_of_key ~shards:t.cfg.shards key) in
  let now = Unix.gettimeofday () in
  Mutex.lock fr.fm;
  let ok =
    Session.leader fr.machine = node
    && now < fr.lease_until
    && now >= fr.gate_until
    && Session.applied fr.machine >= fr.confirmed
  in
  let v = if ok then Some (Session.get fr.machine key) else None in
  Mutex.unlock fr.fm;
  match v with
  | Some v -> Value (Option.value v ~default:"")
  | None -> Not_ready

let holds_lease t ~node ~group =
  let fr = t.fronts.(node).(group) in
  let now = Unix.gettimeofday () in
  Mutex.lock fr.fm;
  let ok =
    Session.leader fr.machine = node
    && now < fr.lease_until
    && now >= fr.gate_until
  in
  Mutex.unlock fr.fm;
  ok

(* --- verification accessors (quiesced cluster) ----------------------- *)

let value t ~node ~key =
  match read_stale t ~node ~key with Value v -> v | Not_ready -> ""

let floor t ~node ~session ~key =
  let fr = t.fronts.(node).(group_of_key ~shards:t.cfg.shards key) in
  Mutex.lock fr.fm;
  let f = Session.floor fr.machine session in
  Mutex.unlock fr.fm;
  f

let applied t ~node =
  Array.fold_left
    (fun acc fr ->
      Mutex.lock fr.fm;
      let a = Session.applied fr.machine in
      Mutex.unlock fr.fm;
      acc + a)
    0 t.fronts.(node)

let digest t ~node =
  String.concat "|"
    (Array.to_list
       (Array.map
          (fun fr ->
            Mutex.lock fr.fm;
            let d = Session.digest fr.machine in
            Mutex.unlock fr.fm;
            d)
          t.fronts.(node)))

let shutdown t =
  stop_maintenance t;
  Runtime.shutdown t.rt
