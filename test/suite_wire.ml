(* The binary wire codec: seeded round-trip properties (encode ∘ decode =
   id) for every boundary-crossing type, rejection of truncated/garbage
   buffers, and an end-to-end equivalence sweep showing that routing every
   message through the codec changes nothing about what gets delivered. *)

open Helpers
module Wire = Abcast_util.Wire
module Vclock = Abcast_core.Vclock
module Agreed = Abcast_core.Agreed
module Batch = Abcast_core.Batch
module Protocol = Abcast_core.Protocol
module Proto = Abcast_core.Proto
module Factory = Abcast_core.Factory
module Paxos = Abcast_consensus.Paxos
module Coord = Abcast_consensus.Coord
module Heartbeat = Abcast_fd.Heartbeat
module P = Protocol.Make (Paxos)
module PC = Protocol.Make (Coord)

(* --- Generators ------------------------------------------------------ *)

(* Ints with the boundary values the zigzag varint must survive. *)
let int_gen =
  QCheck.Gen.(
    frequency
      [
        (6, small_signed_int);
        (2, int);
        (1, oneofl [ 0; 1; -1; max_int; min_int; max_int - 1; min_int + 1 ]);
      ])

let nat_gen = QCheck.Gen.(frequency [ (6, small_nat); (1, oneofl [ 0; 1 ]) ])

let data_gen =
  QCheck.Gen.(
    frequency [ (5, string_size (int_bound 40)); (1, return "") ])

let id_gen =
  QCheck.Gen.(
    map3
      (fun origin boot seq -> { Payload.origin; boot; seq })
      int_gen int_gen int_gen)

module Trace_ctx = Abcast_core.Trace_ctx

(* Mostly-unsampled (the live default), with sampled contexts across the
   full packed range. *)
let trace_gen =
  QCheck.Gen.(
    frequency
      [
        (3, return Trace_ctx.none);
        ( 2,
          map2
            (fun node stamp -> Trace_ctx.make ~node ~stamp)
            (int_bound Trace_ctx.max_node)
            (frequency
               [
                 (4, small_nat);
                 (1, oneofl [ 0; 1; Trace_ctx.max_stamp ]);
               ]) );
      ])

let payload_gen =
  QCheck.Gen.(
    map3
      (fun id data trace -> Payload.make ~trace id data)
      id_gen data_gen trace_gen)

(* Valid vclock: distinct (origin, boot) streams with their max seq. *)
let streams_gen =
  QCheck.Gen.(
    map
      (fun entries ->
        entries
        |> List.map (fun ((o, b), s) -> ((o land 0xff, b land 0xff), s))
        |> List.sort_uniq (fun (k1, _) (k2, _) -> compare k1 k2))
      (small_list (pair (pair nat_gen nat_gen) nat_gen)))

let vclock_gen = QCheck.Gen.map Vclock.of_streams streams_gen

module Audit = Abcast_core.Audit

let cert_gen =
  QCheck.Gen.(
    map3
      (fun c_boot c_len c_hash -> { Audit.c_boot; c_len; c_hash })
      nat_gen nat_gen nat_gen)

let cert_opt_gen = QCheck.Gen.(frequency [ (1, return None); (2, map Option.some cert_gen) ])

let repr_gen =
  QCheck.Gen.(
    map2
      (fun (base_app, base_len, vc, tail) base_chain ->
        { Agreed.base_app; base_len; base_chain; vc; tail })
      (quad (option data_gen) nat_gen vclock_gen (small_list payload_gen))
      nat_gen)

let paxos_gen : Paxos.msg QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map (fun b -> Paxos.Prepare { b }) nat_gen;
        map2
          (fun b accepted -> Paxos.Promise { b; accepted })
          nat_gen
          (option (pair nat_gen data_gen));
        map (fun b -> Paxos.Reject { b }) nat_gen;
        map2 (fun b v -> Paxos.Accept { b; v }) nat_gen data_gen;
        map (fun b -> Paxos.Accepted { b }) nat_gen;
        return Paxos.Query;
        map (fun v -> Paxos.Decide { v }) data_gen;
      ])

let coord_gen : Coord.msg QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        (* ts = -1 is a real protocol value ("never adopted"): the codec
           must handle negative timestamps. *)
        map3
          (fun r v ts -> Coord.Estimate { r; v; ts })
          nat_gen data_gen
          (oneofl [ -1; 0; 1; 17 ]);
        map2 (fun r v -> Coord.Proposal { r; v }) nat_gen data_gen;
        map (fun r -> Coord.Ack { r }) nat_gen;
        return Coord.Query;
        map (fun v -> Coord.Decide { v }) data_gen;
      ])

let msg_gen : P.msg QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun (k, cert) len unordered -> P.Gossip { k; len; unordered; cert })
          (pair nat_gen cert_opt_gen)
          nat_gen (small_list payload_gen);
        map3
          (fun (k, cert) len summary -> P.Digest { k; len; summary; cert })
          (pair nat_gen cert_opt_gen)
          nat_gen
          (small_list (triple nat_gen nat_gen int_gen));
        map (fun ids -> P.Need { ids }) (small_list id_gen);
        map3
          (fun k floor agreed -> P.State { k; floor; agreed })
          nat_gen nat_gen repr_gen;
        map2 (fun k m -> P.Cons (P.M.Inst (k, m))) nat_gen paxos_gen;
        map (fun floor -> P.Cons (P.M.Truncated { floor })) nat_gen;
        map (fun epoch -> P.Fd (Heartbeat.Beat { epoch })) nat_gen;
      ])

(* --- Structural equality (Vclock is a map: compare via its listing) --- *)

let repr_equal (a : Agreed.repr) (b : Agreed.repr) =
  a.base_app = b.base_app
  && a.base_len = b.base_len
  && a.base_chain = b.base_chain
  && Vclock.streams a.vc = Vclock.streams b.vc
  && a.tail = b.tail

let msg_equal (a : P.msg) (b : P.msg) =
  match (a, b) with
  | P.State s1, P.State s2 ->
    s1.k = s2.k && s1.floor = s2.floor && repr_equal s1.agreed s2.agreed
  | _ -> a = b

(* --- Round-trip properties ------------------------------------------- *)

let roundtrips write read equal v =
  match Wire.of_string_opt read (Wire.to_string write v) with
  | Some v' -> equal v v'
  | None -> false

let prop name gen p = QCheck.Test.make ~name ~count:300 (QCheck.make gen) p

let roundtrip_props =
  [
    prop "varint roundtrips (full int range)" int_gen
      (roundtrips Wire.write_varint Wire.read_varint ( = ));
    prop "payload id roundtrips" id_gen
      (roundtrips Payload.write_id Payload.read_id ( = ));
    prop "payload roundtrips" payload_gen
      (roundtrips Payload.write Payload.read ( = ));
    prop "trace context roundtrips" trace_gen (fun t ->
        t = Trace_ctx.none
        || roundtrips Trace_ctx.write Trace_ctx.read Trace_ctx.equal t);
    prop "unsampled payloads carry zero trace bytes" (QCheck.Gen.pair id_gen data_gen)
      (fun (id, data) ->
        let plain = Wire.to_string Payload.write (Payload.make id data) in
        let traced =
          Wire.to_string Payload.write
            (Payload.make ~trace:(Trace_ctx.make ~node:3 ~stamp:9) id data)
        in
        String.length traced > String.length plain);
    prop "every strict prefix of a traced payload is rejected" payload_gen
      (fun pl ->
        let s = Wire.to_string Payload.write pl in
        let ok = ref true in
        for len = 0 to String.length s - 1 do
          if
            Wire.of_string_opt Payload.read (String.sub s 0 len) <> None
          then ok := false
        done;
        !ok);
    prop "trace-context decode of arbitrary bytes never raises"
      QCheck.Gen.(string_size (int_bound 16))
      (fun s ->
        match Wire.of_string_opt Trace_ctx.read s with
        | Some t -> Trace_ctx.is_sampled t
        | None -> true);
    prop "vclock roundtrips" streams_gen (fun streams ->
        let vc = Vclock.of_streams streams in
        roundtrips Vclock.write Vclock.read
          (fun a b -> Vclock.streams a = Vclock.streams b)
          vc
        && Vclock.streams vc = streams);
    prop "agreed repr roundtrips" repr_gen
      (roundtrips Agreed.write_repr Agreed.read_repr repr_equal);
    prop "batch decode inverts encode" (QCheck.Gen.small_list payload_gen)
      (fun ps ->
        Batch.decode_opt (Batch.encode ps) = Some (Payload.sort_batch ps));
    prop "paxos msg roundtrips" paxos_gen
      (roundtrips Paxos.write_msg Paxos.read_msg ( = ));
    prop "coord msg roundtrips" coord_gen
      (roundtrips Coord.write_msg Coord.read_msg ( = ));
    prop "protocol msg roundtrips" msg_gen (fun m ->
        match P.decode_msg (P.encode_msg m) with
        | Some m' -> msg_equal m m'
        | None -> false);
    prop "checkpoint roundtrips" (QCheck.Gen.pair nat_gen repr_gen)
      (fun (k, repr) ->
        match Protocol.decode_checkpoint (Protocol.encode_checkpoint (k, repr))
        with
        | Some (k', repr') -> k = k' && repr_equal repr repr'
        | None -> false);
  ]

(* --- Order-audit chains and certificates (PR 10) ---------------------- *)

let chain ids = List.fold_left Audit.mix Audit.empty ids

let audit_props =
  [
    prop "order certificate roundtrips" cert_gen
      (roundtrips Audit.write_cert Audit.read_cert ( = ));
    prop "every strict prefix of a certificate is rejected" cert_gen
      (fun c ->
        let s = Wire.to_string Audit.write_cert c in
        let ok = ref true in
        for len = 0 to String.length s - 1 do
          if Wire.of_string_opt Audit.read_cert (String.sub s 0 len) <> None
          then ok := false
        done;
        !ok);
    prop "chain values are non-negative" (QCheck.Gen.small_list id_gen)
      (fun ids -> chain ids >= 0);
    prop "equal delivery prefixes yield equal chains at every position"
      (QCheck.Gen.small_list id_gen)
      (fun ids ->
        (* two nodes folding the same sequence independently *)
        let a = ref Audit.empty and b = ref Audit.empty in
        List.for_all
          (fun id ->
            a := Audit.mix !a id;
            b := Audit.mix !b id;
            !a = !b)
          ids);
    prop "transposing two distinct deliveries changes the chain"
      QCheck.Gen.(
        triple (small_list id_gen) (pair id_gen id_gen) (small_list id_gen))
      (fun (pre, (x, y), post) ->
        x = y || chain (pre @ [ x; y ] @ post) <> chain (pre @ [ y; x ] @ post));
    prop "chains are boot-epoch-scoped"
      QCheck.Gen.(pair (small_list id_gen) id_gen)
      (fun (pre, id) ->
        (* the same (origin, seq) redelivered by a later incarnation is
           a different identity and must hash differently *)
        chain (pre @ [ id ])
        <> chain (pre @ [ { id with Payload.boot = id.Payload.boot + 1 } ]));
    prop "window covers exactly the last cap positions"
      QCheck.Gen.(pair (int_range 1 16) (int_range 1 64))
      (fun (cap, len) ->
        let w = Audit.window ~cap () in
        for pos = 1 to len do
          Audit.note w ~pos ~hash:(pos * 7)
        done;
        let ok = ref true in
        for pos = 1 to len do
          let expect =
            if pos > len - min cap len then Some (pos * 7) else None
          in
          if Audit.hash_at w ~pos <> expect then ok := false
        done;
        !ok);
    prop "check: match in window, mismatch on altered hash, unknown outside"
      QCheck.Gen.(pair (int_range 1 16) (int_range 1 64))
      (fun (cap, len) ->
        let w = Audit.window ~cap () in
        for pos = 1 to len do
          Audit.note w ~pos ~hash:(pos * 7)
        done;
        let cert pos hash = { Audit.c_boot = 0; c_len = pos; c_hash = hash } in
        Audit.check w (cert len (len * 7)) = `Match
        && Audit.check w (cert len ((len * 7) + 1)) = `Mismatch
        && Audit.check w (cert (len + 1) 0) = `Unknown
        && (cap >= len || Audit.check w (cert (len - cap) 0) = `Unknown));
    prop "a position gap restarts the window"
      QCheck.Gen.(int_range 2 16)
      (fun cap ->
        let w = Audit.window ~cap () in
        Audit.note w ~pos:1 ~hash:11;
        Audit.note w ~pos:2 ~hash:22;
        (* state transfer jumps the frontier: old positions are no
           longer comparable evidence *)
        Audit.note w ~pos:10 ~hash:33;
        Audit.hash_at w ~pos:2 = None
        && Audit.hash_at w ~pos:10 = Some 33);
  ]

(* --- Service envelope codecs (PR 8) ---------------------------------- *)

module Envelope = Abcast_core.Envelope

let envelope_gen =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun session seq cmd -> Envelope.Request { session; seq; cmd })
          nat_gen int_gen data_gen;
        map2 (fun node stamp -> Envelope.Claim { node; stamp }) nat_gen int_gen;
        map2 (fun node stamp -> Envelope.Lease { node; stamp }) nat_gen int_gen;
      ])

let reply_gen =
  QCheck.Gen.(
    map
      (fun (r_session, r_seq, st, data) ->
        let status =
          match st with
          | 0 -> Envelope.Applied
          | 1 -> Envelope.Cached
          | _ -> Envelope.Gap
        in
        { Envelope.r_session; r_seq; status; data })
      (quad nat_gen int_gen (int_bound 2) data_gen))

let envelope_props =
  [
    prop "service envelope roundtrips" envelope_gen (fun e ->
        Envelope.decode (Envelope.encode e) = Some e);
    prop "service reply roundtrips" reply_gen (fun r ->
        Envelope.decode_reply (Envelope.encode_reply r) = Some r);
    prop "every strict prefix of an envelope is rejected" envelope_gen
      (fun e ->
        let s = Envelope.encode e in
        let ok = ref true in
        for len = 0 to String.length s - 1 do
          if Envelope.decode (String.sub s 0 len) <> None then ok := false
        done;
        !ok);
    prop "envelope trailing garbage is rejected" envelope_gen (fun e ->
        Envelope.decode (Envelope.encode e ^ "\x00") = None);
    prop "envelope decode of arbitrary bytes never raises"
      QCheck.Gen.(string_size (int_bound 64))
      (fun s ->
        match Envelope.decode s with
        | Some _ | None -> Envelope.decode_reply s = Envelope.decode_reply s);
    prop "bare kv commands are not service envelopes" data_gen (fun key ->
        let cmd = Abcast_apps.Kv.set_cmd ~key ~value:"v" in
        (not (Envelope.is_service cmd)) && Envelope.decode cmd = None);
  ]

(* --- Rejection: truncation, garbage, hostile input ------------------- *)

(* Every encoding is prefix-free at the top level (length/count prefixes +
   expect_end), so every strict prefix of a valid message must be
   rejected — this is what makes a truncated datagram safe to drop. *)
let truncation_props =
  [
    prop "every strict prefix of a msg encoding is rejected" msg_gen
      (fun m ->
        let s = P.encode_msg m in
        let ok = ref true in
        for len = 0 to String.length s - 1 do
          if P.decode_msg (String.sub s 0 len) <> None then ok := false
        done;
        !ok);
    prop "trailing garbage is rejected" msg_gen (fun m ->
        P.decode_msg (P.encode_msg m ^ "\x00") = None);
    prop "decoding arbitrary bytes never raises"
      QCheck.Gen.(string_size (int_bound 64))
      (fun s ->
        match P.decode_msg s with Some _ | None -> true);
  ]

let rejection_tests =
  [
    test "empty buffer is rejected" (fun () ->
        Alcotest.(check bool) "empty" true (P.decode_msg "" = None));
    test "overlong varint is rejected" (fun () ->
        Alcotest.(check bool) "10 continuation bytes" true
          (Wire.of_string_opt Wire.read_varint (String.make 10 '\x80') = None));
    test "unterminated varint is rejected" (fun () ->
        Alcotest.(check bool) "all-continuation" true
          (Wire.of_string_opt Wire.read_varint "\x80" = None));
    test "bad message tag is rejected" (fun () ->
        Alcotest.(check bool) "tag 250" true (P.decode_msg "\xfa" = None));
    test "hostile list count cannot force a huge allocation" (fun () ->
        (* Gossip framing with a 100M-element count and no elements: the
           reader rejects the count against the remaining byte budget
           before allocating anything. *)
        let w = Wire.writer () in
        Wire.write_u8 w 0;
        Wire.write_varint w 0;
        Wire.write_varint w 0;
        Wire.write_uvarint w 100_000_000;
        Alcotest.(check bool) "rejected" true
          (P.decode_msg (Wire.contents w) = None));
    test "storage slot with wire codec rejects corrupt bytes" (fun () ->
        let store =
          Storage.create ~metrics:(Metrics.create ()) ~node:0 ()
        in
        let slot =
          Storage.Slot.make
            ~codec:(Protocol.encode_checkpoint, Protocol.decode_checkpoint)
            store ~layer:"t" ~key:"ck"
        in
        Storage.Slot.set slot (3, Agreed.snapshot (Agreed.create ()));
        (match Storage.Slot.get slot with
        | Some (3, _) -> ()
        | _ -> Alcotest.fail "roundtrip through storage failed");
        Storage.write store ~layer:"t" ~key:"ck" "garbage!";
        Alcotest.(check bool) "corrupt -> None" true
          (Storage.Slot.get slot = None));
    test "coord Estimate with ts = -1 roundtrips" (fun () ->
        let m = Coord.Estimate { r = 0; v = "v"; ts = -1 } in
        Alcotest.(check bool) "eq" true
          (Wire.of_string_opt Coord.read_msg
             (Wire.to_string Coord.write_msg m)
          = Some m));
    test "coord codec roundtrips through Multi wrapper" (fun () ->
        let m = PC.Cons (PC.M.Inst (7, Coord.Ack { r = 2 })) in
        Alcotest.(check bool) "eq" true
          (PC.decode_msg (PC.encode_msg m) = Some m));
    test "small ints cost one byte" (fun () ->
        List.iter
          (fun (n, bytes) ->
            let w = Wire.writer () in
            Wire.write_varint w n;
            Alcotest.(check int)
              (Printf.sprintf "varint %d" n)
              bytes (Wire.length w))
          [ (0, 1); (1, 1); (-1, 1); (63, 1); (64, 2); (max_int, 9) ]);
  ]

(* --- End-to-end equivalence sweep ------------------------------------ *)

(* Wrap a stack so every message is encoded and re-decoded through the
   wire codec before the handler sees it — in the simulator messages
   normally travel as in-memory values, so this forces the exact bytes a
   live datagram would carry. The delivery order must be identical to the
   unwrapped baseline on the same seed. *)
let with_codec_roundtrip (stack : Proto.t) : Proto.t =
  let module S = (val stack : Proto.S) in
  (module struct
    include S

    let name = S.name ^ "+codec"

    let handler t ~src m =
      match S.decode_msg (S.encode_msg m) with
      | Some m' -> S.handler t ~src m'
      | None ->
        Alcotest.failf "wire roundtrip failed for a %s message" S.name
  end : Proto.S)

(* Adversarial run: loss, duplication and a crash/recovery. Returns the
   full delivery order of node 0 (basic protocol: nothing is compacted,
   so the tail is the entire sequence). *)
let equiv_run ~stack ~seed =
  let net = Net.create ~loss:0.12 ~dup:0.05 () in
  let cluster = Cluster.create stack ~seed ~n:3 ~net () in
  let rng = Rng.create (seed + 4242) in
  Cluster.at cluster 12_000 (fun () -> Cluster.crash cluster 1);
  Cluster.at cluster 30_000 (fun () -> Cluster.recover cluster 1);
  let count =
    Workload.open_loop cluster ~rng ~senders:[ 0; 2 ] ~start:1_000 ~stop:40_000
      ~mean_gap:900 ()
  in
  let ok =
    Cluster.run_until cluster ~until:400_000_000
      ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
      ()
  in
  if not ok then Alcotest.failf "seed %d: did not quiesce" seed;
  check_ok
    (Printf.sprintf "properties (seed %d)" seed)
    (Checks.all ~cluster ~good:[ 0; 1; 2 ] ());
  List.map (fun (p : Payload.t) -> (p.id, p.data))
    (Cluster.delivered_tail cluster 0)

let equivalence_tests =
  [
    slow_test "codec-roundtrip delivery order equals baseline (16 seeds)"
      (fun () ->
        let basic = Factory.basic () in
        for seed = 400 to 415 do
          let baseline = equiv_run ~stack:basic ~seed in
          let codec =
            equiv_run ~stack:(with_codec_roundtrip (Factory.basic ())) ~seed
          in
          if baseline = [] then Alcotest.failf "seed %d: empty run" seed;
          if codec <> baseline then
            Alcotest.failf "seed %d: delivery order diverged" seed
        done);
    slow_test "codec-roundtrip equivalence, alternative/coord stack"
      (fun () ->
        (* The alternative protocol compacts its tail, so compare the
           (count, vclock) fingerprint instead of the full order. *)
        let fingerprint stack seed =
          let net = Net.create ~loss:0.12 ~dup:0.05 () in
          let cluster = Cluster.create stack ~seed ~n:3 ~net () in
          let rng = Rng.create (seed + 99) in
          Cluster.at cluster 12_000 (fun () -> Cluster.crash cluster 1);
          Cluster.at cluster 30_000 (fun () -> Cluster.recover cluster 1);
          let count =
            Workload.open_loop cluster ~rng ~senders:[ 0; 2 ] ~start:1_000
              ~stop:40_000 ~mean_gap:900 ()
          in
          let ok =
            Cluster.run_until cluster ~until:400_000_000
              ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
              ()
          in
          if not ok then Alcotest.failf "seed %d: did not quiesce" seed;
          ( Cluster.delivered_count cluster 0,
            Vclock.streams (Cluster.delivery_vc cluster 0) )
        in
        List.iter
          (fun seed ->
            let base = fingerprint (Factory.alternative ~consensus:`Coord ()) seed in
            let codec =
              fingerprint
                (with_codec_roundtrip
                   (Factory.alternative ~consensus:`Coord ()))
                seed
            in
            if base <> codec then
              Alcotest.failf "seed %d: fingerprints diverged" seed)
          [ 500; 501; 502; 503 ]);
  ]

let suite =
  ( "wire",
    rejection_tests @ equivalence_tests
    @ List.map QCheck_alcotest.to_alcotest
        (roundtrip_props @ audit_props @ envelope_props @ truncation_props) )
