(* Tests of the Consensus building blocks (Paxos and Coord), run through a
   small single-instance rig, plus the Multi instance manager.

   The rig gives every node a "perfect" leader oracle (lowest currently-up
   process) so consensus liveness can be tested in isolation from the
   failure detector; the full stack uses the heartbeat detector and is
   tested in suite_protocol. *)

open Helpers
module Intf = Abcast_consensus.Consensus_intf

module Rig (C : Intf.S) = struct
  type t = {
    eng : C.msg Engine.t;
    nodes : C.t option array;
    decisions : (int * Intf.value) list ref; (* node, value *)
  }

  let make ?(n = 3) ?(seed = 1) ?net () =
    let eng = Engine.create ~seed ~n ?net () in
    let nodes = Array.make n None in
    let decisions = ref [] in
    let leader () =
      let rec first i = if Engine.is_up eng i then i else first (i + 1) in
      first 0
    in
    for i = 0 to n - 1 do
      Engine.set_behavior eng i (fun io ->
          let c =
            C.create io ~instance:0 ~leader ~on_decide:(fun v ->
                decisions := (i, v) :: !decisions)
          in
          nodes.(i) <- Some c;
          C.handle c)
    done;
    Engine.start_all eng;
    { eng; nodes; decisions }

  let node t i = match t.nodes.(i) with Some c -> c | None -> assert false

  let propose t i v = C.propose (node t i) v

  let decided_everywhere t ~up =
    List.for_all (fun i -> C.decision (node t i) <> None) up

  let run_to_decision ?(up = [ 0; 1; 2 ]) ?(until = 2_000_000) t =
    let ok =
      Engine.run_until t.eng ~until ~pred:(fun () -> decided_everywhere t ~up) ()
    in
    if not ok then Alcotest.fail "consensus did not terminate";
    let values =
      List.map (fun i -> Option.get (C.decision (node t i))) up
    in
    match values with
    | [] -> Alcotest.fail "no processes"
    | v :: rest ->
      List.iter (Alcotest.(check string) "uniform agreement" v) rest;
      v

  let tests name =
    [
      test (name ^ ": all propose, all decide one proposal") (fun () ->
          let t = make () in
          List.iter (fun i -> propose t i (Printf.sprintf "v%d" i)) [ 0; 1; 2 ];
          let v = run_to_decision t in
          Alcotest.(check bool) "validity" true (List.mem v [ "v0"; "v1"; "v2" ]));
      test (name ^ ": n=5") (fun () ->
          let t = make ~n:5 () in
          List.iter (fun i -> propose t i (Printf.sprintf "v%d" i)) [ 0; 1; 2; 3; 4 ];
          let v = run_to_decision ~up:[ 0; 1; 2; 3; 4 ] t in
          Alcotest.(check bool) "validity" true
            (List.mem v [ "v0"; "v1"; "v2"; "v3"; "v4" ]));
      test (name ^ ": decides under 20% message loss") (fun () ->
          let net = Net.create ~loss:0.2 () in
          let t = make ~net ~seed:5 () in
          List.iter (fun i -> propose t i (Printf.sprintf "v%d" i)) [ 0; 1; 2 ];
          ignore (run_to_decision ~until:20_000_000 t));
      test (name ^ ": survives a minority permanent crash") (fun () ->
          let t = make () in
          List.iter (fun i -> propose t i (Printf.sprintf "v%d" i)) [ 0; 1; 2 ];
          Engine.at t.eng 1_000 (fun () -> Engine.crash t.eng 2);
          ignore (run_to_decision ~up:[ 0; 1 ] t));
      test (name ^ ": survives leader crash") (fun () ->
          let t = make () in
          List.iter (fun i -> propose t i (Printf.sprintf "v%d" i)) [ 0; 1; 2 ];
          Engine.at t.eng 1_000 (fun () -> Engine.crash t.eng 0);
          ignore (run_to_decision ~up:[ 1; 2 ] ~until:10_000_000 t));
      test (name ^ ": crash-recovery of a participant") (fun () ->
          let t = make ~seed:3 () in
          List.iter (fun i -> propose t i (Printf.sprintf "v%d" i)) [ 0; 1; 2 ];
          Engine.at t.eng 500 (fun () -> Engine.crash t.eng 1);
          Engine.at t.eng 50_000 (fun () -> Engine.recover t.eng 1);
          let v = run_to_decision ~until:10_000_000 t in
          Alcotest.(check bool) "validity" true (List.mem v [ "v0"; "v1"; "v2" ]));
      test (name ^ ": proposal is logged and idempotent (P4)") (fun () ->
          let t = make () in
          propose t 0 "first";
          propose t 0 "second";
          Alcotest.(check (option string))
            "first wins" (Some "first")
            (C.proposal (node t 0)));
      test (name ^ ": re-propose after recovery keeps logged value") (fun () ->
          let t = make ~seed:7 () in
          propose t 0 "original";
          Engine.at t.eng 200 (fun () -> Engine.crash t.eng 0);
          Engine.at t.eng 40_000 (fun () ->
              Engine.recover t.eng 0;
              (* the upper layer re-proposes with a different value; the
                 logged one must win *)
              propose t 0 "changed");
          List.iter (fun i -> propose t i (Printf.sprintf "v%d" i)) [ 1; 2 ];
          let v = run_to_decision ~until:10_000_000 t in
          Alcotest.(check bool) "validity incl. original only" true
            (List.mem v [ "original"; "v1"; "v2" ]);
          Alcotest.(check (option string))
            "logged" (Some "original")
            (C.proposal (node t 0)));
      test (name ^ ": decision is stable across recovery (P5)") (fun () ->
          let t = make ~seed:11 () in
          List.iter (fun i -> propose t i (Printf.sprintf "v%d" i)) [ 0; 1; 2 ];
          let v = run_to_decision t in
          Engine.crash t.eng 1;
          Engine.recover t.eng 1;
          Engine.run t.eng ~until:Int.max_int |> ignore;
          Alcotest.(check (option string))
            "same decision" (Some v)
            (C.decision (node t 1)));
      test (name ^ ": uniform agreement includes bad processes") (fun () ->
          (* node 2 decides then crashes forever; its logged decision must
             equal the survivors' *)
          let t = make ~seed:13 () in
          List.iter (fun i -> propose t i (Printf.sprintf "v%d" i)) [ 0; 1; 2 ];
          let ok =
            Engine.run_until t.eng ~until:5_000_000
              ~pred:(fun () -> C.decision (node t 2) <> None)
              ()
          in
          Alcotest.(check bool) "node2 decided" true ok;
          let v2 = Option.get (C.decision (node t 2)) in
          Engine.crash t.eng 2;
          let v = run_to_decision ~up:[ 0; 1 ] t in
          Alcotest.(check string) "uniform" v v2);
      test (name ^ ": late process learns an old decision") (fun () ->
          let t = make ~seed:17 () in
          (* node 2 is down from the start of the protocol *)
          Engine.crash t.eng 2;
          List.iter (fun i -> propose t i (Printf.sprintf "v%d" i)) [ 0; 1 ];
          let v = run_to_decision ~up:[ 0; 1 ] t in
          Engine.recover t.eng 2;
          Engine.at t.eng (Engine.now t.eng + 100) (fun () -> propose t 2 "late");
          let ok =
            Engine.run_until t.eng ~until:20_000_000
              ~pred:(fun () -> C.decision (node t 2) <> None)
              ()
          in
          Alcotest.(check bool) "learned" true ok;
          Alcotest.(check (option string)) "same" (Some v) (C.decision (node t 2)));
    ]
end

module Paxos_rig = Rig (Abcast_consensus.Paxos)
module Coord_rig = Rig (Abcast_consensus.Coord)

(* Safety must never depend on the quality of the leader oracle: give
   every process a lying oracle that always answers "you are the leader"
   (permanent duel) on a lossy network; whenever decisions happen, they
   must agree and be valid. *)
module Adversarial_oracle (C : Intf.S) = struct
  let make ~seed ~loss =
    let net = Net.create ~loss () in
    let eng = Engine.create ~seed ~n:3 ~net () in
    let nodes = Array.make 3 None in
    for i = 0 to 2 do
      Engine.set_behavior eng i (fun io ->
          let c =
            C.create io ~instance:0
              ~leader:(fun () -> i) (* everyone believes in themselves *)
              ~on_decide:(fun _ -> ())
          in
          nodes.(i) <- Some c;
          C.handle c)
    done;
    Engine.start_all eng;
    let node i = match nodes.(i) with Some c -> c | None -> assert false in
    for i = 0 to 2 do
      C.propose (node i) (Printf.sprintf "v%d" i)
    done;
    Engine.run eng ~until:20_000_000;
    let decisions = List.filter_map (fun i -> C.decision (node i)) [ 0; 1; 2 ] in
    (match decisions with
    | [] -> () (* liveness may be lost under a permanent duel: allowed *)
    | v :: rest ->
      Alcotest.(check bool) "validity" true (List.mem v [ "v0"; "v1"; "v2" ]);
      List.iter (Alcotest.(check string) "agreement under duel" v) rest);
    List.length decisions

  let tests name =
    [
      test (name ^ ": safe under a permanently lying oracle") (fun () ->
          ignore (make ~seed:21 ~loss:0.0));
      test (name ^ ": safe under a lying oracle with 30% loss") (fun () ->
          ignore (make ~seed:22 ~loss:0.3));
      test (name ^ ": several seeds, all safe") (fun () ->
          List.iter (fun seed -> ignore (make ~seed ~loss:0.1)) [ 1; 2; 3; 4; 5 ]);
    ]
end

module Paxos_adv = Adversarial_oracle (Abcast_consensus.Paxos)
module Coord_adv = Adversarial_oracle (Abcast_consensus.Coord)

(* Property test: random crash/recovery schedules, agreement must hold. *)
let random_schedule_prop (module C : Intf.S) name =
  QCheck.Test.make ~name ~count:35 QCheck.(int_range 0 10_000)
    (fun seed ->
      let module R = Rig (C) in
      let t = R.make ~seed ~n:3 () in
      let rng = Rng.create (seed * 31) in
      List.iter (fun i -> R.propose t i (Printf.sprintf "v%d" i)) [ 0; 1; 2 ];
      (* one random node bounces once; a majority stays up *)
      let victim = Rng.int rng 3 in
      let down_at = 100 + Rng.int rng 30_000 in
      let up_at = down_at + 1_000 + Rng.int rng 60_000 in
      Abcast_sim.Faults.down_between t.eng ~node:victim ~from_:down_at ~until:up_at;
      let v = R.run_to_decision ~until:120_000_000 t in
      List.mem v [ "v0"; "v1"; "v2" ])

(* --- Multi instance manager (over both implementations) ------------ *)

module Multi_suite (C : Intf.S) = struct
  module M = Abcast_consensus.Multi.Make (C)

  let multi_rig ?(n = 3) ?(seed = 1) () =
  let eng = Engine.create ~seed ~n () in
  let nodes = Array.make n None in
  let decisions = Array.make n [] in
  let lags = Array.make n [] in
  let leader () =
    let rec first i = if Engine.is_up eng i then i else first (i + 1) in
    first 0
  in
  for i = 0 to n - 1 do
    Engine.set_behavior eng i (fun io ->
        let m =
          M.create io ~leader
            ~on_decide:(fun k v -> decisions.(i) <- (k, v) :: decisions.(i))
            ~on_lag:(fun f -> lags.(i) <- f :: lags.(i))
            ~on_behind:(fun ~src:_ -> ())
        in
        nodes.(i) <- Some m;
        M.handle m)
  done;
  Engine.start_all eng;
  let node i = match nodes.(i) with Some m -> m | None -> assert false in
  (eng, node, decisions, lags)

  let tests name =
    [
    test (name ^ " multi: instances are independent") (fun () ->
        let eng, node, _, _ = multi_rig () in
        for k = 0 to 3 do
          for i = 0 to 2 do
            M.propose (node i) k (Printf.sprintf "k%d-v%d" k i)
          done
        done;
        let all_decided () =
          List.for_all
            (fun k -> List.for_all (fun i -> M.decision (node i) k <> None) [ 0; 1; 2 ])
            [ 0; 1; 2; 3 ]
        in
        let ok = Engine.run_until eng ~until:10_000_000 ~pred:all_decided () in
        Alcotest.(check bool) "all decided" true ok;
        (* agreement per instance, and decisions may differ across instances *)
        List.iter
          (fun k ->
            let v0 = Option.get (M.decision (node 0) k) in
            List.iter
              (fun i ->
                Alcotest.(check (option string))
                  "agree" (Some v0)
                  (M.decision (node i) k))
              [ 1; 2 ])
          [ 0; 1; 2; 3 ]);
    test (name ^ " multi: logged_proposal_instances lists proposals") (fun () ->
        let eng, node, _, _ = multi_rig () in
        M.propose (node 0) 0 "a";
        M.propose (node 0) 2 "c";
        Engine.run eng ~until:1_000;
        Alcotest.(check (list int)) "instances" [ 0; 2 ]
          (M.logged_proposal_instances (node 0)));
    test (name ^ " multi: truncate_below raises the floor and drops state") (fun () ->
        let eng, node, _, _ = multi_rig () in
        for k = 0 to 2 do
          for i = 0 to 2 do
            M.propose (node i) k "v"
          done
        done;
        let decided () =
          List.for_all (fun k -> M.decision (node 0) k <> None) [ 0; 1; 2 ]
        in
        Alcotest.(check bool) "decided" true
          (Engine.run_until eng ~until:10_000_000 ~pred:decided ());
        M.truncate_below (node 0) 2;
        Alcotest.(check int) "floor" 2 (M.floor (node 0));
        Alcotest.(check (option string)) "old gone" None (M.decision (node 0) 0);
        Alcotest.(check bool) "recent kept" true (M.decision (node 0) 2 <> None);
        (* proposals below the floor are ignored *)
        M.propose (node 0) 0 "zombie";
        Alcotest.(check (option string)) "ignored" None (M.proposal (node 0) 0));
    test (name ^ " multi: truncated peer reports lag to the asker") (fun () ->
        let eng, node, _, lags = multi_rig ~seed:3 () in
        (* decide instance 0 while node 2 is down *)
        Engine.crash eng 2;
        for i = 0 to 1 do
          M.propose (node i) 0 "v"
        done;
        let decided () = M.decision (node 0) 0 <> None && M.decision (node 1) 0 <> None in
        Alcotest.(check bool) "decided" true
          (Engine.run_until eng ~until:10_000_000 ~pred:decided ());
        M.truncate_below (node 0) 1;
        M.truncate_below (node 1) 1;
        Engine.recover eng 2;
        Engine.at eng (Engine.now eng + 100) (fun () -> M.propose (node 2) 0 "late");
        let lagged () = lags.(2) <> [] in
        Alcotest.(check bool) "lag reported" true
          (Engine.run_until eng ~until:20_000_000 ~pred:lagged ());
        Alcotest.(check bool) "floor carried" true (List.mem 1 lags.(2)));
    test (name ^ " multi: decisions persist across recovery") (fun () ->
        let eng, node, _, _ = multi_rig ~seed:5 () in
        for i = 0 to 2 do
          M.propose (node i) 0 "v"
        done;
        let decided () = M.decision (node 1) 0 <> None in
        Alcotest.(check bool) "decided" true
          (Engine.run_until eng ~until:10_000_000 ~pred:decided ());
        let v = M.decision (node 1) 0 in
        Engine.crash eng 1;
        Engine.recover eng 1;
        Alcotest.(check (option string)) "persisted" v (M.decision (node 1) 0));
    ]
end

module Multi_paxos = Multi_suite (Abcast_consensus.Paxos)
module Multi_coord = Multi_suite (Abcast_consensus.Coord)

let multi_tests = Multi_paxos.tests "paxos" @ Multi_coord.tests "coord"

let keys_tests =
  [
    test "keys: instance/field roundtrip" (fun () ->
        let key = Intf.Keys.proposal 1234 in
        Alcotest.(check (option int)) "instance" (Some 1234)
          (Intf.Keys.instance_of_key key);
        Alcotest.(check (option string)) "field" (Some "proposal")
          (Intf.Keys.field_of_key key));
    test "keys: non-consensus keys are rejected" (fun () ->
        Alcotest.(check (option int)) "other" None
          (Intf.Keys.instance_of_key "ab/checkpoint"));
  ]

let keys_props =
  [
    QCheck.Test.make ~name:"keys: roundtrip for any instance/field" ~count:200
      QCheck.(pair (int_range 0 999_999_999) (oneofl [ "proposal"; "decision"; "paxos.acc" ]))
      (fun (k, field) ->
        let key = Intf.Keys.inst k field in
        Intf.Keys.instance_of_key key = Some k
        && Intf.Keys.field_of_key key = Some field);
  ]

(* --- E9 adversarial schedules over the pipelined sequencer --------- *)

(* The full-stack safety net of experiment E9, re-run with the consensus
   pipeline open (window > 1): randomized crash/recovery plans, every
   property and lemma checked by [Suite_faults.episode]. A decided-but-
   uncommitted instance buffered out of order must never let a later
   batch deliver early — Checks.all's total-order comparison across the
   good processes is exactly that assertion. *)
let pipelined_adversarial_tests =
  let module Factory = Abcast_core.Factory in
  [
    slow_test "E9 adversarial schedules with window=4 pipeline" (fun () ->
        List.iter
          (fun seed ->
            ignore
              (Suite_faults.episode
                 ~stack:(Factory.alternative ~window:4 ())
                 ~seed ~n:5 ~n_bad:2 ()))
          [ 1101; 1102; 1103 ]);
    slow_test "E9 adversarial schedules with window=8 + ring" (fun () ->
        List.iter
          (fun seed ->
            ignore
              (Suite_faults.episode
                 ~stack:
                   (Factory.alternative ~window:8 ~dissemination:`Ring ())
                 ~seed ~n:5 ~n_bad:2 ()))
          [ 2201; 2202; 2203 ]);
    slow_test "E9 partition churn over the throughput preset" (fun () ->
        ignore
          (Suite_faults.episode ~partition_churn:true
             ~stack:(Factory.throughput ())
             ~seed:3301 ~n:5 ~n_bad:1 ()));
  ]

let suite =
  ( "consensus",
    Paxos_rig.tests "paxos" @ Coord_rig.tests "coord"
    @ Paxos_adv.tests "paxos" @ Coord_adv.tests "coord" @ multi_tests
    @ pipelined_adversarial_tests @ keys_tests
    @ List.map QCheck_alcotest.to_alcotest
        (keys_props
        @ [
            random_schedule_prop (module Abcast_consensus.Paxos)
              "paxos: agreement under random bounce";
            random_schedule_prop (module Abcast_consensus.Coord)
              "coord: agreement under random bounce";
          ]) )
