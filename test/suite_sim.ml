(* Unit tests for abcast.sim: Storage, Metrics, Net, Trace, Engine,
   Faults. The engine tests pin down the crash-recovery semantics that the
   protocol correctness depends on (volatile timers, lost input buffers,
   durable storage, incarnation guards). *)

open Helpers
module Trace = Abcast_sim.Trace
module Faults = Abcast_sim.Faults
module Histogram = Abcast_util.Histogram

let mk_store () =
  let metrics = Metrics.create () in
  (Storage.create ~metrics ~node:0 (), metrics)

let storage_tests =
  [
    test "write/read roundtrip" (fun () ->
        let s, _ = mk_store () in
        Storage.write s ~layer:"x" ~key:"a" "hello";
        Alcotest.(check (option string)) "read" (Some "hello") (Storage.read s "a"));
    test "missing key" (fun () ->
        let s, _ = mk_store () in
        Alcotest.(check (option string)) "read" None (Storage.read s "nope");
        Alcotest.(check bool) "mem" false (Storage.mem s "nope"));
    test "overwrite replaces" (fun () ->
        let s, _ = mk_store () in
        Storage.write s ~layer:"x" ~key:"a" "1";
        Storage.write s ~layer:"x" ~key:"a" "2";
        Alcotest.(check (option string)) "read" (Some "2") (Storage.read s "a"));
    test "delete removes and counts" (fun () ->
        let s, m = mk_store () in
        Storage.write s ~layer:"x" ~key:"a" "1";
        Storage.delete s ~layer:"x" "a";
        Alcotest.(check bool) "gone" false (Storage.mem s "a");
        Alcotest.(check int) "two ops" 2 (Metrics.get m ~node:0 "log_ops.x"));
    test "delete of absent key is free" (fun () ->
        let s, m = mk_store () in
        Storage.delete s ~layer:"x" "a";
        Alcotest.(check int) "no op" 0 (Metrics.get m ~node:0 "log_ops.x"));
    test "ops and bytes accounted per layer" (fun () ->
        let s, m = mk_store () in
        Storage.write s ~layer:"cons" ~key:"a" "12345";
        Storage.write s ~layer:"ab" ~key:"b" "123";
        Alcotest.(check int) "cons ops" 1 (Metrics.get m ~node:0 "log_ops.cons");
        Alcotest.(check int) "cons bytes" 5 (Metrics.get m ~node:0 "log_bytes.cons");
        Alcotest.(check int) "ab bytes" 3 (Metrics.get m ~node:0 "log_bytes.ab"));
    test "write_if_changed skips equal values" (fun () ->
        let s, m = mk_store () in
        Alcotest.(check bool) "first" true
          (Storage.write_if_changed s ~layer:"x" ~key:"a" "v");
        Alcotest.(check bool) "same" false
          (Storage.write_if_changed s ~layer:"x" ~key:"a" "v");
        Alcotest.(check bool) "changed" true
          (Storage.write_if_changed s ~layer:"x" ~key:"a" "w");
        Alcotest.(check int) "two ops" 2 (Metrics.get m ~node:0 "log_ops.x"));
    test "keys_with_prefix sorted and filtered" (fun () ->
        let s, _ = mk_store () in
        List.iter
          (fun k -> Storage.write s ~layer:"x" ~key:k "v")
          [ "b/2"; "a/1"; "b/1"; "c" ];
        Alcotest.(check (list string)) "b keys" [ "b/1"; "b/2" ]
          (Storage.keys_with_prefix s "b/"));
    test "retained bytes and keys track live state" (fun () ->
        let s, _ = mk_store () in
        Storage.write s ~layer:"x" ~key:"a" "12345";
        Storage.write s ~layer:"x" ~key:"b" "123";
        Alcotest.(check int) "bytes" 8 (Storage.retained_bytes s);
        Alcotest.(check int) "keys" 2 (Storage.retained_keys s);
        Storage.delete s ~layer:"x" "a";
        Alcotest.(check int) "bytes after delete" 3 (Storage.retained_bytes s));
    test "slot roundtrip" (fun () ->
        let s, _ = mk_store () in
        let slot = Storage.Slot.make s ~layer:"x" ~key:"pair" in
        Alcotest.(check bool) "empty" true (Storage.Slot.get slot = None);
        Storage.Slot.set slot (42, "hello");
        Alcotest.(check (option (pair int string)))
          "value" (Some (42, "hello")) (Storage.Slot.get slot);
        Storage.Slot.clear slot;
        Alcotest.(check bool) "cleared" true (Storage.Slot.get slot = None));
    test "slot set_if_changed" (fun () ->
        let s, m = mk_store () in
        let slot = Storage.Slot.make s ~layer:"x" ~key:"v" in
        Alcotest.(check bool) "first" true (Storage.Slot.set_if_changed slot [ 1 ]);
        Alcotest.(check bool) "same" false (Storage.Slot.set_if_changed slot [ 1 ]);
        Alcotest.(check int) "one op" 1 (Metrics.get m ~node:0 "log_ops.x"));
    test "wipe clears everything" (fun () ->
        let s, _ = mk_store () in
        Storage.write s ~layer:"x" ~key:"a" "1";
        Storage.wipe s;
        Alcotest.(check int) "keys" 0 (Storage.retained_keys s));
  ]

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "abcast-storage-%d-%d" (Unix.getpid ()) !counter)

let storage_file_tests =
  [
    test "file backing: contents survive re-opening" (fun () ->
        let dir = temp_dir () in
        let metrics = Metrics.create () in
        let s1 = Storage.create ~dir ~metrics ~node:0 () in
        Storage.write s1 ~layer:"x" ~key:"cons/000000001/proposal" "hello";
        Storage.write s1 ~layer:"x" ~key:"weird key /%\\0" "bytes";
        (* a fresh handle on the same directory sees everything *)
        let s2 = Storage.create ~dir ~metrics ~node:0 () in
        Alcotest.(check (option string)) "key 1" (Some "hello")
          (Storage.read s2 "cons/000000001/proposal");
        Alcotest.(check (option string)) "odd key" (Some "bytes")
          (Storage.read s2 "weird key /%\\0");
        Alcotest.(check int) "two keys" 2 (Storage.retained_keys s2));
    test "file backing: delete removes the file" (fun () ->
        let dir = temp_dir () in
        let metrics = Metrics.create () in
        let s1 = Storage.create ~dir ~metrics ~node:0 () in
        Storage.write s1 ~layer:"x" ~key:"a" "1";
        Storage.delete s1 ~layer:"x" "a";
        let s2 = Storage.create ~dir ~metrics ~node:0 () in
        Alcotest.(check (option string)) "gone" None (Storage.read s2 "a"));
    test "file backing: overwrite persists the newest value" (fun () ->
        let dir = temp_dir () in
        let metrics = Metrics.create () in
        let s1 = Storage.create ~dir ~metrics ~node:0 () in
        Storage.write s1 ~layer:"x" ~key:"a" "old";
        Storage.write s1 ~layer:"x" ~key:"a" "new";
        let s2 = Storage.create ~dir ~metrics ~node:0 () in
        Alcotest.(check (option string)) "new" (Some "new") (Storage.read s2 "a"));
    test "file backing: wipe clears the directory" (fun () ->
        let dir = temp_dir () in
        let metrics = Metrics.create () in
        let s1 = Storage.create ~dir ~metrics ~node:0 () in
        Storage.write s1 ~layer:"x" ~key:"a" "1";
        Storage.wipe s1;
        let s2 = Storage.create ~dir ~metrics ~node:0 () in
        Alcotest.(check int) "empty" 0 (Storage.retained_keys s2));
    test "file backing: binary values roundtrip" (fun () ->
        let dir = temp_dir () in
        let metrics = Metrics.create () in
        let s1 = Storage.create ~dir ~metrics ~node:0 () in
        let blob = Storage.encode (42, [ "x"; "y" ], 3.14) in
        Storage.write s1 ~layer:"x" ~key:"blob" blob;
        let s2 = Storage.create ~dir ~metrics ~node:0 () in
        let (a, b, c) : int * string list * float =
          Storage.decode (Option.get (Storage.read s2 "blob"))
        in
        Alcotest.(check int) "int" 42 a;
        Alcotest.(check (list string)) "list" [ "x"; "y" ] b;
        Alcotest.(check (float 1e-9)) "float" 3.14 c);
  ]

let metrics_tests =
  [
    test "incr/add/get" (fun () ->
        let m = Metrics.create () in
        Metrics.incr m ~node:1 "c";
        Metrics.add m ~node:1 "c" 4;
        Alcotest.(check int) "value" 5 (Metrics.get m ~node:1 "c");
        Alcotest.(check int) "other node" 0 (Metrics.get m ~node:2 "c"));
    test "sum across nodes" (fun () ->
        let m = Metrics.create () in
        Metrics.add m ~node:0 "c" 1;
        Metrics.add m ~node:1 "c" 2;
        Metrics.add m ~node:(-1) "c" 4;
        Alcotest.(check int) "sum" 7 (Metrics.sum m "c"));
    test "sum_prefix respects dotted boundaries" (fun () ->
        let m = Metrics.create () in
        Metrics.add m ~node:0 "log_ops.a" 1;
        Metrics.add m ~node:0 "log_ops.b" 2;
        Metrics.add m ~node:0 "log_opsx" 100;
        Metrics.add m ~node:0 "log_ops" 10;
        Alcotest.(check int) "prefix" 13 (Metrics.sum_prefix m "log_ops"));
    test "observe/mean/percentile" (fun () ->
        let m = Metrics.create () in
        List.iter (Metrics.observe m ~node:0 "lat") [ 1.0; 2.0; 3.0; 4.0 ];
        Alcotest.(check (float 1e-6)) "mean" 2.5 (Metrics.mean m "lat");
        Alcotest.(check (float 1e-6)) "p0" 1.0 (Metrics.percentile m "lat" 0.0);
        Alcotest.(check (float 1e-6)) "p100" 4.0 (Metrics.percentile m "lat" 100.0);
        Alcotest.(check (float 1e-6)) "p50" 2.5 (Metrics.percentile m "lat" 50.0);
        Alcotest.(check int) "count" 4 (Metrics.count_samples m "lat"));
    test "empty series" (fun () ->
        let m = Metrics.create () in
        Alcotest.(check bool) "mean nan" true (Float.is_nan (Metrics.mean m "x"));
        Alcotest.(check int) "count" 0 (Metrics.count_samples m "x"));
    test "reset clears" (fun () ->
        let m = Metrics.create () in
        Metrics.incr m ~node:0 "c";
        Metrics.observe m ~node:0 "s" 1.0;
        Metrics.reset m;
        Alcotest.(check int) "counter" 0 (Metrics.get m ~node:0 "c");
        Alcotest.(check int) "samples" 0 (Metrics.count_samples m "s"));
    test "handle shares storage with the named counter" (fun () ->
        let m = Metrics.create () in
        let h = Metrics.handle m ~node:3 "hot" in
        Metrics.hincr h;
        Metrics.hadd h 4;
        Alcotest.(check int) "get sees handle bumps" 5 (Metrics.get m ~node:3 "hot");
        Metrics.incr m ~node:3 "hot";
        Alcotest.(check int) "handle sees named bumps" 6 (Metrics.hget h);
        Alcotest.(check int) "sum" 6 (Metrics.sum m "hot"));
    test "handle resolved twice hits the same counter" (fun () ->
        let m = Metrics.create () in
        let h1 = Metrics.handle m ~node:0 "c" in
        let h2 = Metrics.handle m ~node:0 "c" in
        Metrics.hincr h1;
        Metrics.hincr h2;
        Alcotest.(check int) "both bumps visible" 2 (Metrics.get m ~node:0 "c");
        Alcotest.(check bool) "same cell" true (h1 == h2));
    test "reset keeps live handles attached" (fun () ->
        (* Regression: reset used to Hashtbl.reset the table, detaching
           outstanding handles so their counts silently vanished. Reset
           now zeroes in place — a handle resolved before the reset keeps
           feeding the visible counter. *)
        let m = Metrics.create () in
        let h = Metrics.handle m ~node:0 "c" in
        Metrics.hincr h;
        Metrics.hincr h;
        Metrics.reset m;
        Alcotest.(check int) "zeroed" 0 (Metrics.get m ~node:0 "c");
        Alcotest.(check int) "handle view zeroed" 0 (Metrics.hget h);
        Metrics.hincr h;
        Alcotest.(check int) "post-reset bump visible" 1 (Metrics.get m ~node:0 "c");
        Alcotest.(check bool) "same cell" true (h == Metrics.handle m ~node:0 "c"));
    test "reset keeps live histograms attached" (fun () ->
        let m = Metrics.create () in
        let h = Metrics.hist m ~node:0 "lat" in
        Histogram.add h 10.0;
        Metrics.reset m;
        Alcotest.(check int) "cleared" 0 (Histogram.count h);
        Histogram.add h 20.0;
        match Metrics.histogram m "lat" with
        | None -> Alcotest.fail "series vanished on reset"
        | Some merged ->
          Alcotest.(check int) "post-reset sample visible" 1
            (Histogram.count merged));
  ]

let net_tests =
  [
    test "delays within bounds" (fun () ->
        let net = Net.create ~delay_min:10 ~delay_max:20 ~heavy_tail:0.0 () in
        let rng = Rng.create 1 in
        for _ = 1 to 500 do
          match Net.transmit net ~rng ~src:0 ~dst:1 with
          | Net.Deliver [ d ] ->
            Alcotest.(check bool) "bounds" true (d >= 10 && d <= 20)
          | _ -> Alcotest.fail "expected single delivery"
        done);
    test "loss=1 drops all" (fun () ->
        let net = Net.create ~loss:1.0 () in
        let rng = Rng.create 1 in
        for _ = 1 to 50 do
          Alcotest.(check bool) "drop" true
            (Net.transmit net ~rng ~src:0 ~dst:1 = Net.Drop)
        done);
    test "duplication produces two copies sometimes" (fun () ->
        let net = Net.create ~dup:0.5 ~heavy_tail:0.0 () in
        let rng = Rng.create 1 in
        let dups = ref 0 in
        for _ = 1 to 200 do
          match Net.transmit net ~rng ~src:0 ~dst:1 with
          | Net.Deliver [ _; _ ] -> incr dups
          | Net.Deliver [ _ ] -> ()
          | _ -> Alcotest.fail "unexpected"
        done;
        Alcotest.(check bool) "some dups" true (!dups > 50));
    test "self hand-off is reliable and fast" (fun () ->
        let net = Net.create ~loss:1.0 () in
        let rng = Rng.create 1 in
        Alcotest.(check bool) "self" true
          (Net.transmit net ~rng ~src:2 ~dst:2 = Net.Deliver [ 1 ]));
    test "partition blocks matching links, heal restores" (fun () ->
        let net = Net.create ~heavy_tail:0.0 () in
        let rng = Rng.create 1 in
        Net.partition net (fun ~src ~dst -> src = 0 && dst = 1);
        Alcotest.(check bool) "cut" true (Net.transmit net ~rng ~src:0 ~dst:1 = Net.Drop);
        Alcotest.(check bool) "reverse open" true
          (match Net.transmit net ~rng ~src:1 ~dst:0 with
          | Net.Deliver _ -> true
          | Net.Drop -> false);
        Alcotest.(check bool) "is_partitioned" true (Net.is_partitioned net ~src:0 ~dst:1);
        Net.heal net;
        Alcotest.(check bool) "healed" true
          (match Net.transmit net ~rng ~src:0 ~dst:1 with
          | Net.Deliver _ -> true
          | Net.Drop -> false));
    test "per-link override shapes one direction only" (fun () ->
        let net = Net.create ~delay_min:10 ~delay_max:20 ~heavy_tail:0.0 () in
        Net.set_link net ~src:0 ~dst:1 ~delay_min:500 ~delay_max:600 ();
        let rng = Rng.create 2 in
        for _ = 1 to 100 do
          (match Net.transmit net ~rng ~src:0 ~dst:1 with
          | Net.Deliver [ d ] -> Alcotest.(check bool) "slow" true (d >= 500)
          | _ -> Alcotest.fail "unexpected");
          match Net.transmit net ~rng ~src:1 ~dst:0 with
          | Net.Deliver [ d ] -> Alcotest.(check bool) "fast" true (d <= 20)
          | _ -> Alcotest.fail "unexpected"
        done);
    test "per-link loss override" (fun () ->
        let net = Net.create ~heavy_tail:0.0 () in
        Net.set_link net ~src:2 ~dst:0 ~loss:1.0 ();
        let rng = Rng.create 3 in
        for _ = 1 to 50 do
          Alcotest.(check bool) "lossy link" true
            (Net.transmit net ~rng ~src:2 ~dst:0 = Net.Drop)
        done;
        Net.reset_links net;
        Alcotest.(check bool) "reset restores" true
          (match Net.transmit net ~rng ~src:2 ~dst:0 with
          | Net.Deliver _ -> true
          | Net.Drop -> false));
    test "bad delay bounds rejected" (fun () ->
        Alcotest.check_raises "inverted" (Invalid_argument "Net.create: bad delay bounds")
          (fun () -> ignore (Net.create ~delay_min:10 ~delay_max:5 ())));
  ]

let trace_tests =
  [
    test "disabled trace records nothing" (fun () ->
        let tr = Trace.create () in
        Trace.emit tr ~time:1 ~node:0 "x";
        Alcotest.(check int) "entries" 0 (List.length (Trace.entries tr)));
    test "enabled trace keeps order" (fun () ->
        let tr = Trace.create ~enabled:true () in
        Trace.emit tr ~time:1 ~node:0 "a";
        Trace.emit tr ~time:2 ~node:1 "b";
        let texts = List.map (fun (e : Trace.entry) -> e.text) (Trace.entries tr) in
        Alcotest.(check (list string)) "order" [ "a"; "b" ] texts);
    test "emitf formats" (fun () ->
        let tr = Trace.create ~enabled:true () in
        Trace.emitf tr ~time:5 ~node:2 "k=%d %s" 7 "yes";
        match Trace.entries tr with
        | [ e ] ->
          Alcotest.(check string) "text" "k=7 yes" e.text;
          Alcotest.(check int) "time" 5 e.time;
          Alcotest.(check int) "node" 2 e.node
        | _ -> Alcotest.fail "one entry expected");
    test "find locates entry" (fun () ->
        let tr = Trace.create ~enabled:true () in
        Trace.emit tr ~time:1 ~node:0 "a";
        Trace.emit tr ~time:2 ~node:1 "target";
        Alcotest.(check bool) "found" true
          (Trace.find tr (fun e -> e.text = "target") <> None));
    test "clear drops entries" (fun () ->
        let tr = Trace.create ~enabled:true () in
        Trace.emit tr ~time:1 ~node:0 "a";
        Trace.clear tr;
        Alcotest.(check int) "entries" 0 (List.length (Trace.entries tr)));
  ]

(* A trivial echo protocol to exercise the engine. *)
let echo_behavior log (io : string Engine.io) ~src:_ msg =
  log := (io.self, io.now (), msg) :: !log

let engine_tests =
  [
    test "actions run in time order with FIFO ties" (fun () ->
        let eng : unit Engine.t = Engine.create ~seed:1 ~n:1 () in
        let log = ref [] in
        Engine.at eng 100 (fun () -> log := 2 :: !log);
        Engine.at eng 50 (fun () -> log := 1 :: !log);
        Engine.at eng 100 (fun () -> log := 3 :: !log);
        Engine.run eng;
        Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log));
    test "run ~until stops and advances clock" (fun () ->
        let eng : unit Engine.t = Engine.create ~seed:1 ~n:1 () in
        let fired = ref false in
        Engine.at eng 10_000 (fun () -> fired := true);
        Engine.run eng ~until:5_000;
        Alcotest.(check bool) "not yet" false !fired;
        Alcotest.(check int) "clock" 5_000 (Engine.now eng);
        Engine.run eng ~until:20_000;
        Alcotest.(check bool) "fired" true !fired);
    test "messages are delivered to up nodes" (fun () ->
        let eng = Engine.create ~seed:1 ~n:2 () in
        let log = ref [] in
        for i = 0 to 1 do
          Engine.set_behavior eng i (echo_behavior log)
        done;
        Engine.start_all eng;
        Engine.set_behavior eng 0 (fun io ->
            io.send 1 "hi";
            echo_behavior log io);
        (* restart node 0 so the new behavior (which sends) runs *)
        Engine.crash eng 0;
        Engine.recover eng 0;
        Engine.run eng ~until:1_000_000;
        Alcotest.(check bool) "received" true
          (List.exists (fun (n, _, m) -> n = 1 && m = "hi") !log));
    test "messages to down nodes are lost" (fun () ->
        let eng = Engine.create ~seed:1 ~n:2 () in
        let log = ref [] in
        Engine.set_behavior eng 1 (echo_behavior log);
        Engine.set_behavior eng 0 (fun io ->
            io.send 1 "lost";
            echo_behavior log io);
        Engine.start eng 0;
        (* node 1 never started: delivery dropped, counted *)
        Engine.run eng ~until:1_000_000;
        Alcotest.(check (list (triple int int string))) "empty" [] !log;
        Alcotest.(check bool) "counted" true
          (Metrics.get (Engine.metrics eng) ~node:1 "msgs_lost_down" >= 1));
    test "timers are volatile: crash cancels them" (fun () ->
        let eng : unit Engine.t = Engine.create ~seed:1 ~n:1 () in
        let fired = ref false in
        Engine.set_behavior eng 0 (fun io ~src:_ () -> ignore io);
        Engine.set_behavior eng 0 (fun io ->
            if io.incarnation = 0 then io.after 1_000 (fun () -> fired := true);
            fun ~src:_ () -> ());
        Engine.start eng 0;
        Engine.at eng 500 (fun () -> Engine.crash eng 0);
        Engine.at eng 600 (fun () -> Engine.recover eng 0);
        Engine.run eng ~until:10_000;
        Alcotest.(check bool) "old timer dead" false !fired);
    test "incarnation increments on recovery; storage survives" (fun () ->
        let eng : unit Engine.t = Engine.create ~seed:1 ~n:1 () in
        let incs = ref [] in
        Engine.set_behavior eng 0 (fun io ->
            incs := io.incarnation :: !incs;
            if io.incarnation = 0 then
              Abcast_sim.Storage.write io.store ~layer:"t" ~key:"k" "v"
            else
              Alcotest.(check (option string))
                "durable" (Some "v")
                (Abcast_sim.Storage.read io.store "k");
            fun ~src:_ () -> ());
        Engine.start eng 0;
        Engine.crash eng 0;
        Engine.recover eng 0;
        Alcotest.(check (list int)) "incarnations" [ 1; 0 ] !incs;
        Alcotest.(check int) "engine view" 1 (Engine.incarnation eng 0));
    test "start is idempotent while up" (fun () ->
        let eng : unit Engine.t = Engine.create ~seed:1 ~n:1 () in
        let boots = ref 0 in
        Engine.set_behavior eng 0 (fun _io ->
            incr boots;
            fun ~src:_ () -> ());
        Engine.start eng 0;
        Engine.start eng 0;
        Alcotest.(check int) "boots" 1 !boots);
    test "sends from a stale incarnation are suppressed" (fun () ->
        let eng = Engine.create ~seed:1 ~n:2 () in
        let log = ref [] in
        let stale_io = ref None in
        Engine.set_behavior eng 1 (echo_behavior log);
        Engine.set_behavior eng 0 (fun io ->
            if io.incarnation = 0 then stale_io := Some io;
            fun ~src:_ _ -> ());
        Engine.start_all eng;
        Engine.crash eng 0;
        Engine.recover eng 0;
        (match !stale_io with
        | Some (io : string Engine.io) -> io.send 1 "ghost"
        | None -> Alcotest.fail "no io captured");
        Engine.run eng ~until:1_000_000;
        Alcotest.(check bool) "no ghost" true
          (not (List.exists (fun (_, _, m) -> m = "ghost") !log)));
    test "run_until stops when predicate holds" (fun () ->
        let eng : unit Engine.t = Engine.create ~seed:1 ~n:1 () in
        let x = ref 0 in
        for i = 1 to 10 do
          Engine.at eng (i * 100) (fun () -> incr x)
        done;
        let ok = Engine.run_until eng ~pred:(fun () -> !x >= 3) () in
        Alcotest.(check bool) "stopped" true ok;
        Alcotest.(check int) "exactly 3" 3 !x);
    test "max_events bounds the run" (fun () ->
        let eng : unit Engine.t = Engine.create ~seed:1 ~n:1 () in
        let x = ref 0 in
        for i = 1 to 100 do
          Engine.at eng i (fun () -> incr x)
        done;
        Engine.run eng ~max_events:10;
        Alcotest.(check int) "ten" 10 !x);
    test "map_io wraps sends" (fun () ->
        let eng = Engine.create ~seed:1 ~n:2 () in
        let got = ref [] in
        Engine.set_behavior eng 1 (fun _io ~src:_ m -> got := m :: !got);
        Engine.set_behavior eng 0 (fun io ->
            let sub = Engine.map_io (fun i -> `Wrapped i) io in
            sub.send 1 7;
            fun ~src:_ _ -> ());
        Engine.start_all eng;
        Engine.run eng ~until:1_000_000;
        Alcotest.(check bool) "wrapped" true (List.mem (`Wrapped 7) !got));
    test "deterministic runs: same seed, same event count" (fun () ->
        let go seed =
          let eng = Engine.create ~seed ~n:3 () in
          let log = ref [] in
          for i = 0 to 2 do
            Engine.set_behavior eng i (fun io ->
                io.multisend "x";
                echo_behavior log io)
          done;
          Engine.start_all eng;
          Engine.run eng ~until:100_000;
          (Engine.events_processed eng, List.length !log)
        in
        Alcotest.(check (pair int int)) "equal" (go 5) (go 5);
        ignore (go 6));
  ]

let faults_tests =
  [
    test "plan_random needs a good majority" (fun () ->
        let rng = Rng.create 1 in
        Alcotest.check_raises "bad majority"
          (Invalid_argument "Faults.plan_random: need a good majority")
          (fun () ->
            ignore (Faults.plan_random ~rng ~n:4 ~n_bad:2 ~stability:1000 ())));
    test "plan marks the requested number of bad processes" (fun () ->
        let rng = Rng.create 2 in
        let plan = Faults.plan_random ~rng ~n:5 ~n_bad:2 ~stability:10_000 () in
        let bad = Array.to_list plan.good |> List.filter not |> List.length in
        Alcotest.(check int) "bad" 2 bad;
        Alcotest.(check int) "good list" 3 (List.length (Faults.good_nodes plan)));
    test "good processes end up and stay up" (fun () ->
        let rng = Rng.create 3 in
        let plan = Faults.plan_random ~rng ~n:3 ~stability:50_000 () in
        (* final event of each good node, if any, must be a recovery
           strictly before stability *)
        Array.iteri
          (fun node good ->
            if good then
              let evs =
                List.filter (fun (e : Faults.event) -> e.node = node) plan.events
              in
              match List.rev evs with
              | [] -> ()
              | last :: _ ->
                Alcotest.(check bool) "recover" true (last.kind = Faults.Recover);
                Alcotest.(check bool) "before stability" true
                  (last.time < 50_000))
          plan.good);
    test "events are time-sorted" (fun () ->
        let rng = Rng.create 4 in
        let plan = Faults.plan_random ~rng ~n:5 ~n_bad:1 ~stability:20_000 () in
        let times = List.map (fun (e : Faults.event) -> e.time) plan.events in
        Alcotest.(check (list int)) "sorted" (List.sort compare times) times);
    test "apply schedules crashes and recoveries" (fun () ->
        let eng : unit Engine.t = Engine.create ~seed:1 ~n:2 () in
        for i = 0 to 1 do
          Engine.set_behavior eng i (fun _io ~src:_ () -> ())
        done;
        Engine.start_all eng;
        Faults.down_between eng ~node:1 ~from_:100 ~until:200;
        Engine.run eng ~until:150;
        Alcotest.(check bool) "down" false (Engine.is_up eng 1);
        Engine.run eng ~until:250;
        Alcotest.(check bool) "up" true (Engine.is_up eng 1));
  ]

let engine_bytes_tests =
  [
    test "byte accounting counts serialized sizes" (fun () ->
        let eng =
          Engine.create ~seed:1 ~n:2 ~msg_size:String.length ()
        in
        Engine.set_behavior eng 1 (fun _io ~src:_ (_ : string) -> ());
        Engine.set_behavior eng 0 (fun io ->
            io.send 1 "12345";
            io.send 1 "12";
            fun ~src:_ _ -> ());
        Engine.start_all eng;
        Engine.run eng ~until:1_000_000;
        Alcotest.(check int) "bytes" 7
          (Metrics.get (Engine.metrics eng) ~node:0 "net_bytes"));
  ]

let suite =
  ( "sim",
    storage_tests @ storage_file_tests @ metrics_tests @ net_tests
    @ trace_tests @ engine_tests @ engine_bytes_tests @ faults_tests )
