(* Unit and property tests for the core data structures: Payload, Vclock,
   Agreed, Batch. *)

open Helpers
module Vclock = Abcast_core.Vclock
module Agreed = Abcast_core.Agreed
module Batch = Abcast_core.Batch

let id origin boot seq = { Payload.origin; boot; seq }

let pl ?(data = "d") i = Payload.make i data

let payload_tests =
  [
    test "id ordering is (origin, boot, seq)" (fun () ->
        Alcotest.(check bool) "origin" true
          (Payload.compare_id (id 0 5 5) (id 1 0 0) < 0);
        Alcotest.(check bool) "boot" true
          (Payload.compare_id (id 1 0 9) (id 1 1 0) < 0);
        Alcotest.(check bool) "seq" true
          (Payload.compare_id (id 1 1 0) (id 1 1 1) < 0);
        Alcotest.(check int) "equal" 0 (Payload.compare_id (id 2 1 3) (id 2 1 3)));
    test "equal_id" (fun () ->
        Alcotest.(check bool) "eq" true (Payload.equal_id (id 1 2 3) (id 1 2 3));
        Alcotest.(check bool) "neq" false (Payload.equal_id (id 1 2 3) (id 1 2 4)));
    test "payload compare ignores data" (fun () ->
        Alcotest.(check int) "same id" 0
          (Payload.compare (pl ~data:"a" (id 0 0 0)) (pl ~data:"b" (id 0 0 0))));
    test "sort_batch sorts and dedupes" (fun () ->
        let batch =
          [ pl (id 1 0 0); pl (id 0 0 1); pl (id 1 0 0); pl (id 0 0 0) ]
        in
        let sorted = Payload.sort_batch batch in
        Alcotest.(check (list string))
          "ids"
          [ "p0.0.0"; "p0.0.1"; "p1.0.0" ]
          (List.map (fun (p : Payload.t) -> Format.asprintf "%a" Payload.pp_id p.id) sorted));
    test "pp_id renders" (fun () ->
        Alcotest.(check string) "fmt" "p2.1.7"
          (Format.asprintf "%a" Payload.pp_id (id 2 1 7)));
  ]

let vclock_tests =
  [
    test "empty contains nothing" (fun () ->
        Alcotest.(check bool) "none" false (Vclock.contains Vclock.empty (id 0 0 0)));
    test "add then contains up to max seq" (fun () ->
        let vc = Vclock.add (Vclock.add Vclock.empty (id 0 0 0)) (id 0 0 1) in
        Alcotest.(check bool) "0" true (Vclock.contains vc (id 0 0 0));
        Alcotest.(check bool) "1" true (Vclock.contains vc (id 0 0 1));
        Alcotest.(check bool) "2" false (Vclock.contains vc (id 0 0 2)));
    test "streams are independent" (fun () ->
        let vc = Vclock.add (Vclock.add Vclock.empty (id 0 0 0)) (id 1 0 0) in
        Alcotest.(check bool) "other boot" false (Vclock.contains vc (id 0 1 0));
        Alcotest.(check int) "two streams" 2 (List.length (Vclock.streams vc)));
    test "gap raises" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Vclock.add Vclock.empty (id 0 0 1));
             false
           with Invalid_argument _ -> true));
    test "rewind raises" (fun () ->
        let vc = Vclock.add (Vclock.add Vclock.empty (id 0 0 0)) (id 0 0 1) in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Vclock.add vc (id 0 0 1));
             false
           with Invalid_argument _ -> true));
    test "same seq different boots are distinct streams" (fun () ->
        let vc = Vclock.add (Vclock.add Vclock.empty (id 0 0 0)) (id 0 1 0) in
        Alcotest.(check bool) "b0" true (Vclock.contains vc (id 0 0 0));
        Alcotest.(check bool) "b1" true (Vclock.contains vc (id 0 1 0)));
  ]

let vclock_props =
  [
    QCheck.Test.make ~name:"vclock contains exactly the added prefix" ~count:200
      QCheck.(pair (int_range 0 20) (int_range 0 20))
      (fun (len, probe) ->
        let vc = ref Vclock.empty in
        for s = 0 to len - 1 do
          vc := Vclock.add !vc (id 3 1 s)
        done;
        Vclock.contains !vc (id 3 1 probe) = (probe < len));
  ]

let agreed_tests =
  [
    test "append then contains; duplicates rejected" (fun () ->
        let q = Agreed.create () in
        Alcotest.(check bool) "fresh" true (Agreed.append q (pl (id 0 0 0)));
        Alcotest.(check bool) "dup" false (Agreed.append q (pl (id 0 0 0)));
        Alcotest.(check int) "len" 1 (Agreed.total_len q));
    test "tail preserves append order" (fun () ->
        let q = Agreed.create () in
        ignore (Agreed.append q (pl (id 1 0 0)));
        ignore (Agreed.append q (pl (id 0 0 0)));
        Alcotest.(check (list string)) "order" [ "p1.0.0"; "p0.0.0" ]
          (List.map
             (fun (p : Payload.t) -> Format.asprintf "%a" Payload.pp_id p.id)
             (Agreed.tail q)));
    test "compact keeps membership, empties tail" (fun () ->
        let q = Agreed.create () in
        ignore (Agreed.append q (pl (id 0 0 0)));
        ignore (Agreed.append q (pl (id 1 0 0)));
        Agreed.compact q ~app_blob:"snap";
        Alcotest.(check int) "len" 2 (Agreed.total_len q);
        Alcotest.(check int) "tail" 0 (List.length (Agreed.tail q));
        Alcotest.(check bool) "contains" true (Agreed.contains q (id 0 0 0));
        Alcotest.(check bool) "dup still rejected" false
          (Agreed.append q (pl (id 0 0 0))));
    test "snapshot/restore roundtrip" (fun () ->
        let q = Agreed.create () in
        ignore (Agreed.append q (pl (id 0 0 0)));
        Agreed.compact q ~app_blob:"s";
        ignore (Agreed.append q (pl (id 0 0 1)));
        let r = Agreed.snapshot q in
        let q' = Agreed.restore r in
        Alcotest.(check int) "len" 2 (Agreed.total_len q');
        Alcotest.(check int) "tail" 1 (List.length (Agreed.tail q'));
        Alcotest.(check bool) "contains base" true (Agreed.contains q' (id 0 0 0)));
    test "adopt: donor behind is a no-op" (fun () ->
        let q = Agreed.create () in
        ignore (Agreed.append q (pl (id 0 0 0)));
        let donor = Agreed.create () in
        (match Agreed.adopt q (Agreed.snapshot donor) with
        | `Deliver [] -> ()
        | _ -> Alcotest.fail "expected empty deliver");
        Alcotest.(check int) "unchanged" 1 (Agreed.total_len q));
    test "adopt: deliver path returns only the missing suffix" (fun () ->
        let donor = Agreed.create () in
        ignore (Agreed.append donor (pl (id 0 0 0)));
        ignore (Agreed.append donor (pl (id 1 0 0)));
        ignore (Agreed.append donor (pl (id 2 0 0)));
        let q = Agreed.create () in
        ignore (Agreed.append q (pl (id 0 0 0)));
        (match Agreed.adopt q (Agreed.snapshot donor) with
        | `Deliver missing ->
          Alcotest.(check (list string)) "suffix" [ "p1.0.0"; "p2.0.0" ]
            (List.map
               (fun (p : Payload.t) -> Format.asprintf "%a" Payload.pp_id p.id)
               missing)
        | `Install _ -> Alcotest.fail "expected deliver");
        Alcotest.(check int) "caught up" 3 (Agreed.total_len q));
    test "adopt: install path when behind the donor's base" (fun () ->
        let donor = Agreed.create () in
        ignore (Agreed.append donor (pl (id 0 0 0)));
        ignore (Agreed.append donor (pl (id 1 0 0)));
        Agreed.compact donor ~app_blob:"base2";
        ignore (Agreed.append donor (pl (id 2 0 0)));
        let q = Agreed.create () in
        ignore (Agreed.append q (pl (id 0 0 0)));
        (match Agreed.adopt q (Agreed.snapshot donor) with
        | `Install (Some "base2", [ p ]) ->
          Alcotest.(check string) "tail" "p2.0.0"
            (Format.asprintf "%a" Payload.pp_id p.id)
        | _ -> Alcotest.fail "expected install of base2 with 1 tail msg");
        Alcotest.(check int) "adopted len" 3 (Agreed.total_len q));
    test "suffix_snapshot returns only the missing part" (fun () ->
        let q = Agreed.create () in
        ignore (Agreed.append q (pl (id 0 0 0)));
        ignore (Agreed.append q (pl (id 1 0 0)));
        ignore (Agreed.append q (pl (id 2 0 0)));
        (match Agreed.suffix_snapshot q ~from_len:1 with
        | Some r ->
          Alcotest.(check int) "base" 1 r.base_len;
          Alcotest.(check int) "tail" 2 (List.length r.tail);
          Alcotest.(check bool) "no app" true (r.base_app = None)
        | None -> Alcotest.fail "expected a suffix");
        (* adopting the suffix catches the receiver up *)
        let receiver = Agreed.create () in
        ignore (Agreed.append receiver (pl (id 0 0 0)));
        (match
           Agreed.adopt receiver (Option.get (Agreed.suffix_snapshot q ~from_len:1))
         with
        | `Deliver missing -> Alcotest.(check int) "two" 2 (List.length missing)
        | `Install _ -> Alcotest.fail "deliver path expected");
        Alcotest.(check int) "caught up" 3 (Agreed.total_len receiver));
    test "adopt of a trimmed repr keeps the local prefix in the tail" (fun () ->
        (* regression: adopting a suffix snapshot must append the missing
           messages, not replace the receiver's state with the prefix-less
           trimmed repr (which would drop already-delivered messages from
           [tail] and break the delivered-sequence prefix property) *)
        let q = Agreed.create () in
        ignore (Agreed.append q (pl (id 0 0 0)));
        ignore (Agreed.append q (pl (id 1 0 0)));
        ignore (Agreed.append q (pl (id 2 0 0)));
        let receiver = Agreed.create () in
        ignore (Agreed.append receiver (pl (id 0 0 0)));
        (match
           Agreed.adopt receiver (Option.get (Agreed.suffix_snapshot q ~from_len:1))
         with
        | `Deliver _ -> ()
        | `Install _ -> Alcotest.fail "deliver path expected");
        Alcotest.(check (list string)) "full tail retained"
          [ "p0.0.0"; "p1.0.0"; "p2.0.0" ]
          (List.map
             (fun (p : Payload.t) -> Format.asprintf "%a" Payload.pp_id p.id)
             (Agreed.tail receiver));
        Alcotest.(check bool) "prefix still contained" true
          (Agreed.contains receiver (id 0 0 0)));
    test "suffix_snapshot refuses to reach into the base" (fun () ->
        let q = Agreed.create () in
        ignore (Agreed.append q (pl (id 0 0 0)));
        ignore (Agreed.append q (pl (id 1 0 0)));
        Agreed.compact q ~app_blob:"s";
        ignore (Agreed.append q (pl (id 2 0 0)));
        Alcotest.(check bool) "inside base" true
          (Agreed.suffix_snapshot q ~from_len:1 = None);
        Alcotest.(check bool) "beyond end" true
          (Agreed.suffix_snapshot q ~from_len:9 = None);
        Alcotest.(check bool) "at base edge ok" true
          (Agreed.suffix_snapshot q ~from_len:2 <> None));
    test "fifo violation raises" (fun () ->
        let q = Agreed.create () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Agreed.append q (pl (id 0 0 5)));
             false
           with Invalid_argument _ -> true));
  ]

let batch_tests =
  [
    test "roundtrip preserves content" (fun () ->
        let ps = [ pl ~data:"a" (id 1 0 0); pl ~data:"b" (id 0 0 0) ] in
        let decoded = Batch.decode (Batch.encode ps) in
        Alcotest.(check int) "len" 2 (List.length decoded);
        Alcotest.(check string) "sorted first" "p0.0.0"
          (Format.asprintf "%a" Payload.pp_id (List.hd decoded).id));
    test "empty batch" (fun () ->
        Alcotest.(check int) "empty" 0 (List.length (Batch.decode (Batch.encode []))));
    test "equal sets encode equally regardless of order" (fun () ->
        let a = [ pl (id 0 0 0); pl (id 1 0 0) ] in
        let b = [ pl (id 1 0 0); pl (id 0 0 0) ] in
        Alcotest.(check string) "equal" (Batch.encode a) (Batch.encode b));
    test "duplicates removed by encode" (fun () ->
        let ps = [ pl (id 0 0 0); pl (id 0 0 0) ] in
        Alcotest.(check int) "one" 1 (List.length (Batch.decode (Batch.encode ps))));
    test "size is the string length" (fun () ->
        let v = Batch.encode [ pl (id 0 0 0) ] in
        Alcotest.(check int) "size" (String.length v) (Batch.size v));
  ]

let agreed_props =
  [
    QCheck.Test.make ~name:"adopt always reconciles receiver with donor"
      ~count:200
      QCheck.(pair (int_range 0 20) (int_range 0 20))
      (fun (donor_len, cut) ->
        (* donor delivers donor_len messages of one stream; receiver holds
           a prefix of length min cut donor_len; after adopt they agree *)
        let donor = Agreed.create () in
        for s = 0 to donor_len - 1 do
          ignore (Agreed.append donor (pl (id 0 0 s)))
        done;
        let receiver = Agreed.create () in
        for s = 0 to min cut donor_len - 1 do
          ignore (Agreed.append receiver (pl (id 0 0 s)))
        done;
        (match Agreed.adopt receiver (Agreed.snapshot donor) with
        | `Deliver _ | `Install _ -> ());
        Agreed.total_len receiver = max donor_len (min cut donor_len)
        && Agreed.vc receiver
           = (if donor_len >= min cut donor_len then Agreed.vc donor
              else Agreed.vc receiver));
    QCheck.Test.make ~name:"suffix_snapshot + adopt equals full adopt"
      ~count:200
      QCheck.(pair (int_range 1 20) (int_range 0 20))
      (fun (donor_len, cut) ->
        let cut = min cut donor_len in
        let donor = Agreed.create () in
        for s = 0 to donor_len - 1 do
          ignore (Agreed.append donor (pl (id 0 0 s)))
        done;
        match Agreed.suffix_snapshot donor ~from_len:cut with
        | None -> false (* no base: every prefix must be available *)
        | Some trimmed ->
          let receiver = Agreed.create () in
          for s = 0 to cut - 1 do
            ignore (Agreed.append receiver (pl (id 0 0 s)))
          done;
          (match Agreed.adopt receiver trimmed with
          | `Deliver _ -> ()
          | `Install _ -> ());
          Agreed.total_len receiver = donor_len
          && Agreed.vc receiver = Agreed.vc donor);
  ]

let batch_props =
  [
    QCheck.Test.make ~name:"batch roundtrip = sort_batch" ~count:200
      QCheck.(list (triple (int_range 0 4) (int_range 0 2) (int_range 0 5)))
      (fun triples ->
        let ps = List.map (fun (o, b, s) -> pl (id o b s)) triples in
        Batch.decode (Batch.encode ps) = Payload.sort_batch ps);
  ]

let suite =
  ( "core-units",
    payload_tests @ vclock_tests @ agreed_tests @ batch_tests
    @ List.map QCheck_alcotest.to_alcotest
        (vclock_props @ agreed_props @ batch_props) )
