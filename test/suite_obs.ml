(* Observability layer tests: log-bucketed histogram accuracy and edge
   cases, span bookkeeping, Chrome-trace export validity, the
   instrumented lifecycle stages, and the live Prometheus endpoint. *)

open Helpers
module Histogram = Abcast_util.Histogram
module Trace = Abcast_sim.Trace
module Flight = Abcast_sim.Flight
module Factory = Abcast_core.Factory
module Durable = Abcast_store.Durable
module Live = Abcast_live.Runtime

let of_samples xs =
  let h = Histogram.create () in
  List.iter (Histogram.add h) xs;
  h

(* Exact nearest-rank percentile of a sample list, the reference the
   histogram estimate is compared against. *)
let exact_percentile xs p =
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  if n = 0 then 0.
  else if p <= 0. then List.hd sorted
  else if p >= 100. then List.nth sorted (n - 1)
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let rel_err est exact =
  if exact = 0. then Float.abs est
  else Float.abs (est -. exact) /. Float.abs exact

(* ---- histogram unit tests ---- *)

let histogram_tests =
  [
    test "histogram: empty" (fun () ->
        let h = Histogram.create () in
        Alcotest.(check int) "count" 0 (Histogram.count h);
        Alcotest.(check (float 0.)) "sum" 0. (Histogram.sum h);
        Alcotest.(check (float 0.)) "mean" 0. (Histogram.mean h);
        Alcotest.(check (float 0.)) "p50" 0. (Histogram.percentile h 50.);
        Alcotest.(check (float 0.)) "p0" 0. (Histogram.percentile h 0.);
        Alcotest.(check (float 0.)) "p100" 0. (Histogram.percentile h 100.);
        let (s : Histogram.summary) = Histogram.summary h in
        Alcotest.(check int) "summary count" 0 s.count;
        Alcotest.(check (list (pair (float 0.) int))) "buckets" []
          (Histogram.buckets h));
    test "histogram: single sample is every percentile" (fun () ->
        let h = of_samples [ 137.5 ] in
        List.iter
          (fun p ->
            Alcotest.(check (float 0.))
              (Printf.sprintf "p%g" p)
              137.5
              (Histogram.percentile h p))
          [ 0.; 1.; 50.; 99.; 100. ];
        Alcotest.(check (float 0.)) "mean" 137.5 (Histogram.mean h));
    test "histogram: p0/p100 are the exact extremes" (fun () ->
        let h = of_samples [ 3.0; 999.25; 42.0; 17.3 ] in
        Alcotest.(check (float 0.)) "p0" 3.0 (Histogram.percentile h 0.);
        Alcotest.(check (float 0.)) "p100" 999.25 (Histogram.percentile h 100.);
        Alcotest.(check (float 0.)) "min" 3.0 (Histogram.min_value h);
        Alcotest.(check (float 0.)) "max" 999.25 (Histogram.max_value h));
    test "histogram: values at and below 1 share bucket 0" (fun () ->
        let h = of_samples [ 0.0; 0.3; 1.0 ] in
        (match Histogram.buckets h with
        | [ (ub, count) ] ->
          Alcotest.(check (float 0.)) "bound" 1.0 ub;
          Alcotest.(check int) "count" 3 count
        | bs -> Alcotest.failf "expected one bucket, got %d" (List.length bs));
        (* estimates stay clamped inside the true extremes *)
        let p50 = Histogram.percentile h 50. in
        Alcotest.(check bool) "clamped" true (p50 >= 0.0 && p50 <= 1.0));
    test "histogram: bucket boundary neighbours stay within error" (fun () ->
        (* Samples straddling a bucket edge: each estimate must be within
           the documented relative error of its own sample. *)
        let gamma = 1.04 in
        List.iter
          (fun b ->
            let edge = gamma ** float_of_int b in
            List.iter
              (fun v ->
                let h = of_samples [ v ] in
                Alcotest.(check bool)
                  (Printf.sprintf "single %.6f" v)
                  true
                  (rel_err (Histogram.percentile h 50.) v <= 1e-9))
              [ edge *. 0.999; edge; edge *. 1.001 ])
          [ 1; 2; 10; 100; 400 ]);
    test "histogram: overflow bucket reports infinity and exact max"
      (fun () ->
        let huge = 1e12 in
        let h = of_samples [ 5.0; huge ] in
        let bounds = List.map fst (Histogram.buckets h) in
        Alcotest.(check bool) "has +inf bucket" true
          (List.exists (fun b -> b = infinity) bounds);
        Alcotest.(check (float 0.)) "p100 exact" huge
          (Histogram.percentile h 100.);
        (* interior estimate of the overflow sample clamps to true max *)
        Alcotest.(check bool) "p75 finite and clamped" true
          (Histogram.percentile h 75. <= huge));
    test "histogram: clear empties in place" (fun () ->
        let h = of_samples [ 1.0; 2.0; 3.0 ] in
        Histogram.clear h;
        Alcotest.(check int) "count" 0 (Histogram.count h);
        Histogram.add h 9.0;
        Alcotest.(check int) "usable after clear" 1 (Histogram.count h);
        Alcotest.(check (float 0.)) "fresh min" 9.0 (Histogram.min_value h));
  ]

(* ---- QCheck properties ---- *)

(* Positive samples spread over six decades; > 1 so every sample is in a
   geometric bucket where the relative-error bound applies. *)
let sample_gen =
  QCheck.Gen.(map (fun e -> 10. ** e) (float_range 0.001 6.0))

let samples_arb n = QCheck.make QCheck.Gen.(list_size (int_range 1 n) sample_gen)

let qcheck_props =
  [
    QCheck.Test.make ~name:"histogram: merge equals concatenation" ~count:100
      (QCheck.pair (samples_arb 200) (samples_arb 200))
      (fun (xs, ys) ->
        let a = of_samples xs and b = of_samples ys in
        let merged = Histogram.merge a b in
        let concat = of_samples (xs @ ys) in
        Histogram.buckets merged = Histogram.buckets concat
        && Histogram.count merged = Histogram.count concat
        && rel_err (Histogram.sum merged) (Histogram.sum concat) < 1e-9
        && Histogram.percentile merged 50. = Histogram.percentile concat 50.);
    QCheck.Test.make ~name:"histogram: merge_into matches merge" ~count:100
      (QCheck.pair (samples_arb 100) (samples_arb 100))
      (fun (xs, ys) ->
        let a = of_samples xs and b = of_samples ys in
        let m = Histogram.merge a b in
        let dst = of_samples xs in
        Histogram.merge_into ~dst b;
        Histogram.buckets dst = Histogram.buckets m
        && Histogram.count dst = Histogram.count m);
    QCheck.Test.make
      ~name:"histogram: p50/p95 within documented error of exact (10k)"
      ~count:20
      (QCheck.make QCheck.Gen.(list_size (return 10_000) sample_gen))
      (fun xs ->
        let h = of_samples xs in
        List.for_all
          (fun p ->
            let est = Histogram.percentile h p in
            let exact = exact_percentile xs p in
            (* nearest-rank vs bucket-midpoint can differ by one rank on
               top of the bucket error; allow a small slack above the
               documented bound *)
            rel_err est exact <= Histogram.bucket_error +. 0.01)
          [ 50.; 95. ]);
    QCheck.Test.make ~name:"histogram: mean and extremes are exact" ~count:100
      (samples_arb 300)
      (fun xs ->
        let h = of_samples xs in
        let n = List.length xs in
        let exact_mean = List.fold_left ( +. ) 0. xs /. float_of_int n in
        rel_err (Histogram.mean h) exact_mean < 1e-9
        && Histogram.min_value h = List.fold_left Float.min infinity xs
        && Histogram.max_value h = List.fold_left Float.max neg_infinity xs);
  ]

(* ---- trace spans and emitf cost ---- *)

(* A mini JSON validator: accepts exactly the grammar we emit. Returns
   the index after the value or raises. *)
let validate_json s =
  let n = String.length s in
  let fail i msg = Alcotest.failf "invalid JSON at %d: %s" i msg in
  let rec skip_ws i = if i < n && (s.[i] = ' ' || s.[i] = '\n') then skip_ws (i + 1) else i in
  let rec value i =
    let i = skip_ws i in
    if i >= n then fail i "eof"
    else
      match s.[i] with
      | '{' -> obj (skip_ws (i + 1)) true
      | '[' -> arr (skip_ws (i + 1)) true
      | '"' -> string_ (i + 1)
      | '-' | '0' .. '9' -> number i
      | 't' -> lit i "true"
      | 'f' -> lit i "false"
      | 'n' -> lit i "null"
      | c -> fail i (Printf.sprintf "unexpected %c" c)
  and lit i w =
    if i + String.length w <= n && String.sub s i (String.length w) = w then
      i + String.length w
    else fail i w
  and string_ i =
    if i >= n then fail i "unterminated string"
    else if s.[i] = '"' then i + 1
    else if s.[i] = '\\' then
      if i + 1 < n then string_ (i + 2) else fail i "bad escape"
    else string_ (i + 1)
  and number i =
    let j = ref i in
    if !j < n && s.[!j] = '-' then incr j;
    let digits = ref 0 in
    while
      !j < n
      && (match s.[!j] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false)
    do
      incr digits;
      incr j
    done;
    if !digits = 0 then fail i "empty number" else !j
  and obj i first =
    let i = skip_ws i in
    if i < n && s.[i] = '}' then i + 1
    else
      let i = if first then i else if i < n && s.[i] = ',' then skip_ws (i + 1) else fail i "expected ,"
      in
      if i < n && s.[i] = '"' then begin
        let i = string_ (i + 1) in
        let i = skip_ws i in
        if i < n && s.[i] = ':' then obj_after_value (value (i + 1)) else fail i "expected :"
      end
      else fail i "expected key"
  and obj_after_value i =
    let i = skip_ws i in
    if i < n && s.[i] = '}' then i + 1
    else if i < n && s.[i] = ',' then obj (skip_ws i) false
    else fail i "expected , or }"
  and arr i first =
    let i = skip_ws i in
    if i < n && s.[i] = ']' then i + 1
    else
      let i =
        if first then i
        else if i < n && s.[i] = ',' then skip_ws (i + 1)
        else fail i "expected ,"
      in
      arr_after_value (value i)
  and arr_after_value i =
    let i = skip_ws i in
    if i < n && s.[i] = ']' then i + 1
    else if i < n && s.[i] = ',' then arr (skip_ws i) false
    else fail i "expected , or ]"
  in
  let i = skip_ws (value 0) in
  if i <> n then fail i "trailing garbage"

let trace_tests =
  [
    test "trace: emitf does not format when disabled" (fun () ->
        let t = Trace.create ~enabled:false () in
        let invoked = ref false in
        let pp ppf () =
          invoked := true;
          Format.pp_print_string ppf "x"
        in
        Trace.emitf t ~time:1 ~node:0 "hello %a %d" pp () 42;
        Alcotest.(check bool) "formatter not invoked" false !invoked;
        Alcotest.(check int) "nothing recorded" 0
          (List.length (Trace.entries t));
        Trace.enable t true;
        Trace.emitf t ~time:2 ~node:0 "hello %a %d" pp () 42;
        Alcotest.(check bool) "formatter invoked when enabled" true !invoked;
        match Trace.entries t with
        | [ e ] -> Alcotest.(check string) "text" "hello x 42" e.Trace.text
        | l -> Alcotest.failf "expected one entry, got %d" (List.length l));
    test "trace: spans are no-ops when disabled" (fun () ->
        let t = Trace.create ~enabled:false () in
        Trace.span_begin t ~time:1 ~node:0 ~stage:"abcast" "k";
        Trace.span_end t ~time:2 ~node:0 ~stage:"abcast" "k";
        Alcotest.(check int) "no spans" 0 (List.length (Trace.spans t));
        Alcotest.(check bool) "enabled is false" false (Trace.enabled t));
    test "trace: chrome export of a seeded run is valid and well-paired"
      (fun () ->
        let trace = Trace.create ~enabled:true () in
        let cluster =
          Cluster.create (Factory.basic ()) ~seed:11 ~n:3 ~trace ()
        in
        let rng = Rng.create 99 in
        let count =
          Workload.open_loop cluster ~rng ~senders:[ 0; 1; 2 ] ~start:1_000
            ~stop:20_000 ~mean_gap:1_200 ()
        in
        let ok =
          Cluster.run_until cluster ~until:30_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
            ()
        in
        Alcotest.(check bool) "quiesced" true ok;
        let spans = Trace.spans trace in
        Alcotest.(check bool) "spans recorded" true (spans <> []);
        (* every begin has exactly one matching end, never end-first *)
        let open_tbl = Hashtbl.create 64 in
        List.iter
          (fun (sp : Trace.span) ->
            let key = (sp.stage, sp.key) in
            match sp.phase with
            | Trace.B ->
              Alcotest.(check bool)
                (Printf.sprintf "no double begin %s/%s" sp.stage sp.key)
                false (Hashtbl.mem open_tbl key);
              Hashtbl.add open_tbl key sp.time
            | Trace.E ->
              (match Hashtbl.find_opt open_tbl key with
              | None ->
                Alcotest.failf "end without begin: %s/%s" sp.stage sp.key
              | Some t0 ->
                Alcotest.(check bool) "end not before begin" true
                  (sp.time >= t0);
                Hashtbl.remove open_tbl key))
          spans;
        (* abcast spans all close on a clean run *)
        Hashtbl.iter
          (fun (stage, key) _ ->
            if stage = "abcast" then
              Alcotest.failf "unclosed abcast span %s" key)
          open_tbl;
        let json = Trace.to_chrome_json trace in
        validate_json json;
        (* ts values are monotone: scan for every "ts": occurrence *)
        let last = ref min_int in
        let i = ref 0 in
        let len = String.length json in
        let pat = "\"ts\":" in
        while
          !i < len - String.length pat
          && String.length json - !i >= String.length pat
        do
          if String.sub json !i (String.length pat) = pat then begin
            let j = ref (!i + String.length pat) in
            let v = ref 0 in
            while !j < len && json.[!j] >= '0' && json.[!j] <= '9' do
              v := (!v * 10) + (Char.code json.[!j] - Char.code '0');
              incr j
            done;
            Alcotest.(check bool) "monotone ts" true (!v >= !last);
            last := !v;
            i := !j
          end
          else incr i
        done;
        Alcotest.(check bool) "saw ts values" true (!last > min_int));
  ]

(* ---- lifecycle instrumentation on a seeded sim run ---- *)

let with_dir f =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "abcast-obs-%d-%d" (Unix.getpid ()) (Random.int 100000))
  in
  Unix.mkdir d 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote d))))
    (fun () -> f d)

let stage_tests =
  [
    test "stages: seeded run populates lifecycle and WAL histograms"
      (fun () ->
        with_dir (fun base ->
            let storage ~metrics ~node =
              Storage.create
                ~dir:(Filename.concat base (Printf.sprintf "n%d" node))
                ~backend:`Wal ~fsync:Durable.Always ~metrics ~node ()
            in
            let cluster =
              Cluster.create (Factory.basic ()) ~seed:5 ~n:3 ~storage ()
            in
            let rng = Rng.create 55 in
            let count =
              Workload.open_loop cluster ~rng ~senders:[ 0; 1; 2 ]
                ~start:1_000 ~stop:25_000 ~mean_gap:1_500 ()
            in
            let ok =
              Cluster.run_until cluster ~until:30_000_000
                ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
                ()
            in
            Alcotest.(check bool) "quiesced" true ok;
            List.iter
              (fun name ->
                match Cluster.hist_summary cluster name with
                | None -> Alcotest.failf "series %s never observed" name
                | Some (s : Histogram.summary) ->
                  Alcotest.(check bool) (name ^ " has samples") true
                    (s.count > 0);
                  Alcotest.(check bool) (name ^ " percentiles ordered") true
                    (s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.max))
              [
                "stage.broadcast_to_propose_us";
                "stage.propose_to_adeliver_us";
                "lat_deliver";
                "cons.propose_to_decide_us";
                "cons.instance_us";
                "wal_append_us";
                "wal_fsync_us";
                "wal_recover_us";
              ];
            (* fsync Always: every append fsyncs, so the two counts agree *)
            let c name =
              match Cluster.hist_summary cluster name with
              | Some (s : Histogram.summary) -> s.count
              | None -> 0
            in
            Alcotest.(check int) "append count = fsync count"
              (c "wal_append_us") (c "wal_fsync_us")));
  ]

(* ---- live Prometheus endpoint ---- *)

let http_get ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring sock req 0 (String.length req));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec read () =
        match Unix.read sock chunk 0 4096 with
        | 0 -> ()
        | k ->
          Buffer.add_subbytes buf chunk 0 k;
          read ()
      in
      read ();
      Buffer.contents buf)

(* One Prometheus text line: comment, blank, or name{labels} value. *)
let prom_line_ok line =
  line = ""
  || String.starts_with ~prefix:"# HELP " line
  || String.starts_with ~prefix:"# TYPE " line
  ||
  match String.index_opt line ' ' with
  | None -> false
  | Some sp ->
    let name_part = String.sub line 0 sp in
    let value_part = String.sub line (sp + 1) (String.length line - sp - 1) in
    let name_ok =
      name_part <> ""
      && String.for_all
           (fun c ->
             match c with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
             | '{' | '}' | '"' | '=' | ',' | '.' | '+' | '-' -> true
             | _ -> false)
           name_part
    in
    name_ok && float_of_string_opt value_part <> None

let live_tests =
  [
    slow_test "live: Prometheus endpoint serves parseable lifecycle metrics"
      (fun () ->
        let port = 7461 and mport = 9461 in
        match
          Live.create (Factory.basic ()) ~n:3 ~base_port:port
            ~metrics_port:mport ()
        with
        | exception Unix.Unix_error (err, _, _) ->
          Printf.printf "skipping live metrics test: %s\n"
            (Unix.error_message err)
        | live ->
          Fun.protect ~finally:(fun () -> Live.shutdown live) @@ fun () ->
          for j = 0 to 9 do
            Live.broadcast live ~node:(j mod 3) (Printf.sprintf "m%d" j)
          done;
          let deadline = Unix.gettimeofday () +. 15.0 in
          while
            (not
               (List.for_all
                  (fun i -> Live.delivered_count live i >= 10)
                  [ 0; 1; 2 ]))
            && Unix.gettimeofday () < deadline
          do
            Thread.delay 0.02
          done;
          let body = http_get ~port:mport "/metrics" in
          (* split headers from body *)
          let payload =
            match Astring.String.cut ~sep:"\r\n\r\n" body with
            | Some (_, b) -> b
            | None -> Alcotest.fail "no HTTP header/body separator"
          in
          Alcotest.(check bool) "HTTP 200" true
            (String.starts_with ~prefix:"HTTP/1.0 200" body);
          let lines = String.split_on_char '\n' payload in
          Alcotest.(check bool) "non-empty dump" true (List.length lines > 10);
          List.iter
            (fun line ->
              if not (prom_line_ok line) then
                Alcotest.failf "unparseable metrics line: %S" line)
            lines;
          (* the lifecycle histograms are present *)
          List.iter
            (fun needle ->
              Alcotest.(check bool) ("contains " ^ needle) true
                (Astring.String.is_infix ~affix:needle payload))
            [
              "abcast_stage_broadcast_to_propose_us_bucket";
              "abcast_stage_propose_to_adeliver_us_count";
              "abcast_cons_propose_to_decide_us_sum";
              "abcast_lat_deliver_bucket";
              "le=\"+Inf\"";
            ];
          (* in-process render agrees with what was served *)
          let direct = Live.prometheus live in
          Alcotest.(check bool) "direct render parses too" true
            (List.for_all prom_line_ok (String.split_on_char '\n' direct)));
  ]

(* ---- flight recorder (PR 9) ---- *)

let record_n fl n =
  for i = 0 to n - 1 do
    Flight.record fl ~time:(i * 10) ~node:(i mod 3) ~group:0 ~boot:1
      ~stage:Flight.bcast ~trace:0 ~a:i ~b:(i * 2)
  done

let flight_tests =
  [
    test "flight: ring wraps, keeping the newest events" (fun () ->
        let fl = Flight.create ~cap:8 () in
        record_n fl 20;
        Alcotest.(check int) "total" 20 (Flight.total fl);
        Alcotest.(check int) "stored" 8 (Flight.stored fl);
        Alcotest.(check int) "dropped" 12 (Flight.dropped fl);
        let evs = Flight.events fl in
        Alcotest.(check (list int)) "oldest-first tail survives"
          [ 12; 13; 14; 15; 16; 17; 18; 19 ]
          (List.map (fun (e : Flight.event) -> e.e_a) evs);
        (match evs with
        | e :: _ ->
          Alcotest.(check int) "time" 120 e.e_time;
          Alcotest.(check int) "node" 0 e.e_node;
          Alcotest.(check int) "b" 24 e.e_b
        | [] -> Alcotest.fail "no events"));
    test "flight: disabled recorder records nothing" (fun () ->
        Alcotest.(check bool) "off" false (Flight.enabled Flight.disabled);
        record_n Flight.disabled 5;
        Alcotest.(check int) "total" 0 (Flight.total Flight.disabled);
        Alcotest.(check (list int)) "events" []
          (List.map
             (fun (e : Flight.event) -> e.e_a)
             (Flight.events Flight.disabled)));
    test "flight: dump/reload roundtrips through a file" (fun () ->
        with_dir (fun base ->
            let fl = Flight.create ~cap:16 () in
            record_n fl 40;
            (* negative operands must survive the zigzag encoding *)
            Flight.record fl ~time:1000 ~node:2 ~group:3 ~boot:2
              ~stage:Flight.stjump ~trace:0 ~a:(-7) ~b:min_int;
            let path = Filename.concat base "flight.bin" in
            Flight.dump_to_file fl path;
            match Flight.load_file path with
            | Error e -> Alcotest.failf "load failed: %s" e
            | Ok d ->
              Alcotest.(check int) "dropped persisted" (Flight.dropped fl)
                d.Flight.d_dropped;
              Alcotest.(check bool) "events identical" true
                (d.Flight.d_events = Flight.events fl);
              (match List.rev d.Flight.d_events with
              | last :: _ ->
                Alcotest.(check int) "a" (-7) last.Flight.e_a;
                Alcotest.(check int) "b" min_int last.Flight.e_b
              | [] -> Alcotest.fail "empty dump")));
    test "flight: load rejects garbage and truncations" (fun () ->
        (match Flight.load_string "not a flight dump" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "garbage accepted");
        let fl = Flight.create ~cap:4 () in
        record_n fl 4;
        let s = Flight.dump_string fl in
        for len = 0 to String.length s - 1 do
          match Flight.load_string (String.sub s 0 len) with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "prefix %d accepted" len
        done);
    test "trace: ring-buffer mode bounds memory and counts drops" (fun () ->
        let t = Trace.create ~enabled:true ~cap:10 () in
        for i = 1 to 35 do
          Trace.emit t ~time:i ~node:0 (Printf.sprintf "e%d" i)
        done;
        let entries = Trace.entries t in
        let n = List.length entries in
        Alcotest.(check bool) "retains at least cap" true (n >= 10);
        Alcotest.(check bool) "bounded by two blocks" true (n <= 20);
        Alcotest.(check int) "dropped accounts the rest" (35 - n)
          (Trace.dropped_events t);
        (match List.rev entries with
        | last :: _ -> Alcotest.(check string) "newest kept" "e35" last.Trace.text
        | [] -> Alcotest.fail "no entries");
        Trace.clear t;
        Alcotest.(check int) "clear resets drops" 0 (Trace.dropped_events t));
    test "trace: unbounded mode never drops" (fun () ->
        let t = Trace.create ~enabled:true () in
        for i = 1 to 200 do
          Trace.emit t ~time:i ~node:0 "x"
        done;
        Alcotest.(check int) "all kept" 200 (List.length (Trace.entries t));
        Alcotest.(check int) "no drops" 0 (Trace.dropped_events t));
  ]

(* ---- doctor: offline trace analysis over synthetic dumps ---- *)

module Doctor = Abcast_harness.Doctor
module Trace_ctx = Abcast_core.Trace_ctx

let write_dump base i fl =
  let d = Filename.concat base (Printf.sprintf "node%d" i) in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Flight.dump_to_file fl (Filename.concat d "flight.bin")

(* A minimal healthy 3-node run: one sampled broadcast travelling
   submit -> bcast -> rx -> propose -> decide -> apply x3 -> ack, plus
   the untraced per-instance propose/decide pair every node logs. *)
let healthy_cluster ?(extra = fun (_ : int) (_ : Flight.t) -> ()) () =
  let tid = Trace_ctx.make ~node:0 ~stamp:1 in
  let fls = Array.init 3 (fun _ -> Flight.create ~cap:128 ()) in
  let rec_ i ~time ~stage ~trace ~a ~b =
    Flight.record fls.(i) ~time ~node:i ~group:0 ~boot:1 ~stage ~trace ~a ~b
  in
  Array.iteri
    (fun i fl ->
      Flight.record fl ~time:0 ~node:i ~group:0 ~boot:1 ~stage:Flight.boot
        ~trace:0 ~a:1 ~b:0)
    fls;
  rec_ 0 ~time:10 ~stage:Flight.submit ~trace:0 ~a:7 ~b:1;
  rec_ 0 ~time:20 ~stage:Flight.bcast ~trace:tid ~a:1 ~b:32;
  rec_ 1 ~time:120 ~stage:Flight.rx_ring ~trace:tid ~a:0 ~b:0;
  rec_ 2 ~time:140 ~stage:Flight.rx_gossip ~trace:tid ~a:0 ~b:0;
  (* leader proposes instance 3 carrying the payload *)
  rec_ 0 ~time:200 ~stage:Flight.propose ~trace:0 ~a:3 ~b:1;
  rec_ 0 ~time:200 ~stage:Flight.propose ~trace:tid ~a:3 ~b:0;
  for i = 0 to 2 do
    rec_ i ~time:(900 + (i * 10)) ~stage:Flight.decide ~trace:0 ~a:3 ~b:32;
    rec_ i ~time:(1000 + (i * 10)) ~stage:Flight.apply ~trace:tid ~a:5 ~b:0
  done;
  rec_ 0 ~time:1100 ~stage:Flight.ack ~trace:tid ~a:7 ~b:1;
  Array.iteri extra fls;
  fls

let analyze_cluster fls =
  with_dir (fun base ->
      Array.iteri (fun i fl -> write_dump base i fl) fls;
      match Doctor.analyze ~dir:base () with
      | Error e -> Alcotest.failf "analyze failed: %s" e
      | Ok r -> r)

let doctor_tests =
  [
    test "doctor: reconstructs the full causal path of a sampled trace"
      (fun () ->
        let r = analyze_cluster (healthy_cluster ()) in
        Alcotest.(check int) "one sampled trace" 1 (List.length r.Doctor.traces);
        Alcotest.(check int) "fully reconstructed" 1 (Doctor.reconstructed r);
        Alcotest.(check bool) "no anomalies" false (Doctor.has_anomalies r);
        let t = List.hd r.Doctor.traces in
        Alcotest.(check (option int)) "submit joined via ack" (Some 10)
          t.Doctor.submit_time;
        Alcotest.(check (option int)) "decide" (Some 900) t.Doctor.decide_time;
        Alcotest.(check int) "applied everywhere" 3
          (List.length t.Doctor.applies);
        Alcotest.(check (option int)) "ack" (Some 1100) t.Doctor.ack_time;
        (* stage table covers the whole path *)
        let names = List.map (fun s -> s.Doctor.stage) r.Doctor.stages in
        List.iter
          (fun n ->
            Alcotest.(check bool) ("stage " ^ n) true (List.mem n names))
          [
            "submit->bcast";
            "bcast->rx (dissemination)";
            "propose->decide (consensus)";
            "decide->apply";
            "apply->ack";
          ]);
    test "doctor: flags an injected stuck consensus instance" (fun () ->
        (* node 1 proposed instance 2, nobody ever decided it, yet
           instance 3 decided everywhere: instance 2 is stuck *)
        let fls =
          healthy_cluster
            ~extra:(fun i fl ->
              if i = 1 then
                Flight.record fl ~time:150 ~node:1 ~group:0 ~boot:1
                  ~stage:Flight.propose ~trace:0 ~a:2 ~b:1)
            ()
        in
        let r = analyze_cluster fls in
        Alcotest.(check bool) "anomalous" true (Doctor.has_anomalies r);
        match
          List.find_opt
            (fun a -> a.Doctor.code = "stuck-instance")
            r.Doctor.anomalies
        with
        | None -> Alcotest.fail "stuck-instance not flagged"
        | Some a ->
          Alcotest.(check bool) "names the instance" true
            (Astring.String.is_infix ~affix:"instance 2" a.Doctor.detail));
    test "doctor: flags a dedup violation, excuses state-transfer holes"
      (fun () ->
        let dup =
          healthy_cluster
            ~extra:(fun i fl ->
              if i = 2 then
                (* same boot applies the same sampled payload twice *)
                Flight.record fl ~time:1500 ~node:2 ~group:0 ~boot:1
                  ~stage:Flight.apply ~trace:(Trace_ctx.make ~node:0 ~stamp:1)
                  ~a:5 ~b:0)
            ()
        in
        let r = analyze_cluster dup in
        Alcotest.(check bool) "dedup flagged" true
          (List.exists
             (fun a -> a.Doctor.code = "dedup-violation")
             r.Doctor.anomalies));
    test "doctor: errors on a directory with no dumps" (fun () ->
        with_dir (fun base ->
            match Doctor.analyze ~dir:base () with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "accepted empty directory"));
    test "doctor: merges rotated .jsonl.N snapshot files" (fun () ->
        with_dir (fun base ->
            Array.iteri (fun i fl -> write_dump base i fl) (healthy_cluster ());
            let put name lines =
              let oc = open_out (Filename.concat base name) in
              List.iter (fun l -> output_string oc (l ^ "\n")) lines;
              close_out oc
            in
            put "m.jsonl" [ "{}"; "{}" ];
            put "m.jsonl.1" [ "{}"; "{}"; "{}" ];
            put "m.jsonl.2" [ "{}" ];
            match Doctor.analyze ~dir:base () with
            | Error e -> Alcotest.failf "analyze failed: %s" e
            | Ok r ->
              Alcotest.(check int) "all generations counted" 6
                r.Doctor.snapshots));
    test "doctor: surfaces per-node flight-ring drops" (fun () ->
        let fls = healthy_cluster () in
        (* overflow node 2's ring so its early history is overwritten *)
        for t = 1 to 300 do
          Flight.record fls.(2) ~time:(2000 + t) ~node:2 ~group:0 ~boot:1
            ~stage:Flight.submit ~trace:0 ~a:t ~b:0
        done;
        let r = analyze_cluster fls in
        let d2 =
          try List.assoc 2 r.Doctor.dropped_by_node with Not_found -> 0
        in
        Alcotest.(check bool) "node 2 dropped events" true (d2 > 0);
        Alcotest.(check int) "others dropped none" 0
          (try List.assoc 0 r.Doctor.dropped_by_node with Not_found -> 0);
        Alcotest.(check bool) "a note warns about the hole" true
          (List.exists
             (fun n -> Astring.String.is_infix ~affix:"overwrote" n)
             r.Doctor.notes));
  ]

(* ---- the online order sentinel, end to end ---- *)

module History = Abcast_sim.History

let audit_tests =
  [
    test
      "sentinel: reordered apply stream trips the live audit; doctor \
       --audit names the node"
      (fun () ->
        (* node 1 applies one decided multi-stream batch in reversed
           order — a genuine total-order violation its healthy peers
           must catch via the piggybacked order certificates *)
        let cluster =
          Cluster.create
            (Factory.alternative ~fault_reorder_node:1 ())
            ~seed:42 ~n:3
            ~flight:(fun ~node:_ -> Flight.create ~cap:8192 ())
            ()
        in
        let rng = Rng.create 4242 in
        let count =
          Workload.open_loop cluster ~rng ~senders:[ 0; 1; 2 ] ~start:1_000
            ~stop:120_000 ~mean_gap:300 ()
        in
        (* the injected violation can leave node 1 permanently short
           (its gap-skipped payloads may never be re-proposed), so only
           the healthy majority is required to quiesce *)
        let ok =
          Cluster.run_until cluster ~until:400_000_000
            ~pred:(fun () ->
              Cluster.all_caught_up cluster ~among:[ 0; 2 ] ~count ())
            ()
        in
        Alcotest.(check bool) "healthy majority quiesced" true ok;
        let m = Cluster.metrics cluster in
        Alcotest.(check bool) "fault actually fired" true
          (Metrics.get m ~node:1 "fault_reorder_injected" > 0);
        let diverged =
          List.fold_left
            (fun acc i -> acc + Metrics.get m ~node:i "audit_diverged")
            0 [ 0; 1; 2 ]
        in
        Alcotest.(check bool) "sentinel tripped live" true (diverged > 0);
        with_dir (fun base ->
            for i = 0 to 2 do
              write_dump base i (Cluster.flight cluster i)
            done;
            match Doctor.analyze ~audit:true ~dir:base () with
            | Error e -> Alcotest.failf "doctor: %s" e
            | Ok r ->
              Alcotest.(check bool) "doctor flags the divergence" true
                (List.exists
                   (fun a ->
                     a.Doctor.code = "audit-diverged"
                     || a.Doctor.code = "order-divergence")
                   r.Doctor.anomalies);
              Alcotest.(check bool) "and pinpoints node 1" true
                (List.exists
                   (fun a ->
                     (a.Doctor.code = "audit-diverged"
                     || a.Doctor.code = "order-divergence")
                     && Astring.String.is_infix ~affix:"node 1"
                          a.Doctor.detail)
                   r.Doctor.anomalies)));
    test "sentinel: a healthy run keeps every chain agreeing" (fun () ->
        let cluster =
          Cluster.create (Factory.alternative ()) ~seed:43 ~n:3
            ~flight:(fun ~node:_ -> Flight.create ~cap:8192 ())
            ()
        in
        let rng = Rng.create 4343 in
        let count =
          Workload.open_loop cluster ~rng ~senders:[ 0; 1; 2 ] ~start:1_000
            ~stop:120_000 ~mean_gap:300 ()
        in
        let ok =
          Cluster.run_until cluster ~until:400_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
            ()
        in
        Alcotest.(check bool) "run quiesced" true ok;
        let m = Cluster.metrics cluster in
        List.iter
          (fun i ->
            Alcotest.(check int)
              (Printf.sprintf "node %d never diverged" i)
              0
              (Metrics.get m ~node:i "audit_diverged"))
          [ 0; 1; 2 ];
        with_dir (fun base ->
            for i = 0 to 2 do
              write_dump base i (Cluster.flight cluster i)
            done;
            match Doctor.analyze ~audit:true ~dir:base () with
            | Error e -> Alcotest.failf "doctor: %s" e
            | Ok r ->
              Alcotest.(check bool) "no order anomalies" false
                (List.exists
                   (fun a ->
                     a.Doctor.code = "audit-diverged"
                     || a.Doctor.code = "order-divergence")
                   r.Doctor.anomalies)));
    test "history: records roundtrip through the ABHI file" (fun () ->
        with_dir (fun base ->
            let path = Filename.concat base "c.history" in
            let h = History.create ~path in
            let evs =
              [
                {
                  History.client = 0;
                  kind = History.kind_write;
                  key = 0;
                  seq = 1;
                  t_inv = 100;
                  t_resp = 250;
                  value = 1;
                  ok = true;
                };
                {
                  History.client = 3;
                  kind = History.kind_lin;
                  key = 0;
                  seq = 0;
                  t_inv = 300;
                  t_resp = 420;
                  value = 1;
                  ok = true;
                };
                {
                  History.client = 5;
                  kind = History.kind_stale;
                  key = 2;
                  seq = 0;
                  t_inv = 500;
                  t_resp = 510;
                  value = -1;
                  ok = false;
                };
              ]
            in
            List.iter (History.record h) evs;
            Alcotest.(check int) "count" 3 (History.events h);
            History.close h;
            (match History.load_file path with
            | Error e -> Alcotest.failf "load: %s" e
            | Ok got ->
              Alcotest.(check bool) "roundtrip" true (got = evs));
            (* torn tail: truncate mid-record, the prefix survives *)
            let full = In_channel.with_open_bin path In_channel.input_all in
            let torn = String.sub full 0 (String.length full - 3) in
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc torn);
            match History.load_file path with
            | Error e -> Alcotest.failf "torn load: %s" e
            | Ok got ->
              Alcotest.(check int) "intact prefix kept" 2 (List.length got)));
    test "doctor --audit: catches a linearizable read that missed an \
          acked write"
      (fun () ->
        with_dir (fun base ->
            Array.iteri (fun i fl -> write_dump base i fl) (healthy_cluster ());
            let h = History.create ~path:(Filename.concat base "c.history") in
            (* client 0's write acked at t=100; client 1 then invokes a
               lin read at t=200 and sees nothing: real-time order broken *)
            History.record h
              {
                History.client = 0;
                kind = History.kind_write;
                key = 0;
                seq = 1;
                t_inv = 50;
                t_resp = 100;
                value = 1;
                ok = true;
              };
            History.record h
              {
                History.client = 1;
                kind = History.kind_lin;
                key = 0;
                seq = 0;
                t_inv = 200;
                t_resp = 260;
                value = 0;
                ok = true;
              };
            History.close h;
            match Doctor.analyze ~audit:true ~dir:base () with
            | Error e -> Alcotest.failf "doctor: %s" e
            | Ok r ->
              (match r.Doctor.audit with
              | None -> Alcotest.fail "no audit summary"
              | Some a ->
                Alcotest.(check int) "one history" 1 a.Doctor.au_histories;
                Alcotest.(check int) "one lin read" 1 a.Doctor.au_lin_reads);
              Alcotest.(check bool) "stale lin read flagged" true
                (List.exists
                   (fun a -> a.Doctor.code = "stale-lin-read")
                   r.Doctor.anomalies)));
    test "doctor --audit: a consistent history passes" (fun () ->
        with_dir (fun base ->
            Array.iteri (fun i fl -> write_dump base i fl) (healthy_cluster ());
            let h = History.create ~path:(Filename.concat base "c.history") in
            History.record h
              {
                History.client = 0;
                kind = History.kind_write;
                key = 0;
                seq = 1;
                t_inv = 50;
                t_resp = 100;
                value = 1;
                ok = true;
              };
            History.record h
              {
                History.client = 1;
                kind = History.kind_lin;
                key = 0;
                seq = 0;
                t_inv = 200;
                t_resp = 260;
                value = 1;
                ok = true;
              };
            History.close h;
            match Doctor.analyze ~audit:true ~dir:base () with
            | Error e -> Alcotest.failf "doctor: %s" e
            | Ok r ->
              Alcotest.(check bool) "no stale-lin-read" false
                (List.exists
                   (fun a -> a.Doctor.code = "stale-lin-read")
                   r.Doctor.anomalies)));
  ]

let suite =
  ( "observability",
    histogram_tests @ trace_tests @ stage_tests @ flight_tests @ doctor_tests
    @ audit_tests @ live_tests
    @ List.map QCheck_alcotest.to_alcotest qcheck_props )
