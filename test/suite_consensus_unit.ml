(* White-box, message-level unit tests of the consensus state machines.

   A synthetic Engine.io captures outgoing messages and timers instead of
   scheduling them, so each protocol step can be driven and inspected
   deterministically — no engine, no clock. *)

open Helpers
module Engine = Abcast_sim.Engine
module Paxos = Abcast_consensus.Paxos
module Coord = Abcast_consensus.Coord

type 'm probe = {
  io : 'm Engine.io;
  sent : (int * 'm) list ref; (* reversed *)
  timers : (int * (unit -> unit)) Queue.t;
  store : Storage.t;
}

let probe ?(self = 0) ?(n = 3) () =
  let sent = ref [] in
  let timers = Queue.create () in
  let store = Storage.create ~metrics:(Metrics.create ()) ~node:self () in
  let io : _ Engine.io =
    {
      self;
      n;
      group = 0;
      incarnation = 0;
      now = (fun () -> 0);
      send = (fun dst m -> sent := (dst, m) :: !sent);
      multisend =
        (fun m ->
          for dst = 0 to n - 1 do
            sent := (dst, m) :: !sent
          done);
      after = (fun delay thunk -> Queue.push (delay, thunk) timers);
      store;
      rng = Rng.create 1;
      metrics = Metrics.create ();
      emit = ignore;
      trace_on = (fun () -> false);
      span_begin = (fun ~stage:_ _ -> ());
      span_end = (fun ~stage:_ _ -> ());
      flight = Abcast_sim.Flight.disabled;
      alarm = ignore;
    }
  in
  { io; sent; timers; store }

let take_sent p =
  let out = List.rev !(p.sent) in
  p.sent := [];
  out

let fire_next_timer p =
  match Queue.take_opt p.timers with
  | Some (_, thunk) -> thunk ()
  | None -> Alcotest.fail "no timer armed"

let self_leader () = 0

(* ---------------- Paxos ---------------- *)

let sent_prepares msgs =
  List.filter_map
    (fun (dst, m) -> match m with Paxos.Prepare { b } -> Some (dst, b) | _ -> None)
    msgs

let paxos_make ?(self = 0) () =
  let p = probe ~self () in
  let decided = ref None in
  let c =
    Paxos.create p.io ~instance:0 ~leader:self_leader ~on_decide:(fun v ->
        decided := Some v)
  in
  (p, c, decided)

let paxos_tests =
  [
    test "paxos: propose logs the value and arms a retry timer" (fun () ->
        let p, c, _ = paxos_make () in
        Paxos.propose c "v";
        Alcotest.(check (option string)) "logged" (Some "v")
          (Storage.read p.store (Abcast_consensus.Consensus_intf.Keys.proposal 0));
        Alcotest.(check bool) "timer armed" true (not (Queue.is_empty p.timers)));
    test "paxos: the leader's timer starts phase 1 with ballot r*n+self"
      (fun () ->
        let p, c, _ = paxos_make () in
        Paxos.propose c "v";
        fire_next_timer p;
        let prepares = sent_prepares (take_sent p) in
        Alcotest.(check int) "to everyone" 3 (List.length prepares);
        List.iter
          (fun (_, b) ->
            Alcotest.(check bool) "ballot = r*3+0, r>=1" true (b mod 3 = 0 && b >= 3))
          prepares);
    test "paxos: a non-leader queries instead of competing" (fun () ->
        let p, c, _ = paxos_make ~self:1 () in
        (* leader oracle says 0; self is 1 *)
        Paxos.propose c "v";
        fire_next_timer p;
        let sent = take_sent p in
        Alcotest.(check bool) "no prepares" true (sent_prepares sent = []);
        Alcotest.(check bool) "queries instead" true
          (List.exists (fun (_, m) -> m = Paxos.Query) sent));
    test "paxos: acceptor promises higher ballots, rejects lower" (fun () ->
        let p, c, _ = paxos_make ~self:1 () in
        Paxos.handle c ~src:0 (Paxos.Prepare { b = 6 });
        (match take_sent p with
        | [ (0, Paxos.Promise { b = 6; accepted = None }) ] -> ()
        | _ -> Alcotest.fail "expected a promise to 0");
        Paxos.handle c ~src:2 (Paxos.Prepare { b = 5 });
        match take_sent p with
        | [ (2, Paxos.Reject { b = 6 }) ] -> ()
        | _ -> Alcotest.fail "expected a reject carrying the promise");
    test "paxos: accept updates durable state and acks" (fun () ->
        let p, c, _ = paxos_make ~self:1 () in
        Paxos.handle c ~src:0 (Paxos.Accept { b = 6; v = "x" });
        (match take_sent p with
        | [ (0, Paxos.Accepted { b = 6 }) ] -> ()
        | _ -> Alcotest.fail "expected an ack");
        (* the acceptor state must have been logged before the ack *)
        Alcotest.(check bool) "durable" true
          (Storage.mem p.store
             (Abcast_consensus.Consensus_intf.Keys.inst 0 "paxos.acc")));
    test "paxos: proposer adopts the highest accepted value from promises"
      (fun () ->
        let p, c, _ = paxos_make () in
        Paxos.propose c "mine";
        fire_next_timer p;
        let b =
          match sent_prepares (take_sent p) with
          | (_, b) :: _ -> b
          | [] -> Alcotest.fail "no prepare"
        in
        Paxos.handle c ~src:1 (Paxos.Promise { b; accepted = Some (2, "old-low") });
        Paxos.handle c ~src:2 (Paxos.Promise { b; accepted = Some (4, "old-high") });
        let accepts =
          List.filter_map
            (fun (_, m) ->
              match m with Paxos.Accept { v; _ } -> Some v | _ -> None)
            (take_sent p)
        in
        Alcotest.(check bool) "phase 2 started" true (accepts <> []);
        List.iter (Alcotest.(check string) "adopted highest" "old-high") accepts);
    test "paxos: free choice when no promise carries a value" (fun () ->
        let p, c, _ = paxos_make () in
        Paxos.propose c "mine";
        fire_next_timer p;
        let b =
          match sent_prepares (take_sent p) with
          | (_, b) :: _ -> b
          | [] -> Alcotest.fail "no prepare"
        in
        Paxos.handle c ~src:1 (Paxos.Promise { b; accepted = None });
        Paxos.handle c ~src:2 (Paxos.Promise { b; accepted = None });
        let accepts =
          List.filter_map
            (fun (_, m) ->
              match m with Paxos.Accept { v; _ } -> Some v | _ -> None)
            (take_sent p)
        in
        List.iter (Alcotest.(check string) "own value" "mine") accepts);
    test "paxos: majority of accepted acks decides, logs, announces" (fun () ->
        let p, c, decided = paxos_make () in
        Paxos.propose c "mine";
        fire_next_timer p;
        let b =
          match sent_prepares (take_sent p) with
          | (_, b) :: _ -> b
          | [] -> Alcotest.fail "no prepare"
        in
        Paxos.handle c ~src:1 (Paxos.Promise { b; accepted = None });
        Paxos.handle c ~src:2 (Paxos.Promise { b; accepted = None });
        ignore (take_sent p);
        Paxos.handle c ~src:1 (Paxos.Accepted { b });
        Paxos.handle c ~src:2 (Paxos.Accepted { b });
        Alcotest.(check (option string)) "decided" (Some "mine") !decided;
        Alcotest.(check (option string)) "logged" (Some "mine")
          (Storage.read p.store (Abcast_consensus.Consensus_intf.Keys.decision 0));
        Alcotest.(check bool) "announced" true
          (List.exists
             (fun (_, m) -> match m with Paxos.Decide _ -> true | _ -> false)
             (take_sent p)));
    test "paxos: decided instance answers everything with Decide" (fun () ->
        let p, c, _ = paxos_make ~self:1 () in
        Paxos.handle c ~src:0 (Paxos.Decide { v = "done" });
        ignore (take_sent p);
        Paxos.handle c ~src:2 (Paxos.Prepare { b = 99 });
        (match take_sent p with
        | (2, Paxos.Decide { v = "done" }) :: _ -> ()
        | _ -> Alcotest.fail "expected a Decide reply");
        Paxos.handle c ~src:2 Paxos.Query;
        match take_sent p with
        | (2, Paxos.Decide { v = "done" }) :: _ -> ()
        | _ -> Alcotest.fail "expected a Decide reply to query");
    test "paxos: reject pushes the next ballot higher" (fun () ->
        let p, c, _ = paxos_make () in
        Paxos.propose c "v";
        fire_next_timer p;
        ignore (take_sent p);
        Paxos.handle c ~src:1 (Paxos.Reject { b = 30 });
        fire_next_timer p;
        let prepares = sent_prepares (take_sent p) in
        List.iter
          (fun (_, b) -> Alcotest.(check bool) "above 30" true (b > 30))
          prepares);
  ]

(* ---------------- Coord ---------------- *)

let coord_make ?(self = 0) () =
  let p = probe ~self () in
  let decided = ref None in
  let c =
    Coord.create p.io ~instance:0 ~leader:self_leader ~on_decide:(fun v ->
        decided := Some v)
  in
  (p, c, decided)

let coord_tests =
  [
    test "coord: propose sends an estimate to round 0's coordinator" (fun () ->
        let p, c, _ = coord_make ~self:1 () in
        Coord.propose c "v";
        match take_sent p with
        | [ (0, Coord.Estimate { r = 0; v = "v"; ts = -1 }) ] -> ()
        | _ -> Alcotest.fail "expected estimate to coordinator 0");
    test "coord: coordinator proposes the highest-timestamp estimate" (fun () ->
        let p, c, _ = coord_make ~self:0 () in
        Coord.propose c "own";
        ignore (take_sent p);
        Coord.handle c ~src:0 (Coord.Estimate { r = 0; v = "own"; ts = -1 });
        Coord.handle c ~src:1 (Coord.Estimate { r = 0; v = "locked"; ts = 3 });
        let proposals =
          List.filter_map
            (fun (_, m) ->
              match m with Coord.Proposal { r = 0; v } -> Some v | _ -> None)
            (take_sent p)
        in
        Alcotest.(check bool) "proposal broadcast" true (proposals <> []);
        List.iter (Alcotest.(check string) "highest ts wins" "locked") proposals);
    test "coord: adopting a proposal logs the lock before acking" (fun () ->
        let p, c, _ = coord_make ~self:1 () in
        Coord.propose c "v";
        ignore (take_sent p);
        Coord.handle c ~src:0 (Coord.Proposal { r = 0; v = "w" });
        (match take_sent p with
        | [ (0, Coord.Ack { r = 0 }) ] -> ()
        | _ -> Alcotest.fail "expected ack to coordinator");
        Alcotest.(check bool) "locked durably" true
          (Storage.mem p.store
             (Abcast_consensus.Consensus_intf.Keys.inst 0 "coord.locked")));
    test "coord: a majority of acks decides" (fun () ->
        let p, c, decided = coord_make ~self:0 () in
        Coord.propose c "own";
        ignore (take_sent p);
        Coord.handle c ~src:0 (Coord.Estimate { r = 0; v = "own"; ts = -1 });
        Coord.handle c ~src:1 (Coord.Estimate { r = 0; v = "own"; ts = -1 });
        ignore (take_sent p);
        Coord.handle c ~src:0 (Coord.Ack { r = 0 });
        Coord.handle c ~src:1 (Coord.Ack { r = 0 });
        Alcotest.(check (option string)) "decided" (Some "own") !decided;
        Alcotest.(check bool) "announced" true
          (List.exists
             (fun (_, m) -> match m with Coord.Decide _ -> true | _ -> false)
             (take_sent p)));
    test "coord: higher-round traffic fast-forwards the round" (fun () ->
        let p, c, _ = coord_make ~self:1 () in
        Coord.propose c "v";
        ignore (take_sent p);
        Coord.handle c ~src:2 (Coord.Estimate { r = 7; v = "x"; ts = 2 });
        (* joining round 7 re-sends our estimate to coordinator 7 mod 3 = 1,
           i.e. ourselves — the send is still visible *)
        let estimates =
          List.filter_map
            (fun (dst, m) ->
              match m with Coord.Estimate { r; _ } -> Some (dst, r) | _ -> None)
            (take_sent p)
        in
        Alcotest.(check bool) "joined round 7" true
          (List.exists (fun (_, r) -> r = 7) estimates));
    test "coord: decided instance answers with Decide" (fun () ->
        let p, c, _ = coord_make ~self:2 () in
        Coord.handle c ~src:0 (Coord.Decide { v = "d" });
        ignore (take_sent p);
        Coord.handle c ~src:1 (Coord.Estimate { r = 0; v = "x"; ts = -1 });
        match take_sent p with
        | (1, Coord.Decide { v = "d" }) :: _ -> ()
        | _ -> Alcotest.fail "expected Decide reply");
    test "coord: stale acks from an older incarnation cannot decide" (fun () ->
        (* coordinator restarted mid-round: proposed_round is volatile, so
           acks arriving for its pre-crash proposal are ignored *)
        let p, c, decided = coord_make ~self:0 () in
        Coord.propose c "v";
        ignore (take_sent p);
        (* acks without any proposal sent by THIS incarnation *)
        Coord.handle c ~src:1 (Coord.Ack { r = 0 });
        Coord.handle c ~src:2 (Coord.Ack { r = 0 });
        Alcotest.(check (option string)) "no decision" None !decided;
        ignore p);
  ]

let suite = ("consensus-unit", paxos_tests @ coord_tests)
