(* Tests for quorum-based (weighted-voting) replication bridged with
   atomic broadcast (paper §6.3). *)

open Helpers
module Q = Abcast_apps.Quorum
module Factory = Abcast_core.Factory

let cfg ?(r = 2) ?(w = 2) weights =
  { Q.weights = Array.of_list weights; read_quorum = r; write_quorum = w }

let payload data = Payload.make { origin = 0; boot = 0; seq = 0 } data

let config_tests =
  [
    test "valid majority config" (fun () ->
        Alcotest.(check bool) "ok" true (Q.valid (cfg [ 1; 1; 1 ])));
    test "read+write must exceed total" (fun () ->
        Alcotest.(check bool) "r+w=total rejected" false
          (Q.valid (cfg ~r:1 ~w:2 [ 1; 1; 1 ])));
    test "writes must intersect writes" (fun () ->
        Alcotest.(check bool) "2w<=total rejected" false
          (Q.valid (cfg ~r:3 ~w:1 [ 1; 1; 1 ];)));
    test "weighted: a heavy replica can be a quorum alone" (fun () ->
        let c = cfg ~r:3 ~w:3 [ 3; 1; 1 ] in
        Alcotest.(check bool) "valid" true (Q.valid c);
        Alcotest.(check bool) "replica 0 reads alone" true (Q.is_read_quorum c [ 0 ]);
        Alcotest.(check bool) "1,2 cannot" false (Q.is_read_quorum c [ 1; 2 ]));
    test "votes_of ignores duplicates and bad indices" (fun () ->
        let c = cfg [ 2; 1; 1 ] in
        Alcotest.(check int) "dedup" 3 (Q.votes_of c [ 0; 0; 1; 7; -1 ]));
    test "zero-weight replica carries nothing" (fun () ->
        let c = cfg ~r:2 ~w:2 [ 2; 1; 0 ] in
        Alcotest.(check bool) "valid" true (Q.valid c);
        Alcotest.(check bool) "alone useless" false (Q.is_read_quorum c [ 2 ]));
  ]

let intersection_prop =
  QCheck.Test.make ~name:"every read quorum intersects every write quorum"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 2 5) (int_range 0 4))
        (pair (int_range 1 20) (int_range 1 20)))
    (fun (weights, (r, w)) ->
      let c = { Q.weights = Array.of_list weights; read_quorum = r; write_quorum = w } in
      QCheck.assume (Q.valid c);
      let n = List.length weights in
      (* enumerate all subsets; for each read-quorum subset and
         write-quorum subset they must share a replica *)
      let subsets = List.init (1 lsl n) Fun.id in
      let members mask = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id) in
      List.for_all
        (fun rm ->
          let rs = members rm in
          (not (Q.is_read_quorum c rs))
          || List.for_all
               (fun wm ->
                 let ws = members wm in
                 (not (Q.is_write_quorum c ws))
                 || List.exists (fun i -> List.mem i ws) rs)
               subsets)
        subsets)

let store_tests =
  [
    test "store: fresh replica holds nothing" (fun () ->
        let s = Q.Store.create () in
        Alcotest.(check bool) "none" true (Q.Store.local_read s = None);
        Alcotest.(check int) "epoch" 0 (Q.Store.epoch s));
    test "store: write then read" (fun () ->
        let s = Q.Store.create () in
        Alcotest.(check bool) "accepted" true
          (Q.Store.apply_write s ~epoch:0 ~version:1 "v1");
        Alcotest.(check bool) "read" true
          (Q.Store.local_read s = Some ("v1", 1, 0)));
    test "store: stale version rejected" (fun () ->
        let s = Q.Store.create () in
        ignore (Q.Store.apply_write s ~epoch:0 ~version:2 "v2");
        Alcotest.(check bool) "older rejected" false
          (Q.Store.apply_write s ~epoch:0 ~version:2 "v2'");
        Alcotest.(check bool) "unchanged" true
          (Q.Store.local_read s = Some ("v2", 2, 0)));
    test "store: wrong epoch rejected" (fun () ->
        let s = Q.Store.create () in
        Q.Store.deliver s (payload (Q.Store.reconfig_cmd (cfg [ 1; 1; 1 ])));
        Alcotest.(check int) "epoch bumped" 1 (Q.Store.epoch s);
        Alcotest.(check bool) "old-epoch write rejected" false
          (Q.Store.apply_write s ~epoch:0 ~version:1 "v"));
    test "store: invalid reconfig ignored" (fun () ->
        let s = Q.Store.create () in
        Q.Store.deliver s (payload (Q.Store.reconfig_cmd (cfg ~r:1 ~w:1 [ 1; 1; 1 ])));
        Alcotest.(check int) "epoch unchanged" 0 (Q.Store.epoch s);
        Q.Store.deliver s (payload "garbage");
        Alcotest.(check int) "garbage ignored" 0 (Q.Store.epoch s));
  ]

let client_tests =
  let c3 = cfg [ 1; 1; 1 ] in
  [
    test "client: read picks the highest version in the quorum" (fun () ->
        match
          Q.Client.read c3 ~epoch:0
            ~responses:[ (0, Some ("old", 1, 0)); (1, Some ("new", 2, 0)) ]
        with
        | Ok r ->
          Alcotest.(check (option string)) "value" (Some "new") r.value;
          Alcotest.(check int) "version" 2 r.version;
          Alcotest.(check int) "next write ver" 3 (Q.Client.write_version r)
        | Error e -> Alcotest.fail e);
    test "client: insufficient votes fails" (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error
             (Q.Client.read c3 ~epoch:0 ~responses:[ (0, Some ("v", 1, 0)) ])));
    test "client: stale epoch detected" (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error
             (Q.Client.read c3 ~epoch:0
                ~responses:[ (0, Some ("v", 1, 1)); (1, None) ])));
    test "client: empty store reads as version 0" (fun () ->
        match Q.Client.read c3 ~epoch:0 ~responses:[ (0, None); (2, None) ] with
        | Ok r ->
          Alcotest.(check (option string)) "none" None r.value;
          Alcotest.(check int) "first write version" 1 (Q.Client.write_version r)
        | Error e -> Alcotest.fail e);
    test "read quorum always sees the latest completed write" (fun () ->
        (* write to a write quorum, read from EVERY read quorum: the
           latest version must always surface (the intersection at work) *)
        let stores = Array.init 3 (fun _ -> Q.Store.create ()) in
        (* two writes to different write quorums *)
        List.iter
          (fun i -> ignore (Q.Store.apply_write stores.(i) ~epoch:0 ~version:1 "w1"))
          [ 0; 1 ];
        List.iter
          (fun i -> ignore (Q.Store.apply_write stores.(i) ~epoch:0 ~version:2 "w2"))
          [ 1; 2 ];
        List.iter
          (fun quorum ->
            let responses =
              List.map (fun i -> (i, Q.Store.local_read stores.(i))) quorum
            in
            match Q.Client.read c3 ~epoch:0 ~responses with
            | Ok r -> Alcotest.(check (option string)) "latest" (Some "w2") r.value
            | Error e -> Alcotest.fail e)
          [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ]; [ 0; 1; 2 ] ]);
  ]

(* End-to-end: reconfiguration ordered by the real broadcast stack acts as
   a consistent barrier at all replicas. *)
let integration_tests =
  [
    test "reconfigurations are serialized by atomic broadcast" (fun () ->
        let stores = Array.init 3 (fun _ -> Q.Store.create ()) in
        let cluster = Cluster.create (Factory.basic ()) ~seed:70 ~n:3 () in
        (* two competing reconfigs from different replicas *)
        let c_a = cfg ~r:2 ~w:2 [ 1; 1; 1 ] in
        let c_b = cfg ~r:3 ~w:3 [ 3; 1; 1 ] in
        Cluster.at cluster 1_000 (fun () ->
            ignore
              (Cluster.broadcast cluster ~node:0 (Q.Store.reconfig_cmd c_a)));
        Cluster.at cluster 1_050 (fun () ->
            ignore
              (Cluster.broadcast cluster ~node:1 (Q.Store.reconfig_cmd c_b)));
        let ok =
          Cluster.run_until cluster ~until:10_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count:2 ())
            ()
        in
        Alcotest.(check bool) "delivered" true ok;
        Array.iteri
          (fun i store ->
            List.iter (Q.Store.deliver store) (Cluster.delivered_tail cluster i))
          stores;
        (* all replicas in the same final epoch with the same config *)
        Array.iter
          (fun s -> Alcotest.(check int) "epoch" 2 (Q.Store.epoch s))
          stores;
        let final = Q.Store.config stores.(0) in
        Array.iter
          (fun s ->
            Alcotest.(check bool) "same config" true (Q.Store.config s = final))
          stores);
  ]

let suite =
  ( "quorum",
    config_tests @ store_tests @ client_tests @ integration_tests
    @ [ QCheck_alcotest.to_alcotest intersection_prop ] )
