let () =
  Alcotest.run "abcast"
    [
      Suite_util.suite;
      Suite_wire.suite;
      Suite_sim.suite;
      Suite_store.suite;
      Suite_fd.suite;
      Suite_consensus.suite;
      Suite_consensus_unit.suite;
      Suite_core_units.suite;
      Suite_protocol.suite;
      Suite_shard.suite;
      Suite_apps.suite;
      Suite_service.suite;
      Suite_quorum.suite;
      Suite_harness.suite;
      Suite_lemmas.suite;
      Suite_baseline.suite;
      Suite_faults.suite;
      Suite_live.suite;
      Suite_obs.suite;
    ]
