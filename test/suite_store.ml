(* Tests for abcast.store: the segmented WAL, its crash fidelity (torn
   writes at every byte offset, kill-mid-compaction), and the durable
   backends of Abcast_sim.Storage built on it — including a sweep that
   runs the same seeded simulation over all three backends and requires
   identical outcomes. *)

open Helpers
module Wal = Abcast_store.Wal
module Durable = Abcast_store.Durable
module Factory = Abcast_core.Factory

(* ---- scratch directories ---- *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "abcast-store-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  Durable.mkdir_p d;
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let with_dir f =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let write_raw path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* ---- an operation model for prefix properties ---- *)

type op = Put of string * string | Del of string

let apply w = function
  | Put (k, v) -> Wal.put w k v
  | Del k -> Wal.delete w k

let bindings w =
  let acc = ref [] in
  Wal.iter w (fun k v -> acc := (k, v) :: !acc);
  List.sort compare !acc

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let model ops =
  let tbl = Hashtbl.create 8 in
  List.iter
    (function
      | Put (k, v) -> Hashtbl.replace tbl k v
      | Del k -> Hashtbl.remove tbl k)
    ops;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let prefix_models ops =
  List.init (List.length ops + 1) (fun i -> model (take i ops))

let kv_list = Alcotest.(list (pair string string))

(* Replay [ops] into a fresh single-segment log with no automatic
   compaction and return (dir, per-op end offsets including offset 0). *)
let build_log d ops =
  let w = Wal.open_ ~dir:d ~fsync:Durable.Never ~auto_compact:false () in
  let seg = Wal.current_segment w in
  let offsets =
    List.map
      (fun op ->
        apply w op;
        (Unix.stat seg).Unix.st_size)
      ops
  in
  Wal.close w;
  (seg, 0 :: offsets)

(* ---- WAL unit tests ---- *)

let wal_tests =
  [
    test "wal: puts and deletes survive reopen" (fun () ->
        with_dir (fun d ->
            let w = Wal.open_ ~dir:d () in
            Wal.put w "a" "1";
            Wal.put w "b" "two";
            Wal.put w "a" "one";
            Wal.delete w "b";
            Wal.put w "c" "";
            Wal.close w;
            let w2 = Wal.open_ ~dir:d () in
            Alcotest.check kv_list "recovered"
              [ ("a", "one"); ("c", "") ]
              (bindings w2);
            Alcotest.(check int) "recovered_records" 5
              (Wal.stats w2).Wal.recovered_records;
            Alcotest.(check int) "no tears" 0 (Wal.stats w2).Wal.torn_records;
            Wal.close w2));
    test "wal: delete of an absent key appends nothing" (fun () ->
        with_dir (fun d ->
            let w = Wal.open_ ~dir:d () in
            Wal.delete w "ghost";
            Alcotest.(check int) "appends" 0 (Wal.stats w).Wal.appends;
            Wal.close w));
    test "wal: segments roll at the size threshold" (fun () ->
        with_dir (fun d ->
            let w = Wal.open_ ~dir:d ~segment_bytes:128 ~fsync:Durable.Never
                ~auto_compact:false () in
            for i = 0 to 49 do
              Wal.put w (Printf.sprintf "key%02d" i) (String.make 16 'v')
            done;
            let segs = (Wal.stats w).Wal.segments in
            Alcotest.(check bool) "rolled" true (segs > 1);
            let on_disk =
              Array.to_list (Sys.readdir d)
              |> List.filter (fun n -> Filename.check_suffix n ".log")
            in
            Alcotest.(check int) "files match stats" segs
              (List.length on_disk);
            Wal.close w;
            let w2 = Wal.open_ ~dir:d () in
            Alcotest.(check int) "all keys back" 50 (Wal.length w2);
            Alcotest.(check (option string)) "spot check" (Some (String.make 16 'v'))
              (Wal.find w2 "key07");
            Wal.close w2));
    test "wal: overwrites trigger compaction and bound the disk" (fun () ->
        with_dir (fun d ->
            let w = Wal.open_ ~dir:d ~segment_bytes:4096 ~compact_min_bytes:2048
                ~compact_ratio:0.5 ~fsync:Durable.Never () in
            let v = String.make 64 'x' in
            for _ = 1 to 500 do
              Wal.put w "hot" v
            done;
            Wal.put w "cold" "c";
            let s = Wal.stats w in
            Alcotest.(check bool) "compacted" true (s.Wal.compactions >= 1);
            (* 500 × ~70-byte records ≈ 35 KB appended; compaction must keep
               the on-disk log near the ~80 live bytes, not the history *)
            Alcotest.(check bool) "disk bounded" true (Wal.disk_bytes w < 8192);
            Wal.close w;
            let w2 = Wal.open_ ~dir:d () in
            Alcotest.check kv_list "state intact"
              [ ("cold", "c"); ("hot", v) ]
              (bindings w2);
            Wal.close w2));
    test "wal: explicit compact is unconditional and preserves state"
      (fun () ->
        with_dir (fun d ->
            let w = Wal.open_ ~dir:d ~fsync:Durable.Never ~auto_compact:false () in
            List.iter (apply w)
              [ Put ("a", "1"); Put ("b", "2"); Del "a"; Put ("c", "3") ];
            let before = bindings w in
            let bytes_before = Wal.disk_bytes w in
            Wal.compact w;
            Alcotest.check kv_list "live map unchanged" before (bindings w);
            Alcotest.(check bool) "dead bytes dropped" true
              (Wal.disk_bytes w < bytes_before);
            Wal.close w;
            let w2 = Wal.open_ ~dir:d () in
            Alcotest.check kv_list "snapshot replays" before (bindings w2);
            Wal.close w2));
    test "wal: fsync policies pace the sync calls" (fun () ->
        with_dir (fun d ->
            let w = Wal.open_ ~dir:d ~fsync:Durable.Always ~auto_compact:false () in
            for i = 1 to 10 do
              Wal.put w (string_of_int i) "v"
            done;
            Alcotest.(check bool) "always: one sync per op" true
              ((Wal.stats w).Wal.fsyncs >= 10);
            Wal.close w);
        with_dir (fun d ->
            let w = Wal.open_ ~dir:d ~fsync:Durable.Never ~auto_compact:false () in
            for i = 1 to 10 do
              Wal.put w (string_of_int i) "v"
            done;
            Alcotest.(check int) "never: zero syncs" 0 (Wal.stats w).Wal.fsyncs;
            Wal.close w);
        with_dir (fun d ->
            let w =
              Wal.open_ ~dir:d
                ~fsync:(Durable.Every { ops = 5; ms = 10_000 })
                ~auto_compact:false ()
            in
            for i = 1 to 20 do
              Wal.put w (string_of_int i) "v"
            done;
            let s = (Wal.stats w).Wal.fsyncs in
            Alcotest.(check bool) "every:5 syncs ~4 times" true
              (s >= 4 && s < 20);
            Wal.close w));
    test "wal: wipe empties the log durably" (fun () ->
        with_dir (fun d ->
            let w = Wal.open_ ~dir:d ~fsync:Durable.Never () in
            Wal.put w "a" "1";
            Wal.wipe w;
            Alcotest.(check int) "empty" 0 (Wal.length w);
            Wal.put w "b" "2";
            Wal.close w;
            let w2 = Wal.open_ ~dir:d () in
            Alcotest.check kv_list "only post-wipe state" [ ("b", "2") ]
              (bindings w2);
            Wal.close w2));
  ]

(* ---- crash fidelity: torn tails ---- *)

(* A fixed op sequence whose last record we will damage at every byte
   offset. Values vary in size so the offsets exercise multi-byte
   regions of the frame (length varint, key, value, CRC). *)
let fixed_ops =
  [
    Put ("alpha", "1");
    Put ("beta", String.make 40 'b');
    Del "alpha";
    Put ("gamma", "ggg");
    Put ("beta", "2");
  ]

(* Reopen a copy of [seg_data] cut/mutated by [mutate] and return the
   recovered bindings. *)
let recover_mutated mutate seg_data =
  with_dir (fun d ->
      write_raw (Filename.concat d "wal-0000000001.log") (mutate seg_data);
      let w = Wal.open_ ~dir:d () in
      let got = bindings w in
      let torn = (Wal.stats w).Wal.torn_records in
      Wal.close w;
      (got, torn))

let crash_tests =
  [
    test "torn tail: truncation at every offset of the last record"
      (fun () ->
        with_dir (fun d ->
            let seg, offsets = build_log d fixed_ops in
            let data = read_file seg in
            let last_start = List.nth offsets (List.length fixed_ops - 1) in
            let expect = model (take (List.length fixed_ops - 1) fixed_ops) in
            Alcotest.(check int) "log length" (String.length data)
              (List.nth offsets (List.length fixed_ops));
            for cut = last_start to String.length data - 1 do
              let got, torn =
                recover_mutated (fun s -> String.sub s 0 cut) data
              in
              Alcotest.check kv_list
                (Printf.sprintf "cut at %d recovers the N-1 prefix" cut)
                expect got;
              if cut > last_start then
                Alcotest.(check int)
                  (Printf.sprintf "cut at %d counts one tear" cut)
                  1 torn
            done));
    test "torn tail: a flipped byte anywhere in the last record is rejected"
      (fun () ->
        with_dir (fun d ->
            let seg, offsets = build_log d fixed_ops in
            let data = read_file seg in
            let last_start = List.nth offsets (List.length fixed_ops - 1) in
            let expect = model (take (List.length fixed_ops - 1) fixed_ops) in
            for pos = last_start to String.length data - 1 do
              let flip s =
                let b = Bytes.of_string s in
                Bytes.set b pos
                  (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
                Bytes.to_string b
              in
              let got, torn = recover_mutated flip data in
              Alcotest.check kv_list
                (Printf.sprintf "flip at %d recovers the N-1 prefix" pos)
                expect got;
              Alcotest.(check int)
                (Printf.sprintf "flip at %d counts one tear" pos)
                1 torn
            done));
    test "torn tail: damage in a middle segment drops all later segments"
      (fun () ->
        with_dir (fun d ->
            let w = Wal.open_ ~dir:d ~segment_bytes:96 ~fsync:Durable.Never
                ~auto_compact:false () in
            let ops =
              List.init 30 (fun i ->
                  Put (Printf.sprintf "key%02d" i, String.make 12 'v'))
            in
            List.iter (apply w) ops;
            let segs = (Wal.stats w).Wal.segments in
            Alcotest.(check bool) "at least 3 segments" true (segs >= 3);
            Wal.close w;
            (* corrupt one byte in the middle of the second segment *)
            let seg_files =
              Array.to_list (Sys.readdir d)
              |> List.filter (fun n -> Filename.check_suffix n ".log")
              |> List.sort compare
            in
            let victim = Filename.concat d (List.nth seg_files 1) in
            let data = Bytes.of_string (read_file victim) in
            let pos = Bytes.length data / 2 in
            Bytes.set data pos
              (Char.chr (Char.code (Bytes.get data pos) lxor 0xff));
            write_raw victim (Bytes.to_string data);
            let w2 = Wal.open_ ~dir:d () in
            (* whatever survives must be the effect of an op prefix *)
            Alcotest.(check bool) "recovered a prefix" true
              (List.mem (bindings w2) (prefix_models ops));
            Alcotest.(check bool) "strictly shorter than the full log" true
              (Wal.length w2 < 30);
            Alcotest.(check int) "one tear" 1 (Wal.stats w2).Wal.torn_records;
            (* the segments after the damaged one must be gone from disk *)
            let remaining =
              Array.to_list (Sys.readdir d)
              |> List.filter (fun n -> Filename.check_suffix n ".log")
              |> List.sort compare
            in
            Alcotest.(check (list string)) "later segments unlinked"
              (take 2 seg_files) remaining;
            Wal.close w2));
  ]

(* ---- crash fidelity: kill mid-compaction ---- *)

let compaction_crash_test point =
  test (Printf.sprintf "compaction killed at %s recovers cleanly" point)
    (fun () ->
      with_dir (fun d ->
          let w = Wal.open_ ~dir:d ~fsync:Durable.Never ~auto_compact:false () in
          List.iter (apply w)
            [
              Put ("a", "1");
              Put ("b", String.make 30 'b');
              Put ("c", "3");
              Del "b";
              Put ("a", "one");
              Del "c";
            ];
          let expect = bindings w in
          Wal.failpoint := Some point;
          Fun.protect
            ~finally:(fun () -> Wal.failpoint := None)
            (fun () ->
              match Wal.compact w with
              | () -> Alcotest.fail "failpoint did not fire"
              | exception Wal.Injected_crash _ -> ());
          (* the crashed instance is dead; a fresh open is the recovery *)
          let w2 = Wal.open_ ~dir:d () in
          Alcotest.check kv_list "state preserved" expect (bindings w2);
          Alcotest.(check int) "aborted compaction not counted" 0
            (Wal.stats w2).Wal.compactions;
          let tmps =
            Array.to_list (Sys.readdir d)
            |> List.filter (fun n -> Filename.check_suffix n ".tmp")
          in
          Alcotest.(check (list string)) "no tmp debris" [] tmps;
          (* and the recovered log remains fully usable *)
          Wal.put w2 "d" "4";
          Wal.close w2;
          let w3 = Wal.open_ ~dir:d () in
          Alcotest.check kv_list "still appendable"
            (List.sort compare (("d", "4") :: expect))
            (bindings w3);
          Wal.close w3))

let failpoint_tests =
  [
    compaction_crash_test "compact-before-rename";
    compaction_crash_test "compact-after-rename";
  ]

(* ---- randomized prefix properties ---- *)

(* Ops are generated as plain int pairs so QCheck can print
   counterexamples with its stock printers. *)
let decode_ops raw =
  List.map
    (fun (a, b) ->
      let key = Printf.sprintf "k%d" (a mod 5) in
      if a / 5 = 4 then Del key
      else Put (key, String.make (b mod 50) (Char.chr (65 + (b mod 26)))))
    raw

let raw_ops =
  QCheck.(list_of_size (Gen.int_range 1 40) (pair (int_range 0 24) (int_range 0 999)))

(* Damage must hit the raw segment bytes of a log with compaction off:
   truncating inside a compaction snapshot yields a key subset, not an
   op prefix (and a real torn write cannot hit the snapshot — it is
   fully fsynced before the rename makes it visible). *)
let prefix_property mutate (raw, sel) =
  let ops = decode_ops raw in
  with_dir (fun d ->
      let seg, _ = build_log d ops in
      let data = read_file seg in
      match mutate data sel with
      | None -> true
      | Some data' ->
        write_raw seg data';
        let w = Wal.open_ ~dir:d () in
        let got = bindings w in
        Wal.close w;
        List.mem got (prefix_models ops))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make
        ~name:"wal: truncation at any point recovers an exact op prefix"
        ~count:60
        QCheck.(pair raw_ops (int_range 0 1_000_000))
        (prefix_property (fun data sel ->
             Some (String.sub data 0 (sel mod (String.length data + 1)))));
      QCheck.Test.make
        ~name:"wal: one corrupt byte anywhere recovers an exact op prefix"
        ~count:60
        QCheck.(pair raw_ops (int_range 0 1_000_000))
        (prefix_property (fun data sel ->
             if String.length data = 0 then None
             else begin
               let b = Bytes.of_string data in
               let pos = sel mod Bytes.length b in
               Bytes.set b pos
                 (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
               Some (Bytes.to_string b)
             end));
    ]

(* ---- Storage backends ---- *)

let mk_storage ?dir ?backend ?fsync () =
  let metrics = Metrics.create () in
  (Storage.create ?dir ?backend ?fsync ~metrics ~node:0 (), metrics)

let backend_reopen_test name backend =
  test (name ^ " backend: state survives close and reopen") (fun () ->
      with_dir (fun d ->
          let s, _ = mk_storage ~dir:d ~backend ~fsync:Durable.Always () in
          Storage.write s ~layer:"x" ~key:"a" "1";
          Storage.write s ~layer:"x" ~key:"b" "two";
          Storage.write s ~layer:"x" ~key:"a" "one";
          Storage.delete s ~layer:"x" "b";
          Alcotest.(check bool) "disk in use" true (Storage.disk_bytes s > 0);
          Storage.close s;
          let s2, _ = mk_storage ~dir:d ~backend () in
          Alcotest.(check (option string)) "a" (Some "one") (Storage.read s2 "a");
          Alcotest.(check (option string)) "b gone" None (Storage.read s2 "b");
          Alcotest.(check int) "keys" 1 (Storage.retained_keys s2);
          Storage.close s2))

let backend_tests =
  [
    backend_reopen_test "files" `Files;
    backend_reopen_test "wal" `Wal;
    test "wal backend mirrors its counters into metrics" (fun () ->
        with_dir (fun d ->
            let s, m = mk_storage ~dir:d ~backend:`Wal ~fsync:Durable.Always () in
            for i = 1 to 8 do
              Storage.write s ~layer:"x" ~key:(string_of_int i) "v"
            done;
            Storage.delete s ~layer:"x" "3";
            Alcotest.(check int) "appends" 9 (Metrics.get m ~node:0 "wal_appends");
            Alcotest.(check bool) "fsyncs" true
              (Metrics.get m ~node:0 "wal_fsyncs" >= 9);
            Alcotest.(check int) "segments gauge" 1
              (Metrics.get m ~node:0 "wal_segments");
            Storage.close s;
            (* a reopen mirrors the replay count of the new instance *)
            let s2, m2 = mk_storage ~dir:d ~backend:`Wal () in
            Alcotest.(check int) "recovered"
              9
              (Metrics.get m2 ~node:0 "wal_recovered_records");
            (match Storage.wal_stats s2 with
            | Some st -> Alcotest.(check int) "stats agree" 9 st.Wal.recovered_records
            | None -> Alcotest.fail "wal_stats missing");
            Storage.close s2));
    test "files backend counts its sync events" (fun () ->
        with_dir (fun d ->
            let s, m = mk_storage ~dir:d ~backend:`Files ~fsync:Durable.Always () in
            Storage.write s ~layer:"x" ~key:"a" "1";
            Storage.write s ~layer:"x" ~key:"b" "2";
            Alcotest.(check bool) "synced per op" true
              (Metrics.get m ~node:0 "file_fsyncs" >= 2);
            Storage.close s);
        with_dir (fun d ->
            let s, m =
              mk_storage ~dir:d ~backend:`Files
                ~fsync:(Durable.Every { ops = 100; ms = 100_000 }) ()
            in
            Storage.write s ~layer:"x" ~key:"a" "1";
            Alcotest.(check int) "batched: not yet" 0
              (Metrics.get m ~node:0 "file_fsyncs");
            Storage.sync s;
            Alcotest.(check int) "explicit sync flushes" 1
              (Metrics.get m ~node:0 "file_fsyncs");
            Storage.close s));
    test "durable backends require a directory" (fun () ->
        let metrics = Metrics.create () in
        List.iter
          (fun backend ->
            match Storage.create ~backend ~metrics ~node:0 () with
            | _ -> Alcotest.fail "accepted a durable backend without ~dir"
            | exception Invalid_argument _ -> ())
          [ `Files; `Wal ]);
  ]

(* ---- backend equivalence sweep (E3 workload on all three) ---- *)

(* The simulator's schedule never depends on how storage persists, so a
   seeded run must produce bit-identical protocol outcomes on the memory,
   file-per-key and WAL backends — same deliveries, same log accounting,
   same retained footprint, same surviving keys. *)
let sweep_run ?storage () =
  let stack = Factory.alternative ~checkpoint_period:15_000 ~delta:3 () in
  let cluster = Cluster.create stack ~seed:17 ~n:3 ?storage () in
  let rng = Rng.create 23 in
  let count =
    Workload.open_loop cluster ~rng ~senders:[ 0; 1; 2 ] ~start:1_000
      ~stop:60_000 ~mean_gap:1_000 ~size:64 ()
  in
  let ok =
    Cluster.run_until cluster ~until:1_000_000_000
      ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
      ()
  in
  Alcotest.(check bool) "quiesced" true ok;
  (* settle so idle checkpoints run and truncate the logs *)
  Cluster.run cluster ~until:(Cluster.now cluster + 400_000);
  (cluster, count)

let observe cluster =
  let m = Cluster.metrics cluster in
  List.map
    (fun i ->
      ( Cluster.delivered_count cluster i,
        ids_of (Cluster.delivered_tail cluster i),
        Cluster.retained_bytes cluster i,
        Cluster.retained_keys cluster i,
        Cluster.storage_keys cluster i "" ))
    [ 0; 1; 2 ]
  @ [ (Metrics.sum_prefix m "log_ops.", [], Metrics.sum_prefix m "log_bytes.", 0, []) ]

let sweep_tests =
  [
    test "backend equivalence: memory, files and wal agree on a seeded run"
      (fun () ->
        with_dir (fun base ->
            let factory backend ~metrics ~node =
              Storage.create
                ~dir:(Filename.concat base (Printf.sprintf "%s%d"
                        (match backend with `Files -> "f" | _ -> "w") node))
                ~backend ~fsync:Durable.Never ~wal_compact_min_bytes:2048
                ~metrics ~node ()
            in
            let mem_cluster, count = sweep_run () in
            let files_cluster, count_f = sweep_run ~storage:(factory `Files) () in
            let wal_cluster, count_w = sweep_run ~storage:(factory `Wal) () in
            Alcotest.(check int) "same workload (files)" count count_f;
            Alcotest.(check int) "same workload (wal)" count count_w;
            let reference = observe mem_cluster in
            List.iter
              (fun (name, cluster) ->
                let actual = observe cluster in
                List.iteri
                  (fun i (dc, ids, rb, rk, keys) ->
                    let dc', ids', rb', rk', keys' = List.nth actual i in
                    Alcotest.(check int)
                      (Printf.sprintf "%s: delivered_count[%d]" name i)
                      dc dc';
                    Alcotest.(check bool)
                      (Printf.sprintf "%s: delivery order[%d]" name i)
                      true (ids = ids');
                    Alcotest.(check int)
                      (Printf.sprintf "%s: retained_bytes[%d]" name i)
                      rb rb';
                    Alcotest.(check int)
                      (Printf.sprintf "%s: retained_keys[%d]" name i)
                      rk rk';
                    Alcotest.(check (list string))
                      (Printf.sprintf "%s: stored keys[%d]" name i)
                      keys keys')
                  reference)
              [ ("files", files_cluster); ("wal", wal_cluster) ];
            (* durable backends actually wrote: both have bytes on disk *)
            List.iter
              (fun (name, cluster) ->
                Alcotest.(check bool) (name ^ " wrote to disk") true
                  (Cluster.disk_bytes cluster 0 > 0))
              [ ("files", files_cluster); ("wal", wal_cluster) ];
            (* the WAL's own replay agrees with the cluster's view: reopen
               node 0's directory and compare every surviving key *)
            (match Cluster.wal_stats wal_cluster 0 with
            | None -> Alcotest.fail "wal cluster has no wal stats"
            | Some st ->
              Alcotest.(check bool) "wal appended" true (st.Wal.appends > 0));
            let w = Wal.open_ ~dir:(Filename.concat base "w0") () in
            let wal_keys = List.sort compare (List.map fst (bindings w)) in
            List.iter
              (fun (k, v) ->
                Alcotest.(check (option string)) ("replayed " ^ k)
                  (Cluster.read_storage wal_cluster 0 k)
                  (Some v))
              (bindings w);
            Alcotest.(check (list string)) "replayed key set"
              (Cluster.storage_keys wal_cluster 0 "")
              wal_keys;
            Wal.close w));
  ]

let suite =
  ( "store",
    wal_tests @ crash_tests @ failpoint_tests @ qcheck_tests @ backend_tests
    @ sweep_tests )
