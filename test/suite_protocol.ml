(* End-to-end tests of the atomic broadcast protocols (basic and
   alternative) against the paper's properties and mechanisms. *)

open Helpers
module Factory = Abcast_core.Factory
module Proto = Abcast_core.Proto

let basic = Factory.basic ()

let basic_tests =
  [
    test "basic: total order across 3 nodes" (fun () ->
        let cluster, _ = run_workload ~msgs:30 basic in
        ignore cluster);
    test "basic: total order across 5 nodes" (fun () ->
        ignore (run_workload ~n:5 ~seed:2 ~msgs:25 basic));
    test "basic: lossy duplicating network" (fun () ->
        let net = Net.create ~loss:0.15 ~dup:0.1 () in
        ignore (run_workload ~seed:3 ~msgs:20 ~net ~until:60_000_000 basic));
    test "basic: coord consensus black box" (fun () ->
        ignore (run_workload ~seed:4 ~msgs:20 (Factory.basic ~consensus:`Coord ())));
    test "basic: idle cluster runs no consensus (§4.2)" (fun () ->
        let cluster = Cluster.create basic ~seed:5 ~n:3 () in
        Cluster.run cluster ~until:500_000;
        for i = 0 to 2 do
          Alcotest.(check int) "round stays 0" 0 (Cluster.round cluster i)
        done;
        Alcotest.(check int) "no consensus logging" 0
          (Metrics.sum_prefix (Cluster.metrics cluster) "log_ops"));
    test "basic: zero abcast-layer log operations (§4.3)" (fun () ->
        let cluster, _ = run_workload ~seed:6 ~msgs:25 basic in
        Alcotest.(check int) "abcast ops" 0
          (Metrics.sum_prefix (Cluster.metrics cluster) "log_ops.abcast");
        Alcotest.(check bool) "consensus ops exist" true
          (Metrics.sum_prefix (Cluster.metrics cluster) "log_ops.consensus" > 0));
    test "basic: crash before completion may lose the message" (fun () ->
        (* A-broadcast that never returned carries no obligation: crash the
           origin immediately; whether or not the message survives (it was
           never gossiped), properties must hold. *)
        let cluster = Cluster.create basic ~seed:7 ~n:3 () in
        Cluster.at cluster 1_000 (fun () ->
            ignore (Cluster.broadcast cluster ~node:2 "doomed");
            Cluster.crash cluster 2);
        Cluster.at cluster 50_000 (fun () -> Cluster.recover cluster 2);
        Cluster.run cluster ~until:2_000_000;
        check_ok "props" (Checks.all ~cluster ~good:[ 0; 1; 2 ] ());
        Alcotest.(check int) "lost" 0 (Cluster.delivered_count cluster 0));
    test "basic: recovery replays the full prefix" (fun () ->
        let cluster, count = run_workload ~seed:8 ~msgs:15 basic in
        let before = Cluster.delivered_count cluster 1 in
        Cluster.crash cluster 1;
        Cluster.recover cluster 1;
        Cluster.run cluster ~until:(Cluster.now cluster + 3_000_000);
        Alcotest.(check int) "same count" before (Cluster.delivered_count cluster 1);
        Alcotest.(check bool) "replay metric" true
          (Metrics.get (Cluster.metrics cluster) ~node:1 "replay_rounds" > 0);
        check_ok "props" (Checks.all ~cluster ~good:[ 0; 1; 2 ] ());
        ignore count);
    test "basic: downed node catches up through gossip" (fun () ->
        let cluster = Cluster.create basic ~seed:9 ~n:3 () in
        Cluster.at cluster 1_000 (fun () -> Cluster.crash cluster 2);
        let rng = Rng.create 99 in
        let count =
          Workload.open_loop cluster ~rng ~senders:[ 0; 1 ] ~start:2_000
            ~stop:30_000 ~mean_gap:1_500 ()
        in
        Cluster.at cluster 100_000 (fun () -> Cluster.recover cluster 2);
        let ok =
          Cluster.run_until cluster ~until:20_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
            ()
        in
        Alcotest.(check bool) "caught up" true ok;
        check_ok "props" (Checks.all ~cluster ~good:[ 0; 1; 2 ] ()));
    test "basic: majority keeps delivering while a minority is down" (fun () ->
        let cluster = Cluster.create basic ~seed:10 ~n:5 () in
        Cluster.at cluster 500 (fun () -> Cluster.crash cluster 3);
        Cluster.at cluster 500 (fun () -> Cluster.crash cluster 4);
        let rng = Rng.create 42 in
        let count =
          Workload.open_loop cluster ~rng ~senders:[ 0; 1; 2 ] ~start:1_000
            ~stop:40_000 ~mean_gap:2_000 ()
        in
        let ok =
          Cluster.run_until cluster ~until:30_000_000
            ~pred:(fun () ->
              Cluster.all_caught_up cluster ~among:[ 0; 1; 2 ] ~count ())
            ()
        in
        Alcotest.(check bool) "minority down, majority live" true ok);
    test "basic: blocked under majority loss, resumes after recovery" (fun () ->
        let cluster = Cluster.create basic ~seed:11 ~n:3 () in
        Cluster.at cluster 500 (fun () -> Cluster.crash cluster 1);
        Cluster.at cluster 500 (fun () -> Cluster.crash cluster 2);
        Cluster.at cluster 1_000 (fun () ->
            ignore (Cluster.broadcast cluster ~node:0 "stuck"));
        Cluster.run cluster ~until:2_000_000;
        Alcotest.(check int) "blocked" 0 (Cluster.delivered_count cluster 0);
        Cluster.recover cluster 1;
        let ok =
          Cluster.run_until cluster ~until:30_000_000
            ~pred:(fun () -> Cluster.delivered_count cluster 0 >= 1)
            ()
        in
        Alcotest.(check bool) "resumed" true ok);
    test "basic: partition heals and order holds" (fun () ->
        let net = Net.create () in
        let cluster = Cluster.create basic ~seed:12 ~n:3 ~net () in
        Cluster.at cluster 5_000 (fun () ->
            Net.partition net (fun ~src ~dst -> src = 2 || dst = 2));
        let rng = Rng.create 7 in
        let count =
          Workload.open_loop cluster ~rng ~senders:[ 0; 1 ] ~start:6_000
            ~stop:40_000 ~mean_gap:2_000 ()
        in
        Cluster.at cluster 100_000 (fun () -> Net.heal net);
        let ok =
          Cluster.run_until cluster ~until:30_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
            ()
        in
        Alcotest.(check bool) "healed" true ok;
        check_ok "props" (Checks.all ~cluster ~good:[ 0; 1; 2 ] ()));
  ]

let alt ?checkpoint_period ?delta ?early_return ?incremental () =
  Factory.alternative ?checkpoint_period ?delta ?early_return ?incremental ()

let alternative_tests =
  [
    test "alt: total order, default config" (fun () ->
        ignore (run_workload ~seed:20 ~msgs:30 (alt ())));
    test "alt: coord consensus" (fun () ->
        ignore
          (run_workload ~seed:21 ~msgs:20 (Factory.alternative ~consensus:`Coord ())));
    test "alt: early-return broadcast survives an origin crash (§5.4)" (fun () ->
        let cluster =
          Cluster.create (alt ~early_return:true ()) ~seed:22 ~n:3 ()
        in
        (* Partition the origin first so nothing escapes by gossip; the
           logged Unordered set is the only way the message survives. *)
        let net = Cluster.net cluster in
        Cluster.at cluster 1_000 (fun () ->
            Net.partition net (fun ~src ~dst -> src = 2 || dst = 2);
            ignore (Cluster.broadcast cluster ~node:2 "durable"));
        Cluster.at cluster 3_000 (fun () ->
            Cluster.crash cluster 2;
            Net.heal net);
        Cluster.at cluster 10_000 (fun () -> Cluster.recover cluster 2);
        let ok =
          Cluster.run_until cluster ~until:30_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count:1 ())
            ()
        in
        Alcotest.(check bool) "delivered after recovery" true ok;
        check_ok "props" (Checks.all ~cluster ~good:[ 0; 1; 2 ] ()));
    test "basic: same scenario loses the message (contrast to §5.4)" (fun () ->
        let cluster = Cluster.create basic ~seed:22 ~n:3 () in
        let net = Cluster.net cluster in
        Cluster.at cluster 1_000 (fun () ->
            Net.partition net (fun ~src ~dst -> src = 2 || dst = 2);
            ignore (Cluster.broadcast cluster ~node:2 "volatile"));
        Cluster.at cluster 3_000 (fun () ->
            Cluster.crash cluster 2;
            Net.heal net);
        Cluster.at cluster 10_000 (fun () -> Cluster.recover cluster 2);
        Cluster.run cluster ~until:3_000_000;
        Alcotest.(check int) "lost" 0 (Cluster.delivered_count cluster 0);
        check_ok "props (loss is allowed: never completed)"
          (Checks.all ~cluster ~good:[ 0; 1; 2 ] ()));
    test "alt: checkpoints shorten replay (§5.1)" (fun () ->
        let stack = alt ~checkpoint_period:10_000 () in
        let cluster, _ = run_workload ~seed:23 ~msgs:30 ~until:30_000_000 stack in
        Cluster.run cluster ~until:(Cluster.now cluster + 50_000);
        Cluster.crash cluster 1;
        Cluster.recover cluster 1;
        Cluster.run cluster ~until:(Cluster.now cluster + 1_000_000);
        let replayed = Metrics.get (Cluster.metrics cluster) ~node:1 "replay_rounds" in
        let rounds = Cluster.round cluster 1 in
        Alcotest.(check bool)
          (Printf.sprintf "replayed %d << rounds %d" replayed rounds)
          true
          (replayed < rounds / 2));
    test "alt: state transfer rescues a long-gone node (§5.3)" (fun () ->
        let stack = alt ~delta:3 ~checkpoint_period:15_000 () in
        let cluster = Cluster.create stack ~seed:24 ~n:3 () in
        Cluster.at cluster 2_000 (fun () -> Cluster.crash cluster 2);
        let rng = Rng.create 5 in
        let count =
          Workload.open_loop cluster ~rng ~senders:[ 0; 1 ] ~start:3_000
            ~stop:150_000 ~mean_gap:1_200 ()
        in
        Cluster.at cluster 200_000 (fun () -> Cluster.recover cluster 2);
        let ok =
          Cluster.run_until cluster ~until:50_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
            ()
        in
        Alcotest.(check bool) "caught up" true ok;
        Alcotest.(check bool) "used state transfer" true
          (Metrics.sum (Cluster.metrics cluster) "state_transfers_applied" >= 1);
        check_ok "props" (Checks.all ~cluster ~good:[ 0; 1; 2 ] ()));
    test "alt: small lag stays below delta (no state transfer)" (fun () ->
        let stack = alt ~delta:1_000 ~checkpoint_period:1_000_000 () in
        let cluster, _ = run_workload ~seed:25 ~msgs:20 stack in
        Alcotest.(check int) "no transfers" 0
          (Metrics.sum (Cluster.metrics cluster) "state_transfers_applied"));
    test "alt: trimmed state transfer ships fewer bytes (§5.3 optim.)" (fun () ->
        let bytes_of trim_state =
          let stack =
            Factory.alternative ~delta:3 ~checkpoint_period:1_000_000
              ~trim_state ()
          in
          let cluster = Cluster.create stack ~seed:95 ~n:3 () in
          let rng = Rng.create 96 in
          (* node 2 sees the first third, misses the rest, then catches up *)
          Cluster.at cluster 30_000 (fun () -> Cluster.crash cluster 2);
          let count =
            Workload.open_loop cluster ~rng ~senders:[ 0; 1 ] ~start:1_000
              ~stop:100_000 ~mean_gap:1_000 ()
          in
          Cluster.at cluster 110_000 (fun () -> Cluster.recover cluster 2);
          let ok =
            Cluster.run_until cluster ~until:60_000_000
              ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
              ()
          in
          Alcotest.(check bool) "caught up" true ok;
          Alcotest.(check bool) "transfer happened" true
            (Metrics.sum (Cluster.metrics cluster) "state_transfers_applied" >= 1);
          Metrics.sum (Cluster.metrics cluster) "state_bytes_sent"
        in
        let trimmed = bytes_of true and full = bytes_of false in
        Alcotest.(check bool)
          (Printf.sprintf "trimmed %d < full %d" trimmed full)
          true
          (trimmed < full));
    test "alt: incremental logging writes fewer bytes than full (§5.5)" (fun () ->
        let bytes_of incremental =
          let stack = alt ~early_return:true ~incremental () in
          let cluster, _ = run_workload ~seed:26 ~msgs:30 stack in
          Metrics.sum_prefix (Cluster.metrics cluster) "log_bytes.abcast"
        in
        let inc = bytes_of true and full = bytes_of false in
        Alcotest.(check bool)
          (Printf.sprintf "incremental %d < full %d" inc full)
          true (inc < full));
    test "naive strawman logs far more than basic (§4.3 ablation)" (fun () ->
        let ops_of stack =
          let cluster, _ = run_workload ~seed:27 ~msgs:20 stack in
          Metrics.sum_prefix (Cluster.metrics cluster) "log_ops.abcast"
        in
        let naive = ops_of (Factory.naive ()) in
        let minimal = ops_of basic in
        Alcotest.(check int) "basic is zero" 0 minimal;
        (* per-round checkpoints + per-broadcast Unordered re-logs: at
           least one abcast-layer write per message across the cluster *)
        Alcotest.(check bool)
          (Printf.sprintf "naive is busy (%d ops)" naive)
          true (naive > 20));
    test "alt: checkpoint bounds retained storage with an app (§5.2)" (fun () ->
        let replicas = Array.make 3 None in
        let module R = Abcast_apps.Kv.Replica in
        let stack =
          Factory.alternative ~checkpoint_period:10_000
            ~app_factory:(R.factory (fun i r -> replicas.(i) <- Some r))
            ()
        in
        let cluster = Cluster.create stack ~seed:28 ~n:3 () in
        let rng = Rng.create 12 in
        for j = 0 to 79 do
          Cluster.at cluster (1_000 + (j * 1_000)) (fun () ->
              ignore
                (Cluster.broadcast cluster ~node:(j mod 3)
                   (Abcast_apps.Kv.set_cmd ~key:(string_of_int (j mod 7))
                      ~value:(Workload.payload rng ~size:40))))
        done;
        let ok =
          Cluster.run_until cluster ~until:50_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count:80 ())
            ()
        in
        Alcotest.(check bool) "done" true ok;
        Cluster.run cluster ~until:(Cluster.now cluster + 30_000);
        for i = 0 to 2 do
          let b = Cluster.retained_bytes cluster i in
          Alcotest.(check bool)
            (Printf.sprintf "node %d retains %dB (< 4KB)" i b)
            true (b < 4_096)
        done;
        (* replicas converged *)
        let digests =
          List.map
            (fun i ->
              match replicas.(i) with
              | Some r -> Abcast_apps.Kv.digest (R.state r)
              | None -> Alcotest.fail "replica missing")
            [ 0; 1; 2 ]
        in
        match digests with
        | d :: rest -> List.iter (Alcotest.(check string) "converged" d) rest
        | [] -> ());
    test "alt: recovery installs the app checkpoint" (fun () ->
        let replicas = Array.make 3 None in
        let module R = Abcast_apps.Kv.Replica in
        let stack =
          Factory.alternative ~checkpoint_period:8_000
            ~app_factory:(R.factory (fun i r -> replicas.(i) <- Some r))
            ()
        in
        let cluster = Cluster.create stack ~seed:29 ~n:3 () in
        for j = 0 to 29 do
          Cluster.at cluster (1_000 + (j * 1_500)) (fun () ->
              ignore
                (Cluster.broadcast cluster ~node:(j mod 3)
                   (Abcast_apps.Kv.set_cmd ~key:(string_of_int j) ~value:"v")))
        done;
        let ok =
          Cluster.run_until cluster ~until:50_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count:30 ())
            ()
        in
        Alcotest.(check bool) "done" true ok;
        Cluster.run cluster ~until:(Cluster.now cluster + 20_000);
        Cluster.crash cluster 0;
        Cluster.recover cluster 0;
        Cluster.run cluster ~until:(Cluster.now cluster + 500_000);
        (match replicas.(0) with
        | Some r ->
          Alcotest.(check int) "all commands present" 30
            (Abcast_apps.Kv.size (R.state r))
        | None -> Alcotest.fail "replica missing"));
  ]

let window_tests =
  [
    test "window=4: total order and properties hold" (fun () ->
        ignore
          (run_workload ~seed:60 ~msgs:40
             (Factory.alternative ~window:4 ())));
    test "window=4: coord consensus" (fun () ->
        ignore
          (run_workload ~seed:61 ~msgs:25
             (Factory.alternative ~window:4 ~consensus:`Coord ())));
    test "window=4: lossy network, crash and recovery" (fun () ->
        let stack = Factory.alternative ~window:4 ~checkpoint_period:30_000 () in
        let net = Net.create ~loss:0.1 () in
        let cluster = Cluster.create stack ~seed:62 ~n:3 ~net () in
        let rng = Rng.create 63 in
        Cluster.at cluster 20_000 (fun () -> Cluster.crash cluster 1);
        Cluster.at cluster 60_000 (fun () -> Cluster.recover cluster 1);
        let count =
          Workload.open_loop cluster ~rng ~senders:[ 0; 2 ] ~start:1_000
            ~stop:80_000 ~mean_gap:700 ()
        in
        let ok =
          Cluster.run_until cluster ~until:100_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
            ()
        in
        Alcotest.(check bool) "caught up" true ok;
        check_ok "props" (Checks.all ~cluster ~good:[ 0; 1; 2 ] ()));
    test "window=4: multiple in-flight proposals survive a crash" (fun () ->
        (* burst of broadcasts at one node so several instances are open,
           then crash it before they decide; recovery must re-propose all
           of them (P4) and lose nothing that was logged *)
        let stack =
          Factory.alternative ~window:4 ~early_return:true
            ~checkpoint_period:1_000_000 ()
        in
        let cluster = Cluster.create stack ~seed:64 ~n:3 () in
        let net = Cluster.net cluster in
        Cluster.at cluster 1_000 (fun () ->
            Net.partition net (fun ~src ~dst -> src = 0 || dst = 0);
            for j = 0 to 7 do
              ignore (Cluster.broadcast cluster ~node:0 (Printf.sprintf "b%d" j))
            done);
        Cluster.at cluster 5_000 (fun () ->
            Cluster.crash cluster 0;
            Net.heal net);
        Cluster.at cluster 15_000 (fun () -> Cluster.recover cluster 0);
        let ok =
          Cluster.run_until cluster ~until:60_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count:8 ())
            ()
        in
        Alcotest.(check bool) "all eight delivered" true ok;
        check_ok "props" (Checks.all ~cluster ~good:[ 0; 1; 2 ] ()));
    test "window=4: per-stream FIFO survives contention" (fun () ->
        (* heavy concurrent load from all nodes; any FIFO violation makes
           Vclock.add raise inside the protocol, so quiescing cleanly plus
           the prefix check is the assertion *)
        let stack = Factory.alternative ~window:4 () in
        let cluster = Cluster.create stack ~seed:65 ~n:3 () in
        let rng = Rng.create 66 in
        let count =
          Workload.open_loop cluster ~rng ~senders:[ 0; 1; 2 ] ~start:1_000
            ~stop:40_000 ~mean_gap:200 ()
        in
        let ok =
          Cluster.run_until cluster ~until:60_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
            ()
        in
        Alcotest.(check bool) "caught up" true ok;
        check_ok "props" (Checks.all ~cluster ~good:[ 0; 1; 2 ] ()));
    test "window=1 equals the paper's sequential sequencer" (fun () ->
        (* same seed, window=1 vs the basic-protocol trigger shape: the
           alternative with window=1 opens at most one instance beyond
           delivered rounds *)
        let stack = Factory.alternative ~window:1 () in
        let cluster, _ = run_workload ~seed:67 ~msgs:20 stack in
        ignore cluster);
    test "window: invalid value rejected" (fun () ->
        let module P = Abcast_core.Stacks.Over_paxos in
        let eng = Engine.create ~seed:1 ~n:1 () in
        Engine.set_behavior eng 0 (fun io ->
            Alcotest.check_raises "window=0"
              (Invalid_argument "Alternative.create: window must be >= 1")
              (fun () ->
                ignore
                  (P.Alternative.create ~window:0 io ~on_deliver:(fun _ -> ())));
            fun ~src:_ _ -> ());
        Engine.start eng 0);
  ]

(* Delivery latency should be recorded at origins. *)
let metrics_tests =
  [
    test "latency observations are recorded" (fun () ->
        let cluster, count = run_workload ~seed:30 ~msgs:15 basic in
        let m = Cluster.metrics cluster in
        Alcotest.(check int) "one sample per broadcast" count
          (Metrics.count_samples m "lat_deliver");
        Alcotest.(check bool) "positive" true (Metrics.mean m "lat_deliver" > 0.0));
    test "broadcast counters add up" (fun () ->
        let cluster, count = run_workload ~seed:31 ~msgs:10 basic in
        let m = Cluster.metrics cluster in
        Alcotest.(check int) "broadcasts" count (Metrics.sum m "ab_broadcasts");
        Alcotest.(check int) "deliveries" (count * 3) (Metrics.sum m "ab_delivered"));
  ]

(* Direct use of the functor API (not via Factory): checkpoint_now and
   floor, plus the tunables exposed on the consensus implementations. *)
let direct_api_tests =
  [
    test "Alternative.checkpoint_now raises the truncation floor" (fun () ->
        let module P = Abcast_core.Stacks.Over_paxos in
        let eng = Engine.create ~seed:91 ~n:3 () in
        let protos : P.Alternative.t option array = Array.make 3 None in
        for i = 0 to 2 do
          Engine.set_behavior eng i (fun io ->
              let p =
                P.Alternative.create ~checkpoint_period:10_000_000 io
                  ~on_deliver:(fun _ -> ())
              in
              protos.(i) <- Some p;
              P.Alternative.handler p)
        done;
        Engine.start_all eng;
        let get i = match protos.(i) with Some p -> p | None -> assert false in
        for j = 0 to 9 do
          Engine.at eng (500 * (j + 1)) (fun () ->
              ignore (P.Alternative.broadcast (get (j mod 3)) "x"))
        done;
        let done_ () =
          List.for_all (fun i -> P.Alternative.delivered_count (get i) >= 10) [ 0; 1; 2 ]
        in
        Alcotest.(check bool) "delivered" true
          (Engine.run_until eng ~until:20_000_000 ~pred:done_ ());
        Alcotest.(check int) "floor starts at 0" 0 (P.Alternative.floor (get 0));
        P.Alternative.checkpoint_now (get 0);
        Alcotest.(check bool) "floor raised" true (P.Alternative.floor (get 0) > 0);
        Alcotest.(check int) "floor = round" (P.Alternative.round (get 0))
          (P.Alternative.floor (get 0));
        (* the agreed snapshot survives a checkpoint untouched *)
        let snap = P.Alternative.agreed_snapshot (get 0) in
        Alcotest.(check int) "snapshot covers everything" 10
          (snap.base_len + List.length snap.tail));
    test "consensus tunables are settable" (fun () ->
        let saved_p = !Abcast_consensus.Paxos.retry_period in
        let saved_c = !Abcast_consensus.Coord.round_timeout in
        Abcast_consensus.Paxos.retry_period := 2_000;
        Abcast_consensus.Coord.round_timeout := 3_000;
        ignore (run_workload ~seed:92 ~msgs:10 (Factory.basic ()));
        ignore (run_workload ~seed:93 ~msgs:10 (Factory.basic ~consensus:`Coord ()));
        Abcast_consensus.Paxos.retry_period := saved_p;
        Abcast_consensus.Coord.round_timeout := saved_c);
    test "gossip period is configurable and matters" (fun () ->
        (* a 10x slower gossip delays a gossip-only catch-up *)
        let catch_up_time gossip_period =
          let cluster =
            Cluster.create (Factory.basic ~gossip_period ()) ~seed:94 ~n:3 ()
          in
          Cluster.at cluster 1_000 (fun () -> Cluster.crash cluster 2);
          Cluster.at cluster 2_000 (fun () ->
              ignore (Cluster.broadcast cluster ~node:0 "m"));
          Cluster.at cluster 50_000 (fun () -> Cluster.recover cluster 2);
          let ok =
            Cluster.run_until cluster ~until:200_000_000
              ~pred:(fun () -> Cluster.all_caught_up cluster ~count:1 ())
              ()
          in
          Alcotest.(check bool) "caught up" true ok;
          Cluster.now cluster
        in
        Alcotest.(check bool) "slow gossip is slower" true
          (catch_up_time 30_000 > catch_up_time 3_000));
  ]

let determinism_tests =
  [
    test "identical seeds give identical delivered sequences" (fun () ->
        let go () =
          let cluster, _ = run_workload ~seed:77 ~msgs:25 basic in
          List.map
            (fun (p : Payload.t) -> Format.asprintf "%a" Payload.pp_id p.id)
            (Cluster.delivered_tail cluster 0)
        in
        Alcotest.(check (list string)) "bitwise equal" (go ()) (go ()));
    test "identical seeds give identical metrics" (fun () ->
        let go () =
          let cluster, _ = run_workload ~seed:78 ~msgs:20 basic in
          let m = Cluster.metrics cluster in
          ( Metrics.sum m "msgs_sent",
            Metrics.sum_prefix m "log_ops",
            Cluster.now cluster )
        in
        Alcotest.(check (triple int int int)) "equal" (go ()) (go ()));
    test "different seeds explore different schedules" (fun () ->
        let go seed =
          let cluster, _ = run_workload ~seed ~msgs:20 basic in
          Metrics.sum (Cluster.metrics cluster) "msgs_sent"
        in
        (* not logically required, but if every seed gave identical counts
           the randomization would clearly be broken *)
        Alcotest.(check bool) "differ" true (go 101 <> go 202));
  ]

let edge_tests =
  [
    test "gossip does not resurrect agreed messages" (fun () ->
        (* after quiescence, keep running with gossip flowing: nothing may
           be re-delivered and rounds may not spin *)
        let cluster, count = run_workload ~seed:79 ~msgs:15 basic in
        let rounds = Cluster.round cluster 0 in
        let delivered = Cluster.delivered_count cluster 0 in
        Cluster.run cluster ~until:(Cluster.now cluster + 1_000_000);
        Alcotest.(check int) "no new rounds" rounds (Cluster.round cluster 0);
        Alcotest.(check int) "no re-deliveries" delivered
          (Cluster.delivered_count cluster 0);
        Alcotest.(check int) "unordered empty" 0 (Cluster.unordered_count cluster 0);
        ignore count);
    test "asymmetric slow node still converges" (fun () ->
        let net = Net.create () in
        (* node 2's outbound links are 20x slower *)
        Net.set_link net ~src:2 ~dst:0 ~delay_min:10_000 ~delay_max:40_000 ();
        Net.set_link net ~src:2 ~dst:1 ~delay_min:10_000 ~delay_max:40_000 ();
        ignore (run_workload ~seed:80 ~msgs:15 ~net ~until:120_000_000 basic));
    test "state message is harmless to the basic protocol" (fun () ->
        (* a basic-mode node receiving State must not adopt anything; we
           approximate by running alt and basic side by side is not
           type-compatible, so instead check the basic stack treats a lag
           hint via gossip_k only: a one-node burst then catch-up *)
        let cluster, _ = run_workload ~seed:81 ~msgs:10 basic in
        Alcotest.(check int) "no transfers ever" 0
          (Metrics.sum (Cluster.metrics cluster) "state_transfers_applied"));
    test "duplicated heavy traffic keeps integrity" (fun () ->
        let net = Net.create ~dup:0.4 () in
        ignore (run_workload ~seed:82 ~msgs:25 ~net ~until:60_000_000 basic));
    test "broadcast ids are unique across incarnations" (fun () ->
        let cluster = Cluster.create basic ~seed:83 ~n:3 () in
        let collect = ref [] in
        let send () =
          match Cluster.broadcast cluster ~node:0 "x" with
          | Some id -> collect := id :: !collect
          | None -> Alcotest.fail "node down?"
        in
        Cluster.at cluster 1_000 send;
        Cluster.at cluster 1_001 send;
        Cluster.at cluster 30_000 (fun () ->
            Cluster.crash cluster 0;
            Cluster.recover cluster 0);
        Cluster.at cluster 31_000 send;
        Cluster.run cluster ~until:10_000_000;
        let ids = !collect in
        Alcotest.(check int) "three ids" 3 (List.length ids);
        let distinct =
          List.length
            (List.sort_uniq Payload.compare_id ids)
        in
        Alcotest.(check int) "all distinct" 3 distinct;
        (* the post-recovery id carries a new boot number *)
        match ids with
        | third :: _ -> Alcotest.(check int) "boot" 1 third.boot
        | [] -> Alcotest.fail "no ids");
  ]

(* One adversarial run (message loss + duplication + a crash/recovery)
   under the given gossip mode; returns a fingerprint of everything node 0
   delivered. Used by the equivalence sweep: digest/pull gossip must
   produce the same delivered set as Fig. 3's full-set gossip. *)
let delta_equiv_run ~delta_gossip ~seed =
  let net = Net.create ~loss:0.12 ~dup:0.05 () in
  let stack = Factory.alternative ~delta_gossip () in
  let cluster = Cluster.create stack ~seed ~n:3 ~net () in
  let rng = Rng.create (seed + 4242) in
  Cluster.at cluster 12_000 (fun () -> Cluster.crash cluster 1);
  Cluster.at cluster 30_000 (fun () -> Cluster.recover cluster 1);
  let count =
    Workload.open_loop cluster ~rng ~senders:[ 0; 2 ] ~start:1_000 ~stop:40_000
      ~mean_gap:900 ()
  in
  let ok =
    Cluster.run_until cluster ~until:400_000_000
      ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
      ()
  in
  if not ok then
    Alcotest.failf "seed %d (delta_gossip=%b): did not quiesce" seed
      delta_gossip;
  check_ok
    (Printf.sprintf "properties (seed %d, delta_gossip=%b)" seed delta_gossip)
    (Checks.all ~cluster ~good:[ 0; 1; 2 ] ());
  ( Cluster.delivered_count cluster 0,
    Abcast_core.Vclock.streams (Cluster.delivery_vc cluster 0) )

let delta_gossip_tests =
  [
    test "digest+Need pulls payloads while consensus is blocked" (fun () ->
        (* n=5 with only a minority up: consensus cannot order anything,
           so the only way node 1 can learn node 0's message is the
           digest -> Need -> payload-Gossip pull path. *)
        let cluster = Cluster.create basic ~seed:41 ~n:5 () in
        Cluster.at cluster 500 (fun () ->
            Cluster.crash cluster 2;
            Cluster.crash cluster 3;
            Cluster.crash cluster 4);
        Cluster.at cluster 1_000 (fun () ->
            ignore (Cluster.broadcast cluster ~node:0 "pull-me"));
        Cluster.run cluster ~until:40_000;
        Alcotest.(check int) "consensus blocked" 0
          (Cluster.delivered_count cluster 1);
        Alcotest.(check int) "payload pulled" 1
          (Cluster.unordered_count cluster 1);
        let m = Cluster.metrics cluster in
        Alcotest.(check bool) "digests flowed" true (Metrics.sum m "rx.digest" > 0);
        Alcotest.(check bool) "Need sent" true (Metrics.sum m "rx.need" > 0);
        (* restore the majority: the pulled message must get ordered *)
        Cluster.recover cluster 2;
        Cluster.recover cluster 3;
        Cluster.recover cluster 4;
        let ok =
          Cluster.run_until cluster ~until:5_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count:1 ())
            ()
        in
        Alcotest.(check bool) "ordered once majority returns" true ok;
        check_ok "props" (Checks.all ~cluster ~good:(List.init 5 Fun.id) ()));
    test "full-gossip mode sends no digests or Needs" (fun () ->
        let cluster, _ =
          run_workload ~seed:42 ~msgs:10 (Factory.basic ~delta_gossip:false ())
        in
        let m = Cluster.metrics cluster in
        Alcotest.(check int) "rx.digest" 0 (Metrics.sum m "rx.digest");
        Alcotest.(check int) "rx.need" 0 (Metrics.sum m "rx.need"));
    test "delta mode: digests dominate, full fallback still flows" (fun () ->
        let cluster = Cluster.create basic ~seed:43 ~n:3 () in
        Cluster.run cluster ~until:100_000;
        let m = Cluster.metrics cluster in
        let digests = Metrics.sum m "rx.digest" in
        let fulls = Metrics.sum m "rx.gossip" in
        Alcotest.(check bool) "digests dominate" true (digests > 3 * fulls);
        Alcotest.(check bool) "full fallback present" true (fulls > 0));
    test "gossip_full_every=1 degenerates to full gossip" (fun () ->
        let cluster, _ =
          run_workload ~seed:44 ~msgs:8 (Factory.basic ~gossip_full_every:1 ())
        in
        Alcotest.(check int) "no digests" 0
          (Metrics.sum (Cluster.metrics cluster) "rx.digest"));
    test "delta ≡ full gossip: delivered sets match across 24 seeds" (fun () ->
        for seed = 1 to 24 do
          let full = delta_equiv_run ~delta_gossip:false ~seed in
          let delta = delta_equiv_run ~delta_gossip:true ~seed in
          if full <> delta then
            Alcotest.failf "seed %d: delivered sets diverge (full %d, delta %d)"
              seed (fst full) (fst delta)
        done);
  ]

(* Like [delta_equiv_run] but varying the dissemination topology: the
   ring must deliver exactly what gossip delivers under the same lossy,
   duplicating, crash-recovering schedule — the topology only changes how
   payloads travel, never what gets ordered. *)
let ring_equiv_run ~dissemination ~seed =
  let net = Net.create ~loss:0.12 ~dup:0.05 () in
  let stack = Factory.alternative ~dissemination ~window:2 () in
  let cluster = Cluster.create stack ~seed ~n:3 ~net () in
  let rng = Rng.create (seed + 9191) in
  Cluster.at cluster 12_000 (fun () -> Cluster.crash cluster 1);
  Cluster.at cluster 30_000 (fun () -> Cluster.recover cluster 1);
  let count =
    Workload.open_loop cluster ~rng ~senders:[ 0; 2 ] ~start:1_000 ~stop:40_000
      ~mean_gap:900 ()
  in
  let ok =
    Cluster.run_until cluster ~until:400_000_000
      ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
      ()
  in
  if not ok then
    Alcotest.failf "seed %d (%s): did not quiesce" seed
      (match dissemination with `Gossip -> "gossip" | `Ring -> "ring");
  check_ok
    (Printf.sprintf "properties (seed %d, %s)" seed
       (match dissemination with `Gossip -> "gossip" | `Ring -> "ring"))
    (Checks.all ~cluster ~good:[ 0; 1; 2 ] ());
  ( Cluster.delivered_count cluster 0,
    Abcast_core.Vclock.streams (Cluster.delivery_vc cluster 0) )

let ring_tests =
  [
    test "ring: payloads travel the ring, not the gossip pull" (fun () ->
        let cluster, count =
          run_workload ~seed:71 ~msgs:12
            (Factory.alternative ~dissemination:`Ring ())
        in
        Alcotest.(check bool) "delivered" true
          (Cluster.delivered_count cluster 0 >= count);
        let m = Cluster.metrics cluster in
        Alcotest.(check bool) "ring batches flowed" true
          (Metrics.sum m "rx.ring" > 0));
    test "ring: a payload circles at most once (hop bound)" (fun () ->
        (* n=4, single broadcast, lossless net: the origin sends hops=3,
           each forward decrements, so at most n-1 = 3 ring sends carry
           this payload. With the coalesced flush there is exactly one
           ring message per hop here. *)
        let cluster =
          Cluster.create
            (Factory.alternative ~dissemination:`Ring ())
            ~seed:72 ~n:4 ()
        in
        Cluster.at cluster 1_000 (fun () ->
            ignore (Cluster.broadcast cluster ~node:0 "once-around"));
        Cluster.run cluster ~until:10_000;
        let rx_ring = Metrics.sum (Cluster.metrics cluster) "rx.ring" in
        Alcotest.(check bool)
          (Printf.sprintf "ring receives bounded (saw %d)" rx_ring)
          true
          (rx_ring > 0 && rx_ring <= 3));
    test "ring: torn ring repaired by the digest/pull fallback" (fun () ->
        (* Crash node 1 — node 0's successor — so ring forwarding from 0
           is cut. Nodes 2..4 must still learn node 0's payloads through
           the retained gossip path, and order them (majority 0,2,3,4 is
           up). *)
        let cluster =
          Cluster.create
            (Factory.alternative ~dissemination:`Ring ())
            ~seed:73 ~n:5 ()
        in
        Cluster.at cluster 500 (fun () -> Cluster.crash cluster 1);
        Cluster.at cluster 1_000 (fun () ->
            ignore (Cluster.broadcast cluster ~node:0 "around-the-tear"));
        let ok =
          Cluster.run_until cluster ~until:10_000_000
            ~pred:(fun () ->
              List.for_all
                (fun i -> Cluster.delivered_count cluster i >= 1)
                [ 0; 2; 3; 4 ])
            ()
        in
        Alcotest.(check bool) "survivors deliver past the tear" true ok;
        check_ok "props" (Checks.all ~cluster ~good:[ 0; 2; 3; 4 ] ()));
    test "ring ≡ gossip: delivered sets match across 20 seeds" (fun () ->
        for seed = 1 to 20 do
          let gossip = ring_equiv_run ~dissemination:`Gossip ~seed in
          let ring = ring_equiv_run ~dissemination:`Ring ~seed in
          if gossip <> ring then
            Alcotest.failf
              "seed %d: delivered sets diverge (gossip %d, ring %d)" seed
              (fst gossip) (fst ring)
        done);
  ]

let suite =
  ( "protocol",
    basic_tests @ alternative_tests @ window_tests @ direct_api_tests
    @ determinism_tests @ edge_tests @ delta_gossip_tests @ ring_tests
    @ metrics_tests )
