(* Sharded broadcast groups: the mux combinator, its wire framing, the
   group-scoped metrics/storage views, and the two system-level claims
   of the sharding design — per-group delivery equivalence with isolated
   single-group stacks, and cross-shard fault isolation. *)

open Helpers
module Factory = Abcast_core.Factory
module Proto = Abcast_core.Proto
module Vclock = Abcast_core.Vclock
module Wire = Abcast_util.Wire
module Kv = Abcast_apps.Kv
module Partitioned_kv = Abcast_apps.Partitioned_kv

let sharded ?route ~shards () =
  Factory.sharded ?route ~shards (Factory.basic ())

(* --- units: combinator shape and wire framing ----------------------- *)

let unit_tests =
  [
    test "shards=1 bypasses the mux entirely" (fun () ->
        let module P = (val Factory.sharded ~shards:1 (Factory.basic ())) in
        Alcotest.(check int) "shards" 1 P.shards;
        Alcotest.(check bool) "no mux suffix" false
          (String.length P.name > 2
          && String.sub P.name (String.length P.name - 2) 2 = "x1"));
    test "mux name and shard count" (fun () ->
        let module P = (val sharded ~shards:4 ()) in
        Alcotest.(check int) "shards" 4 P.shards;
        Alcotest.(check bool) "name carries /x4" true
          (Astring.String.is_suffix ~affix:"/x4" P.name));
    test "read_msg rejects an out-of-range group tag" (fun () ->
        let module P = (val sharded ~shards:4 ()) in
        let w = Wire.writer () in
        Wire.write_uvarint w 7;
        Alcotest.(check bool) "decode fails" true
          (Option.is_none (P.decode_msg (Wire.contents w))));
    test "mux broadcast routes deterministically by payload" (fun () ->
        let cluster = Cluster.create (sharded ~shards:3 ()) ~seed:11 ~n:3 () in
        (* Cluster.broadcast pins groups explicitly; the stack-level hash
           route is what abcast-sim's default workload uses. Check its
           determinism at the module level. *)
        ignore cluster;
        let r = Abcast_core.Shard.default_route in
        Alcotest.(check int) "stable" (r "hello") (r "hello"));
  ]

(* --- units: group-scoped metrics and storage views ------------------ *)

let scoping_tests =
  [
    test "metrics: group views intern prefixed series, readers aggregate"
      (fun () ->
        let m = Metrics.create () in
        let g0 = Metrics.scoped m (Metrics.group_prefix 0) in
        let g2 = Metrics.scoped m (Metrics.group_prefix 2) in
        Metrics.add g0 ~node:0 "msgs" 3;
        Metrics.add g2 ~node:0 "msgs" 4;
        Metrics.observe g0 ~node:0 "lat" 10.0;
        Metrics.observe g2 ~node:0 "lat" 30.0;
        Alcotest.(check int) "aggregate sum" 7 (Metrics.sum m "msgs");
        Alcotest.(check int) "one group" 4 (Metrics.sum m "g2/msgs");
        Alcotest.(check int) "aggregate samples" 2
          (Metrics.count_samples m "lat");
        Alcotest.(check int) "one group's samples" 1
          (Metrics.count_samples m "g2/lat");
        Alcotest.(check (pair int string)) "split" (2, "lat")
          (Metrics.split_group "g2/lat");
        Alcotest.(check (pair int string)) "split of bare name" (0, "lat")
          (Metrics.split_group "lat"));
    test "storage: group views tag keys in one shared backend" (fun () ->
        let m = Metrics.create () in
        let s = Storage.create ~metrics:m ~node:0 () in
        let g0 = Storage.scoped s ~prefix:(Metrics.group_prefix 0) in
        let g1 = Storage.scoped s ~prefix:(Metrics.group_prefix 1) in
        Storage.write g0 ~layer:"t" ~key:"k" "zero";
        Storage.write g1 ~layer:"t" ~key:"k" "one";
        Alcotest.(check (option string)) "g0 view" (Some "zero")
          (Storage.read g0 "k");
        Alcotest.(check (option string)) "g1 view" (Some "one")
          (Storage.read g1 "k");
        Alcotest.(check (option string)) "physical key" (Some "one")
          (Storage.read s "g1/k");
        Alcotest.(check (list string)) "view prefix listing strips the tag"
          [ "k" ]
          (Storage.keys_with_prefix g1 "k");
        Storage.delete g0 ~layer:"t" "k";
        Alcotest.(check bool) "g0 deleted" false (Storage.mem g0 "k");
        Alcotest.(check bool) "g1 untouched" true (Storage.mem g1 "k"));
  ]

(* --- need-pull cap knob --------------------------------------------- *)

let need_cap_tests =
  [
    test "need_cap=1 still reaches quiescence under loss" (fun () ->
        let net = Net.create ~loss:0.15 ~dup:0.05 () in
        ignore
          (run_workload ~seed:21 ~msgs:15 ~net ~until:60_000_000
             (Factory.basic ~need_cap:1 ())));
    test "need_cap rejects negative values" (fun () ->
        Alcotest.check_raises "invalid"
          (Invalid_argument "Basic.create: need_cap must be >= 0") (fun () ->
            ignore
              (Cluster.create (Factory.basic ~need_cap:(-1) ()) ~seed:1 ~n:3 ())));
  ]

(* --- end-to-end: sharded runs deliver per group --------------------- *)

(* Deterministic send plan for one seed: (time, node, group, data).
   Injected via [Cluster.at] with an explicit group so the same per-group
   plan can be replayed on isolated single-group clusters. *)
let send_plan ~seed ~shards =
  let rng = Rng.create (seed + 77) in
  let t = ref 1_000 in
  let plan = ref [] in
  while !t < 40_000 do
    let node = if Rng.int rng 2 = 0 then 0 else 2 in
    let group = Rng.int rng shards in
    let data = Printf.sprintf "s%d-t%d" seed !t in
    plan := (!t, node, group, data) :: !plan;
    t := !t + 900 + Rng.int rng 900
  done;
  List.rev !plan

let inject cluster plan =
  List.iter
    (fun (at, node, group, data) ->
      Cluster.at cluster at (fun () ->
          ignore (Cluster.broadcast cluster ~group ~node data)))
    plan

let crash_schedule cluster =
  Cluster.at cluster 12_000 (fun () -> Cluster.crash cluster 1);
  Cluster.at cluster 30_000 (fun () -> Cluster.recover cluster 1)

(* [count] is the number of broadcasts the plan will inject (all senders
   stay up at injection times, so scheduled = injected); computing it
   from [Cluster.sent] up front would be zero and quiesce vacuously. *)
let quiesce ~what ~count cluster =
  let ok =
    Cluster.run_until cluster ~until:400_000_000
      ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
      ()
  in
  if not ok then Alcotest.failf "%s: did not quiesce" what

(* Fingerprint of one group's deliveries at node 0: the repo's
   established delivery-equivalence notion (count + vclock streams). *)
let fingerprint ?group cluster =
  ( Cluster.delivered_count ?group cluster 0,
    Vclock.streams (Cluster.delivery_vc ?group cluster 0) )

(* One muxed run (S groups over one cluster) vs S isolated runs (one
   single-group cluster per group, same per-group plan, same crash
   schedule, same adversarial network settings): at quiescence each
   group's delivered set must be identical — sharing the transport, the
   WAL and the process with other groups must not change what a group
   delivers. *)
let equivalence_run ~seed =
  let shards = 3 in
  let plan = send_plan ~seed ~shards in
  let muxed =
    let net = Net.create ~loss:0.12 ~dup:0.05 () in
    let cluster = Cluster.create (sharded ~shards ()) ~seed ~n:3 ~net () in
    crash_schedule cluster;
    inject cluster plan;
    quiesce
      ~what:(Printf.sprintf "muxed seed %d" seed)
      ~count:(List.length plan) cluster;
    check_ok
      (Printf.sprintf "muxed properties (seed %d)" seed)
      (Checks.all ~cluster ~good:[ 0; 1; 2 ] ());
    List.init shards (fun g -> fingerprint ~group:g cluster)
  in
  let isolated =
    List.init shards (fun g ->
        let net = Net.create ~loss:0.12 ~dup:0.05 () in
        let cluster = Cluster.create (Factory.basic ()) ~seed ~n:3 ~net () in
        crash_schedule cluster;
        let plan_g =
          List.filter_map
            (fun (at, node, group, data) ->
              if group = g then Some (at, node, 0, data) else None)
            plan
        in
        inject cluster plan_g;
        quiesce
          ~what:(Printf.sprintf "isolated g%d seed %d" g seed)
          ~count:(List.length plan_g) cluster;
        fingerprint cluster)
  in
  List.iteri
    (fun g (mc, ms) ->
      let ic, is = List.nth isolated g in
      Alcotest.(check int)
        (Printf.sprintf "seed %d g%d: delivered count" seed g)
        ic mc;
      if ms <> is then
        Alcotest.failf "seed %d g%d: vclock streams differ" seed g)
    muxed

(* Cross-shard isolation: drop every frame of group 0 on the wire (on
   top of loss and a crash/recovery) and the other groups must still
   deliver everything and satisfy the properties; group 0 must deliver
   nothing (its consensus can never reach a majority). *)
let drop_group0 (stack : Proto.t) : Proto.t =
  let module S = (val stack : Proto.S) in
  (module struct
    include S

    let name = S.name ^ "-g0-partitioned"
    let handler t ~src m = if S.msg_group m <> 0 then S.handler t ~src m
  end : Proto.S)

let isolation_test () =
  let shards = 3 in
  let seed = 5 in
  let plan = send_plan ~seed ~shards in
  let net = Net.create ~loss:0.10 () in
  let cluster =
    Cluster.create (drop_group0 (sharded ~shards ())) ~seed ~n:3 ~net ()
  in
  crash_schedule cluster;
  inject cluster plan;
  let surviving g = List.length (Cluster.sent_in cluster ~group:g) in
  let ok =
    Cluster.run_until cluster ~until:400_000_000
      ~pred:(fun () ->
        List.for_all
          (fun g ->
            Cluster.all_caught_up cluster ~group:g ~count:(surviving g) ())
          [ 1; 2 ])
      ()
  in
  Alcotest.(check bool) "groups 1,2 quiesce despite group 0 partition" true ok;
  List.iter
    (fun g ->
      check_ok
        (Printf.sprintf "group %d properties" g)
        (Checks.all ~group:g ~cluster ~good:[ 0; 1; 2 ] ()))
    [ 1; 2 ];
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "group 0 ordered nothing at node %d" i)
        0
        (Cluster.delivered_count ~group:0 cluster i))
    [ 0; 1; 2 ]

(* Partitioned KV over a sharded stack: commands route to the group
   owning their key; rebuilding each node's replica set from its
   group-wise delivery tails must converge (equal digests) and reflect
   per-key last-writer-wins order. *)
let partitioned_kv_test () =
  let shards = 4 in
  let n = 3 in
  let cluster = Cluster.create (sharded ~shards ()) ~seed:31 ~n () in
  let rng = Rng.create 3131 in
  let t = ref 1_000 in
  let last_write = Hashtbl.create 64 in
  let c = ref 0 in
  while !t < 30_000 do
    let key = Printf.sprintf "k%d" (Rng.int rng 40) in
    let value = Printf.sprintf "v%d" !c in
    let group = Partitioned_kv.shard_of_key ~shards key in
    (* Pin each key to one sending node: total order does not promise
       real-time order across senders, but per-sender streams deliver in
       order, so the last scheduled write of a key is its final value. *)
    let node = Hashtbl.hash ("owner-" ^ key) mod n in
    let at = !t in
    Cluster.at cluster at (fun () ->
        ignore
          (Cluster.broadcast cluster ~group ~node
             (Kv.set_cmd ~key ~value)));
    Hashtbl.replace last_write key value;
    incr c;
    t := !t + 200 + Rng.int rng 400
  done;
  quiesce ~what:"partitioned kv" ~count:!c cluster;
  let replicas =
    List.init n (fun i ->
        let pkv = Partitioned_kv.create ~shards in
        for g = 0 to shards - 1 do
          List.iter
            (fun pl -> Partitioned_kv.deliver pkv ~group:g pl)
            (Cluster.delivered_tail ~group:g cluster i)
        done;
        pkv)
  in
  let d0 = Partitioned_kv.digest (List.hd replicas) in
  List.iteri
    (fun i pkv ->
      Alcotest.(check string)
        (Printf.sprintf "digest at node %d" i)
        d0
        (Partitioned_kv.digest pkv))
    replicas;
  (* per-key order: one key lives in one group, so the last scheduled
     write is the final value everywhere *)
  Hashtbl.iter
    (fun key value ->
      Alcotest.(check (option string))
        (Printf.sprintf "last write of %s" key)
        (Some value)
        (Partitioned_kv.get (List.hd replicas) key))
    last_write

let system_tests =
  [
    slow_test "20-seed sweep: muxed groups == isolated single-group runs"
      (fun () ->
        for seed = 1 to 20 do
          equivalence_run ~seed
        done);
    slow_test "cross-shard isolation: a partitioned group stalls alone"
      isolation_test;
    test "partitioned kv: convergent digests, per-key order" partitioned_kv_test;
    test "sharded run labels per-group metric series" (fun () ->
        let cluster = Cluster.create (sharded ~shards:2 ()) ~seed:9 ~n:3 () in
        List.iter
          (fun g ->
            Cluster.at cluster 1_000 (fun () ->
                ignore (Cluster.broadcast cluster ~group:g ~node:0 "x")))
          [ 0; 1 ];
        quiesce ~what:"metrics run" ~count:2 cluster;
        let m = Cluster.metrics cluster in
        List.iter
          (fun g ->
            let series = Printf.sprintf "g%d/lat_deliver" g in
            Alcotest.(check bool)
              (series ^ " recorded")
              true
              (Metrics.count_samples m series > 0))
          [ 0; 1 ];
        Alcotest.(check int) "bare name aggregates both groups"
          (Metrics.count_samples m "g0/lat_deliver"
          + Metrics.count_samples m "g1/lat_deliver")
          (Metrics.count_samples m "lat_deliver"));
  ]

let suite =
  ( "shard",
    unit_tests @ scoping_tests @ need_cap_tests @ system_tests )
