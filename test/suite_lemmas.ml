(* Tests for the P1-P7 lemma monitors — including negative tests that
   tamper with a process's stable storage to prove the monitor actually
   fires. *)

open Helpers
module Lemmas = Abcast_harness.Lemmas
module Factory = Abcast_core.Factory
module Keys = Abcast_consensus.Consensus_intf.Keys

let healthy_run stack =
  let cluster = Cluster.create stack ~seed:81 ~n:3 () in
  let lemmas = Lemmas.attach cluster () in
  let rng = Rng.create 82 in
  let count =
    Workload.open_loop cluster ~rng ~senders:[ 0; 1; 2 ] ~start:1_000
      ~stop:40_000 ~mean_gap:1_500 ()
  in
  let ok =
    Cluster.run_until cluster ~until:30_000_000
      ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
      ()
  in
  Alcotest.(check bool) "quiesced" true ok;
  (* settle so idle processes converge on the final round *)
  Cluster.run cluster ~until:(Cluster.now cluster + 200_000);
  (cluster, lemmas)

let tests =
  [
    test "healthy basic run: no lemma violations" (fun () ->
        let _, lemmas = healthy_run (Factory.basic ()) in
        check_ok "P1-P5" (Lemmas.report lemmas);
        check_ok "P3" (Lemmas.check_converged lemmas ~good:[ 0; 1; 2 ]));
    test "healthy alternative run with crash: no lemma violations" (fun () ->
        let cluster =
          Cluster.create
            (Factory.alternative ~checkpoint_period:15_000 ~delta:3 ())
            ~seed:83 ~n:3 ()
        in
        let lemmas = Lemmas.attach cluster ~period:3_000 () in
        let rng = Rng.create 84 in
        Cluster.at cluster 10_000 (fun () -> Cluster.crash cluster 2);
        Cluster.at cluster 60_000 (fun () -> Cluster.recover cluster 2);
        let count =
          Workload.open_loop cluster ~rng ~senders:[ 0; 1 ] ~start:1_000
            ~stop:80_000 ~mean_gap:1_200 ()
        in
        let ok =
          Cluster.run_until cluster ~until:60_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
            ()
        in
        Alcotest.(check bool) "quiesced" true ok;
        Cluster.run cluster ~until:(Cluster.now cluster + 300_000);
        check_ok "P1-P5 under checkpointing and state transfer"
          (Lemmas.report lemmas);
        check_ok "P3" (Lemmas.check_converged lemmas ~good:[ 0; 1; 2 ]));
    test "monitor catches a mutated proposal (anti-P4)" (fun () ->
        let cluster, lemmas = healthy_run (Factory.basic ()) in
        check_ok "pre-corruption" (Lemmas.report lemmas);
        Alcotest.(check bool) "proposal exists" true
          (Cluster.read_storage cluster 0 (Keys.proposal 0) <> None);
        Cluster.corrupt_storage cluster 0 ~key:(Keys.proposal 0) "tampered";
        Lemmas.sample_now lemmas;
        Alcotest.(check bool) "detected" true
          (Result.is_error (Lemmas.report lemmas));
        (match Lemmas.violations lemmas with
        | v :: _ ->
          Alcotest.(check bool) "mentions proposal" true
            (Astring.String.is_infix ~affix:"proposal" v)
        | [] -> Alcotest.fail "no violation recorded"));
    test "monitor catches a mutated decision (anti-P5)" (fun () ->
        let cluster, lemmas = healthy_run (Factory.basic ()) in
        Cluster.corrupt_storage cluster 1 ~key:(Keys.decision 0) "forged";
        Lemmas.sample_now lemmas;
        Alcotest.(check bool) "detected" true
          (Result.is_error (Lemmas.report lemmas)));
    test "monitor catches divergent decisions (anti-agreement)" (fun () ->
        let cluster, lemmas = healthy_run (Factory.basic ()) in
        (* forge a decision for a brand-new instance at two processes *)
        Cluster.corrupt_storage cluster 0 ~key:(Keys.decision 999) "alpha";
        Cluster.corrupt_storage cluster 1 ~key:(Keys.decision 999) "beta";
        Lemmas.sample_now lemmas;
        Alcotest.(check bool) "detected" true
          (Result.is_error (Lemmas.report lemmas)));
    test "monitor catches a rewound checkpoint (anti-P1/P2)" (fun () ->
        let cluster =
          Cluster.create
            (Factory.alternative ~checkpoint_period:10_000 ())
            ~seed:85 ~n:3 ()
        in
        let lemmas = Lemmas.attach cluster ~period:2_000 () in
        let rng = Rng.create 86 in
        let count =
          Workload.open_loop cluster ~rng ~senders:[ 0; 1; 2 ] ~start:1_000
            ~stop:50_000 ~mean_gap:1_000 ()
        in
        let ok =
          Cluster.run_until cluster ~until:30_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
            ()
        in
        Alcotest.(check bool) "quiesced" true ok;
        check_ok "pre" (Lemmas.report lemmas);
        (* rewind the checkpoint round to 0 *)
        Cluster.corrupt_storage cluster 0 ~key:"ab/checkpoint"
          (Abcast_core.Protocol.encode_checkpoint
             (0, Abcast_core.Agreed.snapshot (Abcast_core.Agreed.create ())));
        Lemmas.sample_now lemmas;
        Alcotest.(check bool) "detected" true
          (Result.is_error (Lemmas.report lemmas)));
  ]

let suite = ("lemmas", tests)
