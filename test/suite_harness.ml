(* Tests for the harness itself: the property-check oracle must actually
   detect violations (otherwise E9's "zero violations" means nothing),
   and the table/workload utilities must behave. *)

open Helpers
module Table = Abcast_harness.Table

let id origin boot seq = { Payload.origin; boot; seq }

let pl i = Payload.make i "d"

let expect_error what = function
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s: violation not detected" what

let expect_ok what = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: spurious violation: %s" what e

let checks_tests =
  [
    test "integrity accepts distinct ids" (fun () ->
        expect_ok "distinct"
          (Checks.integrity [ pl (id 0 0 0); pl (id 0 0 1); pl (id 1 0 0) ]));
    test "integrity rejects a duplicate" (fun () ->
        expect_error "dup"
          (Checks.integrity [ pl (id 0 0 0); pl (id 1 0 0); pl (id 0 0 0) ]));
    test "total order accepts prefixes" (fun () ->
        let a = [ pl (id 0 0 0); pl (id 1 0 0) ] in
        let b = [ pl (id 0 0 0) ] in
        expect_ok "prefix" (Checks.total_order [ a; b; [] ]));
    test "total order rejects divergent sequences" (fun () ->
        let a = [ pl (id 0 0 0); pl (id 1 0 0) ] in
        let b = [ pl (id 1 0 0); pl (id 0 0 0) ] in
        expect_error "diverge" (Checks.total_order [ a; b ]));
    test "total order rejects same-length different content" (fun () ->
        let a = [ pl (id 0 0 0) ] and b = [ pl (id 1 0 0) ] in
        expect_error "content" (Checks.total_order [ a; b ]));
    test "validity rejects unknown messages" (fun () ->
        expect_error "spurious"
          (Checks.validity ~known:(fun _ -> false) [ pl (id 0 0 0) ]);
        expect_ok "known"
          (Checks.validity ~known:(fun _ -> true) [ pl (id 0 0 0) ]));
    test "termination: completed broadcast must be everywhere" (fun () ->
        let m = id 0 0 0 in
        expect_error "missing at one good process"
          (Checks.termination ~completed:[ m ]
             ~good_sequences:[ [ pl m ]; [] ]);
        expect_ok "present everywhere"
          (Checks.termination ~completed:[ m ]
             ~good_sequences:[ [ pl m ]; [ pl m ] ]));
    test "termination: delivered-somewhere must be delivered-everywhere"
      (fun () ->
        let m = id 0 0 0 in
        expect_error "uniformity"
          (Checks.termination ~completed:[]
             ~good_sequences:[ [ pl m ]; [] ]));
    test "termination: empty obligations pass" (fun () ->
        expect_ok "empty" (Checks.termination ~completed:[] ~good_sequences:[ []; [] ]));
  ]

let table_tests =
  [
    test "num inserts thousands separators" (fun () ->
        Alcotest.(check string) "1,234,567" "1,234,567" (Table.num 1_234_567);
        Alcotest.(check string) "small" "42" (Table.num 42);
        Alcotest.(check string) "negative" "-1,000" (Table.num (-1_000));
        Alcotest.(check string) "zero" "0" (Table.num 0));
    test "flt formats and handles nan" (fun () ->
        Alcotest.(check string) "2 dec" "3.14" (Table.flt 3.14159);
        Alcotest.(check string) "0 dec" "3" (Table.flt ~dec:0 3.14159);
        Alcotest.(check string) "nan" "-" (Table.flt nan));
    test "ratio" (fun () ->
        Alcotest.(check string) "3x" "3.00x" (Table.ratio 90.0 30.0);
        Alcotest.(check string) "div0" "-" (Table.ratio 1.0 0.0));
  ]

let workload_tests =
  [
    test "payload has the requested size and is printable" (fun () ->
        let rng = Rng.create 3 in
        let p = Workload.payload rng ~size:100 in
        Alcotest.(check int) "size" 100 (String.length p);
        String.iter
          (fun c ->
            Alcotest.(check bool) "printable" true (Char.code c >= 32 && Char.code c < 127))
          p);
    test "open_loop schedules roughly stop-start/gap broadcasts" (fun () ->
        let cluster =
          Cluster.create (Abcast_core.Factory.basic ()) ~seed:5 ~n:3 ()
        in
        let rng = Rng.create 6 in
        let count =
          Workload.open_loop cluster ~rng ~senders:[ 0; 1; 2 ] ~start:0
            ~stop:100_000 ~mean_gap:1_000 ()
        in
        Alcotest.(check bool)
          (Printf.sprintf "%d in [60;160]" count)
          true
          (count >= 60 && count <= 160));
    test "closed_loop issues exactly total broadcasts" (fun () ->
        let cluster =
          Cluster.create (Abcast_core.Factory.basic ()) ~seed:7 ~n:3 ()
        in
        let rng = Rng.create 8 in
        Workload.closed_loop cluster ~rng ~node:0 ~total:10 ();
        let done_ () = Cluster.delivered_count cluster 0 >= 10 in
        Alcotest.(check bool) "delivered" true
          (Cluster.run_until cluster ~until:60_000_000 ~pred:done_ ());
        Alcotest.(check int) "exactly 10" 10 (List.length (Cluster.sent cluster)));
  ]

let cluster_tests =
  [
    test "broadcast on a down node returns None" (fun () ->
        let cluster =
          Cluster.create (Abcast_core.Factory.basic ()) ~seed:9 ~n:3 ()
        in
        Cluster.crash cluster 1;
        Alcotest.(check bool) "none" true
          (Cluster.broadcast cluster ~node:1 "x" = None);
        Alcotest.(check bool) "up one works" true
          (Cluster.broadcast cluster ~node:0 "x" <> None));
    test "sent tracks completion" (fun () ->
        let cluster =
          Cluster.create (Abcast_core.Factory.basic ()) ~seed:10 ~n:3 ()
        in
        ignore (Cluster.broadcast cluster ~node:0 "x");
        (match Cluster.sent cluster with
        | [ (_, completed) ] -> Alcotest.(check bool) "pending" false completed
        | _ -> Alcotest.fail "one record expected");
        Cluster.run cluster ~until:5_000_000;
        match Cluster.sent cluster with
        | [ (_, completed) ] -> Alcotest.(check bool) "completed" true completed
        | _ -> Alcotest.fail "one record expected");
    test "broadcast_blocks reflects the stack" (fun () ->
        let b = Cluster.create (Abcast_core.Factory.basic ()) ~seed:11 ~n:3 () in
        Alcotest.(check bool) "basic blocks" true (Cluster.broadcast_blocks b);
        let a =
          Cluster.create
            (Abcast_core.Factory.alternative ~early_return:true ())
            ~seed:11 ~n:3 ()
        in
        Alcotest.(check bool) "early return does not" false
          (Cluster.broadcast_blocks a));
    test "ever_delivered accumulates across crashes" (fun () ->
        let cluster =
          Cluster.create (Abcast_core.Factory.basic ()) ~seed:12 ~n:3 ()
        in
        ignore (Cluster.broadcast cluster ~node:0 "x");
        Cluster.run cluster ~until:5_000_000;
        Cluster.crash cluster 2;
        Alcotest.(check int) "one id" 1 (List.length (Cluster.ever_delivered cluster)));
  ]

let suite =
  ("harness", checks_tests @ table_tests @ workload_tests @ cluster_tests)
