(* The client service layer: session-table dedup semantics, deterministic
   eviction, checkpoint recovery, the read-index lease machine — first as
   pure units, then through the deterministic simulator (crash + recovery
   replays the table from its checkpoint), and finally on the live
   runtime: the crash-recovery dedup scenario of the PR-8 issue (a node
   dies after applying a request, restarts, and the re-submitted
   (session, seq) is served from the reply cache, not re-applied). *)

open Helpers
module Envelope = Abcast_core.Envelope
module Factory = Abcast_core.Factory
module Kv = Abcast_apps.Kv
module Session = Abcast_service.Session
module Service = Abcast_service.Service
module Loadgen = Abcast_service.Loadgen

let request ~session ~seq cmd =
  Envelope.encode (Envelope.Request { session; seq; cmd })

let incr ~session ~seq key = request ~session ~seq (Kv.incr_cmd ~key)

let status_pp = function
  | Envelope.Applied -> "applied"
  | Envelope.Cached -> "cached"
  | Envelope.Gap -> "gap"

let status = Alcotest.testable (Fmt.of_to_string status_pp) ( = )

let apply_request m data =
  match Session.apply m data with
  | Session.Request_done { status; reply; _ } -> (status, reply)
  | _ -> Alcotest.fail "expected a Request_done event"

let unit_tests =
  [
    test "session: first apply executes, duplicate hits the cache" (fun () ->
        let m = Session.create () in
        let st, reply = apply_request m (incr ~session:7 ~seq:1 "k") in
        Alcotest.check status "first" Envelope.Applied st;
        Alcotest.(check string) "incr reply" "1" reply;
        let st, reply = apply_request m (incr ~session:7 ~seq:1 "k") in
        Alcotest.check status "duplicate" Envelope.Cached st;
        Alcotest.(check string) "cached reply" "1" reply;
        (* the non-idempotent Incr is the witness: one apply, not two *)
        Alcotest.(check (option string)) "applied once" (Some "1")
          (Session.get m "k");
        Alcotest.(check (option int)) "floor" (Some 1) (Session.floor m 7));
    test "session: seq below the floor is a gap, not a re-apply" (fun () ->
        let m = Session.create () in
        ignore (Session.apply m (incr ~session:3 ~seq:1 "k"));
        ignore (Session.apply m (incr ~session:3 ~seq:2 "k"));
        let st, _ = apply_request m (incr ~session:3 ~seq:1 "k") in
        Alcotest.check status "below floor" Envelope.Gap st;
        Alcotest.(check (option string)) "count unchanged" (Some "2")
          (Session.get m "k"));
    test "session: sessions are independent" (fun () ->
        let m = Session.create () in
        ignore (Session.apply m (incr ~session:1 ~seq:1 "k"));
        let st, reply = apply_request m (incr ~session:2 ~seq:1 "k") in
        Alcotest.check status "other session applies" Envelope.Applied st;
        Alcotest.(check string) "sees the first incr" "2" reply);
    test "session: get and set replies" (fun () ->
        let m = Session.create () in
        ignore
          (Session.apply m
             (request ~session:1 ~seq:1 (Kv.set_cmd ~key:"a" ~value:"x")));
        let st, reply =
          apply_request m (request ~session:1 ~seq:2 (Kv.get_cmd ~key:"a"))
        in
        Alcotest.check status "get applied" Envelope.Applied st;
        Alcotest.(check string) "get reply" "x" reply);
    test "session: foreign payloads hit the store, not the table" (fun () ->
        let m = Session.create () in
        (match Session.apply m (Kv.set_cmd ~key:"f" ~value:"1") with
        | Session.Foreign _ -> ()
        | _ -> Alcotest.fail "expected Foreign");
        Alcotest.(check (option string)) "applied" (Some "1")
          (Session.get m "f");
        Alcotest.(check int) "no session created" 0 (Session.session_count m));
    test "session: claim and lease marker semantics" (fun () ->
        let m = Session.create () in
        let granted data =
          match Session.apply m data with
          | Session.Marker { granted; _ } -> granted
          | _ -> Alcotest.fail "expected a Marker event"
        in
        Alcotest.(check bool) "lease without a leader is refused" false
          (granted (Envelope.encode (Envelope.Lease { node = 0; stamp = 1 })));
        Alcotest.(check bool) "claim always lands" true
          (granted (Envelope.encode (Envelope.Claim { node = 0; stamp = 2 })));
        Alcotest.(check int) "leader view" 0 (Session.leader m);
        Alcotest.(check bool) "leader's renewal is granted" true
          (granted (Envelope.encode (Envelope.Lease { node = 0; stamp = 3 })));
        Alcotest.(check bool) "someone else's renewal is not" false
          (granted (Envelope.encode (Envelope.Lease { node = 2; stamp = 4 })));
        Alcotest.(check bool) "a rival claim takes the view" true
          (granted (Envelope.encode (Envelope.Claim { node = 2; stamp = 5 })));
        Alcotest.(check int) "new leader" 2 (Session.leader m));
    test "session: eviction is LRU by apply index and deterministic"
      (fun () ->
        let run () =
          let m = Session.create ~max_sessions:3 () in
          for s = 1 to 3 do
            ignore (Session.apply m (incr ~session:s ~seq:1 "k"))
          done;
          (* touch 1 so that 2 is now the least recently used *)
          ignore (Session.apply m (incr ~session:1 ~seq:2 "k"));
          ignore (Session.apply m (incr ~session:4 ~seq:1 "k"));
          m
        in
        let m = run () in
        Alcotest.(check int) "capped" 3 (Session.session_count m);
        Alcotest.(check (option int)) "victim was the LRU session" None
          (Session.floor m 2);
        Alcotest.(check (option int)) "recently touched survives" (Some 2)
          (Session.floor m 1);
        Alcotest.(check string) "replica determinism" (Session.digest m)
          (Session.digest (run ())));
    test "session: evicted session re-registers from scratch" (fun () ->
        let m = Session.create ~max_sessions:1 () in
        ignore (Session.apply m (incr ~session:1 ~seq:5 "a"));
        ignore (Session.apply m (incr ~session:2 ~seq:1 "b"));
        (* session 1 was evicted: its floor is gone, so a re-submitted
           seq 5 re-applies — the documented truncation hazard the cap
           must be provisioned against (see DESIGN.md) *)
        let st, _ = apply_request m (incr ~session:1 ~seq:5 "a") in
        Alcotest.check status "re-applied after eviction" Envelope.Applied st);
    test "session: checkpoint/install roundtrip" (fun () ->
        let m = Session.create () in
        ignore (Session.apply m (incr ~session:9 ~seq:4 "k"));
        ignore
          (Session.apply m (Envelope.encode (Envelope.Claim { node = 1; stamp = 7 })));
        let m2 = Session.create () in
        (Session.hooks m2).install ((Session.hooks m).checkpoint ());
        Alcotest.(check string) "digest" (Session.digest m) (Session.digest m2);
        Alcotest.(check (option int)) "floor" (Some 4) (Session.floor m2 9);
        Alcotest.(check (option string)) "reply cache" (Some "1")
          (Session.cached_reply m2 9);
        Alcotest.(check int) "leader" 1 (Session.leader m2);
        Alcotest.(check int) "apply index" 2 (Session.applied m2);
        let st, reply = apply_request m2 (incr ~session:9 ~seq:4 "k") in
        Alcotest.check status "dedup survives the roundtrip" Envelope.Cached st;
        Alcotest.(check string) "cached reply survives" "1" reply);
    test "session: corrupt checkpoint is refused" (fun () ->
        let m = Session.create () in
        Alcotest.check_raises "bad blob"
          (Abcast_util.Wire.Error "session checkpoint: bad version 120")
          (fun () -> Session.install m "xyz"));
  ]

(* --- deterministic simulator: the table is app state ------------------ *)

(* Register one Session machine per process as protocol app state via the
   group-aware factory; events observed at each process are recorded so
   dedup decisions can be asserted, not just final state. *)
let sim_stack ~machines ~events =
  Factory.alternative ~checkpoint_period:20_000
    ~group_app_factory:(fun ~node ~group ->
      assert (group = 0);
      let m = Session.create () in
      machines.(node) <- m;
      ( Session.hooks m,
        fun (pl : Payload.t) ->
          events.(node) <- Session.apply m pl.data :: events.(node) ))
    ()

let applied_requests evs ~session ~seq =
  List.filter
    (function
      | Session.Request_done { session = s; seq = q; status = Envelope.Applied; _ }
        ->
        s = session && q = seq
      | _ -> false)
    evs

let sim_tests =
  [
    test "sim: re-submitted request dedups across crash and recovery"
      (fun () ->
        let n = 3 in
        let machines = Array.init n (fun _ -> Session.create ()) in
        let events = Array.make n [] in
        let cluster =
          Cluster.create (sim_stack ~machines ~events) ~seed:11 ~n ()
        in
        (* session 5 applies seq 1 everywhere, then node 1 crashes, the
           protocol compacts on, node 1 recovers from its checkpoint, and
           the client re-submits the same (5, 1). *)
        Cluster.at cluster 1_000 (fun () ->
            ignore (Cluster.broadcast cluster ~node:0 (incr ~session:5 ~seq:1 "k")));
        Cluster.at cluster 40_000 (fun () -> Cluster.crash cluster 1);
        for j = 0 to 9 do
          (* unrelated traffic while node 1 is down, to force checkpoint
             motion past the original request *)
          Cluster.at cluster (60_000 + (j * 5_000)) (fun () ->
              ignore
                (Cluster.broadcast cluster ~node:(2 * (j mod 2))
                   (incr ~session:6 ~seq:(j + 1) "other")))
        done;
        Cluster.at cluster 150_000 (fun () -> Cluster.recover cluster 1);
        Cluster.at cluster 220_000 (fun () ->
            ignore (Cluster.broadcast cluster ~node:1 (incr ~session:5 ~seq:1 "k")));
        let ok =
          Cluster.run_until cluster ~until:60_000_000
            ~pred:(fun () ->
              Cluster.now cluster > 220_000
              && Cluster.all_caught_up cluster
                   ~count:(List.length (Cluster.sent cluster))
                   ())
            ()
        in
        Alcotest.(check bool) "quiesced" true ok;
        for i = 0 to n - 1 do
          Alcotest.(check (option string))
            (Printf.sprintf "node %d: applied exactly once" i)
            (Some "1")
            (Session.get machines.(i) "k");
          Alcotest.(check (option int))
            (Printf.sprintf "node %d: floor" i)
            (Some 1)
            (Session.floor machines.(i) 5)
        done;
        (* at a process that never crashed, the second submission must
           have been answered from the cache *)
        Alcotest.(check int) "one real apply at node 0" 1
          (List.length (applied_requests events.(0) ~session:5 ~seq:1));
        let cached =
          List.exists
            (function
              | Session.Request_done
                  { session = 5; seq = 1; status = Envelope.Cached; _ } ->
                true
              | _ -> false)
            events.(0)
        in
        Alcotest.(check bool) "duplicate served from cache" true cached;
        (* replica state machines converged *)
        let d0 = Session.digest machines.(0) in
        for i = 1 to n - 1 do
          Alcotest.(check string)
            (Printf.sprintf "digest %d" i)
            d0
            (Session.digest machines.(i))
        done);
    test "sim: recovered table answers from the WAL checkpoint" (fun () ->
        (* same shape, but the re-submission lands while the original
           request is only in node 1's installed checkpoint (the tail was
           compacted away), so a wrong recovery would re-apply *)
        let n = 3 in
        let machines = Array.init n (fun _ -> Session.create ()) in
        let events = Array.make n [] in
        let cluster =
          Cluster.create (sim_stack ~machines ~events) ~seed:23 ~n ()
        in
        Cluster.at cluster 1_000 (fun () ->
            ignore
              (Cluster.broadcast cluster ~node:2 (incr ~session:1 ~seq:1 "c1")));
        Cluster.at cluster 2_500 (fun () ->
            ignore
              (Cluster.broadcast cluster ~node:2 (incr ~session:1 ~seq:2 "c1")));
        Cluster.at cluster 80_000 (fun () -> Cluster.crash cluster 1);
        Cluster.at cluster 140_000 (fun () -> Cluster.recover cluster 1);
        Cluster.at cluster 200_000 (fun () ->
            ignore
              (Cluster.broadcast cluster ~node:1 (incr ~session:1 ~seq:2 "c1")));
        let ok =
          Cluster.run_until cluster ~until:60_000_000
            ~pred:(fun () ->
              Cluster.now cluster > 200_000
              && Cluster.all_caught_up cluster
                   ~count:(List.length (Cluster.sent cluster))
                   ())
            ()
        in
        Alcotest.(check bool) "quiesced" true ok;
        for i = 0 to n - 1 do
          Alcotest.(check (option string))
            (Printf.sprintf "node %d: two applies, not three" i)
            (Some "2")
            (Session.get machines.(i) "c1")
        done);
  ]

(* --- live runtime: the issue's crash-recovery dedup scenario ---------- *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    Filename.concat
      (Filename.get_temp_dir_name ())
      (counter := !counter + 1;
       Printf.sprintf "abcast-service-%d-%d" (Unix.getpid ()) !counter)

let with_service ?(cfg = Service.default_config) ~base_port f =
  match Service.create ~base_port ~dir:(fresh_dir ()) cfg with
  | exception Unix.Unix_error (err, _, _) ->
    Alcotest.skip () |> ignore;
    Printf.printf "skipping live service test: %s\n" (Unix.error_message err)
  | svc -> Fun.protect ~finally:(fun () -> Service.shutdown svc) (fun () -> f svc)

let await ?(timeout = 15.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let live_tests =
  [
    slow_test "live: crash after apply, recover, re-submit -> cached reply"
      (fun () ->
        with_service ~base_port:7611 (fun svc ->
            let rt = Service.runtime svc in
            (* submit at node 0 and wait until the whole cluster applied
               it — node 0 has applied but the client never consumed the
               ack (the "crash between apply and reply" window) *)
            Service.submit svc ~node:0 ~session:42 ~seq:1
              ~cmd:(Kv.incr_cmd ~key:"x") (fun _ _ -> ());
            let applied_everywhere () =
              List.for_all
                (fun i -> Service.value svc ~node:i ~key:"x" = "1")
                [ 0; 1; 2 ]
            in
            Alcotest.(check bool) "applied" true (await applied_everywhere);
            Abcast_live.Runtime.crash rt 0;
            Abcast_live.Runtime.recover rt 0;
            (* the recovered node must have its session table back (WAL
               checkpoint + tail replay) before the retry arrives *)
            let floor_back () =
              Abcast_live.Runtime.is_up rt 0
              && Service.floor svc ~node:0 ~session:42 ~key:"x" = Some 1
            in
            Alcotest.(check bool) "table recovered" true (await floor_back);
            let result = ref None in
            let done_ () = !result <> None in
            Service.submit svc ~node:0 ~session:42 ~seq:1
              ~cmd:(Kv.incr_cmd ~key:"x") (fun st reply ->
                result := Some (st, reply));
            Alcotest.(check bool) "acked" true (await done_);
            (match !result with
            | Some (st, reply) ->
              Alcotest.check status "served from the cache" Envelope.Cached st;
              Alcotest.(check string) "original reply" "1" reply
            | None -> assert false);
            (* and the non-idempotent counter proves nothing re-applied *)
            let quiesced () =
              List.for_all
                (fun i -> Service.value svc ~node:i ~key:"x" = "1")
                [ 0; 1; 2 ]
            in
            Alcotest.(check bool) "applied exactly once" true (await quiesced)));
    slow_test "live: read-index serves under a lease, stale serves anywhere"
      (fun () ->
        let cfg =
          { Service.default_config with read_mode = Service.Read_index }
        in
        with_service ~cfg ~base_port:7621 (fun svc ->
            (* before any claim: no lease, linearizable reads bounce *)
            (match Service.read_index svc ~node:0 ~key:"k" with
            | Service.Not_ready -> ()
            | Service.Value _ -> Alcotest.fail "served without a lease");
            Service.start svc;
            let acked = ref false in
            Service.submit svc ~node:0 ~session:1 ~seq:1
              ~cmd:(Kv.set_cmd ~key:"k" ~value:"v") (fun _ _ -> acked := true);
            Alcotest.(check bool) "write acked by the leader" true
              (await (fun () -> !acked));
            (* the claim quarantine (one lease window) must pass before
               the first lease read; await absorbs it *)
            let lin_read () =
              match Service.read_index svc ~node:0 ~key:"k" with
              | Service.Value v -> v = "v"
              | Service.Not_ready -> false
            in
            Alcotest.(check bool) "lease read sees the write" true
              (await lin_read);
            (* a non-leader never serves read-index reads *)
            (match Service.read_index svc ~node:1 ~key:"k" with
            | Service.Not_ready -> ()
            | Service.Value _ -> Alcotest.fail "non-leader served a lease read");
            (* stale reads serve locally everywhere once caught up *)
            let stale_all () =
              List.for_all
                (fun i ->
                  match Service.read_stale svc ~node:i ~key:"k" with
                  | Service.Value v -> v = "v"
                  | Service.Not_ready -> false)
                [ 0; 1; 2 ]
            in
            Alcotest.(check bool) "stale reads" true (await stale_all)));
    slow_test "live: per-class request histograms reach the Prometheus dump"
      (fun () ->
        with_service ~base_port:7641 (fun svc ->
            (* the loadgen path observes into the per-(class, group)
               histograms; direct observations pin the label rendering
               without depending on live timing *)
            Service.observe_latency svc ~cls:"write" ~group:0 1234.0;
            Service.observe_latency svc ~cls:"lin" ~group:0 5.0;
            Service.observe_latency svc ~cls:"stale" ~group:0 3.0;
            let body =
              Abcast_live.Runtime.prometheus (Service.runtime svc)
            in
            List.iter
              (fun needle ->
                Alcotest.(check bool) ("contains " ^ needle) true
                  (Astring.String.is_infix ~affix:needle body))
              [
                "abcast_service_request_us_bucket";
                "abcast_service_request_us_sum";
                "abcast_service_request_us_count";
                {|class="write"|};
                {|class="lin"|};
                {|class="stale"|};
                {|group="0"|};
                {|le="+Inf"|};
              ]));
    slow_test "live: loadgen exactly-once audit on a healthy cluster"
      (fun () ->
        with_service ~base_port:7631 (fun svc ->
            Service.start svc;
            let report =
              Loadgen.run svc
                {
                  Loadgen.clients = 20;
                  rate = 150.;
                  duration = 1.0;
                  write_pct = 60;
                  lin_pct = 20;
                  timeout = 0.5;
                  seed = 3;
                }
            in
            Alcotest.(check bool) "completed some ops" true (report.completed > 0);
            Alcotest.(check int) "nothing failed" 0 report.failed;
            let settled () =
              let d i = Service.digest svc ~node:i in
              d 0 = d 1 && d 1 = d 2
            in
            Alcotest.(check bool) "replicas converged" true (await settled);
            Alcotest.(check (list string)) "exactly-once" []
              (Loadgen.check_exactly_once svc report ~node:0)));
  ]

let suite = ("service", unit_tests @ sim_tests @ live_tests)
