(* Tests for the replicated applications built on the broadcast layer. *)

open Helpers
module Factory = Abcast_core.Factory
module Kv = Abcast_apps.Kv
module Bank = Abcast_apps.Bank
module Du = Abcast_apps.Deferred_update
module Cfa = Abcast_apps.Consensus_from_abcast

let payload data = Payload.make { origin = 0; boot = 0; seq = 0 } data

let smr_unit_tests =
  [
    test "smr: deliver applies commands in order" (fun () ->
        let r = Kv.Replica.create () in
        Kv.Replica.deliver r (payload (Kv.set_cmd ~key:"a" ~value:"1"));
        Kv.Replica.deliver r (payload (Kv.set_cmd ~key:"a" ~value:"2"));
        Alcotest.(check (option string)) "last write wins" (Some "2")
          (Kv.get (Kv.Replica.state r) "a");
        Alcotest.(check int) "applied" 2 (Kv.Replica.applied r));
    test "smr: checkpoint/install roundtrip" (fun () ->
        let r = Kv.Replica.create () in
        Kv.Replica.deliver r (payload (Kv.set_cmd ~key:"k" ~value:"v"));
        let hooks = Kv.Replica.hooks r in
        let blob = hooks.checkpoint () in
        let r2 = Kv.Replica.create () in
        (Kv.Replica.hooks r2).install blob;
        Alcotest.(check (option string)) "state carried" (Some "v")
          (Kv.get (Kv.Replica.state r2) "k");
        Alcotest.(check int) "applied carried" 1 (Kv.Replica.applied r2));
    test "smr: foreign commands are ignored deterministically" (fun () ->
        let r = Kv.Replica.create () in
        Kv.Replica.deliver r (payload "not a command");
        Alcotest.(check int) "size" 0 (Kv.size (Kv.Replica.state r));
        Alcotest.(check int) "still counted" 1 (Kv.Replica.applied r));
  ]

let kv_tests =
  [
    test "kv: set/del commands" (fun () ->
        let r = Kv.Replica.create () in
        Kv.Replica.deliver r (payload (Kv.set_cmd ~key:"x" ~value:"1"));
        Kv.Replica.deliver r (payload (Kv.set_cmd ~key:"y" ~value:"2"));
        Kv.Replica.deliver r (payload (Kv.del_cmd ~key:"x"));
        Alcotest.(check (option string)) "deleted" None (Kv.get (Kv.Replica.state r) "x");
        Alcotest.(check (list (pair string string)))
          "bindings"
          [ ("y", "2") ]
          (Kv.bindings (Kv.Replica.state r)));
    test "kv: digests distinguish different contents" (fun () ->
        let r1 = Kv.Replica.create () and r2 = Kv.Replica.create () in
        Kv.Replica.deliver r1 (payload (Kv.set_cmd ~key:"a" ~value:"1"));
        Kv.Replica.deliver r2 (payload (Kv.set_cmd ~key:"a" ~value:"2"));
        Alcotest.(check bool) "differ" true
          (Kv.digest (Kv.Replica.state r1) <> Kv.digest (Kv.Replica.state r2)));
    test "kv: replicated run converges under a crash" (fun () ->
        let replicas = Array.make 3 None in
        let stack =
          Factory.alternative ~checkpoint_period:20_000
            ~app_factory:(Kv.Replica.factory (fun i r -> replicas.(i) <- Some r))
            ()
        in
        let cluster = Cluster.create stack ~seed:41 ~n:3 () in
        for j = 0 to 29 do
          Cluster.at cluster (1_000 + (j * 1_200)) (fun () ->
              ignore
                (Cluster.broadcast cluster ~node:(j mod 3)
                   (Kv.set_cmd ~key:(string_of_int (j mod 5))
                      ~value:(string_of_int j))))
        done;
        Cluster.at cluster 15_000 (fun () -> Cluster.crash cluster 1);
        Cluster.at cluster 60_000 (fun () -> Cluster.recover cluster 1);
        (* broadcasts landing on the downed node are skipped: target the
           number actually injected *)
        let ok =
          Cluster.run_until cluster ~until:60_000_000
            ~pred:(fun () ->
              Cluster.now cluster > 60_000
              && Cluster.all_caught_up cluster
                   ~count:(List.length (Cluster.sent cluster))
                   ())
            ()
        in
        Alcotest.(check bool) "caught up" true ok;
        let d i =
          match replicas.(i) with
          | Some r -> Kv.digest (Kv.Replica.state r)
          | None -> Alcotest.fail "missing replica"
        in
        Alcotest.(check string) "0=1" (d 0) (d 1);
        Alcotest.(check string) "1=2" (d 1) (d 2));
  ]

let bank_tests =
  [
    test "bank: deposits and transfers" (fun () ->
        let r = Bank.Replica.create () in
        Bank.Replica.deliver r (payload (Bank.deposit_cmd ~account:0 ~amount:100));
        Bank.Replica.deliver r (payload (Bank.transfer_cmd ~src:0 ~dst:1 ~amount:30));
        Alcotest.(check int) "a0" 70 (Bank.balance (Bank.Replica.state r) 0);
        Alcotest.(check int) "a1" 30 (Bank.balance (Bank.Replica.state r) 1);
        Alcotest.(check int) "total" 100 (Bank.total (Bank.Replica.state r)));
    test "bank: overdraw rejected deterministically" (fun () ->
        let r = Bank.Replica.create () in
        Bank.Replica.deliver r (payload (Bank.deposit_cmd ~account:0 ~amount:10));
        Bank.Replica.deliver r (payload (Bank.transfer_cmd ~src:0 ~dst:1 ~amount:50));
        Alcotest.(check int) "unchanged" 10 (Bank.balance (Bank.Replica.state r) 0);
        Alcotest.(check int) "nothing arrived" 0 (Bank.balance (Bank.Replica.state r) 1));
    test "bank: invalid accounts and amounts ignored" (fun () ->
        let r = Bank.Replica.create () in
        Bank.Replica.deliver r (payload (Bank.deposit_cmd ~account:(-1) ~amount:5));
        Bank.Replica.deliver r (payload (Bank.deposit_cmd ~account:0 ~amount:(-5)));
        Alcotest.(check int) "total" 0 (Bank.total (Bank.Replica.state r)));
    test "bank: replicated totals conserved under faults" (fun () ->
        let replicas = Array.make 3 None in
        let stack =
          Factory.alternative ~checkpoint_period:25_000
            ~app_factory:(Bank.Replica.factory (fun i r -> replicas.(i) <- Some r))
            ()
        in
        let cluster = Cluster.create stack ~seed:43 ~n:3 () in
        let rng = Rng.create 17 in
        (* seed money, then a storm of random transfers *)
        Cluster.at cluster 500 (fun () ->
            ignore
              (Cluster.broadcast cluster ~node:0
                 (Bank.deposit_cmd ~account:0 ~amount:1_000)));
        for j = 1 to 40 do
          Cluster.at cluster (2_000 + (j * 900)) (fun () ->
              let src = Rng.int rng Bank.accounts
              and dst = Rng.int rng Bank.accounts in
              ignore
                (Cluster.broadcast cluster ~node:(j mod 3)
                   (Bank.transfer_cmd ~src ~dst ~amount:(1 + Rng.int rng 50))))
        done;
        Cluster.at cluster 20_000 (fun () -> Cluster.crash cluster 2);
        Cluster.at cluster 70_000 (fun () -> Cluster.recover cluster 2);
        let ok =
          Cluster.run_until cluster ~until:60_000_000
            ~pred:(fun () ->
              Cluster.now cluster > 70_000
              && Cluster.all_caught_up cluster
                   ~count:(List.length (Cluster.sent cluster))
                   ())
            ()
        in
        Alcotest.(check bool) "caught up" true ok;
        List.iter
          (fun i ->
            match replicas.(i) with
            | Some r ->
              Alcotest.(check int)
                (Printf.sprintf "total at %d" i)
                1_000
                (Bank.total (Bank.Replica.state r))
            | None -> Alcotest.fail "missing replica")
          [ 0; 1; 2 ]);
  ]

let du_tests =
  [
    test "deferred-update: non-conflicting transactions commit" (fun () ->
        let db = Du.create () in
        let t1 = Du.Txn.begin_ db in
        ignore (Du.Txn.read t1 "a");
        Du.Txn.write t1 "a" 1;
        let t2 = Du.Txn.begin_ db in
        ignore (Du.Txn.read t2 "b");
        Du.Txn.write t2 "b" 2;
        Du.deliver db (payload (Du.Txn.payload t1));
        Du.deliver db (payload (Du.Txn.payload t2));
        Alcotest.(check int) "commits" 2 (Du.committed db);
        Alcotest.(check int) "aborts" 0 (Du.aborted db);
        Alcotest.(check (pair int int)) "a" (1, 1) (Du.read db "a"));
    test "deferred-update: certification aborts the loser" (fun () ->
        let db = Du.create () in
        (* both transactions read key "x" at version 0 and write it *)
        let t1 = Du.Txn.begin_ db in
        ignore (Du.Txn.read t1 "x");
        Du.Txn.write t1 "x" 10;
        let t2 = Du.Txn.begin_ db in
        ignore (Du.Txn.read t2 "x");
        Du.Txn.write t2 "x" 20;
        Du.deliver db (payload (Du.Txn.payload t1));
        Du.deliver db (payload (Du.Txn.payload t2));
        Alcotest.(check int) "one commit" 1 (Du.committed db);
        Alcotest.(check int) "one abort" 1 (Du.aborted db);
        Alcotest.(check (pair int int)) "winner's write" (10, 1) (Du.read db "x"));
    test "deferred-update: read-your-writes inside a txn" (fun () ->
        let db = Du.create () in
        let t = Du.Txn.begin_ db in
        Du.Txn.write t "k" 5;
        Alcotest.(check int) "own write" 5 (Du.Txn.read t "k"));
    test "deferred-update: blind writes never abort" (fun () ->
        let db = Du.create () in
        let t1 = Du.Txn.begin_ db in
        Du.Txn.write t1 "x" 1;
        let t2 = Du.Txn.begin_ db in
        Du.Txn.write t2 "x" 2;
        Du.deliver db (payload (Du.Txn.payload t1));
        Du.deliver db (payload (Du.Txn.payload t2));
        Alcotest.(check int) "both" 2 (Du.committed db);
        Alcotest.(check (pair int int)) "second wins" (2, 2) (Du.read db "x"));
    test "deferred-update: replicas certify identically" (fun () ->
        (* Two replicas receive the same delivery order: decisions and
           digests must match even with interleaved conflicts. *)
        let a = Du.create () and b = Du.create () in
        let mk db key =
          let t = Du.Txn.begin_ db in
          ignore (Du.Txn.read t key);
          Du.Txn.write t key 7;
          Du.Txn.payload t
        in
        let stream = [ mk a "x"; mk a "x"; mk a "y" ] in
        List.iter (fun p -> Du.deliver a (payload p)) stream;
        List.iter (fun p -> Du.deliver b (payload p)) stream;
        Alcotest.(check int) "commits equal" (Du.committed a) (Du.committed b);
        Alcotest.(check int) "aborts equal" (Du.aborted a) (Du.aborted b);
        Alcotest.(check string) "digest equal" (Du.digest a) (Du.digest b));
    test "deferred-update: end-to-end over the broadcast stack" (fun () ->
        let dbs = Array.init 3 (fun _ -> Du.create ()) in
        (* Use the basic stack and feed every replica from deliveries. *)
        let stack = Factory.basic () in
        let cluster = Cluster.create stack ~seed:44 ~n:3 () in
        (* replicas fed by polling delivered tails at the end (total order
           makes replay equivalent); conflicting txns from 2 clients *)
        let t0 = Du.Txn.begin_ dbs.(0) in
        ignore (Du.Txn.read t0 "acct");
        Du.Txn.write t0 "acct" 111;
        let t1 = Du.Txn.begin_ dbs.(1) in
        ignore (Du.Txn.read t1 "acct");
        Du.Txn.write t1 "acct" 222;
        Cluster.at cluster 1_000 (fun () ->
            ignore (Cluster.broadcast cluster ~node:0 (Du.Txn.payload t0)));
        Cluster.at cluster 1_100 (fun () ->
            ignore (Cluster.broadcast cluster ~node:1 (Du.Txn.payload t1)));
        let ok =
          Cluster.run_until cluster ~until:10_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count:2 ())
            ()
        in
        Alcotest.(check bool) "delivered" true ok;
        (* apply each node's delivered sequence to its replica *)
        Array.iteri
          (fun i db ->
            List.iter (Du.deliver db) (Cluster.delivered_tail cluster i))
          dbs;
        Alcotest.(check int) "one commit" 1 (Du.committed dbs.(0));
        Alcotest.(check int) "one abort" 1 (Du.aborted dbs.(0));
        Alcotest.(check string) "replicas agree" (Du.digest dbs.(0)) (Du.digest dbs.(1));
        Alcotest.(check string) "replicas agree 2" (Du.digest dbs.(1)) (Du.digest dbs.(2)));
  ]

let cfa_tests =
  [
    test "consensus-from-abcast: first delivery decides" (fun () ->
        let c = Cfa.create () in
        Cfa.deliver c (payload (Cfa.encode_proposal ~instance:"i" ~value:"a"));
        Cfa.deliver c (payload (Cfa.encode_proposal ~instance:"i" ~value:"b"));
        Alcotest.(check (option string)) "first" (Some "a") (Cfa.decision c ~instance:"i"));
    test "consensus-from-abcast: instances are independent" (fun () ->
        let c = Cfa.create () in
        Cfa.deliver c (payload (Cfa.encode_proposal ~instance:"x" ~value:"1"));
        Cfa.deliver c (payload (Cfa.encode_proposal ~instance:"y" ~value:"2"));
        Alcotest.(check (option string)) "x" (Some "1") (Cfa.decision c ~instance:"x");
        Alcotest.(check (option string)) "y" (Some "2") (Cfa.decision c ~instance:"y"));
    test "consensus-from-abcast: agreement over the real stack (§6.1)" (fun () ->
        let stack = Factory.basic () in
        let cluster = Cluster.create stack ~seed:45 ~n:3 () in
        (* all three propose concurrently for the same instance *)
        for i = 0 to 2 do
          Cluster.at cluster (1_000 + i) (fun () ->
              ignore
                (Cluster.broadcast cluster ~node:i
                   (Cfa.encode_proposal ~instance:"slot"
                      ~value:(Printf.sprintf "v%d" i))))
        done;
        let ok =
          Cluster.run_until cluster ~until:10_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count:3 ())
            ()
        in
        Alcotest.(check bool) "delivered" true ok;
        let decision i =
          let c = Cfa.create () in
          List.iter (Cfa.deliver c) (Cluster.delivered_tail cluster i);
          Option.get (Cfa.decision c ~instance:"slot")
        in
        let d0 = decision 0 in
        Alcotest.(check bool) "validity" true (List.mem d0 [ "v0"; "v1"; "v2" ]);
        Alcotest.(check string) "agree 0-1" d0 (decision 1);
        Alcotest.(check string) "agree 1-2" (decision 1) (decision 2));
  ]

module Mc = Abcast_apps.Multicast

let mc_tests =
  [
    test "multicast: members deliver, outsiders skip" (fun () ->
        let a = Mc.create ~member_of:[ 0 ] and b = Mc.create ~member_of:[ 1 ] in
        let m = payload (Mc.encode ~dst:[ 0 ] "for group 0") in
        Mc.deliver a m;
        Mc.deliver b m;
        Alcotest.(check int) "a got it" 1 (Mc.delivered_count a);
        Alcotest.(check int) "b skipped" 0 (Mc.delivered_count b);
        Alcotest.(check int) "b counted the skip" 1 (Mc.skipped b));
    test "multicast: overlapping destinations reach both" (fun () ->
        let a = Mc.create ~member_of:[ 0 ] and b = Mc.create ~member_of:[ 1; 2 ] in
        let m = payload (Mc.encode ~dst:[ 0; 2 ] "both") in
        Mc.deliver a m;
        Mc.deliver b m;
        Alcotest.(check int) "a" 1 (Mc.delivered_count a);
        Alcotest.(check int) "b" 1 (Mc.delivered_count b));
    test "multicast: empty destination rejected" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Multicast.encode: empty destination set")
          (fun () -> ignore (Mc.encode ~dst:[] "x")));
    test "multicast: non-envelope payloads ignored" (fun () ->
        let a = Mc.create ~member_of:[ 0 ] in
        Mc.deliver a (payload "raw bytes");
        Alcotest.(check int) "none" 0 (Mc.delivered_count a));
    test "multicast: global order consistent across distinct groups" (fun () ->
        (* 4 processes; groups: g0 = {0,1}, g1 = {2,3}; process 1 is also
           in g1. Multicasts to g0, g1 and {g0,g1} flow through the real
           stack; every pair of processes that both deliver two messages
           must deliver them in the same relative order. *)
        let membership = [| [ 0 ]; [ 0; 1 ]; [ 1 ]; [ 1 ] |] in
        let views = Array.map (fun gs -> Mc.create ~member_of:gs) membership in
        let cluster =
          Cluster.create (Abcast_core.Factory.basic ()) ~seed:90 ~n:4 ()
        in
        let send at node dst body =
          Cluster.at cluster at (fun () ->
              ignore (Cluster.broadcast cluster ~node (Mc.encode ~dst body)))
        in
        send 1_000 0 [ 0 ] "a:g0";
        send 1_100 2 [ 1 ] "b:g1";
        send 1_200 1 [ 0; 1 ] "c:both";
        send 1_300 3 [ 1 ] "d:g1";
        send 1_400 0 [ 0 ] "e:g0";
        let ok =
          Cluster.run_until cluster ~until:20_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~count:5 ())
            ()
        in
        Alcotest.(check bool) "ordered" true ok;
        Array.iteri
          (fun i view ->
            List.iter (Mc.deliver view) (Cluster.delivered_tail cluster i))
          views;
        (* pairwise consistency on common messages *)
        let seqs = Array.map (fun v -> List.map snd (Mc.delivered v)) views in
        let consistent a b =
          let common x = List.filter (fun m -> List.mem m b) x in
          common a = List.filter (fun m -> List.mem m a) b
        in
        for i = 0 to 3 do
          for j = i + 1 to 3 do
            Alcotest.(check bool)
              (Printf.sprintf "p%d/p%d consistent" i j)
              true
              (consistent seqs.(i) seqs.(j))
          done
        done;
        (* membership filtering happened (the total order is the
           protocol's choice, so compare as sets) *)
        let sorted l = List.sort compare l in
        Alcotest.(check (list string)) "p0 sees g0 only"
          [ "a:g0"; "c:both"; "e:g0" ]
          (sorted seqs.(0));
        Alcotest.(check (list string)) "p3 sees g1 only"
          [ "b:g1"; "c:both"; "d:g1" ]
          (sorted seqs.(3));
        Alcotest.(check (list string)) "p1 sees both groups"
          [ "a:g0"; "b:g1"; "c:both"; "d:g1"; "e:g0" ]
          (sorted seqs.(1)));
  ]

let suite =
  ( "apps",
    smr_unit_tests @ kv_tests @ bank_tests @ du_tests @ cfa_tests @ mc_tests )
