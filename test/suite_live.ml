(* Tests of the live runtime: the same protocol code over real threads,
   UDP sockets and file-backed storage. These tests run in real time (a
   few hundred ms each) and are skipped when the environment forbids
   sockets. *)

open Helpers
module Live = Abcast_live.Runtime
module Factory = Abcast_core.Factory

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "abcast-live-%d-%d" (Unix.getpid ()) !counter)
    in
    d

let with_live ?dir ~base_port stack f =
  match Live.create stack ~n:3 ~base_port ?dir () with
  | exception Unix.Unix_error (err, _, _) ->
    Alcotest.skip () |> ignore;
    Printf.printf "skipping live test: %s\n" (Unix.error_message err)
  | live -> Fun.protect ~finally:(fun () -> Live.shutdown live) (fun () -> f live)

(* Wait until the predicate holds, in real time. *)
let await ?(timeout = 15.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let tests =
  [
    slow_test "live: total order over real UDP" (fun () ->
        with_live ~base_port:7411 (Factory.basic ()) (fun live ->
            for j = 0 to 4 do
              Live.broadcast live ~node:(j mod 3) (Printf.sprintf "m%d" j)
            done;
            let done_ () =
              List.for_all (fun i -> Live.delivered_count live i >= 5) [ 0; 1; 2 ]
            in
            Alcotest.(check bool) "all delivered" true (await done_);
            let seq i = Live.delivered_data live i in
            Alcotest.(check (list string)) "0=1" (seq 0) (seq 1);
            Alcotest.(check (list string)) "1=2" (seq 1) (seq 2);
            Alcotest.(check int) "five messages" 5 (List.length (seq 0))));
    slow_test "live: majority continues while a process is down" (fun () ->
        with_live ~base_port:7421 (Factory.basic ()) (fun live ->
            Live.crash live 2;
            Alcotest.(check bool) "down" false (Live.is_up live 2);
            for j = 0 to 3 do
              Live.broadcast live ~node:(j mod 2) (Printf.sprintf "x%d" j)
            done;
            let done_ () =
              List.for_all (fun i -> Live.delivered_count live i >= 4) [ 0; 1 ]
            in
            Alcotest.(check bool) "survivors deliver" true (await done_)));
    slow_test "live: real crash-recovery from files" (fun () ->
        let dir = fresh_dir () in
        with_live ~dir ~base_port:7431 (Factory.basic ()) (fun live ->
            for j = 0 to 3 do
              Live.broadcast live ~node:(j mod 3) (Printf.sprintf "a%d" j)
            done;
            let phase1 () =
              List.for_all
                (fun i -> Live.delivered_count live i >= 4)
                [ 0; 1; 2 ]
            in
            Alcotest.(check bool) "phase1" true (await phase1);
            (* kill process 2 for real; keep broadcasting; bring it back *)
            Live.crash live 2;
            for j = 4 to 7 do
              Live.broadcast live ~node:(j mod 2) (Printf.sprintf "a%d" j)
            done;
            let phase2 () =
              List.for_all (fun i -> Live.delivered_count live i >= 8) [ 0; 1 ]
            in
            Alcotest.(check bool) "phase2" true (await phase2);
            Live.recover live 2;
            let phase3 () = Live.delivered_count live 2 >= 8 in
            Alcotest.(check bool) "recovered process caught up" true
              (await phase3);
            Alcotest.(check (list string))
              "same order after real recovery"
              (Live.delivered_data live 0)
              (Live.delivered_data live 2)));
    slow_test "live: alternative protocol with state transfer" (fun () ->
        let dir = fresh_dir () in
        let stack =
          Factory.alternative ~checkpoint_period:100_000 ~delta:2
            ~early_return:true ()
        in
        with_live ~dir ~base_port:7441 stack (fun live ->
            Live.crash live 2;
            for j = 0 to 9 do
              Live.broadcast live ~node:(j mod 2) (Printf.sprintf "s%d" j);
              Thread.delay 0.02
            done;
            let phase1 () =
              List.for_all (fun i -> Live.delivered_count live i >= 10) [ 0; 1 ]
            in
            Alcotest.(check bool) "phase1" true (await phase1);
            Live.recover live 2;
            let phase2 () = Live.delivered_count live 2 >= 10 in
            Alcotest.(check bool) "caught up" true (await phase2)));
    test "live: pooled frame encoder allocates nothing in steady state"
      (fun () ->
        (* The send path's inner loop: encode a message into the pooled
           scratch writer, append it as a frame to the pooled destination
           buffer, restart the buffer when full. After warm-up (writer
           growth to the high-water mark) this must not touch the minor
           heap at all — the regression this guards is any per-send
           [Bytes]/closure allocation creeping back into [Wire] or the
           message writers. *)
        let module P = Abcast_core.Protocol.Make (Abcast_consensus.Paxos) in
        let module Wire = Abcast_util.Wire in
        let payloads =
          List.init 8 (fun i ->
              Payload.make
                { origin = i mod 3; boot = 0; seq = i }
                (String.make 64 'x'))
        in
        let msg = P.Gossip { k = 5; len = 9; unordered = payloads; cert = None } in
        let dest = Wire.writer ~cap:(Live.max_datagram + 16) () in
        let scratch = Wire.writer ~cap:4096 () in
        let send () =
          Wire.clear scratch;
          P.write_msg scratch msg;
          if Wire.length dest + Wire.length scratch + 3 > Live.max_datagram
          then Live.Frame.start dest ~src:0;
          Live.Frame.add dest ~msg:scratch
        in
        Live.Frame.start dest ~src:0;
        for _ = 1 to 1_000 do
          send ()
        done;
        let iters = 10_000 in
        let w0 = Gc.minor_words () in
        for _ = 1 to iters do
          send ()
        done;
        let per_send = (Gc.minor_words () -. w0) /. float_of_int iters in
        if per_send > 0.01 then
          Alcotest.failf "send allocates %.3f minor words" per_send);
    slow_test "live: ring dissemination with a pipelined window" (fun () ->
        let stack = Factory.throughput ~window:4 () in
        with_live ~base_port:7461 stack (fun live ->
            for j = 0 to 19 do
              Live.broadcast live ~node:(j mod 3) (Printf.sprintf "r%d" j)
            done;
            let done_ () =
              List.for_all
                (fun i -> Live.delivered_count live i >= 20)
                [ 0; 1; 2 ]
            in
            Alcotest.(check bool) "all delivered" true (await done_);
            let seq i = Live.delivered_data live i in
            Alcotest.(check (list string)) "0=1" (seq 0) (seq 1);
            Alcotest.(check (list string)) "1=2" (seq 1) (seq 2)));
    slow_test "live: lifecycle robustness" (fun () ->
        with_live ~base_port:7451 (Factory.basic ()) (fun live ->
            Alcotest.(check int) "n" 3 (Live.n live);
            Alcotest.(check bool) "up" true (Live.is_up live 0);
            (* crash is idempotent; ops on a down node degrade gracefully *)
            Live.crash live 1;
            Live.crash live 1;
            Alcotest.(check bool) "down" false (Live.is_up live 1);
            Alcotest.(check int) "down count reads 0" 0 (Live.delivered_count live 1);
            Live.broadcast live ~node:1 "ignored";
            (* recover is idempotent too *)
            Live.recover live 1;
            Live.recover live 1;
            Alcotest.(check bool) "up again" true (Live.is_up live 1);
            Live.broadcast live ~node:1 "counted";
            let done_ () = Live.delivered_count live 0 >= 1 in
            Alcotest.(check bool) "works after bounce" true (await done_)));
  ]

let suite = ("live", tests)
