(* Benchmark harness entry point.

   Default: print every experiment table E1-E9 (simulated metrics; see
   EXPERIMENTS.md for the paper-claim vs measured record), then the
   bechamel micro-benchmarks.

   Flags:
     --only E4 [E5 ...]   run only the listed experiments
     --micro              run only the micro-benchmarks
     --quick              shrink workloads (~4x faster, coarser numbers)
     --json               write BENCH_PR10.json (machine-readable snapshot:
                          causal-tracing cost sweep sampling off..1/1,
                          live service SLO sweep read-mode x shards x
                          clients, shard-scaling sweep S in {1,2,4,8},
                          throughput sweep gossip-vs-ring x window,
                          events/sec, quiescence wall time, gossip bytes,
                          durable-storage throughput, trace/span overhead,
                          stage-latency p50s, micro ns/op) and exit *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  if List.mem "--json" args then begin
    Json_bench.run ();
    exit 0
  end;
  let micro_only = List.mem "--micro" args in
  Experiments.quick := List.mem "--quick" args;
  let selected =
    List.filter (fun a -> List.mem_assoc a Experiments.all) args
  in
  if not micro_only then begin
    let todo =
      if selected = [] then Experiments.all
      else List.filter (fun (n, _) -> List.mem n selected) Experiments.all
    in
    List.iter
      (fun (name, f) ->
        let t0 = Sys.time () in
        f ();
        Printf.printf "(%s took %.2fs host time)\n" name (Sys.time () -. t0))
      todo
  end;
  if micro_only || selected = [] then Micro.run ()
