(* The experiment harness: one table per experiment E1-E9 of
   EXPERIMENTS.md. Each function builds fresh simulations (everything is
   seeded, so tables are reproducible bit-for-bit) and prints rows in the
   style of a paper evaluation section. *)

module Rng = Abcast_util.Rng
module Net = Abcast_sim.Net
module Metrics = Abcast_sim.Metrics
module Faults = Abcast_sim.Faults
module Payload = Abcast_core.Payload
module Factory = Abcast_core.Factory
module Proto = Abcast_core.Proto
module Cluster = Abcast_harness.Cluster
module Checks = Abcast_harness.Checks
module Workload = Abcast_harness.Workload
module Table = Abcast_harness.Table
module Kv = Abcast_apps.Kv

let quick = ref false

let scale n = if !quick then max 1 (n / 4) else n

(* Drive [msgs] Poisson broadcasts on a fresh cluster of the stack and run
   to quiescence. Returns the cluster and the message count. *)
let steady_run ?(n = 3) ?(seed = 7) ?(msgs = 200) ?(mean_gap = 1_500) ?net
    ?(size = 32) ?count_bytes stack =
  let cluster = Cluster.create stack ~seed ~n ?net ?count_bytes () in
  let rng = Rng.create (seed * 13) in
  let count =
    Workload.open_loop cluster ~rng ~senders:(List.init n Fun.id) ~start:1_000
      ~stop:(1_000 + (msgs * mean_gap))
      ~mean_gap ~size ()
  in
  let ok =
    Cluster.run_until cluster ~until:1_000_000_000
      ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
      ()
  in
  if not ok then failwith "steady_run did not quiesce";
  (cluster, count)

(* ------------------------------------------------------------------ *)
(* E1 — log operations per delivered message (paper §4.3).             *)

let e1 () =
  let msgs = scale 200 in
  let row name stack =
    let cluster, count = steady_run ~msgs stack in
    let m = Cluster.metrics cluster in
    let cons = Metrics.sum_prefix m "log_ops.consensus" in
    let ab = Metrics.sum_prefix m "log_ops.abcast" in
    let rounds = Cluster.round cluster 0 in
    [
      name;
      Table.num count;
      Table.num rounds;
      Table.num cons;
      Table.num ab;
      Table.flt (float_of_int ab /. float_of_int count);
      Table.flt (float_of_int (cons + ab) /. float_of_int count);
    ]
  in
  Table.print
    ~title:
      "E1: log operations by layer (n=3, crash-free; paper claim: the basic \
       protocol adds ZERO log ops beyond consensus)"
    ~header:
      [ "stack"; "msgs"; "rounds"; "ops(consensus)"; "ops(abcast)";
        "abcast ops/msg"; "total ops/msg" ]
    [
      row "basic/paxos (minimal)" (Factory.basic ());
      row "alt/paxos (checkpoints)" (Factory.alternative ());
      row "naive/paxos (strawman)" (Factory.naive ());
      row "ct-stop/paxos (no crash-recovery)" (Abcast_baseline.Ct_abcast.stack ());
    ]

(* ------------------------------------------------------------------ *)
(* E2 — recovery cost vs. history length (paper §5.1).                 *)

let e2 () =
  let variants =
    [
      ("basic (full replay)", fun () -> Factory.basic ());
      ( "alt, checkpoint 50ms",
        fun () -> Factory.alternative ~checkpoint_period:50_000 () );
      ( "alt, checkpoint 200ms",
        fun () -> Factory.alternative ~checkpoint_period:200_000 () );
    ]
  in
  let rows =
    List.concat_map
      (fun msgs ->
        List.map
          (fun (name, mk) ->
            let cluster, _ = steady_run ~seed:11 ~msgs ~mean_gap:1_200 (mk ()) in
            let rounds = Cluster.round cluster 1 in
            Cluster.crash cluster 1;
            let t0 = Sys.time () in
            Cluster.recover cluster 1;
            let host_ms = (Sys.time () -. t0) *. 1_000.0 in
            let replayed =
              Metrics.get (Cluster.metrics cluster) ~node:1 "replay_rounds"
            in
            [
              Table.num msgs;
              name;
              Table.num rounds;
              Table.num replayed;
              Table.flt ~dec:3 host_ms;
            ])
          variants)
      [ scale 100; scale 200; scale 400 ]
  in
  Table.print
    ~title:
      "E2: recovery cost vs history length (crash after the run, then \
       recover; paper claim: checkpoints make replay O(since-checkpoint) \
       instead of O(history))"
    ~header:[ "msgs"; "stack"; "rounds"; "replayed rounds"; "host ms" ]
    rows

(* ------------------------------------------------------------------ *)
(* E3 — stable-storage footprint vs time (paper §5.2).                 *)

let e3 () =
  let kv_factory replicas =
    Kv.Replica.factory (fun i r -> replicas.(i) <- Some r)
  in
  let run name stack =
    let cluster = Cluster.create stack ~seed:17 ~n:3 () in
    let rng = Rng.create 23 in
    let msgs = scale 240 in
    ignore
      (Workload.open_loop cluster ~rng ~senders:[ 0; 1; 2 ] ~start:1_000
         ~stop:(msgs * 1_000) ~mean_gap:1_000 ~size:64 ());
    let samples = ref [] in
    List.iter
      (fun frac ->
        Cluster.at cluster (frac * msgs * 1_000 / 4) (fun () ->
            samples := (frac, Cluster.retained_bytes cluster 0) :: !samples))
      [ 1; 2; 3; 4 ];
    (* run well past the workload so checkpoints compact the idle state,
       then sample the durable footprint a recovering process would see *)
    Cluster.run cluster ~until:((msgs * 1_000) + 400_000);
    samples := (5, Cluster.retained_bytes cluster 0) :: !samples;
    (name, List.rev !samples)
  in
  let replicas = Array.make 3 None in
  let series =
    [
      run "basic (log grows)" (Factory.basic ());
      run "alt, no app checkpoint"
        (Factory.alternative ~checkpoint_period:60_000 ());
      run "alt + KV app checkpoint"
        (Factory.alternative ~checkpoint_period:60_000
           ~app_factory:(kv_factory replicas) ());
    ]
  in
  let rows =
    List.map
      (fun (name, samples) ->
        name
        :: List.map (fun (_, bytes) -> Table.num bytes) samples)
      series
  in
  Table.print
    ~title:
      "E3: retained stable-storage bytes at node 0 over time (paper claim: \
       application-level checkpoints keep the log bounded)"
    ~header:[ "stack"; "t=25%"; "t=50%"; "t=75%"; "t=100%"; "idle+ckpt" ]
    rows

(* ------------------------------------------------------------------ *)
(* E4 — catching up: consensus replay vs state transfer (paper §5.3).  *)

let e4 () =
  let episode ~stack ~down_ms =
    let cluster = Cluster.create stack ~seed:29 ~n:3 () in
    let rng = Rng.create 31 in
    Cluster.at cluster 2_000 (fun () -> Cluster.crash cluster 2);
    let stop = 2_000 + (down_ms * 1_000) in
    let count =
      Workload.open_loop cluster ~rng ~senders:[ 0; 1 ] ~start:3_000 ~stop
        ~mean_gap:1_000 ()
    in
    Cluster.at cluster (stop + 1_000) (fun () -> Cluster.recover cluster 2);
    let recover_at = stop + 1_000 in
    let ok =
      Cluster.run_until cluster ~until:1_000_000_000
        ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
        ()
    in
    if not ok then failwith "E4 episode did not converge";
    let catch_up_ms = (Cluster.now cluster - recover_at) / 1_000 in
    let transfers = Metrics.sum (Cluster.metrics cluster) "state_transfers_applied" in
    let rounds_missed = Cluster.round cluster 0 in
    (rounds_missed, catch_up_ms, transfers)
  in
  let rows =
    List.concat_map
      (fun down_ms ->
        List.map
          (fun (name, stack) ->
            let missed, ms, transfers = episode ~stack ~down_ms in
            [
              Table.num down_ms;
              Table.num missed;
              name;
              Table.num ms;
              Table.num transfers;
            ])
          [
            ( "state transfer (alt, delta=3)",
              Factory.alternative ~delta:3 ~checkpoint_period:40_000
                ~early_return:false () );
            ("replay missed consensus (basic)", Factory.basic ());
          ])
      [ scale 40; scale 80; scale 160 ]
  in
  Table.print
    ~title:
      "E4: catch-up after a long down-time (paper claim: state transfer \
       catches up in O(1) rounds; re-running missed consensus grows with \
       the gap)"
    ~header:
      [ "down ms"; "rounds run"; "catch-up path"; "catch-up ms"; "state transfers" ]
    rows;
  (* Δ sweep: how much de-synchronization triggers a transfer (§5.3 line d) *)
  let sweep =
    List.map
      (fun delta ->
        let missed, ms, transfers =
          episode
            ~stack:
              (Factory.alternative ~delta ~checkpoint_period:2_000_000
                 ~early_return:false ())
            ~down_ms:(scale 120)
        in
        [ Table.num delta; Table.num missed; Table.num ms; Table.num transfers ])
      [ 1; 4; 16; 64 ]
  in
  Table.print
    ~title:
      "E4b: tuning delta (fixed down-time; small delta = eager transfer, \
       large delta = catch up by re-running consensus)"
    ~header:[ "delta"; "rounds run"; "catch-up ms"; "state transfers" ]
    sweep;
  (* §5.3 closing remark: ship only what the recipient is missing *)
  let bytes_row (name, trim_state) =
    let stack =
      Factory.alternative ~delta:3 ~checkpoint_period:2_000_000
        ~early_return:false ~trim_state ()
    in
    let cluster = Cluster.create stack ~seed:71 ~n:3 () in
    let rng = Rng.create 73 in
    (* down for the last quarter only: most of the log is already there *)
    let horizon = scale 160 * 1_000 in
    Cluster.at cluster (3 * horizon / 4) (fun () -> Cluster.crash cluster 2);
    let count =
      Workload.open_loop cluster ~rng ~senders:[ 0; 1 ] ~start:1_000
        ~stop:horizon ~mean_gap:1_000 ()
    in
    Cluster.at cluster (horizon + 1_000) (fun () -> Cluster.recover cluster 2);
    let ok =
      Cluster.run_until cluster ~until:1_000_000_000
        ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
        ()
    in
    if not ok then failwith "E4c did not converge";
    let m = Cluster.metrics cluster in
    [
      name;
      Table.num count;
      Table.num (Metrics.sum m "state_sent");
      Table.num (Metrics.sum m "state_bytes_sent");
    ]
  in
  Table.print
    ~title:
      "E4c: state-transfer payload, full snapshot vs missing-suffix only \
       (the optimization the paper sketches at the end of 5.3)"
    ~header:[ "mode"; "msgs"; "state msgs sent"; "state bytes sent" ]
    [ bytes_row ("full snapshot", false); bytes_row ("suffix only", true) ]

(* ------------------------------------------------------------------ *)
(* E5 — throughput and batching (paper §5.4).                          *)

let e5 () =
  let total = scale 300 in
  let row stack_name stack pipeline =
    let cluster = Cluster.create stack ~seed:37 ~n:3 () in
    let rng = Rng.create 41 in
    for node = 0 to 2 do
      Workload.closed_loop cluster ~rng ~node ~total:(total / 3) ~pipeline ()
    done;
    let ok =
      Cluster.run_until cluster ~until:1_000_000_000
        ~pred:(fun () ->
          Cluster.all_caught_up cluster ~count:(3 * (total / 3)) ())
        ()
    in
    if not ok then failwith "E5 did not converge";
    let m = Cluster.metrics cluster in
    let dur_s = float_of_int (Cluster.now cluster) /. 1_000_000.0 in
    let delivered = 3 * (total / 3) in
    let rounds = Cluster.round cluster 0 in
    [
      stack_name;
      Table.num pipeline;
      Table.flt (float_of_int delivered /. dur_s);
      Table.flt (float_of_int delivered /. float_of_int rounds);
      Table.flt ~dec:1 (Metrics.mean m "lat_deliver" /. 1_000.0);
      Table.flt ~dec:1 (Metrics.percentile m "lat_deliver" 95.0 /. 1_000.0);
    ]
  in
  let rows =
    List.concat_map
      (fun pipeline ->
        [
          row "basic (blocking)" (Factory.basic ()) pipeline;
          row "alt (early return)"
            (Factory.alternative ~early_return:true ())
            pipeline;
        ])
      [ 1; 4; 16; 64 ]
  in
  Table.print
    ~title:
      "E5: throughput vs client pipelining (3 closed-loop clients; paper \
       claim: batching messages into one consensus raises throughput)"
    ~header:
      [ "stack"; "pipeline"; "msgs/s (sim)"; "batch (msgs/round)";
        "mean lat ms"; "p95 lat ms" ]
    rows

(* E5b — drain time for an instantaneous burst: batching means the whole
   burst should cost a near-constant number of consensus rounds. *)

let e5b () =
  let burst_size = scale 200 in
  let row name stack =
    let cluster = Cluster.create stack ~seed:101 ~n:3 () in
    let rng = Rng.create 103 in
    Workload.burst cluster ~rng ~senders:[ 0; 1; 2 ] ~at:1_000
      ~count:burst_size ();
    let ok =
      Cluster.run_until cluster ~until:1_000_000_000
        ~pred:(fun () -> Cluster.all_caught_up cluster ~count:burst_size ())
        ()
    in
    if not ok then failwith "E5b did not drain";
    [
      name;
      Table.num burst_size;
      Table.num (Cluster.now cluster - 1_000);
      Table.num (Cluster.round cluster 0);
      Table.flt (float_of_int burst_size /. float_of_int (Cluster.round cluster 0));
    ]
  in
  Table.print
    ~title:
      "E5b: draining an instantaneous burst (batching at work: the whole \
       burst fits in a handful of consensus rounds)"
    ~header:[ "stack"; "burst"; "drain us"; "rounds"; "batch" ]
    [
      row "basic" (Factory.basic ());
      row "alt" (Factory.alternative ());
      row "alt, window=4" (Factory.alternative ~window:4 ());
    ]

(* ------------------------------------------------------------------ *)
(* E6 — incremental logging (paper §5.5).                              *)

let e6 () =
  let row name incremental =
    (* checkpointing disabled (huge period) so the table isolates the
       cost of keeping the Unordered set durable *)
    let stack =
      Factory.alternative ~early_return:true ~incremental
        ~checkpoint_period:1_000_000_000 ()
    in
    let cluster, count = steady_run ~seed:43 ~msgs:(scale 200) ~size:64 stack in
    let m = Cluster.metrics cluster in
    let ops = Metrics.sum_prefix m "log_ops.abcast" in
    let bytes = Metrics.sum_prefix m "log_bytes.abcast" in
    [
      name;
      Table.num count;
      Table.num ops;
      Table.num bytes;
      Table.flt (float_of_int bytes /. float_of_int count);
    ]
  in
  Table.print
    ~title:
      "E6: logging the Unordered set, full re-log vs incremental (paper \
       claim: logging only the new part saves log operations and bytes)"
    ~header:[ "mode"; "msgs"; "abcast log ops"; "abcast log bytes"; "bytes/msg" ]
    [ row "full re-log" false; row "incremental" true ]

(* ------------------------------------------------------------------ *)
(* E7 — cost of crash-recovery support vs crash-stop CT (paper §1/§7). *)

let e7 () =
  let msgs = scale 150 in
  let rows =
    List.concat_map
      (fun n ->
        let run stack =
          let cluster, count = steady_run ~n ~seed:47 ~msgs stack in
          let m = Cluster.metrics cluster in
          ( Metrics.sum m "msgs_sent",
            Metrics.sum_prefix m "log_ops",
            Metrics.mean m "lat_deliver" /. 1_000.0,
            count )
        in
        let bm, bl, blat, count = run (Factory.basic ()) in
        let cm, cl, clat, _ = run (Abcast_baseline.Ct_abcast.stack ()) in
        [
          [
            string_of_int n;
            "basic/paxos (crash-recovery)";
            Table.num count;
            Table.num bm;
            Table.num bl;
            Table.flt ~dec:1 blat;
          ];
          [
            string_of_int n;
            "ct-stop/paxos (crash-stop)";
            Table.num count;
            Table.num cm;
            Table.num cl;
            Table.flt ~dec:1 clat;
          ];
        ])
      [ 3; 5; 7 ]
  in
  Table.print
    ~title:
      "E7: crash-free runs vs the Chandra-Toueg crash-stop reduction (paper \
       claim: same protocol structure; the entire crash-recovery premium is \
       the logging)"
    ~header:[ "n"; "stack"; "msgs"; "net msgs"; "log ops"; "mean lat ms" ]
    rows

(* ------------------------------------------------------------------ *)
(* E8 — consensus as a black box (paper §1/§7).                        *)

let e8 () =
  let msgs = scale 150 in
  let row name stack =
    let cluster, count = steady_run ~seed:53 ~msgs stack in
    let m = Cluster.metrics cluster in
    [
      name;
      Table.num count;
      Table.num (Cluster.round cluster 0);
      Table.num (Metrics.sum m "msgs_sent");
      Table.num (Metrics.sum_prefix m "log_ops.consensus");
      Table.num (Metrics.sum_prefix m "log_ops.abcast");
      Table.flt ~dec:1 (Metrics.mean m "lat_deliver" /. 1_000.0);
    ]
  in
  Table.print
    ~title:
      "E8: swapping the consensus building block (paper claim: the \
       broadcast layer is consensus- and FD-agnostic; only consensus-\
       internal costs change)"
    ~header:
      [ "stack"; "msgs"; "rounds"; "net msgs"; "ops(consensus)";
        "ops(abcast)"; "mean lat ms" ]
    [
      row "basic over paxos (leader-based, Omega FD)" (Factory.basic ());
      row "basic over coord (rotating coordinator, no FD)"
        (Factory.basic ~consensus:`Coord ());
      row "alt over paxos" (Factory.alternative ());
      row "alt over coord" (Factory.alternative ~consensus:`Coord ());
    ]

(* ------------------------------------------------------------------ *)
(* E9 — correctness under adversarial schedules (paper §2.2, P1-P7).   *)

let e9 () =
  let episodes = scale 12 in
  let run_episode stack seed =
    let n = 3 in
    let cluster = Cluster.create stack ~seed ~n () in
    let rng = Rng.create (seed + 7777) in
    let stability = 150_000 in
    let plan = Faults.plan_random ~rng ~n ~n_bad:1 ~stability () in
    let good = Faults.good_nodes plan in
    List.iter
      (fun ({ time; node; kind } : Faults.event) ->
        match kind with
        | Faults.Crash ->
          Cluster.at cluster time (fun () -> Cluster.crash cluster node)
        | Faults.Recover ->
          Cluster.at cluster time (fun () -> Cluster.recover cluster node))
      plan.events;
    ignore
      (Workload.open_loop cluster ~rng ~senders:(List.init n Fun.id)
         ~start:1_000 ~stop:stability ~mean_gap:4_000 ());
    Cluster.run cluster ~until:(plan.horizon + 4_000_000);
    let crashes = Metrics.sum (Cluster.metrics cluster) "crashes" in
    let delivered = Cluster.delivered_count cluster (List.hd good) in
    match Checks.all ~cluster ~good () with
    | Ok () -> (crashes, delivered, 0)
    | Error _ -> (crashes, delivered, 1)
  in
  let rows =
    List.map
      (fun (name, stack) ->
        let crashes = ref 0 and delivered = ref 0 and violations = ref 0 in
        for seed = 1 to episodes do
          let c, d, v = run_episode stack (seed * 271) in
          crashes := !crashes + c;
          delivered := !delivered + d;
          violations := !violations + v
        done;
        [
          name;
          Table.num episodes;
          Table.num !crashes;
          Table.num !delivered;
          Table.num !violations;
        ])
      [
        ("basic/paxos", Factory.basic ());
        ("basic/coord", Factory.basic ~consensus:`Coord ());
        ("alt/paxos", Factory.alternative ~checkpoint_period:30_000 ~delta:4 ());
      ]
  in
  Table.print
    ~title:
      "E9: randomized crash/recovery schedules, 1 bad process of 3 \
       (Validity + Integrity + Total Order + Termination checked over good \
       processes; paper claim: zero violations)"
    ~header:[ "stack"; "episodes"; "crashes injected"; "msgs delivered"; "violations" ]
    rows

(* ------------------------------------------------------------------ *)
(* E10 — ablation: windowed (pipelined) sequencer. An extension beyond  *)
(* the paper: the sequencer task of Fig. 2 runs one consensus at a      *)
(* time; allowing a window of concurrent instances hides consensus      *)
(* latency under load.                                                  *)

let e10 () =
  let msgs = scale 400 in
  let row window =
    let stack =
      Factory.alternative ~window ~early_return:true
        ~checkpoint_period:1_000_000_000 ()
    in
    let cluster = Cluster.create stack ~seed:59 ~n:3 () in
    let rng = Rng.create 61 in
    (* offered load well above one-consensus-at-a-time capacity *)
    let count =
      Workload.open_loop cluster ~rng ~senders:[ 0; 1; 2 ] ~start:1_000
        ~stop:(1_000 + (msgs * 150))
        ~mean_gap:150 ()
    in
    let ok =
      Cluster.run_until cluster ~until:1_000_000_000
        ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
        ()
    in
    if not ok then failwith "E10 did not converge";
    let m = Cluster.metrics cluster in
    let dur_s = float_of_int (Cluster.now cluster) /. 1_000_000.0 in
    [
      Table.num window;
      Table.num (Cluster.round cluster 0);
      Table.flt (float_of_int count /. dur_s);
      Table.flt ~dec:1 (Metrics.mean m "lat_deliver" /. 1_000.0);
      Table.flt ~dec:1 (Metrics.percentile m "lat_deliver" 95.0 /. 1_000.0);
    ]
  in
  Table.print
    ~title:
      "E10 (extension ablation): concurrent consensus window under heavy \
       open-loop load (paper's sequencer = window 1)"
    ~header:[ "window"; "rounds"; "msgs/s (sim)"; "mean lat ms"; "p95 lat ms" ]
    (List.map row [ 1; 2; 4; 8 ])

(* ------------------------------------------------------------------ *)
(* E11 — scalability with the group size (context for all the above:    *)
(* the protocol's costs are consensus-dominated and grow with n).       *)

let e11 () =
  let msgs = scale 120 in
  let row n =
    let cluster, count = steady_run ~n ~seed:67 ~msgs (Factory.basic ()) in
    let m = Cluster.metrics cluster in
    let net_msgs = Metrics.sum m "msgs_sent" in
    [
      string_of_int n;
      Table.num count;
      Table.num (Cluster.round cluster 0);
      Table.num net_msgs;
      Table.flt (float_of_int net_msgs /. float_of_int count);
      Table.flt
        (float_of_int (Metrics.sum_prefix m "log_ops") /. float_of_int count);
      Table.flt ~dec:1 (Metrics.mean m "lat_deliver" /. 1_000.0);
      Table.flt ~dec:1 (Metrics.percentile m "lat_deliver" 95.0 /. 1_000.0);
    ]
  in
  Table.print
    ~title:
      "E11: scaling the process group (basic/paxos, fixed offered load; \
       message cost grows ~n^2 per round, latency stays ~flat while a \
       majority answers quickly)"
    ~header:
      [ "n"; "msgs"; "rounds"; "net msgs"; "net msgs/msg"; "log ops/msg";
        "mean lat ms"; "p95 lat ms" ]
    (List.map row [ 3; 5; 7; 9 ])

(* ------------------------------------------------------------------ *)
(* E12 — failure-detector quality of service (context for §3.5): the    *)
(* detection-time / false-suspicion trade-off of the heartbeat Omega.    *)

let e12 () =
  let module Engine = Abcast_sim.Engine in
  let module Heartbeat = Abcast_fd.Heartbeat in
  let row period =
    let timeout = 5 * period in
    (* an aggressive 20% heavy tail amplifies the premature-suspicion
       side of the trade-off *)
    let net = Net.create ~heavy_tail:0.2 () in
    let eng = Engine.create ~seed:97 ~n:3 ~net () in
    let fds = Array.make 3 None in
    for i = 0 to 2 do
      Engine.set_behavior eng i (fun io ->
          let hb = Heartbeat.create ~period ~timeout io in
          fds.(i) <- Some hb;
          Heartbeat.handle hb)
    done;
    Engine.start_all eng;
    let fd i = match fds.(i) with Some hb -> hb | None -> assert false in
    (* phase 1: crash-free window, count wrongful suspicions at node 0 *)
    let wrongful = ref 0 in
    let horizon = 2_000_000 in
    let rec monitor at =
      if at < horizon then
        Engine.at eng at (fun () ->
            if Heartbeat.suspects (fd 0) <> [] then incr wrongful;
            monitor (at + period))
    in
    monitor period;
    Engine.run eng ~until:horizon;
    (* phase 2: crash node 2 and measure time to suspicion at node 0 *)
    let crash_at = Engine.now eng in
    Engine.crash eng 2;
    ignore
      (Engine.run_until eng
         ~until:(crash_at + 50 * timeout)
         ~pred:(fun () -> not (Heartbeat.trusted (fd 0) 2))
         ());
    let detection = Engine.now eng - crash_at in
    (* phase 3: recovery, time to trust again *)
    let recover_at = Engine.now eng in
    Engine.recover eng 2;
    ignore
      (Engine.run_until eng
         ~until:(recover_at + 50 * timeout)
         ~pred:(fun () -> Heartbeat.trusted (fd 0) 2)
         ());
    let retrust = Engine.now eng - recover_at in
    [
      Table.num period;
      Table.num timeout;
      Table.num !wrongful;
      Table.num detection;
      Table.num retrust;
    ]
  in
  Table.print
    ~title:
      "E12: heartbeat failure-detector QoS (20 percent heavy-tail delays; \
       detection time ~ timeout, wrongful suspicions fall as the timeout \
       grows — the trade-off behind Omega's eventual accuracy)"
    ~header:
      [ "period us"; "timeout us"; "wrongful samples"; "detect us"; "re-trust us" ]
    (List.map row [ 500; 1_000; 2_000; 4_000 ])

(* E13 — traffic anatomy: what the wire actually carries. *)

let e13 () =
  let msgs = scale 150 in
  let row name stack =
    let cluster, count = steady_run ~seed:107 ~msgs stack in
    let m = Cluster.metrics cluster in
    let rx kind = Metrics.sum m ("rx." ^ kind) in
    let gossip = rx "gossip" + rx "digest" + rx "need" in
    let total = gossip + rx "consensus" + rx "fd" + rx "state" in
    let pct v = Table.flt (100.0 *. float_of_int v /. float_of_int (max 1 total)) in
    [
      name;
      Table.num count;
      Table.num total;
      pct (rx "consensus");
      pct gossip;
      pct (rx "fd");
      pct (rx "state");
    ]
  in
  Table.print
    ~title:
      "E13: received-message anatomy (share per layer; gossip covers full \
       sets, digests and Need pulls; heartbeats are the fixed background, \
       consensus scales with rounds)"
    ~header:
      [ "stack"; "msgs"; "rx total"; "% consensus"; "% gossip"; "% fd"; "% state" ]
    [
      row "basic/paxos" (Factory.basic ());
      row "basic/coord" (Factory.basic ~consensus:`Coord ());
      row "alt/paxos" (Factory.alternative ());
    ]

(* E14 — delta gossip: wire cost of the dissemination layer. *)

let e14 () =
  let msgs = scale 400 in
  let row name stack =
    let cluster, count = steady_run ~n:5 ~msgs ~mean_gap:1_500 stack in
    let m = Cluster.metrics cluster in
    let gmsgs = Metrics.sum m "gossip_msgs_sent" in
    let gbytes = Metrics.sum m "gossip_bytes_sent" in
    [
      name;
      Table.num count;
      Table.num gmsgs;
      Table.num gbytes;
      Table.flt (float_of_int gbytes /. float_of_int (max 1 gmsgs));
      Table.flt (float_of_int gbytes /. float_of_int (max 1 count));
      Table.num (Metrics.sum m "msgs_sent");
    ]
  in
  Table.print
    ~title:
      "E14: digest/pull gossip vs full-set gossip (n=5 steady load; the \
       dissemination layer stops re-shipping the whole Unordered set \
       every period)"
    ~header:
      [ "gossip mode"; "msgs"; "gossip msgs"; "gossip bytes";
        "bytes/gossip msg"; "gossip bytes/msg"; "net msgs total" ]
    [
      row "full set (Fig. 3 literal)" (Factory.alternative ~delta_gossip:false ());
      row "digest + Need pull" (Factory.alternative ());
    ]

(* E15 — binary wire codec vs Marshal, per protocol message type. *)

let e15 () =
  let module Paxos = Abcast_consensus.Paxos in
  let module Heartbeat = Abcast_fd.Heartbeat in
  let module Agreed = Abcast_core.Agreed in
  let module Vclock = Abcast_core.Vclock in
  let module P = Abcast_core.Protocol.Make (Paxos) in
  let payload i =
    Payload.make
    { origin = i mod 5; boot = 0; seq = i / 5 }
    (String.make 32 'x')
  in
  let payloads n = List.init n payload in
  let vc =
    Vclock.of_streams (List.init 5 (fun origin -> ((origin, 0), 10)))
  in
  let repr =
    {
      Agreed.base_app = Some (String.make 64 'a');
      base_len = 55;
      base_chain = 0x1234;
      vc;
      tail = payloads 16;
    }
  in
  let msgs : (string * P.msg) list =
    [
      ( "gossip (8 x 32B)",
        P.Gossip { k = 12; len = 40; unordered = payloads 8; cert = None } );
      ( "digest (5 streams)",
        P.Digest
          {
            k = 12;
            len = 40;
            summary = List.init 5 (fun o -> (o, 0, 10));
            cert =
              Some
                { Abcast_core.Audit.c_boot = 0; c_len = 40; c_hash = 0x1234 };
          } );
      ("need (4 ids)", P.Need { ids = List.map (fun (p : Payload.t) -> p.id) (payloads 4) });
      ("state (16-msg tail)", P.State { k = 12; floor = 8; agreed = repr });
      ( "cons accept (24-msg batch)",
        P.Cons
          (P.M.Inst
             ( 12,
               Paxos.Accept { b = 3; v = Abcast_core.Batch.encode (payloads 24) }
             )) );
      ("fd heartbeat", P.Fd (Heartbeat.Beat { epoch = 3 }));
    ]
  in
  let time_ns ~iters f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
  in
  let iters = scale 40_000 in
  let row (name, m) =
    let wire = P.encode_msg m in
    let marshal = Marshal.to_string m [] in
    let wire_ns =
      time_ns ~iters (fun () ->
          match P.decode_msg (P.encode_msg m) with
          | Some _ -> ()
          | None -> failwith "wire roundtrip failed")
    in
    let marshal_ns =
      time_ns ~iters (fun () ->
          ignore (Marshal.from_string (Marshal.to_string m []) 0 : P.msg))
    in
    [
      name;
      Table.num (String.length wire);
      Table.num (String.length marshal);
      Table.flt
        (float_of_int (String.length marshal)
        /. float_of_int (String.length wire));
      Table.flt wire_ns;
      Table.flt marshal_ns;
      Table.flt (marshal_ns /. wire_ns);
    ]
  in
  Table.print
    ~title:
      "E15: binary wire codec vs Marshal (encode+decode round trip per \
       message; every boundary-crossing type is hand-coded, Marshal is \
       the replaced baseline)"
    ~header:
      [ "message"; "wire B"; "marshal B"; "size x"; "wire ns"; "marshal ns";
        "speedup x" ]
    (List.map row msgs)

(* ------------------------------------------------------------------ *)
(* E16 — durable stable storage: append throughput and recovery cost   *)
(*       vs backend and fsync policy (the WAL of abcast.store against  *)
(*       the file-per-key layout it subsumes).                         *)

let e16 () =
  let module Durable = Abcast_store.Durable in
  let module Storage = Abcast_sim.Storage in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  let ops = scale 2_000 in
  let value = String.make 128 'v' in
  let key_space = 64 in
  let backend_name = function `Files -> "files" | _ -> "wal" in
  let run backend policy =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "abcast-e16-%d-%s-%s" (Unix.getpid ())
           (backend_name backend)
           (Durable.policy_to_string policy))
    in
    rm_rf dir;
    let metrics = Metrics.create () in
    let store = Storage.create ~dir ~backend ~fsync:policy ~metrics ~node:0 () in
    let t0 = Unix.gettimeofday () in
    for i = 0 to ops - 1 do
      Storage.write store ~layer:"bench"
        ~key:(Printf.sprintf "key%03d" (i mod key_space))
        value
    done;
    let append_s = Unix.gettimeofday () -. t0 in
    (* read before close: close issues one final fsync of its own *)
    let fsyncs =
      match backend with
      | `Files -> Metrics.get metrics ~node:0 "file_fsyncs"
      | _ -> Metrics.get metrics ~node:0 "wal_fsyncs"
    in
    let compactions =
      match Storage.wal_stats store with
      | Some s -> s.Abcast_store.Wal.compactions
      | None -> 0
    in
    let disk = Storage.disk_bytes store in
    Storage.close store;
    let m2 = Metrics.create () in
    let t1 = Unix.gettimeofday () in
    let store2 = Storage.create ~dir ~backend ~fsync:policy ~metrics:m2 ~node:0 () in
    let recover_ms = (Unix.gettimeofday () -. t1) *. 1_000.0 in
    let recovered = Storage.retained_keys store2 in
    Storage.close store2;
    rm_rf dir;
    ( fsyncs,
      [
        backend_name backend;
        Durable.policy_to_string policy;
        Table.num ops;
        Table.flt ~dec:0 (float_of_int ops /. append_s);
        Table.num fsyncs;
        (match backend with `Files -> "-" | _ -> Table.num compactions);
        Table.num disk;
        Table.flt ~dec:3 recover_ms;
        Table.num recovered;
      ] )
  in
  let policies =
    [ Durable.Always; Durable.Every { ops = 64; ms = 20 }; Durable.Never ]
  in
  let results =
    List.concat_map
      (fun backend ->
        List.map (fun policy -> (backend, policy, run backend policy)) policies)
      [ `Files; `Wal ]
  in
  Table.print
    ~title:
      "E16: durable backend append throughput and recovery (128 B values, \
       cycling keys; the WAL pays one sequential append per op where \
       file-per-key pays a create+rename, and its compaction keeps the \
       replayed bytes near the live state)"
    ~header:
      [ "backend"; "fsync"; "ops"; "appends/s"; "fsyncs"; "compactions";
        "disk B"; "recover ms"; "keys" ]
    (List.map (fun (_, _, (_, row)) -> row) results);
  (* The policies must order the sync counts; anything else means the
     pacer is broken. (The WAL under Never still fsyncs its compaction
     snapshots — durability of the rename is not policy-optional.) *)
  List.iter
    (fun backend ->
      let count p =
        List.find_map
          (fun (b, p', (fsyncs, _)) ->
            if b = backend && p' = p then Some fsyncs else None)
          results
        |> Option.get
      in
      let always = count Durable.Always
      and every = count (Durable.Every { ops = 64; ms = 20 })
      and never = count Durable.Never in
      if always > every && every >= never then
        Printf.printf "  %s: fsync ordering OK (always %d > every %d >= never %d)\n"
          (backend_name backend) always every never
      else
        Printf.printf
          "  %s: VIOLATION: fsync counts out of order (always %d, every %d, never %d)\n"
          (backend_name backend) always every never)
    [ `Files; `Wal ]

(* ------------------------------------------------------------------ *)
(* E18 — the throughput ceiling: dissemination topology x pipeline      *)
(* window draining a saturating burst (every payload offered at once —  *)
(* an open-loop load would only measure its own arrival rate). Gossip + *)
(* window=1 is the PR-3/PR-4 configuration; ring+window>=4 matches the  *)
(* [Factory.throughput] preset, including its repair-only digest tuning.*)

let e18 () =
  let msgs = scale 2_000 in
  let row ~n ~dissemination ~window =
    let stack =
      match dissemination with
      | `Ring ->
        Factory.alternative ~window ~dissemination ~gossip_full_every:32
          ~gossip_period:10_000 ()
      | `Gossip -> Factory.alternative ~window ~dissemination ()
    in
    let cluster = Cluster.create stack ~seed:53 ~n ~count_bytes:true () in
    let rng = Rng.create 57 in
    Workload.burst cluster ~rng ~senders:(List.init n Fun.id) ~at:1_000
      ~count:msgs ~size:64 ();
    let t0 = Unix.gettimeofday () in
    let ok =
      Cluster.run_until cluster ~until:1_000_000_000
        ~pred:(fun () -> Cluster.all_caught_up cluster ~count:msgs ())
        ()
    in
    let wall_s = Unix.gettimeofday () -. t0 in
    if not ok then failwith "E18: burst did not drain";
    let m = Cluster.metrics cluster in
    let drain_s = float_of_int (Cluster.now cluster - 1_000) /. 1_000_000.0 in
    let rounds = Cluster.round cluster 0 in
    let net_bytes = Metrics.sum m "net_bytes" in
    [
      string_of_int n;
      (match dissemination with `Gossip -> "gossip" | `Ring -> "ring");
      Table.num window;
      Table.flt (float_of_int msgs /. drain_s);
      Table.flt (float_of_int msgs /. wall_s);
      Table.num rounds;
      Table.flt (float_of_int msgs /. float_of_int (max 1 rounds));
      Table.flt (float_of_int net_bytes /. float_of_int msgs);
    ]
  in
  let rows =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun dissemination ->
            List.map
              (fun window -> row ~n ~dissemination ~window)
              [ 1; 4; 8 ])
          [ `Gossip; `Ring ])
      [ 5; 9 ]
  in
  Table.print
    ~title:
      "E18: throughput ceiling — dissemination topology x pipeline window \
       draining a saturating burst (alt/paxos; window>=4 lifts simulated \
       drain rate via deeper batching pipelines, ring cuts bytes/payload \
       and host wall time)"
    ~header:
      [ "n"; "topo"; "W"; "msgs/s (sim)"; "msgs/s (host)"; "rounds";
        "batch"; "net bytes/msg" ]
    rows

(* E19 — shard scaling: S independent broadcast groups multiplexed per  *)
(* process (one socket, one WAL), each group offered the same burst —   *)
(* weak scaling, so the aggregate drain rate should grow ~linearly in S *)
(* while each group's delivery p95 stays at the single-group figure.    *)
(* (A fixed total split S ways would only measure per-group latency.)   *)

type e19_row = {
  s_shards : int;
  s_msgs : int;      (* aggregate payload count = shards x per_group *)
  s_rate : float;    (* aggregate drained msgs per simulated second *)
  s_wall_s : float;  (* host wall time to quiescence *)
  s_p95_us : float;  (* worst per-group lat_deliver p95 *)
}

let e19_run ~per_group shards =
  let n = 5 in
  let stack = Factory.sharded ~shards (Factory.throughput ()) in
  let cluster = Cluster.create stack ~seed:61 ~n () in
  let rng = Rng.create 67 in
  let msgs = per_group * shards in
  for g = 0 to shards - 1 do
    Cluster.at cluster 1_000 (fun () ->
        for j = 0 to per_group - 1 do
          ignore
            (Cluster.broadcast cluster ~group:g ~node:(j mod n)
               (Workload.payload rng ~size:64))
        done)
  done;
  let t0 = Unix.gettimeofday () in
  let ok =
    Cluster.run_until cluster ~until:1_000_000_000
      ~pred:(fun () -> Cluster.all_caught_up cluster ~count:msgs ())
      ()
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  if not ok then failwith "E19: burst did not drain";
  let m = Cluster.metrics cluster in
  let drain_s = float_of_int (Cluster.now cluster - 1_000) /. 1_000_000.0 in
  let p95 =
    List.fold_left
      (fun acc g ->
        let series =
          if shards = 1 then "lat_deliver"
          else Printf.sprintf "g%d/lat_deliver" g
        in
        Float.max acc (Metrics.percentile m series 95.0))
      0.0 (List.init shards Fun.id)
  in
  {
    s_shards = shards;
    s_msgs = msgs;
    s_rate = float_of_int msgs /. drain_s;
    s_wall_s = wall_s;
    s_p95_us = p95;
  }

let e19_rows ~per_group = List.map (e19_run ~per_group) [ 1; 2; 4; 8 ]

let e19 () =
  let per_group = scale 800 in
  let rows = e19_rows ~per_group in
  let base = List.hd rows in
  Table.print
    ~title:
      "E19: shard scaling — S broadcast groups per process \
       (throughput preset, n=5), same burst per group; aggregate \
       simulated drain rate vs the worst group's delivery p95"
    ~header:
      [ "S"; "msgs"; "agg msgs/s (sim)"; "speedup"; "wall s (host)";
        "worst p95 µs"; "p95 vs S=1" ]
    (List.map
       (fun r ->
         [
           string_of_int r.s_shards;
           Table.num r.s_msgs;
           Table.flt r.s_rate;
           Table.flt (r.s_rate /. base.s_rate);
           Table.flt r.s_wall_s;
           Table.flt r.s_p95_us;
           Table.flt (r.s_p95_us /. base.s_p95_us);
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* E20 — service SLO: the client layer under open-loop load on the     *)
(* LIVE runtime (real sockets, real WALs — host-dependent numbers,     *)
(* unlike the seeded sims above). Sweeps client count x linearizable-  *)
(* read mode (full broadcast round trip vs the read-index lease) x     *)
(* shard count S in {1, 4}; each cell reports the completed op rate    *)
(* and the per-class latency percentiles from the load generator, and  *)
(* ends with the exactly-once audit on the quiesced replicas — a       *)
(* bench run that loses or duplicates an acked write is a failure,     *)
(* not a data point.                                                   *)

module Service = Abcast_service.Service
module Loadgen = Abcast_service.Loadgen

type e20_row = {
  v_shards : int;
  v_mode : Service.read_mode;
  v_clients : int;
  v_offered : float;  (* target arrivals per second *)
  v_report : Loadgen.report;
}

let e20_port = ref 7710

let e20_run ~shards ~mode ~clients =
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  let base_port = !e20_port in
  e20_port := base_port + 16;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "abcast-e20-%d-%d" (Unix.getpid ()) base_port)
  in
  rm_rf dir;
  let cfg =
    {
      Service.default_config with
      shards;
      read_mode = mode;
      max_sessions = max 4096 (2 * clients);
    }
  in
  let svc =
    Service.create ~base_port ~dir ~backend:`Wal
      ~fsync:(Abcast_store.Durable.Every { ops = 64; ms = 20 })
      cfg
  in
  Fun.protect
    ~finally:(fun () ->
      Service.shutdown svc;
      rm_rf dir)
  @@ fun () ->
  Service.start svc;
  (* Let the claim apply and its quarantine gate pass before offering
     load: the gate is a correctness feature (a fresh leaseholder must
     sit out one lease window), but folding the one-off 200 ms startup
     bounce into a steady-state p99 would only measure the warm-up. *)
  if mode = Service.Read_index then
    Thread.delay ((cfg.Service.lease_ms /. 1_000.) +. 0.15);
  (* Open-loop: ~2.5 arrivals per client-second, capped so the deepest
     sweep point stays in the stack's sustainable band and measures
     service latency rather than queue depth. *)
  let rate = Float.min 2_000. (2.5 *. float_of_int clients) in
  let duration = if !quick then 1.0 else 2.5 in
  let lcfg =
    {
      Loadgen.clients;
      rate;
      duration;
      write_pct = 40;
      lin_pct = 40;
      timeout = 0.5;
      seed = 23 + base_port;
    }
  in
  let report = Loadgen.run svc lcfg in
  (* Quiesce (lease markers keep bumping the apply index), wait for the
     replicas to converge, then audit: every acked write applied exactly
     once, nothing acked was lost. *)
  Service.stop_maintenance svc;
  let converged () =
    let d = Service.digest svc ~node:0 in
    List.for_all
      (fun i -> Service.digest svc ~node:i = d)
      (List.init (cfg.Service.n - 1) (fun i -> i + 1))
  in
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec settle () =
    if converged () then begin
      Thread.delay 0.2;
      if not (converged ()) then settle ()
    end
    else if Unix.gettimeofday () < deadline then begin
      Thread.delay 0.05;
      settle ()
    end
    else failwith "E20: replicas did not converge after the run"
  in
  settle ();
  (match Loadgen.check_exactly_once svc report ~node:0 with
  | [] -> ()
  | v :: _ ->
    failwith (Printf.sprintf "E20: exactly-once audit failed: %s" v));
  { v_shards = shards; v_mode = mode; v_clients = clients; v_offered = rate;
    v_report = report }

let e20_rows () =
  let counts = if !quick then [ 50; 200 ] else [ 50; 200; 1_000 ] in
  List.concat_map
    (fun shards ->
      List.concat_map
        (fun mode ->
          List.map (fun clients -> e20_run ~shards ~mode ~clients) counts)
        [ Service.Broadcast; Service.Read_index ])
    [ 1; 4 ]

let e20 () =
  match e20_rows () with
  | exception Unix.Unix_error _ ->
    print_endline "E20: skipped (live sockets unavailable in this environment)"
  | rows ->
    Table.print
      ~title:
        "E20: service SLO — open-loop sessions on the live runtime (n=3, \
         WAL, fsync every:64:20); writes are Incr broadcasts in both \
         modes, linearizable reads are a broadcast round trip \
         (read=broadcast) or a local lease check at the claimant \
         (read=read-index); every cell passed the exactly-once audit"
      ~header:
        [ "S"; "read mode"; "clients"; "offered/s"; "done/s";
          "wr p50 µs"; "wr p99 µs"; "lin p50 µs"; "lin p99 µs";
          "not ready"; "retry"; "fail" ]
      (List.map
         (fun r ->
           let rep = r.v_report in
           [
             string_of_int r.v_shards;
             Service.read_mode_to_string r.v_mode;
             Table.num r.v_clients;
             Table.flt ~dec:0 r.v_offered;
             Table.flt ~dec:0 (float_of_int rep.Loadgen.completed /. rep.wall);
             Table.flt ~dec:0 rep.write.p50;
             Table.flt ~dec:0 rep.write.p99;
             Table.flt ~dec:0 rep.lin.p50;
             Table.flt ~dec:0 rep.lin.p99;
             Table.num rep.not_ready;
             Table.num rep.retries;
             Table.num rep.failed;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E21 — causal tracing cost: the per-payload trace context on the     *)
(* drain-rate ceiling. An unsampled payload carries zero trace bytes   *)
(* (the traced flag rides the low bit of the data-length uvarint, so   *)
(* only data >= 64 bytes pays one wider length byte), hence the trace  *)
(* pair's cost must track the sampled fraction: sweep sampling off /   *)
(* 1-in-100 / 1-in-10 / every broadcast over the E18 saturating burst  *)
(* and compare drain wall time and wire bytes per payload.             *)

type e21_row = {
  tr_sample : int;  (* 0 = tracing off, k = every k-th A-broadcast *)
  tr_msgs : int;
  tr_wall_s : float;  (* host wall time to drain, best of 5 *)
  tr_rate : float;  (* drained msgs per simulated second *)
  tr_bytes_per_msg : float;  (* wire bytes per delivered payload *)
}

let e21_run ~msgs sample =
  let n = 5 in
  let stack () =
    match sample with
    | 0 -> Factory.throughput ()
    | k -> Factory.throughput ~trace_sample:k ()
  in
  let go () =
    let cluster = Cluster.create (stack ()) ~seed:53 ~n ~count_bytes:true () in
    let rng = Rng.create 57 in
    Workload.burst cluster ~rng ~senders:(List.init n Fun.id) ~at:1_000
      ~count:msgs ~size:64 ();
    let ok =
      Cluster.run_until cluster ~until:1_000_000_000
        ~pred:(fun () -> Cluster.all_caught_up cluster ~count:msgs ())
        ()
    in
    if not ok then failwith "E21: burst did not drain";
    cluster
  in
  ignore (go ());
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to 5 do
    let t0 = Unix.gettimeofday () in
    let c = go () in
    let w = Unix.gettimeofday () -. t0 in
    if w < !best then begin
      best := w;
      result := Some c
    end
  done;
  let cluster = Option.get !result in
  let m = Cluster.metrics cluster in
  {
    tr_sample = sample;
    tr_msgs = msgs;
    tr_wall_s = !best;
    tr_rate =
      float_of_int msgs /. (float_of_int (Cluster.now cluster - 1_000) /. 1e6);
    tr_bytes_per_msg =
      float_of_int (Metrics.sum m "net_bytes") /. float_of_int (max 1 msgs);
  }

let e21_rows ~msgs = List.map (e21_run ~msgs) [ 0; 100; 10; 1 ]

let e21 () =
  let msgs = scale 2_000 in
  let rows = e21_rows ~msgs in
  let base = List.hd rows in
  Table.print
    ~title:
      "E21: causal tracing cost — the E18 saturating burst (throughput \
       preset, n=5) with the per-payload trace context sampled every \
       k-th A-broadcast; unsampled payloads carry zero trace bytes, so \
       cost tracks only the sampled fraction"
    ~header:
      [ "sample"; "msgs"; "wall s (host)"; "sim msgs/s"; "bytes/msg";
        "wall vs off" ]
    (List.map
       (fun r ->
         [
           (if r.tr_sample = 0 then "off"
            else Printf.sprintf "1/%d" r.tr_sample);
           Table.num r.tr_msgs;
           Table.flt r.tr_wall_s;
           Table.flt r.tr_rate;
           Table.flt r.tr_bytes_per_msg;
           Table.flt (r.tr_wall_s /. base.tr_wall_s);
         ])
       rows)

(* E22 — online audit cost: the order-certificate sentinel on the same  *)
(* saturating burst. Chain folding is a handful of integer multiplies   *)
(* per delivery and certificates ride only the periodic gossip/digest   *)
(* frames, so both the drain wall time and the wire bytes per payload   *)
(* must sit within noise of the audit-off run (the acceptance bar is    *)
(* <= 2 amortized bytes per payload).                                   *)

type e22_row = {
  au_on : bool;
  au_msgs : int;
  au_wall_s : float;  (* host wall time to drain, best of 5 *)
  au_rate : float;  (* drained msgs per simulated second *)
  au_bytes_per_msg : float;  (* wire bytes per delivered payload *)
  au_diverged : int;  (* sentinel trips — must be 0 on a healthy run *)
}

let e22_run ~msgs on =
  let n = 5 in
  let stack () = Factory.throughput ~audit_every:(if on then 1 else 0) () in
  let go () =
    let cluster = Cluster.create (stack ()) ~seed:61 ~n ~count_bytes:true () in
    let rng = Rng.create 67 in
    Workload.burst cluster ~rng ~senders:(List.init n Fun.id) ~at:1_000
      ~count:msgs ~size:64 ();
    let ok =
      Cluster.run_until cluster ~until:1_000_000_000
        ~pred:(fun () -> Cluster.all_caught_up cluster ~count:msgs ())
        ()
    in
    if not ok then failwith "E22: burst did not drain";
    cluster
  in
  ignore (go ());
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to 5 do
    let t0 = Unix.gettimeofday () in
    let c = go () in
    let w = Unix.gettimeofday () -. t0 in
    if w < !best then begin
      best := w;
      result := Some c
    end
  done;
  let cluster = Option.get !result in
  let m = Cluster.metrics cluster in
  {
    au_on = on;
    au_msgs = msgs;
    au_wall_s = !best;
    au_rate =
      float_of_int msgs /. (float_of_int (Cluster.now cluster - 1_000) /. 1e6);
    au_bytes_per_msg =
      float_of_int (Metrics.sum m "net_bytes") /. float_of_int (max 1 msgs);
    au_diverged = Metrics.sum m "audit_diverged";
  }

let e22_rows ~msgs = List.map (e22_run ~msgs) [ false; true ]

let e22 () =
  let msgs = scale 2_000 in
  let rows = e22_rows ~msgs in
  let base = List.hd rows in
  Table.print
    ~title:
      "E22: online audit cost — the E18 saturating burst (throughput \
       preset, n=5) with the order-certificate sentinel off vs on; \
       certificates piggyback on periodic gossip frames, so the \
       amortized wire cost must stay under 2 bytes per payload"
    ~header:
      [ "audit"; "msgs"; "wall s (host)"; "sim msgs/s"; "bytes/msg";
        "diverged"; "wall vs off" ]
    (List.map
       (fun r ->
         [
           (if r.au_on then "on" else "off");
           Table.num r.au_msgs;
           Table.flt r.au_wall_s;
           Table.flt r.au_rate;
           Table.flt r.au_bytes_per_msg;
           Table.num r.au_diverged;
           Table.flt (r.au_wall_s /. base.au_wall_s);
         ])
       rows);
  List.iter
    (fun r ->
      if r.au_diverged > 0 then
        failwith "E22: audit sentinel tripped on a healthy run")
    rows

let all : (string * (unit -> unit)) list =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5);
    ("E5b", e5b); ("E6", e6); ("E7", e7); ("E8", e8); ("E9", e9);
    ("E10", e10); ("E11", e11); ("E12", e12); ("E13", e13); ("E14", e14);
    ("E15", e15); ("E16", e16); ("E18", e18); ("E19", e19); ("E20", e20);
    ("E21", e21); ("E22", e22);
  ]
