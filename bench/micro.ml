(* Bechamel micro-benchmarks of the hot paths: one Test.make per table
   row. These measure real host time (the experiment tables in
   Experiments report simulated metrics). *)

open Bechamel
open Toolkit
module Rng = Abcast_util.Rng
module Heap = Abcast_util.Heap
module Engine = Abcast_sim.Engine
module Cluster = Abcast_harness.Cluster
module Workload = Abcast_harness.Workload
module Factory = Abcast_core.Factory
module Metrics = Abcast_sim.Metrics

let rng_bench =
  Test.make ~name:"rng.bits64"
    (Staged.stage
       (let rng = Rng.create 1 in
        fun () -> ignore (Rng.bits64 rng)))

let heap_bench =
  Test.make ~name:"heap.push+pop (1k live)"
    (Staged.stage
       (let h = Heap.create ~cmp:compare () in
        for i = 0 to 999 do
          Heap.push h (i * 7919 mod 1000, i)
        done;
        let i = ref 0 in
        fun () ->
          incr i;
          Heap.push h (!i * 7919 mod 1000, !i);
          ignore (Heap.pop h)))

let engine_bench =
  Test.make ~name:"engine: 3-node echo round"
    (Staged.stage (fun () ->
         let eng = Engine.create ~seed:1 ~n:3 () in
         for i = 0 to 2 do
           Engine.set_behavior eng i (fun io ->
               io.multisend "ping";
               fun ~src:_ _ -> ())
         done;
         Engine.start_all eng;
         Engine.run eng ~until:10_000))

let protocol_round_bench =
  Test.make ~name:"abcast: 10 msgs to quiescence (n=3)"
    (Staged.stage (fun () ->
         let cluster = Cluster.create (Factory.basic ()) ~seed:1 ~n:3 () in
         for j = 0 to 9 do
           Cluster.at cluster (500 * (j + 1)) (fun () ->
               ignore (Cluster.broadcast cluster ~node:(j mod 3) "m"))
         done;
         ignore
           (Cluster.run_until cluster ~until:100_000_000
              ~pred:(fun () -> Cluster.all_caught_up cluster ~count:10 ())
              ())))

let bench_payloads =
  List.init 32 (fun i ->
      Abcast_core.Payload.make
        { origin = i mod 3; boot = 0; seq = i }
        (String.make 32 'x'))

let batch_bench =
  Test.make ~name:"batch encode/decode, wire codec (32 msgs)"
    (Staged.stage (fun () ->
         ignore
           (Abcast_core.Batch.decode (Abcast_core.Batch.encode bench_payloads))))

(* The replaced baseline, kept as a row so the codec-vs-Marshal gap stays
   visible in every run. *)
let batch_marshal_bench =
  Test.make ~name:"batch encode/decode, Marshal (32 msgs)"
    (Staged.stage (fun () ->
         let sorted = Abcast_core.Payload.sort_batch bench_payloads in
         let s = Marshal.to_string sorted [] in
         ignore (Marshal.from_string s 0 : Abcast_core.Payload.t list)))

module PB = Abcast_core.Protocol.Make (Abcast_consensus.Paxos)

let bench_msg =
  PB.Gossip { k = 12; len = 40; unordered = bench_payloads; cert = None }

let msg_wire_bench =
  Test.make ~name:"protocol msg roundtrip, wire codec (gossip)"
    (Staged.stage (fun () ->
         match PB.decode_msg (PB.encode_msg bench_msg) with
         | Some _ -> ()
         | None -> assert false))

let msg_marshal_bench =
  Test.make ~name:"protocol msg roundtrip, Marshal (gossip)"
    (Staged.stage (fun () ->
         let s = Marshal.to_string bench_msg [] in
         ignore (Marshal.from_string s 0 : PB.msg)))

(* hex_of_key: lookup-table fast path vs the sprintf-per-byte
   formulation it replaced (one filename per file-backed log write). *)
let hex_key = "cons/000123/proposal"

let hex_bench =
  Test.make ~name:"storage hex_of_key, table (20B key)"
    (Staged.stage (fun () -> ignore (Abcast_sim.Storage.hex_of_key hex_key)))

let hex_sprintf_of_key key =
  let buf = Buffer.create (2 * String.length key) in
  String.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
    key;
  Buffer.contents buf

let hex_sprintf_bench =
  Test.make ~name:"storage hex_of_key, sprintf (20B key)"
    (Staged.stage (fun () -> ignore (hex_sprintf_of_key hex_key)))

let storage_bench =
  Test.make ~name:"storage write (64B value)"
    (Staged.stage
       (let store =
          Abcast_sim.Storage.create
            ~metrics:(Abcast_sim.Metrics.create ())
            ~node:0 ()
        in
        let v = String.make 64 'x' in
        let i = ref 0 in
        fun () ->
          incr i;
          Abcast_sim.Storage.write store ~layer:"bench"
            ~key:(string_of_int (!i land 1023))
            v))

let vclock_bench =
  Test.make ~name:"vclock add+contains (8 streams)"
    (Staged.stage
       (let vc = ref Abcast_core.Vclock.empty in
        let seqs = Array.make 8 0 in
        let i = ref 0 in
        fun () ->
          incr i;
          let origin = !i land 7 in
          let id =
            { Abcast_core.Payload.origin; boot = 0; seq = seqs.(origin) }
          in
          seqs.(origin) <- seqs.(origin) + 1;
          vc := Abcast_core.Vclock.add !vc id;
          ignore (Abcast_core.Vclock.contains !vc id)))

let metrics_string_bench =
  Test.make ~name:"metrics incr (string key)"
    (Staged.stage
       (let m = Metrics.create () in
        fun () -> Metrics.incr m ~node:0 "rx.gossip"))

let metrics_handle_bench =
  Test.make ~name:"metrics hincr (interned handle)"
    (Staged.stage
       (let m = Metrics.create () in
        let h = Metrics.handle m ~node:0 "rx.gossip" in
        fun () -> Metrics.hincr h))

let tests =
  [
    rng_bench; heap_bench; storage_bench; vclock_bench; batch_bench;
    batch_marshal_bench; msg_wire_bench; msg_marshal_bench; hex_bench;
    hex_sprintf_bench; metrics_string_bench; metrics_handle_bench;
    engine_bench; protocol_round_bench;
  ]

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  Printf.printf "\n== Micro-benchmarks (host time per run) ==\n";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-40s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        analysis)
    tests;
  print_newline ()
