(* `bench/main.exe --json`: machine-readable performance snapshot.

   Writes BENCH_PR10.json in the current directory with

   - the audit section (new in schema 10): the E22 pair — the same
     burst with the order-certificate sentinel off vs on, recording the
     amortized certificate bytes per payload and that no divergence was
     reported on a healthy run;

   - the tracing section (new in schema 9): the E21 sweep — the E18
     saturating burst with the per-payload causal trace context sampled
     every k-th A-broadcast, k in {off, 100, 10, 1}; drain wall time,
     simulated drain rate and wire bytes per payload per cell, plus the
     1%-sampling overhead against tracing-off. An unsampled payload
     carries zero trace bytes (only the stolen length-uvarint bit, one
     wider byte for data >= 64B) and the [minor_words_per_send] figure
     (still in the throughput section) guards the allocation-free
     unsampled send path;

   - the service section (new in schema 8): the E20 live SLO sweep —
     open-loop client sessions on the real-socket runtime (n=3, WAL),
     read mode in {broadcast, read-index} x S in {1, 4} shard groups x
     client count; completed ops/sec against the offered rate, per-class
     write/linearizable-read latency percentiles, and the p50 cost ratio
     of a broadcast-round-trip linearizable read against the read-index
     lease check. Every row passed the exactly-once audit (acked <=
     applied <= issued per client counter) or the bench aborts;

   - the shard-scaling section (new in schema 7): the E19 weak-scaling
     sweep — S in {1, 2, 4, 8} broadcast groups multiplexed per process
     (throughput preset, n=5), each group offered the same burst;
     aggregate simulated drain rate, speedup vs S=1, and the worst
     per-group delivery p95 with its ratio to the single-group figure;

   - the throughput section (new in schema 6): the E18 sweep — host
     ops/sec and wire bytes per delivered payload at n in {5, 9} for
     gossip-vs-ring dissemination and pipeline window in {1, 4, 8} under
     one saturating burst, the ring+window=4 speedup and p95-ratio
     against the gossip+window=1 configuration measured today, the
     speedup against the ops/sec recorded in BENCH_PR4.json (the PR-3/
     PR-4-era code), and the minor-heap words allocated per send on the
     live runtime's pooled frame encoder (0.0 = the allocation-free
     steady state);

   - the n=5 steady-load workload run once per gossip mode (full set vs
     digest+Need pull): host events/sec, broadcasts-to-quiescence wall
     time, gossip message/byte counts from the [gossip_*_sent] metrics —
     bytes are wire-codec sizes, directly comparable against the
     Marshal-based figures recorded in BENCH_PR1.json;
   - hand-timed micro-benchmarks (ns/op) for the hot paths, including
     codec-vs-Marshal pairs, and the encoded bytes per value for a
     representative gossip message;
   - the durable-storage section: append throughput and reopen/recovery
     time of the segmented WAL vs the file-per-key backend under each
     fsync policy (the E16 workload, one repetition);
   - the observability section (new in schema 4): the delta-gossip
     steady run repeated with lifecycle tracing + spans enabled, the
     relative overhead against the traced-off run (the < 5% budget of
     E17), histogram hot-path ns/op, and the stage-latency p50s the
     instrumentation measured.

   The simulated metrics (counts, bytes, sim time) are seeded and
   bit-reproducible; the wall-clock and ns/op figures are host-dependent
   and only meaningful as before/after pairs on one machine. *)

module Rng = Abcast_util.Rng
module Metrics = Abcast_sim.Metrics
module Histogram = Abcast_util.Histogram
module Trace = Abcast_sim.Trace
module Cluster = Abcast_harness.Cluster
module Workload = Abcast_harness.Workload
module Factory = Abcast_core.Factory

type steady = {
  count : int;
  events : int;
  wall_s : float;
  sim_us : int;
  gossip_msgs : int;
  gossip_bytes : int;
  net_msgs : int;
  stage_p50 : (string * float) list;
}

(* The E14 workload: n=5, 400 Poisson broadcasts, mean gap 1.5ms. One
   warm-up run (allocator, caches), then one timed run. [trace] runs it
   with lifecycle tracing and spans recording (the E17 overhead axis). *)
let steady ?(trace = false) ~delta_gossip () =
  let n = 5 and msgs = 400 and mean_gap = 1_500 in
  let go () =
    let stack = Factory.alternative ~delta_gossip () in
    let tr = Trace.create ~enabled:trace () in
    let cluster = Cluster.create stack ~seed:7 ~n ~trace:tr () in
    let rng = Rng.create 91 in
    let count =
      Workload.open_loop cluster ~rng ~senders:(List.init n Fun.id)
        ~start:1_000
        ~stop:(1_000 + (msgs * mean_gap))
        ~mean_gap ()
    in
    let ok =
      Cluster.run_until cluster ~until:1_000_000_000
        ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
        ()
    in
    if not ok then failwith "json bench: steady run did not quiesce";
    (cluster, count)
  in
  ignore (go ());
  (* The run is deterministic (seeded), so repetitions differ only in
     host noise: report the best of 7. *)
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to 7 do
    let t0 = Unix.gettimeofday () in
    let r = go () in
    let w = Unix.gettimeofday () -. t0 in
    if w < !best then begin
      best := w;
      result := Some r
    end
  done;
  let cluster, count = Option.get !result in
  let wall_s = !best in
  let m = Cluster.metrics cluster in
  let stage_p50 =
    List.filter_map
      (fun name ->
        Option.map
          (fun (s : Histogram.summary) -> (name, s.p50))
          (Cluster.hist_summary cluster name))
      [
        "stage.broadcast_to_propose_us";
        "stage.propose_to_adeliver_us";
        "lat_deliver";
        "cons.propose_to_decide_us";
      ]
  in
  {
    count;
    events = Cluster.events_processed cluster;
    wall_s;
    sim_us = Cluster.now cluster;
    gossip_msgs = Metrics.sum m "gossip_msgs_sent";
    gossip_bytes = Metrics.sum m "gossip_bytes_sent";
    net_msgs = Metrics.sum m "msgs_sent";
    stage_p50;
  }

type thr_row = {
  t_n : int;
  t_topo : string;
  t_window : int;
  t_msgs : int;
  t_wall_s : float;
  t_sim_msgs_per_s : float;
  t_bytes_per_msg : float;
  t_p95_ms : float;
}

(* One cell of the E18 sweep, two runs per configuration:

   - a saturating burst (every payload offered at once) drained to
     quiescence — the throughput ceiling. [ops_per_sec] is this drain's
     delivered payloads per host wall second, best of 5 timed
     repetitions after a warm-up, and the wire bytes per delivered
     payload come from the same run (the dissemination cost is what the
     ceiling is made of);
   - a moderate open-loop Poisson run for the p95 delivery latency —
     a queueing-delay reading at saturation would only measure the
     backlog depth, not the protocol. *)
let throughput_row ~n ~dissemination ~window =
  let burst_msgs = 2_000 in
  (* Ring rows take the [Factory.throughput] preset's tuning (sparser
     full gossip, slower digest tick): with the ring carrying payloads,
     digests are repair-only and a 3ms digest tick is pure per-stream
     scan overhead at every receiver. Gossip rows keep the defaults —
     there the digest exchange IS the dissemination. *)
  let stack () =
    match dissemination with
    | `Ring ->
      Factory.alternative ~window ~dissemination ~gossip_full_every:32
        ~gossip_period:10_000 ()
    | `Gossip -> Factory.alternative ~window ~dissemination ()
  in
  let go_burst () =
    let cluster = Cluster.create (stack ()) ~seed:53 ~n ~count_bytes:true () in
    let rng = Rng.create 57 in
    Workload.burst cluster ~rng ~senders:(List.init n Fun.id) ~at:1_000
      ~count:burst_msgs ~size:64 ();
    let ok =
      Cluster.run_until cluster ~until:1_000_000_000
        ~pred:(fun () -> Cluster.all_caught_up cluster ~count:burst_msgs ())
        ()
    in
    if not ok then failwith "json bench: burst run did not drain";
    cluster
  in
  ignore (go_burst ());
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to 5 do
    let t0 = Unix.gettimeofday () in
    let r = go_burst () in
    let w = Unix.gettimeofday () -. t0 in
    if w < !best then begin
      best := w;
      result := Some r
    end
  done;
  let cluster = Option.get !result in
  let m = Cluster.metrics cluster in
  let t_p95_ms =
    let lat_cluster =
      Cluster.create (stack ()) ~seed:53 ~n ~count_bytes:false ()
    in
    let rng = Rng.create 57 in
    let count =
      Workload.open_loop lat_cluster ~rng ~senders:(List.init n Fun.id)
        ~start:1_000 ~stop:121_000 ~mean_gap:300 ~size:64 ()
    in
    let ok =
      Cluster.run_until lat_cluster ~until:1_000_000_000
        ~pred:(fun () -> Cluster.all_caught_up lat_cluster ~count ())
        ()
    in
    if not ok then failwith "json bench: latency run did not quiesce";
    Metrics.percentile (Cluster.metrics lat_cluster) "lat_deliver" 95.0
    /. 1_000.0
  in
  {
    t_n = n;
    t_topo = (match dissemination with `Gossip -> "gossip" | `Ring -> "ring");
    t_window = window;
    t_msgs = burst_msgs;
    t_wall_s = !best;
    t_sim_msgs_per_s =
      float_of_int burst_msgs
      /. (float_of_int (Cluster.now cluster - 1_000) /. 1e6);
    t_bytes_per_msg =
      float_of_int (Metrics.sum m "net_bytes")
      /. float_of_int (max 1 burst_msgs);
    t_p95_ms;
  }

(* Minor-heap words per send on the live runtime's pooled frame encoder:
   encode a representative message once into the pooled scratch and
   append it to a pooled destination buffer, exactly the steady-state
   work of [Runtime]'s send path. After warm-up (pool growth), this must
   be 0.0 — the zero-allocation claim, also enforced as a regression
   test in the suite. *)
let minor_words_per_send () =
  let module P = Abcast_core.Protocol.Make (Abcast_consensus.Paxos) in
  let module Live = Abcast_live.Runtime in
  let module Wire = Abcast_util.Wire in
  let payloads =
    List.init 8 (fun i ->
        Abcast_core.Payload.make
          { origin = i mod 3; boot = 0; seq = i }
          (String.make 64 'x'))
  in
  let msg = P.Gossip { k = 5; len = 9; unordered = payloads; cert = None } in
  let dest = Wire.writer ~cap:(Live.max_datagram + 16) () in
  let scratch = Wire.writer ~cap:4096 () in
  let send () =
    Wire.clear scratch;
    P.write_msg scratch msg;
    if Wire.length dest + Wire.length scratch + 3 > Live.max_datagram then
      Live.Frame.start dest ~src:0;
    Live.Frame.add dest ~msg:scratch
  in
  Live.Frame.start dest ~src:0;
  for _ = 1 to 1_000 do
    send ()
  done;
  let iters = 10_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    send ()
  done;
  (Gc.minor_words () -. w0) /. float_of_int iters

let throughput_json () =
  let rows =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun dissemination ->
            List.map
              (fun window -> throughput_row ~n ~dissemination ~window)
              [ 1; 4; 8 ])
          [ `Gossip; `Ring ])
      [ 5; 9 ]
  in
  let find ~n ~topo ~window =
    List.find
      (fun r -> r.t_n = n && r.t_topo = topo && r.t_window = window)
      rows
  in
  let base = find ~n:5 ~topo:"gossip" ~window:1 in
  let tuned = find ~n:5 ~topo:"ring" ~window:4 in
  let speedup = base.t_wall_s /. tuned.t_wall_s in
  let p95_ratio = tuned.t_p95_ms /. base.t_p95_ms in
  (* The PR-3/PR-4-era code's recorded drain rate, from BENCH_PR4.json's
     cluster.delta_gossip row: 419 delivered payloads over 0.035371 s of
     host wall time ≈ 11,846 ops/s. The same-binary gossip+window=1 row
     above is NOT that baseline — it already carries this PR's protocol
     work (pooled wire path, interned metrics, hashed Unordered) — so
     the acceptance speedup is measured against the recorded figure. *)
  let pr4_ops_per_sec = 419.0 /. 0.035371 in
  let speedup_vs_pr4 = float_of_int tuned.t_msgs /. tuned.t_wall_s /. pr4_ops_per_sec in
  let rows_json =
    rows
    |> List.map (fun r ->
           Printf.sprintf
             {|      { "n": %d, "topo": "%s", "window": %d, "msgs": %d, "wall_s": %.6f, "ops_per_sec": %.0f, "sim_msgs_per_sec": %.0f, "net_bytes_per_payload": %.1f, "p95_lat_ms": %.2f }|}
             r.t_n r.t_topo r.t_window r.t_msgs r.t_wall_s
             (float_of_int r.t_msgs /. r.t_wall_s)
             r.t_sim_msgs_per_s r.t_bytes_per_msg r.t_p95_ms)
    |> String.concat ",\n"
  in
  ( Printf.sprintf
      {|  "throughput": {
    "workload": { "burst_msgs": 2000, "latency_mean_gap_us": 300, "size": 64, "seed": 53 },
    "rows": [
%s
    ],
    "speedup_ring_w4_vs_gossip_w1_n5": %.2f,
    "speedup_vs_pr4_baseline": %.2f,
    "p95_ratio_ring_w4_vs_gossip_w1_n5": %.2f,
    "minor_words_per_send": %.3f
  }|}
      rows_json speedup speedup_vs_pr4 p95_ratio (minor_words_per_send ()),
    speedup,
    speedup_vs_pr4,
    p95_ratio )

(* Best of 5 timed repetitions, like the steady runs' best-of-7: the
   operations are deterministic, so the minimum is the least
   noise-contaminated estimate on a busy or thermally throttled host. *)
let time_ns ~iters f =
  let best = ref infinity in
  for _ = 1 to 5 do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
    if ns < !best then best := ns
  done;
  !best

let micros () =
  let rng = Rng.create 1 in
  let payloads =
    List.init 32 (fun i ->
        Abcast_core.Payload.make
          { origin = i mod 3; boot = 0; seq = i }
          (String.make 32 'x'))
  in
  let m = Metrics.create () in
  let h = Metrics.handle m ~node:0 "rx.gossip" in
  let quiesce () =
    let cluster = Cluster.create (Factory.basic ()) ~seed:1 ~n:3 () in
    for j = 0 to 9 do
      Cluster.at cluster
        (500 * (j + 1))
        (fun () -> ignore (Cluster.broadcast cluster ~node:(j mod 3) "m"))
    done;
    ignore
      (Cluster.run_until cluster ~until:100_000_000
         ~pred:(fun () -> Cluster.all_caught_up cluster ~count:10 ())
         ())
  in
  let module P = Abcast_core.Protocol.Make (Abcast_consensus.Paxos) in
  let gossip = P.Gossip { k = 12; len = 40; unordered = payloads; cert = None } in
  [
    ("rng_bits64", time_ns ~iters:2_000_000 (fun () -> ignore (Rng.bits64 rng)));
    ( "batch_encode_decode_32",
      time_ns ~iters:100_000 (fun () ->
          ignore (Abcast_core.Batch.decode (Abcast_core.Batch.encode payloads)))
    );
    ( "batch_marshal_32",
      time_ns ~iters:20_000 (fun () ->
          let s = Marshal.to_string (Abcast_core.Payload.sort_batch payloads) [] in
          ignore (Marshal.from_string s 0 : Abcast_core.Payload.t list)) );
    ( "msg_roundtrip_wire_gossip32",
      time_ns ~iters:100_000 (fun () ->
          match P.decode_msg (P.encode_msg gossip) with
          | Some _ -> ()
          | None -> failwith "roundtrip failed") );
    ( "msg_roundtrip_marshal_gossip32",
      time_ns ~iters:20_000 (fun () ->
          let s = Marshal.to_string gossip [] in
          ignore (Marshal.from_string s 0 : P.msg)) );
    ( "hex_of_key_20B",
      time_ns ~iters:2_000_000 (fun () ->
          ignore (Abcast_sim.Storage.hex_of_key "cons/000123/proposal")) );
    ( "metrics_incr_string",
      time_ns ~iters:2_000_000 (fun () -> Metrics.incr m ~node:0 "rx.gossip") );
    ("metrics_hincr_interned", time_ns ~iters:10_000_000 (fun () -> Metrics.hincr h));
    ( "histogram_add",
      let hist = Histogram.create () in
      let v = ref 1.5 in
      time_ns ~iters:10_000_000 (fun () ->
          v := !v *. 1.009;
          if !v > 1e8 then v := 1.5;
          Histogram.add hist !v) );
    ( "histogram_percentile",
      let hist = Histogram.create () in
      let rng' = Rng.create 3 in
      for _ = 1 to 10_000 do
        Histogram.add hist (float_of_int (1 + Rng.int rng' 1_000_000))
      done;
      time_ns ~iters:100_000 (fun () -> ignore (Histogram.percentile hist 95.))
    );
    ( "metrics_observe",
      time_ns ~iters:100_000 (fun () ->
          Metrics.observe m ~node:0 "bench.obs" 123.4) );
    ("abcast_10msgs_quiescence_n3", time_ns ~iters:100 quiesce);
  ]

(* A short real-UDP run for the net_stats/WAL counters section; [None]
   when the environment forbids sockets (CI sandboxes). *)
let live_bench () =
  let module Live = Abcast_live.Runtime in
  let msgs = 60 in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "abcast-bench-live-%d" (Unix.getpid ()))
  in
  match Live.create (Factory.basic ()) ~n:3 ~base_port:7541 ~dir () with
  | exception Unix.Unix_error _ -> None
  | live ->
    Fun.protect ~finally:(fun () -> Live.shutdown live) @@ fun () ->
    let t0 = Unix.gettimeofday () in
    for j = 0 to msgs - 1 do
      Live.broadcast live ~node:(j mod 3) (Printf.sprintf "b%d" j)
    done;
    let deadline = Unix.gettimeofday () +. 30.0 in
    let all () =
      List.for_all (fun i -> Live.delivered_count live i >= msgs) [ 0; 1; 2 ]
    in
    while (not (all ())) && Unix.gettimeofday () < deadline do
      Thread.delay 0.01
    done;
    if not (all ()) then None
    else begin
      let dt = Unix.gettimeofday () -. t0 in
      let sum_ns f =
        List.fold_left (fun acc i -> acc + f (Live.net_stats live i)) 0
          [ 0; 1; 2 ]
      in
      let sum_ctr name =
        List.fold_left
          (fun acc i ->
            acc
            + Option.value ~default:0
                (List.assoc_opt name (Live.node_counters live i)))
          0 [ 0; 1; 2 ]
      in
      Some
        (Printf.sprintf
           {|{
    "msgs": %d, "n": 3, "wall_s": %.4f, "msgs_per_sec": %.0f,
    "net_tx_oversize": %d, "net_rx_undecodable": %d,
    "wal_appends": %d, "wal_fsyncs": %d, "wal_segments": %d
  }|}
           msgs dt
           (float_of_int msgs /. dt)
           (sum_ns (fun (s : Live.net_stats) -> s.tx_oversize))
           (sum_ns (fun (s : Live.net_stats) -> s.rx_undecodable))
           (sum_ctr "wal_appends") (sum_ctr "wal_fsyncs")
           (sum_ctr "wal_segments"))
    end

(* Durable storage: append throughput and recovery cost per backend and
   fsync policy (the machine-readable face of experiment E16). *)
let storage_bench () =
  let module Durable = Abcast_store.Durable in
  let module Storage = Abcast_sim.Storage in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  let ops = 2_000 and value = String.make 128 'v' in
  let run backend policy =
    let name =
      Printf.sprintf "%s_%s"
        (match backend with `Files -> "files" | _ -> "wal")
        (match policy with
        | Durable.Always -> "always"
        | Durable.Every _ -> "every_64_20"
        | Durable.Never -> "never")
    in
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "abcast-bench-store-%d-%s" (Unix.getpid ()) name)
    in
    rm_rf dir;
    let metrics = Metrics.create () in
    let store = Storage.create ~dir ~backend ~fsync:policy ~metrics ~node:0 () in
    let t0 = Unix.gettimeofday () in
    for i = 0 to ops - 1 do
      Storage.write store ~layer:"bench"
        ~key:(Printf.sprintf "key%03d" (i mod 64))
        value
    done;
    let appends_per_s = float_of_int ops /. (Unix.gettimeofday () -. t0) in
    let disk = Storage.disk_bytes store in
    Storage.close store;
    let m2 = Metrics.create () in
    let t1 = Unix.gettimeofday () in
    let store2 =
      Storage.create ~dir ~backend ~fsync:policy ~metrics:m2 ~node:0 ()
    in
    let recover_ms = (Unix.gettimeofday () -. t1) *. 1_000.0 in
    Storage.close store2;
    rm_rf dir;
    Printf.sprintf
      {|    "%s": { "ops": %d, "appends_per_sec": %.0f, "disk_bytes": %d, "recover_ms": %.3f }|}
      name ops appends_per_s disk recover_ms
  in
  List.concat_map
    (fun backend ->
      List.map (run backend)
        [ Durable.Always; Durable.Every { ops = 64; ms = 20 }; Durable.Never ])
    [ `Files; `Wal ]

(* Encoded bytes per value: the other axis of the codec change. *)
let encoded_bytes () =
  let payloads =
    List.init 32 (fun i ->
        Abcast_core.Payload.make
          { origin = i mod 3; boot = 0; seq = i }
          (String.make 32 'x'))
  in
  let module P = Abcast_core.Protocol.Make (Abcast_consensus.Paxos) in
  let gossip = P.Gossip { k = 12; len = 40; unordered = payloads; cert = None } in
  [
    ("gossip32_wire", String.length (P.encode_msg gossip));
    ("gossip32_marshal", String.length (Marshal.to_string gossip []));
    ("batch32_wire", String.length (Abcast_core.Batch.encode payloads));
    ( "batch32_marshal",
      String.length
        (Marshal.to_string (Abcast_core.Payload.sort_batch payloads) []) );
  ]

let steady_json name (s : steady) =
  Printf.sprintf
    {|  "%s": {
    "msgs": %d,
    "events": %d,
    "quiescence_wall_s": %.6f,
    "events_per_sec": %.0f,
    "sim_us": %d,
    "gossip_msgs": %d,
    "gossip_bytes": %d,
    "gossip_bytes_per_msg": %.1f,
    "net_msgs_total": %d
  }|}
    name s.count s.events s.wall_s
    (float_of_int s.events /. s.wall_s)
    s.sim_us s.gossip_msgs s.gossip_bytes
    (float_of_int s.gossip_bytes /. float_of_int (max 1 s.count))
    s.net_msgs

(* The E19 weak-scaling sweep, reused from the experiment harness so the
   table and the JSON always agree. *)
let shard_scaling_json () =
  let rows = Experiments.e19_rows ~per_group:800 in
  let base = List.hd rows in
  let rows_json =
    rows
    |> List.map (fun (r : Experiments.e19_row) ->
           Printf.sprintf
             {|      { "shards": %d, "msgs": %d, "agg_sim_msgs_per_sec": %.0f, "speedup_vs_s1": %.2f, "wall_s": %.6f, "worst_group_p95_us": %.0f, "p95_ratio_vs_s1": %.2f }|}
             r.s_shards r.s_msgs r.s_rate
             (r.s_rate /. base.s_rate)
             r.s_wall_s r.s_p95_us
             (r.s_p95_us /. base.s_p95_us))
    |> String.concat ",\n"
  in
  let find s = List.find (fun (r : Experiments.e19_row) -> r.s_shards = s) rows in
  let s4 = find 4 in
  let speedup_s4 = s4.s_rate /. base.s_rate in
  let p95_ratio_s4 = s4.s_p95_us /. base.s_p95_us in
  ( Printf.sprintf
      {|  "shard_scaling": {
    "workload": { "stack": "throughput/x S", "n": 5, "burst_per_group": 800, "size": 64, "seed": 61 },
    "rows": [
%s
    ],
    "speedup_s4_vs_s1": %.2f,
    "p95_ratio_s4_vs_s1": %.2f
  }|}
      rows_json speedup_s4 p95_ratio_s4,
    speedup_s4,
    p95_ratio_s4 )

(* The E20 live service sweep, reused from the experiment harness so the
   table and the JSON always agree. [None] when the environment forbids
   sockets (the section then reads "null", like "live"). *)
let service_json () =
  match Experiments.e20_rows () with
  | exception Unix.Unix_error _ -> (None, None)
  | rows ->
    let hist_json prefix (s : Histogram.summary) =
      Printf.sprintf
        {|"%s_p50_us": %.1f, "%s_p95_us": %.1f, "%s_p99_us": %.1f|} prefix
        s.p50 prefix s.p95 prefix s.p99
    in
    let rows_json =
      rows
      |> List.map (fun (r : Experiments.e20_row) ->
             let rep = r.v_report in
             Printf.sprintf
               {|      { "shards": %d, "read_mode": "%s", "clients": %d, "offered_per_sec": %.0f, "completed_per_sec": %.0f, %s, %s, "not_ready": %d, "retries": %d, "failed": %d }|}
               r.v_shards
               (Abcast_service.Service.read_mode_to_string r.v_mode)
               r.v_clients r.v_offered
               (float_of_int rep.Abcast_service.Loadgen.completed /. rep.wall)
               (hist_json "write" rep.write)
               (hist_json "lin" rep.lin)
               rep.not_ready rep.retries rep.failed)
      |> String.concat ",\n"
    in
    let lin_p50 mode =
      let r =
        List.find
          (fun (r : Experiments.e20_row) ->
            r.v_shards = 1 && r.v_clients = 200 && r.v_mode = mode)
          rows
      in
      r.v_report.Abcast_service.Loadgen.lin.p50
    in
    let speedup =
      lin_p50 Abcast_service.Service.Broadcast
      /. Float.max 1e-9 (lin_p50 Abcast_service.Service.Read_index)
    in
    ( Some
        (Printf.sprintf
           {|  "service": {
    "workload": { "n": 3, "write_pct": 40, "lin_pct": 40, "duration_s": 2.5, "per_client_rate": 2.5, "rate_cap": 2000, "timeout_s": 0.5, "backend": "wal", "fsync": "every:64:20" },
    "rows": [
%s
    ],
    "lin_read_p50_broadcast_over_read_index_s1_c200": %.1f,
    "exactly_once_audit": "passed"
  }|}
           rows_json speedup),
      Some speedup )

(* The E21 tracing-cost sweep, reused from the experiment harness so the
   table and the JSON always agree. *)
let tracing_json () =
  let rows = Experiments.e21_rows ~msgs:2_000 in
  let base = List.hd rows in
  let find s = List.find (fun (r : Experiments.e21_row) -> r.tr_sample = s) rows in
  let pct = find 100 in
  let overhead_1pct =
    (pct.tr_wall_s -. base.tr_wall_s) /. base.tr_wall_s *. 100.0
  in
  let rows_json =
    rows
    |> List.map (fun (r : Experiments.e21_row) ->
           Printf.sprintf
             {|      { "sample": "%s", "msgs": %d, "wall_s": %.6f, "ops_per_sec": %.0f, "sim_msgs_per_sec": %.0f, "net_bytes_per_payload": %.1f }|}
             (if r.tr_sample = 0 then "off"
              else Printf.sprintf "1/%d" r.tr_sample)
             r.tr_msgs r.tr_wall_s
             (float_of_int r.tr_msgs /. r.tr_wall_s)
             r.tr_rate r.tr_bytes_per_msg)
    |> String.concat ",\n"
  in
  ( Printf.sprintf
      {|  "tracing": {
    "workload": { "stack": "throughput", "n": 5, "burst_msgs": 2000, "size": 64, "seed": 53 },
    "rows": [
%s
    ],
    "overhead_1pct_sampling_wall_pct": %.2f,
    "bytes_per_msg_delta_1pct": %.2f
  }|}
      rows_json overhead_1pct
      (pct.tr_bytes_per_msg -. base.tr_bytes_per_msg),
    overhead_1pct )

(* The E22 audit-cost pair, reused from the experiment harness: the same
   saturating burst with the order-certificate sentinel off vs on. The
   acceptance bar is <= 2 amortized wire bytes per payload and zero
   sentinel trips on a healthy run. *)
(* The [minor_words_per_send] loop with the audit active: the Gossip
   frame carries a certificate and every send folds one payload id into
   the delivery chain, exactly the sentinel's per-delivery work. Must
   still be 0.0 after warm-up. *)
let minor_words_per_audited_send () =
  let module P = Abcast_core.Protocol.Make (Abcast_consensus.Paxos) in
  let module Live = Abcast_live.Runtime in
  let module Wire = Abcast_util.Wire in
  let module Audit = Abcast_core.Audit in
  let payloads =
    List.init 8 (fun i ->
        Abcast_core.Payload.make
          { origin = i mod 3; boot = 0; seq = i }
          (String.make 64 'x'))
  in
  let id0 = (List.hd payloads).Abcast_core.Payload.id in
  let chain = ref Audit.empty in
  let window = Audit.window ~cap:1024 () in
  let pos = ref 0 in
  let msg =
    P.Gossip
      {
        k = 5;
        len = 9;
        unordered = payloads;
        cert = Some { Audit.c_boot = 1; c_len = 9; c_hash = 0x1234 };
      }
  in
  let dest = Wire.writer ~cap:(Live.max_datagram + 16) () in
  let scratch = Wire.writer ~cap:4096 () in
  let send () =
    chain := Audit.mix !chain id0;
    incr pos;
    Audit.note window ~pos:!pos ~hash:!chain;
    Wire.clear scratch;
    P.write_msg scratch msg;
    if Wire.length dest + Wire.length scratch + 3 > Live.max_datagram then
      Live.Frame.start dest ~src:0;
    Live.Frame.add dest ~msg:scratch
  in
  Live.Frame.start dest ~src:0;
  for _ = 1 to 1_000 do
    send ()
  done;
  let iters = 10_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    send ()
  done;
  (Gc.minor_words () -. w0) /. float_of_int iters

let audit_json () =
  let rows = Experiments.e22_rows ~msgs:2_000 in
  let off = List.hd rows and on = List.nth rows 1 in
  let overhead_pct = (on.au_wall_s -. off.au_wall_s) /. off.au_wall_s *. 100.0 in
  let bytes_delta = on.au_bytes_per_msg -. off.au_bytes_per_msg in
  let rows_json =
    rows
    |> List.map (fun (r : Experiments.e22_row) ->
           Printf.sprintf
             {|      { "audit": "%s", "msgs": %d, "wall_s": %.6f, "sim_msgs_per_sec": %.0f, "net_bytes_per_payload": %.1f, "diverged": %d }|}
             (if r.au_on then "on" else "off")
             r.au_msgs r.au_wall_s r.au_rate r.au_bytes_per_msg r.au_diverged)
    |> String.concat ",\n"
  in
  ( Printf.sprintf
      {|  "audit": {
    "workload": { "stack": "throughput", "n": 5, "burst_msgs": 2000, "size": 64, "seed": 61 },
    "rows": [
%s
    ],
    "overhead_wall_pct": %.2f,
    "cert_bytes_per_payload": %.2f,
    "minor_words_per_audited_send": %.3f,
    "diverged_on_healthy_run": %d
  }|}
      rows_json overhead_pct bytes_delta
      (minor_words_per_audited_send ())
      (off.au_diverged + on.au_diverged),
    bytes_delta )

let run () =
  let full = steady ~delta_gossip:false () in
  let delta = steady ~delta_gossip:true () in
  let traced = steady ~trace:true ~delta_gossip:true () in
  let micro = micros () in
  let bytes = encoded_bytes () in
  let reduction =
    float_of_int full.gossip_bytes /. float_of_int (max 1 delta.gossip_bytes)
  in
  let trace_overhead_pct =
    (traced.wall_s -. delta.wall_s) /. delta.wall_s *. 100.0
  in
  let micro_json =
    micro
    |> List.map (fun (name, ns) -> Printf.sprintf {|    "%s": %.1f|} name ns)
    |> String.concat ",\n"
  in
  let bytes_json =
    bytes
    |> List.map (fun (name, b) -> Printf.sprintf {|    "%s": %d|} name b)
    |> String.concat ",\n"
  in
  let storage_json = String.concat ",\n" (storage_bench ()) in
  let stage_json =
    delta.stage_p50
    |> List.map (fun (name, p50) -> Printf.sprintf {|      "%s": %.1f|} name p50)
    |> String.concat ",\n"
  in
  let live_json =
    match live_bench () with Some j -> j | None -> "null"
  in
  let thr_json, speedup, speedup_vs_pr4, p95_ratio = throughput_json () in
  let shard_json, shard_speedup_s4, shard_p95_ratio_s4 = shard_scaling_json () in
  let trace_json, trace_1pct_overhead = tracing_json () in
  let audit_sec, audit_bytes_delta = audit_json () in
  let service_sec, service_speedup = service_json () in
  let service_json_str =
    match service_sec with Some j -> j | None -> {|  "service": null|}
  in
  let json =
    Printf.sprintf
      {|{
  "schema": 10,
  "workload": { "stack": "alt/paxos", "n": 5, "msgs": 400, "mean_gap_us": 1500, "seed": 7 },
%s,
%s,
%s,
%s,
%s,
%s,
%s,
  "gossip_bytes_reduction_x": %.2f,
  "observability": {
    "steady_wall_s_trace_off": %.6f,
    "steady_wall_s_trace_on": %.6f,
    "trace_overhead_pct": %.2f,
    "stage_latency_p50_us": {
%s
    }
  },
  "live": %s,
  "micro_ns_per_op": {
%s
  },
  "encoded_bytes_per_value": {
%s
  },
  "durable_storage": {
%s
  }
}
|}
      (steady_json "full_gossip" full)
      (steady_json "delta_gossip" delta)
      thr_json shard_json trace_json audit_sec service_json_str reduction
      delta.wall_s traced.wall_s trace_overhead_pct stage_json live_json
      micro_json bytes_json storage_json
  in
  let oc = open_out "BENCH_PR10.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  Printf.printf
    "wrote BENCH_PR10.json (order-certificate audit: %+.2f bytes/payload; \
     causal tracing at 1%% sampling: %+.2f%% drain wall vs off; service: \
     lin-read p50 %s broadcast/read-index at S=1/200 clients; shards: \
     %.2fx aggregate at S=4, p95 ratio %.2fx; ring+W4 at n=5: %.2fx vs \
     same-binary gossip+W1, %.2fx vs the recorded PR-4 rate, p95 ratio: \
     %.2fx, trace overhead: %+.2f%%)\n"
    audit_bytes_delta trace_1pct_overhead
    (match service_speedup with
    | Some s -> Printf.sprintf "%.0fx cheaper" s
    | None -> "skipped")
    shard_speedup_s4 shard_p95_ratio_s4
    speedup speedup_vs_pr4 p95_ratio trace_overhead_pct
