(* Restart smoke test for the durable storage stack — run by CI.

     dune exec examples/store_smoke.exe

   Two parts, both exiting nonzero on failure:

   1. A child process appends to a WAL with [fsync = Always] and is
      SIGKILLed mid-write — a real crash, no atexit, no flush. The
      parent reopens the directory and requires the recovered keys to be
      an exact contiguous prefix of what the child was writing: nothing
      mangled, nothing missing in the middle, at most the in-flight
      record torn off the tail.

   2. A three-process live cluster (real UDP, WAL-backed storage) orders
      a few broadcasts, is shut down, and is started again on the same
      directories. The restarted cluster must recover the delivered
      sequence from its logs alone. *)

module Wal = Abcast_store.Wal
module Durable = Abcast_store.Durable
module Live = Abcast_live.Runtime
module Factory = Abcast_core.Factory

let failures = ref 0

let check what ok =
  if ok then Printf.printf "  ok: %s\n%!" what
  else begin
    incr failures;
    Printf.printf "  FAIL: %s\n%!" what
  end

let fresh_dir tag =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "abcast-store-smoke-%d-%s" (Unix.getpid ()) tag)
  in
  Durable.mkdir_p d;
  d

let await ?(timeout = 20.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

(* ---- part 1: SIGKILL a WAL writer ---- *)

let part1 () =
  Printf.printf "part 1: kill a WAL writer mid-append\n%!";
  let dir = fresh_dir "wal" in
  match Unix.fork () with
  | 0 ->
    (* the victim: every completed put is fsynced, so every completed
       put must survive the kill *)
    let w =
      Wal.open_ ~dir ~fsync:Durable.Always ~segment_bytes:16_384 ()
    in
    for i = 0 to 99_999 do
      Wal.put w (Printf.sprintf "rec%06d" i) (String.make 32 'x')
    done;
    Unix._exit 0
  | pid ->
    Unix.sleepf 0.15;
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (Unix.waitpid [] pid);
    let w = Wal.open_ ~dir () in
    let n = Wal.length w in
    let stats = Wal.stats w in
    Printf.printf "  recovered %d records, %d torn, %d segment(s)\n%!" n
      stats.Wal.torn_records stats.Wal.segments;
    check "child wrote something before dying" (n > 0);
    let prefix_ok = ref true in
    for i = 0 to n - 1 do
      if not (Wal.mem w (Printf.sprintf "rec%06d" i)) then prefix_ok := false
    done;
    check "recovered keys are a contiguous prefix" !prefix_ok;
    check "no key past the prefix"
      (not (Wal.mem w (Printf.sprintf "rec%06d" n)));
    check "at most the in-flight record was torn" (stats.Wal.torn_records <= 1);
    (* the survivor is a working log *)
    Wal.put w "after-recovery" "ok";
    Wal.close w;
    let w2 = Wal.open_ ~dir () in
    check "recovered log accepts appends"
      (Wal.find w2 "after-recovery" = Some "ok");
    Wal.close w2

(* ---- part 2: restart a live WAL-backed cluster ---- *)

let part2 () =
  Printf.printf "part 2: restart a live cluster from its WAL\n%!";
  let dir = fresh_dir "live" in
  let stack () = Factory.basic () in
  let msgs = 5 in
  let start () =
    Live.create (stack ()) ~n:3 ~base_port:7491 ~dir ~backend:`Wal
      ~fsync:Durable.Always ()
  in
  match start () with
  | exception Unix.Unix_error (e, _, _) ->
    (* restricted environments without sockets: the WAL part above
       already ran, so report and succeed *)
    Printf.printf "  skipping live part: %s\n" (Unix.error_message e)
  | live ->
    for j = 0 to msgs - 1 do
      Live.broadcast live ~node:(j mod 3) (Printf.sprintf "m%d" j)
    done;
    let all_delivered live =
      List.for_all (fun i -> Live.delivered_count live i >= msgs) [ 0; 1; 2 ]
    in
    check "first incarnation delivers everything"
      (await (fun () -> all_delivered live));
    let order = Live.delivered_data live 0 in
    Live.shutdown live;
    (* same directories, brand-new processes: state must come back from
       the logs, with no broadcast re-sent *)
    (match start () with
    | exception Unix.Unix_error (e, _, _) ->
      incr failures;
      Printf.printf "  FAIL: restart could not bind sockets: %s\n"
        (Unix.error_message e)
    | live2 ->
      check "restarted cluster recovers all deliveries"
        (await (fun () -> all_delivered live2));
      check "recovered order matches the pre-restart order"
        (Live.delivered_data live2 0 = order);
      Live.shutdown live2)

let () =
  part1 ();
  part2 ();
  if !failures > 0 then begin
    Printf.printf "%d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "store smoke test passed"
