(* abcast-sim — command-line driver for the simulator.

   `abcast-sim run`     : one workload on one configured stack, with
                          optional fault injection and a full protocol
                          trace.
   `abcast-sim soak`    : many randomized crash/recovery episodes with the
                          correctness properties checked after each
                          (E9-style soak testing from the shell).
   `abcast-sim live`    : the same stacks over real UDP sockets and files.
   `abcast-sim service` : the client service layer under open-loop load —
                          exactly-once sessions, lease reads, SLO tables,
                          optional mid-run kill/restart with an
                          exactly-once audit at the end.
   `abcast-sim doctor`  : offline analysis of a live run directory —
                          merge the per-node crash flight recorders and
                          metrics snapshots into causal per-trace
                          timelines, a stage-latency table and anomaly
                          flags; exits nonzero on anomaly (CI guard). *)

module Rng = Abcast_util.Rng
module Net = Abcast_sim.Net
module Metrics = Abcast_sim.Metrics
module Trace = Abcast_sim.Trace
module Faults = Abcast_sim.Faults
module Factory = Abcast_core.Factory
module Cluster = Abcast_harness.Cluster
module Checks = Abcast_harness.Checks
module Workload = Abcast_harness.Workload
module Table = Abcast_harness.Table
module Kv = Abcast_apps.Kv
module Partitioned_kv = Abcast_apps.Partitioned_kv

let parse_topo = function
  | "gossip" -> `Gossip
  | "ring" -> `Ring
  | s ->
    Printf.eprintf "unknown --topo %S (expected gossip|ring)\n" s;
    exit 3

(* [window]: [None] keeps each stack's own default (1 for alt, 4 for the
   throughput preset); naive/ct/basic have no pipeline so the flag is
   ignored there, as is [--topo] for naive/ct. *)
let make_stack stack consensus checkpoint_period delta ~window ~topo ~shards
    ?trace_sample () =
  let dissemination = parse_topo topo in
  let base =
    match stack with
    | "basic" -> Factory.basic ~consensus ~dissemination ?trace_sample ()
    | "alt" ->
      Factory.alternative ~consensus ~checkpoint_period ~delta ?window
        ~dissemination ?trace_sample ()
    | "throughput" -> Factory.throughput ~consensus ?window ?trace_sample ()
    | "naive" -> Factory.naive ~consensus ()
    | "ct" -> Abcast_baseline.Ct_abcast.stack ~consensus ()
    | s ->
      failwith
        (Printf.sprintf "unknown stack %S (basic|alt|throughput|naive|ct)" s)
  in
  if shards < 1 then failwith "--shards must be >= 1"
  else Factory.sharded ~shards base

(* Histogram series worth a row in the end-of-run latency table. *)
let is_latency_series name =
  List.exists
    (fun p -> String.starts_with ~prefix:p name)
    [ "stage."; "cons."; "wal_"; "file_"; "lat_" ]

let parse_fsync s =
  match Abcast_store.Durable.policy_of_string s with
  | Ok p -> p
  | Error msg ->
    Printf.eprintf "bad --fsync %S: %s\n" s msg;
    exit 3

let run_cmd stack consensus window topo shards partitioned_kv n seed msgs loss
    dup crashes trace_on trace_out backend fsync check =
  let consensus = if consensus = "coord" then `Coord else `Paxos in
  let stack_mod =
    make_stack stack consensus 50_000 4 ~window ~topo ~shards ()
  in
  let net = Net.create ~loss ~dup () in
  let trace =
    Trace.create ~enabled:(trace_on || trace_out <> None) ~echo:trace_on ()
  in
  let fsync = parse_fsync fsync in
  let storage_dir =
    (* Durable backends need a scratch directory; memory needs none. *)
    lazy
      (let d =
         Filename.concat (Filename.get_temp_dir_name ())
           (Printf.sprintf "abcast-sim-run-%d" (Unix.getpid ()))
       in
       (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
       d)
  in
  let storage =
    match backend with
    | "memory" -> None
    | ("files" | "wal") as b ->
      let backend = if b = "wal" then `Wal else `Files in
      Some
        (fun ~metrics ~node ->
          Abcast_sim.Storage.create
            ~dir:(Filename.concat (Lazy.force storage_dir)
                    (Printf.sprintf "node%d" node))
            ~backend ~fsync ~metrics ~node ())
    | s ->
      Printf.eprintf "unknown --backend %S (expected memory|files|wal)\n" s;
      exit 3
  in
  let cluster = Cluster.create stack_mod ~seed ~n ~net ~trace ?storage () in
  List.iter
    (fun (node, from_, until) ->
      Cluster.at cluster from_ (fun () -> Cluster.crash cluster node);
      if until > from_ then
        Cluster.at cluster until (fun () -> Cluster.recover cluster node))
    crashes;
  let rng = Rng.create (seed + 1) in
  let stop = 1_000 + (msgs * 1_500) in
  let count =
    if partitioned_kv then begin
      (* KV-command workload: each command is pinned to the group that
         owns its key, so per-key order survives the sharding. *)
      let t = ref 1_000 in
      let c = ref 0 in
      while !t < stop do
        let key = Printf.sprintf "k%d" (Rng.int rng 200) in
        let cmd =
          if Rng.int rng 10 = 0 then Kv.del_cmd ~key
          else Kv.set_cmd ~key ~value:(Printf.sprintf "v%d" !c)
        in
        let group = Partitioned_kv.shard_of_key ~shards key in
        let node = Rng.int rng n in
        let at = !t in
        Cluster.at cluster at (fun () ->
            ignore (Cluster.broadcast cluster ~group ~node cmd));
        incr c;
        t := !t + 1 + int_of_float (Rng.exponential rng ~mean:1_500.0)
      done;
      !c
    end
    else
      Workload.open_loop cluster ~rng ~senders:(List.init n Fun.id)
        ~start:1_000 ~stop ~mean_gap:1_500 ~groups:shards ()
  in
  let ok =
    Cluster.run_until cluster ~until:2_000_000_000
      ~pred:(fun () ->
        Cluster.now cluster > stop
        && Cluster.all_caught_up cluster
             ~count:(List.length (Cluster.sent cluster))
             ())
      ()
  in
  let m = Cluster.metrics cluster in
  Printf.printf
    "\nstack=%s seed=%d n=%d: %d broadcasts attempted, %d injected (the \
     rest hit a down process), %s\n"
    stack seed n count
    (List.length (Cluster.sent cluster))
    (if ok then Printf.sprintf "quiesced at %d µs" (Cluster.now cluster)
     else "DID NOT QUIESCE");
  Table.print ~title:"per-process state"
    ~header:[ "process"; "up"; "round"; "delivered"; "unordered"; "log bytes" ]
    (List.init n (fun i ->
         [
           string_of_int i;
           (if Cluster.is_up cluster i then "yes" else "no");
           Table.num (Cluster.round cluster i);
           Table.num (Cluster.delivered_count cluster i);
           Table.num (Cluster.unordered_count cluster i);
           Table.num (Cluster.retained_bytes cluster i);
         ]));
  if shards > 1 then
    Table.print ~title:"per-group delivered"
      ~header:("process" :: List.init shards (fun g -> Printf.sprintf "g%d" g))
      (List.init n (fun i ->
           string_of_int i
           :: List.init shards (fun g ->
                  Table.num (Cluster.delivered_count ~group:g cluster i))));
  Table.print ~title:"run totals"
    ~header:[ "metric"; "value" ]
    [
      [ "net messages"; Table.num (Metrics.sum m "msgs_sent") ];
      [ "log ops (consensus)"; Table.num (Metrics.sum_prefix m "log_ops.consensus") ];
      [ "log ops (abcast)"; Table.num (Metrics.sum_prefix m "log_ops.abcast") ];
      [ "mean delivery latency µs"; Table.flt (Metrics.mean m "lat_deliver") ];
      [ "crashes"; Table.num (Metrics.sum m "crashes") ];
      [ "state transfers"; Table.num (Metrics.sum m "state_transfers_applied") ];
      [ "wal appends"; Table.num (Metrics.sum m "wal_appends") ];
      [ "wal fsyncs"; Table.num (Metrics.sum m "wal_fsyncs") ];
    ];
  let lat_rows =
    List.filter_map
      (fun name ->
        if not (is_latency_series name) then None
        else
          match Metrics.hist_summary m name with
          | Some (s : Abcast_util.Histogram.summary) when s.count > 0 ->
            Some
              [
                name;
                Table.num s.count;
                Table.flt s.p50;
                Table.flt s.p95;
                Table.flt s.p99;
                Table.flt s.max;
              ]
          | _ -> None)
      (Metrics.series_names m)
  in
  if lat_rows <> [] then
    Table.print ~title:"latency histograms (µs unless noted, all processes)"
      ~header:[ "series"; "count"; "p50"; "p95"; "p99"; "max" ]
      lat_rows;
  (match trace_out with
  | Some path ->
    let oc = open_out path in
    output_string oc (Trace.to_chrome_json trace);
    close_out oc;
    Printf.printf "chrome trace written to %s (load in chrome://tracing)\n"
      path
  | None -> ());
  if partitioned_kv then begin
    (* Rebuild a partitioned replica per process from its group-wise
       delivery tails; equal digests witness partition-wise convergence. *)
    let up = List.filter (Cluster.is_up cluster) (List.init n Fun.id) in
    let digests =
      List.map
        (fun i ->
          let pkv = Partitioned_kv.create ~shards in
          for g = 0 to shards - 1 do
            List.iter
              (fun pl -> Partitioned_kv.deliver pkv ~group:g pl)
              (Cluster.delivered_tail ~group:g cluster i)
          done;
          (Partitioned_kv.digest pkv, Partitioned_kv.size pkv,
           Partitioned_kv.applied pkv))
        up
    in
    match digests with
    | [] -> ()
    | (d0, sz, ap) :: _ ->
      let agree = List.for_all (fun (d, _, _) -> d = d0) digests in
      Printf.printf
        "partitioned kv: %d commands applied over %d partitions, %d keys, \
         replicas convergent: %b\n"
        ap shards sz agree;
      if not agree then exit 1
  end;
  if check then begin
    match Checks.all ~cluster ~good:(List.init n Fun.id) () with
    | Ok () -> print_endline "properties: OK (validity, integrity, total order, termination)"
    | Error e ->
      Printf.eprintf "PROPERTY VIOLATION: %s\n" e;
      exit 1
  end;
  if not ok then exit 2

let soak_cmd stack consensus window topo n n_bad episodes seed0 =
  let consensus = if consensus = "coord" then `Coord else `Paxos in
  let violations = ref 0 in
  for e = 1 to episodes do
    let seed = seed0 + (e * 997) in
    let stack_mod =
      make_stack stack consensus 30_000 4 ~window ~topo ~shards:1 ()
    in
    let cluster = Cluster.create stack_mod ~seed ~n () in
    let lemmas = Abcast_harness.Lemmas.attach cluster () in
    let rng = Rng.create (seed + 31) in
    let stability = 150_000 in
    let plan = Faults.plan_random ~rng ~n ~n_bad ~stability () in
    List.iter
      (fun ({ time; node; kind } : Faults.event) ->
        match kind with
        | Faults.Crash -> Cluster.at cluster time (fun () -> Cluster.crash cluster node)
        | Faults.Recover ->
          Cluster.at cluster time (fun () -> Cluster.recover cluster node))
      plan.events;
    ignore
      (Workload.open_loop cluster ~rng ~senders:(List.init n Fun.id)
         ~start:1_000 ~stop:stability ~mean_gap:4_000 ());
    Cluster.run cluster ~until:(plan.horizon + 4_000_000);
    let combined =
      match Checks.all ~cluster ~good:(Faults.good_nodes plan) () with
      | Error _ as e -> e
      | Ok () -> Abcast_harness.Lemmas.report lemmas
    in
    (match combined with
    | Ok () ->
      Printf.printf "episode %3d (seed %7d): ok, %d delivered, %d crashes\n" e
        seed
        (Cluster.delivered_count cluster (List.hd (Faults.good_nodes plan)))
        (Metrics.sum (Cluster.metrics cluster) "crashes")
    | Error msg ->
      incr violations;
      Printf.printf "episode %3d (seed %7d): VIOLATION: %s\n" e seed msg)
  done;
  Printf.printf "\n%d episodes, %d violations\n" episodes !violations;
  if !violations > 0 then exit 1

(* SIGUSR1 = "dump your black box now": persist every node's flight
   recorder and (when snapshots are being written) append one extra JSONL
   metrics line, so an operator can interrogate a live cluster without
   stopping it. *)
let install_sigusr1 rt metrics_out =
  if Sys.os_type = "Unix" then
    ignore
      (Sys.signal Sys.sigusr1
         (Sys.Signal_handle
            (fun _ ->
              Abcast_live.Runtime.request_dump rt;
              match metrics_out with
              | Some path ->
                (try
                   let oc =
                     open_out_gen [ Open_append; Open_creat ] 0o644 path
                   in
                   output_string oc (Abcast_live.Runtime.json_snapshot rt);
                   output_char oc '\n';
                   close_out_noerr oc
                 with Sys_error _ -> ())
              | None -> ())))

let live_cmd stack consensus window topo shards partitioned_kv n msgs base_port
    backend fsync metrics_port metrics_interval metrics_out trace_sample
    dir_opt min_rate =
  let consensus = if consensus = "coord" then `Coord else `Paxos in
  let trace_sample = if trace_sample > 0 then Some trace_sample else None in
  let stack_mod =
    make_stack stack consensus 100_000 3 ~window ~topo ~shards ?trace_sample ()
  in
  let backend =
    match backend with
    | "wal" -> `Wal
    | "files" -> `Files
    | s ->
      Printf.eprintf "unknown --backend %S (expected wal|files)\n" s;
      exit 3
  in
  let fsync = parse_fsync fsync in
  let dir =
    match dir_opt with
    | Some d -> d
    | None ->
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "abcast-live-cli-%d" (Unix.getpid ()))
  in
  (* Per-node partitioned replicas, fed from the group-aware A-deliver
     upcall in each node's own thread; read only after convergence. *)
  let pkvs =
    if partitioned_kv then
      Some (Array.init n (fun _ -> Partitioned_kv.create ~shards))
    else None
  in
  let on_deliver =
    match pkvs with
    | Some arr ->
      fun ~node ~group pl -> Partitioned_kv.deliver arr.(node) ~group pl
    | None -> fun ~node:_ ~group:_ _ -> ()
  in
  match
    Abcast_live.Runtime.create stack_mod ~n ~base_port ~dir ~backend ~fsync
      ~on_deliver ?metrics_port ~metrics_interval ?metrics_out ()
  with
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "cannot create sockets: %s
" (Unix.error_message e);
    exit 3
  | live ->
    install_sigusr1 live metrics_out;
    Fun.protect ~finally:(fun () -> Abcast_live.Runtime.shutdown live)
    @@ fun () ->
    Printf.printf
      "%d live processes on udp/127.0.0.1:%d.. (storage: %s, backend: %s, \
       fsync: %s)
" n
      base_port dir
      (match backend with `Wal -> "wal" | `Files -> "files")
      (Abcast_store.Durable.policy_to_string fsync);
    (match metrics_port with
    | Some p ->
      Printf.printf "metrics: http://127.0.0.1:%d/metrics (Prometheus text)\n"
        p
    | None -> ());
    (match metrics_out with
    | Some f ->
      Printf.printf "metrics: JSONL snapshots to %s every %.1fs\n" f
        metrics_interval
    | None -> ());
    let t0 = Unix.gettimeofday () in
    for j = 0 to msgs - 1 do
      if partitioned_kv then begin
        let key = Printf.sprintf "k%d" (j mod 97) in
        Abcast_live.Runtime.broadcast live
          ~group:(Partitioned_kv.shard_of_key ~shards key)
          ~node:(j mod n)
          (Kv.set_cmd ~key ~value:(Printf.sprintf "v%d" j))
      end
      else
        Abcast_live.Runtime.broadcast live ~node:(j mod n)
          (Printf.sprintf "m%d" j)
    done;
    let deadline = Unix.gettimeofday () +. 30.0 in
    let all () =
      List.for_all
        (fun i -> Abcast_live.Runtime.delivered_count live i >= msgs)
        (List.init n Fun.id)
    in
    while (not (all ())) && Unix.gettimeofday () < deadline do
      Thread.delay 0.02
    done;
    if not (all ()) then begin
      Printf.eprintf "did not converge within 30s
";
      exit 2
    end;
    let dt = Unix.gettimeofday () -. t0 in
    let rate = float_of_int msgs /. dt in
    let seqs =
      List.map (fun i -> Abcast_live.Runtime.delivered_data live i) (List.init n Fun.id)
    in
    let agree = List.for_all (fun s -> s = List.hd seqs) seqs in
    Printf.printf
      "%d messages totally ordered at %d processes in %.0f ms (%.0f msg/s);        orders identical: %b
"
      msgs n (dt *. 1000.0) rate agree;
    if shards > 1 then
      Table.print ~title:"per-group delivered"
        ~header:
          ("process" :: List.init shards (fun g -> Printf.sprintf "g%d" g))
        (List.init n (fun i ->
             string_of_int i
             :: List.init shards (fun g ->
                    Table.num
                      (Abcast_live.Runtime.delivered_count ~group:g live i))));
    (match pkvs with
    | Some arr ->
      let digests = Array.to_list (Array.map Partitioned_kv.digest arr) in
      let convergent = List.for_all (fun d -> d = List.hd digests) digests in
      Printf.printf
        "partitioned kv: %d keys per replica, replicas convergent: %b\n"
        (Partitioned_kv.size arr.(0))
        convergent;
      if not convergent then exit 1
    | None -> ());
    (* end-of-run observability summary: network drops + WAL counters *)
    Table.print ~title:"per-process network and WAL counters"
      ~header:
        [ "process"; "tx oversize"; "rx undecodable"; "wal appends"; "wal fsyncs" ]
      (List.init n (fun i ->
           let ns = Abcast_live.Runtime.net_stats live i in
           let ctr name =
             match
               List.assoc_opt name (Abcast_live.Runtime.node_counters live i)
             with
             | Some v -> Table.num v
             | None -> "-"
           in
           [
             string_of_int i;
             Table.num ns.Abcast_live.Runtime.tx_oversize;
             Table.num ns.Abcast_live.Runtime.rx_undecodable;
             ctr "wal_appends";
             ctr "wal_fsyncs";
           ]));
    let lat_rows =
      List.concat_map
        (fun i ->
          Abcast_live.Runtime.hist_summaries live i
          |> List.filter (fun (name, _) -> is_latency_series name)
          |> List.map (fun (name, (s : Abcast_util.Histogram.summary)) ->
                 [
                   string_of_int i;
                   name;
                   Table.num s.count;
                   Table.flt s.p50;
                   Table.flt s.p95;
                   Table.flt s.max;
                 ]))
        (List.init n Fun.id)
    in
    if lat_rows <> [] then
      Table.print ~title:"latency histograms (µs, per process)"
        ~header:[ "process"; "series"; "count"; "p50"; "p95"; "max" ]
        lat_rows;
    (match min_rate with
    | Some floor when rate < floor ->
      Printf.eprintf "throughput %.0f msg/s is below the --min-rate floor %.0f\n"
        rate floor;
      exit 1
    | _ -> ());
    if not agree then exit 1

let service_cmd n shards read_mode clients rate duration write_pct lin_pct
    lease_ms timeout base_port backend fsync kills seed trace_sample dir_opt
    metrics_port metrics_out history_out min_rate =
  let module Service = Abcast_service.Service in
  let module Loadgen = Abcast_service.Loadgen in
  let module Runtime = Abcast_live.Runtime in
  let read_mode =
    match Service.read_mode_of_string read_mode with
    | Some m -> m
    | None ->
      Printf.eprintf
        "unknown --read-mode %S (expected broadcast|read-index|stale)\n"
        read_mode;
      exit 3
  in
  let backend =
    match backend with
    | "wal" -> `Wal
    | "files" -> `Files
    | s ->
      Printf.eprintf "unknown --backend %S (expected wal|files)\n" s;
      exit 3
  in
  let fsync = parse_fsync fsync in
  let dir =
    match dir_opt with
    | Some d -> d
    | None ->
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "abcast-service-cli-%d" (Unix.getpid ()))
  in
  let cfg =
    {
      Service.default_config with
      n;
      shards;
      read_mode;
      lease_ms;
      max_sessions = max 4096 (2 * clients);
    }
  in
  let trace_sample = if trace_sample > 0 then Some trace_sample else None in
  match
    Service.create ~base_port ~dir ~backend ~fsync ?trace_sample ?metrics_port
      ~metrics_interval:1.0 ?metrics_out cfg
  with
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "cannot create sockets: %s\n" (Unix.error_message e);
    exit 3
  | svc ->
    Fun.protect ~finally:(fun () -> Service.shutdown svc)
    @@ fun () ->
    let rt = Service.runtime svc in
    install_sigusr1 rt metrics_out;
    Service.start svc;
    Printf.printf
      "service: %d processes, %d group(s), reads=%s, %d clients at %.0f \
       ops/s for %.1fs (storage: %s)\n%!"
      n shards
      (Service.read_mode_to_string read_mode)
      clients rate duration dir;
    (* fault schedule: one timer thread walks the kill/recover events *)
    let events =
      List.concat_map
        (fun (node, at, recover_at) ->
          (at, `Crash node)
          :: (if recover_at > at then [ (recover_at, `Recover node) ] else []))
        kills
      |> List.sort compare
    in
    let t0 = Unix.gettimeofday () in
    let killer =
      Thread.create
        (fun () ->
          List.iter
            (fun (at, ev) ->
              let d = t0 +. at -. Unix.gettimeofday () in
              if d > 0. then Thread.delay d;
              match ev with
              | `Crash node ->
                Printf.printf "[%.2fs] killing node %d\n%!" at node;
                Runtime.crash rt node;
                (* failover: hand the lease role to the next live node *)
                if read_mode = Service.Read_index
                   && Service.claimant svc = node
                then begin
                  let next = ref ((node + 1) mod n) in
                  while not (Runtime.is_up rt !next) && !next <> node do
                    next := (!next + 1) mod n
                  done;
                  Printf.printf "[%.2fs] claimant -> node %d\n%!" at !next;
                  Service.claim svc ~node:!next
                end
              | `Recover node ->
                Printf.printf "[%.2fs] recovering node %d\n%!" at node;
                Runtime.recover rt node)
            events)
        ()
    in
    let lcfg =
      { Loadgen.clients; rate; duration; write_pct; lin_pct; timeout; seed }
    in
    let hist =
      Option.map (fun path -> Abcast_sim.History.create ~path) history_out
    in
    let report = Loadgen.run ?history:hist svc lcfg in
    Option.iter Abcast_sim.History.close hist;
    (match history_out with
    | Some path ->
      Printf.printf "history: %d client ops captured to %s\n%!"
        (match hist with Some h -> Abcast_sim.History.events h | None -> 0)
        path
    | None -> ());
    Thread.join killer;
    (* stop the lease marker stream, then wait for the live replicas to
       converge before auditing *)
    Service.stop_maintenance svc;
    let live () = List.filter (Runtime.is_up rt) (List.init n Fun.id) in
    let converged () =
      match live () with
      | [] -> false
      | l ->
        let ds = List.map (fun i -> Service.digest svc ~node:i) l in
        List.for_all (fun d -> d = List.hd ds) ds
    in
    let deadline = Unix.gettimeofday () +. 30. in
    let stable = ref false in
    while (not !stable) && Unix.gettimeofday () < deadline do
      if converged () then begin
        let d0 = Service.digest svc ~node:(List.hd (live ())) in
        Thread.delay 0.3;
        if converged () && Service.digest svc ~node:(List.hd (live ())) = d0
        then stable := true
      end
      else Thread.delay 0.1
    done;
    let cls name (s : Abcast_util.Histogram.summary) =
      [
        name;
        Table.num s.count;
        Printf.sprintf "%.0f" (float_of_int s.count /. report.Loadgen.wall);
        Table.flt s.p50;
        Table.flt s.p95;
        Table.flt s.p99;
        Table.flt s.max;
      ]
    in
    Table.print ~title:"service SLOs (latency µs)"
      ~header:[ "class"; "count"; "ops/s"; "p50"; "p95"; "p99"; "max" ]
      [
        cls "write" report.Loadgen.write;
        cls "lin read" report.Loadgen.lin;
        cls "stale read" report.Loadgen.stale;
      ];
    Table.print ~title:"run totals"
      ~header:[ "metric"; "value" ]
      [
        [ "issued"; Table.num report.Loadgen.issued ];
        [ "completed"; Table.num report.Loadgen.completed ];
        [ "retries"; Table.num report.Loadgen.retries ];
        [ "shed (all clients busy)"; Table.num report.Loadgen.shed ];
        [ "lease reads bounced"; Table.num report.Loadgen.not_ready ];
        [ "failed (drain expired)"; Table.num report.Loadgen.failed ];
        [ "wall seconds"; Printf.sprintf "%.2f" report.Loadgen.wall ];
      ];
    if not !stable then begin
      Printf.eprintf "replicas did not converge within 30s of the run end\n";
      exit 2
    end;
    let audit_node = List.hd (live ()) in
    let violations = Loadgen.check_exactly_once svc report ~node:audit_node in
    let digests =
      List.map (fun i -> (i, Service.digest svc ~node:i)) (live ())
    in
    let agree =
      List.for_all (fun (_, d) -> d = snd (List.hd digests)) digests
    in
    Printf.printf
      "exactly-once audit at node %d: %d violations; %d live replicas \
       convergent: %b\n"
      audit_node (List.length violations)
      (List.length digests) agree;
    List.iter (fun v -> Printf.eprintf "VIOLATION: %s\n" v) violations;
    if violations <> [] || not agree then exit 1;
    (match min_rate with
    | Some floor ->
      let rate = float_of_int report.Loadgen.completed /. report.Loadgen.wall in
      if rate < floor then begin
        Printf.eprintf
          "completed rate %.0f ops/s is below the --min-rate floor %.0f\n"
          rate floor;
        exit 1
      end
    | None -> ())

let doctor_cmd dir verbose max_traces min_complete audit =
  let module Doctor = Abcast_harness.Doctor in
  match Doctor.analyze ~max_traces ~audit ~dir () with
  | Error msg ->
    Printf.eprintf "doctor: %s\n" msg;
    exit 2
  | Ok r ->
    print_string (Doctor.render ~verbose r);
    let complete = Doctor.reconstructed r in
    let failed = ref false in
    if Doctor.has_anomalies r then begin
      Printf.eprintf "doctor: %d anomalies\n" (List.length r.Doctor.anomalies);
      failed := true
    end;
    if complete < min_complete then begin
      Printf.eprintf
        "doctor: only %d traces fully reconstructed (--min-complete %d)\n"
        complete min_complete;
      failed := true
    end;
    if !failed then exit 1

(* ---- cmdliner plumbing ---- *)
open Cmdliner

let stack_arg =
  Arg.(
    value
    & opt string "basic"
    & info [ "stack" ] ~doc:"basic|alt|throughput|naive|ct")

let consensus_arg =
  Arg.(value & opt string "paxos" & info [ "consensus" ] ~doc:"paxos|coord")

let window_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "window" ]
        ~doc:
          "consensus pipeline depth (alt and throughput stacks; defaults to \
           the stack's own: 1 for alt, 4 for throughput)")

let topo_arg =
  Arg.(
    value
    & opt string "gossip"
    & info [ "topo" ]
        ~doc:
          "dissemination topology for basic/alt: gossip|ring (the throughput \
           stack is always ring)")

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards" ]
        ~doc:
          "multiplex $(docv) independent broadcast groups over the stack \
           (one socket and one WAL per process; per-group total order, \
           near-linear aggregate throughput)"
        ~docv:"S")

let partitioned_kv_arg =
  Arg.(
    value
    & flag
    & info [ "partitioned-kv" ]
        ~doc:
          "drive a hash-partitioned replicated key-value store: commands \
           route to the group owning their key, and replica convergence is \
           checked partition-wise at the end")

let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~doc:"number of processes")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"root RNG seed")

let crash_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ a; b; c ] -> Ok (int_of_string a, int_of_string b, int_of_string c)
    | [ a; b ] -> Ok (int_of_string a, int_of_string b, -1)
    | _ -> Error (`Msg "expected NODE:FROM[:UNTIL] in µs")
  in
  let print ppf (a, b, c) = Format.fprintf ppf "%d:%d:%d" a b c in
  Arg.conv (parse, print)

let run_t =
  let msgs = Arg.(value & opt int 50 & info [ "msgs" ] ~doc:"broadcast count") in
  let loss = Arg.(value & opt float 0.0 & info [ "loss" ] ~doc:"message loss probability") in
  let dup = Arg.(value & opt float 0.0 & info [ "dup" ] ~doc:"duplication probability") in
  let crashes =
    Arg.(value & opt_all crash_conv [] & info [ "crash" ] ~doc:"NODE:FROM[:UNTIL] fault (repeatable)")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"echo the protocol trace") in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ]
          ~doc:
            "write a Chrome trace-event JSON of the run to $(docv) (open in \
             chrome://tracing or Perfetto)"
          ~docv:"FILE")
  in
  let backend =
    Arg.(
      value
      & opt string "memory"
      & info [ "backend" ] ~doc:"storage backend: memory|files|wal")
  in
  let fsync =
    Arg.(
      value
      & opt string "every:64:20"
      & info [ "fsync" ] ~doc:"durability policy: always|never|every:OPS:MS")
  in
  let check = Arg.(value & flag & info [ "check" ] ~doc:"verify the four properties at the end") in
  Term.(
    const run_cmd $ stack_arg $ consensus_arg $ window_arg $ topo_arg
    $ shards_arg $ partitioned_kv_arg $ n_arg $ seed_arg $ msgs $ loss $ dup
    $ crashes $ trace $ trace_out $ backend $ fsync $ check)

let trace_sample_arg =
  Arg.(
    value
    & opt int 0
    & info [ "trace-sample" ]
        ~doc:
          "sample every $(docv)-th broadcast per process with a causal \
           trace id carried on the wire and stamped into each node's \
           flight recorder at every stage; 0 disables (zero wire bytes)"
        ~docv:"K")

let dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dir" ]
        ~doc:
          "storage directory (default: a fresh per-PID directory under \
           the system temp dir). Flight recorders persist to \
           $(docv)/node<i>/flight.bin — point `abcast-sim doctor` here \
           afterwards. Send the process SIGUSR1 to force an immediate \
           flight + metrics dump on a running cluster."
        ~docv:"DIR")

let live_t =
  let msgs = Arg.(value & opt int 30 & info [ "msgs" ] ~doc:"broadcast count") in
  let port = Arg.(value & opt int 7480 & info [ "port" ] ~doc:"UDP base port") in
  let backend =
    Arg.(value & opt string "wal" & info [ "backend" ] ~doc:"storage backend: wal|files")
  in
  let fsync =
    Arg.(
      value
      & opt string "every:64:20"
      & info [ "fsync" ] ~doc:"durability policy: always|never|every:OPS:MS")
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ]
          ~doc:"serve Prometheus text metrics on 127.0.0.1:$(docv)"
          ~docv:"PORT")
  in
  let metrics_interval =
    Arg.(
      value
      & opt float 1.0
      & info [ "metrics-interval" ]
          ~doc:"seconds between JSONL metric snapshots (with --metrics-out)")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ]
          ~doc:"append one JSON metrics snapshot per interval to $(docv)"
          ~docv:"FILE")
  in
  let min_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-rate" ]
          ~doc:
            "fail (exit 1) if end-to-end throughput lands below $(docv) \
             msg/s — a conservative CI floor, not a benchmark"
          ~docv:"MSG_PER_S")
  in
  Term.(
    const live_cmd $ stack_arg $ consensus_arg $ window_arg $ topo_arg
    $ shards_arg $ partitioned_kv_arg $ n_arg $ msgs $ port $ backend $ fsync
    $ metrics_port $ metrics_interval $ metrics_out $ trace_sample_arg
    $ dir_arg $ min_rate)

let service_t =
  let clients =
    Arg.(value & opt int 200 & info [ "clients" ] ~doc:"concurrent client sessions")
  in
  let rate =
    Arg.(
      value
      & opt float 500.
      & info [ "rate" ] ~doc:"target aggregate arrival rate, ops/s (open loop)")
  in
  let duration =
    Arg.(value & opt float 5.0 & info [ "duration" ] ~doc:"seconds of load")
  in
  let read_mode =
    Arg.(
      value
      & opt string "broadcast"
      & info [ "read-mode" ]
          ~doc:
            "how linearizable reads are served: broadcast (a Get through \
             the total order), read-index (local read under a leader \
             lease), stale (local read, no guarantee)")
  in
  let write_pct =
    Arg.(value & opt int 50 & info [ "write-pct" ] ~doc:"percent of ops that are writes")
  in
  let lin_pct =
    Arg.(
      value
      & opt int 30
      & info [ "lin-pct" ]
          ~doc:"percent of ops that are linearizable reads (rest are stale)")
  in
  let lease_ms =
    Arg.(value & opt float 200. & info [ "lease-ms" ] ~doc:"read-index lease window, ms")
  in
  let timeout =
    Arg.(value & opt float 0.5 & info [ "timeout" ] ~doc:"per-attempt retry deadline, s")
  in
  let port = Arg.(value & opt int 7520 & info [ "port" ] ~doc:"UDP base port") in
  let backend =
    Arg.(value & opt string "wal" & info [ "backend" ] ~doc:"storage backend: wal|files")
  in
  let fsync =
    Arg.(
      value
      & opt string "every:64:20"
      & info [ "fsync" ] ~doc:"durability policy: always|never|every:OPS:MS")
  in
  let kill_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ a; b; c ] ->
        Ok (int_of_string a, float_of_string b, float_of_string c)
      | [ a; b ] -> Ok (int_of_string a, float_of_string b, -1.)
      | _ -> Error (`Msg "expected NODE:AT[:RECOVER] in seconds")
      | exception _ -> Error (`Msg "expected NODE:AT[:RECOVER] in seconds")
    in
    let print ppf (a, b, c) = Format.fprintf ppf "%d:%g:%g" a b c in
    Arg.conv (parse, print)
  in
  let kills =
    Arg.(
      value
      & opt_all kill_conv []
      & info [ "kill" ]
          ~doc:
            "kill node NODE AT seconds into the run, optionally RECOVER it \
             later (repeatable); the lease role fails over automatically")
  in
  let min_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-rate" ]
          ~doc:"fail (exit 1) if the completed-op rate lands below $(docv)"
          ~docv:"OPS_PER_S")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ]
          ~doc:
            "append one JSON metrics snapshot per second to $(docv); the \
             file rotates by size ($(docv).1 … keep 4)"
          ~docv:"FILE")
  in
  let history_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "history-out" ]
          ~doc:
            "record every completed client op (kind, key, invocation and \
             response wall-clock, result) to the binary history file \
             $(docv) — feed it to `doctor --audit` together with the run \
             directory's flight dumps"
          ~docv:"FILE")
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ]
          ~doc:
            "serve Prometheus metrics on 127.0.0.1:$(docv)/metrics, \
             including the per-class abcast_service_request_us request \
             histograms (class=write|lin|stale, labelled by shard group)"
          ~docv:"PORT")
  in
  Term.(
    const service_cmd $ n_arg $ shards_arg $ read_mode $ clients $ rate
    $ duration $ write_pct $ lin_pct $ lease_ms $ timeout $ port $ backend
    $ fsync $ kills $ seed_arg $ trace_sample_arg $ dir_arg $ metrics_port
    $ metrics_out $ history_out $ min_rate)

let doctor_t =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ]
          ~doc:
            "run directory to analyze (the --dir of a live/service run): \
             node<i>/flight.bin dumps plus any .jsonl metrics snapshots"
          ~docv:"DIR")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"print every trace's timeline")
  in
  let max_traces =
    Arg.(
      value
      & opt int 64
      & info [ "max-traces" ] ~doc:"cap on traces reconstructed" ~docv:"N")
  in
  let min_complete =
    Arg.(
      value
      & opt int 0
      & info [ "min-complete" ]
          ~doc:
            "fail (exit 1) unless at least $(docv) sampled traces were \
             fully reconstructed end to end — the CI guard that a killed \
             node's black box still explains its final broadcasts"
          ~docv:"N")
  in
  let audit =
    Arg.(
      value
      & flag
      & info [ "audit" ]
          ~doc:
            "cross-check delivery chain hashes across nodes and merge any \
             *.history client captures in DIR, verifying real-time order \
             (a write acked before a linearizable read's invocation must \
             be visible in its result); divergence exits 1 naming the \
             node, group and position")
  in
  Term.(const doctor_cmd $ dir $ verbose $ max_traces $ min_complete $ audit)

let soak_t =
  let n_bad = Arg.(value & opt int 1 & info [ "bad" ] ~doc:"number of bad processes") in
  let episodes = Arg.(value & opt int 20 & info [ "episodes" ] ~doc:"number of episodes") in
  Term.(
    const soak_cmd $ stack_arg $ consensus_arg $ window_arg $ topo_arg $ n_arg
    $ n_bad $ episodes $ seed_arg)

let cmds =
  Cmd.group
    (Cmd.info "abcast-sim" ~doc:"crash-recovery atomic broadcast simulator")
    [
      Cmd.v (Cmd.info "run" ~doc:"run one workload on a configured stack") run_t;
      Cmd.v (Cmd.info "soak" ~doc:"randomized fault soak with property checks") soak_t;
      Cmd.v
        (Cmd.info "live"
           ~doc:"run the stack over real UDP sockets and file storage")
        live_t;
      Cmd.v
        (Cmd.info "service"
           ~doc:
             "drive the client service layer (exactly-once sessions, lease \
              reads) under open-loop load on a live cluster; SIGUSR1 dumps \
              flight recorders + a metrics snapshot without stopping it")
        service_t;
      Cmd.v
        (Cmd.info "doctor"
           ~doc:
             "analyze a live run directory offline: merge per-node flight \
              dumps and metrics snapshots into causal per-trace timelines, \
              break latency into stages, and flag protocol anomalies \
              (stuck instances, delivery gaps, dedup violations, lease \
              overlaps); exits non-zero on anomaly for CI use")
        doctor_t;
    ]

let () = exit (Cmd.eval cmds)
