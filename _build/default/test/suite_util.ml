(* Unit and property tests for abcast.util: Rng and Heap. *)

open Helpers
module Heap = Abcast_util.Heap

let stream rng k = List.init k (fun _ -> Rng.bits64 rng)

let rng_tests =
  [
    test "same seed, same stream" (fun () ->
        let a = Rng.create 7 and b = Rng.create 7 in
        Alcotest.(check (list int64)) "streams" (stream a 50) (stream b 50));
    test "different seeds differ" (fun () ->
        let a = Rng.create 7 and b = Rng.create 8 in
        Alcotest.(check bool) "differ" true (stream a 10 <> stream b 10));
    test "copy replays the future" (fun () ->
        let a = Rng.create 42 in
        ignore (stream a 5);
        let b = Rng.copy a in
        Alcotest.(check (list int64)) "replay" (stream a 20) (stream b 20));
    test "split decorrelates" (fun () ->
        let a = Rng.create 42 in
        let b = Rng.split a in
        Alcotest.(check bool) "differ" true (stream a 10 <> stream b 10));
    test "int rejects non-positive bound" (fun () ->
        let rng = Rng.create 1 in
        Alcotest.check_raises "zero" (Invalid_argument "Rng.int: bound must be positive")
          (fun () -> ignore (Rng.int rng 0)));
    test "chance extremes" (fun () ->
        let rng = Rng.create 3 in
        for _ = 1 to 100 do
          Alcotest.(check bool) "p=0" false (Rng.chance rng 0.0);
          Alcotest.(check bool) "p=1" true (Rng.chance rng 1.0)
        done);
    test "exponential is positive" (fun () ->
        let rng = Rng.create 4 in
        for _ = 1 to 1000 do
          Alcotest.(check bool) "pos" true (Rng.exponential rng ~mean:5.0 >= 0.0)
        done);
    test "exponential mean is roughly right" (fun () ->
        let rng = Rng.create 5 in
        let n = 20_000 in
        let sum = ref 0.0 in
        for _ = 1 to n do
          sum := !sum +. Rng.exponential rng ~mean:10.0
        done;
        let mean = !sum /. float_of_int n in
        Alcotest.(check bool)
          (Printf.sprintf "mean %.2f in [9;11]" mean)
          true
          (mean > 9.0 && mean < 11.0));
    test "pick returns an element" (fun () ->
        let rng = Rng.create 6 in
        let a = [| 1; 2; 3 |] in
        for _ = 1 to 100 do
          Alcotest.(check bool) "member" true (Array.mem (Rng.pick rng a) a)
        done);
    test "pick rejects empty" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array")
          (fun () -> ignore (Rng.pick (Rng.create 1) [||])));
    test "shuffle permutes" (fun () ->
        let rng = Rng.create 9 in
        let a = Array.init 50 Fun.id in
        let b = Array.copy a in
        Rng.shuffle rng b;
        Alcotest.(check bool) "moved something" true (a <> b);
        Array.sort compare b;
        Alcotest.(check (array int)) "same multiset" a b);
  ]

let rng_props =
  [
    QCheck.Test.make ~name:"Rng.int in bounds" ~count:500
      QCheck.(pair small_int (int_range 1 1_000_000))
      (fun (seed, bound) ->
        let rng = Rng.create seed in
        let v = Rng.int rng bound in
        v >= 0 && v < bound);
    QCheck.Test.make ~name:"Rng.float in bounds" ~count:500
      QCheck.(pair small_int (float_range 0.001 1e9))
      (fun (seed, bound) ->
        let rng = Rng.create seed in
        let v = Rng.float rng bound in
        v >= 0.0 && v < bound);
  ]

let drain h =
  let rec go acc =
    match Heap.pop h with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

let heap_tests =
  [
    test "empty heap" (fun () ->
        let h = Heap.create ~cmp:compare () in
        Alcotest.(check int) "len" 0 (Heap.length h);
        Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
        Alcotest.(check (option int)) "peek" None (Heap.peek h);
        Alcotest.(check (option int)) "pop" None (Heap.pop h));
    test "push/pop sorts" (fun () ->
        let h = Heap.create ~cmp:compare () in
        List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
        Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 8; 9 ] (drain h));
    test "peek does not remove" (fun () ->
        let h = Heap.create ~cmp:compare () in
        Heap.push h 4;
        Heap.push h 2;
        Alcotest.(check (option int)) "peek" (Some 2) (Heap.peek h);
        Alcotest.(check int) "len" 2 (Heap.length h));
    test "duplicate keys kept" (fun () ->
        let h = Heap.create ~cmp:compare () in
        List.iter (Heap.push h) [ 3; 3; 3 ];
        Alcotest.(check (list int)) "all" [ 3; 3; 3 ] (drain h));
    test "ties break by secondary component" (fun () ->
        let h = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) () in
        (* Equal primary keys: heap order is unspecified, but with the
           engine's (time, seq) compare the sequence disambiguates. *)
        let h2 = Heap.create ~cmp:compare () in
        List.iter (Heap.push h2) [ (5, 2); (5, 0); (5, 1) ];
        Alcotest.(check (list (pair int int)))
          "fifo by seq"
          [ (5, 0); (5, 1); (5, 2) ]
          (drain h2);
        ignore h);
    test "clear empties" (fun () ->
        let h = Heap.create ~cmp:compare () in
        List.iter (Heap.push h) [ 1; 2 ];
        Heap.clear h;
        Alcotest.(check int) "len" 0 (Heap.length h);
        Alcotest.(check (option int)) "pop" None (Heap.pop h));
    test "to_list has all elements" (fun () ->
        let h = Heap.create ~cmp:compare () in
        List.iter (Heap.push h) [ 4; 1; 3 ];
        Alcotest.(check (list int)) "sorted view" [ 1; 3; 4 ]
          (List.sort compare (Heap.to_list h)));
    test "interleaved push/pop keeps order" (fun () ->
        let h = Heap.create ~cmp:compare () in
        List.iter (Heap.push h) [ 7; 3 ];
        Alcotest.(check (option int)) "pop1" (Some 3) (Heap.pop h);
        List.iter (Heap.push h) [ 1; 9 ];
        Alcotest.(check (option int)) "pop2" (Some 1) (Heap.pop h);
        Alcotest.(check (list int)) "rest" [ 7; 9 ] (drain h));
  ]

let heap_props =
  [
    QCheck.Test.make ~name:"heap sorts like List.sort" ~count:300
      QCheck.(list int)
      (fun xs ->
        let h = Heap.create ~cmp:compare () in
        List.iter (Heap.push h) xs;
        drain h = List.sort compare xs);
    QCheck.Test.make ~name:"heap length tracks pushes" ~count:300
      QCheck.(list small_int)
      (fun xs ->
        let h = Heap.create ~cmp:compare () in
        List.iter (Heap.push h) xs;
        Heap.length h = List.length xs);
  ]

let suite =
  ("util", rng_tests @ heap_tests
           @ List.map QCheck_alcotest.to_alcotest (rng_props @ heap_props))
