(* Adversarial crash/recovery schedules (experiment E9): randomized fault
   plans with the four properties checked over good processes. *)

open Helpers
module Factory = Abcast_core.Factory
module Faults = Abcast_sim.Faults

(* One randomized episode: build a plan, pump a workload from whichever
   processes are up, run past the stability horizon, check properties. *)
let episode ?(partition_churn = false) ?(compacted = false) ~stack ~seed ~n
    ~n_bad () =
  let cluster = Cluster.create stack ~seed ~n () in
  let lemmas = Abcast_harness.Lemmas.attach cluster () in
  let rng = Rng.create (seed + 7777) in
  let stability = 150_000 in
  if partition_churn then begin
    (* random partition windows during the disturbed period: isolate one
       process at a time, heal before stability *)
    let net = Cluster.net cluster in
    let t = ref (5_000 + Rng.int rng 20_000) in
    while !t < stability - 20_000 do
      let victim = Rng.int rng n in
      let cut_at = !t and heal_at = !t + 5_000 + Rng.int rng 15_000 in
      Cluster.at cluster cut_at (fun () ->
          Net.partition net (fun ~src ~dst -> src = victim || dst = victim));
      Cluster.at cluster (min heal_at (stability - 1)) (fun () -> Net.heal net);
      t := heal_at + 5_000 + Rng.int rng 20_000
    done
  end;
  let plan = Faults.plan_random ~rng ~n ~n_bad ~stability () in
  let good = Faults.good_nodes plan in
  (* Apply the plan through cluster actions. *)
  List.iter
    (fun ({ time; node; kind } : Faults.event) ->
      match kind with
      | Faults.Crash -> Cluster.at cluster time (fun () -> Cluster.crash cluster node)
      | Faults.Recover ->
        Cluster.at cluster time (fun () -> Cluster.recover cluster node))
    plan.events;
  let attempts =
    Workload.open_loop cluster ~rng ~senders:(List.init n Fun.id) ~start:1_000
      ~stop:stability ~mean_gap:4_000 ()
  in
  ignore attempts;
  (* Run long past the horizon, until the good processes quiesce: same
     delivered count twice, 2 simulated seconds apart. *)
  Cluster.run cluster ~until:(plan.horizon + 2_000_000);
  let counts () = List.map (fun i -> Cluster.delivered_count cluster i) good in
  let rec settle tries prev =
    Cluster.run cluster ~until:(Cluster.now cluster + 2_000_000);
    let cur = counts () in
    if cur = prev || tries > 30 then cur else settle (tries + 1) cur
  in
  let final = settle 0 (counts ()) in
  (* All good processes quiesce at the same count. *)
  (match final with
  | c :: rest ->
    List.iter
      (fun c' ->
        if c <> c' then
          Alcotest.failf "seed %d: good processes diverge: %d vs %d" seed c c')
      rest
  | [] -> Alcotest.fail "no good processes");
  check_ok
    (Printf.sprintf "seed %d properties" seed)
    (if compacted then Checks.all_compacted ~cluster ~good ()
     else Checks.all ~cluster ~good ());
  check_ok
    (Printf.sprintf "seed %d lemmas P1-P5" seed)
    (Abcast_harness.Lemmas.report lemmas);
  check_ok
    (Printf.sprintf "seed %d lemma P3 (convergence)" seed)
    (Abcast_harness.Lemmas.check_converged lemmas ~good);
  cluster

let fixed_seed_tests =
  List.concat_map
    (fun seed ->
      [
        slow_test
          (Printf.sprintf "basic survives adversarial schedule (seed %d)" seed)
          (fun () -> ignore (episode ~stack:(Factory.basic ()) ~seed ~n:3 ~n_bad:0 ()));
      ])
    [ 101; 202; 303; 404 ]

let bad_process_tests =
  List.concat_map
    (fun seed ->
      [
        slow_test
          (Printf.sprintf "basic tolerates a bad process (seed %d)" seed)
          (fun () -> ignore (episode ~stack:(Factory.basic ()) ~seed ~n:3 ~n_bad:1 ()));
        slow_test
          (Printf.sprintf "alternative tolerates a bad process (seed %d)" seed)
          (fun () ->
            ignore
              (episode
                 ~stack:
                   (Factory.alternative ~checkpoint_period:20_000 ~delta:3 ())
                 ~seed ~n:3 ~n_bad:1 ()));
      ])
    [ 555; 666 ]

let five_node_tests =
  [
    slow_test "n=5 with 2 bad processes (basic)" (fun () ->
        ignore (episode ~stack:(Factory.basic ()) ~seed:808 ~n:5 ~n_bad:2 ()));
    slow_test "n=5 with 2 bad processes (alternative)" (fun () ->
        ignore
          (episode
             ~stack:(Factory.alternative ~checkpoint_period:25_000 ~delta:4 ())
             ~seed:909 ~n:5 ~n_bad:2 ()));
    slow_test "partition churn + crashes (basic)" (fun () ->
        ignore
          (episode ~partition_churn:true ~stack:(Factory.basic ()) ~seed:1201
             ~n:3 ~n_bad:1 ()));
    slow_test "partition churn + crashes (alternative)" (fun () ->
        ignore
          (episode ~partition_churn:true
             ~stack:(Factory.alternative ~checkpoint_period:25_000 ~delta:3 ())
             ~seed:1301 ~n:3 ~n_bad:1 ()));
    slow_test "partition churn + crashes (window=4)" (fun () ->
        ignore
          (episode ~partition_churn:true
             ~stack:(Factory.alternative ~window:4 ())
             ~seed:1401 ~n:3 ~n_bad:1 ()));
  ]

let kitchen_sink_tests =
  [
    slow_test "everything enabled: window+app+early-return+churn" (fun () ->
        (* every feature at once: windowed sequencer, application
           checkpoints, incremental early-return logging, state transfer,
           partition churn, crash/recovery, a bad process *)
        let replicas = Array.make 3 None in
        let module R = Abcast_apps.Kv.Replica in
        let stack =
          Factory.alternative ~window:3 ~checkpoint_period:20_000 ~delta:3
            ~early_return:true ~incremental:true
            ~app_factory:(R.factory (fun i r -> replicas.(i) <- Some r))
            ()
        in
        let cluster =
          episode ~partition_churn:true ~compacted:true ~stack ~seed:4242 ~n:3
            ~n_bad:1 ()
        in
        (* on top of the episode's checks: KV replicas of good processes
           converged *)
        ignore cluster;
        let digests =
          List.filter_map
            (fun r ->
              Option.map (fun r -> Abcast_apps.Kv.digest (R.state r)) r)
            (Array.to_list replicas)
        in
        match digests with
        | d :: rest -> List.iter (Alcotest.(check string) "replicas agree" d) rest
        | [] -> Alcotest.fail "no replicas");
  ]

let random_props =
  [
    QCheck.Test.make ~name:"E9: random schedules keep all four properties"
      ~count:12
      QCheck.(int_range 1 100_000)
      (fun seed ->
        ignore (episode ~stack:(Factory.basic ()) ~seed ~n:3 ~n_bad:1 ());
        true);
    QCheck.Test.make
      ~name:"E9: alternative protocol under random schedules" ~count:9
      QCheck.(int_range 1 100_000)
      (fun seed ->
        ignore
          (episode
             ~stack:(Factory.alternative ~checkpoint_period:30_000 ~delta:5 ())
             ~seed ~n:3 ~n_bad:1 ());
        true);
  ]

let suite =
  ( "faults",
    fixed_seed_tests @ bad_process_tests @ five_node_tests
    @ kitchen_sink_tests
    @ List.map (QCheck_alcotest.to_alcotest ~long:true) random_props )
