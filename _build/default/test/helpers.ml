(* Shared scaffolding for the test suites. *)

module Rng = Abcast_util.Rng
module Engine = Abcast_sim.Engine
module Net = Abcast_sim.Net
module Storage = Abcast_sim.Storage
module Metrics = Abcast_sim.Metrics
module Payload = Abcast_core.Payload
module Cluster = Abcast_harness.Cluster
module Checks = Abcast_harness.Checks
module Workload = Abcast_harness.Workload

let test name f = Alcotest.test_case name `Quick f

let slow_test name f = Alcotest.test_case name `Slow f

let check_ok what = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" what msg

(* Run an open-loop workload on a cluster of [n] nodes of the given stack
   and require that all (or [among]) nodes deliver everything and that the
   four properties hold over [good]. Returns the cluster for further
   assertions. *)
let run_workload ?(n = 3) ?(seed = 1) ?(msgs = 20) ?net ?(until = 10_000_000)
    ?good ?among stack =
  let cluster = Cluster.create stack ~seed ~n ?net () in
  let rng = Rng.create (seed + 1000) in
  let count =
    Workload.open_loop cluster ~rng ~senders:(List.init n Fun.id) ~start:1_000
      ~stop:(1_000 + (msgs * 800))
      ~mean_gap:800 ()
  in
  let good = match good with Some g -> g | None -> List.init n Fun.id in
  let caught_up () = Cluster.all_caught_up cluster ?among ~count () in
  let ok = Cluster.run_until cluster ~until ~pred:caught_up () in
  if not ok then
    Alcotest.failf "workload did not quiesce: %d/%d delivered at node0"
      (Cluster.delivered_count cluster 0) count;
  check_ok "properties" (Checks.all ~cluster ~good ());
  (cluster, count)

let ids_of tail = List.map (fun (p : Payload.t) -> p.Payload.id) tail
