test/suite_consensus.ml: Abcast_consensus Abcast_sim Alcotest Array Engine Helpers Int List Net Option Printf QCheck QCheck_alcotest Rng
