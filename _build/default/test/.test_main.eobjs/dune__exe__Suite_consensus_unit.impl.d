test/suite_consensus_unit.ml: Abcast_consensus Abcast_sim Alcotest Helpers List Metrics Queue Rng Storage
