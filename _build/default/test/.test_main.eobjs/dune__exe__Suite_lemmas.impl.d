test/suite_lemmas.ml: Abcast_consensus Abcast_core Abcast_harness Abcast_sim Alcotest Astring Cluster Helpers Result Rng Workload
