test/suite_apps.ml: Abcast_apps Abcast_core Alcotest Array Cluster Helpers List Option Payload Printf Rng
