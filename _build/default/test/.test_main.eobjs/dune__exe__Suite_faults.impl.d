test/suite_faults.ml: Abcast_apps Abcast_core Abcast_harness Abcast_sim Alcotest Array Checks Cluster Fun Helpers List Net Option Printf QCheck QCheck_alcotest Rng Workload
