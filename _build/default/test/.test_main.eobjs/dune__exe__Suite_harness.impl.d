test/suite_harness.ml: Abcast_core Abcast_harness Alcotest Char Checks Cluster Helpers List Payload Printf Rng String Workload
