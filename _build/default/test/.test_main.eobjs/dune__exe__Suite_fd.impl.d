test/suite_fd.ml: Abcast_fd Alcotest Array Engine Helpers List Net
