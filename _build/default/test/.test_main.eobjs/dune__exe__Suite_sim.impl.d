test/suite_sim.ml: Abcast_sim Alcotest Array Engine Filename Float Helpers List Metrics Net Option Printf Rng Storage String Unix
