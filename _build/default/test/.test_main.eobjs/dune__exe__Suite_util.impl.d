test/suite_util.ml: Abcast_util Alcotest Array Fun Helpers List Printf QCheck QCheck_alcotest Rng
