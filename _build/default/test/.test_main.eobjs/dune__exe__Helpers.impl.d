test/helpers.ml: Abcast_core Abcast_harness Abcast_sim Abcast_util Alcotest Fun List
