test/suite_baseline.ml: Abcast_baseline Abcast_core Alcotest Array Checks Cluster Engine Helpers List Metrics Net Payload Rng Workload
