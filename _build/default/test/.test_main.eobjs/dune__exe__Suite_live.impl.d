test/suite_live.ml: Abcast_core Abcast_live Alcotest Filename Fun Helpers List Printf Thread Unix
