test/suite_quorum.ml: Abcast_apps Abcast_core Alcotest Array Cluster Fun Gen Helpers List Payload QCheck QCheck_alcotest Result
