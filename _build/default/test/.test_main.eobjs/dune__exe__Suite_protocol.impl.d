test/suite_protocol.ml: Abcast_apps Abcast_consensus Abcast_core Alcotest Array Checks Cluster Engine Format Helpers List Metrics Net Payload Printf Rng Workload
