test/suite_core_units.ml: Abcast_core Alcotest Format Helpers List Option Payload QCheck QCheck_alcotest String
