(* Tests for the crash-stop baselines: reliable broadcast and the
   Chandra-Toueg-style no-logging stack. *)

open Helpers
module Rbcast = Abcast_baseline.Rbcast
module Ct = Abcast_baseline.Ct_abcast

let rb_cluster ?(n = 3) ?(seed = 1) ?net () =
  let eng = Engine.create ~seed ~n ?net () in
  let nodes = Array.make n None in
  let logs = Array.make n [] in
  for i = 0 to n - 1 do
    Engine.set_behavior eng i (fun io ->
        let rb =
          Rbcast.create io ~deliver:(fun p -> logs.(i) <- p.Payload.id :: logs.(i))
        in
        nodes.(i) <- Some rb;
        Rbcast.handle rb)
  done;
  Engine.start_all eng;
  let node i = match nodes.(i) with Some rb -> rb | None -> assert false in
  (eng, node, logs)

let rbcast_tests =
  [
    test "rbcast: everyone delivers exactly once" (fun () ->
        let eng, node, logs = rb_cluster () in
        Engine.at eng 100 (fun () -> ignore (Rbcast.broadcast (node 0) "hello"));
        Engine.run eng ~until:1_000_000;
        Array.iter
          (fun log -> Alcotest.(check int) "once" 1 (List.length log))
          logs);
    test "rbcast: duplicating network still delivers once" (fun () ->
        let net = Net.create ~dup:0.5 () in
        let eng, node, logs = rb_cluster ~net () in
        Engine.at eng 100 (fun () -> ignore (Rbcast.broadcast (node 1) "x"));
        Engine.run eng ~until:1_000_000;
        Array.iter
          (fun log -> Alcotest.(check int) "once" 1 (List.length log))
          logs);
    test "rbcast: relay covers a sender that crashes after sending" (fun () ->
        (* crash-stop model: sender dies right after its multisend; the
           relay at the first receiver completes the broadcast *)
        let eng, node, logs = rb_cluster ~seed:2 () in
        Engine.at eng 100 (fun () -> ignore (Rbcast.broadcast (node 0) "legacy"));
        Engine.at eng 5_000 (fun () -> Engine.crash eng 0);
        Engine.run eng ~until:1_000_000;
        List.iter
          (fun i -> Alcotest.(check int) "delivered" 1 (List.length logs.(i)))
          [ 1; 2 ]);
    test "rbcast: delivered_count tracks deliveries" (fun () ->
        let eng, node, _ = rb_cluster () in
        Engine.at eng 100 (fun () -> ignore (Rbcast.broadcast (node 0) "a"));
        Engine.at eng 200 (fun () -> ignore (Rbcast.broadcast (node 0) "b"));
        Engine.run eng ~until:1_000_000;
        Alcotest.(check int) "two" 2 (Rbcast.delivered_count (node 2)));
    test "rbcast: ids are distinct per broadcast" (fun () ->
        let _eng, node, _ = rb_cluster () in
        let a = Rbcast.broadcast (node 0) "a" in
        let b = Rbcast.broadcast (node 0) "b" in
        Alcotest.(check bool) "distinct" false (Payload.equal_id a b));
  ]

let ct_tests =
  [
    test "ct-stop: total order in crash-free runs" (fun () ->
        ignore (run_workload ~seed:50 ~msgs:20 (Ct.stack ())));
    test "ct-stop: zero accounted log operations (E7)" (fun () ->
        let cluster, _ = run_workload ~seed:51 ~msgs:20 (Ct.stack ()) in
        Alcotest.(check int) "none" 0
          (Metrics.sum_prefix (Cluster.metrics cluster) "log_ops"));
    test "ct-stop: same message pattern as the basic protocol" (fun () ->
        (* identical code path, identical seeds: message counts match
           exactly, the only difference is logging *)
        let msgs_of stack =
          let cluster, _ = run_workload ~seed:52 ~msgs:15 stack in
          Metrics.sum (Cluster.metrics cluster) "msgs_sent"
        in
        Alcotest.(check int) "equal" (msgs_of (Ct.stack ()))
          (msgs_of (Abcast_core.Factory.basic ())));
    test "ct-stop: crash-stop minority failure tolerated" (fun () ->
        let cluster = Cluster.create (Ct.stack ()) ~seed:53 ~n:3 () in
        Cluster.at cluster 500 (fun () -> Cluster.crash cluster 2);
        let rng = Rng.create 9 in
        let count =
          Workload.open_loop cluster ~rng ~senders:[ 0; 1 ] ~start:1_000
            ~stop:20_000 ~mean_gap:1_500 ()
        in
        let ok =
          Cluster.run_until cluster ~until:20_000_000
            ~pred:(fun () -> Cluster.all_caught_up cluster ~among:[ 0; 1 ] ~count ())
            ()
        in
        Alcotest.(check bool) "survivors deliver" true ok;
        check_ok "props" (Checks.all ~cluster ~good:[ 0; 1 ] ()));
  ]

let suite = ("baseline", rbcast_tests @ ct_tests)
