(* Tests for the heartbeat failure detector and the Omega oracle. *)

open Helpers
module Heartbeat = Abcast_fd.Heartbeat
module Omega = Abcast_fd.Omega

(* Build an engine whose nodes each run one heartbeat detector. *)
let make_cluster ?(n = 3) ?(seed = 1) ?net () =
  let eng = Engine.create ~seed ~n ?net () in
  let fds = Array.make n None in
  for i = 0 to n - 1 do
    Engine.set_behavior eng i (fun io ->
        let hb = Heartbeat.create io in
        fds.(i) <- Some hb;
        Heartbeat.handle hb)
  done;
  Engine.start_all eng;
  let fd i = match fds.(i) with Some hb -> hb | None -> assert false in
  (eng, fd)

let tests =
  [
    test "fresh detector trusts everyone" (fun () ->
        let _eng, fd = make_cluster () in
        for i = 0 to 2 do
          Alcotest.(check (list int)) "no suspects" [] (Heartbeat.suspects (fd i))
        done);
    test "crashed node becomes suspected" (fun () ->
        let eng, fd = make_cluster () in
        Engine.crash eng 2;
        Engine.run eng ~until:100_000;
        Alcotest.(check (list int)) "suspects at 0" [ 2 ] (Heartbeat.suspects (fd 0));
        Alcotest.(check (list int)) "suspects at 1" [ 2 ] (Heartbeat.suspects (fd 1)));
    test "recovered node is trusted again" (fun () ->
        let eng, fd = make_cluster () in
        Engine.crash eng 2;
        Engine.run eng ~until:100_000;
        Engine.recover eng 2;
        Engine.run eng ~until:200_000;
        Alcotest.(check (list int)) "trusted" [] (Heartbeat.suspects (fd 0)));
    test "epochs reflect incarnations" (fun () ->
        let eng, fd = make_cluster () in
        Engine.run eng ~until:50_000;
        Alcotest.(check int) "epoch 0" 0 (Heartbeat.epoch (fd 0) 2);
        Engine.crash eng 2;
        Engine.recover eng 2;
        Engine.run eng ~until:150_000;
        Alcotest.(check int) "epoch 1" 1 (Heartbeat.epoch (fd 0) 2));
    test "all nodes converge on the same leader" (fun () ->
        let eng, fd = make_cluster ~n:5 () in
        Engine.run eng ~until:100_000;
        let leaders = List.init 5 (fun i -> Heartbeat.leader (fd i)) in
        Alcotest.(check (list int)) "same" [ 0; 0; 0; 0; 0 ] leaders);
    test "leader avoids a crashed low id" (fun () ->
        let eng, fd = make_cluster ~n:3 () in
        Engine.run eng ~until:50_000;
        Engine.crash eng 0;
        Engine.run eng ~until:200_000;
        Alcotest.(check int) "at 1" 1 (Heartbeat.leader (fd 1));
        Alcotest.(check int) "at 2" 1 (Heartbeat.leader (fd 2)));
    test "leader avoids an oscillating process" (fun () ->
        let eng, fd = make_cluster ~n:3 () in
        (* node 0 oscillates: its epoch keeps growing *)
        for j = 0 to 5 do
          Engine.at eng ((j * 60_000) + 30_000) (fun () -> Engine.crash eng 0);
          Engine.at eng ((j * 60_000) + 40_000) (fun () -> Engine.recover eng 0)
        done;
        Engine.run eng ~until:500_000;
        Alcotest.(check int) "stable leader at 1" 1 (Heartbeat.leader (fd 1));
        Alcotest.(check int) "stable leader at 2" 1 (Heartbeat.leader (fd 2)));
    test "self is always trusted" (fun () ->
        let net = Net.create ~loss:1.0 () in
        let _eng, fd = make_cluster ~net () in
        Alcotest.(check bool) "self" true (Heartbeat.trusted (fd 1) 1));
    test "Omega.of_heartbeat tracks the detector" (fun () ->
        let eng, fd = make_cluster () in
        let omega = Omega.of_heartbeat (fd 1) in
        Engine.run eng ~until:50_000;
        Alcotest.(check int) "leader" (Heartbeat.leader (fd 1)) (omega ()));
    test "Omega.fixed is constant" (fun () ->
        let omega = Omega.fixed 2 in
        Alcotest.(check int) "fixed" 2 (omega ()));
    test "total loss leaves everyone suspected except self" (fun () ->
        let net = Net.create ~loss:1.0 () in
        let eng, fd = make_cluster ~net () in
        Engine.run eng ~until:100_000;
        Alcotest.(check (list int)) "suspects" [ 1; 2 ] (Heartbeat.suspects (fd 0)));
  ]

let suite = ("fd", tests)
