(* Quickstart: three processes, a handful of A-broadcasts, one identical
   delivery order everywhere.

     dune exec examples/quickstart.exe

   This is the smallest complete use of the public API: pick a stack from
   [Factory], put it on a simulated [Cluster], broadcast, run, inspect. *)

module Factory = Abcast_core.Factory
module Payload = Abcast_core.Payload
module Cluster = Abcast_harness.Cluster

let () =
  (* A 3-process cluster running the paper's basic protocol (Fig. 2) over
     crash-recovery Paxos. Everything is driven by the seed. *)
  let cluster = Cluster.create (Factory.basic ()) ~seed:2026 ~n:3 () in

  (* Each process atomically broadcasts a greeting. The calls race: the
     total order that comes out is decided by the protocol, not by
     wall-clock send order. *)
  List.iteri
    (fun i (node, text) ->
      Cluster.at cluster (1_000 + (i * 700)) (fun () ->
          ignore (Cluster.broadcast cluster ~node text)))
    [
      (0, "alpha says hi");
      (1, "beta says hi");
      (2, "gamma says hi");
      (0, "alpha again");
      (1, "beta again");
    ];

  (* Run the simulation until every process has delivered all five. *)
  let done_ () = Cluster.all_caught_up cluster ~count:5 () in
  let ok = Cluster.run_until cluster ~until:10_000_000 ~pred:done_ () in
  assert ok;

  Printf.printf "after %d simulated µs:\n\n" (Cluster.now cluster);
  for node = 0 to 2 do
    Printf.printf "process %d delivered (round %d):\n" node
      (Cluster.round cluster node);
    List.iter
      (fun (p : Payload.t) ->
        Printf.printf "  %-10s %s\n"
          (Format.asprintf "%a" Payload.pp_id p.id)
          p.data)
      (Cluster.delivered_tail cluster node);
    print_newline ()
  done;
  Printf.printf "all three orders are identical: that is Atomic Broadcast.\n"
