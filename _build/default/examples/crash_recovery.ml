(* Crash-recovery mechanics, side by side: replay vs state transfer.

     dune exec examples/crash_recovery.exe

   The same fault scenario runs twice:

   - with the basic protocol (Fig. 2), the recovering process rebuilds its
     state by replaying the consensus proposal/decision log and re-running
     the round it was in;
   - with the alternative protocol (Figs. 3-4), periodic checkpoints and
     the state-transfer path (Δ) let it skip the missed consensus
     instances entirely.

   The trace timeline below is the protocol's own narration. *)

module Factory = Abcast_core.Factory
module Cluster = Abcast_harness.Cluster
module Workload = Abcast_harness.Workload
module Metrics = Abcast_sim.Metrics
module Trace = Abcast_sim.Trace
module Rng = Abcast_util.Rng

let scenario name stack =
  Printf.printf "=== %s ===\n" name;
  let trace = Trace.create ~enabled:true () in
  let cluster = Cluster.create stack ~seed:99 ~n:3 ~trace () in
  let rng = Rng.create 4 in
  Cluster.at cluster 2_000 (fun () -> Cluster.crash cluster 2);
  let count =
    Workload.open_loop cluster ~rng ~senders:[ 0; 1 ] ~start:3_000 ~stop:80_000
      ~mean_gap:1_000 ()
  in
  Cluster.at cluster 90_000 (fun () -> Cluster.recover cluster 2);
  let ok =
    Cluster.run_until cluster ~until:100_000_000
      ~pred:(fun () -> Cluster.all_caught_up cluster ~count ())
      ()
  in
  assert ok;
  let m = Cluster.metrics cluster in
  Printf.printf
    "  %d msgs; caught up at %d µs (%d µs after recovery)\n\
    \  replayed rounds at p2: %d | state transfers: %d | rounds total: %d\n"
    count (Cluster.now cluster)
    (Cluster.now cluster - 90_000)
    (Metrics.get m ~node:2 "replay_rounds")
    (Metrics.sum m "state_transfers_applied")
    (Cluster.round cluster 0);
  Printf.printf "  p2's own timeline around recovery:\n";
  List.iter
    (fun (e : Trace.entry) ->
      if e.node = 2 && e.time >= 90_000 then
        Printf.printf "    [%7d] %s\n" e.time e.text)
    (Trace.entries trace);
  (* bounce p2 once more, now that it holds the full history locally: the
     basic protocol replays every logged round from its own log (no
     network needed); the alternative starts from its checkpoint *)
  Cluster.crash cluster 2;
  Cluster.recover cluster 2;
  Cluster.run cluster ~until:(Cluster.now cluster + 500_000);
  Printf.printf
    "  second bounce (local log now complete): %d rounds re-applied from \
     p2's own stable storage\n\n"
    (Metrics.get m ~node:2 "replay_rounds")

let () =
  scenario "basic protocol: recovery replays the whole history"
    (Factory.basic ());
  scenario "alternative protocol: checkpoint + state transfer skip it"
    (Factory.alternative ~checkpoint_period:20_000 ~delta:3 ());
  Printf.printf
    "Both recover to the same total order; the alternative pays a few log\n\
     writes per checkpoint to make recovery O(1) instead of O(history).\n"
