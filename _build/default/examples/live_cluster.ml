(* The same protocol, no simulator: real threads, real UDP datagrams,
   real files.

     dune exec examples/live_cluster.exe

   Three processes bind UDP sockets on localhost and run the alternative
   protocol. Process 2 is killed for real — its thread dies, its socket
   buffer is discarded — and later restarted; it recovers from the files
   in its storage directory and catches up. Wall-clock timings below are
   actual. *)

module Live = Abcast_live.Runtime
module Factory = Abcast_core.Factory

let await ?(timeout = 20.0) what pred =
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. timeout in
  let rec go () =
    if pred () then Printf.printf "  %-42s %6.0f ms\n%!" what ((Unix.gettimeofday () -. t0) *. 1000.0)
    else if Unix.gettimeofday () > deadline then failwith ("timeout: " ^ what)
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "abcast-live-demo-%d" (Unix.getpid ()))
  in
  Printf.printf "storage directory: %s\n" dir;
  let stack = Factory.alternative ~checkpoint_period:100_000 ~delta:2 () in
  let live =
    try Live.create stack ~n:3 ~base_port:7470 ~dir ()
    with Unix.Unix_error (e, _, _) ->
      Printf.printf "cannot create sockets here (%s); skipping demo\n"
        (Unix.error_message e);
      exit 0
  in
  Fun.protect ~finally:(fun () -> Live.shutdown live) @@ fun () ->
  Printf.printf "three processes up on udp/127.0.0.1:7470-7472\n\n";

  for j = 0 to 9 do
    Live.broadcast live ~node:(j mod 3) (Printf.sprintf "update-%d" j)
  done;
  await "10 broadcasts totally ordered everywhere" (fun () ->
      List.for_all (fun i -> Live.delivered_count live i >= 10) [ 0; 1; 2 ]);

  Printf.printf "\nkilling process 2 (thread dies, volatile state gone)\n";
  Live.crash live 2;
  for j = 10 to 19 do
    Live.broadcast live ~node:(j mod 2) (Printf.sprintf "update-%d" j)
  done;
  await "majority keeps ordering without it" (fun () ->
      List.for_all (fun i -> Live.delivered_count live i >= 20) [ 0; 1 ]);

  Printf.printf "\nrestarting process 2 (new incarnation, reads its files)\n";
  Live.recover live 2;
  await "recovered process caught up to 20" (fun () ->
      Live.delivered_count live 2 >= 20);

  let a = Live.delivered_data live 0 and c = Live.delivered_data live 2 in
  Printf.printf "\nsequences equal after real recovery: %b (20 messages)\n"
    (a = c);
  Printf.printf "first five: %s\n"
    (String.concat ", " (List.filteri (fun i _ -> i < 5) a))
