examples/live_cluster.ml: Abcast_core Abcast_live Filename Fun List Printf String Thread Unix
