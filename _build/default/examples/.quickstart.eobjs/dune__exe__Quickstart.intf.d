examples/quickstart.mli:
