examples/quorum_reconfig.ml: Abcast_apps Abcast_core Abcast_harness Array List Option Printf String
