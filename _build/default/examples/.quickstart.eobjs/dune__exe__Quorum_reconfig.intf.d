examples/quorum_reconfig.mli:
