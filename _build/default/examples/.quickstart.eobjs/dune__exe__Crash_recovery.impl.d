examples/crash_recovery.ml: Abcast_core Abcast_harness Abcast_sim Abcast_util List Printf
