examples/quickstart.ml: Abcast_core Abcast_harness Format List Printf
