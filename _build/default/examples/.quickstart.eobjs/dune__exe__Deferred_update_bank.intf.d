examples/deferred_update_bank.mli:
