examples/live_cluster.mli:
