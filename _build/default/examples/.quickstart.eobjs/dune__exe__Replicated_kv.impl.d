examples/replicated_kv.ml: Abcast_apps Abcast_core Abcast_harness Abcast_sim Array List Option Printf
