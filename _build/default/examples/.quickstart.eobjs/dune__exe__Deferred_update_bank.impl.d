examples/deferred_update_bank.ml: Abcast_apps Abcast_core Abcast_harness Array List Printf
