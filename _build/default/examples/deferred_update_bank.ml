(* Deferred-update replication (paper §6.2): optimistic transactions,
   certified in total order.

     dune exec examples/deferred_update_bank.exe

   Two clients run conflicting read-modify-write transactions against
   their local replicas; at commit time each transaction's read versions
   and write set are atomically broadcast. Certification is a
   deterministic function of the delivery order, so every replica commits
   and aborts exactly the same transactions — no atomic commitment
   protocol, no distributed locking. *)

module Factory = Abcast_core.Factory
module Cluster = Abcast_harness.Cluster
module Payload = Abcast_core.Payload
module Du = Abcast_apps.Deferred_update

let () =
  (* One replica per process; deliveries certify transactions. *)
  let dbs = Array.init 3 (fun _ -> Du.create ()) in
  let stack = Factory.basic () in
  let cluster = Cluster.create stack ~seed:13 ~n:3 () in

  (* Seed: balance = 100 (a blind write commits unconditionally). *)
  Cluster.at cluster 500 (fun () ->
      let t = Du.Txn.begin_ dbs.(0) in
      Du.Txn.write t "balance" 100;
      ignore (Cluster.broadcast cluster ~node:0 (Du.Txn.payload t)));

  (* Let the seed commit at every replica before the contended phase.
     (Replicas consume their process's delivery sequence.) *)
  let drain () =
    Array.iteri
      (fun i db ->
        let seen = Du.committed db + Du.aborted db in
        let tail = Cluster.delivered_tail cluster i in
        List.iteri (fun j p -> if j >= seen then Du.deliver db p) tail)
      dbs
  in
  Cluster.at cluster 30_000 (fun () ->
      drain ();
      (* Two concurrent withdrawals read the same version of "balance"
         and race: certification must let exactly one through. *)
      let w0 = Du.Txn.begin_ dbs.(0) in
      let b0 = Du.Txn.read w0 "balance" in
      Du.Txn.write w0 "balance" (b0 - 70);
      ignore (Cluster.broadcast cluster ~node:0 (Du.Txn.payload w0));
      let w1 = Du.Txn.begin_ dbs.(1) in
      let b1 = Du.Txn.read w1 "balance" in
      Du.Txn.write w1 "balance" (b1 - 70);
      ignore (Cluster.broadcast cluster ~node:1 (Du.Txn.payload w1));
      Printf.printf
        "two clients both read balance=%d/%d and broadcast 'withdraw 70'\n" b0
        b1);

  let ok =
    Cluster.run_until cluster ~until:10_000_000
      ~pred:(fun () -> Cluster.all_caught_up cluster ~count:3 ())
      ()
  in
  assert ok;
  drain ();

  Printf.printf "\nafter certification at every replica:\n";
  Array.iteri
    (fun i db ->
      let balance, version = Du.read db "balance" in
      Printf.printf
        "  replica %d: balance=%d (version %d), committed=%d aborted=%d \
         digest=%s\n"
        i balance version (Du.committed db) (Du.aborted db) (Du.digest db))
    dbs;
  Printf.printf
    "\nexactly one withdrawal committed, on every replica, without any\n\
     locking: the total order made certification deterministic.\n"
