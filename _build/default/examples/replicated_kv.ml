(* A replicated key-value store that survives a crash.

     dune exec examples/replicated_kv.exe

   The store is state-machine replication over the alternative protocol
   (Figs. 3-5): the application state itself is the checkpoint (§5.2), so
   a recovering replica reinstalls a KV snapshot instead of replaying
   every update since the beginning of time — and the stable-storage
   footprint stays bounded. *)

module Factory = Abcast_core.Factory
module Cluster = Abcast_harness.Cluster
module Kv = Abcast_apps.Kv
module Metrics = Abcast_sim.Metrics

let () =
  let replicas = Array.make 3 None in
  let stack =
    Factory.alternative ~checkpoint_period:25_000 ~delta:3
      ~app_factory:(Kv.Replica.factory (fun i r -> replicas.(i) <- Some r))
      ()
  in
  let cluster = Cluster.create stack ~seed:7 ~n:3 () in

  (* 60 writes over 60 simulated ms, spread over whoever is up. Node 2
     crashes a third of the way in and recovers near the end. *)
  for j = 0 to 59 do
    Cluster.at cluster (1_000 + (j * 1_000)) (fun () ->
        ignore
          (Cluster.broadcast cluster
             ~node:(j mod 3)
             (Kv.set_cmd
                ~key:(Printf.sprintf "user:%d" (j mod 8))
                ~value:(Printf.sprintf "update-%d" j))))
  done;
  Cluster.at cluster 20_000 (fun () ->
      Printf.printf "[%6d µs] crashing replica 2\n" (Cluster.now cluster);
      Cluster.crash cluster 2);
  Cluster.at cluster 55_000 (fun () ->
      Printf.printf "[%6d µs] recovering replica 2\n" (Cluster.now cluster);
      Cluster.recover cluster 2);

  let injected () = List.length (Cluster.sent cluster) in
  let ok =
    Cluster.run_until cluster ~until:60_000_000
      ~pred:(fun () ->
        Cluster.now cluster > 62_000
        && Cluster.all_caught_up cluster ~count:(injected ()) ())
      ()
  in
  assert ok;

  Printf.printf "\n%d writes applied everywhere after %d µs\n\n" (injected ())
    (Cluster.now cluster);
  for i = 0 to 2 do
    match replicas.(i) with
    | Some r ->
      let state = Kv.Replica.state r in
      Printf.printf "replica %d: %d keys, digest %s, %d commands applied\n" i
        (Kv.size state) (Kv.digest state)
        (Kv.Replica.applied r)
    | None -> assert false
  done;
  (match replicas.(0) with
  | Some r ->
    Printf.printf "\nsample reads at replica 0:\n";
    List.iter
      (fun k ->
        Printf.printf "  %s -> %s\n" k
          (Option.value ~default:"<absent>" (Kv.get (Kv.Replica.state r) k)))
      [ "user:0"; "user:5"; "user:7" ]
  | None -> assert false);
  Printf.printf
    "\nstable storage at replica 2: %d bytes retained (bounded by the app \
     checkpoint; %d state transfer(s) used to catch up)\n"
    (Cluster.retained_bytes cluster 2)
    (Metrics.sum (Cluster.metrics cluster) "state_transfers_applied")
