(* Quorum-based replication bridged with atomic broadcast (paper §6.3).

     dune exec examples/quorum_reconfig.exe

   Reads and writes touch only a *quorum* of replicas — not the broadcast
   layer, not the full group — while the vote assignment itself (the
   thing that must never be ambiguous) is changed through atomic
   broadcast, so every replica steps through the same sequence of
   configurations. Operations from a superseded configuration are fenced
   by the epoch number. *)

module Factory = Abcast_core.Factory
module Cluster = Abcast_harness.Cluster
module Q = Abcast_apps.Quorum

let show_read what = function
  | Ok (r : Q.Client.read_result) ->
    Printf.printf "  %-34s -> %s (version %d, from replicas %s)\n" what
      (Option.value ~default:"<empty>" r.value)
      r.version
      (String.concat "," (List.map string_of_int r.responders))
  | Error e -> Printf.printf "  %-34s -> REJECTED: %s\n" what e

let () =
  (* Three replicas; reconfigurations flow through a real broadcast
     cluster; data ops are plain quorum calls against replica state. *)
  let stores = Array.init 3 (fun _ -> Q.Store.create ()) in
  let cluster = Cluster.create (Factory.basic ()) ~seed:6 ~n:3 () in
  let sync () =
    (* apply every replica's delivered reconfigurations *)
    Array.iteri
      (fun i s ->
        let seen = Q.Store.epoch s in
        List.iteri
          (fun j p -> if j >= seen then Q.Store.deliver s p)
          (Cluster.delivered_tail cluster i))
      stores
  in

  (* Epoch 1: majority voting, one vote each. *)
  let c1 = { Q.weights = [| 1; 1; 1 |]; read_quorum = 2; write_quorum = 2 } in
  Cluster.at cluster 1_000 (fun () ->
      ignore (Cluster.broadcast cluster ~node:0 (Q.Store.reconfig_cmd c1)));
  ignore
    (Cluster.run_until cluster ~until:10_000_000
       ~pred:(fun () -> Cluster.all_caught_up cluster ~count:1 ())
       ());
  sync ();
  Printf.printf "epoch %d installed: weights 1/1/1, r=2, w=2\n"
    (Q.Store.epoch stores.(0));

  (* A write through a 2-replica write quorum {0,1}; replica 2 stays stale. *)
  let responses quorum = List.map (fun i -> (i, Q.Store.local_read stores.(i))) quorum in
  (match Q.Client.read c1 ~epoch:1 ~responses:(responses [ 0; 1 ]) with
  | Ok r ->
    let version = Q.Client.write_version r in
    List.iter
      (fun i ->
        ignore (Q.Store.apply_write stores.(i) ~epoch:1 ~version "balance=100"))
      [ 0; 1 ];
    Printf.printf "write 'balance=100' @v%d applied to write quorum {0,1}\n"
      version
  | Error e -> failwith e);

  (* Any read quorum must see it, even one overlapping only at replica 1. *)
  show_read "read from quorum {1,2}" (Q.Client.read c1 ~epoch:1 ~responses:(responses [ 1; 2 ]));
  show_read "read from quorum {0,2}" (Q.Client.read c1 ~epoch:1 ~responses:(responses [ 0; 2 ]));
  show_read "read from {2} alone (no quorum)"
    (Q.Client.read c1 ~epoch:1 ~responses:(responses [ 2 ]));

  (* Epoch 2: shift weight to replica 0 (say, the reliable machine). Now
     replica 0 alone is a read AND write quorum. *)
  let c2 = { Q.weights = [| 3; 1; 1 |]; read_quorum = 3; write_quorum = 3 } in
  Cluster.after cluster 1_000 (fun () ->
      ignore (Cluster.broadcast cluster ~node:1 (Q.Store.reconfig_cmd c2)));
  ignore
    (Cluster.run_until cluster ~until:20_000_000
       ~pred:(fun () -> Cluster.all_caught_up cluster ~count:2 ())
       ());
  sync ();
  Printf.printf "\nepoch %d installed: weights 3/1/1, r=3, w=3\n"
    (Q.Store.epoch stores.(0));
  show_read "read from {0} alone (3 votes)"
    (Q.Client.read c2 ~epoch:2 ~responses:(responses [ 0 ]));
  show_read "read from {1,2} (2 votes only)"
    (Q.Client.read c2 ~epoch:2 ~responses:(responses [ 1; 2 ]));

  (* A client still living in epoch 1 is fenced. *)
  show_read "stale epoch-1 client reading {0,1}"
    (Q.Client.read c1 ~epoch:1 ~responses:(responses [ 0; 1 ]));
  Printf.printf
    "\nthe broadcast serialized both reconfigurations identically at every\n\
     replica; quorum data operations never touched the broadcast layer.\n"
