(** Quorum-based (weighted-voting) replication bridged with Atomic
    Broadcast — the paper's §6.3 companion technique.

    Classic weighted voting (Gifford): each replica holds a number of
    votes; a read needs replicas totalling at least [read_quorum] votes, a
    write at least [write_quorum], and [read_quorum + write_quorum >
    total] forces every read quorum to intersect every write quorum, so a
    read that takes the highest-versioned response always observes the
    latest completed write. Reads and writes thus touch only a quorum —
    {e not} the full replica group and {e not} the broadcast layer.

    The bridge the paper points at: the {e vote assignment itself} must be
    changed consistently (e.g. to shift weight away from flaky hosts).
    Reconfigurations are serialized through atomic broadcast — every
    replica applies the same sequence of configurations, numbered by
    epoch — while data operations keep their cheap quorum path, tagged
    with the epoch they were executed in. Quorum responses from older
    epochs are rejected, so a reconfiguration acts as a barrier. *)

(** A vote assignment with thresholds. *)
type config = {
  weights : int array;  (** votes per replica, all >= 0 *)
  read_quorum : int;
  write_quorum : int;
}

val total_votes : config -> int

val valid : config -> bool
(** Gifford's constraints: positive thresholds,
    [read_quorum + write_quorum > total] (read/write intersection) and
    [2 * write_quorum > total] (write/write intersection). *)

val votes_of : config -> int list -> int
(** Total votes carried by a set of replica indices (duplicates count
    once). *)

val is_read_quorum : config -> int list -> bool

val is_write_quorum : config -> int list -> bool

(** A versioned replicated value with epoch-tagged quorum operations. *)
module Store : sig
  type t
  (** The state of one replica: current (value, version) and the current
      configuration epoch, as driven by the broadcast layer. *)

  val create : unit -> t

  val epoch : t -> int
  (** Configuration epoch this replica is in (0 before any
      reconfiguration). *)

  val config : t -> config option
  (** Current vote assignment, once one was installed. *)

  val reconfig_cmd : config -> string
  (** Command to [A-broadcast] to install a new configuration. Invalid
      configurations are ignored at delivery (deterministically). *)

  val deliver : t -> Abcast_core.Payload.t -> unit
  (** Apply a delivered reconfiguration (wire as the A-deliver upcall). *)

  val local_read : t -> (string * int * int) option
  (** [(value, version, epoch)] held by this replica, if any write ever
      reached it. *)

  val apply_write : t -> epoch:int -> version:int -> string -> bool
  (** Install a write at this replica. Rejected ([false]) when the epoch
      is stale or the version not newer than what the replica holds. *)
end

(** Client-side quorum assembly (pure functions over responses). *)
module Client : sig
  type read_result = {
    value : string option;  (** highest-versioned value seen, if any *)
    version : int;  (** 0 when no replica held a value *)
    responders : int list;
  }

  val read :
    config ->
    epoch:int ->
    responses:(int * (string * int * int) option) list ->
    (read_result, string) result
  (** Assemble a read from per-replica responses
      [(replica, local_read)]. Fails if the responders do not carry a
      read quorum of votes, or if any responder reports a higher epoch
      (the client's configuration is stale). *)

  val write_version : read_result -> int
  (** Version to attach to a write following that read (read-modify-write:
      highest seen + 1). *)
end
